package distbayes_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/serve"
	"distbayes/internal/stream"
)

// BenchmarkServeQueries measures the serving subsystem end to end on the
// paper's largest network: an HTTP query server over a striped munin
// tracker (1041 variables, ~80k CPT cells) answers a closed-loop client
// mix — full-joint QueryProb and small-subset QuerySubsetProb — while an
// ingest pump keeps the tracker hot, so every snapshot refresh pays the
// vectorized EstimateRange rebuild under live writes. Clients speak raw
// HTTP/1.1 over keep-alive TCP connections with pre-encoded request bytes,
// so the measured path is the server, not client-side encoding. Reports
// sustained queries/sec plus client-observed p50/p99 latency.
func BenchmarkServeQueries(b *testing.B) {
	model, err := netgen.ModelByName("munin")
	if err != nil {
		b.Fatal(err)
	}
	nw := model.Network()
	const sites = 4
	tr, err := core.NewTracker(nw, core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 1, Shards: 4,
	})
	if err != nil {
		b.Fatal(err)
	}

	// Warm the counters and pre-generate the pump's event pool outside the
	// timer: the pump measures ingestion pressure on serving, not sampling.
	training := stream.NewTraining(model, stream.NewUniformAssigner(sites, 2), 3)
	pool := training.NextEvents(nil, 2048)
	tr.UpdateEvents(pool)

	srv, err := serve.New(serve.Config{
		Source:         serve.NewTrackerSource(tr),
		MaxSnapshotAge: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	addr := srv.Addr()

	// Hot ingest pump: one goroutine cycling the pool in protocol batches
	// for the whole measurement window.
	stopIngest := make(chan struct{})
	ingestDone := make(chan struct{})
	var ingested atomic.Int64
	go func() {
		defer close(ingestDone)
		if os.Getenv("DISTBAYES_BENCH_NO_INGEST") != "" {
			<-stopIngest
			return
		}
		// Paced small batches: a munin event updates ~2000 counter cells,
		// so an unpaced loop would saturate any core count the runner has
		// and serving latency would measure goroutine preemption, not the
		// server. Sleeping between batches keeps the pump genuinely off-CPU
		// so ingest pressure is a steady fraction of the machine, the way a
		// receiving site behaves between stream arrivals.
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for off := 0; ; off = (off + 8) % len(pool) {
			select {
			case <-stopIngest:
				return
			case <-tick.C:
			}
			tr.UpdateEvents(pool[off : off+8])
			ingested.Add(8)
		}
	}()

	// Pre-encode the request mix: full-joint probabilities (the CSV fast
	// path) alternating with subset probabilities over small ancestrally
	// closed subsets — the full-table scan and the targeted lookup, the two
	// shapes a serving tier sees most.
	subsets := smallClosures(nw, 8)
	if len(subsets) == 0 {
		b.Fatal("no small ancestral closures in munin")
	}
	rng := bn.NewRNG(7)
	var x []int
	reqs := make([][]byte, 16)
	for i := range reqs {
		x = stream.RandomAssignment(nw, rng, x)
		if i%2 == 0 {
			reqs[i] = encodeRequest(addr, "/v1/queryprob", csvAssignment(x))
		} else {
			set := subsets[(i/2)%len(subsets)]
			var sb strings.Builder
			sb.WriteString(`{"assign":{`)
			for j, v := range set {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `"%s":%d`, nw.Var(v).Name, x[v])
			}
			sb.WriteString(`}}`)
			reqs[i] = encodeRequest(addr, "/v1/subsetprob", sb.String())
		}
	}

	clients := 4
	if clients > b.N {
		clients = b.N // -benchtime=1x smoke: one client, one query
	}
	lats := make([][]int64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			br := bufio.NewReaderSize(conn, 16<<10)
			lat := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				t0 := time.Now()
				if _, err := conn.Write(reqs[(c*7+i)%len(reqs)]); err != nil {
					errs <- err
					return
				}
				if err := readResponse(br); err != nil {
					errs <- err
					return
				}
				lat = append(lat, time.Since(t0).Microseconds())
			}
			lats[c] = lat
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()
	close(stopIngest)
	<-ingestDone
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}

	elapsed := b.Elapsed().Seconds()
	all := make([]int64, 0, b.N)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(float64(len(all))/elapsed, "queries/sec")
	b.ReportMetric(float64(all[len(all)/2]), "p50-µs")
	b.ReportMetric(float64(all[len(all)*99/100]), "p99-µs")
	b.ReportMetric(float64(ingested.Load())/elapsed, "ingest-ev/s")

	shutdownServer(b, srv)
}

// slowSource adds a fixed latency to every snapshot acquisition — the
// shape of a coordinator-backed source under load, where an acquire is an
// RPC plus a rebuild rather than a pointer read. The sleep is blocking
// rather than CPU-bound on purpose: it pins the admitted service time so
// the overload benchmark measures the admission gate, not the scheduler.
type slowSource struct {
	inner serve.ModelSource
	delay time.Duration
}

func (s slowSource) Network() *bn.Network { return s.inner.Network() }

func (s slowSource) AcquireSnapshot() (serve.Snapshot, error) {
	time.Sleep(s.delay)
	return s.inner.AcquireSnapshot()
}

// BenchmarkServeOverload measures the admission gate under offered load
// far beyond capacity: a munin server constrained to 2 concurrent
// requests with a 4-deep wait queue takes 64 closed-loop raw-TCP clients
// — 32× the concurrency the server admits. Snapshots are acquired
// per-request (MaxSnapshotAge < 0) from a source with a fixed 500µs
// acquire latency, so capacity is ~2000 admitted requests/sec and the
// offered load exceeds it many times over. The overload contract says the
// excess must be shed with fast 429s so the latency of what IS admitted
// stays bounded instead of collapsing for everyone; the reported
// p99-admitted-µs (queue wait is capped by the queue depth) and
// queries/sec (admitted throughput, gated in BENCH_BASELINE.txt) are that
// contract as numbers. Shed responses cost no snapshot work, so
// shed/sec >> queries/sec is the expected shape.
func BenchmarkServeOverload(b *testing.B) {
	model, err := netgen.ModelByName("munin")
	if err != nil {
		b.Fatal(err)
	}
	nw := model.Network()
	const sites = 4
	tr, err := core.NewTracker(nw, core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 1, Shards: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	training := stream.NewTraining(model, stream.NewUniformAssigner(sites, 2), 3)
	tr.UpdateEvents(training.NextEvents(nil, 2048))

	srv, err := serve.New(serve.Config{
		Source:         slowSource{serve.NewTrackerSource(tr), 500 * time.Microsecond},
		MaxSnapshotAge: -1,
		MaxConcurrent:  2,
		MaxQueue:       4,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	addr := srv.Addr()

	rng := bn.NewRNG(7)
	var x []int
	reqs := make([][]byte, 16)
	for i := range reqs {
		x = stream.RandomAssignment(nw, rng, x)
		reqs[i] = encodeRequest(addr, "/v1/queryprob", csvAssignment(x))
	}

	clients := 64
	if clients > b.N {
		clients = b.N
	}
	lats := make([][]int64, clients)
	var admitted, shed, rejected atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			br := bufio.NewReaderSize(conn, 16<<10)
			lat := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				t0 := time.Now()
				if _, err := conn.Write(reqs[(c*7+i)%len(reqs)]); err != nil {
					errs <- err
					return
				}
				code, err := readResponseCode(br)
				if err != nil {
					errs <- err
					return
				}
				switch code {
				case 200:
					admitted.Add(1)
					lat = append(lat, time.Since(t0).Microseconds())
				case 429:
					shed.Add(1)
				case 503:
					rejected.Add(1)
				default:
					errs <- fmt.Errorf("status %d outside the overload contract", code)
					return
				}
			}
			lats[c] = lat
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	if admitted.Load() == 0 {
		b.Fatal("overload run admitted nothing")
	}

	elapsed := b.Elapsed().Seconds()
	all := make([]int64, 0, admitted.Load())
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(float64(len(all))/elapsed, "queries/sec")
	b.ReportMetric(float64(shed.Load()+rejected.Load())/elapsed, "shed/sec")
	b.ReportMetric(float64(all[len(all)/2]), "p50-admitted-µs")
	b.ReportMetric(float64(all[len(all)*99/100]), "p99-admitted-µs")

	shutdownServer(b, srv)
}

// readResponseCode consumes one HTTP/1.1 response off the keep-alive
// stream like readResponse, but returns the status code instead of
// requiring 200 — the overload benchmark counts 429/503 as data.
func readResponseCode(br *bufio.Reader) (int, error) {
	status, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	parts := strings.SplitN(status, " ", 3)
	if len(parts) < 3 {
		return 0, fmt.Errorf("malformed status line %q", strings.TrimSpace(status))
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, fmt.Errorf("malformed status line %q", strings.TrimSpace(status))
	}
	length := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			if length, err = strconv.Atoi(v); err != nil {
				return 0, err
			}
		}
	}
	if length < 0 {
		return 0, fmt.Errorf("response without Content-Length")
	}
	if _, err := io.CopyN(io.Discard, br, int64(length)); err != nil {
		return 0, err
	}
	return code, nil
}

// smallClosures returns up to 8 distinct ancestral closures of at most max
// variables — the well-posed small subset queries of a network.
func smallClosures(nw *bn.Network, max int) [][]int {
	var out [][]int
	for i := 0; i < nw.Len() && len(out) < 8; i++ {
		set := nw.AncestralClosure([]int{i})
		if len(set) > 1 && len(set) <= max {
			sort.Ints(set)
			out = append(out, set)
		}
	}
	return out
}

// encodeRequest renders one keep-alive HTTP/1.1 POST as raw bytes.
func encodeRequest(host, path, body string) []byte {
	return []byte(fmt.Sprintf(
		"POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		path, host, len(body), body))
}

// csvAssignment renders a full assignment as the CSV body of /v1/queryprob.
func csvAssignment(x []int) string {
	var sb strings.Builder
	sb.Grow(2 * len(x))
	for i, v := range x {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// readResponse consumes exactly one HTTP/1.1 response off the keep-alive
// stream: status line, headers (Content-Length is required — the server
// always sets it), then the body, discarded.
func readResponse(br *bufio.Reader) error {
	status, err := br.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.Contains(status, " 200 ") {
		return fmt.Errorf("unexpected status line %q", strings.TrimSpace(status))
	}
	length := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			if length, err = strconv.Atoi(v); err != nil {
				return err
			}
		}
	}
	if length < 0 {
		return fmt.Errorf("response without Content-Length")
	}
	_, err = io.CopyN(io.Discard, br, int64(length))
	return err
}

func shutdownServer(b *testing.B, srv *serve.Server) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
}
