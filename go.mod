module distbayes

go 1.24
