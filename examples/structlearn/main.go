// Structlearn demonstrates the two-phase workflow the paper prescribes when
// no domain expert supplies the graph (Section III): learn the structure
// offline from a sample with the Chow–Liu algorithm, then maintain the
// parameters of the learned structure online over the distributed stream.
package main

import (
	"fmt"
	"log"
	"math"

	"distbayes/internal/bn"
	"distbayes/internal/chowliu"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

func main() {
	const (
		vars    = 30
		states  = 3
		offline = 30000 // structure-learning sample
		online  = 200000
		sites   = 25
		eps     = 0.1
	)

	// Hidden ground truth: a random tree model the system does not know.
	truthNet, err := netgen.Tree(vars, states, 555)
	if err != nil {
		log.Fatal(err)
	}
	cpds, err := netgen.GenCPTs(truthNet, netgen.CPTOptions{Alpha: 0.25, Floor: 0.04, Seed: 556})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := bn.NewModel(truthNet, cpds)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: offline structure learning on a sample.
	sample := chowliu.SampleFromModel(truth, offline, 77)
	cards := make([]int, vars)
	for i := range cards {
		cards[i] = truthNet.Card(i)
	}
	learned, err := chowliu.Learn(sample, cards)
	if err != nil {
		log.Fatal(err)
	}
	wantEdges := chowliu.UndirectedEdges(truthNet)
	gotEdges := chowliu.UndirectedEdges(learned)
	recovered := 0
	for e := range wantEdges {
		if gotEdges[e] {
			recovered++
		}
	}
	fmt.Printf("phase 1 (offline): Chow-Liu on %d samples recovered %d/%d edges\n",
		offline, recovered, len(wantEdges))

	// Phase 2: online distributed parameter maintenance on the learned
	// structure.
	tracker, err := core.NewTracker(learned, core.Config{
		Strategy: core.NonUniform, Eps: eps, Sites: sites, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := core.NewTracker(learned, core.Config{Strategy: core.ExactMLE, Sites: sites})
	if err != nil {
		log.Fatal(err)
	}
	training := stream.NewTraining(truth, stream.NewUniformAssigner(sites, 8), 9)
	for e := 0; e < online; e++ {
		site, x := training.Next()
		tracker.Update(site, x)
		exact.Update(site, x)
	}

	// Evaluate: compare the tracked model's event probabilities against the
	// hidden truth on observable events.
	queries, err := stream.GenQueries(truth, stream.QueryOptions{Count: 400, MinProb: 0.01, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	var errTracked, errExact float64
	for _, q := range queries {
		// The learned structure shares variable indices with the truth, so
		// subsets remain valid; recompute the closure on the learned net.
		set := learned.AncestralClosure(q.Set)
		est := tracker.QuerySubsetProb(set, q.X)
		ref := exact.QuerySubsetProb(set, q.X)
		truthP := truth.SubsetProb(q.Set, q.X)
		errTracked += math.Abs(est-truthP) / truthP
		errExact += math.Abs(ref-truthP) / truthP
	}
	n := float64(len(queries))
	fmt.Printf("phase 2 (online): %d events across %d sites\n", online, sites)
	fmt.Printf("  mean event-probability error vs hidden truth: tracked=%.4f exact=%.4f\n",
		errTracked/n, errExact/n)
	fmt.Printf("  communication: tracked=%d messages, exact=%d (%.1fx fewer)\n",
		tracker.Messages().Total(), exact.Messages().Total(),
		float64(exact.Messages().Total())/float64(tracker.Messages().Total()))
}
