// Quickstart: define a small Bayesian network, stream distributed training
// events through an approximate tracker, and compare its answers and
// communication cost against exact MLE maintenance.
package main

import (
	"fmt"
	"log"

	"distbayes"
)

func main() {
	// A three-variable commute model: Weather -> Traffic -> Late.
	net, err := distbayes.NewNetwork([]distbayes.Variable{
		{Name: "Weather", Card: 3},                    // clear / rain / snow
		{Name: "Traffic", Card: 2, Parents: []int{0}}, // light / heavy
		{Name: "Late", Card: 2, Parents: []int{1}},    // on-time / late
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth used to generate the stream (in a real deployment the
	// events come from the outside world).
	cptW, _ := distbayes.NewCPT(3, 1, []float64{0.6, 0.3, 0.1})
	cptT, _ := distbayes.NewCPT(2, 3, []float64{0.8, 0.2, 0.4, 0.6, 0.1, 0.9})
	cptL, _ := distbayes.NewCPT(2, 2, []float64{0.9, 0.1, 0.35, 0.65})
	model, err := distbayes.NewModel(net, []*distbayes.CPT{cptW, cptT, cptL})
	if err != nil {
		log.Fatal(err)
	}

	const (
		sites  = 12
		events = 200000
		eps    = 0.1
	)
	exact, err := distbayes.NewTracker(net, distbayes.Config{Strategy: distbayes.ExactMLE, Sites: sites})
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := distbayes.NewTracker(net, distbayes.Config{
		Strategy: distbayes.NonUniform, Eps: eps, Sites: sites, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	training := distbayes.NewTraining(model, sites, 42)
	for e := 0; e < events; e++ {
		site, x := training.Next()
		exact.Update(site, x)
		tracker.Update(site, x)
	}

	fmt.Printf("trained on %d events across %d sites (eps=%.2f)\n\n", events, sites, eps)
	fmt.Println("joint probability estimates:")
	fmt.Println("  event                    truth    exact-MLE  nonuniform")
	for _, q := range [][]int{{0, 0, 0}, {1, 1, 1}, {2, 1, 1}, {0, 1, 0}} {
		fmt.Printf("  W=%d T=%d L=%d          %8.5f  %9.5f  %10.5f\n",
			q[0], q[1], q[2], model.JointProb(q), exact.QueryProb(q), tracker.QueryProb(q))
	}

	em, am := exact.Messages().Total(), tracker.Messages().Total()
	fmt.Printf("\ncommunication: exact=%d messages, nonuniform=%d messages (%.1fx fewer)\n",
		em, am, float64(em)/float64(am))
}
