package main

import (
	"io"
	"os"
	"testing"
)

// quickstartGolden is the example's exact output: everything — the stream,
// both trackers, the message tallies — is deterministic in the seeds wired
// into main, so the whole transcript is a golden. A drift here means the
// public distbayes API changed behavior under a fixed seed, which is worth
// a deliberate decision, not an accident.
const quickstartGolden = `trained on 200000 events across 12 sites (eps=0.10)

joint probability estimates:
  event                    truth    exact-MLE  nonuniform
  W=0 T=0 L=0           0.43200    0.43043     0.43617
  W=1 T=1 L=1           0.11700    0.11730     0.11759
  W=2 T=1 L=1           0.05850    0.05870     0.05923
  W=0 T=1 L=0           0.04200    0.04226     0.04259

communication: exact=1200000 messages, nonuniform=118278 messages (10.1x fewer)
`

// TestQuickstartGolden runs the example end to end and compares the full
// transcript.
func TestQuickstartGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-event example in -short mode")
	}
	oldStdout := os.Stdout
	defer func() { os.Stdout = oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	main()
	w.Close()
	got := <-done
	if got != quickstartGolden {
		t.Errorf("quickstart output drifted:\n--- got ---\n%s--- want ---\n%s", got, quickstartGolden)
	}
}
