// Cluster runs the live TCP implementation end to end on loopback: a
// coordinator and k site processes (goroutines with real TCP connections)
// learn the ALARM network from a partitioned stream — the architecture the
// paper deploys on an EC2 cluster for Figures 7 and 8.
package main

import (
	"fmt"
	"log"

	"distbayes/internal/cluster"
	"distbayes/internal/core"
)

func main() {
	const events = 50000
	fmt.Printf("live TCP cluster on loopback, ALARM, %d events\n\n", events)
	fmt.Println("sites  algorithm    runtime      throughput(ev/s)  updates")
	for _, k := range []int{2, 4, 8} {
		for _, st := range []core.Strategy{core.ExactMLE, core.NonUniform} {
			cfg := cluster.Config{
				NetName:    "alarm",
				CPTSeed:    0xC0DE,
				Strategy:   st,
				Eps:        0.1,
				Delta:      0.25,
				Sites:      k,
				Events:     events,
				StreamSeed: 7,
			}
			res, co, err := cluster.RunLocal(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-12s %-12v %-17.0f %d\n",
				k, st, res.Runtime, res.Throughput, res.Stats.Updates)
			// The coordinator stays queryable after training.
			x := make([]int, co.Network().Len())
			_ = co.QueryProb(x)
		}
	}
	fmt.Println("\nthe approximate algorithm ships fewer counter updates per event, which")
	fmt.Println("translates into the shorter runtimes / higher throughput of Figs. 7-8")
}
