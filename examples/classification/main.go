// Classification demonstrates the paper's Section V application: online
// Bayesian classification over a distributed stream, in the style of the
// malware-triage motivation of Section I — labelled examples arrive at many
// collection points, and the coordinator continuously maintains a Naïve-
// Bayes classifier without centralizing the stream.
//
// The class variable is binary (benign / malicious) and the features are
// categorical telemetry attributes. The example compares EXACTMLE with the
// Naïve-Bayes specialization of NONUNIFORM (equation 9, Lemma 11) on both
// prediction error and communication.
package main

import (
	"fmt"
	"log"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

func main() {
	const (
		features = 12
		sites    = 20
		events   = 100000
		tests    = 2000
		eps      = 0.1
	)

	// Telemetry features with mixed cardinalities (e.g. origin, packer,
	// section-count bucket, entropy bucket, ...).
	cards := make([]int, features)
	for i := range cards {
		cards[i] = 2 + i%4
	}
	net, err := netgen.NaiveBayesNet(2, cards)
	if err != nil {
		log.Fatal(err)
	}
	cpds, err := netgen.GenCPTs(net, netgen.CPTOptions{Alpha: 2.5, Floor: 0.35, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	model, err := bn.NewModel(net, cpds)
	if err != nil {
		log.Fatal(err)
	}

	// Test cases: full telemetry vectors with the class (variable 0) hidden.
	cases, err := stream.GenClassTests(model, tests, 11)
	if err != nil {
		log.Fatal(err)
	}
	for i := range cases {
		cases[i].Target = 0
		cases[i].Want = cases[i].X[0]
	}

	fmt.Printf("naive-bayes malware triage: %d features, %d sites, %d training events\n\n",
		features, sites, events)
	fmt.Println("algorithm    error-rate  messages")
	for _, st := range []core.Strategy{core.ExactMLE, core.Uniform, core.NaiveBayes} {
		tr, err := core.NewTracker(net, core.Config{
			Strategy: st, Eps: eps, Sites: sites, Seed: 13, Smoothing: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		training := stream.NewTraining(model, stream.NewUniformAssigner(sites, 17), 19)
		for e := 0; e < events; e++ {
			site, x := training.Next()
			tr.Update(site, x)
		}
		wrong := 0
		for _, tc := range cases {
			if tr.Classify(tc.Target, tc.X) != tc.Want {
				wrong++
			}
		}
		fmt.Printf("%-12s %.4f      %d\n", st, float64(wrong)/float64(len(cases)), tr.Messages().Total())
	}
	fmt.Println("\nthe tracked classifiers match the exact model's error rate at a fraction")
	fmt.Println("of the communication (Theorem 3)")
}
