// Sensornet reproduces the paper's motivating scenario (Section I): a
// large-scale sensor network — say traffic sensors across a highway system —
// where each sensor observes events with several correlated features and a
// coordinator continuously maintains a joint model without centralizing the
// raw stream.
//
// The dependency structure is a tree (each sensor's reading depends on one
// upstream sensor), the special case analyzed in Section V, Lemma 10. The
// example compares all four algorithms on communication and on query error
// against the ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

func main() {
	const (
		sensors = 60
		states  = 3 // low / medium / high congestion
		sites   = 30
		events  = 300000
		eps     = 0.1
	)

	net, err := netgen.Tree(sensors, states, 2024)
	if err != nil {
		log.Fatal(err)
	}
	cpds, err := netgen.GenCPTs(net, netgen.CPTOptions{Alpha: 0.4, Floor: 0.05, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	model, err := bn.NewModel(net, cpds)
	if err != nil {
		log.Fatal(err)
	}

	queries, err := stream.GenQueries(model, stream.QueryOptions{Count: 500, MinProb: 0.01, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("highway sensor tree: %d sensors x %d states, %d sites, %d events\n\n",
		sensors, states, sites, events)
	fmt.Println("algorithm    messages      mean-err-to-truth")
	for _, st := range []core.Strategy{core.ExactMLE, core.Baseline, core.Uniform, core.NonUniform} {
		tr, err := core.NewTracker(net, core.Config{
			Strategy: st, Eps: eps, Sites: sites, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		training := stream.NewTraining(model, stream.NewUniformAssigner(sites, 3), 4)
		for e := 0; e < events; e++ {
			site, x := training.Next()
			tr.Update(site, x)
		}
		sum, n := 0.0, 0
		for _, q := range queries {
			est := tr.QuerySubsetProb(q.Set, q.X)
			sum += math.Abs(est-q.Truth) / q.Truth
			n++
		}
		fmt.Printf("%-12s %-13d %.5f\n", st, tr.Messages().Total(), sum/float64(n))
	}
	fmt.Println("\nthe approximate trackers answer within a fraction of a percent of the")
	fmt.Println("exact model while sending a fraction of the messages (Lemma 10 tree case)")
}
