// Serving runs the query-serving subsystem end to end: a loopback TCP
// cluster learns the ALARM network from a partitioned stream, the HTTP
// query front end (internal/serve) attaches to the live coordinator, and a
// closed-loop client mix drives every endpoint — the paper's
// query-at-any-time model answered over the network from immutable model
// snapshots.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"distbayes/internal/cluster"
	"distbayes/internal/core"
	"distbayes/internal/serve"
)

func main() {
	cfg := cluster.Config{
		NetName:    "alarm",
		CPTSeed:    0xC0DE,
		Strategy:   core.NonUniform,
		Eps:        0.1,
		Delta:      0.25,
		Sites:      4,
		Events:     20000,
		StreamSeed: 7,
	}
	res, co, err := cluster.RunLocal(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	fmt.Printf("trained %d events across %d sites on a loopback TCP cluster\n",
		res.Stats.Events, cfg.Sites)

	// Attach the HTTP front end to the coordinator. Every response is
	// answered from one immutable snapshot and tagged with its version.
	srv, err := serve.New(serve.Config{Source: serve.NewCoordinatorSource(co)})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	base := "http://" + srv.Addr()
	fmt.Printf("query server attached to the live coordinator\n")

	// The health endpoint is never gated by admission control: ok means
	// fresh snapshots flow; a dead coordinator would read "degraded" here
	// while the server bridges from its last-good snapshot.
	state, err := health(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %s\n\n", state)

	nw := co.Network()
	zeros := make([]string, nw.Len())
	for i := range zeros {
		zeros[i] = "0"
	}
	csv := strings.Join(zeros, ",")

	// One representative body per endpoint; the closed loop below cycles
	// through all of them like a mixed client population would.
	requests := []struct {
		label, path, body string
	}{
		{"joint, all zeros ", "/v1/queryprob", csv},
		{"subset           ", "/v1/subsetprob", `{"assign":{"alarm_0":0,"alarm_1":0}}`},
		{"classify alarm_3 ", "/v1/classify", `{"target":"alarm_3","x":[` + strings.Join(zeros, ",") + `]}`},
		{"marginal alarm_3 ", "/v1/marginal", `{"assign":{"alarm_3":1}}`},
	}

	const loops = 50 // closed loop: each client waits for its answer before the next query
	start := time.Now()
	answers := make([]float64, len(requests))
	for n := 0; n < loops; n++ {
		for i, rq := range requests {
			v, err := post(base+rq.path, rq.body)
			if err != nil {
				log.Fatal(err)
			}
			answers[i] = v
		}
	}
	elapsed := time.Since(start)

	fmt.Println("endpoint answers (identical every loop — snapshots are immutable):")
	for i, rq := range requests {
		fmt.Printf("  %s %-14s = %.6g\n", rq.label, rq.path, answers[i])
	}
	fmt.Printf("\nclosed loop: %d queries answered", loops*len(requests))
	if qps := float64(loops*len(requests)) / elapsed.Seconds(); qps > 0 {
		fmt.Printf(" (%.0f queries/sec single-client)", qps)
	}
	fmt.Println()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}

// health reads GET /healthz: "ok", "degraded", "unavailable" or
// "draining".
func health(base string) (string, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(rb)), nil
}

// post sends one query body and returns the numeric result ("p" for the
// probability endpoints, "value" for classify) out of the response
// envelope.
func post(url, body string) (float64, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(rb))
	}
	var env struct {
		Result struct {
			P     float64 `json:"p"`
			Value int     `json:"value"`
		} `json:"result"`
		Snapshot struct {
			Version uint64 `json:"version"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(rb, &env); err != nil {
		return 0, err
	}
	if strings.HasSuffix(url, "/classify") {
		return float64(env.Result.Value), nil
	}
	return env.Result.P, nil
}
