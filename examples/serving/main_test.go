package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// servingWantLines are the deterministic lines of the example transcript:
// the training summary and every endpoint answer (fixed network, seeds and
// event order make the served estimates exact goldens). The closed-loop
// rate line is timing-dependent and only checked for presence.
var servingWantLines = []string{
	"trained 20000 events across 4 sites on a loopback TCP cluster",
	"health: ok",
	"  joint, all zeros  /v1/queryprob  = 1.40805e-28",
	"  subset            /v1/subsetprob = 0.0284496",
	"  classify alarm_3  /v1/classify   = 3",
	"  marginal alarm_3  /v1/marginal   = 0.243303",
	"server drained and stopped",
}

// TestServingGolden runs the example end to end — cluster, HTTP server,
// closed-loop clients — and pins every deterministic output line.
func TestServingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-event cluster example in -short mode")
	}
	oldStdout := os.Stdout
	defer func() { os.Stdout = oldStdout }()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	main()
	w.Close()
	got := <-done

	for _, want := range servingWantLines {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("output missing line %q\n--- got ---\n%s", want, got)
		}
	}
	if !strings.Contains(got, "closed loop: 200 queries answered") {
		t.Errorf("output missing closed-loop summary\n--- got ---\n%s", got)
	}
}
