// Package distbayes is a from-scratch Go implementation of
// "Learning Graphical Models from a Distributed Stream"
// (Yu Zhang, Srikanta Tirthapura, Graham Cormode; ICDE 2018).
//
// It continuously maintains the parameters (conditional probability
// distributions) of a Bayesian network over a stream of training events that
// is horizontally partitioned across k distributed sites, in the continuous
// distributed monitoring model: a coordinator holds an (ε, δ)-approximation
// of the exact maximum-likelihood estimate at all times while exchanging
// exponentially fewer messages than exact maintenance.
//
// The package is a thin facade over the implementation packages:
//
//	internal/bn          Bayesian-network substrate (DAG, CPTs, sampling)
//	internal/counter     distributed counters (exact, HYZ randomized, deterministic)
//	internal/core        the tracking algorithms (EXACTMLE, BASELINE, UNIFORM,
//	                     NONUNIFORM, Naïve-Bayes specialization, classification)
//	internal/budget      the Lagrange error-budget allocator (eqs. 5-9)
//	internal/netgen      Table I network generators and variants
//	internal/stream      workload generation (training streams, test queries)
//	internal/cluster     live TCP implementation (coordinator + sites)
//	internal/serve       HTTP query front end over immutable model snapshots
//	internal/chowliu     Chow–Liu structure learning (offline and the MI
//	                     primitives of the online distributed path)
//	internal/decay       time-decayed counters (future-work extension)
//	internal/experiments one driver per paper table/figure
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	net, _ := distbayes.NewNetwork([]distbayes.Variable{
//		{Name: "Weather", Card: 3},
//		{Name: "Traffic", Card: 2, Parents: []int{0}},
//	})
//	tr, _ := distbayes.NewTracker(net, distbayes.Config{
//		Strategy: distbayes.NonUniform, Eps: 0.1, Sites: 30,
//	})
//	tr.Update(site, event) // once per observation, at the receiving site
//	p := tr.QueryProb([]int{1, 0})
//
// # Concurrency
//
// A Tracker is safe for concurrent use: every ingestion entry point (Update,
// UpdateBatch, UpdateEvents, Ingest) and every query entry point may be
// called from multiple goroutines. Config.Shards selects the number of lock
// stripes guarding the counter banks. With Shards ≤ 1 (the default) there is
// a single stripe: concurrent callers serialize, and for a fixed seed and
// event order the tracker's counts, message tallies and query answers are
// bit-identical to the historical sequential implementation. With Shards > 1
// the banks are striped by variable index with an independent RNG per
// stripe, so k site goroutines ingest in parallel (see
// stream.NewSiteTrainings and stream.DriveParallel for per-site sub-streams
// and a ready-made parallel driver); exact counts remain exact under any
// interleaving, while randomized-counter message schedules become
// interleaving-dependent (still within the (ε, δ) guarantee). Batched
// ingestion (UpdateBatch / Ingest) additionally moves the parent-index
// computation outside the locks, so producers share almost no serialized
// work beyond the counter increments themselves.
//
// Config.DeltaBuffered goes one step further: ingestion becomes lock-free —
// each goroutine accumulates exact increment counts into a private
// DeltaBuffer and publishes on a cadence (Config.DeltaFlushEvents, an
// explicit Flush, or the barrier every query and checkpoint path runs), with
// the counter message protocol replayed on the merged totals. Exact counts
// and the (ε, δ) guarantee are preserved; Events and Messages lag until a
// publish. Config.DeltaSparse switches the buffers to a sparse touched-cell
// representation whose memory and flush cost scale with the cells a window
// actually dirtied rather than the whole network — the right choice for
// large networks (munin-scale) or small cadences, bit-identical to the
// dense merge for the same flush points. See the core.Tracker documentation
// for the full three-mode contract. SaveState/LoadState require ingestion
// to be quiesced for a meaningful stream position, as does any out-of-band
// mutation of Config.CounterFactory counters (e.g. the decay banks' Tick),
// whose mutation the stripe locks only cover inside Inc.
//
// # Storage and query performance
//
// Counter state is stored in flat per-variable banks (one contiguous
// struct-of-arrays per variable and counter kind), so ingestion increments
// contiguous memory with no per-cell interface dispatch. The structured
// query paths (QueryProb, QuerySubsetProb, Classify, EstimatedModel,
// InferMarginal, ClassifyPartial) are served from a cached model snapshot
// guarded by per-stripe version counters: a query locks each stripe at most
// once to read whole variable rows (see Tracker.ReadCPDRows and the CPDRows
// scratch type), and repeated queries between ingest flushes reuse the
// snapshot without taking any locks. Retired snapshots recycle their factor
// rows through a per-variable pool, so a steady-state ingest+query mix
// rebuilds dirty rows from recycled storage instead of allocating one row
// per variable per rebuild. Trackers with a CounterFactory skip the caching
// (factory counters may change out of band) but keep the batched reads.
//
// # Query serving
//
// internal/serve puts a network front end on the snapshot read path: an
// HTTP/JSON query service answering QueryProb, QuerySubsetProb, Classify,
// ClassifyPartial, InferMarginal and EstimatedModel, where every response
// is computed against exactly one immutable model snapshot and tagged with
// that snapshot's version and age (the snapshot-consistency contract; see
// the serve package documentation). A server fronts either an in-process
// Tracker (NewTrackerSource) or a live cluster coordinator
// (serve.NewCoordinatorSource, cmd/bncluster -serve) through the same
// ModelSource interface. Underneath, snapshot rebuilds read whole counter
// rows through kind-specialized counter.Bank.EstimateRange bulk loops
// instead of a per-cell Estimate switch, so rebuilding the ~80k-cell munin
// network stays cheap enough to refresh on a millisecond staleness bound
// under live ingest (BenchmarkServeQueries: a multi-client closed-loop
// load with a hot ingest pump, gated in BENCH_BASELINE.txt). See
// cmd/bnserve for the standalone binary and examples/serving for an
// end-to-end cluster + server + client-mix program.
//
// The serving plane degrades instead of failing: a concurrency-limited
// admission gate sheds over-capacity requests with fast 429s so admitted
// latency stays bounded (BenchmarkServeOverload), per-request deadlines
// cancel waits with clean 503s, and when a snapshot refresh fails — the
// coordinator crashed, the source is gone — the server keeps answering
// from the last-good refcounted snapshot, tagging responses degraded with
// their version and age up to a staleness ceiling. SwappableSource swaps
// a replacement coordinator (restored from its checkpoint) under a
// running server with a monotone snapshot-version clock across the
// failover. The full contract under chaos — every response a correct
// version-monotone answer or a clean 429/503, never a hang, torn read or
// 500 — is pinned by TestServeChaosCoordinatorKillRestart in
// internal/serve.
//
// # Structure learning
//
// The paper treats structure selection as orthogonal ("learned offline on a
// suitable sample"); internal/chowliu provides that offline route (Learn,
// LearnModel, re-exported here as LearnStructure/LearnStructureModel) and
// the repository closes the loop online: with
// cluster.Config.StructBatchEvents set, sites ship windowed pairwise
// co-occurrence statistics on the batched frame cadence, the coordinator
// periodically re-runs Chow–Liu over the aggregated mutual-information
// matrix (chowliu.MIFromCounts + chowliu.TreeFromMI over per-site
// decay.WindowVec windows, so stale evidence ages out), and hot-swaps the
// served structure when the learned tree changes — bumping a structure
// epoch carried on every snapshot, with versions monotone across the swap.
// serve.NewLearnedCoordinatorSource serves queries from the learned tree
// (cmd/bncluster -struct-batch, -serve-learned), and the drift experiment
// (cmd/bnmle -exp drift, cluster.Config.DriftNetName) demonstrates recovery of a
// mid-stream structure change with the communication overhead quantified.
//
// # Distributed deployment
//
// internal/cluster runs the same architecture over real TCP: k site
// processes stream locally-generated events through the site half of the
// counter protocol to a coordinator whose reported-count matrix is striped
// exactly like the in-process tracker (cluster.Config.Shards) and whose
// QueryProb/EstimatedModel answer at any time during a live run from
// version-validated snapshots — the paper's query-at-any-time model. Sites
// can coalesce report decisions into delta batches
// (cluster.Config.SiteBatchEvents, wire-protocol version 2), shipping a
// small fraction of the frames with bit-identical final estimates. The
// cluster is fault tolerant: sites reconnect with a resume handshake and
// replay their decided counts (idempotent under the coordinator's
// max-merge), the coordinator checkpoints its run state on a frame cadence
// and restores after a crash (cmd/bncluster -checkpoint/-resume), and a
// deterministic chaos harness (internal/cluster/chaos) pins estimates
// bit-identical to the uninterrupted run under severed connections,
// duplicated frames and process kills. See the cluster package
// documentation and cmd/bncluster.
//
// Past one coordinator's capacity the cluster federates, exactly, in two
// composable directions. An aggregation tree (cluster.Relay, cmd/bncluster
// -role relay) places relays between sites and the root: each relay folds
// its children's frames into per-site monotone vectors with the same
// idempotent max-merge the coordinator uses and ships one coalesced grouped
// frame upstream per cadence, dividing root frame load by roughly the
// branching factor at bit-identical estimates; relays hold no durable
// state, so site resume-replay heals severed uplinks and relay restarts.
// Striped federation (cluster.Config.StripeIndex/StripeCount,
// cluster.FederatedSite, cluster.Federation) partitions the flat counter-id
// space across K coordinator processes; sites route each report to the
// owning stripe and queries scatter-gather the per-stripe snapshots into
// one merged model behind the unchanged serving interfaces. The federation
// experiment (cmd/bnmle -exp federation) quantifies both against the flat
// topology.
package distbayes

import (
	"context"

	"distbayes/internal/bif"
	"distbayes/internal/bn"
	"distbayes/internal/chowliu"
	"distbayes/internal/core"
	"distbayes/internal/counter"
	"distbayes/internal/netgen"
	"distbayes/internal/serve"
	"distbayes/internal/stream"
)

// Core model types.
type (
	// Variable declares one categorical node of a Bayesian network.
	Variable = bn.Variable
	// Network is a validated DAG over categorical variables.
	Network = bn.Network
	// CPT is one conditional probability table.
	CPT = bn.CPT
	// Model is a network with ground-truth parameters.
	Model = bn.Model
	// RNG is the deterministic random generator used across the library.
	RNG = bn.RNG
)

// Tracking types (the paper's contribution).
type (
	// Tracker continuously maintains the approximate MLE.
	Tracker = core.Tracker
	// Config parameterizes a Tracker.
	Config = core.Config
	// Strategy selects the tracking algorithm.
	Strategy = core.Strategy
	// Allocation holds per-variable counter error parameters.
	Allocation = core.Allocation
	// Metrics tallies protocol messages.
	Metrics = counter.Metrics
	// Event is one (site, observation) pair, the unit of batched and
	// channel-based ingestion (Tracker.UpdateEvents, Tracker.Ingest).
	Event = core.Event
	// CPDRows is caller-owned scratch for Tracker.ReadCPDRows: one
	// variable's raw pair and parent estimates copied under a single stripe
	// lock acquisition.
	CPDRows = core.CPDRows
	// DeltaBuffer is one goroutine's private increment accumulation in the
	// lock-free ingestion mode (Config.DeltaBuffered); create with
	// Tracker.NewDeltaBuffer, publish with Flush, retire with Release.
	DeltaBuffer = core.DeltaBuffer
)

// Strategies.
const (
	// ExactMLE maintains exact counters (Lemma 5 strawman).
	ExactMLE = core.ExactMLE
	// Baseline divides the budget as ε/(3n) (Section IV-C).
	Baseline = core.Baseline
	// Uniform divides the budget as ε/(16√n) (Section IV-D).
	Uniform = core.Uniform
	// NonUniform uses the Lagrange allocation (Section IV-E).
	NonUniform = core.NonUniform
	// NaiveBayes is the Section V specialization for Naïve-Bayes models.
	NaiveBayes = core.NaiveBayes
)

// NewNetwork validates variables into a Network.
func NewNetwork(vars []Variable) (*Network, error) { return bn.NewNetwork(vars) }

// NewModel pairs a network with CPTs.
func NewModel(net *Network, cpds []*CPT) (*Model, error) { return bn.NewModel(net, cpds) }

// NewCPT builds one conditional probability table.
func NewCPT(card, parentCard int, table []float64) (*CPT, error) {
	return bn.NewCPT(card, parentCard, table)
}

// NewTracker initializes the distributed counters for net (Algorithm 1).
func NewTracker(net *Network, cfg Config) (*Tracker, error) { return core.NewTracker(net, cfg) }

// LoadNetwork returns one of the built-in Table I networks by name:
// "alarm", "hepar2", "link", "munin" or "new-alarm".
func LoadNetwork(name string) (*Network, error) { return netgen.ByName(name) }

// LoadModel returns a built-in network with default ground-truth CPTs.
func LoadModel(name string) (*Model, error) { return netgen.ModelByName(name) }

// NetworkNames lists the built-in network names.
func NetworkNames() []string { return netgen.Names() }

// Query-serving types (internal/serve).
type (
	// QueryServer is the HTTP query front end: every response is answered
	// from one immutable model snapshot and tagged with its version and
	// age. Attach with Start, stop with Shutdown (drains in-flight
	// requests), observe via /statsz.
	QueryServer = serve.Server
	// QueryServerConfig parameterizes a QueryServer: the ModelSource, the
	// request-body cap, the snapshot staleness bound, the admission limits
	// (MaxConcurrent/MaxQueue/RequestTimeout) and the degraded-mode
	// staleness ceiling (MaxDegradedAge).
	QueryServerConfig = serve.Config
	// ModelSource is what a QueryServer serves from — an in-process
	// Tracker (NewTrackerSource) or a live cluster coordinator
	// (serve.NewCoordinatorSource).
	ModelSource = serve.ModelSource
	// SwappableSource is a ModelSource whose back end can be replaced
	// under a running QueryServer (NewSwappableSource, Swap) — the
	// coordinator-failover primitive. Snapshot versions stay monotone
	// across a swap.
	SwappableSource = serve.SwappableSource
)

// NewQueryServer builds the HTTP query service; pair with
// QueryServer.Start or mount QueryServer.Handler in an existing server.
func NewQueryServer(cfg QueryServerConfig) (*QueryServer, error) { return serve.New(cfg) }

// NewTrackerSource adapts a Tracker into the ModelSource a QueryServer
// serves from.
func NewTrackerSource(tr *Tracker) ModelSource { return serve.NewTrackerSource(tr) }

// NewSwappableSource wraps an initial ModelSource so the back end can
// later be replaced with Swap without restarting the QueryServer.
func NewSwappableSource(initial ModelSource) (*SwappableSource, error) {
	return serve.NewSwappableSource(initial)
}

// Workload types.
type (
	// Training couples a ground-truth sampler with a site assigner.
	Training = stream.Training
	// Query is one probability test event.
	Query = stream.Query
	// Assigner routes events to sites.
	Assigner = stream.Assigner
)

// NewTraining builds a training stream over k uniformly loaded sites.
func NewTraining(model *Model, sites int, seed uint64) *Training {
	return stream.NewTraining(model, stream.NewUniformAssigner(sites, seed^0xdead), seed)
}

// NewSiteTrainings builds one independent training sub-stream per site for
// parallel ingestion — pair with DriveParallel, Produce, or one
// Tracker.Ingest/UpdateBatch pump per site.
func NewSiteTrainings(model *Model, sites int, seed uint64) []*Training {
	return stream.NewSiteTrainings(model, sites, seed)
}

// DriveParallel ingests perSite events from each sub-stream into tr on one
// goroutine per stream, in batches of batchSize events; returns the total
// ingested. The k-sites-on-k-goroutines engine behind the throughput
// benchmarks.
func DriveParallel(tr *Tracker, streams []*Training, perSite, batchSize int) int64 {
	return stream.DriveParallel(tr, streams, perSite, batchSize)
}

// DriveWorkStealing ingests counts[s] events from streams[s] — per-site
// quotas that may differ wildly, e.g. a Zipf-skewed assignment — with batch
// stealing between the site pumps, so idle workers drain the hot sites'
// tails. Returns the total ingested.
func DriveWorkStealing(tr *Tracker, streams []*Training, counts []int, batchSize int) int64 {
	return stream.DriveWorkStealing(tr, streams, counts, batchSize)
}

// Produce sends the next n events of t into out (each with its own backing
// array, ready for Tracker.Ingest), stopping early if ctx is canceled;
// returns how many were sent. The channel is left open — the caller owns it.
func Produce(ctx context.Context, t *Training, n int, out chan<- Event) int64 {
	return stream.Produce(ctx, t, n, out)
}

// GenQueries samples probability test events with truth at least minProb.
func GenQueries(model *Model, count int, minProb float64, seed uint64) ([]Query, error) {
	return stream.GenQueries(model, stream.QueryOptions{Count: count, MinProb: minProb, Seed: seed})
}

// LearnStructure estimates a Chow–Liu tree from complete samples — the
// paper's offline structure-selection route (internal/chowliu). The result
// is always a single connected tree rooted at variable 0.
func LearnStructure(samples [][]int, cards []int) (*Network, error) {
	return chowliu.Learn(samples, cards)
}

// LearnStructureModel learns the Chow–Liu structure and fits its CPTs by
// maximum likelihood on the same sample with Laplace smoothing alpha.
func LearnStructureModel(samples [][]int, cards []int, alpha float64) (*Model, error) {
	return chowliu.LearnModel(samples, cards, alpha)
}

// MarshalBIF renders a model in the Bayesian Interchange Format subset
// understood by UnmarshalBIF — compatible with the bnlearn repository files
// the paper's networks come from.
func MarshalBIF(name string, m *Model) ([]byte, error) { return bif.Marshal(name, m) }

// UnmarshalBIF parses a BIF document into a model, e.g. a genuine
// repository network downloaded separately.
func UnmarshalBIF(data []byte) (*Model, error) { return bif.Unmarshal(data) }

// KLDivergence estimates D(P‖Q) in nats by Monte Carlo — the standard
// distance between a ground-truth model and a learned one.
func KLDivergence(p, q *Model, samples int, seed uint64) (float64, error) {
	return bn.KLDivergenceEstimate(p, q, samples, seed)
}
