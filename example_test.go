package distbayes_test

import (
	"context"
	"fmt"
	"log"
	"sync"

	"distbayes"
)

// Example shows the full tracking loop on a two-variable network: define a
// structure, feed distributed observations, query the maintained joint.
func Example() {
	net, err := distbayes.NewNetwork([]distbayes.Variable{
		{Name: "Rain", Card: 2},
		{Name: "Umbrella", Card: 2, Parents: []int{0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := distbayes.NewTracker(net, distbayes.Config{
		Strategy: distbayes.NonUniform, Eps: 0.1, Sites: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Observations arrive at sites; here: rain with umbrella at site 0, dry
	// without at site 1, repeated.
	for i := 0; i < 500; i++ {
		tr.Update(0, []int{1, 1})
		tr.Update(1, []int{0, 0})
	}
	fmt.Printf("P[rain, umbrella] ≈ %.2f\n", tr.QueryProb([]int{1, 1}))
	fmt.Printf("events processed: %d\n", tr.Events())
	// Output:
	// P[rain, umbrella] ≈ 0.50
	// events processed: 1000
}

// ExampleNewTracker demonstrates the per-strategy error-budget allocations
// of Algorithm 1 (INIT).
func ExampleNewTracker() {
	net, _ := distbayes.NewNetwork([]distbayes.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 4, Parents: []int{0}},
	})
	uniform, _ := distbayes.NewTracker(net, distbayes.Config{
		Strategy: distbayes.Uniform, Eps: 0.16, Sites: 2,
	})
	nonuniform, _ := distbayes.NewTracker(net, distbayes.Config{
		Strategy: distbayes.NonUniform, Eps: 0.16, Sites: 2,
	})
	u := uniform.Allocation()
	n := nonuniform.Allocation()
	fmt.Printf("uniform:    eps(A)=%.5f eps(B)=%.5f (equal)\n", u.EpsA[0], u.EpsA[1])
	fmt.Printf("nonuniform: eps(A)=%.5f eps(B)=%.5f (B looser: more counters)\n", n.EpsA[0], n.EpsA[1])
	// Output:
	// uniform:    eps(A)=0.00707 eps(B)=0.00707 (equal)
	// nonuniform: eps(A)=0.00533 eps(B)=0.00846 (B looser: more counters)
}

// ExampleTracker_Classify maintains a classifier over the stream and
// predicts a hidden variable (Definition 4).
func ExampleTracker_Classify() {
	net, _ := distbayes.NewNetwork([]distbayes.Variable{
		{Name: "Class", Card: 2},
		{Name: "Feature", Card: 2, Parents: []int{0}},
	})
	tr, _ := distbayes.NewTracker(net, distbayes.Config{
		Strategy: distbayes.ExactMLE, Sites: 1, Smoothing: 0.5,
	})
	// Class 0 emits feature 0; class 1 emits feature 1 (mostly).
	for i := 0; i < 90; i++ {
		tr.Update(0, []int{0, 0})
		tr.Update(0, []int{1, 1})
	}
	for i := 0; i < 10; i++ {
		tr.Update(0, []int{0, 1})
		tr.Update(0, []int{1, 0})
	}
	fmt.Println("feature=1 →", tr.Classify(0, []int{0, 1}))
	fmt.Println("feature=0 →", tr.Classify(0, []int{0, 0}))
	// Output:
	// feature=1 → 1
	// feature=0 → 0
}

// ExampleMarshalBIF round-trips a model through the BIF interchange format.
func ExampleMarshalBIF() {
	net, _ := distbayes.NewNetwork([]distbayes.Variable{{Name: "Coin", Card: 2}})
	cpt, _ := distbayes.NewCPT(2, 1, []float64{0.5, 0.5})
	model, _ := distbayes.NewModel(net, []*distbayes.CPT{cpt})
	data, _ := distbayes.MarshalBIF("coin", model)
	back, err := distbayes.UnmarshalBIF(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P[heads] = %.1f\n", back.JointProb([]int{1}))
	// Output:
	// P[heads] = 0.5
}

// ExampleTracker_Ingest demonstrates concurrent ingestion: per-site producer
// goroutines feed one sharded tracker through a channel pump. With the
// ExactMLE strategy every tally is interleaving-independent, so the output
// is deterministic even though ingestion is parallel.
func ExampleTracker_Ingest() {
	model, err := distbayes.LoadModel("alarm")
	if err != nil {
		log.Fatal(err)
	}
	const sites, perSite = 4, 2000
	tr, err := distbayes.NewTracker(model.Network(), distbayes.Config{
		Strategy: distbayes.ExactMLE, Sites: sites, Seed: 1, Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	ch := make(chan distbayes.Event, 128)
	var producers sync.WaitGroup
	for _, st := range distbayes.NewSiteTrainings(model, sites, 7) {
		producers.Add(1)
		go func(st *distbayes.Training) {
			defer producers.Done()
			distbayes.Produce(context.Background(), st, perSite, ch)
		}(st)
	}
	go func() {
		producers.Wait()
		close(ch)
	}()

	n, err := tr.Ingest(context.Background(), ch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events on %d sites; %d exact-counter messages\n",
		n, sites, tr.Messages().SiteToCoord)
	// Output:
	// ingested 8000 events on 4 sites; 592000 exact-counter messages
}
