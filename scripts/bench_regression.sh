#!/usr/bin/env bash
# bench_regression.sh — run the ingestion + query benchmarks and gate on
# throughput regressions against the committed BENCH_BASELINE.txt.
#
# The gate is intentionally narrow: it fails only when a throughput
# benchmark (BenchmarkParallelIngest, BenchmarkDeltaIngest,
# BenchmarkClusterThroughput, BenchmarkFederationThroughput,
# BenchmarkServeQueries,
# BenchmarkServeOverload — anything reporting events/sec or queries/sec;
# for the overload benchmark queries/sec is the admitted-request
# throughput under shedding) loses more than BENCH_REGRESSION_PCT
# (default 30) percent of its baseline rate, and only when the runner
# reports the same `cpu:` line as the machine that recorded the baseline —
# absolute throughput is not comparable across hardware, so on a different
# CPU the comparison is printed as an advisory and the gate passes. ns/op
# and allocs of the query benchmarks are reported (via benchstat when
# installed) but never gated. Set BENCH_GATE=force to gate regardless of
# the CPU match (e.g. on a dedicated baseline runner with an unstable cpu
# string).
#
# Refresh the baseline on a quiet machine with:
#   scripts/bench_regression.sh --update-baseline
#
# Environment:
#   BENCH_BASELINE        baseline file (default BENCH_BASELINE.txt)
#   BENCH_REGRESSION_PCT  allowed events/sec drop in percent (default 30)
#   BENCH_TIME            go test -benchtime (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BENCH_BASELINE:-BENCH_BASELINE.txt}
THRESHOLD=${BENCH_REGRESSION_PCT:-30}
BENCH_TIME=${BENCH_TIME:-1s}
PATTERN='BenchmarkParallelIngest|BenchmarkDeltaIngest|BenchmarkQueryProb|BenchmarkClassify$|BenchmarkEstimatedModel|BenchmarkNewTracker|BenchmarkClusterThroughput|BenchmarkStructLearnOverhead|BenchmarkFederationThroughput|BenchmarkServeQueries|BenchmarkServeOverload'

run_benchmarks() {
  go test -count=1 -run '^$' -bench "$PATTERN" -benchtime "$BENCH_TIME" .
}

if [[ "${1:-}" == "--update-baseline" ]]; then
  run_benchmarks | tee "$BASELINE"
  echo "wrote $BASELINE"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "no $BASELINE found; run scripts/bench_regression.sh --update-baseline first" >&2
  exit 1
fi

CURRENT=$(mktemp)
trap 'rm -f "$CURRENT"' EXIT
run_benchmarks | tee "$CURRENT"

if command -v benchstat >/dev/null 2>&1; then
  echo
  echo "=== benchstat: $BASELINE vs current ==="
  benchstat "$BASELINE" "$CURRENT" || true
else
  echo "(benchstat not installed; skipping delta report)" >&2
fi

base_cpu=$(grep -m1 '^cpu:' "$BASELINE" || true)
cur_cpu=$(grep -m1 '^cpu:' "$CURRENT" || true)
gate=1
if [[ "${BENCH_GATE:-}" != "force" && "$base_cpu" != "$cur_cpu" ]]; then
  gate=0
  echo
  echo "baseline ${base_cpu:-<none>} != current ${cur_cpu:-<none>}:" \
       "different hardware, comparison is advisory only" >&2
fi

echo
echo "=== throughput gate: events/sec + queries/sec (threshold: -${THRESHOLD}%) ==="
awk -v thr="$THRESHOLD" -v gate="$gate" '
  function key() {
    k = $1
    sub(/-[0-9]+$/, "", k)  # strip the GOMAXPROCS suffix, varies per runner
    return k
  }
  function rate() {
    for (i = 2; i <= NF; i++)
      if ($i == "events/sec" || $i == "queries/sec") return $(i - 1)
    return ""
  }
  FNR == 1 { file++ }
  /events\/sec|queries\/sec/ {
    r = rate()
    if (r == "") next
    if (file == 1) base[key()] = r
    else cur[key()] = r
  }
  END {
    bad = 0
    for (k in base) {
      if (!(k in cur)) {
        printf "MISSING  %-45s baseline %.0f ev/s, not in current run\n", k, base[k]
        bad = 1
        continue
      }
      pct = (cur[k] - base[k]) / base[k] * 100
      status = "ok"
      if (pct < -thr) { status = (gate ? "FAIL" : "warn"); bad = 1 }
      printf "%-8s %-45s %.0f -> %.0f ev/s (%+.1f%%)\n", status, k, base[k], cur[k], pct
    }
    if (bad && gate) {
      # On failure, print the full old/new delta table benchstat-style so
      # the CI log carries the comparison even when benchstat is absent.
      print ""
      print "=== regression detail (old = baseline, new = this run) ==="
      printf "%-52s %14s %14s %9s\n", "name", "old rate/s", "new rate/s", "delta"
      n = 0
      for (k in base) keys[++n] = k
      for (i = 2; i <= n; i++) {         # insertion sort: asorti is gawk-only
        k = keys[i]
        for (j = i - 1; j >= 1 && keys[j] > k; j--) keys[j + 1] = keys[j]
        keys[j + 1] = k
      }
      for (i = 1; i <= n; i++) {
        k = keys[i]
        if (!(k in cur)) {
          printf "%-52s %14.0f %14s %9s\n", k, base[k], "missing", "n/a"
          continue
        }
        pct = (cur[k] - base[k]) / base[k] * 100
        printf "%-52s %14.0f %14.0f %+8.1f%%\n", k, base[k], cur[k], pct
      }
    }
    exit (gate ? bad : 0)
  }
' "$BASELINE" "$CURRENT"
