package serve

import (
	"fmt"
	"sync"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster"
	"distbayes/internal/core"
)

// Snapshot is one immutable view of the tracked model. Every Factor read
// against one Snapshot value observes a single consistent materialization
// of the counter state; Version identifies that state (monotone
// non-decreasing across acquisitions from one source) and BuiltAt is when
// it was materialized. Model lazily normalizes the factors into a
// bn.Model, cached per snapshot; the returned model is immutable and
// remains valid after Release. Release returns the snapshot's reference to
// its source and must be called exactly once, after the last read.
type Snapshot interface {
	// Factor is the tracked estimate of P[X_i = v | parent config pidx].
	Factor(i, v, pidx int) float64
	Version() uint64
	BuiltAt() time.Time
	Model() (*bn.Model, error)
	// Network is the structure the factors are parameters of. Fixed-
	// structure sources return the tracked network on every snapshot; a
	// learned-structure source (NewLearnedCoordinatorSource) may return a
	// different structure over the same variables after a hot swap, and all
	// of a snapshot's factors are consistent with its own network.
	Network() *bn.Network
	// StructureEpoch counts structure changes behind the snapshot: fixed at
	// 0 for fixed-structure sources, bumped at every hot structure swap by
	// learning sources. Exposed to clients in the response envelope's
	// snapshot block so they can detect swaps; it is non-decreasing per
	// source, like Version.
	StructureEpoch() uint64
	Release()
}

// ModelSource is the serving back end: an in-process tracker
// (NewTrackerSource) or a live cluster coordinator (NewCoordinatorSource),
// behind one interface so the server neither knows nor cares whether the
// model is trained in-process or across a TCP cluster.
type ModelSource interface {
	Network() *bn.Network
	// AcquireSnapshot returns the current model snapshot with a read
	// reference held, or an error when the back end can no longer produce
	// one (a closed or crashed coordinator). It may rebuild (bulk-reading
	// the dirty part of the counter state) or return the cached snapshot
	// when nothing changed. The server treats an error as a refresh
	// failure and keeps answering from its last-good snapshot in degraded
	// mode — see the package comment.
	AcquireSnapshot() (Snapshot, error)
}

type trackerSource struct{ t *core.Tracker }

// NewTrackerSource serves queries from an in-process tracker. Snapshots
// are the tracker's refcounted model snapshots: ingestion never blocks on
// a slow reader — an ingest burst simply retires the served snapshot,
// whose rows are recycled when its last reader releases it.
func NewTrackerSource(t *core.Tracker) ModelSource { return trackerSource{t} }

func (s trackerSource) Network() *bn.Network { return s.t.Network() }
func (s trackerSource) AcquireSnapshot() (Snapshot, error) {
	return s.t.AcquireSnapshot(), nil
}

type coordinatorSource struct{ co *cluster.Coordinator }

// NewCoordinatorSource serves queries from a live cluster coordinator —
// the distributed mirror of NewTrackerSource, valid at any time during a
// run (the paper's query-at-any-time model) and after it completes. A
// coordinator that was Closed or died with a protocol error fails
// AcquireSnapshot, which flips the server into degraded mode; a run that
// completed cleanly keeps serving its final estimates as fresh.
func NewCoordinatorSource(co *cluster.Coordinator) ModelSource { return coordinatorSource{co} }

func (s coordinatorSource) Network() *bn.Network { return s.co.Network() }
func (s coordinatorSource) AcquireSnapshot() (Snapshot, error) {
	if err := s.co.Err(); err != nil {
		return nil, fmt.Errorf("serve: coordinator source: %w", err)
	}
	return s.co.AcquireSnapshot(), nil
}

type federationSource struct{ f *cluster.Federation }

// NewFederatedSource serves queries from a striped coordinator federation:
// the scatter-gather merge of the per-stripe estimate snapshots, behind the
// same ModelSource interface as a single coordinator — so cmd/bnserve fronts
// a federation unchanged. Snapshot versions are the sum of the per-stripe
// versions (monotone, like a single coordinator's). If any stripe
// coordinator dies, AcquireSnapshot fails and the server flips into degraded
// mode, answering from the last-good merged snapshot.
func NewFederatedSource(f *cluster.Federation) ModelSource { return federationSource{f} }

func (s federationSource) Network() *bn.Network { return s.f.Network() }
func (s federationSource) AcquireSnapshot() (Snapshot, error) {
	if err := s.f.Err(); err != nil {
		return nil, fmt.Errorf("serve: federated source: %w", err)
	}
	return s.f.AcquireSnapshot(), nil
}

type learnedSource struct{ co *cluster.Coordinator }

// NewLearnedCoordinatorSource serves queries from a coordinator's *learned*
// structure — the online distributed Chow–Liu tree — instead of the fixed
// base DAG. Snapshots carry the learned tree itself (Network differs across
// structure swaps) with parameters seeded from the same windowed pair
// statistics, and StructureEpoch bumps at every swap; Version stays
// monotone across swaps, so the per-client consistency contract is
// unchanged. Before the first learned tree lands (or if the run was started
// without structure learning) AcquireSnapshot fails, which the server
// surfaces as unavailable/degraded — the documented cold-start behavior.
func NewLearnedCoordinatorSource(co *cluster.Coordinator) ModelSource { return learnedSource{co} }

func (s learnedSource) Network() *bn.Network { return s.co.Network() }
func (s learnedSource) AcquireSnapshot() (Snapshot, error) {
	if err := s.co.Err(); err != nil {
		return nil, fmt.Errorf("serve: learned source: %w", err)
	}
	snap, err := s.co.AcquireLearnedSnapshot()
	if err != nil {
		return nil, fmt.Errorf("serve: learned source: %w", err)
	}
	return snap, nil
}

// SwappableSource is a ModelSource whose back end can be replaced while
// the server keeps running — the failover primitive for the degraded-mode
// story: when the coordinator behind a server dies, a supervisor restores
// a replacement from its last checkpoint and Swaps it in; the server's
// degraded mode bridges the gap and the swap restores fresh serving with
// no restart and no client-visible discontinuity.
//
// Versions stay monotone across swaps. A restored coordinator restarts
// its per-stripe version clocks below the dead one's, so raw versions
// would jump backwards at failover; SwappableSource offsets every
// snapshot version by the highest version it has handed out, bumping the
// offset at each Swap, so the consistency contract ("version monotone
// non-decreasing") holds across the entire failover sequence.
type SwappableSource struct {
	netw *bn.Network

	mu      sync.Mutex // guards cur/offset/maxSeen across acquire and swap
	cur     ModelSource
	offset  uint64 // added to every version from cur
	maxSeen uint64 // highest offset version handed out so far
}

// NewSwappableSource wraps initial so the back end can later be replaced
// with Swap.
func NewSwappableSource(initial ModelSource) (*SwappableSource, error) {
	if initial == nil {
		return nil, fmt.Errorf("serve: nil initial source")
	}
	return &SwappableSource{netw: initial.Network(), cur: initial}, nil
}

// Network returns the served network, fixed at construction: every swapped
// source must serve the same variables.
func (s *SwappableSource) Network() *bn.Network { return s.netw }

// AcquireSnapshot acquires from the current back end, offsetting the
// version per the failover contract. The lock is held across the inner
// acquire so a concurrent Swap cannot interleave between acquisition and
// the offset bookkeeping; the server's refresh path is single-flight, so
// the lock is uncontended in practice.
func (s *SwappableSource) AcquireSnapshot() (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.cur.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	off := s.offset
	if v := snap.Version() + off; v > s.maxSeen {
		s.maxSeen = v
	}
	return &offsetSnapshot{Snapshot: snap, off: off}, nil
}

// Swap replaces the back end. The replacement must serve the same
// variables (names and cardinalities); its structure may differ — snapshots
// carry their own Network, so a learned-structure replacement serves
// correctly. Snapshots acquired before the swap stay valid until released.
func (s *SwappableSource) Swap(next ModelSource) error {
	if next == nil {
		return fmt.Errorf("serve: Swap(nil)")
	}
	if err := sameShape(s.netw, next.Network()); err != nil {
		return fmt.Errorf("serve: swapped source incompatible: %w", err)
	}
	s.mu.Lock()
	s.offset = s.maxSeen
	s.cur = next
	s.mu.Unlock()
	return nil
}

// StructStatsReporter is the optional ModelSource extension for back ends
// that run the structure-learning overlay: it returns the live fold counters
// and true, or ok = false when the overlay is off. The server surfaces the
// counters in /statsz (Stats.Struct). Coordinator-backed sources implement
// it; SwappableSource delegates to its current back end.
type StructStatsReporter interface {
	StructLearnStats() (cluster.StructStats, bool)
}

func (s coordinatorSource) StructLearnStats() (cluster.StructStats, bool) {
	if !s.co.StructLearning() {
		return cluster.StructStats{}, false
	}
	return s.co.StructLearnStats(), true
}

func (s learnedSource) StructLearnStats() (cluster.StructStats, bool) {
	if !s.co.StructLearning() {
		return cluster.StructStats{}, false
	}
	return s.co.StructLearnStats(), true
}

// StructLearnStats delegates to the current back end, so /statsz keeps
// reporting learning counters across a failover swap.
func (s *SwappableSource) StructLearnStats() (cluster.StructStats, bool) {
	s.mu.Lock()
	cur := s.cur
	s.mu.Unlock()
	if r, ok := cur.(StructStatsReporter); ok {
		return r.StructLearnStats()
	}
	return cluster.StructStats{}, false
}

// sameShape checks two networks describe the same variables (names and
// cardinalities) — the precondition for serving their snapshots
// interchangeably. Structure is deliberately not compared: queries resolve
// parent sets against each snapshot's own Network, so sources whose
// structure differs (or changes over time, as with learned structure) swap
// safely as long as the variables match.
func sameShape(a, b *bn.Network) error {
	if b == nil {
		return fmt.Errorf("nil network")
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("%d variables, want %d", b.Len(), a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Var(i).Name != b.Var(i).Name || a.Card(i) != b.Card(i) {
			return fmt.Errorf("variable %d is %s(card %d), want %s(card %d)",
				i, b.Var(i).Name, b.Card(i), a.Var(i).Name, a.Card(i))
		}
	}
	return nil
}

// offsetSnapshot shifts the wrapped snapshot's version by the swap offset;
// everything else (factors, model, release) passes through.
type offsetSnapshot struct {
	Snapshot
	off uint64
}

func (o *offsetSnapshot) Version() uint64 { return o.Snapshot.Version() + o.off }
