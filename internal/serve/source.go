package serve

import (
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster"
	"distbayes/internal/core"
)

// Snapshot is one immutable view of the tracked model. Every Factor read
// against one Snapshot value observes a single consistent materialization
// of the counter state; Version identifies that state (monotone
// non-decreasing across acquisitions from one source) and BuiltAt is when
// it was materialized. Model lazily normalizes the factors into a
// bn.Model, cached per snapshot; the returned model is immutable and
// remains valid after Release. Release returns the snapshot's reference to
// its source and must be called exactly once, after the last read.
type Snapshot interface {
	// Factor is the tracked estimate of P[X_i = v | parent config pidx].
	Factor(i, v, pidx int) float64
	Version() uint64
	BuiltAt() time.Time
	Model() (*bn.Model, error)
	Release()
}

// ModelSource is the serving back end: an in-process tracker
// (NewTrackerSource) or a live cluster coordinator (NewCoordinatorSource),
// behind one interface so the server neither knows nor cares whether the
// model is trained in-process or across a TCP cluster.
type ModelSource interface {
	Network() *bn.Network
	// AcquireSnapshot returns the current model snapshot with a read
	// reference held. It may rebuild (bulk-reading the dirty part of the
	// counter state) or return the cached snapshot when nothing changed.
	AcquireSnapshot() Snapshot
}

type trackerSource struct{ t *core.Tracker }

// NewTrackerSource serves queries from an in-process tracker. Snapshots
// are the tracker's refcounted model snapshots: ingestion never blocks on
// a slow reader — an ingest burst simply retires the served snapshot,
// whose rows are recycled when its last reader releases it.
func NewTrackerSource(t *core.Tracker) ModelSource { return trackerSource{t} }

func (s trackerSource) Network() *bn.Network      { return s.t.Network() }
func (s trackerSource) AcquireSnapshot() Snapshot { return s.t.AcquireSnapshot() }

type coordinatorSource struct{ co *cluster.Coordinator }

// NewCoordinatorSource serves queries from a live cluster coordinator —
// the distributed mirror of NewTrackerSource, valid at any time during a
// run (the paper's query-at-any-time model) and after it completes.
func NewCoordinatorSource(co *cluster.Coordinator) ModelSource { return coordinatorSource{co} }

func (s coordinatorSource) Network() *bn.Network      { return s.co.Network() }
func (s coordinatorSource) AcquireSnapshot() Snapshot { return s.co.AcquireSnapshot() }
