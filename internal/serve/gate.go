package serve

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
)

// errShed is returned by gate.enter when both the concurrency limit and
// the wait queue are full: the request is shed (HTTP 429) instead of
// piling onto the snapshot refresh path and collapsing latency for the
// admitted requests.
var errShed = errors.New("serve: over capacity, request shed")

// gate is the admission controller: a concurrency semaphore with a small
// bounded wait queue in front of it. Requests beyond MaxConcurrent wait
// in the queue (bounded, deadline-aware); requests beyond the queue are
// shed immediately. A nil *gate admits everything.
type gate struct {
	sem      chan struct{}
	maxQueue int32
	queued   atomic.Int32
}

func newGate(maxConcurrent, maxQueue int) *gate {
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxQueue > math.MaxInt32 {
		maxQueue = math.MaxInt32
	}
	return &gate{sem: make(chan struct{}, maxConcurrent), maxQueue: int32(maxQueue)}
}

// enter admits the request (nil), sheds it (errShed), or abandons the
// wait when ctx expires while queued (ctx.Err()). Pair every nil return
// with leave.
func (g *gate) enter(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return errShed
	}
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) leave() {
	if g != nil {
		<-g.sem
	}
}

// inFlight and waiting are point-in-time reads for /statsz.
func (g *gate) inFlight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

func (g *gate) waiting() int {
	if g == nil {
		return 0
	}
	return int(g.queued.Load())
}
