package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster"
	"distbayes/internal/cluster/chaos"
	"distbayes/internal/core"
	"distbayes/internal/stream"
)

// TestServeChaosCoordinatorKillRestart extends the PR 6 chaos harness to
// the serving plane: the coordinator is killed at a seeded frame count
// under a live closed-loop client mix, a replacement is restored from its
// last checkpoint and swapped in (SwappableSource), the chaos proxy
// retargets so the sites re-resume — and through all of it every response
// must be either a correct answer from a version-monotone snapshot
// (degraded ones tagged and within the staleness ceiling) or a clean
// 429/503: never a hang, never a torn read, never a 500. Runs under -race
// in CI.
func TestServeChaosCoordinatorKillRestart(t *testing.T) {
	events := 20000
	if testing.Short() {
		events = 6000
	}
	dir := t.TempDir()
	cfg := cluster.Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.Uniform,
		Eps: 0.1, Delta: 0.25, Sites: 4, Events: events, StreamSeed: 1789,
		CheckpointPath:        filepath.Join(dir, "coord.ckpt"),
		CheckpointEveryFrames: 300,
	}

	co1, err := cluster.NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Seeded kill point: past several checkpoint cadences, well before the
	// run can finish (same schedule as the cluster-layer chaos test).
	rng := bn.NewRNG(0x5EEDC0DE)
	co1.CrashAfterFrames = int64(cfg.Events/4 + rng.Intn(cfg.Events/4))
	p, err := chaos.New(chaos.Config{}, co1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	sw, err := NewSwappableSource(NewCoordinatorSource(co1))
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{
		Source:         sw,
		MaxSnapshotAge: 500 * time.Microsecond, // refresh often: the failover is the point
		MaxDegradedAge: time.Minute,
		MaxConcurrent:  16,
		RequestTimeout: 10 * time.Second,
	})

	var wg sync.WaitGroup
	errs := make([]error, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := cluster.NewSite(uint32(i), p.Addr())
			s.RetryBase = 2 * time.Millisecond
			s.RetryCap = 50 * time.Millisecond
			s.MaxResumes = 200 // the coordinator is gone for a stretch; keep knocking
			_, errs[i] = s.Run()
		}(i)
	}

	// Closed-loop clients across the whole kill/restore window. Each pins
	// the full response contract per request.
	nw := co1.Network()
	done := make(chan struct{})
	var clientWG sync.WaitGroup
	var degradedSeen, shedSeen atomic.Int64
	for c := 0; c < 3; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			crng := bn.NewRNG(uint64(c) + 0xFACE)
			var x []int
			var lastVersion uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				x = stream.RandomAssignment(nw, crng, x)
				resp, err := client.Post("http://"+srv.Addr()+"/v1/queryprob",
					"text/plain", bytes.NewBufferString(csvBody(x)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var env queryEnvelope
				decErr := json.NewDecoder(resp.Body).Decode(&env)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						t.Errorf("client %d: decoding 200: %v", c, decErr)
						return
					}
					if math.IsNaN(env.Result.P) || env.Result.P < 0 || env.Result.P > 1 {
						t.Errorf("client %d: bad probability %v", c, env.Result.P)
						return
					}
					if env.Snapshot.Version < lastVersion {
						t.Errorf("client %d: version went backwards: %d -> %d",
							c, lastVersion, env.Snapshot.Version)
						return
					}
					lastVersion = env.Snapshot.Version
					if env.Snapshot.Degraded {
						degradedSeen.Add(1)
						if age := time.Duration(env.Snapshot.AgeMicros) * time.Microsecond; age > time.Minute {
							t.Errorf("client %d: degraded answer %v old, past the ceiling", c, age)
							return
						}
					}
				case http.StatusTooManyRequests:
					shedSeen.Add(1)
				case http.StatusServiceUnavailable:
					// clean rejection (deadline or no servable snapshot)
				default:
					t.Errorf("client %d: status %d — the overload contract allows only 200/429/503",
						c, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	serve1 := make(chan error, 1)
	go func() {
		_, err := co1.Serve()
		serve1 <- err
	}()
	if err := <-serve1; err != cluster.ErrCoordinatorClosed {
		t.Fatalf("killed Serve returned %v, want ErrCoordinatorClosed", err)
	}

	// The coordinator is dead. The server must flip to degraded — observed
	// deterministically via a synchronous probe (the cache is stale within
	// 500µs, so the next acquire probes the dead source).
	x := make([]int, nw.Len())
	waitFor(t, "degraded serving after the kill", func() bool {
		code, env := queryOnce(t, srv.Addr(), x)
		if code != http.StatusOK {
			t.Fatalf("query after kill: code %d (%s) — degraded serving should bridge the gap", code, env.Error)
		}
		return env.Snapshot.Degraded
	})
	if hcode, state := healthState(t, srv.Addr()); hcode != http.StatusOK || state != HealthDegraded {
		t.Fatalf("healthz after kill: %d %q", hcode, state)
	}

	// Restore the replacement from the last cadence checkpoint (its write
	// is asynchronous; wait for the file), retarget the proxy, swap it in.
	waitFor(t, "a checkpoint file", func() bool {
		_, err := os.Stat(cfg.CheckpointPath)
		return err == nil
	})
	co2, err := cluster.NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co2.Close() })
	if err := co2.RestoreCheckpointFile(cfg.CheckpointPath); err != nil {
		t.Fatal(err)
	}
	p.SetTarget(co2.Addr())
	if err := sw.Swap(NewCoordinatorSource(co2)); err != nil {
		t.Fatal(err)
	}

	// Fresh serving resumes through the swapped source, no restart.
	waitFor(t, "fresh serving after the swap", func() bool {
		code, env := queryOnce(t, srv.Addr(), x)
		return code == http.StatusOK && !env.Snapshot.Degraded
	})

	serve2 := make(chan cluster.Result, 1)
	go func() {
		res, err := co2.Serve()
		if err != nil {
			t.Error(err)
		}
		serve2 <- res
	}()
	wg.Wait()
	res := <-serve2
	close(done)
	clientWG.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
	}
	if res.Stats.Events != int64(cfg.Events) {
		t.Errorf("restored run accounted %d events, want %d", res.Stats.Events, cfg.Events)
	}

	// Quiescent end state: the server's answer is bit-identical to the
	// restored coordinator's own query path, at a version that never moved
	// backwards across the failover.
	rng2 := bn.NewRNG(99)
	for q := 0; q < 10; q++ {
		x = stream.RandomAssignment(nw, rng2, x)
		code, env := queryOnce(t, srv.Addr(), x)
		if code != http.StatusOK || env.Snapshot.Degraded {
			t.Fatalf("final query: code %d degraded %v", code, env.Snapshot.Degraded)
		}
		if want := co2.QueryProb(x); math.Float64bits(env.Result.P) != math.Float64bits(want) {
			t.Fatalf("final answer %v != coordinator %v", env.Result.P, want)
		}
	}

	st := srv.Stats()
	if degradedSeen.Load() == 0 && st.Degraded.Served == 0 {
		t.Error("no degraded responses were served; the chaos run degenerated to a clean one")
	}
	if st.Degraded.RefreshErrors == 0 {
		t.Error("no refresh errors recorded across a coordinator kill")
	}
	if st.Panics != 0 {
		t.Errorf("server recorded %d panics", st.Panics)
	}
	t.Logf("chaos serve run: %d degraded answers, %d shed, %d refresh errors, final version %d",
		st.Degraded.Served, shedSeen.Load(), st.Degraded.RefreshErrors, st.Snapshot.Version)
}
