package serve

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"distbayes/internal/netgen"
)

// FuzzServeRequest throws arbitrary bytes at every HTTP request decoder —
// evidence maps, variable names, subset queries, positional and CSV
// assignments — and asserts a decoder either rejects the body or returns a
// fully validated result: in-range values, known variables, ancestrally
// closed subsets. This is the serving-layer edge of the repo's
// length-validate-before-allocating hardening standard (FuzzDecodeFrame,
// FuzzLoadState).
func FuzzServeRequest(f *testing.F) {
	nw, err := netgen.ByName("alarm")
	if err != nil {
		f.Fatal(err)
	}
	names := make(map[string]int, nw.Len())
	for i := 0; i < nw.Len(); i++ {
		names[nw.Var(i).Name] = i
	}

	for _, seed := range fuzzServeSeeds() {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if x, err := decodeFullAssignment(nw, names, data); err == nil {
			if len(x) != nw.Len() {
				t.Fatalf("full assignment has %d values, want %d", len(x), nw.Len())
			}
			for i, v := range x {
				if v < 0 || v >= nw.Card(i) {
					t.Fatalf("x[%d] = %d out of range", i, v)
				}
			}
		}
		if set, x, err := decodeSubsetAssignment(nw, names, data); err == nil {
			if len(set) == 0 {
				t.Fatal("accepted empty subset")
			}
			for idx, i := range set {
				if idx > 0 && set[idx-1] >= i {
					t.Fatal("subset not ascending")
				}
				if x[i] < 0 || x[i] >= nw.Card(i) {
					t.Fatalf("subset value %d out of range for %d", x[i], i)
				}
				inSet := func(j int) bool {
					for _, s := range set {
						if s == j {
							return true
						}
					}
					return false
				}
				for _, p := range nw.Parents(i) {
					if !inSet(p) {
						t.Fatalf("accepted non-closed subset: %d missing parent %d", i, p)
					}
				}
			}
		}
		if target, x, err := decodeClassify(nw, names, data); err == nil {
			if target < 0 || target >= nw.Len() || len(x) != nw.Len() {
				t.Fatalf("classify target %d / arity %d invalid", target, len(x))
			}
		}
		if target, ev, err := decodeClassifyPartial(nw, names, data); err == nil {
			if _, ok := ev[target]; ok {
				t.Fatal("accepted target in evidence")
			}
			for i, v := range ev {
				if i < 0 || i >= nw.Len() || v < 0 || v >= nw.Card(i) {
					t.Fatalf("evidence %d=%d out of range", i, v)
				}
			}
		}
		if assign, err := decodeMarginal(nw, names, data); err == nil {
			if len(assign) == 0 {
				t.Fatal("accepted empty marginal")
			}
			for i, v := range assign {
				if i < 0 || i >= nw.Len() || v < 0 || v >= nw.Card(i) {
					t.Fatalf("marginal %d=%d out of range", i, v)
				}
			}
		}
	})
}

// fuzzServeSeeds is the seed corpus: one representative body per request
// shape plus malformed edges.
func fuzzServeSeeds() []string {
	csv := ""
	for i := 0; i < 37; i++ {
		if i > 0 {
			csv += ","
		}
		csv += "1"
	}
	return []string{
		"",
		csv,
		"0,1,2",
		"9999999999,0",
		`{"x":[0,1,0]}`,
		`{"assign":{"alarm_0":1,"alarm_1":0}}`,
		`{"assign":{"nope":0}}`,
		`{"target":"alarm_3","x":[0,0,0]}`,
		`{"target":"alarm_3","assign":{"alarm_0":1}}`,
		`{"target":"alarm_0","evidence":{"alarm_1":1}}`,
		`{"target":"alarm_0","evidence":{"alarm_0":0}}`,
		`{"assign":{}}`,
		`{"x": notjson`,
		"{\"assign\":{\"alarm_0\":-1}}",
		" \t\n{\"x\":[]}",
	}
}

// TestWriteFuzzServeCorpus regenerates the committed seed corpus under
// testdata/fuzz when DISTBAYES_WRITE_FUZZ_CORPUS is set; normally it only
// verifies the corpus directory exists.
func TestWriteFuzzServeCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzServeRequest")
	if os.Getenv("DISTBAYES_WRITE_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing: %v (regenerate with DISTBAYES_WRITE_FUZZ_CORPUS=1)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzServeSeeds() {
		path := filepath.Join(dir, "seed"+strconv.Itoa(i))
		data := []byte("go test fuzz v1\n[]byte(" + strconv.Quote(seed) + ")\n")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
