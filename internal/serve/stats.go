package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two latency histogram buckets:
// bucket i counts requests whose latency in whole microseconds has bit
// length i, i.e. lies in [2^(i-1), 2^i) µs (bucket 0 absorbs sub-µs
// requests, the last bucket absorbs everything from ~1s up).
const latencyBuckets = 22

// histogram is a lock-free power-of-two latency histogram. Quantiles come
// back as bucket upper bounds, so they are exact to within a factor of two
// — plenty for a /statsz health read; the closed-loop benchmark computes
// exact percentiles client-side instead.
type histogram struct {
	count   atomic.Int64
	buckets [latencyBuckets]atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	idx := 0
	if us > 0 {
		idx = bits.Len64(uint64(us))
		if idx >= latencyBuckets {
			idx = latencyBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
}

// quantile returns the upper bound (µs) of the bucket holding the
// q-quantile observation, 0 when nothing was observed.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < latencyBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return float64(uint64(1) << uint(i))
		}
	}
	return float64(uint64(1) << uint(latencyBuckets-1))
}

func (h *histogram) snapshot() []int64 {
	out := make([]int64, latencyBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// qpsWindow counts requests in per-second slots so Stats reports a
// recent-window rate rather than a lifetime average. Slot recycling is a
// CAS on the slot's second; a request racing the reset may land in a
// just-cleared slot — a stats-precision artifact, never a correctness one.
const (
	qpsSlots         = 16
	qpsWindowSeconds = 10
)

type qpsSlot struct {
	sec atomic.Int64
	n   atomic.Int64
}

type qpsWindow struct {
	slots [qpsSlots]qpsSlot
}

func (w *qpsWindow) record(nowSec int64) {
	s := &w.slots[nowSec%qpsSlots]
	if old := s.sec.Load(); old != nowSec {
		if s.sec.CompareAndSwap(old, nowSec) {
			s.n.Store(0)
		}
	}
	s.n.Add(1)
}

// rate averages over the last qpsWindowSeconds whole seconds (the current
// partial second is excluded so a fresh second does not read as a dip).
func (w *qpsWindow) rate(nowSec int64) float64 {
	var sum int64
	for i := range w.slots {
		sec := w.slots[i].sec.Load()
		if sec >= nowSec-qpsWindowSeconds && sec < nowSec {
			sum += w.slots[i].n.Load()
		}
	}
	return float64(sum) / qpsWindowSeconds
}

// Stats is a point-in-time view of the server's counters — the /statsz
// payload, also returned by Server.Stats for in-process inspection.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Health is the /healthz state: "ok", "degraded", "draining" or
	// "unavailable".
	Health     string           `json:"health"`
	Requests   int64            `json:"requests"`
	Errors     int64            `json:"errors"`
	Panics     int64            `json:"panics"`
	QPS        float64          `json:"qps"`
	ByEndpoint map[string]int64 `json:"by_endpoint"`
	Admission  AdmissionStats   `json:"admission"`
	Degraded   DegradedStats    `json:"degraded"`
	Snapshot   SnapshotStats    `json:"snapshot"`
	Latency    LatencyStats     `json:"latency"`
	// Struct reports the back end's structure-learning counters; nil when
	// the source does not run the overlay (fixed-structure runs, tracker
	// sources, federations).
	Struct *StructLearnStats `json:"struct,omitempty"`
}

// StructLearnStats is the /statsz view of a coordinator's online
// structure-learning overlay: how many struct-stats frames it folded, how
// many Chow-Liu relearns and hot structure swaps it ran, and the current
// structure epoch.
type StructLearnStats struct {
	Frames   int64  `json:"frames"`
	Entries  int64  `json:"entries"`
	Relearns int64  `json:"relearns"`
	Swaps    int64  `json:"swaps"`
	Epoch    uint64 `json:"epoch"`
}

// AdmissionStats describes the admission gate: its limits, its current
// occupancy, and how many requests it turned away.
type AdmissionStats struct {
	// MaxConcurrent and MaxQueue are the configured limits (0 =
	// unlimited, no gate).
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// InFlight and Queued are point-in-time occupancy reads.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Shed counts requests rejected with 429 (queue full);
	// DeadlineExceeded counts requests whose deadline expired while
	// queued at the gate or waiting on a snapshot refresh (503).
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// DegradedStats describes degraded-mode serving: whether the source is
// currently failing and how the server has been answering through it.
type DegradedStats struct {
	// Active means the last refresh attempt failed; requests are served
	// from the last-good snapshot (within the staleness ceiling).
	Active       bool    `json:"active"`
	SinceSeconds float64 `json:"since_seconds,omitempty"`
	// Served counts answers from the last-good snapshot while degraded;
	// Unavailable counts 503s because no snapshot within the ceiling
	// existed; RefreshErrors counts failed source probes.
	Served        int64  `json:"served"`
	Unavailable   int64  `json:"unavailable"`
	RefreshErrors int64  `json:"refresh_errors"`
	LastError     string `json:"last_error,omitempty"`
}

// SnapshotStats describes the served snapshot and how often the server went
// back to its source for a new one.
type SnapshotStats struct {
	// Version and AgeMicros describe the currently cached snapshot.
	Version   uint64 `json:"version"`
	AgeMicros int64  `json:"age_us"`
	// Acquires counts source acquisitions (cache misses by age);
	// Refreshes counts the subset that observed a new snapshot version,
	// i.e. actual rebuilds become visible here.
	Acquires  int64 `json:"acquires"`
	Refreshes int64 `json:"refreshes"`
}

// LatencyStats summarizes the request latency histogram. Percentiles are
// power-of-two bucket upper bounds in microseconds.
type LatencyStats struct {
	Count     int64   `json:"count"`
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
	// BucketsPow2Micros[i] counts requests in [2^(i-1), 2^i) µs.
	BucketsPow2Micros []int64 `json:"buckets_pow2_us"`
}
