package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster"
	"distbayes/internal/core"
	"distbayes/internal/stream"
)

// TestServeLearnedStructureHotSwap serves live from a coordinator's online
// learned structure while the generating network drifts mid-stream, under
// -race: the structure engine hot-swaps trees underneath the HTTP server
// while clients hammer it. Per client, snapshot versions and the structure
// epoch must both be non-decreasing across every swap; 503s are legal only
// before the first learned tree lands (the documented cold start).
func TestServeLearnedStructureHotSwap(t *testing.T) {
	events := 12000
	if testing.Short() {
		events = 4000
	}
	cfg := cluster.Config{
		NetName: "tree:10:3:3", CPTSeed: 0xC0DE, Strategy: core.Uniform,
		Eps: 0.1, Delta: 0.25, Sites: 3, Events: events, StreamSeed: 5,
		StructBatchEvents:  64,
		StructWindowEvents: int64(events) / 4,
		StructWindowBlocks: 4,
		DriftNetName:       "tree:10:3:77",
		DriftAfter:         0.5,
		DriftCPTSeed:       0xD21F,
	}
	co, err := cluster.NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := startServer(t, Config{Source: NewLearnedCoordinatorSource(co), MaxSnapshotAge: time.Millisecond})

	var siteWG sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		siteWG.Add(1)
		go func(id uint32) {
			defer siteWG.Done()
			if _, err := cluster.NewSite(id, co.Addr()).Run(); err != nil {
				t.Errorf("site %d: %v", id, err)
			}
		}(uint32(i))
	}

	done := make(chan struct{})
	var okQueries, coldQueries atomic.Int64
	var clientWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			client := &http.Client{}
			rng := bn.NewRNG(uint64(c) + 33)
			var x []int
			var lastVersion, lastEpoch uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				x = stream.RandomAssignment(co.Network(), rng, x)
				resp, err := client.Post("http://"+srv.Addr()+"/v1/queryprob",
					"text/plain", bytes.NewBufferString(csvBody(x)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var env struct {
					Result struct {
						P float64 `json:"p"`
					} `json:"result"`
					Snapshot struct {
						Version        uint64 `json:"version"`
						StructureEpoch uint64 `json:"structure_epoch"`
					} `json:"snapshot"`
				}
				err = json.NewDecoder(resp.Body).Decode(&env)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					// Cold start: no learned tree yet. Once a snapshot has
					// been served the server answers degraded, never 503.
					if okQueries.Load() > 0 && lastVersion > 0 {
						t.Errorf("client %d: 503 after successful serving began", c)
						return
					}
					coldQueries.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				if math.IsNaN(env.Result.P) || env.Result.P < 0 || env.Result.P > 1 {
					t.Errorf("client %d: bad probability %v", c, env.Result.P)
					return
				}
				if env.Snapshot.Version < lastVersion {
					t.Errorf("client %d: version went backwards across swap: %d -> %d",
						c, lastVersion, env.Snapshot.Version)
					return
				}
				if env.Snapshot.StructureEpoch < lastEpoch {
					t.Errorf("client %d: structure epoch went backwards: %d -> %d",
						c, lastEpoch, env.Snapshot.StructureEpoch)
					return
				}
				if env.Snapshot.StructureEpoch == 0 {
					t.Errorf("client %d: served learned snapshot with epoch 0", c)
					return
				}
				lastVersion, lastEpoch = env.Snapshot.Version, env.Snapshot.StructureEpoch
				okQueries.Add(1)
			}
		}(c)
	}

	if _, err := co.Serve(); err != nil {
		t.Fatal(err)
	}
	siteWG.Wait()
	close(done)
	clientWG.Wait()

	if okQueries.Load() == 0 {
		t.Error("no live queries served from the learned structure")
	}
	ss := co.StructLearnStats()
	if ss.Relearns == 0 || ss.Epoch == 0 {
		t.Errorf("structure engine never learned: %+v", ss)
	}
	if ss.Swaps == 0 {
		t.Errorf("drift run produced no structure swap: %+v", ss)
	}
	t.Logf("ok=%d cold=%d struct=%+v", okQueries.Load(), coldQueries.Load(), ss)
}
