package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"distbayes/internal/bn"
)

// Request decoding. Two body shapes are accepted, dispatched on the first
// byte: a JSON object, or (for the full-assignment endpoints) a compact CSV
// fast path — "v0,v1,...", one value per variable in declaration order —
// that a closed-loop client can emit with zero encoding cost. Everything is
// validated against the network before use: unknown names, out-of-range
// values, wrong arity and non-closed subsets are rejected, and nothing
// proportional to a claimed size is allocated before the claim is checked
// (the CSV parser counts separators first; JSON allocation is bounded by
// the server's body cap, enforced before the decoder sees a byte).

// jsonQuery is the union request shape of the POST endpoints; each decoder
// reads the fields it needs.
type jsonQuery struct {
	// X is a full assignment in variable order (x[i] = value of variable i).
	X []int `json:"x"`
	// Assign maps variable names to values; a full assignment for
	// queryprob/classify, a subset for subsetprob/marginal.
	Assign map[string]int `json:"assign"`
	// Target names the classification target (classify/classifypartial).
	Target string `json:"target"`
	// Evidence maps observed variable names to values (classifypartial).
	Evidence map[string]int `json:"evidence"`
}

func decodeJSON(body []byte) (*jsonQuery, error) {
	var q jsonQuery
	if err := json.Unmarshal(body, &q); err != nil {
		return nil, fmt.Errorf("serve: bad request JSON: %w", err)
	}
	return &q, nil
}

// parseUint parses a small decimal. The length cap keeps any accepted
// value far from overflow (cardinalities are tiny).
func parseUint(tok []byte) (int, error) {
	if len(tok) == 0 {
		return 0, fmt.Errorf("empty value")
	}
	if len(tok) > 9 {
		return 0, fmt.Errorf("value too long")
	}
	v := 0
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a number")
		}
		v = v*10 + int(c-'0')
	}
	return v, nil
}

// parseCSVAssignment parses the compact "v0,v1,..." form. The separator
// count is validated before any parsing, so a wrong-arity body is rejected
// in one scan with no allocation beyond the result slice.
func parseCSVAssignment(nw *bn.Network, body []byte) ([]int, error) {
	n := nw.Len()
	if c := bytes.Count(body, []byte{','}) + 1; c != n {
		return nil, fmt.Errorf("serve: %d values, want %d (one per variable)", c, n)
	}
	x := make([]int, n)
	for i := 0; i < n; i++ {
		var tok []byte
		if j := bytes.IndexByte(body, ','); j >= 0 {
			tok, body = body[:j], body[j+1:]
		} else {
			tok, body = body, nil
		}
		v, err := parseUint(bytes.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("serve: value %d: %v", i, err)
		}
		if v >= nw.Card(i) {
			return nil, fmt.Errorf("serve: value %d = %d out of range (card %d)", i, v, nw.Card(i))
		}
		x[i] = v
	}
	return x, nil
}

// resolveVar maps a variable name to its index.
func resolveVar(names map[string]int, name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("serve: missing variable name")
	}
	i, ok := names[name]
	if !ok {
		return 0, fmt.Errorf("serve: unknown variable %q", name)
	}
	return i, nil
}

// applyAssign folds a name→value map into x, marking assigned indices in
// seen, with every name and value validated.
func applyAssign(nw *bn.Network, names map[string]int, m map[string]int, x []int, seen []bool) error {
	for name, v := range m {
		i, ok := names[name]
		if !ok {
			return fmt.Errorf("serve: unknown variable %q", name)
		}
		if v < 0 || v >= nw.Card(i) {
			return fmt.Errorf("serve: value %d out of range for %s (card %d)", v, name, nw.Card(i))
		}
		x[i] = v
		seen[i] = true
	}
	return nil
}

// assignmentFromQuery builds a full assignment from a decoded JSON query:
// positional "x" or complete name map "assign". skip, when >= 0, is a
// variable whose value may be omitted and is zeroed (the classification
// target — its cell is scratch).
func assignmentFromQuery(nw *bn.Network, names map[string]int, q *jsonQuery, skip int) ([]int, error) {
	n := nw.Len()
	switch {
	case q.X != nil:
		if len(q.X) != n {
			return nil, fmt.Errorf("serve: x has %d values, want %d", len(q.X), n)
		}
		x := make([]int, n)
		for i, v := range q.X {
			if i == skip {
				continue
			}
			if v < 0 || v >= nw.Card(i) {
				return nil, fmt.Errorf("serve: x[%d] = %d out of range (card %d)", i, v, nw.Card(i))
			}
			x[i] = v
		}
		if skip >= 0 {
			x[skip] = 0
		}
		return x, nil
	case q.Assign != nil:
		x := make([]int, n)
		seen := make([]bool, n)
		if err := applyAssign(nw, names, q.Assign, x, seen); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if !seen[i] && i != skip {
				return nil, fmt.Errorf("serve: variable %s unassigned", nw.Var(i).Name)
			}
		}
		return x, nil
	}
	return nil, fmt.Errorf(`serve: request needs "x" or "assign"`)
}

// decodeFullAssignment decodes a full-assignment body: CSV fast path or
// JSON ("x" / "assign").
func decodeFullAssignment(nw *bn.Network, names map[string]int, body []byte) ([]int, error) {
	body = bytes.TrimSpace(body)
	if len(body) == 0 {
		return nil, fmt.Errorf("serve: empty request body")
	}
	if body[0] != '{' {
		return parseCSVAssignment(nw, body)
	}
	q, err := decodeJSON(body)
	if err != nil {
		return nil, err
	}
	return assignmentFromQuery(nw, names, q, -1)
}

// decodeSubsetAssignment decodes a subset query: JSON "assign" naming the
// member variables. The set must be ancestrally closed — every member's
// parents assigned too — for the subset factorization to be exact; the
// in-process tracker trusts its callers here, the network front end
// validates. Returns the members ascending plus the embedding assignment.
func decodeSubsetAssignment(nw *bn.Network, names map[string]int, body []byte) ([]int, []int, error) {
	body = bytes.TrimSpace(body)
	if len(body) == 0 || body[0] != '{' {
		return nil, nil, fmt.Errorf("serve: subset query wants a JSON body with \"assign\"")
	}
	q, err := decodeJSON(body)
	if err != nil {
		return nil, nil, err
	}
	if len(q.Assign) == 0 {
		return nil, nil, fmt.Errorf(`serve: subset query needs a non-empty "assign"`)
	}
	x := make([]int, nw.Len())
	seen := make([]bool, nw.Len())
	if err := applyAssign(nw, names, q.Assign, x, seen); err != nil {
		return nil, nil, err
	}
	set := make([]int, 0, len(q.Assign))
	for i, ok := range seen {
		if !ok {
			continue
		}
		set = append(set, i)
		for _, p := range nw.Parents(i) {
			if !seen[p] {
				return nil, nil, fmt.Errorf("serve: subset not ancestrally closed: %s assigned but its parent %s is not",
					nw.Var(i).Name, nw.Var(p).Name)
			}
		}
	}
	return set, x, nil
}

// decodeClassify decodes a classification request: JSON "target" plus a
// full assignment ("x" or "assign"); the target's own value may be omitted.
func decodeClassify(nw *bn.Network, names map[string]int, body []byte) (int, []int, error) {
	body = bytes.TrimSpace(body)
	if len(body) == 0 || body[0] != '{' {
		return 0, nil, fmt.Errorf("serve: classify wants a JSON body with \"target\"")
	}
	q, err := decodeJSON(body)
	if err != nil {
		return 0, nil, err
	}
	target, err := resolveVar(names, q.Target)
	if err != nil {
		return 0, nil, err
	}
	x, err := assignmentFromQuery(nw, names, q, target)
	if err != nil {
		return 0, nil, err
	}
	return target, x, nil
}

// decodeClassifyPartial decodes "target" + "evidence" (a name→value map of
// the observed subset, which must not include the target).
func decodeClassifyPartial(nw *bn.Network, names map[string]int, body []byte) (int, map[int]int, error) {
	body = bytes.TrimSpace(body)
	if len(body) == 0 || body[0] != '{' {
		return 0, nil, fmt.Errorf("serve: classifypartial wants a JSON body with \"target\" and \"evidence\"")
	}
	q, err := decodeJSON(body)
	if err != nil {
		return 0, nil, err
	}
	target, err := resolveVar(names, q.Target)
	if err != nil {
		return 0, nil, err
	}
	ev, err := indexMap(nw, names, q.Evidence)
	if err != nil {
		return 0, nil, err
	}
	if _, ok := ev[target]; ok {
		return 0, nil, fmt.Errorf("serve: target %s appears in evidence", q.Target)
	}
	return target, ev, nil
}

// decodeMarginal decodes a marginal query: JSON "assign", a non-empty
// name→value map over any variable subset.
func decodeMarginal(nw *bn.Network, names map[string]int, body []byte) (map[int]int, error) {
	body = bytes.TrimSpace(body)
	if len(body) == 0 || body[0] != '{' {
		return nil, fmt.Errorf("serve: marginal query wants a JSON body with \"assign\"")
	}
	q, err := decodeJSON(body)
	if err != nil {
		return nil, err
	}
	if len(q.Assign) == 0 {
		return nil, fmt.Errorf(`serve: marginal query needs a non-empty "assign"`)
	}
	return indexMap(nw, names, q.Assign)
}

// indexMap validates a name→value map into an index→value map.
func indexMap(nw *bn.Network, names map[string]int, m map[string]int) (map[int]int, error) {
	out := make(map[int]int, len(m))
	for name, v := range m {
		i, ok := names[name]
		if !ok {
			return nil, fmt.Errorf("serve: unknown variable %q", name)
		}
		if v < 0 || v >= nw.Card(i) {
			return nil, fmt.Errorf("serve: value %d out of range for %s (card %d)", v, name, nw.Card(i))
		}
		out[i] = v
	}
	return out, nil
}
