package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

// newAlarmTracker builds an alarm tracker with events ingested events.
func newAlarmTracker(t testing.TB, events int, shards int) (*bn.Model, *core.Tracker) {
	t.Helper()
	model, err := netgen.ModelByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTracker(model.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Delta: 0.25, Sites: 4, Seed: 1, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	training := stream.NewTraining(model, stream.NewUniformAssigner(4, 0xdead^1), 1)
	var buf []core.Event
	for events > 0 {
		n := events
		if n > 512 {
			n = 512
		}
		buf = training.NextEvents(buf[:0], n)
		tr.UpdateEvents(buf)
		events -= n
	}
	return model, tr
}

// startServer runs a server over src on a loopback port, shut down with the
// test.
func startServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// post sends body to the endpoint and returns the status and response body.
func post(t testing.TB, addr, endpoint, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+endpoint, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", endpoint, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// resultP decodes the envelope's result.p.
func resultP(t testing.TB, b []byte) float64 {
	t.Helper()
	var env struct {
		Result struct {
			P float64 `json:"p"`
		} `json:"result"`
		Snapshot struct {
			Version   uint64 `json:"version"`
			AgeMicros int64  `json:"age_us"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
	return env.Result.P
}

// csvBody renders x as the CSV fast-path body.
func csvBody(x []int) string {
	var sb strings.Builder
	for i, v := range x {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// TestServeMatchesTracker pins the network answers bit-identical
// (math.Float64bits over the JSON round trip, which is exact for float64)
// to in-process tracker queries against the same quiescent state, across
// every endpoint.
func TestServeMatchesTracker(t *testing.T) {
	model, tr := newAlarmTracker(t, 20000, 0)
	nw := model.Network()
	srv := startServer(t, Config{Source: NewTrackerSource(tr)})
	rng := bn.NewRNG(7)

	var x []int
	for q := 0; q < 25; q++ {
		x = stream.RandomAssignment(nw, rng, x)

		// queryprob: CSV and JSON-positional forms agree with the tracker.
		want := tr.QueryProb(x)
		for _, body := range []string{csvBody(x), jsonX(x)} {
			code, b := post(t, srv.Addr(), "/v1/queryprob", body)
			if code != http.StatusOK {
				t.Fatalf("queryprob %q: status %d: %s", body, code, b)
			}
			if got := resultP(t, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("queryprob: got %v want %v", got, want)
			}
		}

		// subsetprob over an ancestrally closed set. The server multiplies
		// members in ascending variable order — its canonical order — so
		// the tracker reference gets the sorted set too.
		target := rng.Intn(nw.Len())
		set := nw.AncestralClosure([]int{target})
		sort.Ints(set)
		assign := make(map[string]int, len(set))
		for _, i := range set {
			assign[nw.Var(i).Name] = x[i]
		}
		body, _ := json.Marshal(map[string]any{"assign": assign})
		code, b := post(t, srv.Addr(), "/v1/subsetprob", string(body))
		if code != http.StatusOK {
			t.Fatalf("subsetprob: status %d: %s", code, b)
		}
		wantSub := tr.QuerySubsetProb(set, x)
		if got := resultP(t, b); math.Float64bits(got) != math.Float64bits(wantSub) {
			t.Fatalf("subsetprob: got %v want %v", got, wantSub)
		}

		// classify.
		cb, _ := json.Marshal(map[string]any{"target": nw.Var(target).Name, "x": x})
		code, b = post(t, srv.Addr(), "/v1/classify", string(cb))
		if code != http.StatusOK {
			t.Fatalf("classify: status %d: %s", code, b)
		}
		var env struct {
			Result struct {
				Value int `json:"value"`
			} `json:"result"`
		}
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatal(err)
		}
		if want := tr.Classify(target, x); env.Result.Value != want {
			t.Fatalf("classify(%d): got %d want %d", target, env.Result.Value, want)
		}
	}

	// marginal + classifypartial against the tracker's inference.
	name0, name1 := nw.Var(0).Name, nw.Var(1).Name
	code, b := post(t, srv.Addr(), "/v1/marginal", fmt.Sprintf(`{"assign":{%q:1}}`, name0))
	if code != http.StatusOK {
		t.Fatalf("marginal: status %d: %s", code, b)
	}
	want, err := tr.InferMarginal(map[int]int{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultP(t, b); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("marginal: got %v want %v", got, want)
	}
	code, b = post(t, srv.Addr(), "/v1/classifypartial",
		fmt.Sprintf(`{"target":%q,"evidence":{%q:0}}`, name0, name1))
	if code != http.StatusOK {
		t.Fatalf("classifypartial: status %d: %s", code, b)
	}
	var env struct {
		Result struct {
			Value int `json:"value"`
		} `json:"result"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	wantY, err := tr.ClassifyPartial(0, map[int]int{1: 0})
	if err != nil {
		t.Fatal(err)
	}
	if env.Result.Value != wantY {
		t.Fatalf("classifypartial: got %d want %d", env.Result.Value, wantY)
	}
}

func jsonX(x []int) string {
	b, _ := json.Marshal(map[string]any{"x": x})
	return string(b)
}

// TestServeCoordinatorSource runs a small loopback cluster to completion
// and checks the attached server agrees bit-identically with the
// coordinator's own query paths.
func TestServeCoordinatorSource(t *testing.T) {
	events := 20000
	if testing.Short() {
		events = 4000
	}
	cfg := cluster.Config{
		NetName: "alarm", CPTSeed: 1 + 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 4, Events: events, StreamSeed: 1,
	}
	_, co, err := cluster.RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	nw := co.Network()
	srv := startServer(t, Config{Source: NewCoordinatorSource(co)})

	rng := bn.NewRNG(11)
	var x []int
	for q := 0; q < 20; q++ {
		x = stream.RandomAssignment(nw, rng, x)
		code, b := post(t, srv.Addr(), "/v1/queryprob", csvBody(x))
		if code != http.StatusOK {
			t.Fatalf("queryprob: status %d: %s", code, b)
		}
		want := co.QueryProb(x)
		if got := resultP(t, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("queryprob: got %v want %v", got, want)
		}
	}
}

// TestServeRequestValidation exercises the hardening: wrong methods,
// oversized bodies (declared and undeclared), malformed and out-of-range
// requests — all rejected without touching a snapshot, with the error
// counter advancing.
func TestServeRequestValidation(t *testing.T) {
	_, tr := newAlarmTracker(t, 2000, 0)
	srv := startServer(t, Config{Source: NewTrackerSource(tr), MaxBodyBytes: 1 << 12})
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/v1/queryprob")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET queryprob: status %d", resp.StatusCode)
	}

	big := strings.Repeat("9,", 4096)
	if code, _ := post(t, addr, "/v1/queryprob", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", code)
	}

	for _, tc := range []struct{ endpoint, body string }{
		{"/v1/queryprob", ""},
		{"/v1/queryprob", "1,2,3"},                                               // wrong arity
		{"/v1/queryprob", "9,9,9"},                                               // values out of range (and wrong arity)
		{"/v1/queryprob", `{"x":[1]}`},                                           // wrong arity JSON
		{"/v1/queryprob", `{"assign":{"nope":0}}`},                               // unknown variable
		{"/v1/queryprob", `{"assign":{"alarm_0":0}}`},                            // incomplete assignment
		{"/v1/queryprob", `{"x": notjson`},                                       // malformed JSON
		{"/v1/subsetprob", `{"assign":{}}`},                                      // empty subset
		{"/v1/classify", `{"x":[0]}`},                                            // missing target
		{"/v1/classifypartial", `{"target":"alarm_0","evidence":{"alarm_0":0}}`}, // target in evidence
		{"/v1/marginal", `{"assign":{"alarm_0":99}}`},                            // value out of range
	} {
		code, b := post(t, addr, tc.endpoint, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s %q: status %d (%s), want 400", tc.endpoint, tc.body, code, b)
		}
	}

	// A non-closed subset is rejected: find a variable with parents and
	// assign it without them.
	nw := tr.Network()
	for i := 0; i < nw.Len(); i++ {
		if len(nw.Parents(i)) > 0 {
			body := fmt.Sprintf(`{"assign":{%q:0}}`, nw.Var(i).Name)
			if code, b := post(t, addr, "/v1/subsetprob", body); code != http.StatusBadRequest {
				t.Errorf("non-closed subset: status %d (%s)", code, b)
			}
			break
		}
	}

	if st := srv.Stats(); st.Errors == 0 {
		t.Error("error counter did not advance")
	}
}

// TestServeStatszAndModel covers the observability endpoints: /statsz
// shape, /v1/model round trip (rows normalized), /healthz.
func TestServeStatszAndModel(t *testing.T) {
	_, tr := newAlarmTracker(t, 5000, 0)
	srv := startServer(t, Config{Source: NewTrackerSource(tr)})
	addr := srv.Addr()

	x := make([]int, tr.Network().Len())
	if code, _ := post(t, addr, "/v1/queryprob", csvBody(x)); code != http.StatusOK {
		t.Fatal("queryprob failed")
	}

	resp, err := http.Get("http://" + addr + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Result struct {
			Vars []struct {
				Name string    `json:"name"`
				Card int       `json:"card"`
				CPT  []float64 `json:"cpt"`
			} `json:"vars"`
		} `json:"result"`
		Snapshot struct {
			Version uint64 `json:"version"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(env.Result.Vars) != tr.Network().Len() {
		t.Fatalf("model dump has %d vars, want %d", len(env.Result.Vars), tr.Network().Len())
	}
	if env.Snapshot.Version == 0 {
		t.Error("model dump carries no snapshot version")
	}
	for _, v := range env.Result.Vars {
		for off := 0; off < len(v.CPT); off += v.Card {
			sum := 0.0
			for _, p := range v.CPT[off : off+v.Card] {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: row sums to %v", v.Name, sum)
			}
		}
	}

	resp, err = http.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests < 2 || st.ByEndpoint["queryprob"] != 1 || st.ByEndpoint["model"] != 1 {
		t.Errorf("statsz counters off: %+v", st)
	}
	if st.Latency.Count < 2 || st.Latency.P99Micros < st.Latency.P50Micros {
		t.Errorf("latency histogram off: %+v", st.Latency)
	}
	if st.Snapshot.Version == 0 || st.Snapshot.Acquires == 0 {
		t.Errorf("snapshot stats off: %+v", st.Snapshot)
	}

	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok\n" {
		t.Errorf("healthz: %q", b)
	}
}

// TestServeDuringParallelIngest hammers the server from several clients
// while DriveParallel ingests on one goroutine per site — the -race proof
// that per-request snapshot sharing, ingest-driven snapshot retirement and
// row recycling coexist. Each client asserts its observed snapshot
// versions are monotone non-decreasing (the consistency contract).
func TestServeDuringParallelIngest(t *testing.T) {
	model, err := netgen.ModelByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTracker(model.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Delta: 0.25, Sites: 4, Seed: 1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Source: NewTrackerSource(tr), MaxSnapshotAge: 200 * time.Microsecond})

	perSite := 8000
	if testing.Short() {
		perSite = 2000
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			rng := bn.NewRNG(uint64(c) + 100)
			var x []int
			var lastVersion uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				x = stream.RandomAssignment(model.Network(), rng, x)
				resp, err := client.Post("http://"+srv.Addr()+"/v1/queryprob",
					"text/plain", bytes.NewBufferString(csvBody(x)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var env struct {
					Result struct {
						P float64 `json:"p"`
					} `json:"result"`
					Snapshot struct {
						Version uint64 `json:"version"`
					} `json:"snapshot"`
				}
				err = json.NewDecoder(resp.Body).Decode(&env)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				if math.IsNaN(env.Result.P) || env.Result.P < 0 {
					t.Errorf("client %d: bad probability %v", c, env.Result.P)
					return
				}
				if env.Snapshot.Version < lastVersion {
					t.Errorf("client %d: snapshot version went backwards: %d -> %d",
						c, lastVersion, env.Snapshot.Version)
					return
				}
				lastVersion = env.Snapshot.Version
			}
		}(c)
	}

	// Ingest in rounds with short gaps so the clients observe several
	// distinct snapshot versions while the stream runs hot between gaps.
	streams := stream.NewSiteTrainings(model, 4, 1)
	for round := 0; round < 8; round++ {
		stream.DriveParallel(tr, streams, perSite/8, 64)
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	if st := srv.Stats(); st.Snapshot.Refreshes < 2 {
		t.Errorf("expected several snapshot refreshes during hot ingest, got %+v", st.Snapshot)
	}
}

// TestServeDuringCoordinatorChurn serves from a live coordinator while its
// sites stream — and crash mid-stream, reconnect and resume — under -race.
func TestServeDuringCoordinatorChurn(t *testing.T) {
	events := 12000
	if testing.Short() {
		events = 3000
	}
	cfg := cluster.Config{
		NetName: "alarm", CPTSeed: 1 + 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 3, Events: events, StreamSeed: 5,
	}
	co, err := cluster.NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := startServer(t, Config{Source: NewCoordinatorSource(co), MaxSnapshotAge: time.Millisecond})

	perSite := events / cfg.Sites
	var siteWG sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		siteWG.Add(1)
		go func(id uint32) {
			defer siteWG.Done()
			// One mid-stream crash, then a clean run that resumes.
			s := cluster.NewSite(id, co.Addr())
			s.CrashAfterEvents = uint64(perSite / 3)
			if _, err := s.Run(); err != cluster.ErrSiteCrashed {
				t.Errorf("site %d: expected crash, got %v", id, err)
				return
			}
			if _, err := cluster.NewSite(id, co.Addr()).Run(); err != nil {
				t.Errorf("site %d: %v", id, err)
			}
		}(uint32(i))
	}

	done := make(chan struct{})
	var queries atomic.Int64
	var clientWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			client := &http.Client{}
			rng := bn.NewRNG(uint64(c) + 33)
			var x []int
			for {
				select {
				case <-done:
					return
				default:
				}
				x = stream.RandomAssignment(co.Network(), rng, x)
				resp, err := client.Post("http://"+srv.Addr()+"/v1/queryprob",
					"text/plain", bytes.NewBufferString(csvBody(x)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				queries.Add(1)
			}
		}(c)
	}

	if _, err := co.Serve(); err != nil {
		t.Fatal(err)
	}
	siteWG.Wait()
	close(done)
	clientWG.Wait()
	if queries.Load() == 0 {
		t.Error("no live queries completed during the churn run")
	}
}

// gatedSource wraps a ModelSource so the first snapshot acquisition
// signals `entered` and then blocks until `release` is closed — it pins a
// request demonstrably in-flight inside a handler, with no timing
// assumptions.
type gatedSource struct {
	ModelSource
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedSource) AcquireSnapshot() (Snapshot, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.ModelSource.AcquireSnapshot()
}

// TestServerShutdownDrains checks Shutdown completes an in-flight request
// before returning and refuses new connections afterwards. The gated
// source holds the request inside the handler while Shutdown runs, so the
// drain is exercised deterministically.
func TestServerShutdownDrains(t *testing.T) {
	_, tr := newAlarmTracker(t, 1000, 0)
	src := &gatedSource{
		ModelSource: NewTrackerSource(tr),
		entered:     make(chan struct{}),
		release:     make(chan struct{}),
	}
	srv, err := New(Config{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	x := make([]int, tr.Network().Len())
	finished := make(chan error, 1)
	go func() {
		code, _ := post(t, addr, "/v1/queryprob", csvBody(x))
		if code != http.StatusOK {
			finished <- fmt.Errorf("in-flight request: status %d", code)
			return
		}
		finished <- nil
	}()
	<-src.entered // the request is now inside the handler

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(src.release)
	select {
	case err := <-finished:
		if err != nil {
			t.Error(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request still pending after release")
	}
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request drained")
	}

	if _, err := http.Post("http://"+addr+"/v1/queryprob", "text/plain",
		strings.NewReader(csvBody(x))); err == nil {
		t.Error("request after shutdown unexpectedly succeeded")
	}
}

// TestServePerRequestAcquire covers MaxSnapshotAge < 0: every request
// acquires its own snapshot, so a query issued after an ingest batch sees
// the new version immediately.
func TestServePerRequestAcquire(t *testing.T) {
	model, tr := newAlarmTracker(t, 1000, 0)
	srv := startServer(t, Config{Source: NewTrackerSource(tr), MaxSnapshotAge: -1})
	x := make([]int, model.Network().Len())

	version := func() uint64 {
		_, b := post(t, srv.Addr(), "/v1/queryprob", csvBody(x))
		var env struct {
			Snapshot struct {
				Version uint64 `json:"version"`
			} `json:"snapshot"`
		}
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatal(err)
		}
		return env.Snapshot.Version
	}
	v1 := version()
	tr.Update(0, stream.RandomAssignment(model.Network(), bn.NewRNG(3), nil))
	v2 := version()
	if v2 <= v1 {
		t.Fatalf("per-request acquire did not observe the ingest: %d -> %d", v1, v2)
	}
}
