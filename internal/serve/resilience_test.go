package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

// The overload/degraded-mode suite: every test here pins one clause of the
// "degrade instead of fail" contract — degraded serving from the last-good
// snapshot, the staleness ceiling, admission shedding, queue deadlines,
// panic containment, and shutdown under adverse clients. Fault injection
// is source-level and switch-driven (no timing assumptions beyond
// wall-clock staleness, which is the property under test).

// flakySource wraps a ModelSource with a switchable failure mode, the
// serve-layer stand-in for a crashed coordinator.
type flakySource struct {
	ModelSource
	failing atomic.Bool
}

func (f *flakySource) AcquireSnapshot() (Snapshot, error) {
	if f.failing.Load() {
		return nil, errors.New("injected source failure")
	}
	return f.ModelSource.AcquireSnapshot()
}

// queryEnvelope decodes one query response for the assertions below.
type queryEnvelope struct {
	Result struct {
		P float64 `json:"p"`
	} `json:"result"`
	Snapshot struct {
		Version   uint64 `json:"version"`
		AgeMicros int64  `json:"age_us"`
		Degraded  bool   `json:"degraded"`
	} `json:"snapshot"`
	Error string `json:"error"`
}

func queryOnce(t testing.TB, addr string, x []int) (int, queryEnvelope) {
	t.Helper()
	code, b := post(t, addr, "/v1/queryprob", csvBody(x))
	var env queryEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decoding %q: %v", b, err)
	}
	return code, env
}

func healthState(t testing.TB, addr string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(b))
}

// TestServeDegradedMode: a failing source flips the server into degraded
// mode — answers keep coming from the last-good snapshot, tagged degraded
// with its (unchanged) version; /healthz reports "degraded" at 200; and
// the moment the source recovers, fresh serving resumes with a monotone
// version step.
func TestServeDegradedMode(t *testing.T) {
	model, tr := newAlarmTracker(t, 2000, 0)
	src := &flakySource{ModelSource: NewTrackerSource(tr)}
	srv := startServer(t, Config{Source: src, MaxSnapshotAge: -1})
	x := make([]int, model.Network().Len())

	code, env := queryOnce(t, srv.Addr(), x)
	if code != http.StatusOK || env.Snapshot.Degraded {
		t.Fatalf("healthy query: code %d degraded %v", code, env.Snapshot.Degraded)
	}
	fresh := env.Snapshot.Version

	src.failing.Store(true)
	code, env = queryOnce(t, srv.Addr(), x)
	if code != http.StatusOK {
		t.Fatalf("degraded query: code %d (%s)", code, env.Error)
	}
	if !env.Snapshot.Degraded {
		t.Fatal("degraded query not tagged degraded")
	}
	if env.Snapshot.Version != fresh {
		t.Fatalf("degraded version %d, want last-good %d", env.Snapshot.Version, fresh)
	}
	if hcode, state := healthState(t, srv.Addr()); hcode != http.StatusOK || state != HealthDegraded {
		t.Fatalf("healthz while degraded: %d %q", hcode, state)
	}
	st := srv.Stats()
	if !st.Degraded.Active || st.Degraded.Served == 0 || st.Degraded.RefreshErrors == 0 ||
		st.Degraded.LastError == "" || st.Health != HealthDegraded {
		t.Fatalf("degraded stats off: %+v (health %q)", st.Degraded, st.Health)
	}

	// Recovery: the tracker advanced while the source was failing; the
	// first healthy refresh serves the new version, untagged.
	tr.Update(0, stream.RandomAssignment(model.Network(), bn.NewRNG(3), nil))
	src.failing.Store(false)
	code, env = queryOnce(t, srv.Addr(), x)
	if code != http.StatusOK || env.Snapshot.Degraded {
		t.Fatalf("recovered query: code %d degraded %v", code, env.Snapshot.Degraded)
	}
	if env.Snapshot.Version <= fresh {
		t.Fatalf("recovered version %d did not advance past %d", env.Snapshot.Version, fresh)
	}
	if hcode, state := healthState(t, srv.Addr()); hcode != http.StatusOK || state != HealthOK {
		t.Fatalf("healthz after recovery: %d %q", hcode, state)
	}
}

// TestServeDegradedCeiling: past MaxDegradedAge the last-good snapshot is
// too stale to serve — queries get 503 + Retry-After instead of an
// arbitrarily old estimate, and /healthz flips to "unavailable".
func TestServeDegradedCeiling(t *testing.T) {
	model, tr := newAlarmTracker(t, 1000, 0)
	src := &flakySource{ModelSource: NewTrackerSource(tr)}
	srv := startServer(t, Config{Source: src, MaxSnapshotAge: -1, MaxDegradedAge: 50 * time.Millisecond})
	x := make([]int, model.Network().Len())

	if code, _ := queryOnce(t, srv.Addr(), x); code != http.StatusOK {
		t.Fatalf("healthy query: code %d", code)
	}
	src.failing.Store(true)
	if code, env := queryOnce(t, srv.Addr(), x); code != http.StatusOK || !env.Snapshot.Degraded {
		t.Fatalf("within-ceiling query: code %d degraded %v", code, env.Snapshot.Degraded)
	}

	time.Sleep(120 * time.Millisecond) // let the last-good snapshot age past the ceiling
	resp, err := http.Post("http://"+srv.Addr()+"/v1/queryprob", "text/plain", strings.NewReader(csvBody(x)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("past-ceiling query: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("past-ceiling 503 carries no Retry-After")
	}
	if hcode, state := healthState(t, srv.Addr()); hcode != http.StatusServiceUnavailable || state != HealthUnavailable {
		t.Fatalf("healthz past ceiling: %d %q", hcode, state)
	}
	if st := srv.Stats(); st.Degraded.Unavailable == 0 {
		t.Errorf("unavailable counter did not advance: %+v", st.Degraded)
	}
}

// TestServeDegradedDisabled: MaxDegradedAge < 0 turns degraded serving
// off — the first refresh failure is an immediate 503 even though a
// last-good snapshot exists.
func TestServeDegradedDisabled(t *testing.T) {
	model, tr := newAlarmTracker(t, 1000, 0)
	src := &flakySource{ModelSource: NewTrackerSource(tr)}
	srv := startServer(t, Config{Source: src, MaxSnapshotAge: -1, MaxDegradedAge: -1})
	x := make([]int, model.Network().Len())

	if code, _ := queryOnce(t, srv.Addr(), x); code != http.StatusOK {
		t.Fatal("healthy query failed")
	}
	src.failing.Store(true)
	if code, env := queryOnce(t, srv.Addr(), x); code != http.StatusServiceUnavailable {
		t.Fatalf("query with degraded serving disabled: code %d (%s)", code, env.Error)
	}
}

// TestServeNeverHadSnapshot: a source that fails from the first request
// leaves nothing to degrade to — clean 503s and an "unavailable" health
// state, not a crash.
func TestServeNeverHadSnapshot(t *testing.T) {
	model, tr := newAlarmTracker(t, 500, 0)
	src := &flakySource{ModelSource: NewTrackerSource(tr)}
	src.failing.Store(true)
	srv := startServer(t, Config{Source: src})
	x := make([]int, model.Network().Len())

	if code, env := queryOnce(t, srv.Addr(), x); code != http.StatusServiceUnavailable {
		t.Fatalf("query with no snapshot: code %d (%s)", code, env.Error)
	}
	if hcode, state := healthState(t, srv.Addr()); hcode != http.StatusServiceUnavailable || state != HealthUnavailable {
		t.Fatalf("healthz with no snapshot: %d %q", hcode, state)
	}
}

// TestServeCoordinatorClosedDegrades is the headline scenario end to end:
// an abrupt mid-run coordinator Close (kill -9 semantics) flips the
// attached server into degraded mode — same last-good answers, tagged,
// instead of 500s. (A coordinator whose run *completed* keeps Err() nil
// by design: its final estimates stay servable as fresh.) The run here
// can never finish — one declared site never joins — so Close is always a
// mid-run kill, deterministically.
func TestServeCoordinatorClosedDegrades(t *testing.T) {
	cfg := cluster.Config{
		NetName: "alarm", CPTSeed: 1 + 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 2, Events: 4000, StreamSeed: 2,
	}
	co, err := cluster.NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	serveDone := make(chan error, 1)
	go func() {
		_, err := co.Serve()
		serveDone <- err
	}()
	// Only site 0 joins; its stream lands while site 1's absence keeps the
	// run (and finish(nil)) from ever happening.
	go func() {
		cluster.NewSite(0, co.Addr()).Run() // dies when the coordinator closes
	}()

	srv := startServer(t, Config{Source: NewCoordinatorSource(co), MaxSnapshotAge: -1})
	x := make([]int, co.Network().Len())

	// Wait until site 0's data is visible: a fresh 200 with version > 0.
	var lastFresh queryEnvelope
	waitFor(t, "live mid-run data to arrive", func() bool {
		code, env := queryOnce(t, srv.Addr(), x)
		if code != http.StatusOK || env.Snapshot.Degraded {
			t.Fatalf("live query: code %d degraded %v", code, env.Snapshot.Degraded)
		}
		lastFresh = env
		return env.Snapshot.Version > 0
	})
	if err := co.Err(); err != nil {
		t.Fatalf("live coordinator reports Err %v, want nil", err)
	}

	co.Close() // kill -9: Serve returns ErrCoordinatorClosed
	if err := <-serveDone; err != cluster.ErrCoordinatorClosed {
		t.Fatalf("killed Serve returned %v", err)
	}
	if err := co.Err(); err == nil {
		t.Fatal("closed coordinator reports nil Err")
	}
	code, env := queryOnce(t, srv.Addr(), x)
	if code != http.StatusOK || !env.Snapshot.Degraded {
		t.Fatalf("query against closed coordinator: code %d degraded %v (%s)", code, env.Snapshot.Degraded, env.Error)
	}
	if env.Snapshot.Version != lastFresh.Snapshot.Version ||
		math.Float64bits(env.Result.P) != math.Float64bits(lastFresh.Result.P) {
		t.Fatalf("degraded answer (v%d, %v) != last-good (v%d, %v)",
			env.Snapshot.Version, env.Result.P, lastFresh.Snapshot.Version, lastFresh.Result.P)
	}
}

// TestServeAdmissionShed: with the concurrency slot and the wait queue
// both full, the next request is shed immediately with 429 + Retry-After
// — it never waits and never touches the snapshot path.
func TestServeAdmissionShed(t *testing.T) {
	_, tr := newAlarmTracker(t, 500, 0)
	src := &gatedSource{
		ModelSource: NewTrackerSource(tr),
		entered:     make(chan struct{}),
		release:     make(chan struct{}),
	}
	srv := startServer(t, Config{
		Source: src, MaxSnapshotAge: -1, MaxConcurrent: 1, MaxQueue: 1,
	})
	x := make([]int, tr.Network().Len())

	results := make(chan int, 2)
	go func() { // A: admitted, pinned inside the source
		code, _ := post(t, srv.Addr(), "/v1/queryprob", csvBody(x))
		results <- code
	}()
	<-src.entered
	go func() { // B: takes the one queue slot
		code, _ := post(t, srv.Addr(), "/v1/queryprob", csvBody(x))
		results <- code
	}()
	waitFor(t, "request queued at the gate", func() bool {
		return srv.Stats().Admission.Queued == 1
	})

	// C: gate and queue both full — shed synchronously.
	resp, err := http.Post("http://"+srv.Addr()+"/v1/queryprob", "text/plain", strings.NewReader(csvBody(x)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	close(src.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted request finished with %d", code)
		}
	}
	if st := srv.Stats(); st.Admission.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Admission.Shed)
	}
}

// TestServeDeadlineExceeded: the per-request deadline is honored in both
// wait states — queued at the admission gate, and waiting for the
// single-flight snapshot refresh — yielding 503, never a hang.
func TestServeDeadlineExceeded(t *testing.T) {
	for _, tc := range []struct {
		name          string
		maxConcurrent int
	}{
		{"queued-at-gate", 1}, // B waits for A's admission slot
		{"refresh-wait", 4},   // B admitted, waits for A's refresh slot
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, tr := newAlarmTracker(t, 500, 0)
			src := &gatedSource{
				ModelSource: NewTrackerSource(tr),
				entered:     make(chan struct{}),
				release:     make(chan struct{}),
			}
			srv := startServer(t, Config{
				Source: src, MaxSnapshotAge: -1,
				MaxConcurrent: tc.maxConcurrent, MaxQueue: 4,
				RequestTimeout: 150 * time.Millisecond,
			})
			x := make([]int, tr.Network().Len())

			aDone := make(chan int, 1)
			go func() { // A: pinned inside the source past everyone's deadline
				code, _ := post(t, srv.Addr(), "/v1/queryprob", csvBody(x))
				aDone <- code
			}()
			<-src.entered

			code, env := queryOnce(t, srv.Addr(), x) // B: times out waiting
			if code != http.StatusServiceUnavailable {
				t.Fatalf("deadline-bound request: code %d (%s)", code, env.Error)
			}
			if st := srv.Stats(); st.Admission.DeadlineExceeded == 0 {
				t.Errorf("deadline counter did not advance: %+v", st.Admission)
			}

			close(src.release)
			if code := <-aDone; code != http.StatusOK {
				t.Errorf("pinned request finished with %d", code)
			}
		})
	}
}

// panicSource returns snapshots whose Factor panics while the switch is
// on — the pathological-handler case the recovery middleware contains.
type panicSource struct {
	ModelSource
	panicking atomic.Bool
}

type panicSnap struct {
	Snapshot
	panicking *atomic.Bool
}

func (p panicSnap) Factor(i, v, pidx int) float64 {
	if p.panicking.Load() {
		panic("injected factor panic")
	}
	return p.Snapshot.Factor(i, v, pidx)
}

func (s *panicSource) AcquireSnapshot() (Snapshot, error) {
	snap, err := s.ModelSource.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	return panicSnap{Snapshot: snap, panicking: &s.panicking}, nil
}

// TestServePanicRecovery: a panicking handler yields one 500 and the
// server keeps serving — no wedged admission slot, no leaked snapshot
// reference, no dead process.
func TestServePanicRecovery(t *testing.T) {
	_, tr := newAlarmTracker(t, 500, 0)
	src := &panicSource{ModelSource: NewTrackerSource(tr)}
	srv := startServer(t, Config{Source: src, MaxSnapshotAge: -1, MaxConcurrent: 1})
	x := make([]int, tr.Network().Len())

	src.panicking.Store(true)
	for i := 0; i < 3; i++ {
		if code, env := queryOnce(t, srv.Addr(), x); code != http.StatusInternalServerError {
			t.Fatalf("panicking query %d: code %d (%s)", i, code, env.Error)
		}
	}
	src.panicking.Store(false)
	if code, _ := queryOnce(t, srv.Addr(), x); code != http.StatusOK {
		t.Fatalf("server did not survive the panics: code %d", code)
	}
	if st := srv.Stats(); st.Panics != 3 {
		t.Errorf("panic counter = %d, want 3", st.Panics)
	}
}

// countingSource audits the acquire/release balance through its wrapped
// source, so tests can assert no snapshot reference leaks.
type countingSource struct {
	ModelSource
	acquired atomic.Int64
	released atomic.Int64
}

type countedSnap struct {
	Snapshot
	released *atomic.Int64
}

func (c countedSnap) Release() {
	c.released.Add(1)
	c.Snapshot.Release()
}

func (s *countingSource) AcquireSnapshot() (Snapshot, error) {
	snap, err := s.ModelSource.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	s.acquired.Add(1)
	return countedSnap{Snapshot: snap, released: &s.released}, nil
}

// TestServerShutdownRacesRefresh: Shutdown runs while a request is
// mid-refresh inside the source. The drain must wait for the request, the
// cache release must not race the refresh publishing its snapshot, and
// every acquired snapshot must be released exactly once (checked by
// audit; the interleaving itself is checked by -race).
func TestServerShutdownRacesRefresh(t *testing.T) {
	_, tr := newAlarmTracker(t, 500, 0)
	gated := &gatedSource{
		ModelSource: NewTrackerSource(tr),
		entered:     make(chan struct{}),
		release:     make(chan struct{}),
	}
	src := &countingSource{ModelSource: gated}
	srv, err := New(Config{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	x := make([]int, tr.Network().Len())

	reqDone := make(chan int, 1)
	go func() {
		code, _ := post(t, srv.Addr(), "/v1/queryprob", csvBody(x))
		reqDone <- code
	}()
	<-gated.entered // the refresh is now in flight

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) with a refresh in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gated.release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d", code)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if a, r := src.acquired.Load(), src.released.Load(); a != r || a == 0 {
		t.Errorf("snapshot audit: %d acquired, %d released", a, r)
	}
	if st := srv.Stats(); st.Health != HealthDraining {
		t.Errorf("health after shutdown = %q, want %q", st.Health, HealthDraining)
	}
}

// TestServerShutdownStalledClient: a client that sends headers and then
// stalls mid-body would pin the drain forever without a read timeout;
// with Config.ReadTimeout set, the server times the read out and Shutdown
// completes well inside its budget.
func TestServerShutdownStalledClient(t *testing.T) {
	_, tr := newAlarmTracker(t, 500, 0)
	srv, err := New(Config{
		Source:      NewTrackerSource(tr),
		ReadTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a body and never send it: the handler blocks in readBody.
	if _, err := fmt.Fprintf(conn, "POST /v1/queryprob HTTP/1.1\r\nHost: x\r\nContent-Length: 64\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the server accept and enter the handler

	started := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with stalled client: %v", err)
	}
	if elapsed := time.Since(started); elapsed > 5*time.Second {
		t.Errorf("shutdown took %v; the stalled client pinned the drain", elapsed)
	}
}

// TestSwappableSourceMonotoneVersions: swapping in a back end with a
// lower raw version (a coordinator restored from checkpoint) must not
// move served versions backwards, and a shape-incompatible replacement is
// rejected.
func TestSwappableSourceMonotoneVersions(t *testing.T) {
	_, big := newAlarmTracker(t, 5000, 0)  // high version
	_, small := newAlarmTracker(t, 100, 0) // low version: the "restored" back end

	sw, err := NewSwappableSource(NewTrackerSource(big))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sw.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	vBig := snap.Version()
	snap.Release()

	raw, err := NewTrackerSource(small).AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	vSmallRaw := raw.Version()
	raw.Release()
	if vSmallRaw >= vBig {
		t.Fatalf("test premise broken: raw replacement version %d >= %d", vSmallRaw, vBig)
	}

	if err := sw.Swap(NewTrackerSource(small)); err != nil {
		t.Fatal(err)
	}
	snap, err = sw.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.Version() < vBig {
		t.Fatalf("version went backwards across swap: %d < %d", snap.Version(), vBig)
	}
	// Factors pass through the offset wrapper untouched.
	direct, err := NewTrackerSource(small).AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Release()
	if got, want := snap.Factor(0, 0, 0), direct.Factor(0, 0, 0); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("offset snapshot factor %v != raw %v", got, want)
	}

	other, err := netgen.ModelByName("hepar2")
	if err != nil {
		t.Fatal(err)
	}
	otherTr, err := core.NewTracker(other.Network(), core.Config{
		Strategy: core.Uniform, Eps: 0.1, Delta: 0.25, Sites: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Swap(NewTrackerSource(otherTr)); err == nil {
		t.Fatal("Swap accepted a different network")
	}
}

// waitFor polls cond (serving-side counters are updated asynchronously to
// the client's view) with a hard deadline.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
