// Package serve exposes a continuously trained model as a network query
// service: an HTTP/JSON front end answering QueryProb, QuerySubsetProb,
// Classify, ClassifyPartial, InferMarginal and EstimatedModel from
// immutable model snapshots, backed by an in-process core.Tracker or a
// live cluster.Coordinator through the same ModelSource interface — the
// user-facing half of the paper's query-at-any-time model: the sites
// train, the coordinator tracks, the server answers.
//
// Endpoints (POST unless noted): /v1/queryprob, /v1/subsetprob,
// /v1/classify, /v1/classifypartial, /v1/marginal, GET /v1/model, plus
// GET /statsz (qps, snapshot version/age, admission/degraded counters,
// latency histogram) and GET /healthz. See decode.go for the request
// shapes.
//
// # Snapshot-consistency contract
//
// Every response is computed from exactly ONE immutable snapshot: the
// request acquires a snapshot reference, reads all its factors from that
// snapshot, and releases it. A response therefore never mixes counter
// states from before and after a concurrent ingest flush, and ingestion
// never blocks on a slow reader — the tracker's snapshots are refcounted,
// so an ingest burst simply retires the served snapshot, which is
// recycled when its last reader releases it. Every reply carries the
// snapshot's version (monotone non-decreasing) and age in the "snapshot"
// field, so a client knows exactly how fresh its answer is.
//
// Config.MaxSnapshotAge bounds staleness: the server shares one acquired
// snapshot across requests for at most that long (default 5ms) before
// re-acquiring. This also bounds the rebuild rate under a query hammer —
// a munin-scale rebuild bulk-reads ~80k cells
// (counter.Bank.EstimateRange), and acquiring per request would rebuild
// per request whenever ingest runs hot. Set it negative to re-acquire on
// every request (strict freshness, same answers a direct Tracker query
// would give at that instant).
//
// # Degraded mode
//
// The server degrades instead of failing. When a snapshot refresh fails
// (the coordinator behind the source was closed or crashed), queries keep
// answering from the last-good snapshot, tagged "degraded": true with its
// version and age, until the snapshot is older than Config.MaxDegradedAge
// — the hard staleness ceiling, past which queries return 503 with a
// Retry-After header rather than silently serve arbitrarily stale
// estimates. Every refresh attempt re-probes the source, so the moment a
// replacement back end appears (see SwappableSource) fresh serving
// resumes with no restart; versions stay monotone across the whole
// failover. GET /healthz reports the state machine — "ok", "degraded"
// (failing source, last-good within the ceiling, still 200), "draining"
// (Shutdown in progress, 503) or "unavailable" (no servable snapshot,
// 503) — and /statsz counts refresh errors, degraded responses and
// unavailable rejections.
//
// # Admission control
//
// A concurrency-limited admission gate fronts the query endpoints:
// Config.MaxConcurrent requests run at once, Config.MaxQueue more wait in
// a bounded queue, and everything beyond that is shed immediately with
// 429 + Retry-After — under overload the server sheds the excess to keep
// latency bounded for what it admits instead of collapsing for everyone
// (BenchmarkServeOverload measures exactly this). Each request carries a
// Config.RequestTimeout context deadline that is honored while queued at
// the gate and while waiting on a snapshot refresh; deadline expiry
// yields 503. /statsz and /healthz bypass the gate so the server stays
// observable under overload, and a panic-recovery middleware turns a
// panicking handler into a 500 without taking the process down.
//
// # Hardening
//
// Request bodies are bounded by Config.MaxBodyBytes with the declared
// length checked before any read and a MaxBytesReader backstopping
// undeclared (chunked) bodies — the same length-validate-before-allocating
// standard as the cluster's frame decoders (the decoders themselves are
// fuzzed: FuzzServeRequest). Every decoded name and value is validated
// against the network, subset queries must be ancestrally closed, and
// Shutdown drains in-flight requests before releasing the cached
// snapshot. The HTTP server's read-header/read/write/idle timeouts are
// all configurable so a stalled client cannot hold a connection (or a
// drain) open indefinitely.
//
// See examples/serving for an end-to-end run: a TCP cluster training
// while an attached server answers a closed-loop client mix.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
)

// Defaults for Config zero values.
const (
	DefaultMaxBodyBytes      = 1 << 20
	DefaultMaxSnapshotAge    = 5 * time.Millisecond
	DefaultMaxDegradedAge    = 2 * time.Minute
	DefaultMaxConcurrent     = 64
	DefaultRequestTimeout    = 10 * time.Second
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// Health states reported by GET /healthz and Stats.Health.
const (
	HealthOK          = "ok"          // fresh serving (200)
	HealthDegraded    = "degraded"    // source failing, last-good within MaxDegradedAge (200)
	HealthDraining    = "draining"    // Shutdown in progress (503)
	HealthUnavailable = "unavailable" // no servable snapshot (503)
)

// Config parameterizes a Server. Duration and count fields follow one
// convention: zero means the package default, negative means disabled.
type Config struct {
	// Source is the model back end (required): NewTrackerSource,
	// NewCoordinatorSource, or a SwappableSource wrapping either.
	Source ModelSource
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxSnapshotAge is how long one acquired snapshot may be shared
	// across requests (0 = DefaultMaxSnapshotAge, negative = re-acquire
	// per request). See the package comment.
	MaxSnapshotAge time.Duration
	// MaxDegradedAge is the hard staleness ceiling for degraded-mode
	// serving: when refreshes fail, the last-good snapshot keeps
	// answering (tagged degraded) until it is older than this, after
	// which queries get 503 + Retry-After (0 = DefaultMaxDegradedAge,
	// negative = degraded serving disabled: any refresh failure is an
	// immediate 503).
	MaxDegradedAge time.Duration
	// MaxConcurrent bounds requests inside the query handlers at once
	// (0 = DefaultMaxConcurrent, negative = unlimited, no gate).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an admission slot; beyond it
	// requests are shed with 429 (0 = 2×MaxConcurrent, negative = no
	// queue: shed as soon as MaxConcurrent is reached).
	MaxQueue int
	// RequestTimeout is the per-request deadline, honored while queued
	// at the admission gate and while waiting on a snapshot refresh
	// (0 = DefaultRequestTimeout, negative = none).
	RequestTimeout time.Duration
	// ReadHeaderTimeout, ReadTimeout, WriteTimeout and IdleTimeout
	// configure the underlying http.Server (Start only). Defaults:
	// DefaultReadHeaderTimeout, no read timeout, DefaultWriteTimeout,
	// DefaultIdleTimeout; negative disables one.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
}

// timeoutOr resolves the config convention: zero → def, negative →
// disabled (0, the http.Server "no timeout" value).
func timeoutOr(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// cachedSnap is one server-held snapshot acquisition shared by concurrent
// requests: refs counts the cache slot (1) plus every in-flight request,
// and the underlying source snapshot is released exactly once, when the
// last reference drops.
type cachedSnap struct {
	snap     Snapshot
	acquired time.Time
	refs     atomic.Int32
}

// Server is the HTTP query front end. Create with New, start with Start
// (or mount Handler yourself), stop with Shutdown.
type Server struct {
	src         ModelSource
	net         *bn.Network
	names       map[string]int
	maxBody     int64
	maxAge      time.Duration
	maxDegraded time.Duration // negative = degraded serving disabled
	reqTimeout  time.Duration // 0 = none

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in panic recovery
	hs      *http.Server
	ln      net.Listener
	gate    *gate // nil = unlimited

	// cache is the shared snapshot acquisition. refreshMu is a 1-slot
	// channel serializing re-acquisition — a stale cache triggers one
	// source rebuild, not one per waiting request — chosen over a mutex
	// so waiters can abandon the wait when their request deadline
	// expires.
	refreshMu chan struct{}
	cache     atomic.Pointer[cachedSnap]

	// degraded flips when a refresh fails and clears on the next success;
	// while set, the fast path is bypassed so every request re-probes the
	// source through the refresh slot.
	degraded       atomic.Bool
	degradedSince  atomic.Int64 // unix nanos, valid while degraded
	lastRefreshErr atomic.Pointer[string]
	draining       atomic.Bool

	start            time.Time
	requests         atomic.Int64
	errors           atomic.Int64
	panics           atomic.Int64
	shed             atomic.Int64
	deadlineExceeded atomic.Int64
	degradedServed   atomic.Int64
	unavailable      atomic.Int64
	refreshErrs      atomic.Int64
	acquires         atomic.Int64
	refreshes        atomic.Int64
	lastVersion      atomic.Uint64
	byEndpoint       map[string]*atomic.Int64
	lat              histogram
	qps              qpsWindow
}

// New builds a server over cfg.Source.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("serve: Config.Source is required")
	}
	s := &Server{
		src:               cfg.Source,
		net:               cfg.Source.Network(),
		maxBody:           cfg.MaxBodyBytes,
		maxAge:            cfg.MaxSnapshotAge,
		maxDegraded:       cfg.MaxDegradedAge,
		reqTimeout:        timeoutOr(cfg.RequestTimeout, DefaultRequestTimeout),
		readHeaderTimeout: timeoutOr(cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		readTimeout:       timeoutOr(cfg.ReadTimeout, 0),
		writeTimeout:      timeoutOr(cfg.WriteTimeout, DefaultWriteTimeout),
		idleTimeout:       timeoutOr(cfg.IdleTimeout, DefaultIdleTimeout),
		refreshMu:         make(chan struct{}, 1),
		start:             time.Now(),
	}
	if s.maxBody == 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	if s.maxAge == 0 {
		s.maxAge = DefaultMaxSnapshotAge
	}
	if s.maxDegraded == 0 {
		s.maxDegraded = DefaultMaxDegradedAge
	}
	maxConc := cfg.MaxConcurrent
	if maxConc == 0 {
		maxConc = DefaultMaxConcurrent
	}
	if maxConc > 0 {
		maxQueue := cfg.MaxQueue
		if maxQueue == 0 {
			maxQueue = 2 * maxConc
		}
		s.gate = newGate(maxConc, maxQueue)
	}
	s.names = make(map[string]int, s.net.Len())
	for i := 0; i < s.net.Len(); i++ {
		s.names[s.net.Var(i).Name] = i
	}
	s.mux = http.NewServeMux()
	s.byEndpoint = make(map[string]*atomic.Int64)
	post := func(name string, fn func(body []byte, snap Snapshot) (any, error)) {
		ctr := new(atomic.Int64)
		s.byEndpoint[name] = ctr
		s.mux.HandleFunc("/v1/"+name, s.handle(ctr, fn))
	}
	post("queryprob", s.queryProb)
	post("subsetprob", s.subsetProb)
	post("classify", s.classify)
	post("classifypartial", s.classifyPartial)
	post("marginal", s.marginal)
	s.byEndpoint["model"] = new(atomic.Int64)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.handler = s.withRecovery(s.mux)
	return s, nil
}

// Handler returns the server's HTTP handler (panic recovery included),
// for tests or embedding in an existing mux; Start is not required when
// serving through it.
func (s *Server) Handler() http.Handler { return s.handler }

// Start binds addr and serves in a background goroutine; it returns once
// the listener is bound, so Addr is valid immediately (use ":0" to let the
// kernel pick a port).
func (s *Server) Start(addr string) error {
	if s.hs != nil {
		return fmt.Errorf("serve: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hs = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: s.readHeaderTimeout,
		ReadTimeout:       s.readTimeout,
		WriteTimeout:      s.writeTimeout,
		IdleTimeout:       s.idleTimeout,
	}
	go s.hs.Serve(ln)
	return nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown flips /healthz to draining, stops accepting connections,
// drains in-flight requests (every accepted request completes and its
// response is written), then releases the cached snapshot reference —
// taken under the refresh slot so the release cannot race an in-flight
// refresh publishing a new snapshot. The context bounds the drain, as in
// net/http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	select {
	case s.refreshMu <- struct{}{}:
		if old := s.cache.Swap(nil); old != nil {
			s.releaseRef(old)
		}
		<-s.refreshMu
	case <-ctx.Done():
		// A refresh is still in flight past the drain deadline; skip the
		// cache release rather than block — the process is exiting.
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// withRecovery turns a panicking handler into a 500 and keeps the server
// alive: one bad request must not take down serving for everyone.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler { // net/http's own abort protocol
				panic(v)
			}
			s.panics.Add(1)
			s.fail(w, http.StatusInternalServerError,
				fmt.Errorf("serve: internal error serving %s: %v", r.URL.Path, v))
		}()
		next.ServeHTTP(w, r)
	})
}

// acquireRef returns a referenced snapshot for one request (pair with
// releaseRef) plus whether it is a degraded last-good snapshot. The fast
// path shares the cached acquisition while it is younger than maxAge and
// the server is healthy; the slow path funnels through the 1-slot refresh
// channel — one source probe no matter how many requests found the cache
// stale — abandoning the wait if ctx expires first. On refresh failure
// the last-good cache keeps serving (degraded) until it is older than
// maxDegraded.
func (s *Server) acquireRef(ctx context.Context) (*cachedSnap, bool, error) {
	for {
		if s.maxAge >= 0 && !s.degraded.Load() {
			c := s.cache.Load()
			if c != nil && time.Since(c.acquired) <= s.maxAge {
				if r := c.refs.Load(); r > 0 && c.refs.CompareAndSwap(r, r+1) {
					return c, false, nil
				}
				continue // swapped out or contended; retry
			}
		}
		select {
		case s.refreshMu <- struct{}{}:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		var (
			c        *cachedSnap
			degraded bool
			err      error
		)
		func() {
			defer func() { <-s.refreshMu }() // release the slot even if the source panics
			c, degraded, err = s.refreshLocked()
		}()
		return c, degraded, err
	}
}

// refreshLocked runs with the refresh slot held: re-check the cache, probe
// the source, and on failure fall back to the last-good snapshot within
// the degraded ceiling.
func (s *Server) refreshLocked() (*cachedSnap, bool, error) {
	if s.maxAge >= 0 && !s.degraded.Load() {
		if c := s.cache.Load(); c != nil && time.Since(c.acquired) <= s.maxAge {
			// Someone refreshed while we waited for the slot. The cache
			// slot's reference cannot drop while we hold it, so the
			// increment cannot race retirement.
			c.refs.Add(1)
			return c, false, nil
		}
	}
	snap, err := s.src.AcquireSnapshot()
	if err == nil {
		s.degraded.Store(false)
		nc := &cachedSnap{snap: snap, acquired: time.Now()}
		nc.refs.Store(2) // the cache slot plus this request
		if old := s.cache.Swap(nc); old != nil {
			s.releaseRef(old) // the cache slot's reference
		}
		s.noteAcquire(nc)
		return nc, false, nil
	}
	s.refreshErrs.Add(1)
	msg := err.Error()
	s.lastRefreshErr.Store(&msg)
	if s.degraded.CompareAndSwap(false, true) {
		s.degradedSince.Store(time.Now().UnixNano())
	}
	c := s.cache.Load()
	if c == nil || s.maxDegraded < 0 {
		s.unavailable.Add(1)
		return nil, false, fmt.Errorf("serve: no servable snapshot: %w", err)
	}
	if age := time.Since(c.snap.BuiltAt()); age > s.maxDegraded {
		s.unavailable.Add(1)
		return nil, false, fmt.Errorf("serve: last-good snapshot is %v old, past the %v degraded ceiling: %w",
			age.Round(time.Millisecond), s.maxDegraded, err)
	}
	c.refs.Add(1) // safe: only a swap under the refresh slot retires the cache reference
	s.degradedServed.Add(1)
	return c, true, nil
}

// releaseRef drops one reference; the last drop releases the source
// snapshot.
func (s *Server) releaseRef(c *cachedSnap) {
	if c.refs.Add(-1) == 0 {
		c.snap.Release()
	}
}

func (s *Server) noteAcquire(c *cachedSnap) {
	s.acquires.Add(1)
	v := c.snap.Version()
	if s.lastVersion.Swap(v) != v {
		s.refreshes.Add(1)
	}
}

// envelope is the uniform response shape: the endpoint payload plus the
// snapshot provenance promised by the consistency contract.
type envelope struct {
	Result   any      `json:"result"`
	Snapshot snapInfo `json:"snapshot"`
}

type snapInfo struct {
	Version   uint64 `json:"version"`
	AgeMicros int64  `json:"age_us"`
	// StructureEpoch counts hot structure swaps behind the source (0 for
	// fixed-structure sources); a client that sees it change knows the
	// answer came from a freshly learned structure.
	StructureEpoch uint64 `json:"structure_epoch,omitempty"`
	// Degraded marks an answer served from the last-good snapshot while
	// the source is failing: still consistent and version-monotone, but
	// no fresher estimate exists until the source recovers.
	Degraded bool `json:"degraded,omitempty"`
}

func (s *Server) snapInfoFor(c *cachedSnap, degraded bool) snapInfo {
	return snapInfo{
		Version:        c.snap.Version(),
		AgeMicros:      time.Since(c.snap.BuiltAt()).Microseconds(),
		StructureEpoch: c.snap.StructureEpoch(),
		Degraded:       degraded,
	}
}

type probResult struct {
	P float64 `json:"p"`
}

type classifyResult struct {
	Value int `json:"value"`
}

// readBody enforces the POST method and the body cap: an over-declared
// Content-Length is rejected before any read, and a MaxBytesReader
// backstops bodies with no declared length.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	if r.Method != http.MethodPost {
		return nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s wants POST", r.URL.Path)
	}
	if r.ContentLength > s.maxBody {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: body of %d bytes over the %d-byte limit", r.ContentLength, s.maxBody)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: body over the %d-byte limit", s.maxBody)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("serve: reading body: %w", err)
	}
	return body, 0, nil
}

// requestCtx applies the per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.reqTimeout)
}

// reject maps admission and snapshot-acquisition failures onto the
// overload contract: 429 for shed requests, 503 + Retry-After for
// deadline expiry and unavailable snapshots — always a clean status,
// never a hang or a torn answer.
func (s *Server) reject(w http.ResponseWriter, err error) {
	code := http.StatusServiceUnavailable
	switch {
	case errors.Is(err, errShed):
		code = http.StatusTooManyRequests
		s.shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.deadlineExceeded.Add(1)
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	s.fail(w, code, err)
}

// retryAfterSeconds is the Retry-After hint on 429/503: shed load and
// source failures are transient at the time scale of a snapshot refresh
// or a coordinator failover, so clients should come back quickly.
const retryAfterSeconds = 1

// handle wraps one POST query endpoint with the shared mechanics: request
// accounting, the per-request deadline, the admission gate, the body cap,
// the per-request snapshot acquire/release, the response envelope and
// latency recording. fn computes the payload from one immutable snapshot.
func (s *Server) handle(ctr *atomic.Int64, fn func(body []byte, snap Snapshot) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		s.requests.Add(1)
		s.qps.record(started.Unix())
		ctr.Add(1)
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		if err := s.gate.enter(ctx); err != nil {
			s.reject(w, err)
			return
		}
		defer s.gate.leave()
		body, code, err := s.readBody(w, r)
		if err != nil {
			s.fail(w, code, err)
			return
		}
		c, degraded, err := s.acquireRef(ctx)
		if err != nil {
			s.reject(w, err)
			return
		}
		defer s.releaseRef(c)
		result, err := fn(body, c.snap)
		info := s.snapInfoFor(c, degraded)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		s.writeJSON(w, envelope{Result: result, Snapshot: info})
		s.lat.observe(time.Since(started))
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// queryProb answers P[x] for a full assignment: the product of the
// snapshot factors in ascending variable order — the same order and the
// same float64 values Tracker.QueryProb multiplies, so answers from a
// tracker source are bit-identical to in-process queries against the same
// snapshot. Parent sets resolve against the snapshot's own network, so a
// learned-structure snapshot evaluates under its own (possibly swapped)
// tree.
func (s *Server) queryProb(body []byte, snap Snapshot) (any, error) {
	netw := snap.Network()
	x, err := decodeFullAssignment(netw, s.names, body)
	if err != nil {
		return nil, err
	}
	p := 1.0
	for i := 0; i < netw.Len(); i++ {
		p *= snap.Factor(i, x[i], netw.ParentIndex(i, x))
	}
	return probResult{P: p}, nil
}

// subsetProb answers the marginal of an ancestrally closed subset, which
// factorizes exactly over the member CPDs (Tracker.QuerySubsetProb).
// Ancestral closure is checked against the snapshot's own network — under
// a learned-structure source the closed sets can change across a hot swap.
func (s *Server) subsetProb(body []byte, snap Snapshot) (any, error) {
	netw := snap.Network()
	set, x, err := decodeSubsetAssignment(netw, s.names, body)
	if err != nil {
		return nil, err
	}
	p := 1.0
	for _, i := range set {
		p *= snap.Factor(i, x[i], netw.ParentIndex(i, x))
	}
	return probResult{P: p}, nil
}

// classify is the fully observed Markov-blanket argmax
// (Tracker.Classify): only the target's own factor and its children's
// factors vary with y, all read from one snapshot. Ties break toward the
// smaller value, like the tracker.
func (s *Server) classify(body []byte, snap Snapshot) (any, error) {
	netw := snap.Network()
	target, x, err := decodeClassify(netw, s.names, body)
	if err != nil {
		return nil, err
	}
	best, bestScore := 0, math.Inf(-1)
	for y := 0; y < netw.Card(target); y++ {
		x[target] = y
		score := logOrNegInf(snap.Factor(target, y, netw.ParentIndex(target, x)))
		for _, c := range netw.Children(target) {
			score += logOrNegInf(snap.Factor(c, x[c], netw.ParentIndex(c, x)))
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return classifyResult{Value: best}, nil
}

func logOrNegInf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// classifyPartial predicts the target from partial evidence by exact
// inference on the snapshot's normalized model (Tracker.ClassifyPartial).
func (s *Server) classifyPartial(body []byte, snap Snapshot) (any, error) {
	netw := snap.Network()
	target, ev, err := decodeClassifyPartial(netw, s.names, body)
	if err != nil {
		return nil, err
	}
	m, err := snap.Model()
	if err != nil {
		return nil, err
	}
	best, bestP := 0, -1.0
	for y := 0; y < netw.Card(target); y++ {
		p, err := m.ConditionalProb(map[int]int{target: y}, ev)
		if err != nil {
			return nil, err
		}
		if p > bestP {
			best, bestP = y, p
		}
	}
	return classifyResult{Value: best}, nil
}

// marginal answers an arbitrary marginal P[assign] by exact inference on
// the snapshot's normalized model (Tracker.InferMarginal).
func (s *Server) marginal(body []byte, snap Snapshot) (any, error) {
	assign, err := decodeMarginal(snap.Network(), s.names, body)
	if err != nil {
		return nil, err
	}
	m, err := snap.Model()
	if err != nil {
		return nil, err
	}
	p, err := m.MarginalProb(assign)
	if err != nil {
		return nil, err
	}
	return probResult{P: p}, nil
}

// modelVar is one variable of the /v1/model dump.
type modelVar struct {
	Name    string    `json:"name"`
	Card    int       `json:"card"`
	Parents []int     `json:"parents,omitempty"`
	CPT     []float64 `json:"cpt"`
}

// handleModel dumps the snapshot's normalized model (EstimatedModel over
// the wire): every variable's name, cardinality, parents and CPT in
// pidx-major order. The model is immutable, so encoding it after the
// snapshot reference is released is safe.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.requests.Add(1)
	s.qps.record(started.Unix())
	s.byEndpoint["model"].Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: /v1/model wants GET"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if err := s.gate.enter(ctx); err != nil {
		s.reject(w, err)
		return
	}
	defer s.gate.leave()
	c, degraded, err := s.acquireRef(ctx)
	if err != nil {
		s.reject(w, err)
		return
	}
	m, err := c.snap.Model()
	netw := c.snap.Network() // the snapshot's own (possibly learned) structure
	info := s.snapInfoFor(c, degraded)
	s.releaseRef(c)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	vars := make([]modelVar, netw.Len())
	for i := range vars {
		cpd := m.CPD(i)
		tbl := make([]float64, 0, cpd.Card()*cpd.ParentCard())
		for pidx := 0; pidx < cpd.ParentCard(); pidx++ {
			tbl = append(tbl, cpd.Row(pidx)...)
		}
		vars[i] = modelVar{
			Name:    netw.Var(i).Name,
			Card:    netw.Card(i),
			Parents: netw.Parents(i),
			CPT:     tbl,
		}
	}
	s.writeJSON(w, envelope{Result: map[string]any{"vars": vars}, Snapshot: info})
	s.lat.observe(time.Since(started))
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.Stats())
}

// health classifies the server state for /healthz and Stats. It is a
// read-only view of the last observed refresh outcome — it never probes
// the source itself, so it stays cheap and non-blocking under overload.
func (s *Server) health() (string, int) {
	switch {
	case s.draining.Load():
		return HealthDraining, http.StatusServiceUnavailable
	case s.degraded.Load():
		c := s.cache.Load()
		if c == nil || s.maxDegraded < 0 || time.Since(c.snap.BuiltAt()) > s.maxDegraded {
			return HealthUnavailable, http.StatusServiceUnavailable
		}
		return HealthDegraded, http.StatusOK
	default:
		return HealthOK, http.StatusOK
	}
}

// handleHealthz reports the serving state machine: "ok" and "degraded"
// answer 200 (the server is answering queries), "draining" and
// "unavailable" answer 503. Not gated: health must stay readable under
// overload.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state, code := s.health()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	io.WriteString(w, state+"\n")
}

// Stats assembles the /statsz payload; safe to call concurrently with
// serving.
func (s *Server) Stats() Stats {
	now := time.Now()
	health, _ := s.health()
	st := Stats{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Health:        health,
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		Panics:        s.panics.Load(),
		QPS:           s.qps.rate(now.Unix()),
		ByEndpoint:    make(map[string]int64, len(s.byEndpoint)),
		Admission: AdmissionStats{
			MaxConcurrent:    cap(s.gateSem()),
			MaxQueue:         s.gateMaxQueue(),
			InFlight:         s.gate.inFlight(),
			Queued:           s.gate.waiting(),
			Shed:             s.shed.Load(),
			DeadlineExceeded: s.deadlineExceeded.Load(),
		},
		Degraded: DegradedStats{
			Active:        s.degraded.Load(),
			Served:        s.degradedServed.Load(),
			Unavailable:   s.unavailable.Load(),
			RefreshErrors: s.refreshErrs.Load(),
		},
		Snapshot: SnapshotStats{
			Acquires:  s.acquires.Load(),
			Refreshes: s.refreshes.Load(),
		},
		Latency: LatencyStats{
			Count:             s.lat.count.Load(),
			P50Micros:         s.lat.quantile(0.50),
			P90Micros:         s.lat.quantile(0.90),
			P99Micros:         s.lat.quantile(0.99),
			BucketsPow2Micros: s.lat.snapshot(),
		},
	}
	if st.Degraded.Active {
		st.Degraded.SinceSeconds = now.Sub(time.Unix(0, s.degradedSince.Load())).Seconds()
	}
	if p := s.lastRefreshErr.Load(); p != nil {
		st.Degraded.LastError = *p
	}
	for name, ctr := range s.byEndpoint {
		st.ByEndpoint[name] = ctr.Load()
	}
	if c := s.cache.Load(); c != nil {
		// Version/BuiltAt read immutable snapshot fields, safe even if the
		// cache slot is concurrently swapped and released.
		st.Snapshot.Version = c.snap.Version()
		st.Snapshot.AgeMicros = now.Sub(c.snap.BuiltAt()).Microseconds()
	}
	if r, ok := s.src.(StructStatsReporter); ok {
		if ss, on := r.StructLearnStats(); on {
			st.Struct = &StructLearnStats{
				Frames:   ss.Frames,
				Entries:  ss.Entries,
				Relearns: ss.Relearns,
				Swaps:    ss.Swaps,
				Epoch:    ss.Epoch,
			}
		}
	}
	return st
}

func (s *Server) gateSem() chan struct{} {
	if s.gate == nil {
		return nil
	}
	return s.gate.sem
}

func (s *Server) gateMaxQueue() int {
	if s.gate == nil {
		return 0
	}
	return int(s.gate.maxQueue)
}
