// Package serve exposes a continuously trained model as a network query
// service: an HTTP/JSON front end answering QueryProb, QuerySubsetProb,
// Classify, ClassifyPartial, InferMarginal and EstimatedModel from
// immutable model snapshots, backed by an in-process core.Tracker or a
// live cluster.Coordinator through the same ModelSource interface — the
// user-facing half of the paper's query-at-any-time model: the sites
// train, the coordinator tracks, the server answers.
//
// Endpoints (POST unless noted): /v1/queryprob, /v1/subsetprob,
// /v1/classify, /v1/classifypartial, /v1/marginal, GET /v1/model, plus
// GET /statsz (qps, snapshot version/age, acquire/rebuild counts, latency
// histogram) and GET /healthz. See decode.go for the request shapes.
//
// # Snapshot-consistency contract
//
// Every response is computed from exactly ONE immutable snapshot: the
// request acquires a snapshot reference, reads all its factors from that
// snapshot, and releases it. A response therefore never mixes counter
// states from before and after a concurrent ingest flush, and ingestion
// never blocks on a slow reader — the tracker's snapshots are refcounted,
// so an ingest burst simply retires the served snapshot, which is
// recycled when its last reader releases it. Every reply carries the
// snapshot's version (monotone non-decreasing) and age in the "snapshot"
// field, so a client knows exactly how fresh its answer is.
//
// Config.MaxSnapshotAge bounds staleness: the server shares one acquired
// snapshot across requests for at most that long (default 5ms) before
// re-acquiring. This also bounds the rebuild rate under a query hammer —
// a munin-scale rebuild bulk-reads ~80k cells
// (counter.Bank.EstimateRange), and acquiring per request would rebuild
// per request whenever ingest runs hot. Set it negative to re-acquire on
// every request (strict freshness, same answers a direct Tracker query
// would give at that instant).
//
// # Hardening
//
// Request bodies are bounded by Config.MaxBodyBytes with the declared
// length checked before any read and a MaxBytesReader backstopping
// undeclared (chunked) bodies — the same length-validate-before-allocating
// standard as the cluster's frame decoders (the decoders themselves are
// fuzzed: FuzzServeRequest). Every decoded name and value is validated
// against the network, subset queries must be ancestrally closed, and
// Shutdown drains in-flight requests before releasing the cached
// snapshot.
//
// See examples/serving for an end-to-end run: a TCP cluster training
// while an attached server answers a closed-loop client mix.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
)

// Defaults for Config zero values.
const (
	DefaultMaxBodyBytes   = 1 << 20
	DefaultMaxSnapshotAge = 5 * time.Millisecond
)

// Config parameterizes a Server.
type Config struct {
	// Source is the model back end (required): NewTrackerSource or
	// NewCoordinatorSource.
	Source ModelSource
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxSnapshotAge is how long one acquired snapshot may be shared
	// across requests (0 = DefaultMaxSnapshotAge, negative = re-acquire
	// per request). See the package comment.
	MaxSnapshotAge time.Duration
}

// cachedSnap is one server-held snapshot acquisition shared by concurrent
// requests: refs counts the cache slot (1) plus every in-flight request,
// and the underlying source snapshot is released exactly once, when the
// last reference drops.
type cachedSnap struct {
	snap     Snapshot
	acquired time.Time
	refs     atomic.Int32
}

// Server is the HTTP query front end. Create with New, start with Start
// (or mount Handler yourself), stop with Shutdown.
type Server struct {
	src     ModelSource
	net     *bn.Network
	names   map[string]int
	maxBody int64
	maxAge  time.Duration

	mux *http.ServeMux
	hs  *http.Server
	ln  net.Listener

	// cache is the shared snapshot acquisition; cacheMu serializes
	// re-acquisition so a stale cache triggers one source rebuild, not one
	// per waiting request.
	cacheMu sync.Mutex
	cache   atomic.Pointer[cachedSnap]

	start       time.Time
	requests    atomic.Int64
	errors      atomic.Int64
	acquires    atomic.Int64
	refreshes   atomic.Int64
	lastVersion atomic.Uint64
	byEndpoint  map[string]*atomic.Int64
	lat         histogram
	qps         qpsWindow
}

// New builds a server over cfg.Source.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("serve: Config.Source is required")
	}
	s := &Server{
		src:     cfg.Source,
		net:     cfg.Source.Network(),
		maxBody: cfg.MaxBodyBytes,
		maxAge:  cfg.MaxSnapshotAge,
		start:   time.Now(),
	}
	if s.maxBody == 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	if s.maxAge == 0 {
		s.maxAge = DefaultMaxSnapshotAge
	}
	s.names = make(map[string]int, s.net.Len())
	for i := 0; i < s.net.Len(); i++ {
		s.names[s.net.Var(i).Name] = i
	}
	s.mux = http.NewServeMux()
	s.byEndpoint = make(map[string]*atomic.Int64)
	post := func(name string, fn func(body []byte, snap Snapshot) (any, error)) {
		ctr := new(atomic.Int64)
		s.byEndpoint[name] = ctr
		s.mux.HandleFunc("/v1/"+name, s.handle(ctr, fn))
	}
	post("queryprob", s.queryProb)
	post("subsetprob", s.subsetProb)
	post("classify", s.classify)
	post("classifypartial", s.classifyPartial)
	post("marginal", s.marginal)
	s.byEndpoint["model"] = new(atomic.Int64)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return s, nil
}

// Handler returns the server's HTTP handler, for tests or embedding in an
// existing mux; Start is not required when serving through it.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine; it returns once
// the listener is bound, so Addr is valid immediately (use ":0" to let the
// kernel pick a port).
func (s *Server) Start(addr string) error {
	if s.hs != nil {
		return fmt.Errorf("serve: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go s.hs.Serve(ln)
	return nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections, drains in-flight requests (every
// accepted request completes and its response is written), then releases
// the cached snapshot reference. The context bounds the drain, as in
// net/http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	s.cacheMu.Lock()
	old := s.cache.Swap(nil)
	s.cacheMu.Unlock()
	if old != nil {
		s.releaseRef(old)
	}
	return err
}

// acquireRef returns a referenced snapshot for one request; pair with
// releaseRef. The fast path shares the cached acquisition while it is
// younger than maxAge; the slow path re-acquires from the source under
// cacheMu — one rebuild no matter how many requests found the cache stale.
func (s *Server) acquireRef() *cachedSnap {
	if s.maxAge < 0 {
		c := &cachedSnap{snap: s.src.AcquireSnapshot(), acquired: time.Now()}
		c.refs.Store(1)
		s.noteAcquire(c)
		return c
	}
	for {
		c := s.cache.Load()
		if c != nil && time.Since(c.acquired) <= s.maxAge {
			if r := c.refs.Load(); r > 0 && c.refs.CompareAndSwap(r, r+1) {
				return c
			}
			continue // swapped out or contended; retry
		}
		s.cacheMu.Lock()
		if c2 := s.cache.Load(); c2 != nil && c2 != c && time.Since(c2.acquired) <= s.maxAge {
			// Someone refreshed while we waited for the lock. The cache
			// slot's reference cannot drop while we hold cacheMu, so the
			// increment cannot race retirement.
			c2.refs.Add(1)
			s.cacheMu.Unlock()
			return c2
		}
		nc := &cachedSnap{snap: s.src.AcquireSnapshot(), acquired: time.Now()}
		nc.refs.Store(2) // the cache slot plus this request
		old := s.cache.Swap(nc)
		s.cacheMu.Unlock()
		if old != nil {
			s.releaseRef(old) // the cache slot's reference
		}
		s.noteAcquire(nc)
		return nc
	}
}

// releaseRef drops one reference; the last drop releases the source
// snapshot.
func (s *Server) releaseRef(c *cachedSnap) {
	if c.refs.Add(-1) == 0 {
		c.snap.Release()
	}
}

func (s *Server) noteAcquire(c *cachedSnap) {
	s.acquires.Add(1)
	v := c.snap.Version()
	if s.lastVersion.Swap(v) != v {
		s.refreshes.Add(1)
	}
}

// envelope is the uniform response shape: the endpoint payload plus the
// snapshot provenance promised by the consistency contract.
type envelope struct {
	Result   any      `json:"result"`
	Snapshot snapInfo `json:"snapshot"`
}

type snapInfo struct {
	Version   uint64 `json:"version"`
	AgeMicros int64  `json:"age_us"`
}

type probResult struct {
	P float64 `json:"p"`
}

type classifyResult struct {
	Value int `json:"value"`
}

// readBody enforces the POST method and the body cap: an over-declared
// Content-Length is rejected before any read, and a MaxBytesReader
// backstops bodies with no declared length.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	if r.Method != http.MethodPost {
		return nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s wants POST", r.URL.Path)
	}
	if r.ContentLength > s.maxBody {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: body of %d bytes over the %d-byte limit", r.ContentLength, s.maxBody)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: body over the %d-byte limit", s.maxBody)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("serve: reading body: %w", err)
	}
	return body, 0, nil
}

// handle wraps one POST query endpoint with the shared mechanics: request
// accounting, the body cap, the per-request snapshot acquire/release, the
// response envelope and latency recording. fn computes the payload from
// one immutable snapshot.
func (s *Server) handle(ctr *atomic.Int64, fn func(body []byte, snap Snapshot) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		s.requests.Add(1)
		s.qps.record(started.Unix())
		ctr.Add(1)
		body, code, err := s.readBody(w, r)
		if err != nil {
			s.fail(w, code, err)
			return
		}
		c := s.acquireRef()
		result, err := fn(body, c.snap)
		info := snapInfo{
			Version:   c.snap.Version(),
			AgeMicros: time.Since(c.snap.BuiltAt()).Microseconds(),
		}
		s.releaseRef(c)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		s.writeJSON(w, envelope{Result: result, Snapshot: info})
		s.lat.observe(time.Since(started))
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// queryProb answers P[x] for a full assignment: the product of the
// snapshot factors in ascending variable order — the same order and the
// same float64 values Tracker.QueryProb multiplies, so answers from a
// tracker source are bit-identical to in-process queries against the same
// snapshot.
func (s *Server) queryProb(body []byte, snap Snapshot) (any, error) {
	x, err := decodeFullAssignment(s.net, s.names, body)
	if err != nil {
		return nil, err
	}
	p := 1.0
	for i := 0; i < s.net.Len(); i++ {
		p *= snap.Factor(i, x[i], s.net.ParentIndex(i, x))
	}
	return probResult{P: p}, nil
}

// subsetProb answers the marginal of an ancestrally closed subset, which
// factorizes exactly over the member CPDs (Tracker.QuerySubsetProb).
func (s *Server) subsetProb(body []byte, snap Snapshot) (any, error) {
	set, x, err := decodeSubsetAssignment(s.net, s.names, body)
	if err != nil {
		return nil, err
	}
	p := 1.0
	for _, i := range set {
		p *= snap.Factor(i, x[i], s.net.ParentIndex(i, x))
	}
	return probResult{P: p}, nil
}

// classify is the fully observed Markov-blanket argmax
// (Tracker.Classify): only the target's own factor and its children's
// factors vary with y, all read from one snapshot. Ties break toward the
// smaller value, like the tracker.
func (s *Server) classify(body []byte, snap Snapshot) (any, error) {
	target, x, err := decodeClassify(s.net, s.names, body)
	if err != nil {
		return nil, err
	}
	best, bestScore := 0, math.Inf(-1)
	for y := 0; y < s.net.Card(target); y++ {
		x[target] = y
		score := logOrNegInf(snap.Factor(target, y, s.net.ParentIndex(target, x)))
		for _, c := range s.net.Children(target) {
			score += logOrNegInf(snap.Factor(c, x[c], s.net.ParentIndex(c, x)))
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return classifyResult{Value: best}, nil
}

func logOrNegInf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// classifyPartial predicts the target from partial evidence by exact
// inference on the snapshot's normalized model (Tracker.ClassifyPartial).
func (s *Server) classifyPartial(body []byte, snap Snapshot) (any, error) {
	target, ev, err := decodeClassifyPartial(s.net, s.names, body)
	if err != nil {
		return nil, err
	}
	m, err := snap.Model()
	if err != nil {
		return nil, err
	}
	best, bestP := 0, -1.0
	for y := 0; y < s.net.Card(target); y++ {
		p, err := m.ConditionalProb(map[int]int{target: y}, ev)
		if err != nil {
			return nil, err
		}
		if p > bestP {
			best, bestP = y, p
		}
	}
	return classifyResult{Value: best}, nil
}

// marginal answers an arbitrary marginal P[assign] by exact inference on
// the snapshot's normalized model (Tracker.InferMarginal).
func (s *Server) marginal(body []byte, snap Snapshot) (any, error) {
	assign, err := decodeMarginal(s.net, s.names, body)
	if err != nil {
		return nil, err
	}
	m, err := snap.Model()
	if err != nil {
		return nil, err
	}
	p, err := m.MarginalProb(assign)
	if err != nil {
		return nil, err
	}
	return probResult{P: p}, nil
}

// modelVar is one variable of the /v1/model dump.
type modelVar struct {
	Name    string    `json:"name"`
	Card    int       `json:"card"`
	Parents []int     `json:"parents,omitempty"`
	CPT     []float64 `json:"cpt"`
}

// handleModel dumps the snapshot's normalized model (EstimatedModel over
// the wire): every variable's name, cardinality, parents and CPT in
// pidx-major order. The model is immutable, so encoding it after the
// snapshot reference is released is safe.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.requests.Add(1)
	s.qps.record(started.Unix())
	s.byEndpoint["model"].Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: /v1/model wants GET"))
		return
	}
	c := s.acquireRef()
	m, err := c.snap.Model()
	info := snapInfo{
		Version:   c.snap.Version(),
		AgeMicros: time.Since(c.snap.BuiltAt()).Microseconds(),
	}
	s.releaseRef(c)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	vars := make([]modelVar, s.net.Len())
	for i := range vars {
		cpd := m.CPD(i)
		tbl := make([]float64, 0, cpd.Card()*cpd.ParentCard())
		for pidx := 0; pidx < cpd.ParentCard(); pidx++ {
			tbl = append(tbl, cpd.Row(pidx)...)
		}
		vars[i] = modelVar{
			Name:    s.net.Var(i).Name,
			Card:    s.net.Card(i),
			Parents: s.net.Parents(i),
			CPT:     tbl,
		}
	}
	s.writeJSON(w, envelope{Result: map[string]any{"vars": vars}, Snapshot: info})
	s.lat.observe(time.Since(started))
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.Stats())
}

// Stats assembles the /statsz payload; safe to call concurrently with
// serving.
func (s *Server) Stats() Stats {
	now := time.Now()
	st := Stats{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		QPS:           s.qps.rate(now.Unix()),
		ByEndpoint:    make(map[string]int64, len(s.byEndpoint)),
		Snapshot: SnapshotStats{
			Acquires:  s.acquires.Load(),
			Refreshes: s.refreshes.Load(),
		},
		Latency: LatencyStats{
			Count:             s.lat.count.Load(),
			P50Micros:         s.lat.quantile(0.50),
			P90Micros:         s.lat.quantile(0.90),
			P99Micros:         s.lat.quantile(0.99),
			BucketsPow2Micros: s.lat.snapshot(),
		},
	}
	for name, ctr := range s.byEndpoint {
		st.ByEndpoint[name] = ctr.Load()
	}
	if c := s.cache.Load(); c != nil {
		// Version/BuiltAt read immutable snapshot fields, safe even if the
		// cache slot is concurrently swapped and released.
		st.Snapshot.Version = c.snap.Version()
		st.Snapshot.AgeMicros = now.Sub(c.snap.BuiltAt()).Microseconds()
	}
	return st
}
