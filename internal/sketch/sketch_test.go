package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"distbayes/internal/bn"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 3, 1); err == nil {
		t.Error("width=0 accepted")
	}
	if _, err := NewCountMin(8, 0, 1); err == nil {
		t.Error("depth=0 accepted")
	}
	if _, err := NewEstimator(nil2net(t), 0, 1, 1); err == nil {
		t.Error("estimator width=0 accepted")
	}
}

func nil2net(t *testing.T) *bn.Network {
	t.Helper()
	return bn.MustNetwork([]bn.Variable{{Name: "A", Card: 2}})
}

func TestCountMinNeverUndercounts(t *testing.T) {
	f := func(seed uint64) bool {
		rng := bn.NewRNG(seed)
		cm, err := NewCountMin(64, 3, seed)
		if err != nil {
			return false
		}
		truth := map[uint64]uint64{}
		for i := 0; i < 3000; i++ {
			key := uint64(rng.Intn(200))
			cm.Add(key)
			truth[key]++
		}
		for key, want := range truth {
			if cm.Count(key) < want {
				return false // CountMin must never undercount
			}
		}
		return cm.Total() == 3000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCountMinAccuracyOnSkewedKeys(t *testing.T) {
	cm, err := NewCountMin(512, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := bn.NewRNG(3)
	truth := map[uint64]uint64{}
	const n = 100000
	for i := 0; i < n; i++ {
		// Zipf-ish: low keys much more frequent.
		key := uint64(rng.Intn(1 + rng.Intn(1+rng.Intn(300))))
		cm.Add(key)
		truth[key]++
	}
	// Heavy keys should be estimated within the e·N/width additive bound.
	nf := float64(n)
	bound := uint64(math.Ceil(math.E*nf/512)) + 1
	for key, want := range truth {
		if want < 1000 {
			continue
		}
		got := cm.Count(key)
		if got-want > bound {
			t.Errorf("key %d overcount %d exceeds bound %d", key, got-want, bound)
		}
	}
}

func TestEstimatorOnAlarm(t *testing.T) {
	m, err := netgen.ModelByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	net := m.Network()
	est, err := NewEstimator(net, 256, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	training := stream.NewTraining(m, stream.NewRoundRobinAssigner(1), 9)
	const events = 60000
	for e := 0; e < events; e++ {
		_, x := training.Next()
		est.Update(x)
	}
	// The sketch should use (weakly) fewer cells than the exact tables for
	// this sizing, and answer high-probability queries with modest error.
	exactCells := 0
	for i := 0; i < net.Len(); i++ {
		exactCells += net.Card(i)*net.ParentCard(i) + net.ParentCard(i)
	}
	if est.MemoryCells() > 4*exactCells {
		t.Errorf("sketch uses %d cells vs %d exact; sizing broken", est.MemoryCells(), exactCells)
	}
	queries, err := stream.GenQueries(m, stream.QueryOptions{Count: 200, MinProb: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sumErr := 0.0
	for _, q := range queries {
		got := est.QuerySubsetProb(q.Set, q.X)
		sumErr += math.Abs(got-q.Truth) / q.Truth
	}
	if mean := sumErr / float64(len(queries)); mean > 0.25 {
		t.Errorf("sketch mean relative error %v too large", mean)
	}
}

func TestEstimatorCPDInRange(t *testing.T) {
	net := bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 3},
		{Name: "B", Card: 2, Parents: []int{0}},
	})
	est, err := NewEstimator(net, 4, 2, 1) // deliberately tiny: collisions
	if err != nil {
		t.Fatal(err)
	}
	rng := bn.NewRNG(2)
	x := make([]int, 2)
	for i := 0; i < 5000; i++ {
		x[0], x[1] = rng.Intn(3), rng.Intn(2)
		est.Update(x)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 2; b++ {
			p := est.CPD(1, b, a)
			if p < 0 || p > 1 {
				t.Errorf("CPD estimate %v out of [0,1]", p)
			}
		}
	}
	if est.CPD(0, 0, 0) == 0 {
		t.Error("frequent cell estimated as zero")
	}
}

// TestEstimatorCPDUnseenParentUniform pins the zero-denominator fix: a
// parent configuration with no observed mass must fall back to the uniform
// 1/Card(i) instead of returning a hard 0 (which would zero out every
// QuerySubsetProb touching the unseen config).
func TestEstimatorCPDUnseenParentUniform(t *testing.T) {
	net := bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 4, Parents: []int{0}},
	})
	est, err := NewEstimator(net, 256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh estimator has seen nothing: every CPD is the uniform fallback.
	for v := 0; v < 4; v++ {
		if got := est.CPD(1, v, 0); got != 0.25 {
			t.Errorf("unseen CPD(1,%d,0) = %v, want 0.25", v, got)
		}
	}
	// Only A=0 is ever observed; the A=1 parent row stays unseen.
	for i := 0; i < 100; i++ {
		est.Update([]int{0, i % 4})
	}
	if got := est.CPD(1, 2, 1); got != 0.25 {
		t.Errorf("unseen parent row CPD = %v, want uniform 0.25", got)
	}
	if got := est.CPD(1, 1, 0); got != 0.25 {
		t.Errorf("seen parent row CPD = %v, want 0.25 from counts", got)
	}
	// The product query through the unseen config must not collapse to 0.
	if got := est.QuerySubsetProb([]int{1}, []int{1, 2}); got == 0 {
		t.Error("QuerySubsetProb through unseen parent config = 0")
	}
}
