// Package sketch implements a CountMin-sketch-backed estimator of Bayesian-
// network parameters, after the "graphical model sketch" line of work
// (Kveton et al., ECML-PKDD 2016) that the paper discusses as related work
// (Section II). Where the paper's algorithms spend *communication* to track
// every counter, the sketch spends *memory*: all pair counters of a variable
// share one small CountMin table, so the space is O(width·depth) per
// variable regardless of J_i·K_i, at the price of an additive overcount
// bias. It is a centralized-memory baseline, not a communication protocol —
// the ablation bench contrasts the two axes.
package sketch

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
)

// CountMin is a conservative-update CountMin sketch over uint64 keys.
type CountMin struct {
	width int
	depth int
	rows  [][]uint64
	salts []uint64
	total int64
}

// NewCountMin creates a sketch with the given width (counters per row) and
// depth (independent rows). Standard guarantee: overcount ≤ e·N/width with
// probability 1 - e^{-depth}.
func NewCountMin(width, depth int, seed uint64) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sketch: invalid shape %dx%d", depth, width)
	}
	cm := &CountMin{width: width, depth: depth}
	rng := bn.NewRNG(seed)
	cm.rows = make([][]uint64, depth)
	cm.salts = make([]uint64, depth)
	for d := range cm.rows {
		cm.rows[d] = make([]uint64, width)
		cm.salts[d] = rng.Uint64() | 1
	}
	return cm, nil
}

// hash mixes the key with a per-row salt (splitmix-style finalizer).
func (cm *CountMin) hash(d int, key uint64) int {
	x := key ^ cm.salts[d]
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(cm.width))
}

// Add increments the key's count using conservative update (only the
// minimal cells grow), which tightens the overcount bias.
func (cm *CountMin) Add(key uint64) {
	cm.total++
	est := cm.Count(key)
	for d := 0; d < cm.depth; d++ {
		c := &cm.rows[d][cm.hash(d, key)]
		if *c < est+1 {
			*c = est + 1
		}
	}
}

// Count returns the estimated count of key (an overestimate in expectation).
func (cm *CountMin) Count(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for d := 0; d < cm.depth; d++ {
		if c := cm.rows[d][cm.hash(d, key)]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the number of Add calls.
func (cm *CountMin) Total() int64 { return cm.total }

// MemoryCells returns the number of uint64 cells the sketch holds.
func (cm *CountMin) MemoryCells() int { return cm.width * cm.depth }

// table abstracts the per-variable counting structure: a dense exact array
// for small domains, a CountMin sketch for large ones.
type table interface {
	Add(key uint64)
	Count(key uint64) uint64
	MemoryCells() int
}

// dense is exact counting for tables that fit.
type dense struct{ counts []uint64 }

func (d *dense) Add(key uint64)          { d.counts[key]++ }
func (d *dense) Count(key uint64) uint64 { return d.counts[key] }
func (d *dense) MemoryCells() int        { return len(d.counts) }

// Estimator tracks the CPDs of a network with one pair table and one parent
// table per variable.
type Estimator struct {
	net   *bn.Network
	pair  []table
	par   []table
	cells int
}

// NewEstimator chooses per variable between a dense exact table and a
// width×depth CountMin sketch: the sketch is used only when it is smaller
// than the exact table (the Kveton et al. setting — compress high-
// cardinality variables, count small ones exactly).
func NewEstimator(net *bn.Network, width, depth int, seed uint64) (*Estimator, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sketch: invalid shape %dx%d", depth, width)
	}
	e := &Estimator{net: net}
	mk := func(size int, seed uint64) (table, error) {
		if size <= width*depth {
			return &dense{counts: make([]uint64, size)}, nil
		}
		return NewCountMin(width, depth, seed)
	}
	for i := 0; i < net.Len(); i++ {
		tPair, err := mk(net.Card(i)*net.ParentCard(i), seed+uint64(2*i))
		if err != nil {
			return nil, err
		}
		tPar, err := mk(net.ParentCard(i), seed+uint64(2*i+1))
		if err != nil {
			return nil, err
		}
		e.pair = append(e.pair, tPair)
		e.par = append(e.par, tPar)
		e.cells += tPair.MemoryCells() + tPar.MemoryCells()
	}
	return e, nil
}

// Update absorbs one observation.
func (e *Estimator) Update(x []int) {
	for i := 0; i < e.net.Len(); i++ {
		pidx := e.net.ParentIndex(i, x)
		e.pair[i].Add(uint64(pidx)*uint64(e.net.Card(i)) + uint64(x[i]))
		e.par[i].Add(uint64(pidx))
	}
}

// CPD estimates P[X_i = v | parent config pidx] from the sketches, clamped
// to [0, 1] (overcounts can push the raw ratio above 1). A parent
// configuration with no observed mass falls back to the uniform
// 1/Card(i) — the same zero-row handling as chowliu.LearnModel — so
// QuerySubsetProb degrades to an uninformative factor on unseen parent
// configs instead of multiplying the whole product to a hard 0, matching
// the tracker's smoothed estimates in spirit.
func (e *Estimator) CPD(i, v, pidx int) float64 {
	den := e.par[i].Count(uint64(pidx))
	if den == 0 {
		return 1 / float64(e.net.Card(i))
	}
	num := e.pair[i].Count(uint64(pidx)*uint64(e.net.Card(i)) + uint64(v))
	p := float64(num) / float64(den)
	if p > 1 {
		return 1
	}
	return p
}

// QuerySubsetProb mirrors core.Tracker.QuerySubsetProb on the sketched
// parameters.
func (e *Estimator) QuerySubsetProb(set []int, x []int) float64 {
	p := 1.0
	for _, i := range set {
		p *= e.CPD(i, x[i], e.net.ParentIndex(i, x))
	}
	return p
}

// MemoryCells returns the total number of sketch cells across variables —
// the space the method trades against the exact table size (NumCells of the
// network).
func (e *Estimator) MemoryCells() int { return e.cells }
