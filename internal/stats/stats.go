// Package stats provides the summary statistics used to report experiment
// results: means, quantiles and boxplot five-number summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a boxplot five-number summary plus mean and count.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes the summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{N: 0, Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
	}
}

// String renders the summary compactly for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs; NaN if any value is
// non-positive or the input is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
