package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q not NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("Median = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Mean-22) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !strings.Contains(s.String(), "med=3") {
		t.Errorf("String = %q", s.String())
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Variance = %v", got)
	}
	if got := Variance([]float64{1, 3}); got != 1 {
		t.Errorf("Variance = %v, want 1", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negative not NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) not NaN")
	}
}
