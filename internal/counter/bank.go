package counter

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
)

// This file implements flat counter banks: the struct-of-arrays storage
// behind every distributed counter in the tracker's hot path.
//
// # Memory layout
//
// A Bank holds the state of `cells` logical counters of one Kind that share
// a site count k, an error parameter eps, a metrics sink and (for the
// randomized kind) an RNG. Instead of one heap object per counter, all
// per-cell scalars live in parallel slices indexed by cell —
//
//	total[cell], sampling[cell], base[cell], pThresh[cell], adj[cell],
//	estSum[cell], nReporters[cell], quantum[cell], reported[cell]
//
// — and the per-site round state lives in single backing slices indexed by
// cell*k + site:
//
//	d[cell*k+site]        HYZ: in-round local increments
//	r[cell*k+site]        HYZ: last reported in-round delta
//	pending[cell*k+site]  Deterministic: unreported local increments
//
// The Inc(cell, site) hot path is therefore a direct method call on
// contiguous memory — no interface dispatch, no pointer chase through
// per-cell objects — and a whole bank costs O(1) allocations instead of
// O(cells).
//
// The per-cell protocol logic is an exact port of the historical per-cell
// counters (HYZ, Deterministic, Exact below, which are now thin one-cell
// views over a Bank): same branch structure, same RNG draw order, same
// message tallies. A sequence of Inc calls against a bank is bit-identical
// to the same sequence against individually allocated counters sharing the
// same RNG, which is what preserves the tracker's Shards=1 reproducibility
// guarantee across the flat-layout refactor.
//
// # Custom cells
//
// A bank built with NewCustomBank stores one Counter interface value per
// cell instead of flat state. This is the extension point used by
// core.Config.CounterFactory (e.g. the time-decayed counters of
// internal/decay): the tracker drives every bank through the same
// Inc/Estimate/Exact indexed API, and custom banks forward to the per-cell
// objects.

// Kind selects the distributed-counter protocol of a Bank's cells.
type Kind uint8

const (
	// ExactKind forwards every increment to the coordinator (Lemma 5).
	ExactKind Kind = iota
	// HYZKind is the randomized counter of Lemma 4 (the paper's choice).
	HYZKind
	// DeterministicKind is the classical O(k/ε·log T) threshold counter.
	DeterministicKind
	// customKind marks a bank whose cells are caller-supplied Counter
	// values (NewCustomBank).
	customKind
)

// Bank is a flat struct-of-arrays bank of `cells` distributed counters that
// share one protocol kind, site count, error parameter, metrics sink and
// RNG. All methods taking a cell index expect 0 ≤ cell < Cells(); like a
// slice index, an out-of-range cell panics.
//
// A Bank is not safe for concurrent use; in the tracker every bank belongs
// to exactly one lock stripe.
type Bank struct {
	kind    Kind
	k       int
	cells   int
	eps     float64
	metrics *Metrics
	rng     *bn.RNG

	// exactThresh caches ExactThreshold(k, eps) for the HYZ kind so the
	// exact-mode hot path does not recompute a sqrt per increment.
	exactThresh int64

	total []int64

	// Round state shared by the sampling kinds (nil for ExactKind).
	sampling []bool
	base     []int64

	// HYZ state.
	pThresh    []uint64
	adj        []float64
	estSum     []int64
	nReporters []int32
	d, r       []int64 // cell*k + site

	// Deterministic state.
	quantum  []int64
	reported []int64
	pending  []int64 // cell*k + site

	// custom is non-nil iff kind == customKind.
	custom []Counter
}

// NewBank creates a bank of cells counters of the given kind over k sites
// with error parameter eps, tallying messages into metrics. rng feeds the
// randomized kind and may be shared with other banks driven under the same
// lock; it is ignored by the other kinds. delta is accepted for interface
// fidelity with DistCounter(ε, δ) and unused (see the HYZ type comment).
func NewBank(kind Kind, cells, k int, eps, delta float64, metrics *Metrics, rng *bn.RNG) (*Bank, error) {
	_ = delta
	if cells < 0 {
		return nil, fmt.Errorf("counter: bank cells = %d, want >= 0", cells)
	}
	if metrics == nil {
		return nil, fmt.Errorf("counter: bank needs a metrics sink")
	}
	b := &Bank{kind: kind, k: k, cells: cells, eps: eps, metrics: metrics, rng: rng}
	switch kind {
	case ExactKind:
		if k < 1 {
			return nil, fmt.Errorf("counter: need at least one site, got %d", k)
		}
		b.total = make([]int64, cells)
	case HYZKind:
		if err := validate(k, eps); err != nil {
			return nil, err
		}
		if rng == nil {
			return nil, fmt.Errorf("counter: randomized bank needs an RNG")
		}
		b.exactThresh = ExactThreshold(k, eps)
		b.total = make([]int64, cells)
		b.sampling = make([]bool, cells)
		b.base = make([]int64, cells)
		b.pThresh = make([]uint64, cells)
		b.adj = make([]float64, cells)
		b.estSum = make([]int64, cells)
		b.nReporters = make([]int32, cells)
		// One contiguous slab for both per-site planes keeps the d/r pair
		// of a cell on adjacent cache lines.
		slab := make([]int64, 2*cells*k)
		b.d, b.r = slab[:cells*k:cells*k], slab[cells*k:]
	case DeterministicKind:
		if err := validate(k, eps); err != nil {
			return nil, err
		}
		b.total = make([]int64, cells)
		b.sampling = make([]bool, cells)
		b.base = make([]int64, cells)
		b.quantum = make([]int64, cells)
		b.reported = make([]int64, cells)
		b.pending = make([]int64, cells*k)
	default:
		return nil, fmt.Errorf("counter: unknown bank kind %d", kind)
	}
	return b, nil
}

// NewCustomBank creates a bank whose cells are caller-supplied Counter
// values, built by calling newCell once per cell in ascending order. It is
// the Config.CounterFactory extension point: custom banks keep per-cell
// interface dispatch but present the same indexed API as flat banks.
func NewCustomBank(cells int, newCell func(cell int) (Counter, error)) (*Bank, error) {
	if cells < 0 {
		return nil, fmt.Errorf("counter: bank cells = %d, want >= 0", cells)
	}
	b := &Bank{kind: customKind, cells: cells, custom: make([]Counter, cells)}
	for c := 0; c < cells; c++ {
		cc, err := newCell(c)
		if err != nil {
			return nil, err
		}
		if cc == nil {
			return nil, fmt.Errorf("counter: nil custom counter for cell %d", c)
		}
		b.custom[c] = cc
	}
	return b, nil
}

// Cells returns the number of counters in the bank.
func (b *Bank) Cells() int { return b.cells }

// Inc records one increment for cell observed at site. This is the
// tracker's ingest hot path: for the built-in kinds it runs devirtualized
// on the bank's flat state.
func (b *Bank) Inc(cell, site int) {
	switch b.kind {
	case ExactKind:
		b.total[cell]++
		b.metrics.AddSiteToCoord(1)
	case HYZKind:
		b.incHYZ(cell, site)
	case DeterministicKind:
		b.incDet(cell, site)
	default:
		b.custom[cell].Inc(site)
	}
}

// Estimate returns the coordinator's current estimate of cell's count.
func (b *Bank) Estimate(cell int) float64 {
	switch b.kind {
	case ExactKind:
		return float64(b.total[cell])
	case HYZKind:
		if !b.sampling[cell] {
			return float64(b.total[cell])
		}
		return float64(b.base[cell]) + b.inRoundEstimate(cell)
	case DeterministicKind:
		if !b.sampling[cell] {
			return float64(b.total[cell])
		}
		return float64(b.base[cell] + b.reported[cell])
	default:
		return b.custom[cell].Estimate()
	}
}

// EstimateRange bulk-reads the estimates of cells [lo, hi) into
// dst[:hi-lo]: one kind-specialized pass over the flat struct-of-arrays
// state instead of a per-cell switch dispatch, bit-identical to calling
// Estimate on each cell. This is the snapshot-rebuild hot path — a
// munin-scale rebuild reads ~80k cells, and the bulk loops keep the kind
// dispatch and slice-header loads out of the walk. An out-of-range [lo, hi)
// panics, like a slice expression; dst must hold at least hi-lo values.
func (b *Bank) EstimateRange(lo, hi int, dst []float64) {
	if lo < 0 || hi < lo || hi > b.cells {
		panic(fmt.Sprintf("counter: estimate range [%d,%d) outside [0,%d]", lo, hi, b.cells))
	}
	dst = dst[:hi-lo]
	switch b.kind {
	case ExactKind:
		for c, t := range b.total[lo:hi] {
			dst[c] = float64(t)
		}
	case HYZKind:
		total, sampling, base := b.total, b.sampling, b.base
		estSum, nRep, adj := b.estSum, b.nReporters, b.adj
		for c := lo; c < hi; c++ {
			if !sampling[c] {
				dst[c-lo] = float64(total[c])
				continue
			}
			// Parenthesized to keep Estimate's association:
			// base + (estSum + nReporters·adj), cf. inRoundEstimate.
			dst[c-lo] = float64(base[c]) + (float64(estSum[c]) + float64(nRep[c])*adj[c])
		}
	case DeterministicKind:
		total, sampling := b.total, b.sampling
		base, reported := b.base, b.reported
		for c := lo; c < hi; c++ {
			if !sampling[c] {
				dst[c-lo] = float64(total[c])
				continue
			}
			dst[c-lo] = float64(base[c] + reported[c])
		}
	default:
		for c := lo; c < hi; c++ {
			dst[c-lo] = b.custom[c].Estimate()
		}
	}
}

// Exact returns cell's true count (evaluation only).
func (b *Bank) Exact(cell int) int64 {
	if b.kind == customKind {
		return b.custom[cell].Exact()
	}
	return b.total[cell]
}

// Merge folds a delta of per-(cell, site) increment counts into the bank,
// replaying each cell's counter protocol on the merged totals. delta is
// indexed cell*k + site and must have length Cells()·k; for custom banks,
// whose site count is not recorded, the stride k is derived as
// len(delta)/Cells(). A mismatched length panics, like a slice misuse.
//
// Merging is equivalent to calling Inc once per recorded increment with the
// increments of one (cell, site) run applied back to back: exact totals are
// identical to any other interleaving of the same multiset (Inc totals are
// commutative), while message schedules and randomized estimates correspond
// to that batched interleaving — the same interleaving-dependence already
// accepted for sharded ingestion, so the per-counter (ε, δ) guarantee is
// preserved. The built-in kinds take bulk fast paths where the protocol
// allows: ExactKind folds a whole cell in O(1), the sampling kinds bulk-add
// the exact-mode prefix of a run and (for the deterministic counter) whole
// report quanta, falling back to per-increment replay only where an RNG draw
// or a threshold crossing requires it. This is the merge half of the
// tracker's delta-buffered ingestion mode (core.Config.DeltaBuffered).
func (b *Bank) Merge(delta []int64) {
	k := b.k
	if b.kind == customKind {
		if b.cells == 0 {
			if len(delta) != 0 {
				panic(fmt.Sprintf("counter: merge delta of %d cells into empty bank", len(delta)))
			}
			return
		}
		if len(delta)%b.cells != 0 {
			panic(fmt.Sprintf("counter: merge delta length %d not a multiple of %d cells", len(delta), b.cells))
		}
		k = len(delta) / b.cells
	} else if len(delta) != b.cells*k {
		panic(fmt.Sprintf("counter: merge delta length %d, want %d (%d cells x %d sites)", len(delta), b.cells*k, b.cells, k))
	}
	switch b.kind {
	case ExactKind:
		var msgs int64
		for cell := 0; cell < b.cells; cell++ {
			var sum int64
			for _, c := range delta[cell*k : (cell+1)*k] {
				sum += c
			}
			b.total[cell] += sum
			msgs += sum
		}
		if msgs != 0 {
			b.metrics.AddSiteToCoord(msgs)
		}
	case HYZKind:
		for cell := 0; cell < b.cells; cell++ {
			row := delta[cell*k : (cell+1)*k]
			for site, c := range row {
				if c > 0 {
					b.mergeHYZ(cell, site, c)
				}
			}
		}
	case DeterministicKind:
		for cell := 0; cell < b.cells; cell++ {
			row := delta[cell*k : (cell+1)*k]
			for site, c := range row {
				if c > 0 {
					b.mergeDet(cell, site, c)
				}
			}
		}
	default:
		for cell := 0; cell < b.cells; cell++ {
			row := delta[cell*k : (cell+1)*k]
			for site, c := range row {
				for ; c > 0; c-- {
					b.custom[cell].Inc(site)
				}
			}
		}
	}
}

// mergeHYZ replays c increments of cell at site. The exact-mode prefix is
// bulk-added (each increment forwards one message and the round opens exactly
// when the total reaches the threshold, so the fold is bit-identical to the
// per-increment loop); sampling-mode increments replay individually because
// each draws the report coin.
func (b *Bank) mergeHYZ(cell, site int, c int64) {
	if !b.sampling[cell] {
		step := b.exactThresh - b.total[cell]
		if step > c {
			step = c
		}
		if step > 0 {
			b.total[cell] += step
			b.metrics.AddSiteToCoord(step)
			c -= step
		}
		if b.total[cell] >= b.exactThresh {
			b.openRoundHYZ(cell)
		}
		if c == 0 {
			return
		}
	}
	// Per-increment replay with the per-cell state hoisted into locals; a
	// report can reset the round (total stays, d and pThresh change), so the
	// locals are written back before and reloaded after each one.
	idx := cell*b.k + site
	tot, d, pt := b.total[cell], b.d[idx], b.pThresh[cell]
	for ; c > 0; c-- {
		tot++
		d++
		if b.rng.Uint64() < pt {
			b.total[cell], b.d[idx] = tot, d
			b.reportHYZ(cell, site)
			tot, d, pt = b.total[cell], b.d[idx], b.pThresh[cell]
		}
	}
	b.total[cell], b.d[idx] = tot, d
}

// mergeDet replays c increments of cell at site. Exact mode replays per
// increment (the round-opening threshold is a ceil of the running total);
// sampling mode advances whole report quanta at a time — a report fires on
// the increment that lifts the site's pending delta to the quantum, so a run
// folds into ⌊c/quantum⌋ reports plus a remainder, matching the
// per-increment loop exactly.
func (b *Bank) mergeDet(cell, site int, c int64) {
	for !b.sampling[cell] {
		if c == 0 {
			return
		}
		b.total[cell]++
		b.metrics.AddSiteToCoord(1)
		c--
		if q := int64(math.Ceil(b.eps * float64(b.total[cell]) / float64(b.k))); q >= 2 {
			b.openRoundDet(cell)
		}
	}
	idx := cell*b.k + site
	for c > 0 {
		need := b.quantum[cell] - b.pending[idx] // increments until a report fires
		if need > c {
			b.pending[idx] += c
			b.total[cell] += c
			return
		}
		b.pending[idx] += need
		b.total[cell] += need
		c -= need
		b.metrics.AddSiteToCoord(1)
		b.reported[cell] += b.pending[idx]
		b.pending[idx] = 0
		if b.reported[cell] >= b.base[cell] {
			b.openRoundDet(cell) // resets every site's pending, new quantum
		}
	}
}

// MergeCell folds one cell's per-site increment deltas into the bank — the
// single-cell sibling of Merge, used by the sparse delta-buffer flush path
// (core.Config.DeltaSparse), which touches only the cells a buffer actually
// dirtied instead of scanning the whole bank. row is indexed by site and must
// have length k (for custom banks, whose site count is not recorded, any
// length is accepted and replayed per increment). Merging a cell through
// MergeCell is bit-identical to merging it through Merge with every other
// cell's row zero: the same bulk fast paths run, the same RNG draws happen in
// the same order, and the same messages are tallied.
func (b *Bank) MergeCell(cell int, row []int64) {
	if b.kind != customKind && len(row) != b.k {
		panic(fmt.Sprintf("counter: merge row length %d, want %d sites", len(row), b.k))
	}
	switch b.kind {
	case ExactKind:
		var sum int64
		for _, c := range row {
			sum += c
		}
		b.total[cell] += sum
		if sum != 0 {
			b.metrics.AddSiteToCoord(sum)
		}
	case HYZKind:
		for site, c := range row {
			if c > 0 {
				b.mergeHYZ(cell, site, c)
			}
		}
	case DeterministicKind:
		for site, c := range row {
			if c > 0 {
				b.mergeDet(cell, site, c)
			}
		}
	default:
		for site, c := range row {
			for ; c > 0; c-- {
				b.custom[cell].Inc(site)
			}
		}
	}
}

// Cell returns a Counter view of one cell: the thin per-cell adapter that
// keeps the historical interface working over the flat layout. For custom
// banks it returns the underlying counter itself.
func (b *Bank) Cell(cell int) Counter {
	if b.kind == customKind {
		return b.custom[cell]
	}
	if cell < 0 || cell >= b.cells {
		panic(fmt.Sprintf("counter: cell %d out of range [0,%d)", cell, b.cells))
	}
	return cellView{b: b, cell: cell}
}

// cellView adapts one bank cell to the Counter interface.
type cellView struct {
	b    *Bank
	cell int
}

func (v cellView) Inc(site int)      { v.b.Inc(v.cell, site) }
func (v cellView) Estimate() float64 { return v.b.Estimate(v.cell) }
func (v cellView) Exact() int64      { return v.b.Exact(v.cell) }

// --- HYZ protocol on flat state (see the HYZ type comment for the math) ---

func (b *Bank) incHYZ(cell, site int) {
	b.total[cell]++
	if !b.sampling[cell] {
		// Exact mode: forward every increment.
		b.metrics.AddSiteToCoord(1)
		if b.total[cell] >= b.exactThresh {
			b.openRoundHYZ(cell)
		}
		return
	}
	b.d[cell*b.k+site]++
	if b.rng.Uint64() < b.pThresh[cell] {
		b.reportHYZ(cell, site)
	}
}

// reportHYZ delivers site's current in-round delta to the coordinator and
// advances the round if the in-round estimate shows the count has doubled.
func (b *Bank) reportHYZ(cell, site int) {
	b.metrics.AddSiteToCoord(1)
	idx := cell*b.k + site
	if b.r[idx] == 0 {
		b.nReporters[cell]++
	}
	b.estSum[cell] += b.d[idx] - b.r[idx]
	b.r[idx] = b.d[idx]
	if b.inRoundEstimate(cell) >= float64(b.base[cell]) {
		b.openRoundHYZ(cell)
	}
}

// openRoundHYZ synchronizes all sites (k reports + k broadcasts) and resets
// the cell's in-round state with a new report probability.
func (b *Bank) openRoundHYZ(cell int) {
	b.sampling[cell] = true
	b.metrics.AddSiteToCoord(int64(b.k))
	b.metrics.AddCoordToSite(int64(b.k))

	b.base[cell] = b.total[cell]
	b.setRoundParams(cell, ReportProb(b.k, b.eps, b.base[cell]))
	lo := cell * b.k
	for i := lo; i < lo+b.k; i++ {
		b.d[i] = 0
		b.r[i] = 0
	}
	b.estSum[cell] = 0
	b.nReporters[cell] = 0
}

// setRoundParams installs the derived sampling parameters for a round run at
// report probability p.
func (b *Bank) setRoundParams(cell int, p float64) {
	if p >= 1 {
		b.pThresh[cell] = math.MaxUint64
		b.adj[cell] = 0
	} else {
		b.pThresh[cell] = uint64(p * math.MaxUint64)
		b.adj[cell] = (1 - p) / p
	}
}

// inRoundEstimate is the coordinator's estimate of cell's increments since
// the round opened.
func (b *Bank) inRoundEstimate(cell int) float64 {
	return float64(b.estSum[cell]) + float64(b.nReporters[cell])*b.adj[cell]
}

// --- deterministic threshold protocol on flat state ---

func (b *Bank) incDet(cell, site int) {
	b.total[cell]++
	if !b.sampling[cell] {
		b.metrics.AddSiteToCoord(1)
		// Exact until a quantum of at least 2 is worthwhile. Computed per
		// increment (not cached) to stay bit-identical to the historical
		// per-cell counter, whose threshold depends on the running total.
		if q := int64(math.Ceil(b.eps * float64(b.total[cell]) / float64(b.k))); q >= 2 {
			b.openRoundDet(cell)
		}
		return
	}
	idx := cell*b.k + site
	b.pending[idx]++
	if b.pending[idx] >= b.quantum[cell] {
		b.metrics.AddSiteToCoord(1)
		b.reported[cell] += b.pending[idx]
		b.pending[idx] = 0
		if b.reported[cell] >= b.base[cell] {
			b.openRoundDet(cell)
		}
	}
}

func (b *Bank) openRoundDet(cell int) {
	b.sampling[cell] = true
	b.metrics.AddSiteToCoord(int64(b.k))
	b.metrics.AddCoordToSite(int64(b.k))
	b.base[cell] = b.total[cell]
	q := int64(math.Ceil(b.eps * float64(b.base[cell]) / float64(b.k)))
	if q < 1 {
		q = 1
	}
	b.quantum[cell] = q
	lo := cell * b.k
	for i := lo; i < lo+b.k; i++ {
		b.pending[i] = 0
	}
	b.reported[cell] = 0
}
