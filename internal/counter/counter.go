// Package counter implements continuously tracked distributed counters in
// the continuous distributed monitoring model: k sites receive increments and
// a coordinator maintains an estimate of the global count at all times.
//
// Three trackers are provided:
//
//   - Exact: every increment is forwarded to the coordinator (the strawman
//     behind EXACTMLE, Lemma 5 of the paper).
//   - HYZ: the randomized counter of Huang, Yi and Zhang (PODS 2012), quoted
//     as Lemma 4: unbiased, Var ≤ (εC)², O(√k/ε · log T) messages.
//   - Deterministic: the classical threshold counter with O(k/ε · log T)
//     messages, kept as an ablation baseline.
//
// The package simulates the protocol in-process: site-side and
// coordinator-side state live in one struct and "messages" are tallied in a
// shared Metrics sink. The live TCP implementation in internal/cluster uses
// the same schedule helpers (ReportProb, ExactThreshold) with real messages.
//
// Storage comes in two shapes: Bank is a flat struct-of-arrays bank of many
// counters sharing one configuration (the tracker's hot path — see bank.go
// for the layout), and the standalone types above are thin one-cell views
// over a Bank kept for single-counter uses (decay sub-counters, tests,
// benchmarks) and as the Counter interface implementation behind the
// CounterFactory extension point.
package counter

import (
	"fmt"
	"math"
	"sync/atomic"

	"distbayes/internal/bn"
)

// Metrics tallies protocol messages. One message is one counter update or
// one synchronization/broadcast unit, matching the accounting used in the
// paper's experiments (Section VI-A).
//
// A Metrics value used as a live sink (passed by pointer to counter
// constructors) is race-safe: counters tally through atomic adds, so one sink
// may be shared by counters living in different lock stripes of a sharded
// tracker. Read a live sink with Snapshot; plain field access is only safe
// once all ingestion has completed (or on Snapshot copies). When embedding a
// live sink inside another struct, place it at a 64-bit-aligned offset
// (e.g. as the first field) so the atomic ops hold on 32-bit platforms.
type Metrics struct {
	// SiteToCoord counts site → coordinator messages (counter updates and
	// round-synchronization reports).
	SiteToCoord int64
	// CoordToSite counts coordinator → site messages (round-parameter
	// broadcasts).
	CoordToSite int64
}

// Total returns all messages in both directions.
func (m Metrics) Total() int64 { return m.SiteToCoord + m.CoordToSite }

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.SiteToCoord += other.SiteToCoord
	m.CoordToSite += other.CoordToSite
}

// AddSiteToCoord atomically tallies n site → coordinator messages.
func (m *Metrics) AddSiteToCoord(n int64) { atomic.AddInt64(&m.SiteToCoord, n) }

// AddCoordToSite atomically tallies n coordinator → site messages.
func (m *Metrics) AddCoordToSite(n int64) { atomic.AddInt64(&m.CoordToSite, n) }

// Snapshot returns a race-free copy of the tallies, safe to call while other
// goroutines are still incrementing counters that write to m. The two fields
// are loaded independently, so a snapshot taken mid-update (e.g. between a
// round's report and broadcast tallies) need not satisfy cross-field
// invariants; quiesce ingestion for an exact pair.
func (m *Metrics) Snapshot() Metrics {
	return Metrics{
		SiteToCoord: atomic.LoadInt64(&m.SiteToCoord),
		CoordToSite: atomic.LoadInt64(&m.CoordToSite),
	}
}

// Store atomically overwrites the tallies with those of other.
func (m *Metrics) Store(other Metrics) {
	atomic.StoreInt64(&m.SiteToCoord, other.SiteToCoord)
	atomic.StoreInt64(&m.CoordToSite, other.CoordToSite)
}

// Counter is a continuously tracked distributed counter.
type Counter interface {
	// Inc records one increment observed at the given site.
	Inc(site int)
	// Estimate returns the coordinator's current estimate of the count.
	Estimate() float64
	// Exact returns the true count (evaluation only; a real coordinator
	// would not have access to it for approximate trackers).
	Exact() int64
}

// Exact is the strawman counter: the coordinator is informed of every
// increment, costing one message per increment.
type Exact struct {
	metrics *Metrics
	total   int64
}

// NewExact creates an exact counter that tallies messages into metrics.
func NewExact(metrics *Metrics) *Exact {
	return &Exact{metrics: metrics}
}

// Inc implements Counter.
func (c *Exact) Inc(site int) {
	_ = site
	c.total++
	c.metrics.AddSiteToCoord(1)
}

// Estimate implements Counter; it is always the exact value.
func (c *Exact) Estimate() float64 { return float64(c.total) }

// Exact implements Counter.
func (c *Exact) Exact() int64 { return c.total }

// ExactThreshold returns the count below which the randomized counter runs in
// exact mode: while C < √k/ε the report probability p = min(1, √k/(εC)) is 1,
// so every increment is forwarded and the coordinator is exact.
func ExactThreshold(k int, eps float64) int64 {
	t := math.Ceil(math.Sqrt(float64(k)) / eps)
	if t < 1 {
		return 1
	}
	return int64(t)
}

// ReportProb returns the per-increment report probability used during a round
// that started with exact global count base: p = min(1, √k/(ε·base)).
func ReportProb(k int, eps float64, base int64) float64 {
	if base <= 0 {
		return 1
	}
	p := math.Sqrt(float64(k)) / (eps * float64(base))
	if p > 1 {
		return 1
	}
	return p
}

func validate(k int, eps float64) error {
	if k < 1 {
		return fmt.Errorf("counter: need at least one site, got %d", k)
	}
	if !(eps > 0) || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return fmt.Errorf("counter: invalid epsilon %v", eps)
	}
	return nil
}

// HYZ is the randomized distributed counter of Lemma 4, exposed as a thin
// one-cell view over a flat Bank (see bank.go for the storage layout; the
// protocol logic lives there once, shared with multi-cell banks).
//
// Protocol: while the count is below ExactThreshold the counter is exact.
// Afterwards, execution is divided into rounds. A round opens with a
// synchronization — every site reports its in-round delta (k messages) and
// the coordinator broadcasts the new report probability p (k messages) —
// after which each site, on each local increment, reports its current
// in-round delta with probability p. The coordinator estimates each
// reporting site's delta as lastReport + (1−p)/p (the expectation of the
// trailing geometric gap), and closes the round when its own in-round
// estimate reaches the round-opening count (the count has doubled), giving
// O(log T) rounds.
//
// The delta parameter of the paper's DistCounter(ε, δ) interface is accepted
// for fidelity but not used: as in the paper's experiments a single instance
// is run, the median-of-O(log 1/δ) amplification being analysis only.
type HYZ struct {
	b *Bank
}

// NewHYZ creates a randomized counter over k sites with error parameter eps,
// tallying messages into metrics and drawing randomness from rng (which may
// be shared across counters; the simulation is single-threaded). The delta
// argument is accepted for interface fidelity with DistCounter(ε, δ) and is
// unused (see type comment).
func NewHYZ(k int, eps, delta float64, metrics *Metrics, rng *bn.RNG) (*HYZ, error) {
	b, err := NewBank(HYZKind, 1, k, eps, delta, metrics, rng)
	if err != nil {
		return nil, err
	}
	return &HYZ{b: b}, nil
}

// Inc implements Counter.
func (c *HYZ) Inc(site int) { c.b.incHYZ(0, site) }

// Estimate implements Counter.
func (c *HYZ) Estimate() float64 { return c.b.Estimate(0) }

// Exact implements Counter.
func (c *HYZ) Exact() int64 { return c.b.total[0] }

// Eps returns the error parameter the counter was configured with.
func (c *HYZ) Eps() float64 { return c.b.eps }

// Deterministic is the classical deterministic threshold counter, kept as an
// ablation baseline against HYZ: within a round opened at exact count base,
// each site reports once every q = max(1, ⌈ε·base/k⌉) local increments, so
// the coordinator's estimate is within ε·base ≤ ε·C of the truth, at a cost
// of O(k/ε) messages per round and O(k/ε · log T) messages overall. Like
// HYZ, it is a one-cell view over a flat Bank.
type Deterministic struct {
	b *Bank
}

// NewDeterministic creates a deterministic counter over k sites with error
// parameter eps.
func NewDeterministic(k int, eps float64, metrics *Metrics) (*Deterministic, error) {
	b, err := NewBank(DeterministicKind, 1, k, eps, 0, metrics, nil)
	if err != nil {
		return nil, err
	}
	return &Deterministic{b: b}, nil
}

// Inc implements Counter.
func (c *Deterministic) Inc(site int) { c.b.incDet(0, site) }

// Estimate implements Counter.
func (c *Deterministic) Estimate() float64 { return c.b.Estimate(0) }

// Exact implements Counter.
func (c *Deterministic) Exact() int64 { return c.b.total[0] }
