// Package counter implements continuously tracked distributed counters in
// the continuous distributed monitoring model: k sites receive increments and
// a coordinator maintains an estimate of the global count at all times.
//
// Three trackers are provided:
//
//   - Exact: every increment is forwarded to the coordinator (the strawman
//     behind EXACTMLE, Lemma 5 of the paper).
//   - HYZ: the randomized counter of Huang, Yi and Zhang (PODS 2012), quoted
//     as Lemma 4: unbiased, Var ≤ (εC)², O(√k/ε · log T) messages.
//   - Deterministic: the classical threshold counter with O(k/ε · log T)
//     messages, kept as an ablation baseline.
//
// The package simulates the protocol in-process: site-side and
// coordinator-side state live in one struct and "messages" are tallied in a
// shared Metrics sink. The live TCP implementation in internal/cluster uses
// the same schedule helpers (ReportProb, ExactThreshold) with real messages.
package counter

import (
	"fmt"
	"math"
	"sync/atomic"

	"distbayes/internal/bn"
)

// Metrics tallies protocol messages. One message is one counter update or
// one synchronization/broadcast unit, matching the accounting used in the
// paper's experiments (Section VI-A).
//
// A Metrics value used as a live sink (passed by pointer to counter
// constructors) is race-safe: counters tally through atomic adds, so one sink
// may be shared by counters living in different lock stripes of a sharded
// tracker. Read a live sink with Snapshot; plain field access is only safe
// once all ingestion has completed (or on Snapshot copies). When embedding a
// live sink inside another struct, place it at a 64-bit-aligned offset
// (e.g. as the first field) so the atomic ops hold on 32-bit platforms.
type Metrics struct {
	// SiteToCoord counts site → coordinator messages (counter updates and
	// round-synchronization reports).
	SiteToCoord int64
	// CoordToSite counts coordinator → site messages (round-parameter
	// broadcasts).
	CoordToSite int64
}

// Total returns all messages in both directions.
func (m Metrics) Total() int64 { return m.SiteToCoord + m.CoordToSite }

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.SiteToCoord += other.SiteToCoord
	m.CoordToSite += other.CoordToSite
}

// AddSiteToCoord atomically tallies n site → coordinator messages.
func (m *Metrics) AddSiteToCoord(n int64) { atomic.AddInt64(&m.SiteToCoord, n) }

// AddCoordToSite atomically tallies n coordinator → site messages.
func (m *Metrics) AddCoordToSite(n int64) { atomic.AddInt64(&m.CoordToSite, n) }

// Snapshot returns a race-free copy of the tallies, safe to call while other
// goroutines are still incrementing counters that write to m. The two fields
// are loaded independently, so a snapshot taken mid-update (e.g. between a
// round's report and broadcast tallies) need not satisfy cross-field
// invariants; quiesce ingestion for an exact pair.
func (m *Metrics) Snapshot() Metrics {
	return Metrics{
		SiteToCoord: atomic.LoadInt64(&m.SiteToCoord),
		CoordToSite: atomic.LoadInt64(&m.CoordToSite),
	}
}

// Store atomically overwrites the tallies with those of other.
func (m *Metrics) Store(other Metrics) {
	atomic.StoreInt64(&m.SiteToCoord, other.SiteToCoord)
	atomic.StoreInt64(&m.CoordToSite, other.CoordToSite)
}

// Counter is a continuously tracked distributed counter.
type Counter interface {
	// Inc records one increment observed at the given site.
	Inc(site int)
	// Estimate returns the coordinator's current estimate of the count.
	Estimate() float64
	// Exact returns the true count (evaluation only; a real coordinator
	// would not have access to it for approximate trackers).
	Exact() int64
}

// Exact is the strawman counter: the coordinator is informed of every
// increment, costing one message per increment.
type Exact struct {
	metrics *Metrics
	total   int64
}

// NewExact creates an exact counter that tallies messages into metrics.
func NewExact(metrics *Metrics) *Exact {
	return &Exact{metrics: metrics}
}

// Inc implements Counter.
func (c *Exact) Inc(site int) {
	_ = site
	c.total++
	c.metrics.AddSiteToCoord(1)
}

// Estimate implements Counter; it is always the exact value.
func (c *Exact) Estimate() float64 { return float64(c.total) }

// Exact implements Counter.
func (c *Exact) Exact() int64 { return c.total }

// ExactThreshold returns the count below which the randomized counter runs in
// exact mode: while C < √k/ε the report probability p = min(1, √k/(εC)) is 1,
// so every increment is forwarded and the coordinator is exact.
func ExactThreshold(k int, eps float64) int64 {
	t := math.Ceil(math.Sqrt(float64(k)) / eps)
	if t < 1 {
		return 1
	}
	return int64(t)
}

// ReportProb returns the per-increment report probability used during a round
// that started with exact global count base: p = min(1, √k/(ε·base)).
func ReportProb(k int, eps float64, base int64) float64 {
	if base <= 0 {
		return 1
	}
	p := math.Sqrt(float64(k)) / (eps * float64(base))
	if p > 1 {
		return 1
	}
	return p
}

func validate(k int, eps float64) error {
	if k < 1 {
		return fmt.Errorf("counter: need at least one site, got %d", k)
	}
	if !(eps > 0) || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return fmt.Errorf("counter: invalid epsilon %v", eps)
	}
	return nil
}

// HYZ is the randomized distributed counter of Lemma 4.
//
// Protocol: while the count is below ExactThreshold the counter is exact.
// Afterwards, execution is divided into rounds. A round opens with a
// synchronization — every site reports its in-round delta (k messages) and
// the coordinator broadcasts the new report probability p (k messages) —
// after which each site, on each local increment, reports its current
// in-round delta with probability p. The coordinator estimates each
// reporting site's delta as lastReport + (1−p)/p (the expectation of the
// trailing geometric gap), and closes the round when its own in-round
// estimate reaches the round-opening count (the count has doubled), giving
// O(log T) rounds.
//
// The delta parameter of the paper's DistCounter(ε, δ) interface is accepted
// for fidelity but not used: as in the paper's experiments a single instance
// is run, the median-of-O(log 1/δ) amplification being analysis only.
type HYZ struct {
	eps     float64
	k       int
	metrics *Metrics
	rng     *bn.RNG

	total int64 // true global count (all modes)

	sampling bool  // false while in exact mode
	base     int64 // exact count at round start
	p        float64
	pThresh  uint64  // report if rng.Uint64() < pThresh
	adj      float64 // (1-p)/p

	d          []int64 // site state: in-round local increments
	r          []int64 // coordinator state: last reported in-round delta
	estSum     int64   // Σ r[i]
	nReporters int     // number of sites with r[i] > 0
}

// NewHYZ creates a randomized counter over k sites with error parameter eps,
// tallying messages into metrics and drawing randomness from rng (which may
// be shared across counters; the simulation is single-threaded). The delta
// argument is accepted for interface fidelity with DistCounter(ε, δ) and is
// unused (see type comment).
func NewHYZ(k int, eps, delta float64, metrics *Metrics, rng *bn.RNG) (*HYZ, error) {
	if err := validate(k, eps); err != nil {
		return nil, err
	}
	_ = delta
	return &HYZ{
		eps:     eps,
		k:       k,
		metrics: metrics,
		rng:     rng,
		d:       make([]int64, k),
		r:       make([]int64, k),
	}, nil
}

// Inc implements Counter.
func (c *HYZ) Inc(site int) {
	c.total++
	if !c.sampling {
		// Exact mode: forward every increment.
		c.metrics.AddSiteToCoord(1)
		if c.total >= ExactThreshold(c.k, c.eps) {
			c.openRound()
		}
		return
	}
	c.d[site]++
	if c.rng.Uint64() < c.pThresh {
		c.report(site)
	}
}

// report delivers site's current in-round delta to the coordinator and
// advances the round if the in-round estimate shows the count has doubled.
func (c *HYZ) report(site int) {
	c.metrics.AddSiteToCoord(1)
	if c.r[site] == 0 {
		c.nReporters++
	}
	c.estSum += c.d[site] - c.r[site]
	c.r[site] = c.d[site]
	if c.inRoundEstimate() >= float64(c.base) {
		c.openRound()
	}
}

// openRound synchronizes all sites (k reports + k broadcasts) and resets the
// in-round state with a new report probability.
func (c *HYZ) openRound() {
	if c.sampling {
		// Synchronization traffic; the very first transition out of exact
		// mode needs only the broadcast because the coordinator is already
		// exact, but we charge the general cost there too for simplicity of
		// the cluster protocol (it re-polls all sites).
		c.metrics.AddSiteToCoord(int64(c.k))
	} else {
		c.sampling = true
		c.metrics.AddSiteToCoord(int64(c.k))
	}
	c.metrics.AddCoordToSite(int64(c.k))

	c.base = c.total
	c.p = ReportProb(c.k, c.eps, c.base)
	if c.p >= 1 {
		c.pThresh = math.MaxUint64
		c.adj = 0
	} else {
		c.pThresh = uint64(c.p * math.MaxUint64)
		c.adj = (1 - c.p) / c.p
	}
	for i := range c.d {
		c.d[i] = 0
		c.r[i] = 0
	}
	c.estSum = 0
	c.nReporters = 0
}

// inRoundEstimate is the coordinator's estimate of increments since the round
// opened.
func (c *HYZ) inRoundEstimate() float64 {
	return float64(c.estSum) + float64(c.nReporters)*c.adj
}

// Estimate implements Counter.
func (c *HYZ) Estimate() float64 {
	if !c.sampling {
		return float64(c.total)
	}
	return float64(c.base) + c.inRoundEstimate()
}

// Exact implements Counter.
func (c *HYZ) Exact() int64 { return c.total }

// Eps returns the error parameter the counter was configured with.
func (c *HYZ) Eps() float64 { return c.eps }

// Deterministic is the classical deterministic threshold counter, kept as an
// ablation baseline against HYZ: within a round opened at exact count base,
// each site reports once every q = max(1, ⌈ε·base/k⌉) local increments, so
// the coordinator's estimate is within ε·base ≤ ε·C of the truth, at a cost
// of O(k/ε) messages per round and O(k/ε · log T) messages overall.
type Deterministic struct {
	eps     float64
	k       int
	metrics *Metrics

	total    int64
	sampling bool
	base     int64
	quantum  int64

	pending  []int64 // site state: unreported increments
	reported int64   // coordinator state: in-round reported count
}

// NewDeterministic creates a deterministic counter over k sites with error
// parameter eps.
func NewDeterministic(k int, eps float64, metrics *Metrics) (*Deterministic, error) {
	if err := validate(k, eps); err != nil {
		return nil, err
	}
	return &Deterministic{
		eps:     eps,
		k:       k,
		metrics: metrics,
		pending: make([]int64, k),
	}, nil
}

// Inc implements Counter.
func (c *Deterministic) Inc(site int) {
	c.total++
	if !c.sampling {
		c.metrics.AddSiteToCoord(1)
		// Exact until a quantum of at least 2 is worthwhile.
		if q := int64(math.Ceil(c.eps * float64(c.total) / float64(c.k))); q >= 2 {
			c.openRound()
		}
		return
	}
	c.pending[site]++
	if c.pending[site] >= c.quantum {
		c.metrics.AddSiteToCoord(1)
		c.reported += c.pending[site]
		c.pending[site] = 0
		if c.reported >= c.base {
			c.openRound()
		}
	}
}

func (c *Deterministic) openRound() {
	c.sampling = true
	c.metrics.AddSiteToCoord(int64(c.k))
	c.metrics.AddCoordToSite(int64(c.k))
	c.base = c.total
	c.quantum = int64(math.Ceil(c.eps * float64(c.base) / float64(c.k)))
	if c.quantum < 1 {
		c.quantum = 1
	}
	for i := range c.pending {
		c.pending[i] = 0
	}
	c.reported = 0
}

// Estimate implements Counter.
func (c *Deterministic) Estimate() float64 {
	if !c.sampling {
		return float64(c.total)
	}
	return float64(c.base + c.reported)
}

// Exact implements Counter.
func (c *Deterministic) Exact() int64 { return c.total }
