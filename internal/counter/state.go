package counter

import (
	"encoding"
	"encoding/binary"
	"fmt"
)

// This file implements binary state snapshots for the counters and counter
// banks, used by core.Tracker.SaveState/LoadState to checkpoint and restore
// a coordinator without replaying the stream. Only dynamic state is
// serialized; the configuration (k, ε, metrics sink, RNG) stays with the
// receiving object, which must have been constructed identically. Derived
// round parameters (pThresh/adj, quantum) are recomputed from the restored
// round base, exactly as the constructors would.

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Exact) MarshalBinary() ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(c.total))
	return b[:], nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Exact) UnmarshalBinary(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("counter: exact state length %d, want 8", len(data))
	}
	c.total = int64(binary.LittleEndian.Uint64(data))
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the historical
// single-counter wire format, read off the view's bank cell.
func (c *HYZ) MarshalBinary() ([]byte, error) {
	b := c.b
	buf := make([]byte, 0, 8*(5+2*b.k)+1)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	if b.sampling[0] {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	put(uint64(b.total[0]))
	put(uint64(b.base[0]))
	put(uint64(b.estSum[0]))
	put(uint64(b.nReporters[0]))
	put(uint64(b.k))
	for i := 0; i < b.k; i++ {
		put(uint64(b.d[i]))
		put(uint64(b.r[i]))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver must
// have been constructed with the same number of sites as the snapshot.
func (c *HYZ) UnmarshalBinary(data []byte) error {
	if len(data) < 1+5*8 {
		return fmt.Errorf("counter: hyz state too short (%d bytes)", len(data))
	}
	b := c.b
	sampling := data[0] == 1
	data = data[1:]
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v
	}
	total := int64(get())
	base := int64(get())
	estSum := int64(get())
	nReporters := int32(get())
	k := int(get())
	if k != b.k {
		return fmt.Errorf("counter: hyz state has %d sites, counter has %d", k, b.k)
	}
	if len(data) != 16*k {
		return fmt.Errorf("counter: hyz state site section %d bytes, want %d", len(data), 16*k)
	}
	b.sampling[0] = sampling
	b.total[0] = total
	b.base[0] = base
	b.estSum[0] = estSum
	b.nReporters[0] = nReporters
	for i := 0; i < k; i++ {
		b.d[i] = int64(get())
		b.r[i] = int64(get())
	}
	// Recompute the derived round parameters from base.
	if sampling {
		b.setRoundParams(0, ReportProb(b.k, b.eps, b.base[0]))
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Deterministic) MarshalBinary() ([]byte, error) {
	b := c.b
	buf := make([]byte, 0, 8*(4+b.k)+1)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	if b.sampling[0] {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	put(uint64(b.total[0]))
	put(uint64(b.base[0]))
	put(uint64(b.reported[0]))
	put(uint64(b.k))
	for i := 0; i < b.k; i++ {
		put(uint64(b.pending[i]))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Deterministic) UnmarshalBinary(data []byte) error {
	if len(data) < 1+4*8 {
		return fmt.Errorf("counter: deterministic state too short (%d bytes)", len(data))
	}
	b := c.b
	sampling := data[0] == 1
	data = data[1:]
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v
	}
	total := int64(get())
	base := int64(get())
	reported := int64(get())
	k := int(get())
	if k != b.k {
		return fmt.Errorf("counter: deterministic state has %d sites, counter has %d", k, b.k)
	}
	if len(data) != 8*k {
		return fmt.Errorf("counter: deterministic site section %d bytes, want %d", len(data), 8*k)
	}
	b.sampling[0] = sampling
	b.total[0] = total
	b.base[0] = base
	b.reported[0] = reported
	for i := 0; i < k; i++ {
		b.pending[i] = int64(get())
	}
	b.quantum[0] = 0
	if sampling {
		b.restoreQuantum(0)
	}
	return nil
}

// restoreQuantum recomputes the deterministic round quantum from the
// restored base, matching openRoundDet without spending messages.
func (b *Bank) restoreQuantum(cell int) {
	q := b.eps * float64(b.base[cell]) / float64(b.k)
	b.quantum[cell] = int64(q)
	if float64(b.quantum[cell]) < q {
		b.quantum[cell]++
	}
	if b.quantum[cell] < 1 {
		b.quantum[cell] = 1
	}
}

// --- whole-bank snapshots (the DBAYES03 checkpoint unit) ---

// bankStateVersion guards the bank wire format.
const bankStateVersion = 1

// StateLen returns the exact length in bytes of the bank's MarshalBinary
// output, or -1 when it is not statically known (custom banks, whose cells
// serialize through their own marshalers). Checkpoint readers use it to
// reject corrupt record lengths before allocating (core.Tracker.LoadState).
func (b *Bank) StateLen() int {
	const header = 2 + 8 + 8 // version+kind, cells, k
	switch b.kind {
	case ExactKind:
		return header + 8*b.cells
	case HYZKind:
		// total, sampling (1 byte/cell), base, estSum, nReporters, d, r.
		return header + b.cells*(8+1+8+8+8) + 16*b.cells*b.k
	case DeterministicKind:
		// total, sampling (1 byte/cell), base, reported, pending.
		return header + b.cells*(8+1+8+8) + 8*b.cells*b.k
	default:
		return -1
	}
}

// MarshalBinary implements encoding.BinaryMarshaler for a whole bank: one
// record covering every cell, replacing the per-cell records of the DBAYES02
// checkpoint format. Custom banks serialize each cell through its own
// BinaryMarshaler (cells that do not implement it make the bank
// uncheckpointable, as before).
func (b *Bank) MarshalBinary() ([]byte, error) {
	var tmp [8]byte
	buf := make([]byte, 0, 4+8*(2+b.cells))
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	buf = append(buf, bankStateVersion, byte(b.kind))
	put(uint64(b.cells))
	put(uint64(b.k))
	putSlice := func(s []int64) {
		for _, v := range s {
			put(uint64(v))
		}
	}
	switch b.kind {
	case ExactKind:
		putSlice(b.total)
	case HYZKind:
		putSlice(b.total)
		for _, s := range b.sampling {
			if s {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
		putSlice(b.base)
		putSlice(b.estSum)
		for _, n := range b.nReporters {
			put(uint64(n))
		}
		putSlice(b.d)
		putSlice(b.r)
	case DeterministicKind:
		putSlice(b.total)
		for _, s := range b.sampling {
			if s {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
		putSlice(b.base)
		putSlice(b.reported)
		putSlice(b.pending)
	case customKind:
		for cell, c := range b.custom {
			m, ok := c.(encoding.BinaryMarshaler)
			if !ok {
				return nil, fmt.Errorf("counter: custom bank cell %d (%T) does not support checkpointing", cell, c)
			}
			data, err := m.MarshalBinary()
			if err != nil {
				return nil, err
			}
			put(uint64(len(data)))
			buf = append(buf, data...)
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver must
// have been constructed with the same kind, cell count and site count.
func (b *Bank) UnmarshalBinary(data []byte) error {
	if len(data) < 2+16 {
		return fmt.Errorf("counter: bank state too short (%d bytes)", len(data))
	}
	if data[0] != bankStateVersion {
		return fmt.Errorf("counter: bank state version %d, want %d", data[0], bankStateVersion)
	}
	if Kind(data[1]) != b.kind {
		return fmt.Errorf("counter: bank state kind %d, bank has %d", data[1], b.kind)
	}
	data = data[2:]
	ok := true
	get := func() uint64 {
		if len(data) < 8 {
			ok = false
			return 0
		}
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v
	}
	if cells := int(get()); cells != b.cells {
		return fmt.Errorf("counter: bank state has %d cells, bank has %d", cells, b.cells)
	}
	if k := int(get()); k != b.k {
		return fmt.Errorf("counter: bank state has %d sites, bank has %d", k, b.k)
	}
	getSlice := func(s []int64) {
		for i := range s {
			s[i] = int64(get())
		}
	}
	getBools := func(s []bool) {
		if len(data) < len(s) {
			ok = false
			return
		}
		for i := range s {
			s[i] = data[i] == 1
		}
		data = data[len(s):]
	}
	switch b.kind {
	case ExactKind:
		getSlice(b.total)
	case HYZKind:
		getSlice(b.total)
		getBools(b.sampling)
		getSlice(b.base)
		getSlice(b.estSum)
		for i := range b.nReporters {
			b.nReporters[i] = int32(get())
		}
		getSlice(b.d)
		getSlice(b.r)
		if ok {
			for cell := 0; cell < b.cells; cell++ {
				if b.sampling[cell] {
					b.setRoundParams(cell, ReportProb(b.k, b.eps, b.base[cell]))
				} else {
					b.pThresh[cell] = 0
					b.adj[cell] = 0
				}
			}
		}
	case DeterministicKind:
		getSlice(b.total)
		getBools(b.sampling)
		getSlice(b.base)
		getSlice(b.reported)
		getSlice(b.pending)
		if ok {
			for cell := 0; cell < b.cells; cell++ {
				b.quantum[cell] = 0
				if b.sampling[cell] {
					b.restoreQuantum(cell)
				}
			}
		}
	case customKind:
		for cell, c := range b.custom {
			u, uok := c.(encoding.BinaryUnmarshaler)
			if !uok {
				return fmt.Errorf("counter: custom bank cell %d (%T) does not support checkpointing", cell, c)
			}
			n := int(get())
			if !ok || n < 0 || n > len(data) {
				return fmt.Errorf("counter: bank state truncated at custom cell %d", cell)
			}
			if err := u.UnmarshalBinary(data[:n]); err != nil {
				return err
			}
			data = data[n:]
		}
	}
	if !ok {
		return fmt.Errorf("counter: bank state truncated")
	}
	if len(data) != 0 {
		return fmt.Errorf("counter: bank state has %d trailing bytes", len(data))
	}
	return nil
}
