package counter

import (
	"encoding/binary"
	"fmt"
)

// This file implements binary state snapshots for the counters, used by
// core.Tracker.SaveState/LoadState to checkpoint and restore a coordinator
// without replaying the stream. Only dynamic state is serialized; the
// configuration (k, ε, metrics sink, RNG) stays with the receiving object,
// which must have been constructed identically.

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Exact) MarshalBinary() ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(c.total))
	return b[:], nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Exact) UnmarshalBinary(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("counter: exact state length %d, want 8", len(data))
	}
	c.total = int64(binary.LittleEndian.Uint64(data))
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *HYZ) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8*(5+2*len(c.d))+1)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	if c.sampling {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	put(uint64(c.total))
	put(uint64(c.base))
	put(uint64(c.estSum))
	put(uint64(c.nReporters))
	put(uint64(len(c.d)))
	for i := range c.d {
		put(uint64(c.d[i]))
		put(uint64(c.r[i]))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver must
// have been constructed with the same number of sites as the snapshot.
func (c *HYZ) UnmarshalBinary(data []byte) error {
	if len(data) < 1+5*8 {
		return fmt.Errorf("counter: hyz state too short (%d bytes)", len(data))
	}
	sampling := data[0] == 1
	data = data[1:]
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v
	}
	total := int64(get())
	base := int64(get())
	estSum := int64(get())
	nReporters := int(get())
	k := int(get())
	if k != len(c.d) {
		return fmt.Errorf("counter: hyz state has %d sites, counter has %d", k, len(c.d))
	}
	if len(data) != 16*k {
		return fmt.Errorf("counter: hyz state site section %d bytes, want %d", len(data), 16*k)
	}
	c.sampling = sampling
	c.total = total
	c.base = base
	c.estSum = estSum
	c.nReporters = nReporters
	for i := 0; i < k; i++ {
		c.d[i] = int64(get())
		c.r[i] = int64(get())
	}
	// Recompute the derived round parameters from base.
	if c.sampling {
		c.p = ReportProb(c.k, c.eps, c.base)
		if c.p >= 1 {
			c.pThresh = ^uint64(0)
			c.adj = 0
		} else {
			c.pThresh = uint64(c.p * float64(^uint64(0)))
			c.adj = (1 - c.p) / c.p
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Deterministic) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8*(4+len(c.pending))+1)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	if c.sampling {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	put(uint64(c.total))
	put(uint64(c.base))
	put(uint64(c.reported))
	put(uint64(len(c.pending)))
	for _, p := range c.pending {
		put(uint64(p))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Deterministic) UnmarshalBinary(data []byte) error {
	if len(data) < 1+4*8 {
		return fmt.Errorf("counter: deterministic state too short (%d bytes)", len(data))
	}
	sampling := data[0] == 1
	data = data[1:]
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v
	}
	total := int64(get())
	base := int64(get())
	reported := int64(get())
	k := int(get())
	if k != len(c.pending) {
		return fmt.Errorf("counter: deterministic state has %d sites, counter has %d", k, len(c.pending))
	}
	if len(data) != 8*k {
		return fmt.Errorf("counter: deterministic site section %d bytes, want %d", len(data), 8*k)
	}
	c.sampling = sampling
	c.total = total
	c.base = base
	c.reported = reported
	for i := 0; i < k; i++ {
		c.pending[i] = int64(get())
	}
	c.quantum = 0
	if c.sampling {
		q := c.eps * float64(c.base) / float64(c.k)
		c.quantum = int64(q)
		if float64(c.quantum) < q {
			c.quantum++
		}
		if c.quantum < 1 {
			c.quantum = 1
		}
	}
	return nil
}
