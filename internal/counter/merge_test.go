package counter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distbayes/internal/bn"
)

// mergeSpec is a testing/quick-generated Merge workload: a random increment
// stream over a small bank, cut into a random number of delta partitions.
type mergeSpec struct {
	Cells, K, N, Parts int
	Eps                float64
	Seed               uint64
}

func (s mergeSpec) normalize() mergeSpec {
	s.Cells = 1 + abs(s.Cells)%6
	s.K = 1 + abs(s.K)%8
	s.N = 200 + abs(s.N)%8000
	s.Parts = 1 + abs(s.Parts)%7
	epsChoices := []float64{0.05, 0.1, 0.25}
	idx := math.Mod(math.Abs(s.Eps)*1e6, float64(len(epsChoices)))
	if math.IsNaN(idx) {
		idx = 0
	}
	s.Eps = epsChoices[int(idx)]
	return s
}

// TestQuickMergePartitionEquivalence is the Merge partition property: for
// any increment stream and any partition of it into delta buffers, merging
// the parts one after another yields the same exact count in every cell as
// ingesting the whole stream through Inc — increments commute, buffering
// only delays them. For the exact kind (no protocol state) the estimates
// and message tallies must match too.
func TestQuickMergePartitionEquivalence(t *testing.T) {
	for _, tc := range bankKinds {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(raw mergeSpec) bool {
				s := raw.normalize()
				eps := tc.eps
				if tc.kind != ExactKind {
					eps = s.Eps
				}
				var mInc, mMerge Metrics
				inc, err := NewBank(tc.kind, s.Cells, s.K, eps, 0.25, &mInc, bn.NewRNG(s.Seed))
				if err != nil {
					return false
				}
				merged, err := NewBank(tc.kind, s.Cells, s.K, eps, 0.25, &mMerge, bn.NewRNG(s.Seed))
				if err != nil {
					return false
				}
				// Deal the stream into Parts delta buffers while Inc-ing the
				// reference bank, then merge the parts in order.
				deltas := make([][]int64, s.Parts)
				for p := range deltas {
					deltas[p] = make([]int64, s.Cells*s.K)
				}
				sched := bn.NewRNG(s.Seed ^ 0x5eed)
				for i := 0; i < s.N; i++ {
					cell, site := sched.Intn(s.Cells), sched.Intn(s.K)
					inc.Inc(cell, site)
					deltas[sched.Intn(s.Parts)][cell*s.K+site]++
				}
				for _, d := range deltas {
					merged.Merge(d)
				}
				for c := 0; c < s.Cells; c++ {
					if merged.Exact(c) != inc.Exact(c) {
						return false
					}
					if tc.kind == ExactKind && merged.Estimate(c) != inc.Estimate(c) {
						return false
					}
				}
				if tc.kind == ExactKind && mMerge.Snapshot() != mInc.Snapshot() {
					return false
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(20260729))}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMergeMatchesRunOrderedReplay pins Merge's bulk fast paths to the
// per-increment protocol: a merge applies each (cell, site) run back to
// back, in ascending cell then site order, so Inc-ing the same runs in that
// order against a twin bank sharing the RNG seed must be bit-identical —
// estimates, exact counts, round state and message tallies.
func TestMergeMatchesRunOrderedReplay(t *testing.T) {
	const cells, k = 4, 5
	for _, tc := range bankKinds {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var mRef, mMerge Metrics
			ref, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &mRef, bn.NewRNG(11))
			if err != nil {
				t.Fatal(err)
			}
			bank, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &mMerge, bn.NewRNG(11))
			if err != nil {
				t.Fatal(err)
			}
			sched := bn.NewRNG(13)
			for round := 0; round < 40; round++ {
				delta := make([]int64, cells*k)
				for i := 0; i < 400; i++ {
					delta[sched.Intn(cells*k)]++
				}
				// Replay the runs in Merge's documented order on the twin.
				for cell := 0; cell < cells; cell++ {
					for site := 0; site < k; site++ {
						for c := delta[cell*k+site]; c > 0; c-- {
							ref.Inc(cell, site)
						}
					}
				}
				bank.Merge(delta)
				for c := 0; c < cells; c++ {
					if bank.Exact(c) != ref.Exact(c) {
						t.Fatalf("round %d cell %d: exact %d, want %d", round, c, bank.Exact(c), ref.Exact(c))
					}
					if bank.Estimate(c) != ref.Estimate(c) {
						t.Fatalf("round %d cell %d: estimate %v, want %v (bulk fast path diverged from per-increment replay)",
							round, c, bank.Estimate(c), ref.Estimate(c))
					}
				}
				if mMerge.Snapshot() != mRef.Snapshot() {
					t.Fatalf("round %d: messages %+v, want %+v", round, mMerge.Snapshot(), mRef.Snapshot())
				}
			}
		})
	}
}

// TestMergeCellMatchesMerge pins the sparse flush path to the dense one:
// walking a delta's touched cells in ascending order through MergeCell must
// be bit-identical to one Merge of the whole delta — same estimates, same
// exact counts, same RNG consumption, same message tallies — because Merge
// itself visits cells ascending and skips untouched rows.
func TestMergeCellMatchesMerge(t *testing.T) {
	const cells, k = 5, 4
	for _, tc := range bankKinds {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var mDense, mSparse Metrics
			dense, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &mDense, bn.NewRNG(29))
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &mSparse, bn.NewRNG(29))
			if err != nil {
				t.Fatal(err)
			}
			sched := bn.NewRNG(31)
			for round := 0; round < 40; round++ {
				delta := make([]int64, cells*k)
				// Touch only a subset of cells so the sparse walk genuinely
				// skips some.
				for i := 0; i < 300; i++ {
					cell := sched.Intn(cells-1) + round%2 // leaves one cell untouched
					delta[cell*k+sched.Intn(k)]++
				}
				dense.Merge(delta)
				for cell := 0; cell < cells; cell++ {
					row := delta[cell*k : (cell+1)*k]
					touched := false
					for _, c := range row {
						if c != 0 {
							touched = true
							break
						}
					}
					if touched {
						sparse.MergeCell(cell, row)
					}
				}
				for c := 0; c < cells; c++ {
					if sparse.Exact(c) != dense.Exact(c) || sparse.Estimate(c) != dense.Estimate(c) {
						t.Fatalf("round %d cell %d: sparse (%d, %v) != dense (%d, %v)",
							round, c, sparse.Exact(c), sparse.Estimate(c), dense.Exact(c), dense.Estimate(c))
					}
				}
				if mSparse.Snapshot() != mDense.Snapshot() {
					t.Fatalf("round %d: messages %+v, want %+v", round, mSparse.Snapshot(), mDense.Snapshot())
				}
			}
		})
	}
}

// TestMergeCellCustomAndPanics: custom banks replay MergeCell per increment
// with the stride taken from the row; flat banks panic on a wrong row length.
func TestMergeCellCustomAndPanics(t *testing.T) {
	var m Metrics
	cb, err := NewCustomBank(2, func(int) (Counter, error) { return NewExact(&m), nil })
	if err != nil {
		t.Fatal(err)
	}
	cb.MergeCell(1, []int64{2, 0, 3})
	if cb.Exact(0) != 0 || cb.Exact(1) != 5 {
		t.Fatalf("custom MergeCell totals = %d,%d", cb.Exact(0), cb.Exact(1))
	}
	b, err := NewBank(ExactKind, 3, 4, 0, 0, &m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("short MergeCell row did not panic")
		}
	}()
	b.MergeCell(0, make([]int64, 2))
}

// TestMergeCustomBankReplaysInc: custom banks replay merges through the
// cells' own Inc, deriving the site stride from the delta length.
func TestMergeCustomBank(t *testing.T) {
	const cells, k = 3, 4
	var m Metrics
	b, err := NewCustomBank(cells, func(int) (Counter, error) { return NewExact(&m), nil })
	if err != nil {
		t.Fatal(err)
	}
	delta := make([]int64, cells*k)
	delta[0*k+1] = 5
	delta[2*k+3] = 7
	b.Merge(delta)
	if b.Exact(0) != 5 || b.Exact(1) != 0 || b.Exact(2) != 7 {
		t.Fatalf("custom merge totals = %d,%d,%d", b.Exact(0), b.Exact(1), b.Exact(2))
	}
	if got := m.Snapshot().SiteToCoord; got != 12 {
		t.Fatalf("custom merge messages = %d, want 12", got)
	}
}

// TestMergeLengthPanics: a delta of the wrong shape must panic like a slice
// misuse rather than corrupt counts.
func TestMergeLengthPanics(t *testing.T) {
	var m Metrics
	b, err := NewBank(ExactKind, 3, 4, 0, 0, &m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("short delta did not panic")
		}
	}()
	b.Merge(make([]int64, 5))
}
