package counter

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"distbayes/internal/bn"
)

// FuzzBankIncEstimate drives every built-in bank kind with an arbitrary
// Inc(cell, site) schedule decoded from the fuzz input — each byte pair is
// one increment — against a naive map-based reference, checking after every
// increment batch that
//
//   - Exact() matches the reference count in every cell for every kind
//     (approximation may delay reporting but never lose increments),
//   - the exact kind's Estimate equals the reference exactly,
//   - the deterministic kind's Estimate honors its hard ε·C + k bound,
//   - the randomized kind's Estimate is finite and non-negative,
//
// and, at the end of the schedule, that folding the same increments through
// Merge (the delta-buffered ingestion path) reproduces the same exact
// counts.
func FuzzBankIncEstimate(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(seedSchedule(777, 400))
	f.Add(seedSchedule(12345, 4000))

	const cells, k = 4, 5
	const eps = 0.1
	f.Fuzz(func(t *testing.T, data []byte) {
		var mh, md, me, mm Metrics
		hyz, err := NewBank(HYZKind, cells, k, eps, 0.25, &mh, bn.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewBank(DeterministicKind, cells, k, eps, 0, &md, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewBank(ExactKind, cells, k, 0, 0, &me, nil)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := NewBank(HYZKind, cells, k, eps, 0.25, &mm, bn.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}

		ref := map[int]int64{}
		delta := make([]int64, cells*k)
		check := func() {
			for c := 0; c < cells; c++ {
				n := ref[c]
				if hyz.Exact(c) != n || det.Exact(c) != n || exact.Exact(c) != n {
					t.Fatalf("cell %d: exact %d/%d/%d, want %d",
						c, hyz.Exact(c), det.Exact(c), exact.Exact(c), n)
				}
				if e := exact.Estimate(c); e != float64(n) {
					t.Fatalf("cell %d: exact-kind estimate %v, want %d", c, e, n)
				}
				if e := det.Estimate(c); math.Abs(e-float64(n)) > eps*float64(n)+k {
					t.Fatalf("cell %d: deterministic estimate %v strays past bound from %d", c, e, n)
				}
				if e := hyz.Estimate(c); math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
					t.Fatalf("cell %d: randomized estimate %v", c, e)
				}
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			cell, site := int(data[i])%cells, int(data[i+1])%k
			hyz.Inc(cell, site)
			det.Inc(cell, site)
			exact.Inc(cell, site)
			ref[cell]++
			delta[cell*k+site]++
			if i%64 == 0 {
				check()
			}
		}
		check()
		merged.Merge(delta)
		for c := 0; c < cells; c++ {
			if merged.Exact(c) != ref[c] {
				t.Fatalf("cell %d: merged exact %d, want %d", c, merged.Exact(c), ref[c])
			}
		}
	})
}

// seedSchedule builds a deterministic pseudo-random increment schedule for
// the seed corpus.
func seedSchedule(seed uint64, n int) []byte {
	rng := bn.NewRNG(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Uint64())
	}
	return out
}

// TestWriteFuzzBankCorpus regenerates the committed seed corpus under
// testdata/fuzz when DISTBAYES_WRITE_FUZZ_CORPUS is set; normally it only
// verifies the corpus directory exists.
func TestWriteFuzzBankCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzBankIncEstimate")
	if os.Getenv("DISTBAYES_WRITE_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing: %v (regenerate with DISTBAYES_WRITE_FUZZ_CORPUS=1)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"empty":     {},
		"short":     {3, 1},
		"schedule1": seedSchedule(777, 400),
		"schedule2": seedSchedule(12345, 4000),
	} {
		if err := writeFuzzCorpusFile(filepath.Join(dir, name), data); err != nil {
			t.Fatal(err)
		}
	}
}

// writeFuzzCorpusFile writes one []byte seed in the `go test fuzz v1`
// corpus encoding.
func writeFuzzCorpusFile(path string, data []byte) error {
	return os.WriteFile(path, []byte("go test fuzz v1\n[]byte("+strconv.Quote(string(data))+")\n"), 0o644)
}
