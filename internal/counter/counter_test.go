package counter

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"distbayes/internal/bn"
)

func TestExactCounter(t *testing.T) {
	var m Metrics
	c := NewExact(&m)
	for i := 0; i < 1000; i++ {
		c.Inc(i % 7)
	}
	if c.Exact() != 1000 {
		t.Errorf("Exact = %d, want 1000", c.Exact())
	}
	if c.Estimate() != 1000 {
		t.Errorf("Estimate = %v, want 1000", c.Estimate())
	}
	if m.SiteToCoord != 1000 || m.CoordToSite != 0 {
		t.Errorf("metrics = %+v, want 1000 up / 0 down", m)
	}
}

func TestValidation(t *testing.T) {
	var m Metrics
	rng := bn.NewRNG(1)
	if _, err := NewHYZ(0, 0.1, 0.1, &m, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewHYZ(4, 0, 0.1, &m, rng); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewHYZ(4, math.NaN(), 0.1, &m, rng); err == nil {
		t.Error("eps=NaN accepted")
	}
	if _, err := NewDeterministic(0, 0.1, &m); err == nil {
		t.Error("deterministic k=0 accepted")
	}
	if _, err := NewDeterministic(4, -1, &m); err == nil {
		t.Error("deterministic eps<0 accepted")
	}
}

func TestScheduleHelpers(t *testing.T) {
	if th := ExactThreshold(16, 0.1); th != 40 {
		t.Errorf("ExactThreshold(16, 0.1) = %d, want 40", th)
	}
	if th := ExactThreshold(1, 0.5); th != 2 {
		t.Errorf("ExactThreshold(1, 0.5) = %d, want 2", th)
	}
	if p := ReportProb(16, 0.1, 0); p != 1 {
		t.Errorf("ReportProb(base=0) = %v, want 1", p)
	}
	if p := ReportProb(16, 0.1, 10); p != 1 {
		t.Errorf("ReportProb below threshold = %v, want 1", p)
	}
	want := 4.0 / (0.1 * 4000)
	if p := ReportProb(16, 0.1, 4000); math.Abs(p-want) > 1e-12 {
		t.Errorf("ReportProb = %v, want %v", p, want)
	}
}

func TestHYZExactWhileSmall(t *testing.T) {
	var m Metrics
	rng := bn.NewRNG(2)
	c, err := NewHYZ(9, 0.5, 0.1, &m, rng)
	if err != nil {
		t.Fatal(err)
	}
	th := ExactThreshold(9, 0.5) // 6
	for i := int64(0); i < th-1; i++ {
		c.Inc(int(i % 9))
		if c.Estimate() != float64(c.Exact()) {
			t.Fatalf("estimate %v != exact %d during exact mode", c.Estimate(), c.Exact())
		}
	}
	if m.CoordToSite != 0 {
		t.Errorf("broadcasts before threshold: %d", m.CoordToSite)
	}
}

func TestHYZEstimateAccuracy(t *testing.T) {
	// Drive a single counter to 200k increments over 25 sites and check the
	// relative error along the way stays well within a few epsilon.
	const k, eps, n = 25, 0.05, 200000
	var m Metrics
	rng := bn.NewRNG(3)
	c, err := NewHYZ(k, eps, 0.1, &m, rng)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		c.Inc(rng.Intn(k))
		if i%1000 == 999 {
			rel := math.Abs(c.Estimate()-float64(c.Exact())) / float64(c.Exact())
			if rel > worst {
				worst = rel
			}
		}
	}
	// Chebyshev at Var=(εC)² gives loose tails; 4ε is a generous bound for
	// the worst of 200 snapshots.
	if worst > 4*eps {
		t.Errorf("worst relative error %v > %v", worst, 4*eps)
	}
	if m.SiteToCoord >= n {
		t.Errorf("sampling counter sent %d messages for %d increments; no saving", m.SiteToCoord, n)
	}
}

func TestHYZUnbiasedAndVarianceBound(t *testing.T) {
	// Many independent replications of the same arrival sequence; the final
	// estimate should be nearly unbiased with std dev ≤ eps*C.
	const k, eps = 16, 0.1
	const C = 20000
	const reps = 300
	sum, sumSq := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		var m Metrics
		rng := bn.NewRNG(uint64(1000 + rep))
		c, err := NewHYZ(k, eps, 0.1, &m, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < C; i++ {
			c.Inc(i % k)
		}
		e := c.Estimate()
		sum += e
		sumSq += e * e
	}
	mean := sum / reps
	variance := sumSq/reps - mean*mean
	if math.Abs(mean-C)/C > 0.02 {
		t.Errorf("mean estimate %v deviates from true count %d by more than 2%%", mean, C)
	}
	bound := (eps * C) * (eps * C)
	if variance > 1.5*bound {
		t.Errorf("empirical variance %v exceeds 1.5*(εC)² = %v", variance, 1.5*bound)
	}
}

func TestHYZMessageGrowthLogarithmic(t *testing.T) {
	// Messages after 10x more increments should grow far less than 10x once
	// sampling has kicked in (O(√k/ε · log T) vs O(T)).
	const k, eps = 16, 0.1
	run := func(n int) int64 {
		var m Metrics
		rng := bn.NewRNG(77)
		c, _ := NewHYZ(k, eps, 0.1, &m, rng)
		for i := 0; i < n; i++ {
			c.Inc(i % k)
		}
		return m.Total()
	}
	m1 := run(50000)
	m2 := run(500000)
	if ratio := float64(m2) / float64(m1); ratio > 3 {
		t.Errorf("message ratio for 10x stream = %v, want < 3 (logarithmic growth)", ratio)
	}
	if m2 >= 500000 {
		t.Errorf("sampling counter used %d messages for 500000 increments", m2)
	}
}

func TestHYZSingleSite(t *testing.T) {
	var m Metrics
	rng := bn.NewRNG(5)
	c, err := NewHYZ(1, 0.1, 0.1, &m, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		c.Inc(0)
	}
	rel := math.Abs(c.Estimate()-n) / n
	if rel > 0.3 {
		t.Errorf("single-site relative error %v", rel)
	}
	if m.Total() >= n {
		t.Errorf("no message saving on single site: %d", m.Total())
	}
}

func TestHYZEstimateMonotoneEnough(t *testing.T) {
	// The estimate must never go negative and must be within a factor of the
	// truth at every point after the exact phase (coarse sanity property).
	f := func(seed uint64) bool {
		var m Metrics
		rng := bn.NewRNG(seed)
		c, err := NewHYZ(8, 0.2, 0.1, &m, rng)
		if err != nil {
			return false
		}
		for i := 0; i < 20000; i++ {
			c.Inc(rng.Intn(8))
			e := c.Estimate()
			if e < 0 {
				return false
			}
			if i > 1000 {
				if e < 0.3*float64(c.Exact()) || e > 3*float64(c.Exact()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicCounter(t *testing.T) {
	const k, eps, n = 10, 0.1, 100000
	var m Metrics
	c, err := NewDeterministic(k, eps, &m)
	if err != nil {
		t.Fatal(err)
	}
	rng := bn.NewRNG(6)
	for i := 0; i < n; i++ {
		c.Inc(rng.Intn(k))
		// Deterministic bound: estimate within eps*C + k*quantum of truth;
		// conservative check at 3 eps.
		if diff := math.Abs(c.Estimate() - float64(c.Exact())); diff > 3*eps*float64(c.Exact())+float64(k) {
			t.Fatalf("estimate off by %v at count %d", diff, c.Exact())
		}
	}
	if m.Total() >= n {
		t.Errorf("deterministic counter used %d messages for %d increments", m.Total(), n)
	}
}

func TestDeterministicVsHYZMessageCost(t *testing.T) {
	// With enough sites, HYZ (O(√k/ε)) should beat deterministic (O(k/ε))
	// per round. Use k=64 so √k=8 gives an 8x headroom.
	const k, eps, n = 64, 0.05, 400000
	var mh, md Metrics
	rng := bn.NewRNG(7)
	h, _ := NewHYZ(k, eps, 0.1, &mh, rng)
	d, _ := NewDeterministic(k, eps, &md)
	for i := 0; i < n; i++ {
		s := i % k
		h.Inc(s)
		d.Inc(s)
	}
	if mh.Total() >= md.Total() {
		t.Errorf("HYZ %d messages >= deterministic %d", mh.Total(), md.Total())
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{SiteToCoord: 3, CoordToSite: 2}
	b := Metrics{SiteToCoord: 5, CoordToSite: 7}
	a.Add(b)
	if a.SiteToCoord != 8 || a.CoordToSite != 9 || a.Total() != 17 {
		t.Errorf("Add result %+v", a)
	}
}

func TestHYZSmallEpsilonStaysExactLonger(t *testing.T) {
	// With a very small epsilon (as allocated to rare counters by the
	// tracking algorithms), the counter should remain exact over a short
	// stream: identical estimate, one message per increment.
	var m Metrics
	rng := bn.NewRNG(8)
	c, err := NewHYZ(30, 0.001, 0.1, &m, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1000) // far below √30/0.001 ≈ 5477
	for i := int64(0); i < n; i++ {
		c.Inc(int(i % 30))
	}
	if c.Estimate() != float64(n) {
		t.Errorf("estimate %v, want exact %d", c.Estimate(), n)
	}
	if m.SiteToCoord != n {
		t.Errorf("messages %d, want %d (exact mode)", m.SiteToCoord, n)
	}
}

func TestHYZStateRoundTrip(t *testing.T) {
	// Drive a counter into its sampling phase, snapshot, restore into a
	// fresh counter, and verify both continue identically.
	const k, eps = 8, 0.05
	var m1 Metrics
	rng1 := bn.NewRNG(4242)
	a, err := NewHYZ(k, eps, 0.1, &m1, rng1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		a.Inc(i % k)
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m2 Metrics
	rng2 := bn.NewRNG(1)
	b, err := NewHYZ(k, eps, 0.1, &m2, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if b.Estimate() != a.Estimate() || b.Exact() != a.Exact() {
		t.Fatalf("restored estimate %v/%d, want %v/%d", b.Estimate(), b.Exact(), a.Estimate(), a.Exact())
	}
	// Continue both with the same RNG sequence; they must stay identical.
	rng2.SetState(rng1.State())
	for i := 0; i < 10000; i++ {
		a.Inc(i % k)
		b.Inc(i % k)
		if a.Estimate() != b.Estimate() {
			t.Fatalf("estimates diverged at step %d", i)
		}
	}
}

func TestHYZStateRejectsMismatch(t *testing.T) {
	var m Metrics
	rng := bn.NewRNG(1)
	a, _ := NewHYZ(4, 0.1, 0.1, &m, rng)
	data, _ := a.MarshalBinary()
	wrongK, _ := NewHYZ(5, 0.1, 0.1, &m, rng)
	if err := wrongK.UnmarshalBinary(data); err == nil {
		t.Error("site-count mismatch accepted")
	}
	if err := a.UnmarshalBinary(data[:3]); err == nil {
		t.Error("truncated state accepted")
	}
}

func TestExactAndDeterministicStateRoundTrip(t *testing.T) {
	var m Metrics
	e := NewExact(&m)
	for i := 0; i < 1234; i++ {
		e.Inc(0)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewExact(&m)
	if err := e2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if e2.Exact() != 1234 {
		t.Errorf("exact restore = %d", e2.Exact())
	}
	if err := e2.UnmarshalBinary([]byte{1}); err == nil {
		t.Error("short exact state accepted")
	}

	d, _ := NewDeterministic(6, 0.1, &m)
	for i := 0; i < 50000; i++ {
		d.Inc(i % 6)
	}
	dd, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDeterministic(6, 0.1, &m)
	if err := d2.UnmarshalBinary(dd); err != nil {
		t.Fatal(err)
	}
	if d2.Estimate() != d.Estimate() || d2.Exact() != d.Exact() {
		t.Errorf("deterministic restore mismatch")
	}
	// Continue both identically (deterministic protocol, no RNG).
	for i := 0; i < 10000; i++ {
		d.Inc(i % 6)
		d2.Inc(i % 6)
		if d.Estimate() != d2.Estimate() {
			t.Fatalf("deterministic diverged at %d", i)
		}
	}
	wrongK, _ := NewDeterministic(3, 0.1, &m)
	if err := wrongK.UnmarshalBinary(dd); err == nil {
		t.Error("deterministic site mismatch accepted")
	}
}

// incSpec is a randomly generated increment workload for the property-based
// suite: k sites, a stream length, an error parameter and a seed that fixes
// both the site choices and the randomized counter's coin flips.
type incSpec struct {
	K    int
	N    int
	Eps  float64
	Seed uint64
}

// normalize maps arbitrary generated values into a valid, bounded workload.
func (s incSpec) normalize() incSpec {
	s.K = 1 + abs(s.K)%12
	s.N = 500 + abs(s.N)%20000
	epsChoices := []float64{0.05, 0.1, 0.2, 0.3}
	s.Eps = epsChoices[int(math.Abs(s.Eps)*1e6)%len(epsChoices)]
	return s
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// quickCfg makes testing/quick deterministic: generated workloads depend
// only on this fixed source, so a passing run stays passing.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(20260729))}
}

// TestQuickExactMatchesReferenceSum drives all three counter kinds with the
// same random increment sequence and checks every Exact() against a plain
// reference sum — the paper's invariant that approximation never loses
// increments, only delays their reporting.
func TestQuickExactMatchesReferenceSum(t *testing.T) {
	f := func(raw incSpec) bool {
		s := raw.normalize()
		var m Metrics
		rng := bn.NewRNG(s.Seed)
		h, err := NewHYZ(s.K, s.Eps, 0.25, &m, rng)
		if err != nil {
			return false
		}
		d, err := NewDeterministic(s.K, s.Eps, &m)
		if err != nil {
			return false
		}
		e := NewExact(&m)
		sites := bn.NewRNG(s.Seed ^ 0xabcdef)
		var ref int64
		for i := 0; i < s.N; i++ {
			site := sites.Intn(s.K)
			h.Inc(site)
			d.Inc(site)
			e.Inc(site)
			ref++
		}
		return h.Exact() == ref && d.Exact() == ref && e.Exact() == ref &&
			e.Estimate() == float64(ref)
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicWithinBound checks the deterministic counter's hard
// error bound on random workloads: within a round opened at exact count
// `base`, each of the k sites holds back fewer than quantum ≤ ε·base/k + 1
// unreported increments, so |Estimate - C| ≤ ε·C + k always.
func TestQuickDeterministicWithinBound(t *testing.T) {
	f := func(raw incSpec) bool {
		s := raw.normalize()
		var m Metrics
		c, err := NewDeterministic(s.K, s.Eps, &m)
		if err != nil {
			return false
		}
		sites := bn.NewRNG(s.Seed)
		for i := 0; i < s.N; i++ {
			c.Inc(sites.Intn(s.K))
			diff := math.Abs(c.Estimate() - float64(c.Exact()))
			if diff > s.Eps*float64(c.Exact())+float64(s.K) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestQuickHYZWithinChebyshevBound checks the randomized counter's estimate
// on random workloads. The guarantee is probabilistic (Var ≤ (εC)², Lemma
// 4), so the assertion uses a 6·εC Chebyshev envelope plus a small additive
// slack for the low-count regime; with the fixed quick source the workloads
// are deterministic, making the test reproducible.
func TestQuickHYZWithinChebyshevBound(t *testing.T) {
	f := func(raw incSpec) bool {
		s := raw.normalize()
		var m Metrics
		rng := bn.NewRNG(s.Seed)
		c, err := NewHYZ(s.K, s.Eps, 0.25, &m, rng)
		if err != nil {
			return false
		}
		sites := bn.NewRNG(s.Seed ^ 0x5ca1ab1e)
		for i := 0; i < s.N; i++ {
			c.Inc(sites.Intn(s.K))
		}
		C := float64(c.Exact())
		return math.Abs(c.Estimate()-C) <= 6*s.Eps*C+float64(2*s.K)
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestQuickMessageSavings: once past the exact phase, any counter kind must
// use asymptotically fewer messages than the exact strawman on the same
// workload (the point of the paper).
func TestQuickMessageSavings(t *testing.T) {
	f := func(raw incSpec) bool {
		s := raw.normalize()
		s.N = 50000 + s.N // long enough that sampling always kicks in
		var mh, md Metrics
		rng := bn.NewRNG(s.Seed)
		h, err := NewHYZ(s.K, s.Eps, 0.25, &mh, rng)
		if err != nil {
			return false
		}
		d, err := NewDeterministic(s.K, s.Eps, &md)
		if err != nil {
			return false
		}
		sites := bn.NewRNG(s.Seed ^ 0xfeed)
		for i := 0; i < s.N; i++ {
			site := sites.Intn(s.K)
			h.Inc(site)
			d.Inc(site)
		}
		return mh.Total() < int64(s.N) && md.Total() < int64(s.N)
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Error(err)
	}
}

// TestMetricsSinkConcurrent drives counters that live in different lock
// stripes but share one Metrics sink from multiple goroutines — the sharded
// tracker's configuration — and checks no tally is lost. Run under -race
// this also proves the sink's atomicity.
func TestMetricsSinkConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	var m Metrics
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewExact(&m) // each worker owns its counter; the sink is shared
			for i := 0; i < perWorker; i++ {
				c.Inc(w)
			}
			m.AddCoordToSite(1)
		}(w)
	}
	for i := 0; i < 1000; i++ {
		_ = m.Snapshot() // concurrent reads must be race-clean
	}
	wg.Wait()
	got := m.Snapshot()
	if got.SiteToCoord != workers*perWorker || got.CoordToSite != workers {
		t.Errorf("metrics = %+v, want %d up / %d down", got, workers*perWorker, workers)
	}
}
