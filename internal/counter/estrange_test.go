package counter

import (
	"math"
	"testing"

	"distbayes/internal/bn"
)

// TestEstimateRangeMatchesEstimate drives banks of every kind — the three
// built-in flat kinds plus a custom bank — through a random increment
// schedule and asserts EstimateRange bit-identical (math.Float64bits) to
// per-cell Estimate over random [lo, hi) windows. This pins the vectorized
// snapshot-rebuild read path to the scalar one the goldens were recorded
// against.
func TestEstimateRangeMatchesEstimate(t *testing.T) {
	const cells, k = 17, 5
	n := 40000
	if testing.Short() {
		n = 8000
	}

	banks := make(map[string]*Bank)
	for _, tc := range bankKinds {
		var m Metrics
		b, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &m, bn.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		banks[tc.name] = b
	}
	var mc Metrics
	custom, err := NewCustomBank(cells, func(int) (Counter, error) {
		return NewExact(&mc), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	banks["custom"] = custom

	check := func(t *testing.T, b *Bank, step int) {
		t.Helper()
		rng := bn.NewRNG(uint64(step) + 1)
		lo := rng.Intn(cells + 1)
		hi := lo + rng.Intn(cells+1-lo)
		dst := make([]float64, hi-lo)
		for i := range dst {
			dst[i] = math.NaN() // must be fully overwritten
		}
		b.EstimateRange(lo, hi, dst)
		for c := lo; c < hi; c++ {
			want := b.Estimate(c)
			if math.Float64bits(dst[c-lo]) != math.Float64bits(want) {
				t.Fatalf("step %d cells [%d,%d): cell %d bulk %v (%#x) != scalar %v (%#x)",
					step, lo, hi, c, dst[c-lo], math.Float64bits(dst[c-lo]),
					want, math.Float64bits(want))
			}
		}
	}

	for name, b := range banks {
		t.Run(name, func(t *testing.T) {
			sched := bn.NewRNG(uint64(len(name)) * 0x9e3779b97f4a7c15)
			for i := 0; i < n; i++ {
				b.Inc(sched.Intn(cells), sched.Intn(k))
				if i%503 == 0 {
					check(t, b, i)
				}
			}
			// Full-range read last: every cell compared once more.
			full := make([]float64, cells)
			b.EstimateRange(0, cells, full)
			for c := 0; c < cells; c++ {
				if math.Float64bits(full[c]) != math.Float64bits(b.Estimate(c)) {
					t.Fatalf("cell %d: bulk %v != scalar %v", c, full[c], b.Estimate(c))
				}
			}
		})
	}

	t.Run("bounds", func(t *testing.T) {
		b := banks["exact"]
		for _, r := range [][2]int{{-1, 0}, {0, cells + 1}, {3, 2}} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("EstimateRange(%d, %d) did not panic", r[0], r[1])
					}
				}()
				b.EstimateRange(r[0], r[1], make([]float64, cells+2))
			}()
		}
	})
}
