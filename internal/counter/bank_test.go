package counter

import (
	"math"
	"testing"

	"distbayes/internal/bn"
)

// bankKinds enumerates the built-in flat kinds with a representative eps.
var bankKinds = []struct {
	name string
	kind Kind
	eps  float64
}{
	{"exact", ExactKind, 0},
	{"hyz", HYZKind, 0.1},
	{"deterministic", DeterministicKind, 0.1},
}

// TestBankMatchesPerCellCounters drives an N-cell bank and N individually
// allocated counters sharing one RNG through the same interleaved schedule
// and asserts bit-identical estimates, exact counts and message tallies —
// the invariant behind the tracker's Shards=1 reproducibility guarantee
// across the flat-layout refactor.
func TestBankMatchesPerCellCounters(t *testing.T) {
	const cells, k, n = 5, 6, 60000
	for _, tc := range bankKinds {
		t.Run(tc.name, func(t *testing.T) {
			var mBank, mCells Metrics
			rngBank := bn.NewRNG(42)
			rngCells := bn.NewRNG(42)

			bank, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &mBank, rngBank)
			if err != nil {
				t.Fatal(err)
			}
			ref := make([]Counter, cells)
			for c := range ref {
				switch tc.kind {
				case ExactKind:
					ref[c] = NewExact(&mCells)
				case HYZKind:
					ref[c], err = NewHYZ(k, tc.eps, 0.25, &mCells, rngCells)
				case DeterministicKind:
					ref[c], err = NewDeterministic(k, tc.eps, &mCells)
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			sched := bn.NewRNG(7)
			for i := 0; i < n; i++ {
				cell, site := sched.Intn(cells), sched.Intn(k)
				bank.Inc(cell, site)
				ref[cell].Inc(site)
				if i%997 == 0 {
					for c := 0; c < cells; c++ {
						if bank.Estimate(c) != ref[c].Estimate() {
							t.Fatalf("step %d cell %d: bank estimate %v != per-cell %v",
								i, c, bank.Estimate(c), ref[c].Estimate())
						}
					}
				}
			}
			for c := 0; c < cells; c++ {
				if bank.Exact(c) != ref[c].Exact() {
					t.Errorf("cell %d: exact %d != %d", c, bank.Exact(c), ref[c].Exact())
				}
				if bank.Estimate(c) != ref[c].Estimate() {
					t.Errorf("cell %d: estimate %v != %v", c, bank.Estimate(c), ref[c].Estimate())
				}
				view := bank.Cell(c)
				if view.Exact() != bank.Exact(c) || view.Estimate() != bank.Estimate(c) {
					t.Errorf("cell %d: view disagrees with indexed reads", c)
				}
			}
			if mBank.Snapshot() != mCells.Snapshot() {
				t.Errorf("messages: bank %+v != per-cell %+v", mBank.Snapshot(), mCells.Snapshot())
			}
		})
	}
}

// TestBankStateRoundTrip checkpoints a driven bank, restores into a fresh
// one, and verifies identical continued behavior (same RNG position forced
// on both).
func TestBankStateRoundTrip(t *testing.T) {
	const cells, k, n = 4, 5, 40000
	for _, tc := range bankKinds {
		t.Run(tc.name, func(t *testing.T) {
			var m1, m2 Metrics
			rng1 := bn.NewRNG(11)
			a, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &m1, rng1)
			if err != nil {
				t.Fatal(err)
			}
			sched := bn.NewRNG(3)
			for i := 0; i < n; i++ {
				a.Inc(sched.Intn(cells), sched.Intn(k))
			}
			data, err := a.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			rng2 := bn.NewRNG(99)
			b, err := NewBank(tc.kind, cells, k, tc.eps, 0.25, &m2, rng2)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < cells; c++ {
				if a.Estimate(c) != b.Estimate(c) || a.Exact(c) != b.Exact(c) {
					t.Fatalf("cell %d not restored: %v/%d vs %v/%d",
						c, b.Estimate(c), b.Exact(c), a.Estimate(c), a.Exact(c))
				}
			}
			rng2.SetState(rng1.State())
			for i := 0; i < 10000; i++ {
				cell, site := sched.Intn(cells), sched.Intn(k)
				a.Inc(cell, site)
				b.Inc(cell, site)
				if a.Estimate(cell) != b.Estimate(cell) {
					t.Fatalf("diverged at continued step %d", i)
				}
			}
		})
	}
}

// TestBankStateRejectsMismatch covers the structural validation of bank
// snapshots.
func TestBankStateRejectsMismatch(t *testing.T) {
	var m Metrics
	a, err := NewBank(HYZKind, 3, 4, 0.1, 0.25, &m, bn.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Bank{}
	if b, err := NewBank(HYZKind, 2, 4, 0.1, 0.25, &m, bn.NewRNG(1)); err == nil {
		cases["cell-count"] = b
	}
	if b, err := NewBank(HYZKind, 3, 5, 0.1, 0.25, &m, bn.NewRNG(1)); err == nil {
		cases["site-count"] = b
	}
	if b, err := NewBank(DeterministicKind, 3, 4, 0.1, 0, &m, nil); err == nil {
		cases["kind"] = b
	}
	for name, b := range cases {
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("%s mismatch accepted", name)
		}
	}
	if err := a.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Error("truncated state accepted")
	}
	if err := a.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestBankValidation mirrors the constructor validation of the standalone
// counters.
func TestBankValidation(t *testing.T) {
	var m Metrics
	rng := bn.NewRNG(1)
	if _, err := NewBank(HYZKind, 2, 0, 0.1, 0.25, &m, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBank(HYZKind, 2, 4, 0, 0.25, &m, rng); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewBank(HYZKind, 2, 4, math.NaN(), 0.25, &m, rng); err == nil {
		t.Error("eps=NaN accepted")
	}
	if _, err := NewBank(HYZKind, 2, 4, 0.1, 0.25, &m, nil); err == nil {
		t.Error("nil rng accepted for randomized bank")
	}
	if _, err := NewBank(HYZKind, -1, 4, 0.1, 0.25, &m, rng); err == nil {
		t.Error("negative cells accepted")
	}
	if _, err := NewBank(Kind(99), 2, 4, 0.1, 0.25, &m, rng); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewBank(ExactKind, 2, 4, 0, 0, nil, nil); err == nil {
		t.Error("nil metrics accepted")
	}
}

// TestCustomBank exercises the CounterFactory extension path: cells are
// interface counters, and checkpointing round-trips through the cells' own
// marshalers.
func TestCustomBank(t *testing.T) {
	var m Metrics
	b, err := NewCustomBank(3, func(int) (Counter, error) { return NewExact(&m), nil })
	if err != nil {
		t.Fatal(err)
	}
	if b.Cells() != 3 {
		t.Fatalf("cells = %d", b.Cells())
	}
	for i := 0; i < 100; i++ {
		b.Inc(i%3, 0)
	}
	if b.Exact(0) != 34 || b.Exact(1) != 33 || b.Exact(2) != 33 {
		t.Errorf("custom counts = %d/%d/%d", b.Exact(0), b.Exact(1), b.Exact(2))
	}
	if b.Estimate(1) != 33 {
		t.Errorf("custom estimate = %v", b.Estimate(1))
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewCustomBank(3, func(int) (Counter, error) { return NewExact(&m), nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if b2.Exact(c) != b.Exact(c) {
			t.Errorf("cell %d restored %d, want %d", c, b2.Exact(c), b.Exact(c))
		}
	}
	// A custom cell without marshal support makes the bank uncheckpointable.
	type bare struct{ Counter }
	nb, err := NewCustomBank(1, func(int) (Counter, error) { return bare{NewExact(&m)}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.MarshalBinary(); err == nil {
		t.Error("unmarshalable custom cell accepted")
	}
}
