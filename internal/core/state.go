package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"distbayes/internal/counter"
)

// Checkpointing: SaveState serializes a tracker's dynamic state (counter
// contents, RNG position, message metrics, event count) so a coordinator can
// restart without replaying the stream; LoadState restores it into a tracker
// built over the same network with the same Config. Restoring and continuing
// the stream is bit-for-bit identical to never having stopped (see
// TestCheckpointRoundTripEquivalence).
//
// Format DBAYES03: counter state is written as one length-prefixed record
// per bank (two banks per variable — pair then parent), matching the flat
// struct-of-arrays storage, instead of DBAYES02's one record per CPT cell.
// Custom (CounterFactory) banks serialize their cells through the cells' own
// BinaryMarshaler, so factory counters remain checkpointable iff they
// implement it.

const stateMagic = "DBAYES03"

// fingerprint binds a snapshot to the network shape and the configuration
// knobs that affect counter state layout (including the stripe count, which
// fixes which RNG each randomized counter draws from).
func (t *Tracker) fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(t.net.Len()))
	for i := 0; i < t.net.Len(); i++ {
		w(uint64(t.net.Card(i)))
		w(uint64(t.net.ParentCard(i)))
		for _, p := range t.net.Parents(i) {
			w(uint64(p))
		}
	}
	w(uint64(t.cfg.Strategy))
	w(uint64(t.cfg.Sites))
	w(uint64(t.cfg.Counter))
	w(math.Float64bits(t.cfg.Eps))
	w(uint64(len(t.shards)))
	return h.Sum64()
}

// SaveState writes the tracker's dynamic state to w. Every stripe is locked
// for the duration, which excludes torn counter reads, but an in-flight
// multi-stripe update may be captured half-applied (earlier stripes include
// the event, later ones not yet): quiesce ingestion first for a consistent
// snapshot, not just for a specific stream position.
func (t *Tracker) SaveState(w io.Writer) error {
	t.FlushDeltas() // quiescence is required anyway; publish parked deltas
	t.lockAll()
	defer t.unlockAll()
	cw, err := NewCkptWriter(w, stateMagic)
	if err != nil {
		return err
	}
	if err := cw.PutU64(t.fingerprint()); err != nil {
		return err
	}
	if err := cw.PutU64(uint64(t.Events())); err != nil {
		return err
	}
	msgs := t.metrics.Snapshot()
	if err := cw.PutU64(uint64(msgs.SiteToCoord)); err != nil {
		return err
	}
	if err := cw.PutU64(uint64(msgs.CoordToSite)); err != nil {
		return err
	}
	for s := range t.shards {
		for _, v := range t.shards[s].rng.State() {
			if err := cw.PutU64(v); err != nil {
				return err
			}
		}
	}
	writeBank := func(b *counter.Bank) error {
		data, err := b.MarshalBinary()
		if err != nil {
			return err
		}
		return cw.PutRecord(data)
	}
	for i := range t.pair {
		if err := writeBank(t.pair[i]); err != nil {
			return err
		}
		if err := writeBank(t.par[i]); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// LoadState restores a snapshot produced by SaveState. The receiver must
// have been constructed with NewTracker over the same network and Config
// (including the same Shards); a fingerprint mismatch is rejected. Any
// cached model snapshot is invalidated.
func (t *Tracker) LoadState(r io.Reader) error {
	// Publish (and thereby empty) any parked delta buffers so they cannot
	// fold pre-restore increments into the restored state at a later flush.
	// As with SaveState, callers must quiesce ingestion around the call.
	t.FlushDeltas()
	// rebuildMu before the stripe locks — the same order snapshot rebuilds
	// use — so a query racing LoadState blocks instead of deadlocking; it
	// also lets invalidateSnapshotLocked run under the stripe locks below.
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	t.lockAll()
	defer t.unlockAll()
	cr, err := NewCkptReader(r, stateMagic)
	if err != nil {
		return err
	}
	fp, err := cr.U64()
	if err != nil {
		return err
	}
	if fp != t.fingerprint() {
		return fmt.Errorf("core: snapshot fingerprint %x does not match tracker %x (different network or config)", fp, t.fingerprint())
	}
	events, err := cr.U64()
	if err != nil {
		return err
	}
	up, err := cr.U64()
	if err != nil {
		return err
	}
	down, err := cr.U64()
	if err != nil {
		return err
	}
	rngStates := make([][4]uint64, len(t.shards))
	for s := range rngStates {
		for i := range rngStates[s] {
			if rngStates[s][i], err = cr.U64(); err != nil {
				return err
			}
		}
	}

	readBank := func(b *counter.Bank) error {
		// Reject a corrupt record length before allocating for it: built-in
		// banks have a statically known state size, so anything else is
		// garbage; custom banks (unknown size) keep a coarse cap.
		var data []byte
		var err error
		if want := b.StateLen(); want >= 0 {
			data, err = cr.RecordExact(uint64(want))
		} else {
			data, err = cr.RecordCapped(1 << 30)
		}
		if err != nil {
			return err
		}
		return b.UnmarshalBinary(data)
	}
	for i := range t.pair {
		if err := readBank(t.pair[i]); err != nil {
			return err
		}
		if err := readBank(t.par[i]); err != nil {
			return err
		}
	}
	t.events.Store(int64(events))
	t.metrics.Store(counter.Metrics{SiteToCoord: int64(up), CoordToSite: int64(down)})
	for s := range t.shards {
		t.shards[s].rng.SetState(rngStates[s])
	}
	t.invalidateSnapshotLocked()
	return nil
}
