package core

import (
	"math"
	"testing"

	"distbayes/internal/bn"
)

// testModel builds a 3-variable chain model A(2) -> B(3) -> C(2) with fixed
// CPTs for deterministic expectations.
func testModel(t *testing.T) *bn.Model {
	t.Helper()
	nw := bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 3, Parents: []int{0}},
		{Name: "C", Card: 2, Parents: []int{1}},
	})
	cptA, _ := bn.NewCPT(2, 1, []float64{0.6, 0.4})
	cptB, _ := bn.NewCPT(3, 2, []float64{0.5, 0.3, 0.2, 0.1, 0.2, 0.7})
	cptC, _ := bn.NewCPT(2, 3, []float64{0.9, 0.1, 0.5, 0.5, 0.2, 0.8})
	return bn.MustModel(nw, []*bn.CPT{cptA, cptB, cptC})
}

func TestConfigValidation(t *testing.T) {
	net := testModel(t).Network()
	bad := []Config{
		{Strategy: Uniform, Eps: 0, Sites: 3},
		{Strategy: Uniform, Eps: 1.5, Sites: 3},
		{Strategy: Uniform, Eps: 0.1, Sites: 0},
		{Strategy: Uniform, Eps: 0.1, Sites: 3, Smoothing: -1},
		{Strategy: Uniform, Eps: 0.1, Sites: 3, Delta: 1.5},
		{Strategy: Uniform, Eps: 0.1, Sites: 3, Counter: CounterKind(9)},
	}
	for i, cfg := range bad {
		if _, err := NewTracker(net, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// ExactMLE ignores eps.
	if _, err := NewTracker(net, Config{Strategy: ExactMLE, Sites: 3}); err != nil {
		t.Errorf("exact MLE config rejected: %v", err)
	}
}

func TestExactMLEMatchesLiteralCounting(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, err := NewTracker(net, Config{Strategy: ExactMLE, Sites: 4})
	if err != nil {
		t.Fatal(err)
	}

	s := m.NewSampler(99)
	const events = 5000
	// Literal counts for comparison.
	pairCount := map[[3]int]int{} // (var, value, pidx)
	parCount := map[[2]int]int{}  // (var, pidx)
	x := make([]int, net.Len())
	for e := 0; e < events; e++ {
		s.Sample(x)
		tr.Update(e%4, x)
		for i := 0; i < net.Len(); i++ {
			pidx := net.ParentIndex(i, x)
			pairCount[[3]int{i, x[i], pidx}]++
			parCount[[2]int{i, pidx}]++
		}
	}

	if tr.Events() != events {
		t.Errorf("Events = %d, want %d", tr.Events(), events)
	}
	// Lemma 5 accounting: 2n messages per event, no broadcasts.
	wantMsgs := int64(2 * net.Len() * events)
	if got := tr.Messages(); got.SiteToCoord != wantMsgs || got.CoordToSite != 0 {
		t.Errorf("messages = %+v, want %d up / 0 down", got, wantMsgs)
	}

	// QueryProb equals the product of empirical ratios.
	queries := [][]int{{0, 0, 0}, {1, 2, 1}, {0, 1, 1}, {1, 1, 0}}
	for _, q := range queries {
		want := 1.0
		for i := 0; i < net.Len(); i++ {
			pidx := net.ParentIndex(i, q)
			pc := parCount[[2]int{i, pidx}]
			if pc == 0 {
				want = 0
				break
			}
			want *= float64(pairCount[[3]int{i, q[i], pidx}]) / float64(pc)
		}
		if got := tr.QueryProb(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("QueryProb(%v) = %v, want %v", q, got, want)
		}
	}

	// ExactCount must agree with the literal tally.
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				gotPair, gotPar := tr.ExactCount(i, v, pidx)
				if gotPair != int64(pairCount[[3]int{i, v, pidx}]) {
					t.Fatalf("pair count (%d,%d,%d) = %d, want %d", i, v, pidx, gotPair, pairCount[[3]int{i, v, pidx}])
				}
				if gotPar != int64(parCount[[2]int{i, pidx}]) {
					t.Fatalf("par count (%d,%d) = %d, want %d", i, pidx, gotPar, parCount[[2]int{i, pidx}])
				}
			}
		}
	}
}

func TestUpdateSiteRangePanics(t *testing.T) {
	tr, err := NewTracker(testModel(t).Network(), Config{Strategy: ExactMLE, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range site did not panic")
		}
	}()
	tr.Update(2, []int{0, 0, 0})
}

func TestQueryProbUnseenIsZeroAndSmoothingPositive(t *testing.T) {
	net := testModel(t).Network()
	tr, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 1})
	if got := tr.QueryProb([]int{0, 0, 0}); got != 0 {
		t.Errorf("empty tracker QueryProb = %v, want 0", got)
	}
	sm, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 1, Smoothing: 0.5})
	if got := sm.QueryProb([]int{0, 0, 0}); got <= 0 {
		t.Errorf("smoothed empty tracker QueryProb = %v, want > 0", got)
	}
	// Smoothed estimate of a CPD cell with no data is uniform.
	if got, want := sm.QueryCPD(1, 0, 0), 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("smoothed empty CPD = %v, want %v", got, want)
	}
}

func TestApproximateTrackersCloseToMLE(t *testing.T) {
	// Core guarantee check: on a moderate stream, each approximate strategy's
	// joint estimate is within e^{±O(ε)} of the exact-MLE estimate.
	m := testModel(t)
	net := m.Network()
	const (
		events = 60000
		sites  = 10
		eps    = 0.1
	)
	exact, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: sites})
	trackers := map[Strategy]*Tracker{}
	for _, st := range []Strategy{Baseline, Uniform, NonUniform} {
		tr, err := NewTracker(net, Config{Strategy: st, Eps: eps, Sites: sites, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		trackers[st] = tr
	}
	s := m.NewSampler(123)
	route := bn.NewRNG(321)
	x := make([]int, net.Len())
	for e := 0; e < events; e++ {
		s.Sample(x)
		site := route.Intn(sites)
		exact.Update(site, x)
		for _, tr := range trackers {
			tr.Update(site, x)
		}
	}

	queries := [][]int{}
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 2; c++ {
				queries = append(queries, []int{a, b, c})
			}
		}
	}
	for st, tr := range trackers {
		if tr.Messages().Total() >= exact.Messages().Total() {
			t.Errorf("%v sent %d messages, exact sent %d: no saving", st, tr.Messages().Total(), exact.Messages().Total())
		}
		for _, q := range queries {
			ref := exact.QueryProb(q)
			got := tr.QueryProb(q)
			if ref <= 0 {
				continue
			}
			ratio := got / ref
			// Definition 2 at ε=0.1 allows [e^-ε, e^ε]; leave slack for the
			// constant-factor looseness of Chebyshev in a single run.
			if ratio < math.Exp(-3*eps) || ratio > math.Exp(3*eps) {
				t.Errorf("%v: query %v ratio to MLE = %v, outside e^{±%v}", st, q, ratio, 3*eps)
			}
		}
	}
}

// chainModel builds an n-variable chain with cardinality card and random
// CPTs; big enough n lets the asymptotic strategy ordering show.
func chainModel(t *testing.T, n, card int, seed uint64) *bn.Model {
	t.Helper()
	vars := make([]bn.Variable, n)
	for i := range vars {
		vars[i] = bn.Variable{Name: "V", Card: card}
		if i > 0 {
			vars[i].Parents = []int{i - 1}
		}
	}
	nw := bn.MustNetwork(vars)
	rng := bn.NewRNG(seed)
	cpds := make([]*bn.CPT, n)
	for i := range cpds {
		tbl := make([]float64, nw.Card(i)*nw.ParentCard(i))
		for k := 0; k < nw.ParentCard(i); k++ {
			row := tbl[k*nw.Card(i) : (k+1)*nw.Card(i)]
			rng.Dirichlet(2.0, row)
			// Keep probabilities off the floor so all cells get traffic.
			for j := range row {
				row[j] = 0.9*row[j] + 0.1/float64(len(row))
			}
		}
		var err error
		cpds[i], err = bn.NewCPT(nw.Card(i), nw.ParentCard(i), tbl)
		if err != nil {
			t.Fatal(err)
		}
	}
	return bn.MustModel(nw, cpds)
}

func TestUniformCheaperThanBaselineOnLargeNet(t *testing.T) {
	// BASELINE allocates ε/(3n) per counter, UNIFORM ε/(16√n): UNIFORM's
	// allocation is looser (hence cheaper) only once 16√n < 3n, i.e. n ≥ 29.
	// Use n = 40, the regime of all the paper's networks (n ∈ [37, 1041]).
	m := chainModel(t, 40, 2, 1)
	net := m.Network()
	const events, sites, eps = 30000, 10, 0.1
	run := func(st Strategy) int64 {
		tr, err := NewTracker(net, Config{Strategy: st, Eps: eps, Sites: sites, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		s := m.NewSampler(55)
		route := bn.NewRNG(66)
		x := make([]int, net.Len())
		for e := 0; e < events; e++ {
			s.Sample(x)
			tr.Update(route.Intn(sites), x)
		}
		return tr.Messages().Total()
	}
	b := run(Baseline)
	u := run(Uniform)
	nu := run(NonUniform)
	if u >= b {
		t.Errorf("uniform (%d) not cheaper than baseline (%d)", u, b)
	}
	if nu > u+u/10 {
		t.Errorf("nonuniform (%d) much costlier than uniform (%d)", nu, u)
	}
}

func TestBaselineCheaperThanUniformOnTinyNet(t *testing.T) {
	// Converse regime: with n = 3 < 29 BASELINE's per-counter epsilon is the
	// larger one, so it should cost fewer messages than UNIFORM.
	m := testModel(t)
	net := m.Network()
	const events, sites, eps = 50000, 10, 0.1
	run := func(st Strategy) int64 {
		tr, err := NewTracker(net, Config{Strategy: st, Eps: eps, Sites: sites, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		s := m.NewSampler(55)
		route := bn.NewRNG(66)
		x := make([]int, net.Len())
		for e := 0; e < events; e++ {
			s.Sample(x)
			tr.Update(route.Intn(sites), x)
		}
		return tr.Messages().Total()
	}
	if b, u := run(Baseline), run(Uniform); b >= u {
		t.Errorf("baseline (%d) not cheaper than uniform (%d) at n=3", b, u)
	}
}

func TestClassifyAgainstExactPosterior(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 2, Smoothing: 0.5})
	s := m.NewSampler(31)
	x := make([]int, net.Len())
	for e := 0; e < 30000; e++ {
		s.Sample(x)
		tr.Update(e%2, x)
	}
	// With plentiful data the tracked classifier should agree with the
	// ground-truth Markov-blanket classifier on most test points.
	agree, total := 0, 0
	for trial := 0; trial < 500; trial++ {
		s.Sample(x)
		for target := 0; target < net.Len(); target++ {
			want := m.PredictVar(target, x)
			got := tr.Classify(target, x)
			if got == want {
				agree++
			}
			total++
		}
	}
	if rate := float64(agree) / float64(total); rate < 0.95 {
		t.Errorf("agreement with ground-truth classifier = %v, want >= 0.95", rate)
	}
}

func TestClassifyRestoresEvidence(t *testing.T) {
	tr, _ := NewTracker(testModel(t).Network(), Config{Strategy: ExactMLE, Sites: 1, Smoothing: 1})
	x := []int{1, 2, 0}
	tr.Classify(1, x)
	if x[0] != 1 || x[1] != 2 || x[2] != 0 {
		t.Errorf("evidence mutated: %v", x)
	}
}

func TestEstimatedModelNormalizedAndAccurate(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, _ := NewTracker(net, Config{Strategy: Uniform, Eps: 0.1, Sites: 5, Seed: 3})
	s := m.NewSampler(17)
	route := bn.NewRNG(18)
	x := make([]int, net.Len())
	for e := 0; e < 80000; e++ {
		s.Sample(x)
		tr.Update(route.Intn(5), x)
	}
	est, err := tr.EstimatedModel()
	if err != nil {
		t.Fatal(err)
	}
	// Row normalization is asserted by bn.NewCPT; check closeness to truth.
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				truth := m.CPD(i).P(v, pidx)
				got := est.CPD(i).P(v, pidx)
				if math.Abs(got-truth) > 0.05 {
					t.Errorf("CPD[%d](%d|%d) = %v, truth %v", i, v, pidx, got, truth)
				}
			}
		}
	}
}

func TestEstimatedModelEmptyTrackerUniform(t *testing.T) {
	net := testModel(t).Network()
	tr, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 1})
	est, err := tr.EstimatedModel()
	if err != nil {
		t.Fatal(err)
	}
	if got := est.CPD(1).P(0, 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("empty CPD cell = %v, want 1/3", got)
	}
}

func TestDeterministicCounterKind(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, err := NewTracker(net, Config{
		Strategy: Uniform, Eps: 0.1, Sites: 8, Seed: 4, Counter: DeterministicCounter,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 8})
	s := m.NewSampler(61)
	route := bn.NewRNG(62)
	x := make([]int, net.Len())
	for e := 0; e < 40000; e++ {
		s.Sample(x)
		site := route.Intn(8)
		tr.Update(site, x)
		exact.Update(site, x)
	}
	if tr.Messages().Total() >= exact.Messages().Total() {
		t.Errorf("deterministic-counter tracker no cheaper than exact: %d vs %d",
			tr.Messages().Total(), exact.Messages().Total())
	}
	q := []int{0, 0, 0}
	ratio := tr.QueryProb(q) / exact.QueryProb(q)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("deterministic tracker ratio to MLE = %v", ratio)
	}
}

func TestTrackerDeterministicForSeed(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	run := func() (int64, float64) {
		tr, _ := NewTracker(net, Config{Strategy: NonUniform, Eps: 0.1, Sites: 6, Seed: 1234})
		s := m.NewSampler(5)
		route := bn.NewRNG(6)
		x := make([]int, net.Len())
		for e := 0; e < 20000; e++ {
			s.Sample(x)
			tr.Update(route.Intn(6), x)
		}
		return tr.Messages().Total(), tr.QueryProb([]int{1, 1, 1})
	}
	m1, q1 := run()
	m2, q2 := run()
	if m1 != m2 || q1 != q2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", m1, q1, m2, q2)
	}
}

func TestQuerySubsetProb(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 1})
	s := m.NewSampler(77)
	x := make([]int, net.Len())
	for e := 0; e < 50000; e++ {
		s.Sample(x)
		tr.Update(0, x)
	}
	set := net.AncestralClosure([]int{1}) // {A, B}
	q := []int{0, 1, 0}
	got := tr.QuerySubsetProb(set, q)
	want := m.SubsetProb(set, q) // 0.6 * 0.3
	if math.Abs(got-want) > 0.02 {
		t.Errorf("QuerySubsetProb = %v, want ~%v", got, want)
	}
}

// TestEpsilonDeltaGuaranteeStatistical validates Definition 2 empirically:
// across many independent UNIFORM runs, the fraction of (run, query) pairs
// whose tracked probability falls outside e^{±eps} of the exact MLE must be
// small. The analysis guarantees failure probability 1/4 per run at the
// allocated budget; the measured rate is far lower because Chebyshev is
// loose, so the 10% threshold leaves margin without being vacuous.
func TestEpsilonDeltaGuaranteeStatistical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	m := chainModel(t, 30, 2, 3)
	net := m.Network()
	const (
		eps    = 0.2
		sites  = 10
		events = 20000
		reps   = 30
	)
	queries := [][]int{}
	rng := bn.NewRNG(13)
	for qi := 0; qi < 20; qi++ {
		x := make([]int, net.Len())
		for i := range x {
			x[i] = rng.Intn(net.Card(i))
		}
		queries = append(queries, x)
	}
	outside, total := 0, 0
	for rep := 0; rep < reps; rep++ {
		exact, err := NewTracker(net, Config{Strategy: ExactMLE, Sites: sites})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTracker(net, Config{
			Strategy: Uniform, Eps: eps, Sites: sites, Seed: uint64(1000 + rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		s := m.NewSampler(uint64(500 + rep))
		route := bn.NewRNG(uint64(700 + rep))
		x := make([]int, net.Len())
		for e := 0; e < events; e++ {
			s.Sample(x)
			site := route.Intn(sites)
			exact.Update(site, x)
			tr.Update(site, x)
		}
		for _, q := range queries {
			ref := exact.QueryProb(q)
			if ref <= 0 {
				continue
			}
			ratio := tr.QueryProb(q) / ref
			total++
			if ratio < math.Exp(-eps) || ratio > math.Exp(eps) {
				outside++
			}
		}
	}
	if total == 0 {
		t.Fatal("no valid queries")
	}
	if rate := float64(outside) / float64(total); rate > 0.10 {
		t.Errorf("(eps,delta) violation rate %v (%d/%d) exceeds 10%%", rate, outside, total)
	}
}

func TestInferMarginalAgainstGroundTruth(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 2})
	s := m.NewSampler(3)
	x := make([]int, net.Len())
	for e := 0; e < 60000; e++ {
		s.Sample(x)
		tr.Update(e%2, x)
	}
	// P[B=2] under the truth: sum over A of P[A]*P[B=2|A].
	want := 0.6*0.2 + 0.4*0.7
	got, err := tr.InferMarginal(map[int]int{1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.02 {
		t.Errorf("InferMarginal = %v, want ~%v", got, want)
	}
	if _, err := tr.InferMarginal(nil); err == nil {
		t.Error("empty inference query accepted")
	}
}

func TestClassifyPartial(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	tr, _ := NewTracker(net, Config{Strategy: ExactMLE, Sites: 2, Smoothing: 0.5})
	s := m.NewSampler(13)
	x := make([]int, net.Len())
	for e := 0; e < 40000; e++ {
		s.Sample(x)
		tr.Update(e%2, x)
	}
	// Predict A from C only (B unobserved): compare against the ground-truth
	// posterior argmax computed by exact inference on the true model.
	for c := 0; c < net.Card(2); c++ {
		got, err := tr.ClassifyPartial(0, map[int]int{2: c})
		if err != nil {
			t.Fatal(err)
		}
		bestY, bestP := -1, -1.0
		for y := 0; y < net.Card(0); y++ {
			p, err := m.ConditionalProb(map[int]int{0: y}, map[int]int{2: c})
			if err != nil {
				t.Fatal(err)
			}
			if p > bestP {
				bestY, bestP = y, p
			}
		}
		if got != bestY {
			t.Errorf("C=%d: ClassifyPartial = %d, truth argmax = %d", c, got, bestY)
		}
	}
	// Validation.
	if _, err := tr.ClassifyPartial(9, nil); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := tr.ClassifyPartial(0, map[int]int{0: 1}); err == nil {
		t.Error("target in evidence accepted")
	}
}
