// Package core implements the paper's primary contribution: communication-
// efficient continuous maintenance of the parameters (CPDs) of a Bayesian
// network over a stream of training events partitioned across k distributed
// sites, with an (ε, δ)-approximation guarantee relative to the exact MLE.
//
// A Tracker owns, for each variable X_i, the distributed counters
// A_i(x_i, x_i^par) (one per CPT cell) and A_i(x_i^par) (one per parent
// configuration), following Algorithms 1 (INIT), 2 (UPDATE) and 3 (QUERY).
// The Strategy selects how the error budget ε is divided across counters:
//
//	EXACTMLE    exact counters, one message per counter update (Lemma 5)
//	BASELINE    ε' = ε/(3n) for every counter (Section IV-C)
//	UNIFORM     ε' = ε/(16√n) for every counter (Section IV-D)
//	NONUNIFORM  ν_i, µ_i from the Lagrange allocation, eqs. (7)-(8) (IV-E)
//	NAIVEBAYES  the Naïve-Bayes specialization, eq. (9) (Section V)
//
// Ingestion runs in one of three concurrency modes — sequential (the
// bit-reproducible reference), striped (Config.Shards lock stripes) and
// delta-buffered (Config.DeltaBuffered, per-goroutine buffers merged on a
// cadence) — documented on the Tracker type in tracker.go.
package core

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
	"distbayes/internal/budget"
)

// Strategy selects the error-budget allocation (and EXACTMLE, which does not
// approximate at all).
type Strategy int

const (
	// ExactMLE maintains every counter exactly (the strawman of Lemma 5).
	ExactMLE Strategy = iota
	// Baseline allocates ε/(3n) to every counter (Section IV-C).
	Baseline
	// Uniform allocates ε/(16√n) to every counter (Section IV-D).
	Uniform
	// NonUniform allocates by the Lagrange solution, eqs. (7)-(8) (IV-E).
	NonUniform
	// NaiveBayes is the specialization of NonUniform to Naïve-Bayes models,
	// eq. (9) of Section V: µ_i = ε/(16√n) uniformly; ν_i by cardinality.
	NaiveBayes
)

// Strategies lists all tracker strategies in the order used by the paper's
// figures.
var Strategies = []Strategy{ExactMLE, Baseline, Uniform, NonUniform}

// String implements fmt.Stringer using the paper's algorithm names.
func (s Strategy) String() string {
	switch s {
	case ExactMLE:
		return "exact"
	case Baseline:
		return "baseline"
	case Uniform:
		return "uniform"
	case NonUniform:
		return "nonuniform"
	case NaiveBayes:
		return "naivebayes"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a name (as printed by String) back to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range []Strategy{ExactMLE, Baseline, Uniform, NonUniform, NaiveBayes} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

// CounterKind selects the underlying distributed-counter protocol for the
// approximate strategies; HYZCounter is the paper's choice, the deterministic
// counter is kept for ablation experiments.
type CounterKind int

const (
	// HYZCounter is the randomized counter of Lemma 4 (default).
	HYZCounter CounterKind = iota
	// DeterministicCounter is the classical O(k/ε·log T) threshold counter.
	DeterministicCounter
)

// Allocation holds the per-variable counter error parameters chosen by a
// strategy: EpsA[i] parameterizes the pair counters A_i(x_i, x_i^par) and
// EpsB[i] the parent counters A_i(x_i^par). For ExactMLE both are zero.
type Allocation struct {
	EpsA []float64
	EpsB []float64
}

// Allocate computes the error parameters for every variable of net under the
// given strategy and total error budget eps (the paper's epsfnA / epsfnB of
// Algorithm 1).
func Allocate(net *bn.Network, strategy Strategy, eps float64) (Allocation, error) {
	n := net.Len()
	a := Allocation{EpsA: make([]float64, n), EpsB: make([]float64, n)}
	switch strategy {
	case ExactMLE:
		return a, nil
	case Baseline:
		v := eps / (3 * float64(n))
		for i := 0; i < n; i++ {
			a.EpsA[i], a.EpsB[i] = v, v
		}
		return a, nil
	case Uniform:
		v := eps / (16 * math.Sqrt(float64(n)))
		for i := 0; i < n; i++ {
			a.EpsA[i], a.EpsB[i] = v, v
		}
		return a, nil
	case NonUniform:
		b := eps * eps / 256
		costsA := make([]float64, n)
		costsB := make([]float64, n)
		for i := 0; i < n; i++ {
			ji, ki := float64(net.Card(i)), float64(net.ParentCard(i))
			costsA[i] = ji * ki
			costsB[i] = ki
		}
		nu, err := budget.Allocate(costsA, b)
		if err != nil {
			return a, err
		}
		mu, err := budget.Allocate(costsB, b)
		if err != nil {
			return a, err
		}
		a.EpsA, a.EpsB = nu, mu
		return a, nil
	case NaiveBayes:
		// Equation (9): µ_i = ε/(16√n) uniformly (all K_i equal the root
		// cardinality, so the Lagrange allocation for the parent counters is
		// uniform); ν_i from the general allocation with c_i = J_i·K_i (the
		// shared factor J_1 cancels in the normalization, recovering the
		// published closed form).
		b := eps * eps / 256
		costsA := make([]float64, n)
		for i := 0; i < n; i++ {
			costsA[i] = float64(net.Card(i)) * float64(net.ParentCard(i))
		}
		nu, err := budget.Allocate(costsA, b)
		if err != nil {
			return a, err
		}
		mv := eps / (16 * math.Sqrt(float64(n)))
		for i := 0; i < n; i++ {
			a.EpsB[i] = mv
		}
		a.EpsA = nu
		return a, nil
	default:
		return a, fmt.Errorf("core: unknown strategy %v", strategy)
	}
}

// BudgetSpent returns Σ ν_i² for the pair-counter side of an allocation —
// the left side of constraint (4); useful for verifying that variance-based
// strategies respect Σ ν² ≤ ε²/256.
func (a Allocation) BudgetSpent() float64 {
	s := 0.0
	for _, v := range a.EpsA {
		s += v * v
	}
	return s
}

// IsNaiveBayes reports whether net has Naïve-Bayes structure — a single root
// that is the sole parent of every other variable — and returns the root.
func IsNaiveBayes(net *bn.Network) (root int, ok bool) {
	root = -1
	for i := 0; i < net.Len(); i++ {
		switch len(net.Parents(i)) {
		case 0:
			if root >= 0 {
				return -1, false
			}
			root = i
		case 1:
			// checked against root below
		default:
			return -1, false
		}
	}
	if root < 0 {
		return -1, false
	}
	for i := 0; i < net.Len(); i++ {
		if i == root {
			continue
		}
		if net.Parents(i)[0] != root {
			return -1, false
		}
	}
	return root, true
}
