package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"distbayes/internal/bn"
)

// This file is the randomized-interleaving equivalence harness: it replays
// one fixed event sequence through the sequential reference tracker and
// through concurrent trackers (striped and delta-buffered) under seeded
// random goroutine schedules, then asserts that exact counts are identical
// and that every randomized counter estimate stays within its protocol
// bound. The schedules are deterministic in their seed, so a failure
// reproduces; the goroutine interleavings underneath are not, which is the
// point — under `go test -race` this doubles as the data-race probe for
// every ingestion mode x strategy combination.
//
// The helpers (replayRandomSchedule, assertExactEquivalence,
// assertEstimatesWithinBound) are reusable: any test that adds a new
// ingestion path can drive it through the same machinery.

// replayRandomSchedule ingests evs into tr from `workers` goroutines under a
// schedule derived from seed: the stream is cut into randomly sized chunks
// dealt to random workers, and each worker replays its chunks in order
// through a randomly chosen entry point per chunk — per-event Update,
// UpdateEvents, UpdateBatch when the chunk is single-site, or an explicit
// DeltaBuffer on delta-buffered trackers — with scheduling-point yields
// sprinkled in. A FlushDeltas barrier runs before returning, so the tracker
// is fully caught up. Exact counts are schedule-independent; randomized
// estimates and message tallies are not, which is exactly what the
// assertions below distinguish.
func replayRandomSchedule(tb testing.TB, tr *Tracker, evs []Event, workers int, seed uint64) {
	tb.Helper()
	rng := bn.NewRNG(seed)
	chunks := make([][][]Event, workers)
	for lo := 0; lo < len(evs); {
		hi := min(lo+1+rng.Intn(48), len(evs))
		w := rng.Intn(workers)
		chunks[w] = append(chunks[w], evs[lo:hi])
		lo = hi
	}
	buffered := tr.Config().DeltaBuffered
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, wseed uint64) {
			defer wg.Done()
			wrng := bn.NewRNG(wseed)
			var buf *DeltaBuffer
			if buffered {
				buf = tr.NewDeltaBuffer()
				defer buf.Release()
			}
			for _, chunk := range chunks[w] {
				choice := wrng.Intn(4)
				switch {
				case choice == 0:
					for _, ev := range chunk {
						tr.Update(ev.Site, ev.X)
					}
				case choice == 1 && buf != nil:
					buf.AddEvents(chunk)
				case choice == 2 && singleSite(chunk):
					xs := make([][]int, len(chunk))
					for i := range chunk {
						xs[i] = chunk[i].X
					}
					tr.UpdateBatch(chunk[0].Site, xs)
				default:
					tr.UpdateEvents(chunk)
				}
				if wrng.Intn(4) == 0 {
					runtime.Gosched()
				}
			}
		}(w, seed^(uint64(w)*0x9e3779b97f4a7c15+1))
	}
	wg.Wait()
	tr.FlushDeltas()
}

func singleSite(evs []Event) bool {
	for _, ev := range evs {
		if ev.Site != evs[0].Site {
			return false
		}
	}
	return true
}

// assertExactEquivalence fails unless got's event count and every exact
// (pair, parent) cell count matches ref's.
func assertExactEquivalence(t *testing.T, ref, got *Tracker) {
	t.Helper()
	if got.Events() != ref.Events() {
		t.Fatalf("events = %d, want %d", got.Events(), ref.Events())
	}
	want, have := cellCounts(t, ref), cellCounts(t, got)
	for c := range want {
		if have[c] != want[c] {
			t.Fatalf("exact cell %d counts = %v, want %v", c, have[c], want[c])
		}
	}
}

// estimateBound returns the allowed |estimate - exact| slack for a counter
// with error parameter eps tracking an exact count of n. ExactMLE (and any
// eps = 0 allocation) must be exact. The deterministic counter's bound is a
// theorem — unreported site deltas total at most ε·base + k — while the
// randomized counter's is its ε·C guarantee with headroom for the
// expectation-corrected tail (the harness seeds are fixed, so this is a
// deterministic regression check, not a flaky statistical one).
func estimateBound(cfg Config, eps float64, n int64) float64 {
	if eps == 0 {
		return 0
	}
	k := float64(cfg.Sites)
	if cfg.Counter == DeterministicCounter {
		return eps*float64(n) + k + 1
	}
	return 3*eps*float64(n) + math.Sqrt(k)/eps + 1
}

// assertEstimatesWithinBound walks every bank cell and fails where the
// tracked estimate strays further from the exact count than the counter
// protocol allows (see estimateBound).
func assertEstimatesWithinBound(t *testing.T, tr *Tracker) {
	t.Helper()
	net, alloc, cfg := tr.Network(), tr.Allocation(), tr.Config()
	var rows CPDRows
	for i := 0; i < net.Len(); i++ {
		tr.ReadCPDRows(i, &rows)
		j := net.Card(i)
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < j; v++ {
				pc, qc := tr.ExactCount(i, v, pidx)
				pairEst := rows.Pair[pidx*j+v]
				if d, bound := math.Abs(pairEst-float64(pc)), estimateBound(cfg, alloc.EpsA[i], pc); d > bound {
					t.Errorf("var %d pair cell (%d,%d): |%.3f - %d| = %.3f exceeds bound %.3f",
						i, v, pidx, pairEst, pc, d, bound)
				}
				if d, bound := math.Abs(rows.Par[pidx]-float64(qc)), estimateBound(cfg, alloc.EpsB[i], qc); d > bound {
					t.Errorf("var %d parent cell %d: |%.3f - %d| = %.3f exceeds bound %.3f",
						i, pidx, rows.Par[pidx], qc, d, bound)
				}
			}
		}
	}
}

// TestRandomScheduleEquivalence is the harness entry point: for every
// strategy (and the deterministic-counter ablation), the same event stream
// is replayed sequentially and then through striped and delta-buffered
// trackers under several seeded random schedules.
func TestRandomScheduleEquivalence(t *testing.T) {
	m := testModel(t)
	const sites = 4
	events := 12000
	if testing.Short() {
		events = 4000
	}
	evs := genEventStream(m, sites, events, 23)

	type mode struct {
		name     string
		shards   int
		buffered bool
		cadence  int
		workers  int
		sparse   bool
	}
	modes := []mode{
		{name: "striped", shards: 3, workers: 4},
		{name: "buffered", shards: 1, buffered: true, cadence: 256, workers: 4},
		{name: "buffered-striped", shards: 3, buffered: true, cadence: 512, workers: 3},
		{name: "buffered-sparse", shards: 3, buffered: true, cadence: 384, workers: 4, sparse: true},
	}

	variants := make([]Config, 0, len(allStrategies)+1)
	for _, st := range allStrategies {
		variants = append(variants, cfgFor(st, 0))
	}
	detCfg := cfgFor(NonUniform, 0)
	detCfg.Counter = DeterministicCounter
	detCfg.Delta = 0
	variants = append(variants, detCfg)

	for vi, base := range variants {
		base := base
		name := base.Strategy.String()
		if base.Counter == DeterministicCounter {
			name += "-deterministic"
		}
		t.Run(name, func(t *testing.T) {
			ref, err := NewTracker(m.Network(), base)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				ref.Update(ev.Site, ev.X)
			}
			assertEstimatesWithinBound(t, ref) // the bound must hold sequentially too

			for mi, md := range modes {
				md := md
				t.Run(md.name, func(t *testing.T) {
					cfg := base
					cfg.Shards = md.shards
					cfg.DeltaBuffered = md.buffered
					cfg.DeltaFlushEvents = md.cadence
					cfg.DeltaSparse = md.sparse
					tr, err := NewTracker(m.Network(), cfg)
					if err != nil {
						t.Fatal(err)
					}
					replayRandomSchedule(t, tr, evs, md.workers, uint64(1000*vi+mi)+77)
					assertExactEquivalence(t, ref, tr)
					assertEstimatesWithinBound(t, tr)
				})
			}
		})
	}
}

// TestRandomScheduleEquivalenceSeeds re-runs one configuration under many
// schedule seeds — cheap extra interleaving coverage for the buffered mode
// on top of the full strategy sweep above.
func TestRandomScheduleEquivalenceSeeds(t *testing.T) {
	m := testModel(t)
	const sites = 4
	events := 6000
	if testing.Short() {
		events = 2000
	}
	evs := genEventStream(m, sites, events, 29)
	ref, err := NewTracker(m.Network(), cfgFor(NonUniform, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		ref.Update(ev.Site, ev.X)
	}
	for seed := uint64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := cfgFor(NonUniform, 2)
			cfg.DeltaBuffered = true
			cfg.DeltaFlushEvents = 128 << seed // vary the publish cadence too
			tr, err := NewTracker(m.Network(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			replayRandomSchedule(t, tr, evs, 3+int(seed%3), seed*131+5)
			assertExactEquivalence(t, ref, tr)
			assertEstimatesWithinBound(t, tr)
		})
	}
}
