package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"distbayes/internal/bn"
)

// fuzzConfigs are the tracker shapes FuzzLoadState decodes into — one per
// bank kind (randomized, deterministic, exact), plus a multi-stripe variant
// whose checkpoint carries several RNG states.
func fuzzConfigs() []Config {
	return []Config{
		{Strategy: NonUniform, Eps: 0.15, Delta: 0.25, Sites: 3, Seed: 7},
		{Strategy: NonUniform, Eps: 0.15, Sites: 3, Seed: 7, Counter: DeterministicCounter},
		{Strategy: ExactMLE, Sites: 3, Seed: 7},
		{Strategy: Uniform, Eps: 0.2, Delta: 0.25, Sites: 3, Seed: 7, Shards: 2},
	}
}

// fuzzNet is the fixed network the fuzz trackers are built over (the
// testModel network, duplicated here without a *testing.T so the fuzz
// engine can call it).
func fuzzNet() *bn.Network {
	return bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 3, Parents: []int{0}},
		{Name: "C", Card: 2, Parents: []int{1}},
	})
}

// FuzzLoadState feeds arbitrary bytes to the DBAYES03 checkpoint decoder:
// whatever the input — truncated, bit-flipped, adversarially crafted record
// lengths — LoadState must return an error or succeed, never panic and
// never allocate absurdly (the record-length check against Bank.StateLen).
// The seed corpus contains valid checkpoints of every bank kind plus
// mutations of them, so the fuzzer starts deep inside the format rather
// than at the magic check.
func FuzzLoadState(f *testing.F) {
	net := fuzzNet()
	for _, cfg := range fuzzConfigs() {
		tr, err := NewTracker(net, cfg)
		if err != nil {
			f.Fatal(err)
		}
		evs := genFuzzEvents(net, cfg.Sites, 400, 3)
		for _, ev := range evs {
			tr.Update(ev.Site, ev.X)
		}
		var buf bytes.Buffer
		if err := tr.SaveState(&buf); err != nil {
			f.Fatal(err)
		}
		snap := buf.Bytes()
		f.Add(append([]byte(nil), snap...))
		f.Add(append([]byte(nil), snap[:len(snap)/2]...)) // truncation
		flipped := append([]byte(nil), snap...)
		flipped[len(flipped)/3] ^= 0x40 // bit flip mid-record
		f.Add(flipped)
	}
	f.Add([]byte("DBAYES03"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, cfg := range fuzzConfigs() {
			tr, err := NewTracker(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Must not panic; errors are the expected outcome for garbage.
			_ = tr.LoadState(bytes.NewReader(data))
		}
	})
}

// genFuzzEvents is genEventStream without the *testing.T, for fuzz setup.
func genFuzzEvents(net *bn.Network, sites, n int, seed uint64) []Event {
	rng := bn.NewRNG(seed)
	evs := make([]Event, n)
	for j := range evs {
		x := make([]int, net.Len())
		for i := 0; i < net.Len(); i++ {
			x[i] = rng.Intn(net.Card(i))
		}
		evs[j] = Event{Site: rng.Intn(sites), X: x}
	}
	return evs
}

// TestWriteFuzzLoadStateCorpus regenerates the committed seed corpus under
// testdata/fuzz when DISTBAYES_WRITE_FUZZ_CORPUS is set; normally it only
// verifies the corpus directory exists.
func TestWriteFuzzLoadStateCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadState")
	if os.Getenv("DISTBAYES_WRITE_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing: %v (regenerate with DISTBAYES_WRITE_FUZZ_CORPUS=1)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	net := fuzzNet()
	for i, cfg := range fuzzConfigs() {
		tr, err := NewTracker(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range genFuzzEvents(net, cfg.Sites, 400, 3) {
			tr.Update(ev.Site, ev.X)
		}
		var buf bytes.Buffer
		if err := tr.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		snap := buf.Bytes()
		write := func(name string, data []byte) {
			t.Helper()
			payload := []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
			if err := os.WriteFile(filepath.Join(dir, name), payload, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		prefix := "cfg" + strconv.Itoa(i)
		write(prefix+"-valid", snap)
		write(prefix+"-truncated", snap[:len(snap)/2])
		flipped := append([]byte(nil), snap...)
		flipped[len(flipped)/3] ^= 0x40
		write(prefix+"-bitflip", flipped)
	}
}
