package core

import (
	"context"
	"sync"
	"testing"

	"distbayes/internal/bn"
)

// allStrategies are the tracker strategies the equivalence suite covers.
var allStrategies = []Strategy{ExactMLE, Baseline, Uniform, NonUniform, NaiveBayes}

// genEvents samples n events from m and routes them to uniformly random
// sites, each event with its own backing array (the reference stream shared
// by every tracker in a test).
func genEventStream(m *bn.Model, sites, n int, seed uint64) []Event {
	sampler := m.NewSampler(seed)
	rng := bn.NewRNG(seed ^ 0xdead)
	evs := make([]Event, n)
	for j := range evs {
		x := make([]int, m.Network().Len())
		sampler.Sample(x)
		evs[j] = Event{Site: rng.Intn(sites), X: x}
	}
	return evs
}

// cellCounts snapshots ExactCount for every (variable, value, pidx) cell.
func cellCounts(t *testing.T, tr *Tracker) [][2]int64 {
	t.Helper()
	net := tr.Network()
	var out [][2]int64
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				pc, qc := tr.ExactCount(i, v, pidx)
				out = append(out, [2]int64{pc, qc})
			}
		}
	}
	return out
}

// queryAll evaluates QueryProb over every full assignment of the (small)
// test network.
func queryAll(tr *Tracker) []float64 {
	net := tr.Network()
	var out []float64
	x := make([]int, net.Len())
	var rec func(int)
	rec = func(i int) {
		if i == net.Len() {
			out = append(out, tr.QueryProb(x))
			return
		}
		for v := 0; v < net.Card(i); v++ {
			x[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func cfgFor(st Strategy, shards int) Config {
	return Config{Strategy: st, Eps: 0.15, Delta: 0.25, Sites: 4, Seed: 42, Shards: shards}
}

// TestBatchedIngestionMatchesSequential asserts that for every strategy, a
// single-stripe tracker fed the same ordered stream through UpdateEvents (in
// odd-sized batches) and through an Ingest pump produces results
// bit-identical to the sequential per-event Update loop: same exact counts,
// same message tallies, same query answers.
func TestBatchedIngestionMatchesSequential(t *testing.T) {
	m := testModel(t)
	const events = 12000
	evs := genEventStream(m, 4, events, 7)

	for _, st := range allStrategies {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			seq, err := NewTracker(m.Network(), cfgFor(st, 0))
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				seq.Update(ev.Site, ev.X)
			}

			batched, err := NewTracker(m.Network(), cfgFor(st, 1))
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(evs); lo += 77 {
				batched.UpdateEvents(evs[lo:min(lo+77, len(evs))])
			}

			pumped, err := NewTracker(m.Network(), cfgFor(st, 1))
			if err != nil {
				t.Fatal(err)
			}
			ch := make(chan Event, 64)
			go func() {
				for _, ev := range evs {
					ch <- ev
				}
				close(ch)
			}()
			n, err := pumped.Ingest(context.Background(), ch)
			if err != nil {
				t.Fatalf("Ingest: %v", err)
			}
			if n != events {
				t.Fatalf("Ingest consumed %d events, want %d", n, events)
			}

			wantCells := cellCounts(t, seq)
			wantMsgs := seq.Messages()
			wantQueries := queryAll(seq)
			for name, tr := range map[string]*Tracker{"batched": batched, "pumped": pumped} {
				if got := tr.Events(); got != seq.Events() {
					t.Errorf("%s: events = %d, want %d", name, got, seq.Events())
				}
				if got := tr.Messages(); got != wantMsgs {
					t.Errorf("%s: messages = %+v, want %+v", name, got, wantMsgs)
				}
				gotCells := cellCounts(t, tr)
				for c := range wantCells {
					if gotCells[c] != wantCells[c] {
						t.Fatalf("%s: cell %d counts = %v, want %v", name, c, gotCells[c], wantCells[c])
					}
				}
				gotQ := queryAll(tr)
				for q := range wantQueries {
					if gotQ[q] != wantQueries[q] {
						t.Fatalf("%s: query %d = %v, want %v", name, q, gotQ[q], wantQueries[q])
					}
				}
			}
		})
	}
}

// TestConcurrentShardedExactCounts partitions one stream by site and feeds a
// multi-stripe tracker from one goroutine per site. Exact counts are
// order-independent, so they must match the sequential reference for every
// strategy under any interleaving; for ExactMLE (whose message accounting
// and query answers are also order-independent) full equality is asserted.
func TestConcurrentShardedExactCounts(t *testing.T) {
	m := testModel(t)
	const sites, events = 4, 12000
	evs := genEventStream(m, sites, events, 11)

	bySite := make([][][]int, sites)
	for _, ev := range evs {
		bySite[ev.Site] = append(bySite[ev.Site], ev.X)
	}

	for _, st := range allStrategies {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			seq, err := NewTracker(m.Network(), cfgFor(st, 0))
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				seq.Update(ev.Site, ev.X)
			}

			conc, err := NewTracker(m.Network(), cfgFor(st, 3))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for site := 0; site < sites; site++ {
				wg.Add(1)
				go func(site int) {
					defer wg.Done()
					// Interleave small batches and single updates to stress
					// both entry points under the race detector.
					xs := bySite[site]
					for lo := 0; lo < len(xs); {
						if lo%3 == 0 {
							conc.Update(site, xs[lo])
							lo++
							continue
						}
						hi := min(lo+50, len(xs))
						conc.UpdateBatch(site, xs[lo:hi])
						lo = hi
					}
				}(site)
			}
			// Exercise concurrent reads while ingestion is in flight.
			q := make([]int, m.Network().Len())
			for i := 0; i < 100; i++ {
				_ = conc.QueryProb(q)
				_ = conc.Messages()
				_, _ = conc.ExactCount(0, 0, 0)
			}
			wg.Wait()

			if conc.Events() != seq.Events() {
				t.Fatalf("events = %d, want %d", conc.Events(), seq.Events())
			}
			wantCells := cellCounts(t, seq)
			gotCells := cellCounts(t, conc)
			for c := range wantCells {
				if gotCells[c] != wantCells[c] {
					t.Fatalf("cell %d counts = %v, want %v", c, gotCells[c], wantCells[c])
				}
			}
			if st == ExactMLE {
				if got, want := conc.Messages(), seq.Messages(); got != want {
					t.Errorf("messages = %+v, want %+v", got, want)
				}
				gotQ, wantQ := queryAll(conc), queryAll(seq)
				for i := range wantQ {
					if gotQ[i] != wantQ[i] {
						t.Fatalf("query %d = %v, want %v", i, gotQ[i], wantQ[i])
					}
				}
			}
		})
	}
}

// TestConcurrentIngestPumps runs several Ingest pumps draining one shared
// channel into a sharded tracker; the union of ingested events must account
// for every event exactly once.
func TestConcurrentIngestPumps(t *testing.T) {
	m := testModel(t)
	const events = 8000
	evs := genEventStream(m, 4, events, 13)

	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 2))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Event, 128)
	go func() {
		for _, ev := range evs {
			ch <- ev
		}
		close(ch)
	}()
	var wg sync.WaitGroup
	var total int64
	var mu sync.Mutex
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := tr.Ingest(context.Background(), ch)
			if err != nil {
				t.Errorf("Ingest: %v", err)
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != events || tr.Events() != events {
		t.Fatalf("pumps ingested %d (tracker %d), want %d", total, tr.Events(), events)
	}

	// Exact per-cell totals must match a sequential replay.
	seq, err := NewTracker(m.Network(), cfgFor(NonUniform, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		seq.Update(ev.Site, ev.X)
	}
	want := cellCounts(t, seq)
	got := cellCounts(t, tr)
	for c := range want {
		if got[c][0] != want[c][0] || got[c][1] != want[c][1] {
			t.Fatalf("cell %d counts = %v, want %v", c, got[c], want[c])
		}
	}
}

// TestIngestCancel verifies an Ingest pump unblocks on context cancellation
// and reports the cancellation error.
func TestIngestCancel(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Event) // never written, never closed
	done := make(chan struct{})
	var n int64
	var ierr error
	go func() {
		n, ierr = tr.Ingest(ctx, ch)
		close(done)
	}()
	cancel()
	<-done
	if ierr != context.Canceled {
		t.Errorf("Ingest error = %v, want context.Canceled", ierr)
	}
	if n != 0 {
		t.Errorf("ingested %d events from an empty channel", n)
	}
}

// TestShardsClampedToVariables: more stripes than variables must degrade
// gracefully (and keep checkpointing self-consistent).
func TestShardsClampedToVariables(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 64))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 500, 3)
	tr.UpdateEvents(evs)
	if tr.Events() != 500 {
		t.Fatalf("events = %d", tr.Events())
	}
}

// TestShardsValidation rejects negative stripe counts.
func TestShardsValidation(t *testing.T) {
	m := testModel(t)
	if _, err := NewTracker(m.Network(), Config{Strategy: Uniform, Eps: 0.1, Sites: 2, Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
}
