package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/counter"
)

// Config parameterizes a Tracker.
type Config struct {
	// Strategy selects the algorithm (EXACTMLE/BASELINE/UNIFORM/NONUNIFORM/
	// NAIVEBAYES).
	Strategy Strategy
	// Eps is the total approximation budget ε of Definition 2, 0 < ε < 1.
	// Ignored by ExactMLE.
	Eps float64
	// Delta is the failure probability δ. As in the paper's evaluation it is
	// carried to the counters but a single instance is run (the median
	// amplification of Theorem 1 is analysis only).
	Delta float64
	// Sites is k, the number of distributed sites.
	Sites int
	// Seed makes the randomized counters reproducible.
	Seed uint64
	// Counter selects the distributed-counter protocol (default HYZCounter).
	Counter CounterKind
	// Smoothing is a Laplace pseudo-count applied in queries and
	// classification: each CPD cell behaves as (A+s)/(Apar+s·J_i). Zero (the
	// default) reproduces the paper's unsmoothed estimator.
	Smoothing float64
	// CounterFactory, if non-nil, overrides counter construction for every
	// strategy (the time-decay extension plugs in here). eps is the
	// allocated error parameter of the counter; it is 0 for ExactMLE. The
	// rng argument is the lock stripe's generator: counters built from it
	// are only ever driven under that stripe's lock. The tracker's
	// concurrent-use guarantee extends to factory counters only if all
	// their mutation happens inside Inc; a factory whose counters are also
	// mutated out of band (e.g. the decay banks' Tick/rotate) requires
	// ingestion to be quiesced around those external mutations. Factory
	// counters live in custom banks with per-cell interface dispatch, and
	// the tracker disables model-snapshot caching for them (out-of-band
	// mutation cannot bump the stripe versions), so every query re-reads
	// the live counters — decayed estimates are always current.
	CounterFactory func(eps float64, metrics *counter.Metrics, rng *bn.RNG) (counter.Counter, error)
	// Shards is the number of lock stripes of the concurrent ingestion
	// engine. Variable i's counter banks belong to stripe i mod Shards, and
	// every stripe owns an independent RNG. 0 and 1 both mean a single
	// stripe, which keeps one global update order and one RNG and therefore
	// reproduces the historical sequential tracker exactly (same counts,
	// same message tallies, same query answers for a fixed seed and event
	// order). Shards > 1 lets concurrent updates proceed on different
	// stripes in parallel; exact counts stay exact, but randomized-counter
	// message schedules become interleaving-dependent.
	Shards int
	// DeltaBuffered selects the lock-free ingestion mode: every ingestion
	// entry point accumulates exact increment counts into a per-goroutine
	// DeltaBuffer and publishes on a cadence (DeltaFlushEvents, an explicit
	// Flush, or a query barrier) by folding the buffer into the shared banks
	// with one stripe acquisition per stripe and replaying the counter
	// message protocol on the merged totals (counter.Bank.Merge). Exact
	// counts are preserved under any interleaving and the randomized
	// counters keep their (ε, δ) guarantee, but estimates, message tallies
	// and Events lag until a publish, and message schedules correspond to a
	// batched interleaving — like Shards > 1, this mode trades the
	// sequential tracker's bit-reproducibility for throughput. See
	// deltabuf.go for the lifecycle and memory footprint.
	DeltaBuffered bool
	// DeltaFlushEvents is the publish cadence of delta-buffered ingestion:
	// a buffer that accumulates this many events publishes inline. 0 means
	// the default (1024). Ignored unless DeltaBuffered.
	DeltaFlushEvents int
	// DeltaSparse switches delta buffers to a sparse touched-cell
	// representation: a buffer costs memory proportional to the cells its
	// window actually dirtied instead of mirroring every counter bank, and a
	// flush folds only those cells (in ascending order, bit-identical to the
	// dense merge for the same flush points). Choose it for large networks
	// (munin-scale) or small flush cadences, where mirroring the full banks
	// per goroutine dominates; the dense default accumulates faster on small
	// networks (array index vs map lookup). Ignored unless delta buffers are
	// in use (DeltaBuffered or explicit NewDeltaBuffer).
	DeltaSparse bool
}

func (c Config) validate() error {
	if c.Strategy != ExactMLE {
		if !(c.Eps > 0 && c.Eps < 1) {
			return fmt.Errorf("core: eps = %v, want 0 < eps < 1", c.Eps)
		}
	}
	if c.Sites < 1 {
		return fmt.Errorf("core: sites = %d, want >= 1", c.Sites)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("core: smoothing = %v, want >= 0", c.Smoothing)
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("core: delta = %v, want 0 <= delta < 1", c.Delta)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shards = %d, want >= 0", c.Shards)
	}
	if c.DeltaFlushEvents < 0 {
		return fmt.Errorf("core: delta flush cadence = %d, want >= 0", c.DeltaFlushEvents)
	}
	return nil
}

// Event is one training observation routed to a site — the unit of the
// batched (UpdateEvents) and channel (Ingest) ingestion APIs.
type Event struct {
	// Site is the receiving site in [0, Config.Sites).
	Site int
	// X is the full observed assignment. The tracker only reads it for the
	// duration of the ingesting call; producers that hand events to another
	// goroutine must give each event its own backing array (see
	// stream.Training.NextEvents).
	X []int
}

// Tracker continuously maintains an approximation of the MLE of a Bayesian
// network's parameters over a distributed stream (Algorithms 1-3). It is the
// coordinator-plus-sites simulation; messages are tallied per counter update
// as in the paper's experiments.
//
// Storage model: each variable i owns two flat counter banks
// (counter.Bank) — the pair bank A_i(x_i, x_i^par) with J_i·K_i cells laid
// out pidx·J_i + x_i to match bn.CPT, and the parent bank A_i(x_i^par) with
// K_i cells — so the ingest hot loop is a direct indexed increment on
// contiguous memory rather than an interface call per CPT cell.
//
// Concurrency model: all ingestion entry points (Update, UpdateBatch,
// UpdateEvents, Ingest) and all query entry points (QueryProb, QueryCPD,
// Classify, ExactCount, EstimatedModel, ...) are safe to call from multiple
// goroutines, in any of three ingestion modes:
//
//   - Sequential (Shards ≤ 1, DeltaBuffered false): one lock stripe, one
//     RNG, one global update order. Bit-identical to the historical
//     sequential tracker for a fixed seed and event order — same counts,
//     same message tallies, same query answers (the reference mode, pinned
//     by TestSequentialModeBitCompat).
//   - Striped (Shards > 1, DeltaBuffered false): counter banks are
//     partitioned into Config.Shards lock stripes by variable index; an
//     update walks the stripes in ascending order, so two concurrent
//     updates pipeline across stripes instead of serializing. Exact counts
//     stay exact under any interleaving; randomized-counter message
//     schedules become interleaving-dependent but keep the (ε, δ)
//     guarantee. Reads are immediate, as in sequential mode.
//   - Delta-buffered (DeltaBuffered true, any Shards): ingestion
//     accumulates exact increment counts into per-goroutine DeltaBuffers
//     with no shared-state access at all, publishing on a cadence by
//     folding each buffer into the banks under one stripe acquisition per
//     stripe (counter.Bank.Merge replays the message protocol on the
//     merged totals). Exact counts stay exact and the (ε, δ) guarantee
//     holds, but Events/Messages lag until a publish and message schedules
//     correspond to a batched interleaving; the query, checkpoint and
//     snapshot paths all start with a FlushDeltas barrier so reads always
//     see every increment published before the barrier.
//
// Concurrent queries must not share mutable arguments — Classify scratches
// x[target] in the caller's slice, so each goroutine needs its own x.
//
// Query model: the structured query paths (QueryProb, QuerySubsetProb,
// Classify, EstimatedModel, InferMarginal, ClassifyPartial) are served from
// a cached model snapshot. Every stripe carries a version counter that is
// bumped under its lock on each mutation; a query revalidates the cached
// snapshot against the stripe versions and rebuilds only the stripes that
// changed, locking each such stripe once and reading whole variable rows
// (ReadCPDRows) instead of taking two lock round-trips per CPT cell.
// Repeated queries between ingest flushes therefore share one snapshot and
// acquire no locks at all, while point queries against a stale cache fall
// back to per-cell reads for a few calls before paying for a rebuild
// (pointSnapshot), so alternating update/query workloads keep the
// historical per-cell cost. QueryCPD and ExactCount bypass the snapshot
// and read single live cells.
//
// External quiescence is required only for SaveState/LoadState (stripe
// locking excludes torn counter reads, but a mid-flight multi-stripe update
// can be captured half-applied — see SaveState) and for out-of-band
// mutation of CounterFactory counters such as the decay banks' Tick (see
// Config.CounterFactory).
type Tracker struct {
	// metrics is first so its int64 tallies are 64-bit aligned for the
	// atomic ops even on 32-bit platforms (the first word of an allocated
	// struct is guaranteed aligned).
	metrics counter.Metrics
	events  atomic.Int64

	net   *bn.Network
	cfg   Config
	alloc Allocation

	// shards[s] guards the counter banks of the variables in shards[s].vars
	// (those with i % len(shards) == s). Stripes are always acquired in
	// ascending order, so walks over multiple stripes cannot deadlock.
	shards []shard

	// pair[i] is the flat bank holding A_i(x_i, x_i^par), cell pidx*J_i+x_i;
	// par[i] holds A_i(x_i^par), cell pidx.
	pair []*counter.Bank
	par  []*counter.Bank

	scratch sync.Pool // *[]int32 parent-index buffers for batched ingestion

	// deltaFlushEvery is the normalized publish cadence of delta-buffered
	// ingestion (Config.DeltaFlushEvents, defaulted).
	deltaFlushEvery int64
	// deltaMu guards the delta-buffer registry and free list. deltaBufs
	// holds every live buffer (FlushDeltas barriers walk it); deltaFree are
	// the checked-in buffers recycled by the implicit entry points.
	deltaMu   sync.Mutex
	deltaBufs []*DeltaBuffer
	deltaFree []*DeltaBuffer
	// deltaPending counts buffers currently holding unpublished events, so
	// the FlushDeltas barrier is one atomic load when there is nothing to
	// publish.
	deltaPending atomic.Int32

	// snap is the last published model snapshot (nil until the first
	// structured query; never cached for CounterFactory trackers).
	snap atomic.Pointer[modelSnapshot]
	// rebuildMu serializes snapshot rebuilds and cache replacement, which is
	// what makes snapshot-row ownership hand-off (modelSnapshot.inherited)
	// race-free. The query fast path never takes it.
	rebuildMu sync.Mutex
	// rowPools[i] recycles variable i's factor rows from retired snapshots
	// (*[]float64 of exactly J_i·K_i cells), so steady-state ingest+query
	// mixes stop allocating one row per dirty variable per rebuild. One pool
	// per variable keeps every recycled row exactly the right size.
	rowPools []sync.Pool
	// staleQueries counts point queries served per-cell since the cached
	// snapshot went stale; once it passes staleQueryRebuildThreshold the
	// next point query rebuilds (see pointSnapshot).
	staleQueries atomic.Int32
}

// shard is one lock stripe: a mutex, the stripe-local RNG feeding the
// randomized counters that live here, the owned variable indices in
// ascending order, and the snapshot-invalidation version.
type shard struct {
	mu  sync.Mutex
	rng *bn.RNG
	// version counts mutations of this stripe's banks. It is incremented
	// under mu at the end of every locked mutation section (per-event or
	// per-chunk) and read with atomic loads by the snapshot validator: a
	// snapshot built when every stripe version matched is current.
	version atomic.Uint64
	vars    []int
}

// numShards normalizes Config.Shards (0 means 1).
func (c Config) numShards() int {
	if c.Shards <= 1 {
		return 1
	}
	return c.Shards
}

// NewTracker builds the counter banks for net per Algorithm 1 (INIT).
func NewTracker(net *bn.Network, cfg Config) (*Tracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alloc, err := Allocate(net, cfg.Strategy, cfg.Eps)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		net:   net,
		cfg:   cfg,
		alloc: alloc,
		pair:  make([]*counter.Bank, net.Len()),
		par:   make([]*counter.Bank, net.Len()),

		rowPools:        make([]sync.Pool, net.Len()),
		deltaFlushEvery: int64(cfg.DeltaFlushEvents),
	}
	if t.deltaFlushEvery == 0 {
		t.deltaFlushEvery = defaultDeltaFlushEvents
	}
	nShards := cfg.numShards()
	if nShards > net.Len() && net.Len() > 0 {
		nShards = net.Len() // more stripes than variables buys nothing
	}
	t.shards = make([]shard, nShards)
	// Stripe 0 keeps the historical sequential RNG (seeded cfg.Seed), which
	// is what makes Shards ≤ 1 bit-identical to the old tracker.
	t.shards[0].rng = bn.NewRNG(cfg.Seed)
	for s := 1; s < nShards; s++ {
		// Derive independent stripe generators from the seed (splitmix-style
		// offset keeps them decorrelated from stripe 0 and each other).
		t.shards[s].rng = bn.NewRNG(cfg.Seed + uint64(s)*0x9e3779b97f4a7c15)
	}
	for i := 0; i < net.Len(); i++ {
		sh := &t.shards[i%nShards]
		sh.vars = append(sh.vars, i)
		j, k := net.Card(i), net.ParentCard(i)
		t.pair[i], err = t.newBank(j*k, alloc.EpsA[i], sh.rng)
		if err != nil {
			return nil, err
		}
		t.par[i], err = t.newBank(k, alloc.EpsB[i], sh.rng)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// newBank builds one variable's counter bank: a flat bank for the built-in
// protocols, or a custom bank of factory counters when Config.CounterFactory
// is set. Custom-bank cells are created in ascending cell order, preserving
// the historical per-cell construction order (and hence any factory-side
// registration order, e.g. the decay banks').
func (t *Tracker) newBank(cells int, eps float64, rng *bn.RNG) (*counter.Bank, error) {
	if t.cfg.CounterFactory != nil {
		return counter.NewCustomBank(cells, func(int) (counter.Counter, error) {
			return t.cfg.CounterFactory(eps, &t.metrics, rng)
		})
	}
	if t.cfg.Strategy == ExactMLE {
		return counter.NewBank(counter.ExactKind, cells, t.cfg.Sites, 0, 0, &t.metrics, nil)
	}
	switch t.cfg.Counter {
	case HYZCounter:
		return counter.NewBank(counter.HYZKind, cells, t.cfg.Sites, eps, t.cfg.Delta, &t.metrics, rng)
	case DeterministicCounter:
		return counter.NewBank(counter.DeterministicKind, cells, t.cfg.Sites, eps, 0, &t.metrics, nil)
	default:
		return nil, fmt.Errorf("core: unknown counter kind %d", t.cfg.Counter)
	}
}

// stripeOf returns the lock stripe owning variable i's counter banks.
func (t *Tracker) stripeOf(i int) *shard { return &t.shards[i%len(t.shards)] }

// lockAll acquires every stripe in ascending order (checkpointing).
func (t *Tracker) lockAll() {
	for s := range t.shards {
		t.shards[s].mu.Lock()
	}
}

func (t *Tracker) unlockAll() {
	for s := range t.shards {
		t.shards[s].mu.Unlock()
	}
}

// Network returns the structure the tracker was built for.
func (t *Tracker) Network() *bn.Network { return t.net }

// Config returns the tracker's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Allocation returns the per-variable counter error parameters in use.
func (t *Tracker) Allocation() Allocation { return t.alloc }

// Events returns the number of training observations processed. In
// delta-buffered mode this counts published events only — increments parked
// in unflushed buffers appear after the next publish or FlushDeltas barrier.
func (t *Tracker) Events() int64 { return t.events.Load() }

// Messages returns a snapshot of the protocol messages exchanged so far;
// safe to call while ingestion is in flight. Like Events, in delta-buffered
// mode the tallies reflect published increments only.
func (t *Tracker) Messages() counter.Metrics { return t.metrics.Snapshot() }

func (t *Tracker) checkSite(site int) {
	if site < 0 || site >= t.cfg.Sites {
		panic(fmt.Sprintf("core: site %d out of range [0,%d)", site, t.cfg.Sites))
	}
}

// Update records one training observation x received at the given site
// (Algorithm 2): for every variable the pair counter and the parent counter
// of the observed configuration are incremented. Safe for concurrent use;
// with a single stripe, concurrent callers serialize in arrival order. In
// delta-buffered mode the observation is parked in a pooled buffer and
// published on the flush cadence rather than immediately.
func (t *Tracker) Update(site int, x []int) {
	t.checkSite(site)
	if t.cfg.DeltaBuffered {
		d := t.getDelta()
		d.addOneChecked(site, x)
		t.putDelta(d)
		return
	}
	if len(t.shards) == 1 {
		// Single stripe: hoisting parent indices buys no parallelism (the
		// lock must be held for every variable anyway), so keep the
		// historical zero-overhead inline loop.
		sh := &t.shards[0]
		sh.mu.Lock()
		for i := 0; i < t.net.Len(); i++ {
			pidx := t.net.ParentIndex(i, x)
			t.pair[i].Inc(pidx*t.net.Card(i)+x[i], site)
			t.par[i].Inc(pidx, site)
		}
		sh.version.Add(1)
		sh.mu.Unlock()
	} else {
		t.applyOne(site, x)
	}
	t.events.Add(1)
}

// getScratch returns a parent-index buffer with at least n cells.
func (t *Tracker) getScratch(n int) []int32 {
	if p, ok := t.scratch.Get().(*[]int32); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}

func (t *Tracker) putScratch(buf []int32) { t.scratch.Put(&buf) }

// applyIndexed is the batched ingestion engine shared by UpdateBatch,
// UpdateEvents and Ingest. The goroutine-local phase computes every event's
// parent indices with no lock held (this is the bulk of the per-event CPU
// work and parallelizes perfectly across producers); the merge phase then
// walks the stripes in ascending order and, under each stripe's lock, replays
// the batch's increments for the variables that stripe owns. With one stripe
// this reproduces the sequential per-event update order exactly.
func (t *Tracker) applyIndexed(m int, xAt func(int) []int, siteAt func(int) int) {
	if m == 0 {
		return
	}
	if t.cfg.DeltaBuffered {
		// Buffered mode: accumulate into a pooled buffer (sites already
		// validated by the callers), publishing on cadence. The free-list
		// checkout costs two deltaMu acquisitions per call — amortized by
		// batching here; per-event hot loops should hold an explicit
		// NewDeltaBuffer instead (as the parallel drivers do).
		d := t.getDelta()
		d.addIndexedChecked(m, xAt, siteAt)
		t.putDelta(d)
		return
	}
	// Process huge batches in bounded chunks so the scratch buffer (and the
	// pooled slab it leaves behind) stays small regardless of batch size.
	// Chunking preserves per-event order within each stripe, so the
	// single-stripe sequential equivalence is unaffected.
	const maxChunk = 4096
	for lo := 0; lo < m; lo += maxChunk {
		t.applyChunk(lo, min(lo+maxChunk, m), xAt, siteAt)
	}
	t.events.Add(int64(m))
}

// applyOne is applyChunk's single-event fast path: the multi-stripe walk for
// one observation with the parent indices hoisted out of the locks, without
// the per-call closure allocations of the generic chunk engine.
func (t *Tracker) applyOne(site int, x []int) {
	n := t.net.Len()
	idx := t.getScratch(n)
	for i := 0; i < n; i++ {
		idx[i] = int32(t.net.ParentIndex(i, x))
	}
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for _, i := range sh.vars {
			pidx := int(idx[i])
			t.pair[i].Inc(pidx*t.net.Card(i)+x[i], site)
			t.par[i].Inc(pidx, site)
		}
		sh.version.Add(1)
		sh.mu.Unlock()
	}
	t.putScratch(idx)
}

func (t *Tracker) applyChunk(lo, hi int, xAt func(int) []int, siteAt func(int) int) {
	n := t.net.Len()
	idx := t.getScratch((hi - lo) * n)
	for e := lo; e < hi; e++ {
		x := xAt(e)
		row := idx[(e-lo)*n : (e-lo)*n+n]
		for i := 0; i < n; i++ {
			row[i] = int32(t.net.ParentIndex(i, x))
		}
	}
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for e := lo; e < hi; e++ {
			x, site := xAt(e), siteAt(e)
			row := idx[(e-lo)*n : (e-lo)*n+n]
			for _, i := range sh.vars {
				pidx := int(row[i])
				t.pair[i].Inc(pidx*t.net.Card(i)+x[i], site)
				t.par[i].Inc(pidx, site)
			}
		}
		sh.version.Add(1)
		sh.mu.Unlock()
	}
	t.putScratch(idx)
}

// UpdateBatch records a batch of observations all received at the same site,
// amortizing lock traffic over the batch (one stripe acquisition per stripe
// per batch instead of per event). Safe for concurrent use.
func (t *Tracker) UpdateBatch(site int, events [][]int) {
	t.checkSite(site)
	t.applyIndexed(len(events), func(e int) []int { return events[e] }, func(int) int { return site })
}

// UpdateEvents records a batch of observations with per-event sites — the
// mixed-site sibling of UpdateBatch, used when one pump drains a stream that
// interleaves all sites. Safe for concurrent use.
func (t *Tracker) UpdateEvents(events []Event) {
	for i := range events {
		t.checkSite(events[i].Site)
	}
	t.applyIndexed(len(events), func(e int) []int { return events[e].X }, func(e int) int { return events[e].Site })
}

// Ingest pumps events from the channel into the tracker until the channel is
// closed (returning a nil error) or ctx is canceled (returning ctx.Err()).
// Events are drained opportunistically into batches so a fast producer pays
// batched-ingestion cost rather than per-event lock traffic. Invariant: the
// returned count always matches what reached the counters — every receive
// is followed by a flush before the cancellation check, and the exit paths
// flush defensively so the invariant survives future restructuring of the
// drain loop. In delta-buffered mode the pump owns one buffer for its
// lifetime and publishes it before returning, so the invariant holds at
// return there too. Multiple Ingest pumps may run concurrently on one
// tracker; the count of events this pump ingested is returned either way.
func (t *Tracker) Ingest(ctx context.Context, events <-chan Event) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	const maxBatch = 256
	done := ctx.Done()
	batch := make([]Event, 0, maxBatch)
	var ingested int64
	var buf *DeltaBuffer
	if t.cfg.DeltaBuffered {
		buf = t.getDelta()
		defer func() {
			buf.Flush()
			t.putDelta(buf)
		}()
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if buf != nil {
			buf.AddEvents(batch)
		} else {
			t.UpdateEvents(batch)
		}
		ingested += int64(len(batch))
		batch = batch[:0]
	}
	for {
		select {
		case <-done:
			flush()
			return ingested, ctx.Err()
		case ev, ok := <-events:
			if !ok {
				flush()
				return ingested, nil
			}
			batch = append(batch, ev)
		}
	drain:
		for len(batch) < maxBatch {
			select {
			case ev, ok := <-events:
				if !ok {
					flush()
					return ingested, nil
				}
				batch = append(batch, ev)
			default:
				break drain
			}
		}
		flush()
	}
}

// cpdFactor returns the tracked estimate of P[x_i = v | parent config pidx],
// with the configured smoothing. The pair and parent counters are read under
// their stripe's lock so the ratio is consistent against in-flight updates.
// It is the per-cell reference path; the structured query entry points go
// through the batched snapshot instead (see Tracker's type comment).
func (t *Tracker) cpdFactor(i, v, pidx int) float64 {
	ji := t.net.Card(i)
	sh := t.stripeOf(i)
	sh.mu.Lock()
	num := t.pair[i].Estimate(pidx*ji + v)
	den := t.par[i].Estimate(pidx)
	sh.mu.Unlock()
	return smoothedFactor(num, den, t.cfg.Smoothing, ji)
}

// smoothedFactor is the single definition of the smoothed CPD ratio, shared
// by the per-cell reference path and the snapshot builder so the two are
// bit-identical.
func smoothedFactor(num, den, smoothing float64, ji int) float64 {
	num += smoothing
	den += smoothing * float64(ji)
	if den <= 0 {
		return 0
	}
	return num / den
}

// CPDRows is caller-owned scratch for ReadCPDRows: one variable's raw
// (unsmoothed) tracked estimates. Pair is laid out pidx*J_i + v to match
// bn.CPT; Par is indexed by pidx. Buffers are grown as needed and reused
// across calls.
type CPDRows struct {
	Pair []float64
	Par  []float64
}

// ReadCPDRows copies variable i's entire counter state — all J_i·K_i pair
// estimates and K_i parent estimates — into rows under a single acquisition
// of i's stripe lock, replacing the 2·J_i·K_i per-cell lock round-trips of
// the historical query path. The copies are mutually consistent against
// in-flight updates. Estimates are raw; apply Config.Smoothing downstream
// as (Pair[c]+s)/(Par[pidx]+s·J_i).
func (t *Tracker) ReadCPDRows(i int, rows *CPDRows) {
	t.FlushDeltas()
	j, k := t.net.Card(i), t.net.ParentCard(i)
	rows.Pair = growFloats(rows.Pair, j*k)
	rows.Par = growFloats(rows.Par, k)
	sh := t.stripeOf(i)
	sh.mu.Lock()
	t.readRowsLocked(i, rows.Pair, rows.Par)
	sh.mu.Unlock()
}

// growFloats returns s resized to n cells, reallocating only when needed.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// readRowsLocked copies variable i's raw estimates into pair (len J_i·K_i)
// and par (len K_i) with one kind-specialized bulk read per bank
// (counter.Bank.EstimateRange) — the vectorized half of the snapshot
// rebuild, which walks every CPT cell (munin: ~80k). Callers must hold i's
// stripe lock.
func (t *Tracker) readRowsLocked(i int, pair, par []float64) {
	t.pair[i].EstimateRange(0, len(pair), pair)
	t.par[i].EstimateRange(0, len(par), par)
}

// modelSnapshot is one consistent-enough view of every CPD factor, built by
// batched per-stripe reads and shared by the structured query paths.
//
// Invalidation rules: factors[i] holds the smoothed factor of every cell of
// variable i, read under i's stripe lock together with that stripe's
// version. A snapshot is current while every stripe's live version equals
// the recorded one; any mutation bumps its stripe's version (under the
// stripe lock), so the next query rebuilds exactly the stripes that
// changed, reusing the rows of unchanged stripes. Published snapshots are
// immutable. Like the historical per-cell query path, a snapshot taken
// while a multi-stripe update is mid-flight may see earlier stripes
// post-event and later stripes pre-event; quiesce ingestion for a
// stream-position-exact view.
type modelSnapshot struct {
	// versions[s] is shards[s].version at the time stripe s's rows were
	// read (or inherited from the previous snapshot).
	versions []uint64
	// factors[i][pidx*J_i+v] is the smoothed cpdFactor value.
	factors [][]float64
	// model caches the normalized bn.Model built from factors
	// (EstimatedModel), populated lazily at most once per snapshot.
	model atomic.Pointer[bn.Model]
	// version identifies the counter state this snapshot was built from:
	// the sum of the per-stripe versions, monotone non-decreasing across
	// snapshots because every mutation bumps exactly one stripe version.
	// builtAt records when the rows were read. Both are surfaced to the
	// serving layer (Snapshot.Version/BuiltAt) so every query reply can say
	// how fresh its snapshot is.
	version uint64
	builtAt time.Time

	// refs counts live references: one held by the tracker's cache slot
	// while this is the published snapshot, plus one per in-flight query.
	// When it drops to zero the snapshot is retired and its owned rows are
	// recycled through the tracker's rowPool. Readers take references with
	// Tracker.acquireSnap (a CAS loop that refuses retired snapshots) and
	// drop them with Tracker.releaseSnap.
	refs atomic.Int32
	// inherited[i] marks rows whose ownership was handed to the successor
	// snapshot (set under rebuildMu, strictly before the cache reference is
	// dropped): retirement recycles only the rows this snapshot still owns.
	inherited []bool
	// boxes[i] is the pooled *[]float64 backing factors[i], kept so
	// retirement can Put the same pointer back without re-boxing the slice
	// header (a Put(&row) would allocate, costing what pooling saves).
	boxes []*[]float64
}

// acquireSnap takes a read reference on the cached snapshot, or returns nil
// when none is published. The CAS loop refuses snapshots that retired
// between the load and the increment — their rows may already be recycled —
// and retries against the freshly published successor.
func (t *Tracker) acquireSnap() *modelSnapshot {
	for {
		s := t.snap.Load()
		if s == nil {
			return nil
		}
		r := s.refs.Load()
		if r == 0 {
			continue // retired under us; the cache slot has moved on
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return s
		}
	}
}

// releaseSnap drops a reference taken by acquireSnap (or returned by
// snapshot/pointSnapshot); the final drop retires the snapshot and recycles
// the rows it still owns into the row pool.
func (t *Tracker) releaseSnap(s *modelSnapshot) {
	if s.refs.Add(-1) != 0 {
		return
	}
	for i, box := range s.boxes {
		if !s.inherited[i] {
			t.rowPools[i].Put(box)
		}
	}
}

// getRow returns a pooled factor row for variable i with n cells (contents
// unspecified — snapshot building overwrites every cell).
func (t *Tracker) getRow(i, n int) *[]float64 {
	if p, ok := t.rowPools[i].Get().(*[]float64); ok {
		*p = (*p)[:n]
		return p
	}
	row := make([]float64, n)
	return &row
}

// snapFresh reports whether snap matches every stripe's live version.
func (t *Tracker) snapFresh(snap *modelSnapshot) bool {
	for s := range t.shards {
		if snap.versions[s] != t.shards[s].version.Load() {
			return false
		}
	}
	return true
}

// staleQueryRebuildThreshold is how many point queries are served through
// the per-cell path after the cached snapshot goes stale before the next
// one pays for a rebuild. A rebuild reads every CPT cell while a point
// query reads ~2n, so alternating update/query workloads should keep the
// cheap per-cell cost, while a burst of queries against one training state
// quickly converges to the zero-lock cached snapshot.
const staleQueryRebuildThreshold = 3

// pointSnapshot returns the snapshot a point query (QueryProb,
// QuerySubsetProb, Classify) should read — with a reference held, which the
// caller must drop with releaseSnap — or nil when the query should fall
// back to per-cell cpdFactor reads: always for CounterFactory trackers
// (their counters can change out of band, so a cache would go stale
// silently and a per-query rebuild would read far more cells than the query
// touches), and for the first few queries after the cached snapshot goes
// stale (see staleQueryRebuildThreshold). Both paths produce bit-identical
// answers.
func (t *Tracker) pointSnapshot() *modelSnapshot {
	t.FlushDeltas() // barrier first, so a "fresh" cache can't hide parked deltas
	if t.cfg.CounterFactory != nil {
		return nil
	}
	if s := t.acquireSnap(); s != nil {
		if t.snapFresh(s) {
			return s
		}
		t.releaseSnap(s)
	}
	if t.staleQueries.Add(1) <= staleQueryRebuildThreshold {
		return nil
	}
	return t.snapshot()
}

// snapshot returns a current model snapshot with a reference held (drop it
// with releaseSnap), rebuilding only stripes whose version moved since the
// cached one was built. Rebuilds are serialized under rebuildMu — which also
// makes the row ownership hand-off to the successor snapshot safe — while
// the fresh-cache fast path stays lock-free. CounterFactory trackers always
// rebuild in full and never cache: factory counters may be mutated out of
// band (decay rotation), which the stripe versions cannot see.
func (t *Tracker) snapshot() *modelSnapshot {
	t.FlushDeltas()
	if t.cfg.CounterFactory != nil {
		return t.buildSnapshot(nil, false)
	}
	if s := t.acquireSnap(); s != nil {
		if t.snapFresh(s) {
			return s
		}
		t.releaseSnap(s)
	}
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	// Re-check under the rebuild lock: a concurrent query may have already
	// rebuilt. The cache slot's reference cannot be dropped while we hold
	// rebuildMu, so a plain increment is safe here.
	if old := t.snap.Load(); old != nil && t.snapFresh(old) {
		old.refs.Add(1)
		return old
	}
	return t.buildSnapshot(t.snap.Load(), true)
}

// buildSnapshot reads every stripe (reusing old's rows for unchanged
// stripes) and returns the new snapshot with the caller's reference held.
// When cacheable it also publishes the snapshot and retires old's cache
// reference; callers then hold rebuildMu.
func (t *Tracker) buildSnapshot(old *modelSnapshot, cacheable bool) *modelSnapshot {
	ns := &modelSnapshot{
		versions:  make([]uint64, len(t.shards)),
		factors:   make([][]float64, t.net.Len()),
		inherited: make([]bool, t.net.Len()),
		boxes:     make([]*[]float64, t.net.Len()),
	}
	var par []float64 // parent-row scratch shared across variables
	for s := range t.shards {
		sh := &t.shards[s]
		if old != nil {
			if v := sh.version.Load(); v == old.versions[s] {
				// Stripe unchanged since the cached snapshot: inherit its
				// immutable rows, transferring ownership so old's retirement
				// does not recycle them under us. (A concurrent mutation
				// after the load is caught by the next query's
				// revalidation.)
				for _, i := range sh.vars {
					ns.factors[i] = old.factors[i]
					ns.boxes[i] = old.boxes[i]
					old.inherited[i] = true
				}
				ns.versions[s] = v
				continue
			}
		}
		sh.mu.Lock()
		for _, i := range sh.vars {
			j, k := t.net.Card(i), t.net.ParentCard(i)
			box := t.getRow(i, j*k)
			row := *box
			par = growFloats(par, k)
			t.readRowsLocked(i, row, par)
			for pidx := 0; pidx < k; pidx++ {
				den := par[pidx]
				for v := 0; v < j; v++ {
					c := pidx*j + v
					row[c] = smoothedFactor(row[c], den, t.cfg.Smoothing, j)
				}
			}
			ns.factors[i] = row
			ns.boxes[i] = box
		}
		ns.versions[s] = sh.version.Load() // under mu: stable
		sh.mu.Unlock()
	}
	for _, v := range ns.versions {
		ns.version += v
	}
	ns.builtAt = time.Now()
	if cacheable {
		ns.refs.Store(2) // the cache slot plus the returning caller
		t.snap.Store(ns)
		if old != nil {
			t.releaseSnap(old) // drop the cache slot's reference
		}
		t.staleQueries.Store(0)
	} else {
		ns.refs.Store(1)
	}
	return ns
}

// invalidateSnapshotLocked drops the cached snapshot and bumps every stripe
// version so in-flight revalidations miss (used by LoadState). Callers hold
// rebuildMu — and must acquire it BEFORE any stripe lock: snapshot rebuilds
// take rebuildMu first and then the stripe locks, so the reverse order
// deadlocks against a concurrent query.
func (t *Tracker) invalidateSnapshotLocked() {
	for s := range t.shards {
		t.shards[s].version.Add(1)
	}
	if old := t.snap.Swap(nil); old != nil {
		t.releaseSnap(old)
	}
}

// QueryProb answers a joint-probability query for the full assignment x
// (Algorithm 3): Π_i A_i(x_i, x_i^par) / A_i(x_i^par). With no smoothing and
// an unseen parent configuration the result is 0. Served from the cached
// model snapshot when one is current, per-cell otherwise (see Tracker's
// type comment and pointSnapshot); both paths are bit-identical.
func (t *Tracker) QueryProb(x []int) float64 {
	snap := t.pointSnapshot()
	if snap != nil {
		defer t.releaseSnap(snap)
	}
	p := 1.0
	for i := 0; i < t.net.Len(); i++ {
		if snap != nil {
			p *= snap.factors[i][t.net.ParentIndex(i, x)*t.net.Card(i)+x[i]]
		} else {
			p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
		}
	}
	return p
}

// QuerySubsetProb estimates the marginal probability of x restricted to an
// ancestrally closed variable set (see bn.Network.AncestralClosure), which
// factorizes exactly over the member CPDs.
func (t *Tracker) QuerySubsetProb(set []int, x []int) float64 {
	snap := t.pointSnapshot()
	if snap != nil {
		defer t.releaseSnap(snap)
	}
	p := 1.0
	for _, i := range set {
		if snap != nil {
			p *= snap.factors[i][t.net.ParentIndex(i, x)*t.net.Card(i)+x[i]]
		} else {
			p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
		}
	}
	return p
}

// QueryCPD estimates the single CPD entry P[X_i = v | parent config pidx]
// with a live per-cell read (no snapshot involved).
func (t *Tracker) QueryCPD(i, v, pidx int) float64 {
	t.FlushDeltas()
	return t.cpdFactor(i, v, pidx)
}

// Classify returns argmax_y of the tracked P[X_target = y | x_{-target}]
// (the approximate Bayesian classification of Definition 4). Only the
// factors in the target's Markov blanket are scanned, all read from one
// model snapshot. Ties break toward the smaller value. The scratch cell
// x[target] is restored before returning, so concurrent callers must each
// pass their own x slice.
func (t *Tracker) Classify(target int, x []int) int {
	snap := t.pointSnapshot()
	if snap != nil {
		defer t.releaseSnap(snap)
	}
	saved := x[target]
	defer func() { x[target] = saved }()

	factor := func(i, v int) float64 {
		pidx := t.net.ParentIndex(i, x)
		if snap != nil {
			return snap.factors[i][pidx*t.net.Card(i)+v]
		}
		return t.cpdFactor(i, v, pidx)
	}
	best, bestScore := 0, math.Inf(-1)
	for y := 0; y < t.net.Card(target); y++ {
		x[target] = y
		score := logOrNegInf(factor(target, y))
		for _, c := range t.net.Children(target) {
			score += logOrNegInf(factor(c, x[c]))
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return best
}

func logOrNegInf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// EstimatedModel snapshots the tracked parameters into a bn.Model. Rows whose
// parent configuration has no mass become uniform. The snapshot normalizes
// each row (tracked ratios need not sum to exactly 1 under approximation).
// The model is built at most once per counter-state snapshot and shared by
// subsequent calls (and by InferMarginal/ClassifyPartial) until ingestion
// advances; treat it as read-only.
func (t *Tracker) EstimatedModel() (*bn.Model, error) {
	snap := t.snapshot()
	defer t.releaseSnap(snap)
	return snap.normalizedModel(t.net)
}

// normalizedModel returns the snapshot's cached bn.Model, building and
// publishing it on first use — shared by EstimatedModel and the serving
// layer's Snapshot.Model. Callers must hold a reference on the snapshot.
func (s *modelSnapshot) normalizedModel(net *bn.Network) (*bn.Model, error) {
	if m := s.model.Load(); m != nil {
		return m, nil
	}
	m, err := bn.NewNormalizedModel(net, func(i int, tbl []float64) {
		copy(tbl, s.factors[i])
	})
	if err != nil {
		return nil, err
	}
	s.model.Store(m)
	return m, nil
}

// ExactCount returns the true (not estimated) pair and parent counts for a
// cell; used by evaluation code to compute the exact-MLE reference from the
// same tracker run. Both counts are read under the variable's stripe lock.
func (t *Tracker) ExactCount(i, v, pidx int) (pairCount, parCount int64) {
	t.FlushDeltas()
	sh := t.stripeOf(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return t.pair[i].Exact(pidx*t.net.Card(i) + v), t.par[i].Exact(pidx)
}

// InferMarginal answers an arbitrary marginal query P[assign] against the
// tracked model by snapshotting the current parameters (EstimatedModel) and
// running exact variable-elimination inference. The snapshot — including
// the normalized model — is cached between ingest flushes, so issuing many
// marginal queries against the same training state no longer rebuilds the
// model per call.
func (t *Tracker) InferMarginal(assign map[int]int) (float64, error) {
	m, err := t.EstimatedModel()
	if err != nil {
		return 0, err
	}
	return m.MarginalProb(assign)
}

// ClassifyPartial predicts argmax_y P[X_target = y | evidence] when only a
// subset of the other variables is observed (the general Bayesian
// classification setting; Classify handles the fully observed case much
// faster). It snapshots the tracked parameters and runs exact
// variable-elimination inference, so it is exponential in the treewidth —
// intended for moderate networks or small unobserved sets.
func (t *Tracker) ClassifyPartial(target int, evidence map[int]int) (int, error) {
	if target < 0 || target >= t.net.Len() {
		return 0, fmt.Errorf("core: target %d out of range", target)
	}
	if _, ok := evidence[target]; ok {
		return 0, fmt.Errorf("core: target %d appears in evidence", target)
	}
	m, err := t.EstimatedModel()
	if err != nil {
		return 0, err
	}
	best, bestP := 0, -1.0
	for y := 0; y < t.net.Card(target); y++ {
		q := map[int]int{target: y}
		p, err := m.ConditionalProb(q, evidence)
		if err != nil {
			return 0, err
		}
		if p > bestP {
			best, bestP = y, p
		}
	}
	return best, nil
}
