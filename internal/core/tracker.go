package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"distbayes/internal/bn"
	"distbayes/internal/counter"
)

// Config parameterizes a Tracker.
type Config struct {
	// Strategy selects the algorithm (EXACTMLE/BASELINE/UNIFORM/NONUNIFORM/
	// NAIVEBAYES).
	Strategy Strategy
	// Eps is the total approximation budget ε of Definition 2, 0 < ε < 1.
	// Ignored by ExactMLE.
	Eps float64
	// Delta is the failure probability δ. As in the paper's evaluation it is
	// carried to the counters but a single instance is run (the median
	// amplification of Theorem 1 is analysis only).
	Delta float64
	// Sites is k, the number of distributed sites.
	Sites int
	// Seed makes the randomized counters reproducible.
	Seed uint64
	// Counter selects the distributed-counter protocol (default HYZCounter).
	Counter CounterKind
	// Smoothing is a Laplace pseudo-count applied in queries and
	// classification: each CPD cell behaves as (A+s)/(Apar+s·J_i). Zero (the
	// default) reproduces the paper's unsmoothed estimator.
	Smoothing float64
	// CounterFactory, if non-nil, overrides counter construction for every
	// strategy (the time-decay extension plugs in here). eps is the
	// allocated error parameter of the counter; it is 0 for ExactMLE. The
	// rng argument is the lock stripe's generator: counters built from it
	// are only ever driven under that stripe's lock. The tracker's
	// concurrent-use guarantee extends to factory counters only if all
	// their mutation happens inside Inc; a factory whose counters are also
	// mutated out of band (e.g. the decay banks' Tick/rotate) requires
	// ingestion to be quiesced around those external mutations.
	CounterFactory func(eps float64, metrics *counter.Metrics, rng *bn.RNG) (counter.Counter, error)
	// Shards is the number of lock stripes of the concurrent ingestion
	// engine. Variable i's counter banks belong to stripe i mod Shards, and
	// every stripe owns an independent RNG. 0 and 1 both mean a single
	// stripe, which keeps one global update order and one RNG and therefore
	// reproduces the historical sequential tracker exactly (same counts,
	// same message tallies, same query answers for a fixed seed and event
	// order). Shards > 1 lets concurrent updates proceed on different
	// stripes in parallel; exact counts stay exact, but randomized-counter
	// message schedules become interleaving-dependent.
	Shards int
}

func (c Config) validate() error {
	if c.Strategy != ExactMLE {
		if !(c.Eps > 0 && c.Eps < 1) {
			return fmt.Errorf("core: eps = %v, want 0 < eps < 1", c.Eps)
		}
	}
	if c.Sites < 1 {
		return fmt.Errorf("core: sites = %d, want >= 1", c.Sites)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("core: smoothing = %v, want >= 0", c.Smoothing)
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("core: delta = %v, want 0 <= delta < 1", c.Delta)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shards = %d, want >= 0", c.Shards)
	}
	return nil
}

// Event is one training observation routed to a site — the unit of the
// batched (UpdateEvents) and channel (Ingest) ingestion APIs.
type Event struct {
	// Site is the receiving site in [0, Config.Sites).
	Site int
	// X is the full observed assignment. The tracker only reads it for the
	// duration of the ingesting call; producers that hand events to another
	// goroutine must give each event its own backing array (see
	// stream.Training.NextEvents).
	X []int
}

// Tracker continuously maintains an approximation of the MLE of a Bayesian
// network's parameters over a distributed stream (Algorithms 1-3). It is the
// coordinator-plus-sites simulation; messages are tallied per counter update
// as in the paper's experiments.
//
// Concurrency model: all ingestion entry points (Update, UpdateBatch,
// UpdateEvents, Ingest) and all query entry points (QueryProb, QueryCPD,
// Classify, ExactCount, EstimatedModel, ...) are safe to call from multiple
// goroutines. Counter banks are partitioned into Config.Shards lock stripes
// by variable index; an update walks the stripes in ascending order, so two
// concurrent updates pipeline across stripes instead of serializing.
// Concurrent queries must not share mutable arguments — Classify scratches
// x[target] in the caller's slice, so each goroutine needs its own x.
// External quiescence is required only for SaveState/LoadState (stripe
// locking excludes torn counter reads, but a mid-flight multi-stripe update
// can be captured half-applied — see SaveState) and for out-of-band
// mutation of CounterFactory counters such as the decay banks' Tick (see
// Config.CounterFactory).
type Tracker struct {
	// metrics is first so its int64 tallies are 64-bit aligned for the
	// atomic ops even on 32-bit platforms (the first word of an allocated
	// struct is guaranteed aligned).
	metrics counter.Metrics
	events  atomic.Int64

	net   *bn.Network
	cfg   Config
	alloc Allocation

	// shards[s] guards the counter banks of the variables in shards[s].vars
	// (those with i % len(shards) == s). Stripes are always acquired in
	// ascending order, so walks over multiple stripes cannot deadlock.
	shards []shard

	// pair[i] holds A_i(x_i, x_i^par), laid out pidx*J_i + x_i to match the
	// CPT layout of bn.CPT. par[i] holds A_i(x_i^par), indexed by pidx.
	pair [][]counter.Counter
	par  [][]counter.Counter

	scratch sync.Pool // *[]int32 parent-index buffers for batched ingestion
}

// shard is one lock stripe: a mutex, the stripe-local RNG feeding the
// randomized counters that live here, and the owned variable indices in
// ascending order.
type shard struct {
	mu   sync.Mutex
	rng  *bn.RNG
	vars []int
}

// numShards normalizes Config.Shards (0 means 1).
func (c Config) numShards() int {
	if c.Shards <= 1 {
		return 1
	}
	return c.Shards
}

// NewTracker builds the counter banks for net per Algorithm 1 (INIT).
func NewTracker(net *bn.Network, cfg Config) (*Tracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alloc, err := Allocate(net, cfg.Strategy, cfg.Eps)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		net:   net,
		cfg:   cfg,
		alloc: alloc,
		pair:  make([][]counter.Counter, net.Len()),
		par:   make([][]counter.Counter, net.Len()),
	}
	nShards := cfg.numShards()
	if nShards > net.Len() && net.Len() > 0 {
		nShards = net.Len() // more stripes than variables buys nothing
	}
	t.shards = make([]shard, nShards)
	// Stripe 0 keeps the historical sequential RNG (seeded cfg.Seed), which
	// is what makes Shards ≤ 1 bit-identical to the old tracker.
	t.shards[0].rng = bn.NewRNG(cfg.Seed)
	for s := 1; s < nShards; s++ {
		// Derive independent stripe generators from the seed (splitmix-style
		// offset keeps them decorrelated from stripe 0 and each other).
		t.shards[s].rng = bn.NewRNG(cfg.Seed + uint64(s)*0x9e3779b97f4a7c15)
	}
	for i := 0; i < net.Len(); i++ {
		sh := &t.shards[i%nShards]
		sh.vars = append(sh.vars, i)
		j, k := net.Card(i), net.ParentCard(i)
		t.pair[i] = make([]counter.Counter, j*k)
		for c := range t.pair[i] {
			t.pair[i][c], err = t.newCounter(alloc.EpsA[i], sh.rng)
			if err != nil {
				return nil, err
			}
		}
		t.par[i] = make([]counter.Counter, k)
		for c := range t.par[i] {
			t.par[i][c], err = t.newCounter(alloc.EpsB[i], sh.rng)
			if err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func (t *Tracker) newCounter(eps float64, rng *bn.RNG) (counter.Counter, error) {
	if t.cfg.CounterFactory != nil {
		return t.cfg.CounterFactory(eps, &t.metrics, rng)
	}
	if t.cfg.Strategy == ExactMLE {
		return counter.NewExact(&t.metrics), nil
	}
	switch t.cfg.Counter {
	case HYZCounter:
		return counter.NewHYZ(t.cfg.Sites, eps, t.cfg.Delta, &t.metrics, rng)
	case DeterministicCounter:
		return counter.NewDeterministic(t.cfg.Sites, eps, &t.metrics)
	default:
		return nil, fmt.Errorf("core: unknown counter kind %d", t.cfg.Counter)
	}
}

// stripeOf returns the lock stripe owning variable i's counter banks.
func (t *Tracker) stripeOf(i int) *shard { return &t.shards[i%len(t.shards)] }

// lockAll acquires every stripe in ascending order (checkpointing).
func (t *Tracker) lockAll() {
	for s := range t.shards {
		t.shards[s].mu.Lock()
	}
}

func (t *Tracker) unlockAll() {
	for s := range t.shards {
		t.shards[s].mu.Unlock()
	}
}

// Network returns the structure the tracker was built for.
func (t *Tracker) Network() *bn.Network { return t.net }

// Config returns the tracker's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Allocation returns the per-variable counter error parameters in use.
func (t *Tracker) Allocation() Allocation { return t.alloc }

// Events returns the number of training observations processed.
func (t *Tracker) Events() int64 { return t.events.Load() }

// Messages returns a snapshot of the protocol messages exchanged so far;
// safe to call while ingestion is in flight.
func (t *Tracker) Messages() counter.Metrics { return t.metrics.Snapshot() }

func (t *Tracker) checkSite(site int) {
	if site < 0 || site >= t.cfg.Sites {
		panic(fmt.Sprintf("core: site %d out of range [0,%d)", site, t.cfg.Sites))
	}
}

// Update records one training observation x received at the given site
// (Algorithm 2): for every variable the pair counter and the parent counter
// of the observed configuration are incremented. Safe for concurrent use;
// with a single stripe, concurrent callers serialize in arrival order.
func (t *Tracker) Update(site int, x []int) {
	t.checkSite(site)
	if len(t.shards) == 1 {
		// Single stripe: hoisting parent indices buys no parallelism (the
		// lock must be held for every variable anyway), so keep the
		// historical zero-overhead inline loop.
		sh := &t.shards[0]
		sh.mu.Lock()
		for i := 0; i < t.net.Len(); i++ {
			pidx := t.net.ParentIndex(i, x)
			t.pair[i][pidx*t.net.Card(i)+x[i]].Inc(site)
			t.par[i][pidx].Inc(site)
		}
		sh.mu.Unlock()
	} else {
		// Multi-stripe: share the batched engine's hoist-then-walk logic
		// (single-event chunk) so there is one copy of the striping code.
		t.applyChunk(0, 1, func(int) []int { return x }, func(int) int { return site })
	}
	t.events.Add(1)
}

// getScratch returns a parent-index buffer with at least n cells.
func (t *Tracker) getScratch(n int) []int32 {
	if p, ok := t.scratch.Get().(*[]int32); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}

func (t *Tracker) putScratch(buf []int32) { t.scratch.Put(&buf) }

// applyIndexed is the batched ingestion engine shared by UpdateBatch,
// UpdateEvents and Ingest. The goroutine-local phase computes every event's
// parent indices with no lock held (this is the bulk of the per-event CPU
// work and parallelizes perfectly across producers); the merge phase then
// walks the stripes in ascending order and, under each stripe's lock, replays
// the batch's increments for the variables that stripe owns. With one stripe
// this reproduces the sequential per-event update order exactly.
func (t *Tracker) applyIndexed(m int, xAt func(int) []int, siteAt func(int) int) {
	if m == 0 {
		return
	}
	// Process huge batches in bounded chunks so the scratch buffer (and the
	// pooled slab it leaves behind) stays small regardless of batch size.
	// Chunking preserves per-event order within each stripe, so the
	// single-stripe sequential equivalence is unaffected.
	const maxChunk = 4096
	for lo := 0; lo < m; lo += maxChunk {
		t.applyChunk(lo, min(lo+maxChunk, m), xAt, siteAt)
	}
	t.events.Add(int64(m))
}

func (t *Tracker) applyChunk(lo, hi int, xAt func(int) []int, siteAt func(int) int) {
	n := t.net.Len()
	idx := t.getScratch((hi - lo) * n)
	for e := lo; e < hi; e++ {
		x := xAt(e)
		row := idx[(e-lo)*n : (e-lo)*n+n]
		for i := 0; i < n; i++ {
			row[i] = int32(t.net.ParentIndex(i, x))
		}
	}
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for e := lo; e < hi; e++ {
			x, site := xAt(e), siteAt(e)
			row := idx[(e-lo)*n : (e-lo)*n+n]
			for _, i := range sh.vars {
				pidx := int(row[i])
				t.pair[i][pidx*t.net.Card(i)+x[i]].Inc(site)
				t.par[i][pidx].Inc(site)
			}
		}
		sh.mu.Unlock()
	}
	t.putScratch(idx)
}

// UpdateBatch records a batch of observations all received at the same site,
// amortizing lock traffic over the batch (one stripe acquisition per stripe
// per batch instead of per event). Safe for concurrent use.
func (t *Tracker) UpdateBatch(site int, events [][]int) {
	t.checkSite(site)
	t.applyIndexed(len(events), func(e int) []int { return events[e] }, func(int) int { return site })
}

// UpdateEvents records a batch of observations with per-event sites — the
// mixed-site sibling of UpdateBatch, used when one pump drains a stream that
// interleaves all sites. Safe for concurrent use.
func (t *Tracker) UpdateEvents(events []Event) {
	for i := range events {
		t.checkSite(events[i].Site)
	}
	t.applyIndexed(len(events), func(e int) []int { return events[e].X }, func(e int) int { return events[e].Site })
}

// Ingest pumps events from the channel into the tracker until the channel is
// closed (returning a nil error) or ctx is canceled (returning ctx.Err()).
// Events are drained opportunistically into batches so a fast producer pays
// batched-ingestion cost rather than per-event lock traffic. Multiple Ingest
// pumps may run concurrently on one tracker; the count of events this pump
// ingested is returned either way.
func (t *Tracker) Ingest(ctx context.Context, events <-chan Event) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	const maxBatch = 256
	done := ctx.Done()
	batch := make([]Event, 0, maxBatch)
	var ingested int64
	flush := func() {
		t.UpdateEvents(batch)
		ingested += int64(len(batch))
		batch = batch[:0]
	}
	for {
		select {
		case <-done:
			return ingested, ctx.Err()
		case ev, ok := <-events:
			if !ok {
				return ingested, nil
			}
			batch = append(batch, ev)
		}
	drain:
		for len(batch) < maxBatch {
			select {
			case ev, ok := <-events:
				if !ok {
					flush()
					return ingested, nil
				}
				batch = append(batch, ev)
			default:
				break drain
			}
		}
		flush()
	}
}

// cpdFactor returns the tracked estimate of P[x_i = v | parent config pidx],
// with the configured smoothing. The pair and parent counters are read under
// their stripe's lock so the ratio is consistent against in-flight updates.
func (t *Tracker) cpdFactor(i, v, pidx int) float64 {
	ji := t.net.Card(i)
	sh := t.stripeOf(i)
	sh.mu.Lock()
	num := t.pair[i][pidx*ji+v].Estimate()
	den := t.par[i][pidx].Estimate()
	sh.mu.Unlock()
	num += t.cfg.Smoothing
	den += t.cfg.Smoothing * float64(ji)
	if den <= 0 {
		return 0
	}
	return num / den
}

// QueryProb answers a joint-probability query for the full assignment x
// (Algorithm 3): Π_i A_i(x_i, x_i^par) / A_i(x_i^par). With no smoothing and
// an unseen parent configuration the result is 0.
func (t *Tracker) QueryProb(x []int) float64 {
	p := 1.0
	for i := 0; i < t.net.Len(); i++ {
		p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
	}
	return p
}

// QuerySubsetProb estimates the marginal probability of x restricted to an
// ancestrally closed variable set (see bn.Network.AncestralClosure), which
// factorizes exactly over the member CPDs.
func (t *Tracker) QuerySubsetProb(set []int, x []int) float64 {
	p := 1.0
	for _, i := range set {
		p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
	}
	return p
}

// QueryCPD estimates the single CPD entry P[X_i = v | parent config pidx].
func (t *Tracker) QueryCPD(i, v, pidx int) float64 { return t.cpdFactor(i, v, pidx) }

// Classify returns argmax_y of the tracked P[X_target = y | x_{-target}]
// (the approximate Bayesian classification of Definition 4). Only the
// factors in the target's Markov blanket are scanned. Ties break toward the
// smaller value. The scratch cell x[target] is restored before returning,
// so concurrent callers must each pass their own x slice.
func (t *Tracker) Classify(target int, x []int) int {
	saved := x[target]
	defer func() { x[target] = saved }()

	best, bestScore := 0, math.Inf(-1)
	for y := 0; y < t.net.Card(target); y++ {
		x[target] = y
		score := logOrNegInf(t.cpdFactor(target, y, t.net.ParentIndex(target, x)))
		for _, c := range t.net.Children(target) {
			score += logOrNegInf(t.cpdFactor(c, x[c], t.net.ParentIndex(c, x)))
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return best
}

func logOrNegInf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// EstimatedModel snapshots the tracked parameters into a bn.Model. Rows whose
// parent configuration has no mass become uniform. The snapshot normalizes
// each row (tracked ratios need not sum to exactly 1 under approximation).
func (t *Tracker) EstimatedModel() (*bn.Model, error) {
	cpds := make([]*bn.CPT, t.net.Len())
	for i := 0; i < t.net.Len(); i++ {
		j, k := t.net.Card(i), t.net.ParentCard(i)
		tbl := make([]float64, j*k)
		for pidx := 0; pidx < k; pidx++ {
			sum := 0.0
			for v := 0; v < j; v++ {
				f := t.cpdFactor(i, v, pidx)
				if f < 0 {
					f = 0
				}
				tbl[pidx*j+v] = f
				sum += f
			}
			if sum <= 0 {
				for v := 0; v < j; v++ {
					tbl[pidx*j+v] = 1 / float64(j)
				}
			} else {
				for v := 0; v < j; v++ {
					tbl[pidx*j+v] /= sum
				}
			}
		}
		var err error
		cpds[i], err = bn.NewCPT(j, k, tbl)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot CPD %d: %w", i, err)
		}
	}
	return bn.NewModel(t.net, cpds)
}

// ExactCount returns the true (not estimated) pair and parent counts for a
// cell; used by evaluation code to compute the exact-MLE reference from the
// same tracker run. Both counts are read under the variable's stripe lock.
func (t *Tracker) ExactCount(i, v, pidx int) (pairCount, parCount int64) {
	sh := t.stripeOf(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return t.pair[i][pidx*t.net.Card(i)+v].Exact(), t.par[i][pidx].Exact()
}

// InferMarginal answers an arbitrary marginal query P[assign] against the
// tracked model by snapshotting the current parameters (EstimatedModel) and
// running exact variable-elimination inference. The snapshot is rebuilt per
// call; cache the EstimatedModel directly when issuing many queries against
// the same training state.
func (t *Tracker) InferMarginal(assign map[int]int) (float64, error) {
	m, err := t.EstimatedModel()
	if err != nil {
		return 0, err
	}
	return m.MarginalProb(assign)
}

// ClassifyPartial predicts argmax_y P[X_target = y | evidence] when only a
// subset of the other variables is observed (the general Bayesian
// classification setting; Classify handles the fully observed case much
// faster). It snapshots the tracked parameters and runs exact
// variable-elimination inference, so it is exponential in the treewidth —
// intended for moderate networks or small unobserved sets.
func (t *Tracker) ClassifyPartial(target int, evidence map[int]int) (int, error) {
	if target < 0 || target >= t.net.Len() {
		return 0, fmt.Errorf("core: target %d out of range", target)
	}
	if _, ok := evidence[target]; ok {
		return 0, fmt.Errorf("core: target %d appears in evidence", target)
	}
	m, err := t.EstimatedModel()
	if err != nil {
		return 0, err
	}
	best, bestP := 0, -1.0
	for y := 0; y < t.net.Card(target); y++ {
		q := map[int]int{target: y}
		p, err := m.ConditionalProb(q, evidence)
		if err != nil {
			return 0, err
		}
		if p > bestP {
			best, bestP = y, p
		}
	}
	return best, nil
}
