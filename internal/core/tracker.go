package core

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
	"distbayes/internal/counter"
)

// Config parameterizes a Tracker.
type Config struct {
	// Strategy selects the algorithm (EXACTMLE/BASELINE/UNIFORM/NONUNIFORM/
	// NAIVEBAYES).
	Strategy Strategy
	// Eps is the total approximation budget ε of Definition 2, 0 < ε < 1.
	// Ignored by ExactMLE.
	Eps float64
	// Delta is the failure probability δ. As in the paper's evaluation it is
	// carried to the counters but a single instance is run (the median
	// amplification of Theorem 1 is analysis only).
	Delta float64
	// Sites is k, the number of distributed sites.
	Sites int
	// Seed makes the randomized counters reproducible.
	Seed uint64
	// Counter selects the distributed-counter protocol (default HYZCounter).
	Counter CounterKind
	// Smoothing is a Laplace pseudo-count applied in queries and
	// classification: each CPD cell behaves as (A+s)/(Apar+s·J_i). Zero (the
	// default) reproduces the paper's unsmoothed estimator.
	Smoothing float64
	// CounterFactory, if non-nil, overrides counter construction for every
	// strategy (the time-decay extension plugs in here). eps is the
	// allocated error parameter of the counter; it is 0 for ExactMLE.
	CounterFactory func(eps float64, metrics *counter.Metrics, rng *bn.RNG) (counter.Counter, error)
}

func (c Config) validate() error {
	if c.Strategy != ExactMLE {
		if !(c.Eps > 0 && c.Eps < 1) {
			return fmt.Errorf("core: eps = %v, want 0 < eps < 1", c.Eps)
		}
	}
	if c.Sites < 1 {
		return fmt.Errorf("core: sites = %d, want >= 1", c.Sites)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("core: smoothing = %v, want >= 0", c.Smoothing)
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("core: delta = %v, want 0 <= delta < 1", c.Delta)
	}
	return nil
}

// Tracker continuously maintains an approximation of the MLE of a Bayesian
// network's parameters over a distributed stream (Algorithms 1-3). It is the
// coordinator-plus-sites simulation; messages are tallied per counter update
// as in the paper's experiments. Not safe for concurrent use.
type Tracker struct {
	net   *bn.Network
	cfg   Config
	alloc Allocation

	metrics counter.Metrics
	rng     *bn.RNG

	// pair[i] holds A_i(x_i, x_i^par), laid out pidx*J_i + x_i to match the
	// CPT layout of bn.CPT. par[i] holds A_i(x_i^par), indexed by pidx.
	pair [][]counter.Counter
	par  [][]counter.Counter

	events int64
}

// NewTracker builds the counter banks for net per Algorithm 1 (INIT).
func NewTracker(net *bn.Network, cfg Config) (*Tracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alloc, err := Allocate(net, cfg.Strategy, cfg.Eps)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		net:   net,
		cfg:   cfg,
		alloc: alloc,
		rng:   bn.NewRNG(cfg.Seed),
		pair:  make([][]counter.Counter, net.Len()),
		par:   make([][]counter.Counter, net.Len()),
	}
	for i := 0; i < net.Len(); i++ {
		j, k := net.Card(i), net.ParentCard(i)
		t.pair[i] = make([]counter.Counter, j*k)
		for c := range t.pair[i] {
			t.pair[i][c], err = t.newCounter(alloc.EpsA[i])
			if err != nil {
				return nil, err
			}
		}
		t.par[i] = make([]counter.Counter, k)
		for c := range t.par[i] {
			t.par[i][c], err = t.newCounter(alloc.EpsB[i])
			if err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func (t *Tracker) newCounter(eps float64) (counter.Counter, error) {
	if t.cfg.CounterFactory != nil {
		return t.cfg.CounterFactory(eps, &t.metrics, t.rng)
	}
	if t.cfg.Strategy == ExactMLE {
		return counter.NewExact(&t.metrics), nil
	}
	switch t.cfg.Counter {
	case HYZCounter:
		return counter.NewHYZ(t.cfg.Sites, eps, t.cfg.Delta, &t.metrics, t.rng)
	case DeterministicCounter:
		return counter.NewDeterministic(t.cfg.Sites, eps, &t.metrics)
	default:
		return nil, fmt.Errorf("core: unknown counter kind %d", t.cfg.Counter)
	}
}

// Network returns the structure the tracker was built for.
func (t *Tracker) Network() *bn.Network { return t.net }

// Config returns the tracker's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Allocation returns the per-variable counter error parameters in use.
func (t *Tracker) Allocation() Allocation { return t.alloc }

// Events returns the number of training observations processed.
func (t *Tracker) Events() int64 { return t.events }

// Messages returns the protocol messages exchanged so far.
func (t *Tracker) Messages() counter.Metrics { return t.metrics }

// Update records one training observation x received at the given site
// (Algorithm 2): for every variable the pair counter and the parent counter
// of the observed configuration are incremented.
func (t *Tracker) Update(site int, x []int) {
	if site < 0 || site >= t.cfg.Sites {
		panic(fmt.Sprintf("core: site %d out of range [0,%d)", site, t.cfg.Sites))
	}
	for i := 0; i < t.net.Len(); i++ {
		pidx := t.net.ParentIndex(i, x)
		t.pair[i][pidx*t.net.Card(i)+x[i]].Inc(site)
		t.par[i][pidx].Inc(site)
	}
	t.events++
}

// cpdFactor returns the tracked estimate of P[x_i = v | parent config pidx],
// with the configured smoothing.
func (t *Tracker) cpdFactor(i, v, pidx int) float64 {
	ji := float64(t.net.Card(i))
	num := t.pair[i][pidx*t.net.Card(i)+v].Estimate() + t.cfg.Smoothing
	den := t.par[i][pidx].Estimate() + t.cfg.Smoothing*ji
	if den <= 0 {
		return 0
	}
	return num / den
}

// QueryProb answers a joint-probability query for the full assignment x
// (Algorithm 3): Π_i A_i(x_i, x_i^par) / A_i(x_i^par). With no smoothing and
// an unseen parent configuration the result is 0.
func (t *Tracker) QueryProb(x []int) float64 {
	p := 1.0
	for i := 0; i < t.net.Len(); i++ {
		p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
	}
	return p
}

// QuerySubsetProb estimates the marginal probability of x restricted to an
// ancestrally closed variable set (see bn.Network.AncestralClosure), which
// factorizes exactly over the member CPDs.
func (t *Tracker) QuerySubsetProb(set []int, x []int) float64 {
	p := 1.0
	for _, i := range set {
		p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
	}
	return p
}

// QueryCPD estimates the single CPD entry P[X_i = v | parent config pidx].
func (t *Tracker) QueryCPD(i, v, pidx int) float64 { return t.cpdFactor(i, v, pidx) }

// Classify returns argmax_y of the tracked P[X_target = y | x_{-target}]
// (the approximate Bayesian classification of Definition 4). Only the
// factors in the target's Markov blanket are scanned. Ties break toward the
// smaller value. The scratch cell x[target] is restored before returning.
func (t *Tracker) Classify(target int, x []int) int {
	saved := x[target]
	defer func() { x[target] = saved }()

	best, bestScore := 0, math.Inf(-1)
	for y := 0; y < t.net.Card(target); y++ {
		x[target] = y
		score := logOrNegInf(t.cpdFactor(target, y, t.net.ParentIndex(target, x)))
		for _, c := range t.net.Children(target) {
			score += logOrNegInf(t.cpdFactor(c, x[c], t.net.ParentIndex(c, x)))
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return best
}

func logOrNegInf(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// EstimatedModel snapshots the tracked parameters into a bn.Model. Rows whose
// parent configuration has no mass become uniform. The snapshot normalizes
// each row (tracked ratios need not sum to exactly 1 under approximation).
func (t *Tracker) EstimatedModel() (*bn.Model, error) {
	cpds := make([]*bn.CPT, t.net.Len())
	for i := 0; i < t.net.Len(); i++ {
		j, k := t.net.Card(i), t.net.ParentCard(i)
		tbl := make([]float64, j*k)
		for pidx := 0; pidx < k; pidx++ {
			sum := 0.0
			for v := 0; v < j; v++ {
				f := t.cpdFactor(i, v, pidx)
				if f < 0 {
					f = 0
				}
				tbl[pidx*j+v] = f
				sum += f
			}
			if sum <= 0 {
				for v := 0; v < j; v++ {
					tbl[pidx*j+v] = 1 / float64(j)
				}
			} else {
				for v := 0; v < j; v++ {
					tbl[pidx*j+v] /= sum
				}
			}
		}
		var err error
		cpds[i], err = bn.NewCPT(j, k, tbl)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot CPD %d: %w", i, err)
		}
	}
	return bn.NewModel(t.net, cpds)
}

// ExactCount returns the true (not estimated) pair and parent counts for a
// cell; used by evaluation code to compute the exact-MLE reference from the
// same tracker run.
func (t *Tracker) ExactCount(i, v, pidx int) (pairCount, parCount int64) {
	return t.pair[i][pidx*t.net.Card(i)+v].Exact(), t.par[i][pidx].Exact()
}

// InferMarginal answers an arbitrary marginal query P[assign] against the
// tracked model by snapshotting the current parameters (EstimatedModel) and
// running exact variable-elimination inference. The snapshot is rebuilt per
// call; cache the EstimatedModel directly when issuing many queries against
// the same training state.
func (t *Tracker) InferMarginal(assign map[int]int) (float64, error) {
	m, err := t.EstimatedModel()
	if err != nil {
		return 0, err
	}
	return m.MarginalProb(assign)
}

// ClassifyPartial predicts argmax_y P[X_target = y | evidence] when only a
// subset of the other variables is observed (the general Bayesian
// classification setting; Classify handles the fully observed case much
// faster). It snapshots the tracked parameters and runs exact
// variable-elimination inference, so it is exponential in the treewidth —
// intended for moderate networks or small unobserved sets.
func (t *Tracker) ClassifyPartial(target int, evidence map[int]int) (int, error) {
	if target < 0 || target >= t.net.Len() {
		return 0, fmt.Errorf("core: target %d out of range", target)
	}
	if _, ok := evidence[target]; ok {
		return 0, fmt.Errorf("core: target %d appears in evidence", target)
	}
	m, err := t.EstimatedModel()
	if err != nil {
		return 0, err
	}
	best, bestP := 0, -1.0
	for y := 0; y < t.net.Card(target); y++ {
		q := map[int]int{target: y}
		p, err := m.ConditionalProb(q, evidence)
		if err != nil {
			return 0, err
		}
		if p > bestP {
			best, bestP = y, p
		}
	}
	return best, nil
}
