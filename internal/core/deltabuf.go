package core

import (
	"slices"
	"sync"

	"distbayes/internal/counter"
)

// This file implements the delta-buffered (lock-free) ingestion mode of the
// tracker (Config.DeltaBuffered): instead of incrementing the shared counter
// banks under their stripe locks, each ingesting goroutine accumulates exact
// per-(cell, site) increment counts into a private DeltaBuffer and publishes
// it on a cadence — after Config.DeltaFlushEvents buffered events, at an
// explicit Flush, or at a query barrier (Tracker.FlushDeltas). A publish
// walks the stripes in ascending order and, under one lock acquisition per
// stripe, folds the buffer into the shared banks with counter.Bank.Merge,
// which replays the counter message protocol on the merged totals.
//
// Guarantees: exact counts are preserved under any interleaving (delta
// counts fold commutatively), and the randomized-counter (ε, δ) guarantee is
// kept — a merge corresponds to a coarser, batched interleaving of the same
// increment multiset, the same interleaving-dependence already accepted for
// Shards > 1. What buffering gives up is immediacy: increments are invisible
// to queries, Events and Messages until published, which is why every
// structured read path starts with a FlushDeltas barrier (see tracker.go)
// and the parallel drivers flush before returning.
//
// Memory: a dense buffer (the default) holds one delta slice per counter
// bank, J_i·K_i·k plus K_i·k int64 cells for variable i — the same
// asymptotic footprint as the banks themselves, per buffer. Buffers are
// pooled (getDelta/putDelta) and registered with the tracker so a barrier
// can reach increments parked in a checked-in buffer.
//
// Config.DeltaSparse switches every buffer to a sparse touched-cell
// representation (sparseCells below): per bank, a map from touched cell to a
// slot in a compact slab of k-wide per-site rows, plus the list of touched
// cells. Accumulation costs one map lookup per (variable, bank) per event
// instead of a direct array index, but memory and flush work become
// proportional to the cells actually touched in the window rather than the
// whole bank — on munin-scale networks (~80k cells) a dense buffer mirrors
// tens of MB per goroutine and every flush scans it all, while a sparse
// buffer at a small cadence holds only the few thousand rows the window
// dirtied. A sparse flush sorts the touched cells ascending and folds them
// through counter.Bank.MergeCell, which visits cells in exactly the order
// the dense Bank.Merge would, so for identical flush points the two
// representations are bit-identical (pinned by
// TestSparseDeltaMatchesDense).

// defaultDeltaFlushEvents is the publish cadence when Config.DeltaFlushEvents
// is zero: small enough that queries after a barrier see near-current state,
// large enough to amortize the per-flush bank scan.
const defaultDeltaFlushEvents = 1024

// DeltaBuffer is one goroutine's private accumulation of exact-count
// increments against a delta-buffered tracker. Buffers are created with
// Tracker.NewDeltaBuffer, filled with Add/AddEvents, published with Flush
// and retired with Release. A buffer is safe for concurrent use (a query
// barrier may flush it while its owner is between batches), but the intended
// shape is one owner goroutine per buffer — the owner's accumulation then
// never contends.
type DeltaBuffer struct {
	t *Tracker

	// mu excludes the owner's accumulation against barrier flushes from
	// query/checkpoint paths. It is uncontended in steady state; orderings
	// that also take stripe locks always acquire mu first.
	mu sync.Mutex
	// pair[i]/par[i] mirror the tracker's banks for variable i: per-cell,
	// per-site increment counts indexed cell*Sites + site. Nil when the
	// buffer is sparse.
	pair, par [][]int64
	// spPair[i]/spPar[i] are the sparse touched-cell accumulators
	// (Config.DeltaSparse). Nil when the buffer is dense.
	spPair, spPar []sparseCells
	// events counts buffered, not-yet-published events.
	events int64
}

// sparseCells accumulates per-site increment deltas for the touched cells of
// one counter bank: rows is a compact slot-major slab (rows[slot*k+site]),
// slot maps a cell to its slab row, and dirty lists the touched cells so a
// flush can walk (and then zero) only what the window actually dirtied.
type sparseCells struct {
	slot  map[int32]int32
	dirty []int32
	rows  []int64
}

// add records one increment for (cell, site), claiming a zeroed slab row on
// the cell's first touch.
func (s *sparseCells) add(cell, site, k int) {
	sl, ok := s.slot[int32(cell)]
	if !ok {
		sl = int32(len(s.dirty))
		if s.slot == nil {
			s.slot = make(map[int32]int32)
		}
		s.slot[int32(cell)] = sl
		s.dirty = append(s.dirty, int32(cell))
		if need := (int(sl) + 1) * k; need <= cap(s.rows) {
			// Reclaimed slab space was zeroed by the last reset.
			s.rows = s.rows[:need]
		} else {
			s.rows = append(s.rows, make([]int64, k)...)
		}
	}
	s.rows[int(sl)*k+site]++
}

// mergeInto folds the touched cells into bank in ascending cell order — the
// order the dense Bank.Merge walks. Call reset afterwards (outside the
// stripe lock) to clear the accumulator.
func (s *sparseCells) mergeInto(bank *counter.Bank, k int) {
	if len(s.dirty) == 0 {
		return
	}
	slices.Sort(s.dirty)
	for _, cell := range s.dirty {
		lo := int(s.slot[cell]) * k
		bank.MergeCell(int(cell), s.rows[lo:lo+k])
	}
}

// reset zeroes the used slab rows and forgets the touched cells, keeping the
// backing storage for the next window.
func (s *sparseCells) reset() {
	if len(s.dirty) == 0 {
		return
	}
	clear(s.rows)
	s.rows = s.rows[:0]
	s.dirty = s.dirty[:0]
	clear(s.slot)
}

// NewDeltaBuffer creates an empty delta buffer and registers it with the
// tracker so FlushDeltas barriers can publish it. Callers that ingest
// through explicit buffers (e.g. one per driver goroutine) must Release the
// buffer when done; the implicit entry points recycle buffers through an
// internal free list instead. Buffers work regardless of Config.DeltaBuffered,
// but only a delta-buffered tracker barriers its query paths — against an
// unbuffered tracker the caller owns flush timing entirely.
func (t *Tracker) NewDeltaBuffer() *DeltaBuffer {
	d := &DeltaBuffer{t: t}
	if t.cfg.DeltaSparse {
		d.spPair = make([]sparseCells, t.net.Len())
		d.spPar = make([]sparseCells, t.net.Len())
	} else {
		d.pair = make([][]int64, t.net.Len())
		d.par = make([][]int64, t.net.Len())
		k := t.cfg.Sites
		for i := 0; i < t.net.Len(); i++ {
			j, kk := t.net.Card(i), t.net.ParentCard(i)
			d.pair[i] = make([]int64, j*kk*k)
			d.par[i] = make([]int64, kk*k)
		}
	}
	t.deltaMu.Lock()
	t.deltaBufs = append(t.deltaBufs, d)
	t.deltaMu.Unlock()
	return d
}

// Add buffers one observation received at site. Once the buffer holds the
// flush cadence's worth of events it is published inline.
func (d *DeltaBuffer) Add(site int, x []int) {
	d.t.checkSite(site)
	d.addOneChecked(site, x)
}

// AddEvents buffers a batch of observations, publishing mid-batch each time
// the accumulated count crosses the flush cadence.
func (d *DeltaBuffer) AddEvents(events []Event) {
	for i := range events {
		d.t.checkSite(events[i].Site)
	}
	d.addIndexedChecked(len(events),
		func(e int) []int { return events[e].X },
		func(e int) int { return events[e].Site })
}

// addOneChecked is the single-event accumulate-then-maybe-publish step —
// the one definition of the cadence rule, shared (with addIndexedChecked)
// by the explicit Add path and the tracker's implicit buffered entry
// points, whose callers have already validated the site.
func (d *DeltaBuffer) addOneChecked(site int, x []int) {
	d.mu.Lock()
	d.addLocked(site, x)
	if d.events >= d.t.deltaFlushEvery {
		d.flushLocked()
	}
	d.mu.Unlock()
}

// addIndexedChecked is addOneChecked's batch sibling, taking the same
// indexed accessors as the striped engine (applyIndexed). Sites must
// already be validated.
func (d *DeltaBuffer) addIndexedChecked(m int, xAt func(int) []int, siteAt func(int) int) {
	d.mu.Lock()
	for e := 0; e < m; e++ {
		d.addLocked(siteAt(e), xAt(e))
		if d.events >= d.t.deltaFlushEvery {
			d.flushLocked()
		}
	}
	d.mu.Unlock()
}

// addLocked accumulates one event. Callers hold d.mu.
func (d *DeltaBuffer) addLocked(site int, x []int) {
	t := d.t
	if d.events == 0 {
		t.deltaPending.Add(1) // buffer transitions empty → holding events
	}
	k := t.cfg.Sites
	if d.spPair != nil {
		for i := 0; i < t.net.Len(); i++ {
			pidx := t.net.ParentIndex(i, x)
			d.spPair[i].add(pidx*t.net.Card(i)+x[i], site, k)
			d.spPar[i].add(pidx, site, k)
		}
	} else {
		for i := 0; i < t.net.Len(); i++ {
			pidx := t.net.ParentIndex(i, x)
			d.pair[i][(pidx*t.net.Card(i)+x[i])*k+site]++
			d.par[i][pidx*k+site]++
		}
	}
	d.events++
}

// Flush publishes the buffered increments into the shared counter banks:
// one stripe-lock acquisition per stripe, a Bank.Merge per bank, and the
// tracker's event count advanced by the published events. A no-op on an
// empty buffer.
func (d *DeltaBuffer) Flush() {
	d.mu.Lock()
	d.flushLocked()
	d.mu.Unlock()
}

// flushLocked merges and clears the buffer. Callers hold d.mu; stripe locks
// are taken in ascending order, one stripe at a time.
func (d *DeltaBuffer) flushLocked() {
	if d.events == 0 {
		return
	}
	t := d.t
	k := t.cfg.Sites
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		if d.spPair != nil {
			for _, i := range sh.vars {
				d.spPair[i].mergeInto(t.pair[i], k)
				d.spPar[i].mergeInto(t.par[i], k)
			}
		} else {
			for _, i := range sh.vars {
				t.pair[i].Merge(d.pair[i])
				t.par[i].Merge(d.par[i])
			}
		}
		sh.version.Add(1)
		sh.mu.Unlock()
		for _, i := range sh.vars {
			if d.spPair != nil {
				d.spPair[i].reset()
				d.spPar[i].reset()
			} else {
				clear(d.pair[i])
				clear(d.par[i])
			}
		}
	}
	t.events.Add(d.events)
	d.events = 0
	t.deltaPending.Add(-1)
}

// Release publishes any buffered increments and unregisters the buffer from
// the tracker. The buffer must not be used afterwards.
func (d *DeltaBuffer) Release() {
	d.Flush()
	t := d.t
	t.deltaMu.Lock()
	for i, b := range t.deltaBufs {
		if b == d {
			last := len(t.deltaBufs) - 1
			t.deltaBufs[i] = t.deltaBufs[last]
			t.deltaBufs[last] = nil
			t.deltaBufs = t.deltaBufs[:last]
			break
		}
	}
	t.deltaMu.Unlock()
}

// FlushDeltas publishes every outstanding delta buffer — the flush barrier
// in front of the query, checkpoint and snapshot paths. After it returns,
// all increments buffered before the call are visible to reads (increments
// being accumulated concurrently with the barrier may land in either the
// pre- or post-barrier state, exactly like updates racing a query). A no-op
// unless the tracker is delta-buffered, and a single atomic load when no
// buffer holds unpublished events — so a query burst against a quiesced
// buffered tracker keeps the zero-lock cached-snapshot path.
func (t *Tracker) FlushDeltas() {
	if !t.cfg.DeltaBuffered || t.deltaPending.Load() == 0 {
		return
	}
	t.deltaMu.Lock()
	bufs := append([]*DeltaBuffer(nil), t.deltaBufs...)
	t.deltaMu.Unlock()
	for _, d := range bufs {
		d.Flush()
	}
}

// getDelta checks a pooled buffer out of the free list (allocating and
// registering a fresh one when empty) for the implicit buffered entry points
// (Update, UpdateBatch, UpdateEvents, Ingest).
func (t *Tracker) getDelta() *DeltaBuffer {
	t.deltaMu.Lock()
	if n := len(t.deltaFree); n > 0 {
		d := t.deltaFree[n-1]
		t.deltaFree[n-1] = nil
		t.deltaFree = t.deltaFree[:n-1]
		t.deltaMu.Unlock()
		return d
	}
	t.deltaMu.Unlock()
	return t.NewDeltaBuffer()
}

// putDelta returns a pooled buffer to the free list. The buffer stays
// registered, so increments parked in it remain reachable by FlushDeltas.
func (t *Tracker) putDelta(d *DeltaBuffer) {
	t.deltaMu.Lock()
	t.deltaFree = append(t.deltaFree, d)
	t.deltaMu.Unlock()
}
