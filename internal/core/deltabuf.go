package core

import (
	"sync"
)

// This file implements the delta-buffered (lock-free) ingestion mode of the
// tracker (Config.DeltaBuffered): instead of incrementing the shared counter
// banks under their stripe locks, each ingesting goroutine accumulates exact
// per-(cell, site) increment counts into a private DeltaBuffer and publishes
// it on a cadence — after Config.DeltaFlushEvents buffered events, at an
// explicit Flush, or at a query barrier (Tracker.FlushDeltas). A publish
// walks the stripes in ascending order and, under one lock acquisition per
// stripe, folds the buffer into the shared banks with counter.Bank.Merge,
// which replays the counter message protocol on the merged totals.
//
// Guarantees: exact counts are preserved under any interleaving (delta
// counts fold commutatively), and the randomized-counter (ε, δ) guarantee is
// kept — a merge corresponds to a coarser, batched interleaving of the same
// increment multiset, the same interleaving-dependence already accepted for
// Shards > 1. What buffering gives up is immediacy: increments are invisible
// to queries, Events and Messages until published, which is why every
// structured read path starts with a FlushDeltas barrier (see tracker.go)
// and the parallel drivers flush before returning.
//
// Memory: a buffer holds one delta slice per counter bank, J_i·K_i·k plus
// K_i·k int64 cells for variable i — the same asymptotic footprint as the
// banks themselves, per buffer. Buffers are pooled (getDelta/putDelta) and
// registered with the tracker so a barrier can reach increments parked in a
// checked-in buffer; for very large networks raise DeltaFlushEvents so the
// per-flush full-bank scan amortizes, or stay with striped ingestion.

// defaultDeltaFlushEvents is the publish cadence when Config.DeltaFlushEvents
// is zero: small enough that queries after a barrier see near-current state,
// large enough to amortize the per-flush bank scan.
const defaultDeltaFlushEvents = 1024

// DeltaBuffer is one goroutine's private accumulation of exact-count
// increments against a delta-buffered tracker. Buffers are created with
// Tracker.NewDeltaBuffer, filled with Add/AddEvents, published with Flush
// and retired with Release. A buffer is safe for concurrent use (a query
// barrier may flush it while its owner is between batches), but the intended
// shape is one owner goroutine per buffer — the owner's accumulation then
// never contends.
type DeltaBuffer struct {
	t *Tracker

	// mu excludes the owner's accumulation against barrier flushes from
	// query/checkpoint paths. It is uncontended in steady state; orderings
	// that also take stripe locks always acquire mu first.
	mu sync.Mutex
	// pair[i]/par[i] mirror the tracker's banks for variable i: per-cell,
	// per-site increment counts indexed cell*Sites + site.
	pair, par [][]int64
	// events counts buffered, not-yet-published events.
	events int64
}

// NewDeltaBuffer creates an empty delta buffer and registers it with the
// tracker so FlushDeltas barriers can publish it. Callers that ingest
// through explicit buffers (e.g. one per driver goroutine) must Release the
// buffer when done; the implicit entry points recycle buffers through an
// internal free list instead. Buffers work regardless of Config.DeltaBuffered,
// but only a delta-buffered tracker barriers its query paths — against an
// unbuffered tracker the caller owns flush timing entirely.
func (t *Tracker) NewDeltaBuffer() *DeltaBuffer {
	d := &DeltaBuffer{t: t, pair: make([][]int64, t.net.Len()), par: make([][]int64, t.net.Len())}
	k := t.cfg.Sites
	for i := 0; i < t.net.Len(); i++ {
		j, kk := t.net.Card(i), t.net.ParentCard(i)
		d.pair[i] = make([]int64, j*kk*k)
		d.par[i] = make([]int64, kk*k)
	}
	t.deltaMu.Lock()
	t.deltaBufs = append(t.deltaBufs, d)
	t.deltaMu.Unlock()
	return d
}

// Add buffers one observation received at site. Once the buffer holds the
// flush cadence's worth of events it is published inline.
func (d *DeltaBuffer) Add(site int, x []int) {
	d.t.checkSite(site)
	d.addOneChecked(site, x)
}

// AddEvents buffers a batch of observations, publishing mid-batch each time
// the accumulated count crosses the flush cadence.
func (d *DeltaBuffer) AddEvents(events []Event) {
	for i := range events {
		d.t.checkSite(events[i].Site)
	}
	d.addIndexedChecked(len(events),
		func(e int) []int { return events[e].X },
		func(e int) int { return events[e].Site })
}

// addOneChecked is the single-event accumulate-then-maybe-publish step —
// the one definition of the cadence rule, shared (with addIndexedChecked)
// by the explicit Add path and the tracker's implicit buffered entry
// points, whose callers have already validated the site.
func (d *DeltaBuffer) addOneChecked(site int, x []int) {
	d.mu.Lock()
	d.addLocked(site, x)
	if d.events >= d.t.deltaFlushEvery {
		d.flushLocked()
	}
	d.mu.Unlock()
}

// addIndexedChecked is addOneChecked's batch sibling, taking the same
// indexed accessors as the striped engine (applyIndexed). Sites must
// already be validated.
func (d *DeltaBuffer) addIndexedChecked(m int, xAt func(int) []int, siteAt func(int) int) {
	d.mu.Lock()
	for e := 0; e < m; e++ {
		d.addLocked(siteAt(e), xAt(e))
		if d.events >= d.t.deltaFlushEvery {
			d.flushLocked()
		}
	}
	d.mu.Unlock()
}

// addLocked accumulates one event. Callers hold d.mu.
func (d *DeltaBuffer) addLocked(site int, x []int) {
	t := d.t
	if d.events == 0 {
		t.deltaPending.Add(1) // buffer transitions empty → holding events
	}
	k := t.cfg.Sites
	for i := 0; i < t.net.Len(); i++ {
		pidx := t.net.ParentIndex(i, x)
		d.pair[i][(pidx*t.net.Card(i)+x[i])*k+site]++
		d.par[i][pidx*k+site]++
	}
	d.events++
}

// Flush publishes the buffered increments into the shared counter banks:
// one stripe-lock acquisition per stripe, a Bank.Merge per bank, and the
// tracker's event count advanced by the published events. A no-op on an
// empty buffer.
func (d *DeltaBuffer) Flush() {
	d.mu.Lock()
	d.flushLocked()
	d.mu.Unlock()
}

// flushLocked merges and clears the buffer. Callers hold d.mu; stripe locks
// are taken in ascending order, one stripe at a time.
func (d *DeltaBuffer) flushLocked() {
	if d.events == 0 {
		return
	}
	t := d.t
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for _, i := range sh.vars {
			t.pair[i].Merge(d.pair[i])
			t.par[i].Merge(d.par[i])
		}
		sh.version.Add(1)
		sh.mu.Unlock()
		for _, i := range sh.vars {
			clear(d.pair[i])
			clear(d.par[i])
		}
	}
	t.events.Add(d.events)
	d.events = 0
	t.deltaPending.Add(-1)
}

// Release publishes any buffered increments and unregisters the buffer from
// the tracker. The buffer must not be used afterwards.
func (d *DeltaBuffer) Release() {
	d.Flush()
	t := d.t
	t.deltaMu.Lock()
	for i, b := range t.deltaBufs {
		if b == d {
			last := len(t.deltaBufs) - 1
			t.deltaBufs[i] = t.deltaBufs[last]
			t.deltaBufs[last] = nil
			t.deltaBufs = t.deltaBufs[:last]
			break
		}
	}
	t.deltaMu.Unlock()
}

// FlushDeltas publishes every outstanding delta buffer — the flush barrier
// in front of the query, checkpoint and snapshot paths. After it returns,
// all increments buffered before the call are visible to reads (increments
// being accumulated concurrently with the barrier may land in either the
// pre- or post-barrier state, exactly like updates racing a query). A no-op
// unless the tracker is delta-buffered, and a single atomic load when no
// buffer holds unpublished events — so a query burst against a quiesced
// buffered tracker keeps the zero-lock cached-snapshot path.
func (t *Tracker) FlushDeltas() {
	if !t.cfg.DeltaBuffered || t.deltaPending.Load() == 0 {
		return
	}
	t.deltaMu.Lock()
	bufs := append([]*DeltaBuffer(nil), t.deltaBufs...)
	t.deltaMu.Unlock()
	for _, d := range bufs {
		d.Flush()
	}
}

// getDelta checks a pooled buffer out of the free list (allocating and
// registering a fresh one when empty) for the implicit buffered entry points
// (Update, UpdateBatch, UpdateEvents, Ingest).
func (t *Tracker) getDelta() *DeltaBuffer {
	t.deltaMu.Lock()
	if n := len(t.deltaFree); n > 0 {
		d := t.deltaFree[n-1]
		t.deltaFree[n-1] = nil
		t.deltaFree = t.deltaFree[:n-1]
		t.deltaMu.Unlock()
		return d
	}
	t.deltaMu.Unlock()
	return t.NewDeltaBuffer()
}

// putDelta returns a pooled buffer to the free list. The buffer stays
// registered, so increments parked in it remain reachable by FlushDeltas.
func (t *Tracker) putDelta(d *DeltaBuffer) {
	t.deltaMu.Lock()
	t.deltaFree = append(t.deltaFree, d)
	t.deltaMu.Unlock()
}
