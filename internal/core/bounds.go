package core

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
)

// CostBound returns the structure-dependent factor of the theoretical
// communication bound of each algorithm, i.e. the Γ-like quantity that
// multiplies the common √k/1 · log(1/δ) · log m factor:
//
//	BASELINE    (Theorem of IV-C): (Σ J_iK_i + Σ K_i) · 3n/ε
//	UNIFORM     (Theorem 1):       (Σ J_iK_i + Σ K_i) · 16√n/ε
//	NONUNIFORM  (Theorem 2):       16/ε · [ (Σ (J_iK_i)^{2/3})^{3/2} +
//	                                        (Σ K_i^{2/3})^{3/2} ]
//
// For ExactMLE the communication is not of this form (it is linear in the
// stream length), so CostBound returns an error. The ratios between bounds
// predict which algorithm should communicate less in the regime where every
// counter is in its sampling phase; the NEW-ALARM experiment reports these
// next to measured message counts.
func CostBound(net *bn.Network, strategy Strategy, eps float64) (float64, error) {
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("core: eps = %v, want 0 < eps < 1", eps)
	}
	n := float64(net.Len())
	sumJK, sumK := 0.0, 0.0
	sumJK23, sumK23 := 0.0, 0.0
	for i := 0; i < net.Len(); i++ {
		jk := float64(net.Card(i)) * float64(net.ParentCard(i))
		k := float64(net.ParentCard(i))
		sumJK += jk
		sumK += k
		sumJK23 += math.Cbrt(jk * jk)
		sumK23 += math.Cbrt(k * k)
	}
	switch strategy {
	case Baseline:
		return (sumJK + sumK) * 3 * n / eps, nil
	case Uniform:
		return (sumJK + sumK) * 16 * math.Sqrt(n) / eps, nil
	case NonUniform, NaiveBayes:
		return 16 / eps * (math.Pow(sumJK23, 1.5) + math.Pow(sumK23, 1.5)), nil
	case ExactMLE:
		return 0, fmt.Errorf("core: ExactMLE communication is linear in the stream, not bounded by a Γ factor")
	default:
		return 0, fmt.Errorf("core: unknown strategy %v", strategy)
	}
}

// SampleComplexity returns the training-set size m that Lemma 3 (Corollary
// 17.3 of Koller & Friedman, quoted in Section III) prescribes for the MLE
// itself to be within e^{±nε} of the ground truth with probability 1-δ:
//
//	m ≥ (1+ε)²/(2λ²ε²) · (d+1)² · log(n·J^{d+1}/δ)
//
// where λ is the smallest conditional probability in the ground truth, J the
// maximum domain cardinality and d the maximum in-degree. It quantifies the
// "statistical error" component the evaluation separates from the
// approximation error.
func SampleComplexity(net *bn.Network, eps, delta, lambda float64) (int64, error) {
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("core: eps = %v, want 0 < eps < 1", eps)
	}
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("core: delta = %v, want 0 < delta < 1", delta)
	}
	if !(lambda > 0 && lambda <= 1) {
		return 0, fmt.Errorf("core: lambda = %v, want 0 < lambda <= 1", lambda)
	}
	n := float64(net.Len())
	j := float64(net.MaxCard())
	d := float64(net.MaxInDegree())
	m := (1 + eps) * (1 + eps) / (2 * lambda * lambda * eps * eps) *
		(d + 1) * (d + 1) * math.Log(n*math.Pow(j, d+1)/delta)
	return int64(math.Ceil(m)), nil
}
