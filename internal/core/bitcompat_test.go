package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"
)

// This file pins the single-stripe reference mode to the exact behavior of
// the PR 2 tracker. The fingerprints below were generated at PR 2 HEAD
// (commit 10fb3cd, "flat counter banks + snapshot query path") by running
//
//	DISTBAYES_GEN_BITCOMPAT=1 go test ./internal/core -run TestSequentialModeBitCompat -v
//
// and they cover, per strategy (plus the deterministic-counter ablation):
// the event count, the exact site→coord / coord→site message tallies, and an
// FNV-64a hash over every exact cell count, every raw counter estimate
// (ReadCPDRows) and every full-joint query answer bit pattern.
//
// The guarantee under test: a tracker with Shards ≤ 1 and DeltaBuffered =
// false replays the historical sequential tracker bit-for-bit — same counts,
// same message schedule, same query answers — for a fixed seed and event
// order. Any change that shifts an RNG draw, reorders increments, or touches
// the estimate arithmetic of the reference mode breaks this test and must
// either be fixed or be an explicit, documented format/protocol bump.
func TestSequentialModeBitCompat(t *testing.T) {
	m := testModel(t)
	const sites, events = 4, 6000
	evs := genEventStream(m, sites, events, 9)

	type variant struct {
		name   string
		cfg    Config
		golden string // "events siteToCoord coordToSite hash"
	}
	variants := []variant{
		{name: "ExactMLE", cfg: Config{Strategy: ExactMLE, Sites: sites, Seed: 42}},
		{name: "Baseline", cfg: Config{Strategy: Baseline, Eps: 0.15, Delta: 0.25, Sites: sites, Seed: 42}},
		{name: "Uniform", cfg: Config{Strategy: Uniform, Eps: 0.15, Delta: 0.25, Sites: sites, Seed: 42}},
		{name: "NonUniform", cfg: Config{Strategy: NonUniform, Eps: 0.15, Delta: 0.25, Sites: sites, Seed: 42}},
		{name: "NaiveBayes", cfg: Config{Strategy: NaiveBayes, Eps: 0.15, Delta: 0.25, Sites: sites, Seed: 42}},
		{name: "NonUniform-deterministic", cfg: Config{Strategy: NonUniform, Eps: 0.15, Sites: sites, Seed: 42, Counter: DeterministicCounter}},
	}
	golden := map[string]string{
		"ExactMLE":                 "6000 36000 0 0228541afda8fb3d",
		"Baseline":                 "6000 10836 304 7d58ce9552c2a7d8",
		"Uniform":                  "6000 20889 196 c97a069f69e3b16d",
		"NonUniform":               "6000 21063 192 1b4d45b8cfa8ce38",
		"NaiveBayes":               "6000 21158 196 9cb67466b4f7cc6c",
		"NonUniform-deterministic": "6000 21988 120 56c7ff5c69d1e7bb",
	}

	gen := os.Getenv("DISTBAYES_GEN_BITCOMPAT") != ""
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			tr, err := NewTracker(m.Network(), v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				tr.Update(ev.Site, ev.X)
			}
			got := bitCompatFingerprint(tr)
			if gen {
				t.Logf("golden[%q] = %q", v.name, got)
				return
			}
			if want := golden[v.name]; got != want {
				t.Errorf("sequential-mode fingerprint drifted:\n got  %s\n want %s\n"+
					"(Shards<=1, DeltaBuffered=false must stay bit-identical to PR 2 HEAD)", got, want)
			}
		})
	}
}

// bitCompatFingerprint condenses a tracker's observable state into one
// comparable line: event count, message tallies, and an FNV-64a hash over
// exact counts, raw estimates and full-joint query answers.
func bitCompatFingerprint(tr *Tracker) string {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	net := tr.Network()
	var rows CPDRows
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				pc, qc := tr.ExactCount(i, v, pidx)
				w64(uint64(pc))
				w64(uint64(qc))
			}
		}
		tr.ReadCPDRows(i, &rows)
		for _, e := range rows.Pair {
			w64(math.Float64bits(e))
		}
		for _, e := range rows.Par {
			w64(math.Float64bits(e))
		}
	}
	for _, q := range queryAll(tr) {
		w64(math.Float64bits(q))
	}
	msgs := tr.Messages()
	return fmt.Sprintf("%d %d %d %016x", tr.Events(), msgs.SiteToCoord, msgs.CoordToSite, h.Sum64())
}
