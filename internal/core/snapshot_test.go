package core

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/counter"
)

// perCellQueryProb recomputes QueryProb through the per-cell reference path
// (cpdFactor), bypassing the snapshot.
func perCellQueryProb(t *Tracker, x []int) float64 {
	p := 1.0
	for i := 0; i < t.net.Len(); i++ {
		p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
	}
	return p
}

// TestSnapshotMatchesPerCellReference is the bit-equivalence guarantee of
// the batched read path: under Shards=1, every answer served from
// ReadCPDRows / the model snapshot must be bit-identical to the historical
// per-cell cpdFactor reads, for every strategy and with and without
// smoothing.
func TestSnapshotMatchesPerCellReference(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	evs := genEventStream(m, 4, 15000, 21)
	for _, smoothing := range []float64{0, 0.5} {
		for _, st := range allStrategies {
			cfg := cfgFor(st, 1)
			cfg.Smoothing = smoothing
			tr, err := NewTracker(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				tr.Update(ev.Site, ev.X)
			}

			// ReadCPDRows vs per-cell raw reads (ExactCount gives the raw
			// exact path; compare estimates through QueryCPD's smoothing).
			var rows CPDRows
			for i := 0; i < net.Len(); i++ {
				tr.ReadCPDRows(i, &rows)
				j := net.Card(i)
				for pidx := 0; pidx < net.ParentCard(i); pidx++ {
					for v := 0; v < j; v++ {
						want := tr.cpdFactor(i, v, pidx)
						got := smoothedFactor(rows.Pair[pidx*j+v], rows.Par[pidx], smoothing, j)
						if got != want {
							t.Fatalf("%v s=%v: rows factor (%d,%d,%d) = %v, per-cell %v",
								st, smoothing, i, v, pidx, got, want)
						}
					}
				}
			}

			// Snapshot-served entry points vs per-cell recomputation.
			x := make([]int, net.Len())
			var rec func(int)
			rec = func(i int) {
				if i == net.Len() {
					if got, want := tr.QueryProb(x), perCellQueryProb(tr, x); got != want {
						t.Fatalf("%v s=%v: QueryProb(%v) = %v, per-cell %v", st, smoothing, x, got, want)
					}
					return
				}
				for v := 0; v < net.Card(i); v++ {
					x[i] = v
					rec(i + 1)
				}
			}
			rec(0)

			set := net.AncestralClosure([]int{1})
			q := []int{1, 2, 0}
			snap := tr.snapshot()
			want := 1.0
			for _, i := range set {
				want *= tr.cpdFactor(i, q[i], net.ParentIndex(i, q))
			}
			if got := tr.QuerySubsetProb(set, q); got != want {
				t.Fatalf("%v: QuerySubsetProb = %v, per-cell %v", st, got, want)
			}
			_ = snap

			// EstimatedModel vs normalizing the per-cell factors by hand.
			est, err := tr.EstimatedModel()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < net.Len(); i++ {
				j := net.Card(i)
				for pidx := 0; pidx < net.ParentCard(i); pidx++ {
					sum := 0.0
					f := make([]float64, j)
					for v := 0; v < j; v++ {
						f[v] = tr.cpdFactor(i, v, pidx)
						if f[v] < 0 {
							f[v] = 0
						}
						sum += f[v]
					}
					for v := 0; v < j; v++ {
						want := 1 / float64(j)
						if sum > 0 {
							want = f[v] / sum
						}
						if got := est.CPD(i).P(v, pidx); got != want {
							t.Fatalf("%v: model CPD(%d,%d,%d) = %v, per-cell %v", st, i, v, pidx, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSnapshotCachingAndInvalidation checks the version-counter protocol:
// repeated queries reuse one snapshot, any ingestion path invalidates it,
// and LoadState drops it.
func TestSnapshotCachingAndInvalidation(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 5000, 5)
	tr.UpdateEvents(evs[:4000])

	// forceQueries issues enough point queries to pass the stale-query
	// threshold and trigger a rebuild.
	q := []int{0, 0, 0}
	forceQueries := func() {
		for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
			_ = tr.QueryProb(q)
		}
	}
	forceQueries()
	s1 := tr.snap.Load()
	if s1 == nil {
		t.Fatal("no snapshot cached after query burst")
	}
	_ = tr.Classify(1, []int{0, 0, 0})
	_ = tr.QueryProb(q)
	if tr.snap.Load() != s1 {
		t.Error("idle queries rebuilt the snapshot")
	}
	if _, err := tr.EstimatedModel(); err != nil {
		t.Fatal(err)
	}
	m1, _ := tr.EstimatedModel()
	m2, _ := tr.EstimatedModel()
	if m1 != m2 {
		t.Error("EstimatedModel rebuilt between ingest flushes")
	}

	// Ingestion invalidates: after an update, the first few point queries
	// serve per-cell (the cached pointer survives but is ignored), and a
	// burst rebuilds. Answers must reflect the new state immediately.
	tr.Update(evs[4000].Site, evs[4000].X)
	first := tr.QueryProb(q)
	want := perCellQueryProb(tr, q)
	if first != want {
		t.Errorf("first post-update query = %v, per-cell %v (stale snapshot served)", first, want)
	}
	forceQueries()
	if tr.snap.Load() == s1 {
		t.Error("query burst after Update did not rebuild the snapshot")
	}
	s2 := tr.snap.Load()
	tr.UpdateBatch(1, [][]int{evs[4001].X})
	forceQueries()
	if tr.snap.Load() == s2 {
		t.Error("query burst after UpdateBatch did not rebuild the snapshot")
	}

	// LoadState invalidates: the post-restore query must see restored state.
	var buf bytes.Buffer
	if err := tr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTracker(m.Network(), cfgFor(NonUniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
		_ = tr2.QueryProb(q) // cache an empty-state snapshot
	}
	if tr2.snap.Load() == nil {
		t.Fatal("no pre-restore snapshot cached")
	}
	if err := tr2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := tr2.QueryProb(q), tr.QueryProb(q); got != want {
		t.Errorf("post-LoadState query = %v, want %v (stale snapshot?)", got, want)
	}
}

// TestSnapshotStripeGranularity: with several stripes, mutating one stripe's
// variables must leave the other stripes' cached rows shared with the
// previous snapshot (pointer equality on the untouched rows).
func TestSnapshotStripeGranularity(t *testing.T) {
	m := testModel(t) // 3 variables
	tr, err := NewTracker(m.Network(), cfgFor(ExactMLE, 3))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 1000, 9)
	tr.UpdateEvents(evs)
	for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
		_ = tr.QueryProb([]int{0, 0, 0})
	}
	s1 := tr.snap.Load()
	if s1 == nil {
		t.Fatal("no snapshot cached")
	}
	// Bump only stripe 1 (variable 1) by hand-incrementing its bank under
	// its lock, as an out-of-band single-stripe mutation would.
	sh := tr.stripeOf(1)
	sh.mu.Lock()
	tr.pair[1].Inc(0, 0)
	tr.par[1].Inc(0, 0)
	sh.version.Add(1)
	sh.mu.Unlock()

	for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
		_ = tr.QueryProb([]int{0, 0, 0})
	}
	s2 := tr.snap.Load()
	if s2 == s1 {
		t.Fatal("snapshot not rebuilt")
	}
	if &s2.factors[0][0] != &s1.factors[0][0] || &s2.factors[2][0] != &s1.factors[2][0] {
		t.Error("untouched stripes were rebuilt instead of shared")
	}
	if &s2.factors[1][0] == &s1.factors[1][0] {
		t.Error("dirty stripe row was not rebuilt")
	}
}

// TestFactorySnapshotNeverCached: CounterFactory counters can be mutated out
// of band (decay rotation), so their trackers must re-read live state on
// every query.
func TestFactorySnapshotNeverCached(t *testing.T) {
	m := testModel(t)
	var made []*counter.Exact
	cfg := cfgFor(ExactMLE, 1)
	cfg.CounterFactory = func(eps float64, metrics *counter.Metrics, rng *bn.RNG) (counter.Counter, error) {
		c := counter.NewExact(metrics)
		made = append(made, c)
		return c, nil
	}
	tr, err := NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 2000, 3)
	tr.UpdateEvents(evs)
	q := []int{0, 0, 0}
	p1 := tr.QueryProb(q)
	if tr.snap.Load() != nil {
		t.Fatal("factory tracker cached a snapshot")
	}
	// Mutate every factory counter out of band (no version bump) and verify
	// the next query reflects it.
	for _, c := range made {
		c.Inc(0)
	}
	p2 := tr.QueryProb(q)
	if p1 == p2 {
		t.Error("factory tracker served stale estimates after out-of-band mutation")
	}
}

// poolTestNet builds a 40-variable chain network — wide enough that the
// row-pool assertions below have signal (a rebuild without pooling would
// allocate one row per variable).
func poolTestNet(t *testing.T) *bn.Network {
	t.Helper()
	vars := make([]bn.Variable, 40)
	for i := range vars {
		vars[i] = bn.Variable{Name: string(rune('A'+i%26)) + string(rune('0'+i/26)), Card: 2 + i%3}
		if i > 0 {
			vars[i].Parents = []int{i - 1}
		}
	}
	net, err := bn.NewNetwork(vars)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestSnapshotRowPooling is the snapshot-pooling allocation contract:
// warm queries against a cached snapshot allocate nothing, and once the pool
// is primed, a steady-state update→query-burst cycle rebuilds its dirty rows
// from recycled storage instead of allocating one row per variable per
// rebuild.
func TestSnapshotRowPooling(t *testing.T) {
	net := poolTestNet(t)
	tr, err := NewTracker(net, Config{Strategy: NonUniform, Eps: 0.1, Sites: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := bn.NewRNG(99)
	sample := func() []int {
		x := make([]int, net.Len())
		for i := range x {
			x[i] = rng.Intn(net.Card(i))
		}
		return x
	}
	for i := 0; i < 4000; i++ {
		tr.Update(rng.Intn(4), sample())
	}
	q := make([]int, net.Len())

	// Warm path: cached snapshot, zero allocations.
	_ = tr.QueryProb(q)
	if a := testing.AllocsPerRun(200, func() { _ = tr.QueryProb(q) }); a != 0 {
		t.Errorf("warm QueryProb allocates %v/op, want 0", a)
	}

	// Steady state: each run dirties every stripe and forces one rebuild.
	// Without pooling that is ≥ net.Len() row allocations per run; with the
	// retired predecessor's rows recycled it is a handful of fixed-size
	// snapshot bookkeeping allocations.
	x := sample()
	run := func() {
		tr.Update(1, x)
		for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
			_ = tr.QueryProb(q)
		}
	}
	run() // prime the pool with the first retirement
	if a := testing.AllocsPerRun(100, run); a >= float64(net.Len()) {
		t.Errorf("steady-state rebuild allocates %v/op, want < %d (rows not recycled?)", a, net.Len())
	}
}

// TestSnapshotRetirementSafety hammers queries from several goroutines while
// ingestion forces constant rebuilds and retirements: under -race this
// proves recycled rows are never handed out while a reader still holds the
// retired snapshot, and the validity checks catch any reuse-corruption
// (a clobbered row would yield probabilities outside [0, 1]).
func TestSnapshotRetirementSafety(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 3))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 8000, 61)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ev := range evs {
			tr.Update(ev.Site, ev.X)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := make([]int, m.Network().Len())
			for i := 0; i < 2000; i++ {
				if p := tr.QueryProb(x); math.IsNaN(p) || p < 0 || p > 1.0000001 {
					t.Errorf("QueryProb = %v (recycled row read?)", p)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLoadStateQueryRaceNoDeadlock pins the LoadState lock order: LoadState
// takes rebuildMu before the stripe locks (the same order snapshot rebuilds
// use), so queries racing a restore block briefly instead of deadlocking.
// Before the ordering fix this hung within a few iterations: LoadState held
// every stripe lock while waiting on rebuildMu, which a stale-snapshot
// query held while waiting on a stripe lock.
func TestLoadStateQueryRaceNoDeadlock(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range genEventStream(m, 4, 3000, 77) {
		tr.Update(ev.Site, ev.X)
	}
	var state bytes.Buffer
	if err := tr.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	raw := state.Bytes()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := make([]int, m.Network().Len())
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = tr.QueryProb(x)
				_, _ = tr.EstimatedModel()
			}
		}()
	}
	fin := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if err := tr.LoadState(bytes.NewReader(raw)); err != nil {
				fin <- err
				return
			}
			// Dirty a stripe so the racing queries keep forcing rebuilds.
			tr.Update(0, make([]int, m.Network().Len()))
		}
		fin <- nil
	}()
	select {
	case err := <-fin:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("LoadState racing queries did not finish: lock-order deadlock?")
	}
	close(done)
	wg.Wait()
}

// TestIngestCancelFlushesPending: a canceled Ingest pump must flush events
// it already took off the channel so the returned count matches the counter
// state.
func TestIngestCancelFlushesPending(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 10, 17)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan Event)
	done := make(chan struct{})
	var n int64
	var ierr error
	go func() {
		n, ierr = tr.Ingest(ctx, ch)
		close(done)
	}()
	for _, ev := range evs {
		ch <- ev
	}
	cancel() // channel never closed: only cancellation can end the pump
	<-done
	if ierr == nil {
		t.Fatal("Ingest returned nil error on cancellation")
	}
	if n != tr.Events() {
		t.Errorf("Ingest reported %d events but tracker counted %d", n, tr.Events())
	}
	if tr.Events() != int64(len(evs)) {
		t.Errorf("tracker counted %d events, want %d (pending batch dropped?)", tr.Events(), len(evs))
	}
}

// TestConcurrentSnapshotQueries hammers the snapshot path from several
// goroutines while another goroutine ingests — run under -race this proves
// the copy-on-write publication is clean, and every answer must equal a
// per-cell read taken at some consistent point (here just checked for
// validity: probabilities in [0,1]).
func TestConcurrentSnapshotQueries(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 3))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 6000, 23)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(evs); lo += 100 {
			tr.UpdateEvents(evs[lo:min(lo+100, len(evs))])
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := make([]int, m.Network().Len())
			for i := 0; i < 300; i++ {
				p := tr.QueryProb(x)
				if math.IsNaN(p) || p < 0 || p > 1.0000001 {
					t.Errorf("QueryProb = %v", p)
					return
				}
				_ = tr.Classify(g%3, x)
				if _, err := tr.EstimatedModel(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
