package core

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	"distbayes/internal/bn"
	"distbayes/internal/counter"
)

// perCellQueryProb recomputes QueryProb through the per-cell reference path
// (cpdFactor), bypassing the snapshot.
func perCellQueryProb(t *Tracker, x []int) float64 {
	p := 1.0
	for i := 0; i < t.net.Len(); i++ {
		p *= t.cpdFactor(i, x[i], t.net.ParentIndex(i, x))
	}
	return p
}

// TestSnapshotMatchesPerCellReference is the bit-equivalence guarantee of
// the batched read path: under Shards=1, every answer served from
// ReadCPDRows / the model snapshot must be bit-identical to the historical
// per-cell cpdFactor reads, for every strategy and with and without
// smoothing.
func TestSnapshotMatchesPerCellReference(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	evs := genEventStream(m, 4, 15000, 21)
	for _, smoothing := range []float64{0, 0.5} {
		for _, st := range allStrategies {
			cfg := cfgFor(st, 1)
			cfg.Smoothing = smoothing
			tr, err := NewTracker(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				tr.Update(ev.Site, ev.X)
			}

			// ReadCPDRows vs per-cell raw reads (ExactCount gives the raw
			// exact path; compare estimates through QueryCPD's smoothing).
			var rows CPDRows
			for i := 0; i < net.Len(); i++ {
				tr.ReadCPDRows(i, &rows)
				j := net.Card(i)
				for pidx := 0; pidx < net.ParentCard(i); pidx++ {
					for v := 0; v < j; v++ {
						want := tr.cpdFactor(i, v, pidx)
						got := smoothedFactor(rows.Pair[pidx*j+v], rows.Par[pidx], smoothing, j)
						if got != want {
							t.Fatalf("%v s=%v: rows factor (%d,%d,%d) = %v, per-cell %v",
								st, smoothing, i, v, pidx, got, want)
						}
					}
				}
			}

			// Snapshot-served entry points vs per-cell recomputation.
			x := make([]int, net.Len())
			var rec func(int)
			rec = func(i int) {
				if i == net.Len() {
					if got, want := tr.QueryProb(x), perCellQueryProb(tr, x); got != want {
						t.Fatalf("%v s=%v: QueryProb(%v) = %v, per-cell %v", st, smoothing, x, got, want)
					}
					return
				}
				for v := 0; v < net.Card(i); v++ {
					x[i] = v
					rec(i + 1)
				}
			}
			rec(0)

			set := net.AncestralClosure([]int{1})
			q := []int{1, 2, 0}
			snap := tr.snapshot()
			want := 1.0
			for _, i := range set {
				want *= tr.cpdFactor(i, q[i], net.ParentIndex(i, q))
			}
			if got := tr.QuerySubsetProb(set, q); got != want {
				t.Fatalf("%v: QuerySubsetProb = %v, per-cell %v", st, got, want)
			}
			_ = snap

			// EstimatedModel vs normalizing the per-cell factors by hand.
			est, err := tr.EstimatedModel()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < net.Len(); i++ {
				j := net.Card(i)
				for pidx := 0; pidx < net.ParentCard(i); pidx++ {
					sum := 0.0
					f := make([]float64, j)
					for v := 0; v < j; v++ {
						f[v] = tr.cpdFactor(i, v, pidx)
						if f[v] < 0 {
							f[v] = 0
						}
						sum += f[v]
					}
					for v := 0; v < j; v++ {
						want := 1 / float64(j)
						if sum > 0 {
							want = f[v] / sum
						}
						if got := est.CPD(i).P(v, pidx); got != want {
							t.Fatalf("%v: model CPD(%d,%d,%d) = %v, per-cell %v", st, i, v, pidx, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSnapshotCachingAndInvalidation checks the version-counter protocol:
// repeated queries reuse one snapshot, any ingestion path invalidates it,
// and LoadState drops it.
func TestSnapshotCachingAndInvalidation(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 5000, 5)
	tr.UpdateEvents(evs[:4000])

	// forceQueries issues enough point queries to pass the stale-query
	// threshold and trigger a rebuild.
	q := []int{0, 0, 0}
	forceQueries := func() {
		for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
			_ = tr.QueryProb(q)
		}
	}
	forceQueries()
	s1 := tr.snap.Load()
	if s1 == nil {
		t.Fatal("no snapshot cached after query burst")
	}
	_ = tr.Classify(1, []int{0, 0, 0})
	_ = tr.QueryProb(q)
	if tr.snap.Load() != s1 {
		t.Error("idle queries rebuilt the snapshot")
	}
	if _, err := tr.EstimatedModel(); err != nil {
		t.Fatal(err)
	}
	m1, _ := tr.EstimatedModel()
	m2, _ := tr.EstimatedModel()
	if m1 != m2 {
		t.Error("EstimatedModel rebuilt between ingest flushes")
	}

	// Ingestion invalidates: after an update, the first few point queries
	// serve per-cell (the cached pointer survives but is ignored), and a
	// burst rebuilds. Answers must reflect the new state immediately.
	tr.Update(evs[4000].Site, evs[4000].X)
	first := tr.QueryProb(q)
	want := perCellQueryProb(tr, q)
	if first != want {
		t.Errorf("first post-update query = %v, per-cell %v (stale snapshot served)", first, want)
	}
	forceQueries()
	if tr.snap.Load() == s1 {
		t.Error("query burst after Update did not rebuild the snapshot")
	}
	s2 := tr.snap.Load()
	tr.UpdateBatch(1, [][]int{evs[4001].X})
	forceQueries()
	if tr.snap.Load() == s2 {
		t.Error("query burst after UpdateBatch did not rebuild the snapshot")
	}

	// LoadState invalidates: the post-restore query must see restored state.
	var buf bytes.Buffer
	if err := tr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTracker(m.Network(), cfgFor(NonUniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
		_ = tr2.QueryProb(q) // cache an empty-state snapshot
	}
	if tr2.snap.Load() == nil {
		t.Fatal("no pre-restore snapshot cached")
	}
	if err := tr2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := tr2.QueryProb(q), tr.QueryProb(q); got != want {
		t.Errorf("post-LoadState query = %v, want %v (stale snapshot?)", got, want)
	}
}

// TestSnapshotStripeGranularity: with several stripes, mutating one stripe's
// variables must leave the other stripes' cached rows shared with the
// previous snapshot (pointer equality on the untouched rows).
func TestSnapshotStripeGranularity(t *testing.T) {
	m := testModel(t) // 3 variables
	tr, err := NewTracker(m.Network(), cfgFor(ExactMLE, 3))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 1000, 9)
	tr.UpdateEvents(evs)
	for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
		_ = tr.QueryProb([]int{0, 0, 0})
	}
	s1 := tr.snap.Load()
	if s1 == nil {
		t.Fatal("no snapshot cached")
	}
	// Bump only stripe 1 (variable 1) by hand-incrementing its bank under
	// its lock, as an out-of-band single-stripe mutation would.
	sh := tr.stripeOf(1)
	sh.mu.Lock()
	tr.pair[1].Inc(0, 0)
	tr.par[1].Inc(0, 0)
	sh.version.Add(1)
	sh.mu.Unlock()

	for i := 0; i <= staleQueryRebuildThreshold+1; i++ {
		_ = tr.QueryProb([]int{0, 0, 0})
	}
	s2 := tr.snap.Load()
	if s2 == s1 {
		t.Fatal("snapshot not rebuilt")
	}
	if &s2.factors[0][0] != &s1.factors[0][0] || &s2.factors[2][0] != &s1.factors[2][0] {
		t.Error("untouched stripes were rebuilt instead of shared")
	}
	if &s2.factors[1][0] == &s1.factors[1][0] {
		t.Error("dirty stripe row was not rebuilt")
	}
}

// TestFactorySnapshotNeverCached: CounterFactory counters can be mutated out
// of band (decay rotation), so their trackers must re-read live state on
// every query.
func TestFactorySnapshotNeverCached(t *testing.T) {
	m := testModel(t)
	var made []*counter.Exact
	cfg := cfgFor(ExactMLE, 1)
	cfg.CounterFactory = func(eps float64, metrics *counter.Metrics, rng *bn.RNG) (counter.Counter, error) {
		c := counter.NewExact(metrics)
		made = append(made, c)
		return c, nil
	}
	tr, err := NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 2000, 3)
	tr.UpdateEvents(evs)
	q := []int{0, 0, 0}
	p1 := tr.QueryProb(q)
	if tr.snap.Load() != nil {
		t.Fatal("factory tracker cached a snapshot")
	}
	// Mutate every factory counter out of band (no version bump) and verify
	// the next query reflects it.
	for _, c := range made {
		c.Inc(0)
	}
	p2 := tr.QueryProb(q)
	if p1 == p2 {
		t.Error("factory tracker served stale estimates after out-of-band mutation")
	}
}

// TestIngestCancelFlushesPending: a canceled Ingest pump must flush events
// it already took off the channel so the returned count matches the counter
// state.
func TestIngestCancelFlushesPending(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 10, 17)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan Event)
	done := make(chan struct{})
	var n int64
	var ierr error
	go func() {
		n, ierr = tr.Ingest(ctx, ch)
		close(done)
	}()
	for _, ev := range evs {
		ch <- ev
	}
	cancel() // channel never closed: only cancellation can end the pump
	<-done
	if ierr == nil {
		t.Fatal("Ingest returned nil error on cancellation")
	}
	if n != tr.Events() {
		t.Errorf("Ingest reported %d events but tracker counted %d", n, tr.Events())
	}
	if tr.Events() != int64(len(evs)) {
		t.Errorf("tracker counted %d events, want %d (pending batch dropped?)", tr.Events(), len(evs))
	}
}

// TestConcurrentSnapshotQueries hammers the snapshot path from several
// goroutines while another goroutine ingests — run under -race this proves
// the copy-on-write publication is clean, and every answer must equal a
// per-cell read taken at some consistent point (here just checked for
// validity: probabilities in [0,1]).
func TestConcurrentSnapshotQueries(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), cfgFor(NonUniform, 3))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 6000, 23)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(evs); lo += 100 {
			tr.UpdateEvents(evs[lo:min(lo+100, len(evs))])
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := make([]int, m.Network().Len())
			for i := 0; i < 300; i++ {
				p := tr.QueryProb(x)
				if math.IsNaN(p) || p < 0 || p > 1.0000001 {
					t.Errorf("QueryProb = %v", p)
					return
				}
				_ = tr.Classify(g%3, x)
				if _, err := tr.EstimatedModel(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
