package core

import (
	"math"
	"testing"

	"distbayes/internal/bn"
)

func testNet(t *testing.T) *bn.Network {
	t.Helper()
	// A(3) -> C(2) <- B(2), C -> D(4): varied J_i and K_i.
	return bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 3},
		{Name: "B", Card: 2},
		{Name: "C", Card: 2, Parents: []int{0, 1}},
		{Name: "D", Card: 4, Parents: []int{2}},
	})
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		ExactMLE:     "exact",
		Baseline:     "baseline",
		Uniform:      "uniform",
		NonUniform:   "nonuniform",
		NaiveBayes:   "naivebayes",
		Strategy(42): "Strategy(42)",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	for _, s := range []Strategy{ExactMLE, Baseline, Uniform, NonUniform, NaiveBayes} {
		back, err := ParseStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), back, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus name")
	}
}

func TestAllocateBaselineUniform(t *testing.T) {
	net := testNet(t)
	const eps = 0.12
	n := float64(net.Len())

	a, err := Allocate(net, Baseline, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.EpsA {
		if want := eps / (3 * n); a.EpsA[i] != want || a.EpsB[i] != want {
			t.Errorf("baseline eps[%d] = (%v,%v), want %v", i, a.EpsA[i], a.EpsB[i], want)
		}
	}

	u, err := Allocate(net, Uniform, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.EpsA {
		if want := eps / (16 * math.Sqrt(n)); u.EpsA[i] != want || u.EpsB[i] != want {
			t.Errorf("uniform eps[%d] = (%v,%v), want %v", i, u.EpsA[i], u.EpsB[i], want)
		}
	}
	// UNIFORM spends exactly the variance budget ε²/256.
	if got, want := u.BudgetSpent(), eps*eps/256; math.Abs(got-want) > 1e-15 {
		t.Errorf("uniform budget spent = %v, want %v", got, want)
	}
}

func TestAllocateNonUniformMatchesEquations(t *testing.T) {
	net := testNet(t)
	const eps = 0.1
	a, err := Allocate(net, NonUniform, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Equation (7): ν_i = (J_iK_i)^{1/3} ε / (16α), α = (Σ(J_iK_i)^{2/3})^{1/2}.
	alpha := 0.0
	for i := 0; i < net.Len(); i++ {
		alpha += math.Pow(float64(net.Card(i)*net.ParentCard(i)), 2.0/3.0)
	}
	alpha = math.Sqrt(alpha)
	for i := 0; i < net.Len(); i++ {
		want := math.Cbrt(float64(net.Card(i)*net.ParentCard(i))) * eps / (16 * alpha)
		if math.Abs(a.EpsA[i]-want) > 1e-12 {
			t.Errorf("nu[%d] = %v, want %v", i, a.EpsA[i], want)
		}
	}
	// Equation (8): µ_i = K_i^{1/3} ε / (16β), β = (ΣK_i^{2/3})^{1/2}.
	beta := 0.0
	for i := 0; i < net.Len(); i++ {
		beta += math.Pow(float64(net.ParentCard(i)), 2.0/3.0)
	}
	beta = math.Sqrt(beta)
	for i := 0; i < net.Len(); i++ {
		want := math.Cbrt(float64(net.ParentCard(i))) * eps / (16 * beta)
		if math.Abs(a.EpsB[i]-want) > 1e-12 {
			t.Errorf("mu[%d] = %v, want %v", i, a.EpsB[i], want)
		}
	}
	// Constraint (4): Σν² = ε²/256 on both sides.
	if got, want := a.BudgetSpent(), eps*eps/256; math.Abs(got-want) > 1e-12 {
		t.Errorf("Σν² = %v, want %v", got, want)
	}
	sumMu := 0.0
	for _, v := range a.EpsB {
		sumMu += v * v
	}
	if want := eps * eps / 256; math.Abs(sumMu-want) > 1e-12 {
		t.Errorf("Σµ² = %v, want %v", sumMu, want)
	}
	// Higher-cardinality variables must get looser (larger) error params.
	if a.EpsA[3] <= a.EpsA[1] {
		t.Errorf("nu[D]=%v should exceed nu[B]=%v (8 cells vs 2)", a.EpsA[3], a.EpsA[1])
	}
}

func naiveBayesNet(cards []int) *bn.Network {
	vars := make([]bn.Variable, len(cards))
	vars[0] = bn.Variable{Name: "class", Card: cards[0]}
	for i := 1; i < len(cards); i++ {
		vars[i] = bn.Variable{Name: "f", Card: cards[i], Parents: []int{0}}
	}
	return bn.MustNetwork(vars)
}

func TestAllocateNaiveBayes(t *testing.T) {
	net := naiveBayesNet([]int{3, 2, 4, 5})
	const eps = 0.1
	a, err := Allocate(net, NaiveBayes, eps)
	if err != nil {
		t.Fatal(err)
	}
	// µ_i = ε/(16√n) for all i (eq. 9).
	mv := eps / (16 * math.Sqrt(4))
	for i, got := range a.EpsB {
		if got != mv {
			t.Errorf("mu[%d] = %v, want %v", i, got, mv)
		}
	}
	// ν ratios across the non-root variables follow J_i^{1/3} (eq. 9; the
	// shared J_1 factor cancels).
	r21 := a.EpsA[2] / a.EpsA[1]
	want := math.Cbrt(4.0 / 2.0)
	if math.Abs(r21-want) > 1e-12 {
		t.Errorf("nu ratio = %v, want %v", r21, want)
	}
	if got, want := a.BudgetSpent(), eps*eps/256; math.Abs(got-want) > 1e-12 {
		t.Errorf("Σν² = %v, want %v", got, want)
	}
}

func TestIsNaiveBayes(t *testing.T) {
	if root, ok := IsNaiveBayes(naiveBayesNet([]int{2, 3, 3})); !ok || root != 0 {
		t.Errorf("NB net: root=%d ok=%v", root, ok)
	}
	// Chain A->B->C is not NB.
	chain := bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: []int{0}},
		{Name: "C", Card: 2, Parents: []int{1}},
	})
	if _, ok := IsNaiveBayes(chain); ok {
		t.Error("chain accepted as NB")
	}
	// Two roots.
	twoRoots := bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2},
		{Name: "C", Card: 2, Parents: []int{0}},
	})
	if _, ok := IsNaiveBayes(twoRoots); ok {
		t.Error("two-root net accepted as NB")
	}
	// Multi-parent node.
	collider := bn.MustNetwork([]bn.Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: []int{0}},
		{Name: "C", Card: 2, Parents: []int{0, 1}},
	})
	if _, ok := IsNaiveBayes(collider); ok {
		t.Error("collider accepted as NB")
	}
}

func TestAllocateUnknownStrategy(t *testing.T) {
	if _, err := Allocate(testNet(t), Strategy(99), 0.1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestSampleComplexity(t *testing.T) {
	net := testNet(t)
	m, err := SampleComplexity(net, 0.1, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 {
		t.Errorf("sample complexity = %d", m)
	}
	// Monotonicity: tighter eps or smaller lambda needs more samples.
	m2, _ := SampleComplexity(net, 0.05, 0.1, 0.05)
	if m2 <= m {
		t.Errorf("halving eps did not raise the bound: %d vs %d", m2, m)
	}
	m3, _ := SampleComplexity(net, 0.1, 0.1, 0.01)
	if m3 <= m {
		t.Errorf("smaller lambda did not raise the bound: %d vs %d", m3, m)
	}
	for _, bad := range [][3]float64{{0, 0.1, 0.1}, {0.1, 0, 0.1}, {0.1, 0.1, 0}, {2, 0.1, 0.1}} {
		if _, err := SampleComplexity(net, bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("invalid args %v accepted", bad)
		}
	}
}

func TestCostBound(t *testing.T) {
	net := testNet(t)
	b, err := CostBound(net, Baseline, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := CostBound(net, Uniform, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	nu, err := CostBound(net, NonUniform, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(b > 0 && u > 0 && nu > 0) {
		t.Fatalf("non-positive bounds: %v %v %v", b, u, nu)
	}
	// NONUNIFORM's bound is optimal: never above UNIFORM's.
	if nu > u*(1+1e-12) {
		t.Errorf("nonuniform bound %v exceeds uniform %v", nu, u)
	}
	if _, err := CostBound(net, ExactMLE, 0.1); err == nil {
		t.Error("ExactMLE bound accepted")
	}
	if _, err := CostBound(net, Uniform, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := CostBound(net, Strategy(77), 0.1); err == nil {
		t.Error("unknown strategy accepted")
	}
}
