package core

import (
	"time"

	"distbayes/internal/bn"
)

// Snapshot is an exported read handle on one immutable model snapshot —
// the tracker's refcounted snapshot machinery surfaced as a read-replica
// primitive for the serving layer (internal/serve). Every Factor read
// against one Snapshot observes a single consistent materialization of the
// counter state; ingestion proceeding underneath retires the snapshot
// without waiting for readers.
//
// A Snapshot must be released exactly once (Release), after which it must
// not be used. Snapshots are not safe for concurrent use through one handle;
// acquire one per reader.
type Snapshot struct {
	t *Tracker
	s *modelSnapshot
}

// AcquireSnapshot returns the current model snapshot with a read reference
// held, rebuilding only the stripes whose version moved since the cached
// snapshot was built (a full rebuild bulk-reads every CPT cell via
// counter.Bank.EstimateRange). The caller owns one reference and must call
// Release exactly once.
func (t *Tracker) AcquireSnapshot() *Snapshot {
	return &Snapshot{t: t, s: t.snapshot()}
}

// Factor returns the smoothed tracked estimate of
// P[X_i = v | parent config pidx] as materialized in this snapshot —
// the same value the tracker's own QueryProb/Classify would multiply.
func (s *Snapshot) Factor(i, v, pidx int) float64 {
	return s.s.factors[i][pidx*s.t.net.Card(i)+v]
}

// Version identifies the counter state the snapshot was built from; it is
// monotone non-decreasing across acquisitions from one tracker.
func (s *Snapshot) Version() uint64 { return s.s.version }

// BuiltAt is when the snapshot's rows were read from the counters.
func (s *Snapshot) BuiltAt() time.Time { return s.s.builtAt }

// Model returns the snapshot's factors normalized into a bn.Model, built at
// most once per snapshot and shared by subsequent calls (the same cache
// EstimatedModel uses). The model is immutable and remains valid after
// Release.
func (s *Snapshot) Model() (*bn.Model, error) {
	return s.s.normalizedModel(s.t.net)
}

// Network returns the tracked network — fixed for the tracker's lifetime.
func (s *Snapshot) Network() *bn.Network { return s.t.net }

// StructureEpoch is always 0: an in-process tracker tracks a fixed
// configured structure (learned-structure snapshots live in
// internal/cluster).
func (s *Snapshot) StructureEpoch() uint64 { return 0 }

// Release drops the reference; the last drop recycles the snapshot's
// factor rows.
func (s *Snapshot) Release() { s.t.releaseSnap(s.s) }
