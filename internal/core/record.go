package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpoint record plumbing, shared by every DBAYES-family snapshot format:
// a checkpoint is an 8-byte magic, a sequence of little-endian u64 fields,
// and length-prefixed records (u64 length, then the record bytes). The
// tracker's DBAYES02/03 state files (state.go) and the cluster coordinator's
// DBCLUS01 checkpoints (internal/cluster) are both written through these
// helpers, so the framing — and the length-validate-before-allocating
// discipline on the read side — is implemented once.

// CkptWriter writes a DBAYES-family checkpoint stream.
type CkptWriter struct {
	bw *bufio.Writer
}

// NewCkptWriter starts a checkpoint on w by writing the 8-byte magic.
func NewCkptWriter(w io.Writer, magic string) (*CkptWriter, error) {
	cw := &CkptWriter{bw: bufio.NewWriter(w)}
	if _, err := cw.bw.WriteString(magic); err != nil {
		return nil, err
	}
	return cw, nil
}

// PutU64 writes one little-endian u64 field.
func (cw *CkptWriter) PutU64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := cw.bw.Write(b[:])
	return err
}

// PutRecord writes one length-prefixed record.
func (cw *CkptWriter) PutRecord(b []byte) error {
	if err := cw.PutU64(uint64(len(b))); err != nil {
		return err
	}
	_, err := cw.bw.Write(b)
	return err
}

// Flush flushes the buffered stream to the underlying writer.
func (cw *CkptWriter) Flush() error { return cw.bw.Flush() }

// CkptReader reads a DBAYES-family checkpoint stream.
type CkptReader struct {
	br *bufio.Reader
}

// NewCkptReader checks the 8-byte magic on r and returns a reader positioned
// at the first field.
func NewCkptReader(r io.Reader, magic string) (*CkptReader, error) {
	cr := &CkptReader{br: bufio.NewReader(r)}
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(cr.br, got); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", got)
	}
	return cr, nil
}

// U64 reads one little-endian u64 field.
func (cr *CkptReader) U64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(cr.br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// RecordExact reads a record whose length must be exactly want bytes — the
// corrupt length is rejected before anything is allocated for it.
func (cr *CkptReader) RecordExact(want uint64) ([]byte, error) {
	n, err := cr.U64()
	if err != nil {
		return nil, err
	}
	if n != want {
		return nil, fmt.Errorf("core: snapshot record of %d bytes, want %d", n, want)
	}
	return cr.readRecord(n)
}

// RecordCapped reads a record of unknown exact size, rejecting lengths above
// limit before allocating.
func (cr *CkptReader) RecordCapped(limit uint64) ([]byte, error) {
	n, err := cr.U64()
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, fmt.Errorf("core: snapshot record of %d bytes exceeds limit %d", n, limit)
	}
	return cr.readRecord(n)
}

func (cr *CkptReader) readRecord(n uint64) ([]byte, error) {
	data := make([]byte, n)
	if _, err := io.ReadFull(cr.br, data); err != nil {
		return nil, err
	}
	return data, nil
}
