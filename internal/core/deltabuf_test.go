package core

import (
	"bytes"
	"context"
	"testing"

	"distbayes/internal/bn"
	"distbayes/internal/counter"
)

func bufferedCfg(st Strategy, shards, cadence int) Config {
	cfg := cfgFor(st, shards)
	cfg.DeltaBuffered = true
	cfg.DeltaFlushEvents = cadence
	return cfg
}

// TestDeltaBufferedQueryBarrier: increments parked below the flush cadence
// must still be visible to every read path, because each read starts with a
// FlushDeltas barrier.
func TestDeltaBufferedQueryBarrier(t *testing.T) {
	m := testModel(t)
	evs := genEventStream(m, 4, 300, 17)

	ref, err := NewTracker(m.Network(), cfgFor(NonUniform, 0))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(m.Network(), bufferedCfg(NonUniform, 1, 1<<20)) // cadence never fires on its own
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		ref.Update(ev.Site, ev.X)
		tr.Update(ev.Site, ev.X)
	}

	// ExactCount's barrier must surface all 300 events.
	if pc, _ := tr.ExactCount(0, evs[0].X[0], 0); pc == 0 {
		t.Fatal("ExactCount saw no increments through the barrier")
	}
	assertExactEquivalence(t, ref, tr)
	if got, want := tr.Events(), int64(len(evs)); got != want {
		t.Fatalf("events after barrier = %d, want %d", got, want)
	}

	// Structured queries (snapshot path) and the per-cell path must agree
	// with a fully flushed state.
	q := make([]int, m.Network().Len())
	if p := tr.QueryProb(q); p == 0 {
		t.Error("QueryProb = 0 against a 300-event tracker")
	}
	if c := tr.QueryCPD(0, evs[0].X[0], 0); c == 0 {
		t.Error("QueryCPD = 0 for an observed cell")
	}
}

// TestDeltaBufferedEventsLag documents the published-events semantics: below
// the cadence, Events stays 0 until a barrier or explicit flush publishes.
func TestDeltaBufferedEventsLag(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), bufferedCfg(Uniform, 1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 50, 3)
	tr.UpdateEvents(evs)
	if got := tr.Events(); got != 0 {
		t.Fatalf("events before any barrier = %d, want 0 (parked in buffer)", got)
	}
	tr.FlushDeltas()
	if got := tr.Events(); got != 50 {
		t.Fatalf("events after FlushDeltas = %d, want 50", got)
	}
}

// TestDeltaBufferedCadenceAutoFlush: crossing DeltaFlushEvents publishes
// inline, without any barrier.
func TestDeltaBufferedCadenceAutoFlush(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), bufferedCfg(Uniform, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 200, 5)
	tr.UpdateEvents(evs)
	// 200 events at cadence 64: three auto-publishes (192), 8 parked.
	if got := tr.Events(); got != 192 {
		t.Fatalf("published events = %d, want 192 (3 cadence flushes of 64)", got)
	}
	tr.FlushDeltas()
	if got := tr.Events(); got != 200 {
		t.Fatalf("events after barrier = %d, want 200", got)
	}
}

// TestDeltaBufferedIngestInvariant: an Ingest pump on a buffered tracker
// publishes everything it ingested before returning.
func TestDeltaBufferedIngestInvariant(t *testing.T) {
	m := testModel(t)
	const events = 3000
	evs := genEventStream(m, 4, events, 19)
	tr, err := NewTracker(m.Network(), bufferedCfg(NonUniform, 2, 256))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Event, 64)
	go func() {
		for _, ev := range evs {
			ch <- ev
		}
		close(ch)
	}()
	n, err := tr.Ingest(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if n != events {
		t.Fatalf("Ingest returned %d, want %d", n, events)
	}
	if got := tr.Events(); got != events {
		t.Fatalf("events after Ingest returned = %d, want %d (pump must publish on exit)", got, events)
	}
}

// TestDeltaBufferedCheckpoint: SaveState on a buffered tracker captures
// parked increments, and restoring into a second buffered tracker
// reproduces the exact counts.
func TestDeltaBufferedCheckpoint(t *testing.T) {
	m := testModel(t)
	cfg := bufferedCfg(NonUniform, 2, 1<<20)
	tr, err := NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 500, 7)
	tr.UpdateEvents(evs) // all parked below cadence

	var snap bytes.Buffer
	if err := tr.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Park increments in the restored tracker pre-load: LoadState must not
	// let them leak into the restored state afterwards.
	restored.UpdateEvents(evs[:100])
	if err := restored.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	assertExactEquivalence(t, tr, restored)
}

// TestDeltaBufferedCustomCounters: the CounterFactory extension point works
// under buffering — merges replay Inc per increment on the custom cells.
func TestDeltaBufferedCustomCounters(t *testing.T) {
	m := testModel(t)
	cfg := bufferedCfg(NonUniform, 1, 128)
	cfg.CounterFactory = func(eps float64, metrics *counter.Metrics, rng *bn.RNG) (counter.Counter, error) {
		return counter.NewExact(metrics), nil
	}
	tr, err := NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewTracker(m.Network(), cfgFor(ExactMLE, 0))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 700, 31)
	tr.UpdateEvents(evs)
	for _, ev := range evs {
		ref.Update(ev.Site, ev.X)
	}
	tr.FlushDeltas()
	assertExactEquivalence(t, ref, tr)
}

// TestSparseDeltaMatchesDense is the sparse representation's bit-compat pin:
// a single goroutine replaying one stream through a sparse buffered tracker
// and a dense buffered tracker with identical flush points must produce
// bit-identical results — same exact counts, same estimates, same message
// tallies, same query answers — because a sparse flush walks the touched
// cells in exactly the order the dense Bank.Merge walks all cells.
func TestSparseDeltaMatchesDense(t *testing.T) {
	m := testModel(t)
	evs := genEventStream(m, 4, 9000, 41)
	for _, st := range allStrategies {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			dense, err := NewTracker(m.Network(), bufferedCfg(st, 2, 200))
			if err != nil {
				t.Fatal(err)
			}
			sparseCfg := bufferedCfg(st, 2, 200)
			sparseCfg.DeltaSparse = true
			sparse, err := NewTracker(m.Network(), sparseCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				dense.Update(ev.Site, ev.X)
				sparse.Update(ev.Site, ev.X)
			}
			dense.FlushDeltas()
			sparse.FlushDeltas()
			assertExactEquivalence(t, dense, sparse)
			if dm, sm := dense.Messages(), sparse.Messages(); dm != sm {
				t.Fatalf("messages: sparse %+v, dense %+v", sm, dm)
			}
			dq, sq := queryAll(dense), queryAll(sparse)
			for i := range dq {
				if dq[i] != sq[i] {
					t.Fatalf("query %d: sparse %v, dense %v", i, sq[i], dq[i])
				}
			}
		})
	}
}

// TestSparseDeltaSlabReuse: after a flush the sparse slab is reused without
// stale counts leaking into the next window.
func TestSparseDeltaSlabReuse(t *testing.T) {
	m := testModel(t)
	cfg := bufferedCfg(ExactMLE, 1, 1<<20)
	cfg.DeltaSparse = true
	tr, err := NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewTracker(m.Network(), cfgFor(ExactMLE, 0))
	if err != nil {
		t.Fatal(err)
	}
	evs := genEventStream(m, 4, 600, 53)
	d := tr.NewDeltaBuffer()
	defer d.Release()
	for lo := 0; lo < len(evs); lo += 37 { // flush between odd-sized windows
		hi := min(lo+37, len(evs))
		d.AddEvents(evs[lo:hi])
		d.Flush()
	}
	for _, ev := range evs {
		ref.Update(ev.Site, ev.X)
	}
	assertExactEquivalence(t, ref, tr)
}

// TestDeltaBufferReleaseUnregisters: a released buffer is no longer reachable
// by barriers and its parked events were published by the release.
func TestDeltaBufferReleaseUnregisters(t *testing.T) {
	m := testModel(t)
	tr, err := NewTracker(m.Network(), bufferedCfg(Uniform, 1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	d := tr.NewDeltaBuffer()
	evs := genEventStream(m, 4, 40, 13)
	d.AddEvents(evs)
	if got := tr.Events(); got != 0 {
		t.Fatalf("events before release = %d, want 0", got)
	}
	d.Release()
	if got := tr.Events(); got != 40 {
		t.Fatalf("events after release = %d, want 40", got)
	}
	tr.deltaMu.Lock()
	n := len(tr.deltaBufs)
	tr.deltaMu.Unlock()
	if n != 0 {
		t.Fatalf("registry holds %d buffers after release, want 0", n)
	}
}

// TestDeltaFlushEventsValidation rejects a negative cadence.
func TestDeltaFlushEventsValidation(t *testing.T) {
	m := testModel(t)
	cfg := cfgFor(Uniform, 1)
	cfg.DeltaFlushEvents = -1
	if _, err := NewTracker(m.Network(), cfg); err == nil {
		t.Error("negative DeltaFlushEvents accepted")
	}
}
