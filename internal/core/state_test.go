package core

import (
	"bytes"
	"testing"

	"distbayes/internal/bn"
)

// genEvents pre-materializes a routed stream so two trackers can consume the
// exact same sequence.
func genEvents(m *bn.Model, count, sites int, seed uint64) (sitesOut []int, events [][]int) {
	s := m.NewSampler(seed)
	route := bn.NewRNG(seed + 1)
	for e := 0; e < count; e++ {
		x := append([]int(nil), s.Sample(nil)...)
		events = append(events, x)
		sitesOut = append(sitesOut, route.Intn(sites))
	}
	return
}

func TestCheckpointRoundTripEquivalence(t *testing.T) {
	m := chainModel(t, 20, 3, 4)
	net := m.Network()
	cfg := Config{Strategy: NonUniform, Eps: 0.15, Sites: 8, Seed: 99}
	sites, events := genEvents(m, 20000, cfg.Sites, 7)

	// Reference: uninterrupted run over all events.
	ref, err := NewTracker(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := range events {
		ref.Update(sites[e], events[e])
	}

	// Checkpointed: first half, save, restore into a fresh tracker, second
	// half.
	first, err := NewTracker(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10000; e++ {
		first.Update(sites[e], events[e])
	}
	var buf bytes.Buffer
	if err := first.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewTracker(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Events() != 10000 {
		t.Fatalf("restored events = %d", restored.Events())
	}
	for e := 10000; e < len(events); e++ {
		restored.Update(sites[e], events[e])
	}

	// Bit-for-bit equivalence: message metrics and every CPD estimate.
	if restored.Messages() != ref.Messages() {
		t.Errorf("messages diverged: restored %+v, reference %+v", restored.Messages(), ref.Messages())
	}
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				a := restored.QueryCPD(i, v, pidx)
				b := ref.QueryCPD(i, v, pidx)
				if a != b {
					t.Fatalf("CPD(%d,%d,%d) diverged: %v vs %v", i, v, pidx, a, b)
				}
			}
		}
	}
}

func TestCheckpointExactStrategy(t *testing.T) {
	m := testModel(t)
	net := m.Network()
	cfg := Config{Strategy: ExactMLE, Sites: 3}
	sites, events := genEvents(m, 5000, cfg.Sites, 3)

	tr, _ := NewTracker(net, cfg)
	for e := range events {
		tr.Update(sites[e], events[e])
	}
	var buf bytes.Buffer
	if err := tr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, _ := NewTracker(net, cfg)
	if err := back.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if back.QueryProb([]int{1, 1, 1}) != tr.QueryProb([]int{1, 1, 1}) {
		t.Error("exact tracker state not restored")
	}
	if back.Events() != tr.Events() {
		t.Error("event count not restored")
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	m := testModel(t)
	cfgA := Config{Strategy: Uniform, Eps: 0.1, Sites: 3, Seed: 1}
	trA, _ := NewTracker(m.Network(), cfgA)
	var buf bytes.Buffer
	if err := trA.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// Different strategy.
	cfgB := cfgA
	cfgB.Strategy = NonUniform
	trB, _ := NewTracker(m.Network(), cfgB)
	if err := trB.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("strategy mismatch accepted")
	}
	// Different sites.
	cfgC := cfgA
	cfgC.Sites = 4
	trC, _ := NewTracker(m.Network(), cfgC)
	if err := trC.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("site-count mismatch accepted")
	}
	// Different network.
	other := chainModel(t, 5, 2, 9)
	trD, _ := NewTracker(other.Network(), cfgA)
	if err := trD.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("network mismatch accepted")
	}
	// Garbage input.
	trE, _ := NewTracker(m.Network(), cfgA)
	if err := trE.LoadState(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}
