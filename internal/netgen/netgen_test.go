package netgen

import (
	"testing"

	"distbayes/internal/core"
)

func TestTableINetworksMatchPublishedCounts(t *testing.T) {
	cases := []struct {
		p Profile
	}{{Alarm}, {HeparII}, {Link}, {Munin}}
	for _, tc := range cases {
		t.Run(tc.p.Name, func(t *testing.T) {
			net, err := Generate(tc.p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if got := net.Len(); got != tc.p.Nodes {
				t.Errorf("nodes = %d, want %d", got, tc.p.Nodes)
			}
			if got := net.NumEdges(); got != tc.p.Edges {
				t.Errorf("edges = %d, want %d", got, tc.p.Edges)
			}
			if got := net.NumParams(); got != tc.p.Params {
				t.Errorf("params = %d, want %d", got, tc.p.Params)
			}
			if got := net.MaxInDegree(); got > tc.p.MaxInDegree {
				t.Errorf("max in-degree = %d, want <= %d", got, tc.p.MaxInDegree)
			}
			if got := net.MaxCard(); got > tc.p.MaxCard {
				t.Errorf("max card = %d, want <= %d", got, tc.p.MaxCard)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Alarm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Alarm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		va, vb := a.Var(i), b.Var(i)
		if va.Card != vb.Card || len(va.Parents) != len(vb.Parents) {
			t.Fatalf("variable %d differs across runs", i)
		}
		for j := range va.Parents {
			if va.Parents[j] != vb.Parents[j] {
				t.Fatalf("variable %d parents differ", i)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := Profile{Name: "bad", Nodes: 0, Edges: 1, Params: 1}
	if _, err := Generate(bad); err == nil {
		t.Error("invalid profile accepted")
	}
	tooDense := Profile{
		Name: "dense", Nodes: 5, Edges: 100, Params: 10,
		MaxInDegree: 2, Cards: []int{2}, MaxCard: 4, RootFrac: 0.2, Seed: 1,
	}
	if _, err := Generate(tooDense); err == nil {
		t.Error("unreachable edge count accepted")
	}
}

func TestGenCPTs(t *testing.T) {
	net, err := Generate(Alarm)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultCPTOptions()
	cpds, err := GenCPTs(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Row validity is enforced by bn.NewCPT; check the floor.
	for i, c := range cpds {
		wantMin := opt.Floor / float64(net.Card(i))
		if got := c.MinProb(); got < wantMin-1e-12 {
			t.Errorf("CPT %d min prob %v below floor %v", i, got, wantMin)
		}
	}
	if _, err := GenCPTs(net, CPTOptions{Alpha: 0, Floor: 0.1, Seed: 1}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := GenCPTs(net, CPTOptions{Alpha: 1, Floor: 1.5, Seed: 1}); err == nil {
		t.Error("floor=1.5 accepted")
	}
}

func TestNewAlarm(t *testing.T) {
	na, err := NewAlarm()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Generate(Alarm)
	if na.Len() != base.Len() || na.NumEdges() != base.NumEdges() {
		t.Fatalf("NEW-ALARM changed structure: %d nodes %d edges", na.Len(), na.NumEdges())
	}
	inflated := 0
	for i := 0; i < na.Len(); i++ {
		if na.Card(i) == 20 {
			inflated++
		}
	}
	if inflated != 6 {
		t.Errorf("inflated variables = %d, want 6", inflated)
	}
	if na.NumParams() <= base.NumParams() {
		t.Errorf("NEW-ALARM params %d not larger than ALARM %d", na.NumParams(), base.NumParams())
	}
}

func TestStripSinks(t *testing.T) {
	link, err := Generate(Link)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{724, 624, 324, 24} {
		sub, err := StripSinks(link, target)
		if err != nil {
			t.Fatalf("StripSinks(%d): %v", target, err)
		}
		if sub.Len() != target {
			t.Errorf("stripped to %d nodes, want %d", sub.Len(), target)
		}
		if target < 724 && sub.NumEdges() >= link.NumEdges() {
			t.Errorf("stripping to %d kept %d edges (original %d)", target, sub.NumEdges(), link.NumEdges())
		}
	}
	if _, err := StripSinks(link, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := StripSinks(link, 99999); err == nil {
		t.Error("oversized target accepted")
	}
}

func TestStripSinksMonotoneEdges(t *testing.T) {
	link, _ := Generate(Link)
	prev := link.NumEdges() + 1
	for _, target := range []int{724, 624, 524, 424, 324, 224, 124, 24} {
		sub, err := StripSinks(link, target)
		if err != nil {
			t.Fatal(err)
		}
		if sub.NumEdges() >= prev {
			t.Errorf("edges at %d nodes = %d, want < %d", target, sub.NumEdges(), prev)
		}
		prev = sub.NumEdges()
	}
}

func TestTreeAndNaiveBayes(t *testing.T) {
	tr, err := Tree(50, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 49 {
		t.Errorf("tree edges = %d, want 49", tr.NumEdges())
	}
	if got := tr.MaxInDegree(); got != 1 {
		t.Errorf("tree max in-degree = %d, want 1", got)
	}
	if _, err := Tree(0, 2, 1); err == nil {
		t.Error("empty tree accepted")
	}

	nb, err := NaiveBayesNet(4, []int{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if root, ok := core.IsNaiveBayes(nb); !ok || root != 0 {
		t.Errorf("NaiveBayesNet not recognized as NB (root=%d ok=%v)", root, ok)
	}
	if _, err := NaiveBayesNet(1, []int{2}); err == nil {
		t.Error("degenerate class accepted")
	}
	if _, err := NaiveBayesNet(2, []int{1}); err == nil {
		t.Error("degenerate feature accepted")
	}
}

func TestRandomDAG(t *testing.T) {
	net, err := RandomDAG(30, []int{2, 3}, 0.15, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 30 {
		t.Errorf("nodes = %d", net.Len())
	}
	if got := net.MaxInDegree(); got > 3 {
		t.Errorf("max in-degree = %d", got)
	}
	if _, err := RandomDAG(0, []int{2}, 0.5, 2, 1); err == nil {
		t.Error("invalid args accepted")
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range Names() {
		net, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if net.Len() == 0 {
			t.Errorf("ByName(%q) empty network", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	m, err := ModelByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	if m.Network().Len() != 37 {
		t.Errorf("alarm model has %d nodes", m.Network().Len())
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("unknown model name accepted")
	}
}

func TestGeneratedNetworksSampleable(t *testing.T) {
	// End-to-end sanity: sample from each Table I model; assignments valid.
	for _, name := range []string{"alarm", "hepar2"} {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := m.NewSampler(1)
		x := make([]int, m.Network().Len())
		for i := 0; i < 100; i++ {
			s.Sample(x)
			if !m.Network().ValidAssignment(x) {
				t.Fatalf("%s produced invalid assignment", name)
			}
			if p := m.JointProb(x); p <= 0 {
				t.Fatalf("%s sampled zero-probability assignment", name)
			}
		}
	}
}
