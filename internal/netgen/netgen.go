// Package netgen generates the Bayesian networks used by the experiments.
//
// The paper evaluates on four real networks from the bnlearn repository
// (ALARM, HEPAR II, LINK, MUNIN). Those .bif files are not available in this
// offline build, so netgen synthesizes *structural twins*: random DAGs with
// exactly the published node count, edge count and free-parameter count
// (Σ_i (J_i−1)·K_i) of Table I, with cardinality and in-degree profiles
// matching the published characteristics of each network. Communication cost
// and the approximation guarantees of the tracking algorithms depend only on
// these structural statistics and on the stream, so the twins preserve the
// qualitative behaviour of every experiment (see DESIGN.md §4). All
// generation is deterministic given the profile's seed.
package netgen

import (
	"fmt"
	"math"
	"sort"

	"distbayes/internal/bn"
)

// Profile describes a synthetic network family.
type Profile struct {
	// Name identifies the profile (e.g. "alarm").
	Name string
	// Nodes, Edges and Params are the exact targets from Table I.
	Nodes, Edges, Params int
	// MaxInDegree caps the number of parents of any node.
	MaxInDegree int
	// Cards is the palette of base cardinalities, sampled uniformly.
	Cards []int
	// MaxCard bounds cardinalities during parameter-count adjustment.
	MaxCard int
	// RootFrac is the approximate fraction of parentless nodes.
	RootFrac float64
	// Seed drives all structure randomness.
	Seed uint64
}

// Profiles for the four Table I networks. The published figures are:
//
//	ALARM     37 nodes   46 edges    509 parameters
//	HEPAR II  70 nodes  123 edges   1453 parameters
//	LINK     724 nodes 1125 edges  14211 parameters
//	MUNIN   1041 nodes 1397 edges  80592 parameters
var (
	Alarm = Profile{
		Name: "alarm", Nodes: 37, Edges: 46, Params: 509,
		MaxInDegree: 4, Cards: []int{2, 2, 3, 3, 4}, MaxCard: 8,
		RootFrac: 0.30, Seed: 0xA1A2,
	}
	HeparII = Profile{
		Name: "hepar2", Nodes: 70, Edges: 123, Params: 1453,
		MaxInDegree: 6, Cards: []int{2, 2, 2, 3, 3, 4}, MaxCard: 8,
		RootFrac: 0.25, Seed: 0x4E9A,
	}
	Link = Profile{
		Name: "link", Nodes: 724, Edges: 1125, Params: 14211,
		MaxInDegree: 3, Cards: []int{2, 2, 2, 3, 4}, MaxCard: 8,
		RootFrac: 0.25, Seed: 0x11CC,
	}
	Munin = Profile{
		Name: "munin", Nodes: 1041, Edges: 1397, Params: 80592,
		MaxInDegree: 3, Cards: []int{3, 4, 5, 6, 7, 8, 10, 12}, MaxCard: 25,
		RootFrac: 0.25, Seed: 0x3141,
	}
)

// Generate builds the network for a profile, matching Nodes and Edges exactly
// and Params exactly (after calibration and leaf adjustment). It returns an
// error if the targets are unreachable with the given palette and caps.
func Generate(p Profile) (*bn.Network, error) {
	if p.Nodes < 2 || p.Edges < 1 || p.Params < 1 {
		return nil, fmt.Errorf("netgen: invalid profile targets %+v", p)
	}
	if p.Edges > maxEdges(p.Nodes, p.MaxInDegree) {
		return nil, fmt.Errorf("netgen: %d edges unreachable with %d nodes and max in-degree %d",
			p.Edges, p.Nodes, p.MaxInDegree)
	}
	rng := bn.NewRNG(p.Seed)

	parents := buildStructure(p, rng)

	// Base cards from the palette, then a global calibration exponent that
	// scales cardinalities until the parameter count brackets the target.
	base := make([]float64, p.Nodes)
	for i := range base {
		base[i] = float64(p.Cards[rng.Intn(len(p.Cards))])
	}
	cards := calibrateCards(p, parents, base)

	// Exact parameter matching by adjusting leaf cardinalities.
	cards, err := adjustLeaves(p, parents, cards, rng)
	if err != nil {
		return nil, err
	}

	vars := make([]bn.Variable, p.Nodes)
	for i := range vars {
		vars[i] = bn.Variable{
			Name:    fmt.Sprintf("%s_%d", p.Name, i),
			Card:    cards[i],
			Parents: parents[i],
		}
	}
	net, err := bn.NewNetwork(vars)
	if err != nil {
		return nil, fmt.Errorf("netgen: %s: %w", p.Name, err)
	}
	if net.NumEdges() != p.Edges {
		return nil, fmt.Errorf("netgen: %s has %d edges, want %d", p.Name, net.NumEdges(), p.Edges)
	}
	if net.NumParams() != p.Params {
		return nil, fmt.Errorf("netgen: %s has %d params, want %d", p.Name, net.NumParams(), p.Params)
	}
	return net, nil
}

func maxEdges(n, dmax int) int {
	e := 0
	for i := 0; i < n; i++ {
		m := i
		if m > dmax {
			m = dmax
		}
		e += m
	}
	return e
}

// buildStructure creates the parent lists of a DAG with exactly p.Edges
// edges: node indices are already a topological order (parents have smaller
// indices). A backbone pass gives most non-root nodes one parent; the
// remaining edges are scattered respecting the in-degree cap.
func buildStructure(p Profile, rng *bn.RNG) [][]int {
	n := p.Nodes
	parents := make([][]int, n)
	hasParent := make([]bool, n)

	// Backbone: node i > 0 gets one parent from [0, i) with probability
	// 1-RootFrac, biased toward recent nodes to create chains (as in the
	// pedigree/medical networks being imitated).
	edgeCount := 0
	for i := 1; i < n && edgeCount < p.Edges; i++ {
		if rng.Float64() < p.RootFrac {
			continue
		}
		lo := 0
		if i > 8 && rng.Float64() < 0.7 {
			lo = i - 8 // local attachment window
		}
		par := lo + rng.Intn(i-lo)
		parents[i] = append(parents[i], par)
		hasParent[i] = true
		edgeCount++
	}

	// Scatter the remaining edges.
	for guard := 0; edgeCount < p.Edges && guard < 100*p.Edges; guard++ {
		i := 1 + rng.Intn(n-1)
		if len(parents[i]) >= p.MaxInDegree || len(parents[i]) >= i {
			continue
		}
		par := rng.Intn(i)
		dup := false
		for _, q := range parents[i] {
			if q == par {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		parents[i] = append(parents[i], par)
		hasParent[i] = true
		edgeCount++
	}
	// Deterministic fill if the random scatter stalled (dense tail).
	for i := 1; i < n && edgeCount < p.Edges; i++ {
		for par := 0; par < i && edgeCount < p.Edges; par++ {
			if len(parents[i]) >= p.MaxInDegree {
				break
			}
			dup := false
			for _, q := range parents[i] {
				if q == par {
					dup = true
					break
				}
			}
			if !dup {
				parents[i] = append(parents[i], par)
				edgeCount++
			}
		}
	}
	for i := range parents {
		sort.Ints(parents[i])
	}
	return parents
}

// paramCount computes Σ (J_i − 1)·K_i for a candidate cardinality vector.
func paramCount(parents [][]int, cards []int) int {
	total := 0
	for i, ps := range parents {
		k := 1
		for _, p := range ps {
			k *= cards[p]
		}
		total += (cards[i] - 1) * k
	}
	return total
}

// calibrateCards searches a global exponent s so that cards round(base^s)
// (clamped to [2, MaxCard]) lands the parameter count just below the target;
// the leaf adjuster then closes the gap exactly.
func calibrateCards(p Profile, parents [][]int, base []float64) []int {
	apply := func(s float64) []int {
		cards := make([]int, len(base))
		for i, b := range base {
			c := int(math.Round(math.Pow(b, s)))
			if c < 2 {
				c = 2
			}
			if c > p.MaxCard {
				c = p.MaxCard
			}
			cards[i] = c
		}
		return cards
	}
	lo, hi := 0.2, 2.5
	// paramCount is monotone non-decreasing in s; 60 bisection steps are
	// plenty for the step function to stabilize.
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if paramCount(parents, apply(mid)) > p.Params {
			hi = mid
		} else {
			lo = mid
		}
	}
	return apply(lo)
}

// adjustLeaves nudges the cardinalities of leaf nodes (no children — their
// cards do not feed any other CPT) until the parameter count matches the
// target exactly: changing leaf i by ±1 changes the count by exactly K_i.
func adjustLeaves(p Profile, parents [][]int, cards []int, rng *bn.RNG) ([]int, error) {
	n := len(cards)
	isLeaf := make([]bool, n)
	for i := range isLeaf {
		isLeaf[i] = true
	}
	for _, ps := range parents {
		for _, q := range ps {
			isLeaf[q] = false
		}
	}
	kOf := func(i int) int {
		k := 1
		for _, q := range parents[i] {
			k *= cards[q]
		}
		return k
	}
	var leaves []int
	for i := range isLeaf {
		if isLeaf[i] {
			leaves = append(leaves, i)
		}
	}
	if len(leaves) == 0 {
		return nil, fmt.Errorf("netgen: %s: no leaves to adjust", p.Name)
	}

	diff := p.Params - paramCount(parents, cards)
	const maxIters = 200000
	for iter := 0; diff != 0 && iter < maxIters; iter++ {
		// Best greedy move: the leaf whose K gets |diff| closest to zero.
		bestLeaf, bestDelta, bestAbs := -1, 0, abs(diff)
		for _, i := range leaves {
			k := kOf(i)
			for _, delta := range [2]int{1, -1} {
				nc := cards[i] + delta
				if nc < 2 || nc > p.MaxCard {
					continue
				}
				nd := abs(diff - delta*k)
				if nd < bestAbs {
					bestLeaf, bestDelta, bestAbs = i, delta, nd
				}
			}
		}
		if bestLeaf < 0 {
			// No improving move: random admissible step to escape.
			i := leaves[rng.Intn(len(leaves))]
			delta := 1
			if rng.Bernoulli(0.5) {
				delta = -1
			}
			nc := cards[i] + delta
			if nc < 2 || nc > p.MaxCard {
				continue
			}
			cards[i] = nc
			diff -= delta * kOf(i)
			continue
		}
		cards[bestLeaf] += bestDelta
		diff -= bestDelta * kOf(bestLeaf)
	}
	if diff != 0 {
		return nil, fmt.Errorf("netgen: %s: could not match %d params (residual %d)", p.Name, p.Params, diff)
	}
	return cards, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
