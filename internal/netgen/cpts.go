package netgen

import (
	"fmt"

	"distbayes/internal/bn"
)

// CPTOptions controls ground-truth parameter generation.
type CPTOptions struct {
	// Alpha is the symmetric Dirichlet concentration of each CPT row; 1 is
	// uniform over the simplex, smaller is spikier.
	Alpha float64
	// Floor mixes in a uniform component so every entry is at least
	// Floor/J_i, keeping the λ of Lemma 3 bounded away from zero and test
	// events observable.
	Floor float64
	// Seed drives the draw.
	Seed uint64
}

// DefaultCPTOptions mirrors the character of the real repository networks:
// medical/genetic CPDs are strongly skewed (many near-deterministic rows), so
// rows are drawn from Dirichlet(0.3) with a 2% uniform floor. The skew
// matters for communication: it concentrates counter traffic on hot cells,
// which is what lets the approximate counters enter their sampling regime.
func DefaultCPTOptions() CPTOptions { return CPTOptions{Alpha: 0.3, Floor: 0.02, Seed: 0xC0DE} }

// GenCPTs samples ground-truth parameters for net.
func GenCPTs(net *bn.Network, opt CPTOptions) ([]*bn.CPT, error) {
	if opt.Alpha <= 0 {
		return nil, fmt.Errorf("netgen: alpha %v, want > 0", opt.Alpha)
	}
	if opt.Floor < 0 || opt.Floor >= 1 {
		return nil, fmt.Errorf("netgen: floor %v, want [0,1)", opt.Floor)
	}
	rng := bn.NewRNG(opt.Seed)
	cpds := make([]*bn.CPT, net.Len())
	for i := 0; i < net.Len(); i++ {
		j, k := net.Card(i), net.ParentCard(i)
		tbl := make([]float64, j*k)
		for kk := 0; kk < k; kk++ {
			row := tbl[kk*j : (kk+1)*j]
			rng.Dirichlet(opt.Alpha, row)
			if opt.Floor > 0 {
				u := opt.Floor / float64(j)
				for v := range row {
					row[v] = (1-opt.Floor)*row[v] + u
				}
			}
		}
		var err error
		cpds[i], err = bn.NewCPT(j, k, tbl)
		if err != nil {
			return nil, fmt.Errorf("netgen: CPT %d: %w", i, err)
		}
	}
	return cpds, nil
}

// GenModel generates both structure and parameters for a profile.
func GenModel(p Profile, opt CPTOptions) (*bn.Model, error) {
	net, err := Generate(p)
	if err != nil {
		return nil, err
	}
	cpds, err := GenCPTs(net, opt)
	if err != nil {
		return nil, err
	}
	return bn.NewModel(net, cpds)
}
