package netgen

import (
	"fmt"
	"strings"

	"distbayes/internal/bn"
)

// NewAlarm reproduces the paper's semi-synthetic NEW-ALARM network
// (Section VI, "Communication Cost of UNIFORM vs. NONUNIFORM"): the ALARM
// structure is kept but the domains of 6 randomly chosen variables are
// inflated to 20 values, creating the cardinality imbalance that NONUNIFORM
// exploits.
func NewAlarm() (*bn.Network, error) {
	net, err := Generate(Alarm)
	if err != nil {
		return nil, err
	}
	rng := bn.NewRNG(0x9EA1)
	vars := make([]bn.Variable, net.Len())
	for i := range vars {
		vars[i] = net.Var(i)
	}
	inflated := 0
	for guard := 0; inflated < 6 && guard < 1000; guard++ {
		i := rng.Intn(len(vars))
		if vars[i].Card >= 20 {
			continue
		}
		vars[i].Card = 20
		inflated++
	}
	if inflated < 6 {
		return nil, fmt.Errorf("netgen: could not inflate 6 variables")
	}
	out, err := bn.NewNetwork(vars)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StripSinks removes sink nodes (out-degree zero) one at a time — the
// procedure used for the Figure 9 scaling study — until exactly target
// variables remain, and returns the renumbered network. Every DAG has a
// sink, so this always succeeds for 1 <= target <= n.
func StripSinks(net *bn.Network, target int) (*bn.Network, error) {
	n := net.Len()
	if target < 1 || target > n {
		return nil, fmt.Errorf("netgen: strip target %d out of range [1,%d]", target, n)
	}
	alive := make([]bool, n)
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		alive[i] = true
		childCount[i] = len(net.Children(i))
	}
	remaining := n
	for remaining > target {
		// Remove the highest-indexed current sink (deterministic order, as
		// the paper removes them "one after another").
		removed := -1
		for i := n - 1; i >= 0; i-- {
			if alive[i] && childCount[i] == 0 {
				removed = i
				break
			}
		}
		if removed < 0 {
			return nil, fmt.Errorf("netgen: no sink found (graph corrupt)")
		}
		alive[removed] = false
		for _, p := range net.Parents(removed) {
			childCount[p]--
		}
		remaining--
	}

	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	var vars []bn.Variable
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		remap[i] = len(vars)
		v := net.Var(i)
		ps := make([]int, len(v.Parents))
		for j, p := range v.Parents {
			// Parents are never removed before their children, so remap is
			// already set for them.
			ps[j] = remap[p]
		}
		vars = append(vars, bn.Variable{Name: v.Name, Card: v.Card, Parents: ps})
	}
	return bn.NewNetwork(vars)
}

// Tree generates a random tree-structured network (Section V, Lemma 10):
// node 0 is the root and node i attaches to a uniform earlier node.
func Tree(n, card int, seed uint64) (*bn.Network, error) {
	if n < 1 || card < 2 {
		return nil, fmt.Errorf("netgen: invalid tree shape n=%d card=%d", n, card)
	}
	rng := bn.NewRNG(seed)
	vars := make([]bn.Variable, n)
	vars[0] = bn.Variable{Name: "t_0", Card: card}
	for i := 1; i < n; i++ {
		vars[i] = bn.Variable{Name: fmt.Sprintf("t_%d", i), Card: card, Parents: []int{rng.Intn(i)}}
	}
	return bn.NewNetwork(vars)
}

// NaiveBayesNet generates the two-layer Naïve-Bayes network of Section V:
// variable 0 is the class with classCard values; feature i has featureCards[i]
// values and the class as its only parent.
func NaiveBayesNet(classCard int, featureCards []int) (*bn.Network, error) {
	if classCard < 2 {
		return nil, fmt.Errorf("netgen: class cardinality %d < 2", classCard)
	}
	vars := make([]bn.Variable, 1+len(featureCards))
	vars[0] = bn.Variable{Name: "class", Card: classCard}
	for i, c := range featureCards {
		if c < 2 {
			return nil, fmt.Errorf("netgen: feature %d cardinality %d < 2", i, c)
		}
		vars[1+i] = bn.Variable{Name: fmt.Sprintf("f_%d", i), Card: c, Parents: []int{0}}
	}
	return bn.NewNetwork(vars)
}

// RandomDAG generates an arbitrary random DAG network without parameter-count
// targeting: n nodes, approximately edgeProb·n·min(window,i) edges, cards
// drawn from the palette.
func RandomDAG(n int, cards []int, edgeProb float64, maxInDegree int, seed uint64) (*bn.Network, error) {
	if n < 1 || len(cards) == 0 || maxInDegree < 1 {
		return nil, fmt.Errorf("netgen: invalid RandomDAG arguments")
	}
	rng := bn.NewRNG(seed)
	vars := make([]bn.Variable, n)
	for i := range vars {
		vars[i] = bn.Variable{Name: fmt.Sprintf("r_%d", i), Card: cards[rng.Intn(len(cards))]}
		for p := 0; p < i && len(vars[i].Parents) < maxInDegree; p++ {
			if rng.Float64() < edgeProb {
				vars[i].Parents = append(vars[i].Parents, p)
			}
		}
	}
	return bn.NewNetwork(vars)
}

// Names lists the registry of Table I network names.
func Names() []string { return []string{"alarm", "hepar2", "link", "munin", "new-alarm"} }

// ByName returns the network for a Table I name (see Names), or a
// parameterized random tree for a "tree:<n>:<card>:<seed>" name. Tree names
// are what the drift experiments use: two trees of the same n and card (any
// seeds) have identical variable names and cardinalities and differ only in
// structure, and the name is enough for both ends of a cluster to
// regenerate the network deterministically — structure never travels.
func ByName(name string) (*bn.Network, error) {
	if rest, ok := strings.CutPrefix(name, "tree:"); ok {
		var n, card int
		var seed uint64
		if _, err := fmt.Sscanf(rest, "%d:%d:%d", &n, &card, &seed); err != nil {
			return nil, fmt.Errorf("netgen: bad tree name %q, want tree:<n>:<card>:<seed>", name)
		}
		return Tree(n, card, seed)
	}
	switch name {
	case "alarm":
		return Generate(Alarm)
	case "hepar2":
		return Generate(HeparII)
	case "link":
		return Generate(Link)
	case "munin":
		return Generate(Munin)
	case "new-alarm":
		return NewAlarm()
	default:
		return nil, fmt.Errorf("netgen: unknown network %q (known: %v, tree:<n>:<card>:<seed>)", name, Names())
	}
}

// ModelByName returns the network with default ground-truth CPTs.
func ModelByName(name string) (*bn.Model, error) {
	net, err := ByName(name)
	if err != nil {
		return nil, err
	}
	cpds, err := GenCPTs(net, DefaultCPTOptions())
	if err != nil {
		return nil, err
	}
	return bn.NewModel(net, cpds)
}
