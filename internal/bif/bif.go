// Package bif reads and writes Bayesian networks in a subset of the BIF
// (Bayesian Interchange Format) used by the bnlearn repository the paper
// takes its networks from. With network access, the genuine ALARM/HEPAR
// II/LINK/MUNIN .bif files can be loaded in place of the synthetic twins of
// internal/netgen; the format is also a convenient human-readable exchange
// format for models built with this library.
//
// Supported grammar (whitespace-insensitive):
//
//	network <name> { }
//	variable <name> {
//	  type discrete [ <card> ] { <value>, ... };
//	}
//	probability ( <child> ) {
//	  table <p0>, <p1>, ...;
//	}
//	probability ( <child> | <parent>, ... ) {
//	  ( <v1>, <v2>, ... ) <p0>, <p1>, ...;
//	  ...
//	}
//
// Comments (// and /* */) are ignored. Probability rows are indexed by the
// named parent values, so row order in the file is free.
package bif

import (
	"fmt"
	"strconv"
	"strings"

	"distbayes/internal/bn"
)

// Marshal renders a model in BIF.
func Marshal(name string, m *bn.Model) ([]byte, error) {
	if name == "" {
		name = "unnamed"
	}
	net := m.Network()
	var b strings.Builder
	fmt.Fprintf(&b, "network %s {\n}\n", ident(name))
	for i := 0; i < net.Len(); i++ {
		v := net.Var(i)
		fmt.Fprintf(&b, "variable %s {\n  type discrete [ %d ] { ", ident(v.Name), v.Card)
		for j := 0; j < v.Card; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(valueName(j))
		}
		b.WriteString(" };\n}\n")
	}
	for i := 0; i < net.Len(); i++ {
		v := net.Var(i)
		if len(v.Parents) == 0 {
			fmt.Fprintf(&b, "probability ( %s ) {\n  table %s;\n}\n",
				ident(v.Name), probRow(m.CPD(i).Row(0)))
			continue
		}
		fmt.Fprintf(&b, "probability ( %s |", ident(v.Name))
		for pi, p := range v.Parents {
			if pi > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s", ident(net.Var(p).Name))
		}
		b.WriteString(" ) {\n")
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			vals := net.ParentValues(i, pidx)
			b.WriteString("  (")
			for vi, val := range vals {
				if vi > 0 {
					b.WriteString(",")
				}
				b.WriteString(" " + valueName(val))
			}
			fmt.Fprintf(&b, " ) %s;\n", probRow(m.CPD(i).Row(pidx)))
		}
		b.WriteString("}\n")
	}
	return []byte(b.String()), nil
}

// valueName is the canonical value label used by Marshal: s0, s1, ...
func valueName(j int) string { return "s" + strconv.Itoa(j) }

func probRow(row []float64) string {
	parts := make([]string, len(row))
	for i, p := range row {
		parts[i] = strconv.FormatFloat(p, 'g', 17, 64)
	}
	return strings.Join(parts, ", ")
}

// ident sanitizes a name into a BIF identifier.
func ident(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// Unmarshal parses a BIF document into a model. Variables keep file order;
// parent references may be forward or backward (the DAG check happens in
// bn.NewNetwork).
func Unmarshal(data []byte) (*bn.Model, error) {
	p := &parser{toks: tokenize(string(data))}
	doc, err := p.parse()
	if err != nil {
		return nil, err
	}
	return doc.build()
}

// --- tokenizer ---

func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(s) && s[i+1] == '*':
			i += 2
			for i+1 < len(s) && !(s[i] == '*' && s[i+1] == '/') {
				i++
			}
			i += 2
		case strings.ContainsRune("{}()[]|,;", rune(c)):
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(s) && !strings.ContainsRune("{}()[]|,; \t\n\r", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

// --- parser ---

type bifVariable struct {
	name   string
	values []string
}

type bifProb struct {
	child   string
	parents []string
	// table is set for root CPDs; rows maps parent-value tuples to rows.
	table []float64
	rows  map[string][]float64
}

type bifDoc struct {
	vars  []bifVariable
	probs []bifProb
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) next() (string, error) {
	if p.pos >= len(p.toks) {
		return "", fmt.Errorf("bif: unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *parser) expect(want string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("bif: expected %q, got %q (token %d)", want, t, p.pos)
	}
	return nil
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) parse() (*bifDoc, error) {
	doc := &bifDoc{}
	for p.pos < len(p.toks) {
		kw, err := p.next()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "network":
			if _, err := p.next(); err != nil { // name
				return nil, err
			}
			if err := p.skipBlock(); err != nil {
				return nil, err
			}
		case "variable":
			v, err := p.parseVariable()
			if err != nil {
				return nil, err
			}
			doc.vars = append(doc.vars, v)
		case "probability":
			pr, err := p.parseProbability()
			if err != nil {
				return nil, err
			}
			doc.probs = append(doc.probs, pr)
		default:
			return nil, fmt.Errorf("bif: unexpected token %q", kw)
		}
	}
	return doc, nil
}

func (p *parser) skipBlock() error {
	if err := p.expect("{"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t {
		case "{":
			depth++
		case "}":
			depth--
		}
	}
	return nil
}

func (p *parser) parseVariable() (bifVariable, error) {
	var v bifVariable
	name, err := p.next()
	if err != nil {
		return v, err
	}
	v.name = name
	if err := p.expect("{"); err != nil {
		return v, err
	}
	if err := p.expect("type"); err != nil {
		return v, err
	}
	if err := p.expect("discrete"); err != nil {
		return v, err
	}
	if err := p.expect("["); err != nil {
		return v, err
	}
	cardTok, err := p.next()
	if err != nil {
		return v, err
	}
	card, err := strconv.Atoi(cardTok)
	if err != nil || card < 1 {
		return v, fmt.Errorf("bif: bad cardinality %q for %s", cardTok, name)
	}
	if err := p.expect("]"); err != nil {
		return v, err
	}
	if err := p.expect("{"); err != nil {
		return v, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return v, err
		}
		if t == "}" {
			break
		}
		if t == "," {
			continue
		}
		v.values = append(v.values, t)
	}
	if len(v.values) != card {
		return v, fmt.Errorf("bif: variable %s declares %d values, cardinality %d", name, len(v.values), card)
	}
	if err := p.expect(";"); err != nil {
		// Tolerate a missing trailing semicolon inside the block.
		p.pos--
	}
	if err := p.expect("}"); err != nil {
		return v, err
	}
	return v, nil
}

func (p *parser) parseProbability() (bifProb, error) {
	var pr bifProb
	pr.rows = map[string][]float64{}
	if err := p.expect("("); err != nil {
		return pr, err
	}
	child, err := p.next()
	if err != nil {
		return pr, err
	}
	pr.child = child
	if p.peek() == "|" {
		p.pos++
		for {
			t, err := p.next()
			if err != nil {
				return pr, err
			}
			if t == ")" {
				break
			}
			if t == "," {
				continue
			}
			pr.parents = append(pr.parents, t)
		}
	} else if err := p.expect(")"); err != nil {
		return pr, err
	}
	if err := p.expect("{"); err != nil {
		return pr, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return pr, err
		}
		switch t {
		case "}":
			return pr, nil
		case "table":
			row, err := p.parseNumbersUntil(";")
			if err != nil {
				return pr, err
			}
			pr.table = row
		case "(":
			var key []string
			for {
				t, err := p.next()
				if err != nil {
					return pr, err
				}
				if t == ")" {
					break
				}
				if t == "," {
					continue
				}
				key = append(key, t)
			}
			row, err := p.parseNumbersUntil(";")
			if err != nil {
				return pr, err
			}
			pr.rows[strings.Join(key, "\x00")] = row
		default:
			return pr, fmt.Errorf("bif: unexpected token %q in probability block", t)
		}
	}
}

func (p *parser) parseNumbersUntil(end string) ([]float64, error) {
	var row []float64
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t == end {
			return row, nil
		}
		if t == "," {
			continue
		}
		f, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return nil, fmt.Errorf("bif: bad probability %q", t)
		}
		row = append(row, f)
	}
}

// --- document -> model ---

func (d *bifDoc) build() (*bn.Model, error) {
	if len(d.vars) == 0 {
		return nil, fmt.Errorf("bif: no variables")
	}
	index := map[string]int{}
	valueIndex := make([]map[string]int, len(d.vars))
	vars := make([]bn.Variable, len(d.vars))
	for i, v := range d.vars {
		if _, dup := index[v.name]; dup {
			return nil, fmt.Errorf("bif: duplicate variable %s", v.name)
		}
		index[v.name] = i
		vars[i] = bn.Variable{Name: v.name, Card: len(v.values)}
		valueIndex[i] = map[string]int{}
		for j, val := range v.values {
			if _, dup := valueIndex[i][val]; dup {
				return nil, fmt.Errorf("bif: variable %s repeats value %s", v.name, val)
			}
			valueIndex[i][val] = j
		}
	}

	probs := make([]*bifProb, len(d.vars))
	for pi := range d.probs {
		pr := &d.probs[pi]
		ci, ok := index[pr.child]
		if !ok {
			return nil, fmt.Errorf("bif: probability for unknown variable %s", pr.child)
		}
		if probs[ci] != nil {
			return nil, fmt.Errorf("bif: duplicate probability block for %s", pr.child)
		}
		probs[ci] = pr
		for _, pn := range pr.parents {
			pidx, ok := index[pn]
			if !ok {
				return nil, fmt.Errorf("bif: unknown parent %s of %s", pn, pr.child)
			}
			vars[ci].Parents = append(vars[ci].Parents, pidx)
		}
	}
	for i := range vars {
		if probs[i] == nil {
			return nil, fmt.Errorf("bif: missing probability block for %s", vars[i].Name)
		}
	}

	net, err := bn.NewNetwork(vars)
	if err != nil {
		return nil, err
	}

	cpds := make([]*bn.CPT, net.Len())
	for i := 0; i < net.Len(); i++ {
		pr := probs[i]
		card, kcard := net.Card(i), net.ParentCard(i)
		tbl := make([]float64, card*kcard)
		if len(pr.parents) == 0 {
			if len(pr.table) != card {
				return nil, fmt.Errorf("bif: %s table has %d entries, want %d", vars[i].Name, len(pr.table), card)
			}
			copy(tbl, pr.table)
		} else {
			if len(pr.rows) != kcard {
				return nil, fmt.Errorf("bif: %s has %d rows, want %d", vars[i].Name, len(pr.rows), kcard)
			}
			for key, row := range pr.rows {
				vals := strings.Split(key, "\x00")
				if len(vals) != len(pr.parents) {
					return nil, fmt.Errorf("bif: %s row key has %d values, want %d", vars[i].Name, len(vals), len(pr.parents))
				}
				pv := make([]int, len(vals))
				for j, vname := range vals {
					parent := net.Parents(i)[j]
					vi, ok := valueIndex[parent][vname]
					if !ok {
						return nil, fmt.Errorf("bif: %s row names unknown value %s of %s", vars[i].Name, vname, d.vars[parent].name)
					}
					pv[j] = vi
				}
				if len(row) != card {
					return nil, fmt.Errorf("bif: %s row has %d entries, want %d", vars[i].Name, len(row), card)
				}
				copy(tbl[net.ParentIndexOf(i, pv)*card:], row)
			}
		}
		cpds[i], err = bn.NewCPT(card, kcard, tbl)
		if err != nil {
			return nil, fmt.Errorf("bif: %s: %w", vars[i].Name, err)
		}
	}
	return bn.NewModel(net, cpds)
}
