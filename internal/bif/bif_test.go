package bif

import (
	"math"
	"strings"
	"testing"

	"distbayes/internal/bn"
	"distbayes/internal/netgen"
)

const sampleBIF = `
// A classic two-node example.
network rain_grass { }
variable Rain {
  type discrete [ 2 ] { no, yes };
}
variable Grass {
  type discrete [ 2 ] { dry, wet };
}
probability ( Rain ) {
  table 0.8, 0.2;
}
probability ( Grass | Rain ) {
  ( no ) 0.9, 0.1;
  ( yes ) 0.2, 0.8;
}
`

func TestUnmarshalSample(t *testing.T) {
	m, err := Unmarshal([]byte(sampleBIF))
	if err != nil {
		t.Fatal(err)
	}
	net := m.Network()
	if net.Len() != 2 {
		t.Fatalf("variables = %d", net.Len())
	}
	if net.Var(0).Name != "Rain" || net.Var(1).Name != "Grass" {
		t.Errorf("names = %s, %s", net.Var(0).Name, net.Var(1).Name)
	}
	if got := m.CPD(0).P(1, 0); got != 0.2 {
		t.Errorf("P[Rain=yes] = %v", got)
	}
	if got := m.CPD(1).P(1, 1); got != 0.8 {
		t.Errorf("P[Grass=wet|Rain=yes] = %v", got)
	}
	// Joint: P[rain, wet] = 0.2*0.8.
	if got := m.JointProb([]int{1, 1}); math.Abs(got-0.16) > 1e-12 {
		t.Errorf("joint = %v", got)
	}
}

func TestRowsInAnyOrder(t *testing.T) {
	swapped := strings.Replace(sampleBIF,
		"( no ) 0.9, 0.1;\n  ( yes ) 0.2, 0.8;",
		"( yes ) 0.2, 0.8;\n  ( no ) 0.9, 0.1;", 1)
	m, err := Unmarshal([]byte(swapped))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CPD(1).P(1, 1); got != 0.8 {
		t.Errorf("row order sensitivity: P[wet|yes] = %v", got)
	}
}

func TestCommentsIgnored(t *testing.T) {
	commented := "/* header \n comment */\n" + strings.ReplaceAll(sampleBIF, "table 0.8, 0.2;", "table 0.8, 0.2; // prior")
	if _, err := Unmarshal([]byte(commented)); err != nil {
		t.Fatalf("comments broke parsing: %v", err)
	}
}

func TestMarshalRoundTripGeneratedNetworks(t *testing.T) {
	for _, name := range []string{"alarm", "hepar2"} {
		m, err := netgen.ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := Marshal(name, m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s round trip: %v", name, err)
		}
		net, bnet := m.Network(), back.Network()
		if bnet.Len() != net.Len() || bnet.NumEdges() != net.NumEdges() || bnet.NumParams() != net.NumParams() {
			t.Fatalf("%s structure changed: %d/%d/%d vs %d/%d/%d", name,
				bnet.Len(), bnet.NumEdges(), bnet.NumParams(),
				net.Len(), net.NumEdges(), net.NumParams())
		}
		// Spot-check joint probabilities agree.
		s := m.NewSampler(5)
		x := make([]int, net.Len())
		for trial := 0; trial < 50; trial++ {
			s.Sample(x)
			a, b := m.JointProb(x), back.JointProb(x)
			if math.Abs(a-b) > 1e-12*math.Max(a, 1e-300) {
				t.Fatalf("%s joint differs: %v vs %v", name, a, b)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"unknown child", sampleBIF + "\nprobability ( Ghost ) { table 1.0; }"},
		{"duplicate block", sampleBIF + "\nprobability ( Rain ) { table 0.5, 0.5; }"},
		{"missing block", `
			network x { }
			variable A { type discrete [ 2 ] { a, b }; }
		`},
		{"bad card", `
			network x { }
			variable A { type discrete [ 0 ] { }; }
			probability ( A ) { table 1.0; }
		`},
		{"wrong row size", strings.Replace(sampleBIF, "table 0.8, 0.2;", "table 0.8;", 1)},
		{"unnormalized", strings.Replace(sampleBIF, "table 0.8, 0.2;", "table 0.8, 0.9;", 1)},
		{"bad number", strings.Replace(sampleBIF, "0.8, 0.2", "0.8, zebra", 1)},
		{"unknown parent value", strings.Replace(sampleBIF, "( no )", "( maybe )", 1)},
		{"duplicate variable", sampleBIF + `
			variable Rain { type discrete [ 2 ] { no, yes }; }
		`},
		{"cycle", `
			network x { }
			variable A { type discrete [ 2 ] { a0, a1 }; }
			variable B { type discrete [ 2 ] { b0, b1 }; }
			probability ( A | B ) { ( b0 ) 0.5, 0.5; ( b1 ) 0.5, 0.5; }
			probability ( B | A ) { ( a0 ) 0.5, 0.5; ( a1 ) 0.5, 0.5; }
		`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(tc.doc)); err == nil {
				t.Errorf("accepted invalid document")
			}
		})
	}
}

func TestIdentSanitization(t *testing.T) {
	nw := bn.MustNetwork([]bn.Variable{{Name: "weird name!", Card: 2}})
	cpt, _ := bn.NewCPT(2, 1, []float64{0.5, 0.5})
	m := bn.MustModel(nw, []*bn.CPT{cpt})
	data, err := Marshal("my net", m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "weird name!") {
		t.Error("unsanitized identifier in output")
	}
	if _, err := Unmarshal(data); err != nil {
		t.Errorf("sanitized output failed to parse: %v", err)
	}
}
