package stream

import (
	"context"
	"sync"
	"sync/atomic"

	"distbayes/internal/bn"
	"distbayes/internal/core"
)

// This file is the parallel half of the workload package: per-site
// sub-streams, copying batch generators, and drivers that feed a
// core.Tracker from one goroutine per site — the in-process analogue of the
// paper's k distributed sites absorbing the training stream concurrently.

// FixedAssigner routes every event to one fixed site: the sub-stream seen by
// a single site processor when the stream is horizontally partitioned.
type FixedAssigner struct{ site int }

// NewFixedAssigner creates an assigner pinned to site.
func NewFixedAssigner(site int) *FixedAssigner { return &FixedAssigner{site: site} }

// Next implements Assigner.
func (a *FixedAssigner) Next() int { return a.site }

// NextEvents appends the next n events to dst, giving each event its own
// backing array (unlike Next, whose buffer is reused), so the result can be
// retained, replayed against several trackers, or handed across goroutines.
func (t *Training) NextEvents(dst []core.Event, n int) []core.Event {
	for j := 0; j < n; j++ {
		site, x := t.Next()
		cp := make([]int, len(x))
		copy(cp, x)
		dst = append(dst, core.Event{Site: site, X: cp})
	}
	return dst
}

// NewSiteTraining builds site's independent training sub-stream: a sampler
// seeded seed+site whose every event is routed to site. It is the single
// source of the per-site sub-stream derivation — the TCP cluster sites and
// the in-process parallel engine both use it, which is what makes a cluster
// run and a sharded in-process run over the same StreamSeed ingest
// identical events.
func NewSiteTraining(model *bn.Model, site int, seed uint64) *Training {
	return NewTraining(model, NewFixedAssigner(site), seed+uint64(site))
}

// NewSiteTrainings builds one sub-stream per site via NewSiteTraining. The
// union over sites is a valid model stream, but it is a different
// realization than a single NewTraining stream.
func NewSiteTrainings(model *bn.Model, sites int, seed uint64) []*Training {
	out := make([]*Training, sites)
	for s := 0; s < sites; s++ {
		out[s] = NewSiteTraining(model, s, seed)
	}
	return out
}

// DriveParallel ingests perSite events from each sub-stream into tr on one
// goroutine per stream, in batches of batchSize events whose buffers are
// reused across batches. Sampling and parent-index computation run fully in
// parallel; only the counter increments serialize on the tracker's lock
// stripes. On a delta-buffered tracker each goroutine instead accumulates
// into its own DeltaBuffer — contention-free ingestion — and publishes it
// before the driver returns, so the tracker is fully caught up afterwards.
// Each goroutine's event sequence is deterministic in its stream's seed.
// Returns the total number of events ingested.
func DriveParallel(tr *core.Tracker, streams []*Training, perSite, batchSize int) int64 {
	if perSite <= 0 {
		return 0
	}
	if batchSize < 1 {
		batchSize = 256
	}
	n := tr.Network().Len()
	buffered := tr.Config().DeltaBuffered
	var wg sync.WaitGroup
	for s := range streams {
		wg.Add(1)
		go func(st *Training) {
			defer wg.Done()
			var buf *core.DeltaBuffer
			if buffered {
				buf = tr.NewDeltaBuffer()
				defer buf.Release()
			}
			evs := make([]core.Event, batchSize)
			for i := range evs {
				evs[i].X = make([]int, n)
			}
			for remaining := perSite; remaining > 0; {
				m := min(batchSize, remaining)
				for j := 0; j < m; j++ {
					site, x := st.Next()
					evs[j].Site = site
					copy(evs[j].X, x)
				}
				if buf != nil {
					buf.AddEvents(evs[:m])
				} else {
					tr.UpdateEvents(evs[:m])
				}
				remaining -= m
			}
		}(streams[s])
	}
	wg.Wait()
	return int64(perSite) * int64(len(streams))
}

// DriveWorkStealing ingests counts[s] events from streams[s] for every s —
// quotas that may differ wildly, e.g. proportional to a Zipf site
// distribution — with work stealing between the site pumps: one worker per
// stream starts on its own stream and, once that quota is drained, takes
// batches from whichever stream has the most events left, so the tail of a
// skewed assignment is ingested by every idle worker instead of one
// overloaded pump. Sampling from a stolen stream serializes on that
// stream's lock (samplers are not concurrent-safe), but tracker-side
// ingestion — the delta-buffer accumulation or the striped increments —
// still proceeds in parallel. Like DriveParallel, a delta-buffered tracker
// is fully published before the driver returns. Returns the total number of
// events ingested.
func DriveWorkStealing(tr *core.Tracker, streams []*Training, counts []int, batchSize int) int64 {
	if len(counts) != len(streams) {
		panic("stream: DriveWorkStealing needs one count per stream")
	}
	if batchSize < 1 {
		batchSize = 256
	}
	pumps := make([]sitePump, len(streams))
	var total int64
	for s := range pumps {
		c := counts[s]
		if c < 0 {
			c = 0
		}
		pumps[s].remaining.Store(int64(c))
		total += int64(c)
	}
	if total == 0 {
		return 0
	}
	n := tr.Network().Len()
	buffered := tr.Config().DeltaBuffered
	var wg sync.WaitGroup
	for w := range streams {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf *core.DeltaBuffer
			if buffered {
				buf = tr.NewDeltaBuffer()
				defer buf.Release()
			}
			evs := make([]core.Event, batchSize)
			for i := range evs {
				evs[i].X = make([]int, n)
			}
			for {
				s := pickPump(pumps, w)
				if s < 0 {
					return
				}
				m := pumps[s].take(streams[s], evs)
				if m == 0 {
					continue // lost the race for that pump; rescan
				}
				if buf != nil {
					buf.AddEvents(evs[:m])
				} else {
					tr.UpdateEvents(evs[:m])
				}
			}
		}(w)
	}
	wg.Wait()
	return total
}

// sitePump is one stream's remaining quota plus the lock serializing access
// to its (non-concurrent-safe) sampler.
type sitePump struct {
	mu        sync.Mutex
	remaining atomic.Int64
}

// take claims and samples up to cap(evs) events from st, returning how many
// were produced (0 when the pump is drained).
func (p *sitePump) take(st *Training, evs []core.Event) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := int(min(p.remaining.Load(), int64(len(evs))))
	for j := 0; j < m; j++ {
		site, x := st.Next()
		evs[j].Site = site
		copy(evs[j].X, x)
	}
	if m > 0 {
		p.remaining.Add(int64(-m))
	}
	return m
}

// pickPump chooses the next pump for worker w: its own while work remains,
// otherwise the pump with the most events left (racy reads are fine — a
// stale pick just loops back through take, which re-checks under the lock).
// Returns -1 when every pump is drained.
func pickPump(pumps []sitePump, w int) int {
	if pumps[w].remaining.Load() > 0 {
		return w
	}
	best, bestLeft := -1, int64(0)
	for s := range pumps {
		if left := pumps[s].remaining.Load(); left > bestLeft {
			best, bestLeft = s, left
		}
	}
	return best
}

// Produce sends the next n events of t into out (each with its own backing
// array, ready for Tracker.Ingest) and returns how many were sent; it stops
// early if ctx is canceled. The channel is not closed — the caller owns it
// and may multiplex several producers. Cancellation is checked before each
// sample, so an already-canceled context consumes nothing from t; if
// cancellation lands while a send is blocked, that one sampled event is
// discarded (t has advanced past it), so a canceled producer's Training
// should not be reused where seed-exact replay matters.
func Produce(ctx context.Context, t *Training, n int, out chan<- core.Event) int64 {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	for j := 0; j < n; j++ {
		select {
		case <-done:
			return int64(j)
		default:
		}
		site, x := t.Next()
		cp := make([]int, len(x))
		copy(cp, x)
		select {
		case out <- core.Event{Site: site, X: cp}:
		case <-done:
			return int64(j)
		}
	}
	return int64(n)
}
