package stream

import (
	"context"
	"sync"

	"distbayes/internal/bn"
	"distbayes/internal/core"
)

// This file is the parallel half of the workload package: per-site
// sub-streams, copying batch generators, and drivers that feed a
// core.Tracker from one goroutine per site — the in-process analogue of the
// paper's k distributed sites absorbing the training stream concurrently.

// FixedAssigner routes every event to one fixed site: the sub-stream seen by
// a single site processor when the stream is horizontally partitioned.
type FixedAssigner struct{ site int }

// NewFixedAssigner creates an assigner pinned to site.
func NewFixedAssigner(site int) *FixedAssigner { return &FixedAssigner{site: site} }

// Next implements Assigner.
func (a *FixedAssigner) Next() int { return a.site }

// NextEvents appends the next n events to dst, giving each event its own
// backing array (unlike Next, whose buffer is reused), so the result can be
// retained, replayed against several trackers, or handed across goroutines.
func (t *Training) NextEvents(dst []core.Event, n int) []core.Event {
	for j := 0; j < n; j++ {
		site, x := t.Next()
		cp := make([]int, len(x))
		copy(cp, x)
		dst = append(dst, core.Event{Site: site, X: cp})
	}
	return dst
}

// NewSiteTraining builds site's independent training sub-stream: a sampler
// seeded seed+site whose every event is routed to site. It is the single
// source of the per-site sub-stream derivation — the TCP cluster sites and
// the in-process parallel engine both use it, which is what makes a cluster
// run and a sharded in-process run over the same StreamSeed ingest
// identical events.
func NewSiteTraining(model *bn.Model, site int, seed uint64) *Training {
	return NewTraining(model, NewFixedAssigner(site), seed+uint64(site))
}

// NewSiteTrainings builds one sub-stream per site via NewSiteTraining. The
// union over sites is a valid model stream, but it is a different
// realization than a single NewTraining stream.
func NewSiteTrainings(model *bn.Model, sites int, seed uint64) []*Training {
	out := make([]*Training, sites)
	for s := 0; s < sites; s++ {
		out[s] = NewSiteTraining(model, s, seed)
	}
	return out
}

// DriveParallel ingests perSite events from each sub-stream into tr on one
// goroutine per stream, in batches of batchSize events whose buffers are
// reused across batches. Sampling and parent-index computation run fully in
// parallel; only the counter increments serialize on the tracker's lock
// stripes. Each goroutine's event sequence is deterministic in its stream's
// seed. Returns the total number of events ingested.
func DriveParallel(tr *core.Tracker, streams []*Training, perSite, batchSize int) int64 {
	if perSite <= 0 {
		return 0
	}
	if batchSize < 1 {
		batchSize = 256
	}
	n := tr.Network().Len()
	var wg sync.WaitGroup
	for s := range streams {
		wg.Add(1)
		go func(st *Training) {
			defer wg.Done()
			evs := make([]core.Event, batchSize)
			for i := range evs {
				evs[i].X = make([]int, n)
			}
			for remaining := perSite; remaining > 0; {
				m := min(batchSize, remaining)
				for j := 0; j < m; j++ {
					site, x := st.Next()
					evs[j].Site = site
					copy(evs[j].X, x)
				}
				tr.UpdateEvents(evs[:m])
				remaining -= m
			}
		}(streams[s])
	}
	wg.Wait()
	return int64(perSite) * int64(len(streams))
}

// Produce sends the next n events of t into out (each with its own backing
// array, ready for Tracker.Ingest) and returns how many were sent; it stops
// early if ctx is canceled. The channel is not closed — the caller owns it
// and may multiplex several producers. Cancellation is checked before each
// sample, so an already-canceled context consumes nothing from t; if
// cancellation lands while a send is blocked, that one sampled event is
// discarded (t has advanced past it), so a canceled producer's Training
// should not be reused where seed-exact replay matters.
func Produce(ctx context.Context, t *Training, n int, out chan<- core.Event) int64 {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	for j := 0; j < n; j++ {
		select {
		case <-done:
			return int64(j)
		default:
		}
		site, x := t.Next()
		cp := make([]int, len(x))
		copy(cp, x)
		select {
		case out <- core.Event{Site: site, X: cp}:
		case <-done:
			return int64(j)
		}
	}
	return int64(n)
}
