package stream

import (
	"math"
	"testing"

	"distbayes/internal/bn"
	"distbayes/internal/netgen"
)

func smallModel(t *testing.T) *bn.Model {
	t.Helper()
	m, err := netgen.ModelByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUniformAssignerCoversSites(t *testing.T) {
	const k = 12
	a := NewUniformAssigner(k, 3)
	counts := make([]int, k)
	const n = 60000
	for i := 0; i < n; i++ {
		s := a.Next()
		if s < 0 || s >= k {
			t.Fatalf("site %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if math.Abs(float64(c)-n/k) > 0.1*n/k {
			t.Errorf("site %d got %d events, want ~%d", s, c, n/k)
		}
	}
}

func TestRoundRobinAssigner(t *testing.T) {
	a := NewRoundRobinAssigner(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := a.Next(); got != w {
			t.Errorf("step %d: %d, want %d", i, got, w)
		}
	}
}

func TestZipfAssigner(t *testing.T) {
	if _, err := NewZipfAssigner(0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewZipfAssigner(4, -1, 1); err == nil {
		t.Error("negative exponent accepted")
	}
	a, err := NewZipfAssigner(8, 1.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[a.Next()]++
	}
	if counts[0] <= counts[7]*3 {
		t.Errorf("zipf not skewed: first site %d, last site %d", counts[0], counts[7])
	}
	// s=0 behaves uniformly.
	u, _ := NewZipfAssigner(4, 0, 6)
	c := make([]int, 4)
	for i := 0; i < 40000; i++ {
		c[u.Next()]++
	}
	for s, got := range c {
		if math.Abs(float64(got)-10000) > 1000 {
			t.Errorf("zipf s=0 site %d got %d", s, got)
		}
	}
}

func TestTrainingStream(t *testing.T) {
	m := smallModel(t)
	tr := NewTraining(m, NewRoundRobinAssigner(4), 9)
	for i := 0; i < 100; i++ {
		site, x := tr.Next()
		if site != i%4 {
			t.Fatalf("event %d at site %d, want %d", i, site, i%4)
		}
		if !m.Network().ValidAssignment(x) {
			t.Fatalf("invalid assignment %v", x)
		}
	}
	if tr.Count() != 100 {
		t.Errorf("Count = %d, want 100", tr.Count())
	}
}

func TestGenQueriesRespectThreshold(t *testing.T) {
	m := smallModel(t)
	qs, err := GenQueries(m, QueryOptions{Count: 500, MinProb: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 500 {
		t.Fatalf("got %d queries", len(qs))
	}
	for qi, q := range qs {
		if q.Truth < 0.01 {
			t.Errorf("query %d truth %v below threshold", qi, q.Truth)
		}
		// Truth must equal the model's closed-form subset probability.
		if got := m.SubsetProb(q.Set, q.X); math.Abs(got-q.Truth) > 1e-12 {
			t.Errorf("query %d: recorded truth %v, recomputed %v", qi, q.Truth, got)
		}
		// Set must be ancestrally closed.
		in := map[int]bool{}
		for _, v := range q.Set {
			in[v] = true
		}
		for _, v := range q.Set {
			for _, p := range m.Network().Parents(v) {
				if !in[p] {
					t.Errorf("query %d: set not closed (missing parent %d of %d)", qi, p, v)
				}
			}
		}
	}
}

func TestGenQueriesLargeNetworkTerminates(t *testing.T) {
	m, err := netgen.ModelByName("link")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenQueries(m, QueryOptions{Count: 100, MinProb: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Truth < 0.01 {
			t.Errorf("truth %v below threshold on link", q.Truth)
		}
	}
}

func TestGenQueriesValidation(t *testing.T) {
	m := smallModel(t)
	if _, err := GenQueries(m, QueryOptions{Count: 0, MinProb: 0.01}); err == nil {
		t.Error("count=0 accepted")
	}
	if _, err := GenQueries(m, QueryOptions{Count: 1, MinProb: 1.5}); err == nil {
		t.Error("minprob=1.5 accepted")
	}
}

func TestGenQueriesDeterministic(t *testing.T) {
	m := smallModel(t)
	a, _ := GenQueries(m, QueryOptions{Count: 50, MinProb: 0.01, Seed: 11})
	b, _ := GenQueries(m, QueryOptions{Count: 50, MinProb: 0.01, Seed: 11})
	for i := range a {
		if a[i].Truth != b[i].Truth {
			t.Fatalf("query %d truth differs", i)
		}
	}
}

func TestGenClassTests(t *testing.T) {
	m := smallModel(t)
	tests, err := GenClassTests(m, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range tests {
		if tc.Target < 0 || tc.Target >= m.Network().Len() {
			t.Fatalf("test %d target out of range", i)
		}
		if !m.Network().ValidAssignment(tc.X) {
			t.Fatalf("test %d invalid assignment", i)
		}
		if tc.Want != tc.X[tc.Target] {
			t.Fatalf("test %d want %d != X[target] %d", i, tc.Want, tc.X[tc.Target])
		}
	}
	if _, err := GenClassTests(m, 0, 1); err == nil {
		t.Error("count=0 accepted")
	}
}
