package stream

import (
	"fmt"

	"distbayes/internal/bn"
)

// Query is one probability-estimation test event: an assignment X restricted
// to the ancestrally closed set Set, with ground-truth marginal probability
// Truth = Π_{i∈Set} P*[x_i | x_i^par] ≥ the generation threshold.
type Query struct {
	// Set is an ancestrally closed list of variable indices (topo order).
	Set []int
	// X is a full-length assignment; only positions in Set are meaningful.
	X []int
	// Truth is the ground-truth probability of the event.
	Truth float64
}

// QueryOptions controls test-event generation.
type QueryOptions struct {
	// Count is the number of test events (the paper uses 1000).
	Count int
	// MinProb is the ground-truth probability floor (the paper uses 0.01,
	// "to rule out events that are highly unlikely").
	MinProb float64
	// Seed drives event sampling.
	Seed uint64
	// MaxTries bounds rejection sampling per event before falling back to a
	// guaranteed single-root event. Defaults to 64 when zero.
	MaxTries int
}

// GenQueries samples Count test events from the model. Each event is built
// by sampling a full assignment, picking a random variable, and taking its
// ancestral closure; events whose ground-truth probability falls below
// MinProb are rejected. If rejection sampling exhausts MaxTries, the event
// falls back to the most probable value of a root variable, whose probability
// is at least 1/J — so generation always terminates. (Full-joint events are
// useless as test cases on the large networks: with 724 or 1041 variables
// every complete assignment has essentially zero probability, so the paper's
// "ground truth probability at least 0.01" filter forces small events; the
// ancestral closure is the smallest set containing the chosen variable whose
// marginal is available in closed form.)
func GenQueries(m *bn.Model, opt QueryOptions) ([]Query, error) {
	if opt.Count < 1 {
		return nil, fmt.Errorf("stream: query count %d, want >= 1", opt.Count)
	}
	if opt.MinProb < 0 || opt.MinProb >= 1 {
		return nil, fmt.Errorf("stream: min prob %v, want [0,1)", opt.MinProb)
	}
	maxTries := opt.MaxTries
	if maxTries == 0 {
		maxTries = 64
	}
	net := m.Network()
	rng := bn.NewRNG(opt.Seed)
	sampler := m.NewSampler(opt.Seed ^ 0x51ab)

	var roots []int
	for i := 0; i < net.Len(); i++ {
		if len(net.Parents(i)) == 0 {
			roots = append(roots, i)
		}
	}

	queries := make([]Query, 0, opt.Count)
	x := make([]int, net.Len())
	for len(queries) < opt.Count {
		accepted := false
		for try := 0; try < maxTries; try++ {
			sampler.Sample(x)
			v := rng.Intn(net.Len())
			set := net.AncestralClosure([]int{v})
			truth := m.SubsetProb(set, x)
			if truth >= opt.MinProb {
				queries = append(queries, Query{Set: set, X: cloneInts(x), Truth: truth})
				accepted = true
				break
			}
		}
		if !accepted {
			// Guaranteed fallback: argmax value of a random root.
			r := roots[rng.Intn(len(roots))]
			row := m.CPD(r).Row(0)
			best, bestP := 0, row[0]
			for j, p := range row {
				if p > bestP {
					best, bestP = j, p
				}
			}
			q := make([]int, net.Len())
			q[r] = best
			queries = append(queries, Query{Set: []int{r}, X: q, Truth: bestP})
		}
	}
	return queries, nil
}

// RandomAssignment fills x (grown if needed) with an independent uniform
// value per variable — the cheap probe workload of the live-query drivers,
// which need arbitrary full assignments without paying for model sampling
// on the query path.
func RandomAssignment(net *bn.Network, rng *bn.RNG, x []int) []int {
	if cap(x) < net.Len() {
		x = make([]int, net.Len())
	}
	x = x[:net.Len()]
	for i := range x {
		x[i] = rng.Intn(net.Card(i))
	}
	return x
}

// ClassTest is one classification test case: predict X[Target] from the
// remaining values of X; Want is the sampled (true) value.
type ClassTest struct {
	Target int
	X      []int
	Want   int
}

// GenClassTests samples classification test cases as in Section VI: generate
// a full assignment from the model, then select one variable to predict given
// the rest.
func GenClassTests(m *bn.Model, count int, seed uint64) ([]ClassTest, error) {
	if count < 1 {
		return nil, fmt.Errorf("stream: class test count %d, want >= 1", count)
	}
	net := m.Network()
	rng := bn.NewRNG(seed)
	sampler := m.NewSampler(seed ^ 0xc1a5)
	tests := make([]ClassTest, count)
	x := make([]int, net.Len())
	for i := range tests {
		sampler.Sample(x)
		target := rng.Intn(net.Len())
		tests[i] = ClassTest{Target: target, X: cloneInts(x), Want: x[target]}
	}
	return tests, nil
}

func cloneInts(x []int) []int { return append([]int(nil), x...) }
