// Package stream generates the distributed training workload and the test
// workloads of the paper's evaluation (Section VI-A): training events are
// forward-sampled from a ground-truth model and routed to one of k sites;
// test events are assignments to ancestrally closed variable subsets with
// ground-truth probability at least a threshold (0.01 in the paper); and
// classification tests hide one variable of a sampled assignment.
package stream

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
)

// Assigner routes each arriving event to a site in [0, k).
type Assigner interface {
	// Next returns the site that receives the next event.
	Next() int
}

// UniformAssigner sends each event to a uniformly random site — the
// distribution used in the paper's experiments.
type UniformAssigner struct {
	k   int
	rng *bn.RNG
}

// NewUniformAssigner creates a uniform router over k sites.
func NewUniformAssigner(k int, seed uint64) *UniformAssigner {
	return &UniformAssigner{k: k, rng: bn.NewRNG(seed)}
}

// Next implements Assigner.
func (a *UniformAssigner) Next() int { return a.rng.Intn(a.k) }

// RoundRobinAssigner cycles through sites deterministically.
type RoundRobinAssigner struct {
	k, next int
}

// NewRoundRobinAssigner creates a round-robin router over k sites.
func NewRoundRobinAssigner(k int) *RoundRobinAssigner { return &RoundRobinAssigner{k: k} }

// Next implements Assigner.
func (a *RoundRobinAssigner) Next() int {
	s := a.next
	a.next = (a.next + 1) % a.k
	return s
}

// ZipfAssigner routes events with a Zipf(s) site distribution — the "more
// skewed distribution across different sites" named as future work in the
// paper's conclusion, kept here as an extension experiment.
type ZipfAssigner struct {
	cdf []float64
	rng *bn.RNG
}

// NewZipfAssigner creates a skewed router: site i receives traffic
// proportional to 1/(i+1)^s. s=0 reduces to uniform.
func NewZipfAssigner(k int, s float64, seed uint64) (*ZipfAssigner, error) {
	if k < 1 {
		return nil, fmt.Errorf("stream: k = %d, want >= 1", k)
	}
	if s < 0 {
		return nil, fmt.Errorf("stream: zipf exponent %v, want >= 0", s)
	}
	cdf := make([]float64, k)
	total := 0.0
	for i := 0; i < k; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &ZipfAssigner{cdf: cdf, rng: bn.NewRNG(seed)}, nil
}

// Next implements Assigner.
func (a *ZipfAssigner) Next() int {
	u := a.rng.Float64()
	lo, hi := 0, len(a.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if a.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Training couples a ground-truth sampler with a site assigner; each call to
// Next produces one (site, event) pair. The event buffer is reused: callers
// must not retain it across calls.
type Training struct {
	sampler *bn.Sampler
	assign  Assigner
	buf     []int
	count   int64
}

// NewTraining builds a training stream for model with the given assigner.
func NewTraining(model *bn.Model, assign Assigner, seed uint64) *Training {
	return &Training{
		sampler: model.NewSampler(seed),
		assign:  assign,
		buf:     make([]int, model.Network().Len()),
	}
}

// Next returns the next event and its receiving site. The returned slice is
// reused by subsequent calls.
func (t *Training) Next() (site int, x []int) {
	t.sampler.Sample(t.buf)
	t.count++
	return t.assign.Next(), t.buf
}

// Count returns the number of events produced so far.
func (t *Training) Count() int64 { return t.count }
