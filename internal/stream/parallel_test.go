package stream

import (
	"context"
	"sync"
	"testing"

	"distbayes/internal/core"
)

func TestFixedAssigner(t *testing.T) {
	a := NewFixedAssigner(3)
	for i := 0; i < 10; i++ {
		if a.Next() != 3 {
			t.Fatal("fixed assigner moved")
		}
	}
}

// TestNextEventsCopiesAndMatchesNext: NextEvents must yield the same
// (site, event) sequence as repeated Next calls, with independent backing
// arrays safe to retain.
func TestNextEventsCopiesAndMatchesNext(t *testing.T) {
	m := smallModel(t)
	ref := NewTraining(m, NewUniformAssigner(5, 1), 2)
	tr := NewTraining(m, NewUniformAssigner(5, 1), 2)

	evs := tr.NextEvents(nil, 200)
	if len(evs) != 200 || tr.Count() != 200 {
		t.Fatalf("got %d events, count %d", len(evs), tr.Count())
	}
	for j, ev := range evs {
		site, x := ref.Next()
		if ev.Site != site {
			t.Fatalf("event %d site = %d, want %d", j, ev.Site, site)
		}
		for i := range x {
			if ev.X[i] != x[i] {
				t.Fatalf("event %d differs at var %d", j, i)
			}
		}
	}
	// Later generation must not clobber earlier events (fresh arrays).
	saved := append([]int(nil), evs[0].X...)
	tr.NextEvents(nil, 50)
	for i := range saved {
		if evs[0].X[i] != saved[i] {
			t.Fatal("NextEvents reused an event's backing array")
		}
	}
}

// TestNewSiteTrainingsDeterministicAndPinned: per-site sub-streams are
// deterministic in the seed and each event routes to its own site.
func TestNewSiteTrainingsDeterministic(t *testing.T) {
	m := smallModel(t)
	a := NewSiteTrainings(m, 3, 9)
	b := NewSiteTrainings(m, 3, 9)
	for s := 0; s < 3; s++ {
		ea := a[s].NextEvents(nil, 100)
		eb := b[s].NextEvents(nil, 100)
		for j := range ea {
			if ea[j].Site != s || eb[j].Site != s {
				t.Fatalf("site %d event %d routed to %d/%d", s, j, ea[j].Site, eb[j].Site)
			}
			for i := range ea[j].X {
				if ea[j].X[i] != eb[j].X[i] {
					t.Fatalf("site %d event %d not deterministic", s, j)
				}
			}
		}
	}
}

// TestDriveParallelMatchesSequentialReplay: driving a sharded tracker with
// per-site goroutines must produce the same exact counts as replaying the
// same sub-streams into a sequential tracker one site at a time.
func TestDriveParallelMatchesSequentialReplay(t *testing.T) {
	m := smallModel(t)
	const sites, perSite = 4, 1500
	cfg := core.Config{Strategy: core.ExactMLE, Sites: sites, Seed: 5}

	seq, err := core.NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range NewSiteTrainings(m, sites, 21) {
		for _, ev := range st.NextEvents(nil, perSite) {
			seq.Update(ev.Site, ev.X)
		}
	}

	cfg.Shards = 4
	par, err := core.NewTracker(m.Network(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := DriveParallel(par, NewSiteTrainings(m, sites, 21), perSite, 128)
	if total != sites*perSite || par.Events() != sites*perSite {
		t.Fatalf("ingested %d (tracker %d), want %d", total, par.Events(), sites*perSite)
	}

	net := m.Network()
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				gp, gq := par.ExactCount(i, v, pidx)
				wp, wq := seq.ExactCount(i, v, pidx)
				if gp != wp || gq != wq {
					t.Fatalf("cell (%d,%d,%d) = (%d,%d), want (%d,%d)", i, v, pidx, gp, gq, wp, wq)
				}
			}
		}
	}
	if got, want := par.Messages(), seq.Messages(); got != want {
		t.Errorf("exact-strategy messages = %+v, want %+v", got, want)
	}
}

// exactCellsEqual compares every exact (pair, parent) cell count of two
// trackers over the same network.
func exactCellsEqual(t *testing.T, want, got *core.Tracker) {
	t.Helper()
	net := want.Network()
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				gp, gq := got.ExactCount(i, v, pidx)
				wp, wq := want.ExactCount(i, v, pidx)
				if gp != wp || gq != wq {
					t.Fatalf("cell (%d,%d,%d) = (%d,%d), want (%d,%d)", i, v, pidx, gp, gq, wp, wq)
				}
			}
		}
	}
}

// TestDriveParallelBuffered: the delta-buffered wiring of DriveParallel must
// produce the same exact counts as a sequential replay of the same
// sub-streams, with the tracker fully published when the driver returns.
func TestDriveParallelBuffered(t *testing.T) {
	m := smallModel(t)
	const sites, perSite = 4, 1500
	seq, err := core.NewTracker(m.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range NewSiteTrainings(m, sites, 27) {
		for _, ev := range st.NextEvents(nil, perSite) {
			seq.Update(ev.Site, ev.X)
		}
	}

	buf, err := core.NewTracker(m.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 5,
		Shards: 2, DeltaBuffered: true, DeltaFlushEvents: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := DriveParallel(buf, NewSiteTrainings(m, sites, 27), perSite, 128)
	if total != sites*perSite || buf.Events() != sites*perSite {
		t.Fatalf("ingested %d (tracker %d), want %d — buffered drive must publish before returning",
			total, buf.Events(), sites*perSite)
	}
	exactCellsEqual(t, seq, buf)
}

// TestDriveWorkStealing drives a Zipf-skewed per-site quota — one pump holds
// most of the work — through the work-stealing driver in both striped and
// delta-buffered modes and checks the exact counts against a sequential
// replay of the same sub-streams.
func TestDriveWorkStealing(t *testing.T) {
	m := smallModel(t)
	counts := []int{4000, 500, 250, 50} // skewed quotas, one hot site
	sites := len(counts)
	total := 0
	for _, c := range counts {
		total += c
	}

	seq, err := core.NewTracker(m.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range NewSiteTrainings(m, sites, 39) {
		for _, ev := range st.NextEvents(nil, counts[s]) {
			seq.Update(ev.Site, ev.X)
		}
	}

	for _, mode := range []struct {
		name     string
		buffered bool
	}{{"striped", false}, {"buffered", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			cfg := core.Config{
				Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 5,
				Shards: 2, DeltaBuffered: mode.buffered, DeltaFlushEvents: 300,
			}
			tr, err := core.NewTracker(m.Network(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := DriveWorkStealing(tr, NewSiteTrainings(m, sites, 39), counts, 64)
			if got != int64(total) || tr.Events() != int64(total) {
				t.Fatalf("ingested %d (tracker %d), want %d", got, tr.Events(), total)
			}
			exactCellsEqual(t, seq, tr)
		})
	}
}

// TestDriveWorkStealingEdgeCases: zero and negative quotas are skipped, and
// a mismatched counts slice panics.
func TestDriveWorkStealingEdgeCases(t *testing.T) {
	m := smallModel(t)
	tr, err := core.NewTracker(m.Network(), core.Config{
		Strategy: core.ExactMLE, Sites: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := DriveWorkStealing(tr, NewSiteTrainings(m, 3, 7), []int{0, -5, 120}, 32); n != 120 {
		t.Fatalf("ingested %d, want 120 (zero/negative quotas skipped)", n)
	}
	if tr.Events() != 120 {
		t.Fatalf("tracker events = %d, want 120", tr.Events())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched counts slice did not panic")
		}
	}()
	DriveWorkStealing(tr, NewSiteTrainings(m, 3, 7), []int{1, 2}, 32)
}

// TestProduceFeedsIngest wires Produce → Tracker.Ingest with one producer
// per site over a shared channel.
func TestProduceFeedsIngest(t *testing.T) {
	m := smallModel(t)
	const sites, perSite = 3, 1000
	tr, err := core.NewTracker(m.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 5, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan core.Event, 64)
	var wg sync.WaitGroup
	for _, st := range NewSiteTrainings(m, sites, 33) {
		wg.Add(1)
		go func(st *Training) {
			defer wg.Done()
			if n := Produce(context.Background(), st, perSite, ch); n != perSite {
				t.Errorf("Produce sent %d, want %d", n, perSite)
			}
		}(st)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	n, err := tr.Ingest(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if n != sites*perSite || tr.Events() != sites*perSite {
		t.Fatalf("ingested %d (tracker %d), want %d", n, tr.Events(), sites*perSite)
	}
}

// TestProduceCancel: a canceled context unblocks a Produce stuck on a full
// channel.
func TestProduceCancel(t *testing.T) {
	m := smallModel(t)
	st := NewTraining(m, NewFixedAssigner(0), 1)
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan core.Event) // nobody reads
	done := make(chan int64)
	go func() { done <- Produce(ctx, st, 100, ch) }()
	cancel()
	if n := <-done; n >= 100 {
		t.Fatalf("Produce sent %d events with no consumer", n)
	}
}
