package stream

import (
	"math"
	"sync"
	"testing"

	"distbayes/internal/core"
	"distbayes/internal/netgen"
)

// TestSnapshotQueriesDuringDriveParallel runs the full parallel ingestion
// engine (one goroutine per site) while several reader goroutines hammer the
// snapshot-served query paths (QueryProb, Classify, EstimatedModel). Under
// -race this proves the per-stripe version protocol and copy-on-write
// snapshot publication are clean against live multi-stripe ingestion; the
// assertions check every mid-flight answer is a valid probability.
func TestSnapshotQueriesDuringDriveParallel(t *testing.T) {
	model, err := netgen.ModelByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	const sites, perSite = 4, 3000
	tr, err := core.NewTracker(model.Network(), core.Config{
		Strategy: core.NonUniform, Eps: 0.1, Sites: sites, Seed: 1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := NewSiteTrainings(model, sites, 77)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			n := model.Network().Len()
			x := make([]int, n)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := tr.QueryProb(x)
				if math.IsNaN(p) || p < 0 || p > 1.0000001 {
					t.Errorf("mid-ingest QueryProb = %v", p)
					return
				}
				_ = tr.Classify((g+i)%n, x)
				if i%10 == 0 {
					if _, err := tr.EstimatedModel(); err != nil {
						t.Errorf("mid-ingest EstimatedModel: %v", err)
						return
					}
				}
			}
		}(g)
	}

	total := DriveParallel(tr, streams, perSite, 256)
	close(stop)
	readers.Wait()

	if total != sites*perSite || tr.Events() != sites*perSite {
		t.Fatalf("ingested %d (tracker %d), want %d", total, tr.Events(), sites*perSite)
	}
	// Quiesced: the snapshot must now agree with a fresh per-cell read.
	x := make([]int, model.Network().Len())
	want := 1.0
	net := model.Network()
	for i := 0; i < net.Len(); i++ {
		want *= tr.QueryCPD(i, x[i], net.ParentIndex(i, x))
	}
	if got := tr.QueryProb(x); got != want {
		t.Errorf("post-ingest QueryProb = %v, per-cell product %v", got, want)
	}
}
