package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster/chaos"
	"distbayes/internal/core"
)

// TestCheckpointGoldenBitCompat is the checkpoint/restore analogue of
// TestSequentialClusterBitCompat: the serial coordinator (single stripe,
// batching off) is killed mid-run, restored from its latest periodic
// checkpoint, and the sites re-resume against the restored state. The final
// estimates must reproduce the PR 3 HEAD goldens bit for bit — the
// checkpointed matrix is a lower bound on every site's decided reports, and
// the resume replay plus the continued stream raise each cell to exactly the
// value the uninterrupted serial run would have reported. Frame and update
// totals legitimately differ (replays), so only the estimate hashes are
// pinned.
func TestCheckpointGoldenBitCompat(t *testing.T) {
	golden := []struct {
		strategy core.Strategy
		esthash  uint64
	}{
		{core.ExactMLE, 0xee6784936905cf9f},
		{core.Baseline, 0xe6f97df32ce1276c},
		{core.Uniform, 0x0bf114c7bd8a768c},
		{core.NonUniform, 0x01773219f6eab652},
	}
	for _, g := range golden {
		g := g
		t.Run(g.strategy.String(), func(t *testing.T) {
			cfg := Config{
				NetName: "alarm", CPTSeed: 0xC0DE, Strategy: g.strategy, Eps: 0.1, Delta: 0.25,
				Sites: 3, Events: 4000, StreamSeed: 99,
			}
			cfg.CheckpointPath = filepath.Join(t.TempDir(), "coord.ckpt")
			cfg.CheckpointEveryFrames = 250

			co1, err := NewCoordinator(cfg, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			// The serial run moves 4003 frames; a seeded kill point in
			// [1000, 2000) sits past several checkpoint cadences and well
			// before completion.
			rng := bn.NewRNG(0x0C0FFEE ^ uint64(g.strategy))
			co1.CrashAfterFrames = int64(1000 + rng.Intn(1000))
			p, err := chaos.New(chaos.Config{}, co1.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })

			errs := make([]error, cfg.Sites)
			var wg sync.WaitGroup
			for i := 0; i < cfg.Sites; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s := NewSite(uint32(i), p.Addr())
					s.RetryBase = 2 * time.Millisecond
					s.RetryCap = 50 * time.Millisecond
					s.MaxResumes = 200
					_, errs[i] = s.Run()
				}(i)
			}

			serve1 := make(chan error, 1)
			go func() {
				_, err := co1.Serve()
				serve1 <- err
			}()
			if err := <-serve1; err != ErrCoordinatorClosed {
				t.Fatalf("killed Serve returned %v, want ErrCoordinatorClosed", err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				if _, err := os.Stat(cfg.CheckpointPath); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no checkpoint file appeared")
				}
				time.Sleep(2 * time.Millisecond)
			}

			co2, err := NewCoordinator(cfg, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { co2.Close() })
			if err := co2.RestoreCheckpointFile(cfg.CheckpointPath); err != nil {
				t.Fatal(err)
			}
			p.SetTarget(co2.Addr())

			res, err := co2.Serve()
			if err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("site %d: %v", i, err)
				}
			}
			if res.Stats.Events != int64(cfg.Events) {
				t.Errorf("events = %d, want %d", res.Stats.Events, cfg.Events)
			}
			if h := estFingerprint(co2); h != g.esthash {
				t.Errorf("estimate fingerprint = %#016x, want %#016x (PR 3 HEAD golden)", h, g.esthash)
			}
		})
	}
}

// TestCheckpointRoundTripCompleteRun checkpoints a completed run and
// restores it into a fresh coordinator: Serve must return immediately (all
// sites are recorded done) with identical stats, and the estimates must be
// bit-identical — the restored matrix alone carries them, no site ever
// connects.
func TestCheckpointRoundTripCompleteRun(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.Uniform, Eps: 0.1, Delta: 0.25,
		Sites: 3, Events: 4000, StreamSeed: 99,
	}
	res1, co1, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := co1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	co2, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co2.Close() })
	if err := co2.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if co2.epoch != co1.epoch+1 {
		t.Errorf("restored epoch = %d, want %d", co2.epoch, co1.epoch+1)
	}
	res2, err := co2.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Events != res1.Stats.Events ||
		res2.Stats.Frames != res1.Stats.Frames ||
		res2.Stats.Updates != res1.Stats.Updates {
		t.Errorf("restored stats %+v != original %+v", res2.Stats, res1.Stats)
	}
	if got, want := estFingerprint(co2), estFingerprint(co1); got != want {
		t.Errorf("restored estimate fingerprint %#016x != original %#016x", got, want)
	}
}

// TestCheckpointFingerprintMismatch: a checkpoint must refuse to load into a
// coordinator whose run parameters differ — restoring alarm counts into an
// insurance run would silently corrupt every estimate.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.Uniform, Eps: 0.1, Delta: 0.25,
		Sites: 3, Events: 400, StreamSeed: 99,
	}
	_, co1, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := co1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Eps = 0.2
	co2, err := NewCoordinator(other, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co2.Close() })
	err = co2.RestoreCheckpoint(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("restore with mismatched config: err = %v, want fingerprint mismatch", err)
	}
}

// TestCheckpointShardsExcludedFromFingerprint: stripes are a process-local
// concurrency choice; a checkpoint from a serial coordinator must load into
// a striped one (and vice versa) so operators can rescale on restart.
func TestCheckpointShardsExcludedFromFingerprint(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.Uniform, Eps: 0.1, Delta: 0.25,
		Sites: 3, Events: 400, StreamSeed: 99,
	}
	_, co1, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := co1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	striped := cfg
	striped.Shards = 4
	co2, err := NewCoordinator(striped, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co2.Close() })
	if err := co2.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore into striped coordinator: %v", err)
	}
	if got, want := estFingerprint(co2), estFingerprint(co1); got != want {
		t.Errorf("striped restore estimate fingerprint %#016x != original %#016x", got, want)
	}
}
