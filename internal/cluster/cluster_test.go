package cluster

import (
	"math"
	"net"
	"testing"
	"testing/quick"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

func TestProtocolRoundTrips(t *testing.T) {
	cfg := StartConfig{
		NetName: "alarm", CPTSeed: 42, Strategy: 3, Eps: 0.1, Delta: 0.25,
		Sites: 7, Site: 3, Events: 123456, StreamSeed: 99, LatencyMicros: 250,
	}
	got, err := decodeStart(encodeStart(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("start round trip: %+v != %+v", got, cfg)
	}

	ups := []Update{{Counter: 1, LocalCount: 5}, {Counter: 900, LocalCount: -3}}
	dec, err := decodeUpdates(nil, encodeUpdates(nil, ups))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0] != ups[0] || dec[1] != ups[1] {
		t.Errorf("updates round trip: %v", dec)
	}

	site, events, err := decodeDone(encodeDone(9, 777))
	if err != nil || site != 9 || events != 777 {
		t.Errorf("done round trip: %d %d %v", site, events, err)
	}

	st := Stats{Frames: 1, Updates: 2, Events: 3}
	if got, err := decodeStats(encodeStats(st)); err != nil || got != st {
		t.Errorf("stats round trip: %+v %v", got, err)
	}

	if id, err := decodeHello(encodeHello(12)); err != nil || id != 12 {
		t.Errorf("hello round trip: %d %v", id, err)
	}
}

func TestProtocolRejectsMalformed(t *testing.T) {
	if _, err := decodeStart([]byte{1}); err == nil {
		t.Error("short start accepted")
	}
	if _, err := decodeUpdates(nil, make([]byte, 13)); err == nil {
		t.Error("misaligned updates accepted")
	}
	if _, _, err := decodeDone(make([]byte, 5)); err == nil {
		t.Error("short done accepted")
	}
	if _, err := decodeStats(make([]byte, 3)); err == nil {
		t.Error("short stats accepted")
	}
	if _, err := decodeHello(make([]byte, 3)); err == nil {
		t.Error("short hello accepted")
	}
}

func TestStartConfigQuickRoundTrip(t *testing.T) {
	f := func(cptSeed, streamSeed uint64, strat uint8, sites, site, lat uint32, events uint64) bool {
		cfg := StartConfig{
			NetName: "hepar2", CPTSeed: cptSeed, Strategy: strat,
			Eps: 0.25, Delta: 0.1, Sites: sites, Site: site,
			Events: events, StreamSeed: streamSeed, LatencyMicros: lat,
		}
		got, err := decodeStart(encodeStart(cfg))
		return err == nil && got == cfg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLayoutDisjointAndComplete(t *testing.T) {
	net, err := netgen.ByName("alarm")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(net, core.Uniform, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(0)
	for i := 0; i < net.Len(); i++ {
		want += uint32(net.Card(i)*net.ParentCard(i) + net.ParentCard(i))
	}
	if l.NumCounters() != want {
		t.Errorf("NumCounters = %d, want %d", l.NumCounters(), want)
	}
	seen := make(map[uint32]bool, want)
	for i := 0; i < net.Len(); i++ {
		for pidx := 0; pidx < net.ParentCard(i); pidx++ {
			for v := 0; v < net.Card(i); v++ {
				id := l.PairID(i, v, pidx)
				if id >= l.NumCounters() || seen[id] {
					t.Fatalf("pair id %d invalid or duplicated", id)
				}
				seen[id] = true
			}
			id := l.ParID(i, pidx)
			if id >= l.NumCounters() || seen[id] {
				t.Fatalf("par id %d invalid or duplicated", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != int(want) {
		t.Errorf("layout covered %d ids, want %d", len(seen), want)
	}
}

func TestReportProbLocal(t *testing.T) {
	if p := reportProbLocal(4, 0, 100); p != 1 {
		t.Errorf("eps=0 (exact) p = %v, want 1", p)
	}
	if p := reportProbLocal(4, 0.1, 0); p != 1 {
		t.Errorf("zero count p = %v, want 1", p)
	}
	// Global proxy = k*n = 4000: p = 2/(0.1*4000) = 0.005.
	if p := reportProbLocal(4, 0.1, 1000); math.Abs(p-0.005) > 1e-12 {
		t.Errorf("p = %v, want 0.005", p)
	}
	if a := adjustment(4, 0.1, 0); a != 0 {
		t.Errorf("adjustment at r=0 = %v", a)
	}
}

func TestClusterEndToEndExact(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 4, Events: 2000, StreamSeed: 5,
	}
	res, co, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Events != 2000 {
		t.Errorf("events = %d, want 2000", res.Stats.Events)
	}
	// Exact strategy: every event produces one frame with 2n updates.
	n := int64(co.Network().Len())
	if res.Stats.Updates != 2000*2*n {
		t.Errorf("updates = %d, want %d", res.Stats.Updates, 2000*2*n)
	}
	if res.Stats.Frames != 2000+int64(cfg.Sites) {
		t.Errorf("frames = %d, want %d (events + done markers)", res.Stats.Frames, 2000+cfg.Sites)
	}
	if res.Runtime <= 0 {
		t.Errorf("runtime = %v, want > 0", res.Runtime)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

// TestClusterMatchesSequentialCounts replays the same per-site streams
// sequentially and verifies the coordinator's exact-strategy estimates equal
// the literal counts.
func TestClusterMatchesSequentialCounts(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 3, Events: 999, StreamSeed: 17,
	}
	res, co, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Events != 999 {
		t.Fatalf("events = %d", res.Stats.Events)
	}
	netw := co.Network()
	opt := netgen.DefaultCPTOptions()
	opt.Seed = cfg.CPTSeed
	cpds, err := netgen.GenCPTs(netw, opt)
	if err != nil {
		t.Fatal(err)
	}
	model, err := bn.NewModel(netw, cpds)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(netw, core.ExactMLE, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, layout.NumCounters())
	per := cfg.Events / cfg.Sites
	x := make([]int, netw.Len())
	for site := 0; site < cfg.Sites; site++ {
		ev := per
		if site < cfg.Events%cfg.Sites {
			ev++
		}
		sampler := model.NewSampler(cfg.StreamSeed + uint64(site))
		for e := 0; e < ev; e++ {
			sampler.Sample(x)
			for i := 0; i < netw.Len(); i++ {
				pidx := netw.ParentIndex(i, x)
				counts[layout.PairID(i, x[i], pidx)]++
				counts[layout.ParID(i, pidx)]++
			}
		}
	}
	for id := uint32(0); id < layout.NumCounters(); id++ {
		if got := co.Estimate(id); got != float64(counts[id]) {
			t.Fatalf("counter %d: coordinator %v, sequential %d", id, got, counts[id])
		}
	}
}

func TestClusterApproximateAccuracyAndSavings(t *testing.T) {
	exactCfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 5, Events: 30000, StreamSeed: 23,
	}
	exRes, exCo, err := RunLocal(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	apCfg := exactCfg
	apCfg.Strategy = core.Uniform
	apCfg.Eps = 0.1
	apRes, apCo, err := RunLocal(apCfg)
	if err != nil {
		t.Fatal(err)
	}
	if apRes.Stats.Updates >= exRes.Stats.Updates {
		t.Errorf("approximate updates %d >= exact %d", apRes.Stats.Updates, exRes.Stats.Updates)
	}
	// Compare joint queries between the exact and approximate coordinators.
	opt := netgen.DefaultCPTOptions()
	opt.Seed = exactCfg.CPTSeed
	cpds, _ := netgen.GenCPTs(exCo.Network(), opt)
	model, _ := bn.NewModel(exCo.Network(), cpds)
	qs, err := stream.GenQueries(model, stream.QueryOptions{Count: 100, MinProb: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, q := range qs {
		ref := subsetProb(exCo, q.Set, q.X)
		got := subsetProb(apCo, q.Set, q.X)
		if ref <= 0 {
			continue
		}
		if ratio := got / ref; ratio < math.Exp(-0.5) || ratio > math.Exp(0.5) {
			bad++
		}
	}
	if bad > len(qs)/10 {
		t.Errorf("%d/%d cluster queries outside e^±0.5 of exact", bad, len(qs))
	}
}

// subsetProb evaluates an ancestrally closed event on a coordinator.
func subsetProb(co *Coordinator, set []int, x []int) float64 {
	netw := co.Network()
	layout := co.layout
	p := 1.0
	for _, i := range set {
		pidx := netw.ParentIndex(i, x)
		den := co.Estimate(layout.ParID(i, pidx))
		if den <= 0 {
			return 0
		}
		p *= co.Estimate(layout.PairID(i, x[i], pidx)) / den
	}
	return p
}

func TestClusterQueryProb(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 2, Events: 5000, StreamSeed: 31,
	}
	_, co, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]int, co.Network().Len())
	p := co.QueryProb(x)
	if p < 0 || p > 1.000001 || math.IsNaN(p) {
		t.Errorf("QueryProb = %v", p)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NetName: "", Sites: 2, Events: 10},
		{NetName: "alarm", Sites: 0, Events: 10},
		{NetName: "alarm", Sites: 2, Events: 0},
		{NetName: "alarm", Sites: 2, Events: 10, Strategy: core.Uniform, Eps: 0},
	}
	for i, cfg := range bad {
		if _, err := NewCoordinator(cfg, "127.0.0.1:0"); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewCoordinator(Config{
		NetName: "nope", Sites: 1, Events: 1, Strategy: core.ExactMLE,
	}, "127.0.0.1:0"); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestClusterWithLatencyKnob(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.Uniform, Eps: 0.2,
		Sites: 2, Events: 200, StreamSeed: 41, LatencyMicros: 50,
	}
	res, _, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Events != 200 {
		t.Errorf("events = %d", res.Stats.Events)
	}
}

func TestThroughputImprovesWithSitesUnderLatency(t *testing.T) {
	// With an artificial per-frame latency, more sites mean more parallel
	// stream processing: throughput should rise (Fig. 8's trend).
	run := func(k int) float64 {
		cfg := Config{
			NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.Uniform, Eps: 0.1,
			Sites: k, Events: 1200, StreamSeed: 47, LatencyMicros: 300,
		}
		res, _, err := RunLocal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	t1 := run(1)
	t4 := run(4)
	if t4 <= t1 {
		t.Errorf("throughput with 4 sites (%v) not above 1 site (%v)", t4, t1)
	}
}

// TestSiteFailureSurfacesAsError kills a site mid-protocol and verifies the
// coordinator reports the failure instead of hanging or fabricating results.
func TestSiteFailureSurfacesAsError(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 2, Events: 100000, StreamSeed: 3,
	}
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	serveErr := make(chan error, 1)
	go func() {
		_, err := co.Serve()
		serveErr <- err
	}()

	// Site 0 runs normally.
	go func() {
		_, _ = NewSite(0, co.Addr()).Run()
	}()
	// Site 1 connects, introduces itself, then drops the connection.
	raw, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.writeFrame(frameHello, encodeHello(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	// Read the start frame, then vanish.
	if _, _, err := c.readFrame(); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	select {
	case err := <-serveErr:
		if err == nil {
			t.Error("coordinator reported success despite site failure")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after site failure")
	}
}

// TestDuplicateSiteIDRejected verifies an out-of-range site id is refused.
func TestOutOfRangeSiteIDRejected(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 1, Events: 10, StreamSeed: 3,
	}
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	serveErr := make(chan error, 1)
	go func() {
		_, err := co.Serve()
		serveErr <- err
	}()
	raw, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := newConn(raw)
	if err := c.writeFrame(frameHello, encodeHello(99)); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err == nil {
			t.Error("out-of-range site id accepted")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung on bad site id")
	}
}
