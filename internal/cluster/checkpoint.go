package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"distbayes/internal/core"
)

// Coordinator checkpoint/restore.
//
// Format DBCLUS01, written through the shared DBAYES-family record plumbing
// (core.CkptWriter): the 8-byte magic, then little-endian u64 fields —
// fingerprint, run epoch, frames, updates, site count — then per site its
// done flag (u64 0/1), its recorded event count (u64), and one
// length-prefixed record holding the site's reported-count row encoded as a
// frameUpdates2 payload (nonzero entries only, ids strictly ascending), so
// the checkpoint reuses the wire codec and its validation instead of
// inventing a second matrix serialization.
//
// Crash-safety invariants: the checkpointed matrix holds monotone local
// counts folded with max-merge, so a checkpoint is always a *lower bound* on
// every site's decided reports — a coordinator restored from any cadence
// point converges to the uninterrupted run's exact final state once the
// sites re-resume and replay their decided counts. Periodic checkpoints are
// cadenced on received frames (deterministic, unlike wall clock) and written
// atomically (temp file + rename), so a crash mid-write leaves the previous
// checkpoint intact.

const checkpointMagic = "DBCLUS01"

// checkpointFingerprint binds a checkpoint to the run parameters that shape
// the reported matrix. Shards is deliberately excluded: stripes are a
// process-local concurrency choice, and a restored coordinator may use a
// different stripe count over the same matrix.
func (co *Coordinator) checkpointFingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	h.Write([]byte(co.cfg.NetName))
	w(co.cfg.CPTSeed)
	w(uint64(co.cfg.Strategy))
	w(math.Float64bits(co.cfg.Eps))
	w(math.Float64bits(co.cfg.Delta))
	w(uint64(co.cfg.Sites))
	w(uint64(co.layout.NumCounters()))
	if co.cfg.StripeCount > 0 {
		// A striped coordinator's matrix covers only its owned range; bind
		// the checkpoint to the stripe. Unstriped runs hash exactly the
		// historical fields, so pre-federation checkpoints keep restoring.
		w(uint64(co.cfg.StripeIndex))
		w(uint64(co.cfg.StripeCount))
	}
	return h.Sum64()
}

// checkpointState is a decoded DBCLUS01 checkpoint.
type checkpointState struct {
	Fingerprint uint64
	Epoch       uint64
	Frames      uint64
	Updates     uint64
	Sites       []checkpointSite
}

// checkpointSite is one site's membership and matrix row in a checkpoint.
type checkpointSite struct {
	Done   bool
	Events uint64
	Row    []Update
}

// readCheckpoint parses a DBCLUS01 stream, validating every length against
// the caller's bounds before allocating (maxSites bounds the membership
// table, maxCounters bounds each row record through the updates2 decoder) —
// the same discipline as the frame decoders, and fuzzed alongside them by
// FuzzDecodeResumeFrame.
func readCheckpoint(r io.Reader, maxSites, maxCounters uint32) (*checkpointState, error) {
	cr, err := core.NewCkptReader(r, checkpointMagic)
	if err != nil {
		return nil, err
	}
	st := &checkpointState{}
	if st.Fingerprint, err = cr.U64(); err != nil {
		return nil, err
	}
	if st.Epoch, err = cr.U64(); err != nil {
		return nil, err
	}
	if st.Frames, err = cr.U64(); err != nil {
		return nil, err
	}
	if st.Updates, err = cr.U64(); err != nil {
		return nil, err
	}
	sites, err := cr.U64()
	if err != nil {
		return nil, err
	}
	if sites == 0 || sites > uint64(maxSites) {
		return nil, fmt.Errorf("cluster: checkpoint declares %d sites, want 1..%d", sites, maxSites)
	}
	st.Sites = make([]checkpointSite, sites)
	rowCap := uint64(updatesPayloadCap(maxCounters))
	for i := range st.Sites {
		done, err := cr.U64()
		if err != nil {
			return nil, err
		}
		if done > 1 {
			return nil, fmt.Errorf("cluster: checkpoint site %d done flag %d, want 0 or 1", i, done)
		}
		st.Sites[i].Done = done == 1
		if st.Sites[i].Events, err = cr.U64(); err != nil {
			return nil, err
		}
		rec, err := cr.RecordCapped(rowCap)
		if err != nil {
			return nil, err
		}
		if st.Sites[i].Row, err = decodeUpdates2(nil, rec, maxCounters); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// WriteCheckpoint writes the coordinator's current run state to w in the
// DBCLUS01 format. Safe to call while Serve is running: the membership table
// and every matrix stripe are locked just long enough to copy the state, and
// the encoding happens off-lock. Because reports fold with max-merge, a
// checkpoint taken while frames are in flight is simply a slightly earlier
// prefix of the run — restoring it and letting the sites replay converges to
// the identical final state.
func (co *Coordinator) WriteCheckpoint(w io.Writer) error {
	co.mu.Lock()
	sites := make([]checkpointSite, len(co.slots))
	for i := range co.slots {
		sites[i].Done = co.slots[i].done
		sites[i].Events = uint64(co.slots[i].events)
	}
	co.mu.Unlock()
	rows := make([][]int64, len(co.reported))
	for s := range co.stripes {
		co.stripes[s].mu.Lock()
	}
	for i, row := range co.reported {
		rows[i] = append([]int64(nil), row...)
	}
	frames, updates := co.frames.Load(), co.updates.Load()
	for s := len(co.stripes) - 1; s >= 0; s-- {
		co.stripes[s].mu.Unlock()
	}

	cw, err := core.NewCkptWriter(w, checkpointMagic)
	if err != nil {
		return err
	}
	for _, v := range []uint64{
		co.checkpointFingerprint(), co.epoch,
		uint64(frames), uint64(updates), uint64(len(sites)),
	} {
		if err := cw.PutU64(v); err != nil {
			return err
		}
	}
	var ups []Update
	var buf []byte
	for i := range sites {
		done := uint64(0)
		if sites[i].Done {
			done = 1
		}
		if err := cw.PutU64(done); err != nil {
			return err
		}
		if err := cw.PutU64(sites[i].Events); err != nil {
			return err
		}
		ups = ups[:0]
		// Rows are compact (indexed by id − ownLo); the checkpoint stores
		// absolute counter ids so it is self-describing.
		for idx, n := range rows[i] {
			if n != 0 {
				ups = append(ups, Update{Counter: uint32(idx) + co.ownLo, LocalCount: n})
			}
		}
		buf = encodeUpdates2(buf, ups)
		if err := cw.PutRecord(buf); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// RestoreCheckpoint loads a DBCLUS01 checkpoint into a freshly constructed
// coordinator. Must be called before Serve, with a Config matching the
// checkpointed run (the fingerprint is checked; Shards may differ — stripes
// are process-local). The run epoch becomes the stored epoch plus one, so
// resuming sites can tell they are talking to a restored coordinator.
func (co *Coordinator) RestoreCheckpoint(r io.Reader) error {
	st, err := readCheckpoint(r, uint32(co.cfg.Sites), co.layout.NumCounters())
	if err != nil {
		return err
	}
	if st.Fingerprint != co.checkpointFingerprint() {
		return fmt.Errorf("cluster: checkpoint fingerprint %x does not match run %x (different network or config)",
			st.Fingerprint, co.checkpointFingerprint())
	}
	if len(st.Sites) != co.cfg.Sites {
		return fmt.Errorf("cluster: checkpoint has %d sites, run has %d", len(st.Sites), co.cfg.Sites)
	}
	co.epoch = st.Epoch + 1
	co.frames.Store(int64(st.Frames))
	co.updates.Store(int64(st.Updates))
	for i := range st.Sites {
		if st.Sites[i].Done {
			co.slots[i].done = true
			co.slots[i].events = int64(st.Sites[i].Events)
			co.events.Add(int64(st.Sites[i].Events))
			co.doneCount++
		}
		row := co.reported[i]
		for _, u := range st.Sites[i].Row {
			if u.Counter < co.ownLo || u.Counter >= co.ownHi {
				return fmt.Errorf("cluster: checkpoint counter %d outside owned range [%d,%d)",
					u.Counter, co.ownLo, co.ownHi)
			}
			row[u.Counter-co.ownLo] = u.LocalCount
		}
	}
	return nil
}

// WriteCheckpointFile writes a checkpoint atomically: the state goes to a
// temporary sibling of path and replaces it with a rename, so a crash
// mid-write never corrupts the previous checkpoint.
func (co *Coordinator) WriteCheckpointFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := co.WriteCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreCheckpointFile restores the checkpoint stored at path; see
// RestoreCheckpoint.
func (co *Coordinator) RestoreCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return co.RestoreCheckpoint(f)
}

// LastCheckpointError returns the most recent failure of the periodic
// checkpoint writer, or nil. Periodic checkpointing is best-effort: a write
// failure is recorded here and the run continues (the previous checkpoint
// file, if any, is still intact thanks to the atomic rename).
func (co *Coordinator) LastCheckpointError() error {
	if p := co.ckptErr.Load(); p != nil {
		return *p
	}
	return nil
}

// checkpointLoop services the frame-cadenced checkpoint requests that
// serveSite enqueues (nonblocking, so the ingest hot path never waits on
// file IO) and writes one final checkpoint when the run completes, so a
// coordinator restarted after completion serves stats immediately.
func (co *Coordinator) checkpointLoop() {
	for {
		select {
		case <-co.ckptCh:
			if err := co.WriteCheckpointFile(co.cfg.CheckpointPath); err != nil {
				co.ckptErr.Store(&err)
			}
		case <-co.finishCh:
			if co.finishErr == nil {
				if err := co.WriteCheckpointFile(co.cfg.CheckpointPath); err != nil {
					co.ckptErr.Store(&err)
				}
			}
			return
		}
	}
}
