// Package chaos is a fault-injection TCP proxy for cluster tests: it sits
// between the sites and the coordinator, understands the cluster's
// length-prefixed frame format, and injects connection faults at seeded,
// deterministic points — so a chaos test replays bit-for-bit from its seed
// and never depends on timing.
//
// Faults are scheduled by *frame counts*, not wall-clock: a connection is
// severed after its Nth client→server frame (optionally mid-frame, so the
// receiver sees a truncated payload — the partial-write case), update
// frames are duplicated by a seeded coin, and "delay" is modeled as holding
// a run of frames and releasing them in one burst (reordering-free latency
// without a sleep). Each connection's fault plan is derived from the proxy
// seed, the site id parsed from the connection's first frame (hello and
// resume both lead with the site id), and a per-site connection sequence
// number — deterministic regardless of accept interleaving across sites.
//
// The proxy deliberately does not import the cluster package (the cluster
// tests import chaos); it re-implements the five-byte frame header, which
// doubles as an independent check that the wire format is what the package
// comments claim.
package chaos

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"distbayes/internal/bn"
)

// maxFrame mirrors the cluster package's frame payload bound.
const maxFrame = 1 << 22

// Update frame types (duplication targets): the idempotent max-merge fold
// makes these — and only these — safe to deliver twice.
const (
	frameUpdates  byte = 3
	frameUpdates2 byte = 6
)

// Config selects which faults the proxy injects and how often. The zero
// value injects nothing (a transparent frame-forwarding proxy).
type Config struct {
	// Seed derives every per-connection fault plan.
	Seed uint64
	// SeverMinFrames/SeverMaxFrames, when max > 0, sever each connection
	// after a number of client→server frames drawn uniformly from
	// [min, max]. Choose min large enough that a resumed site makes forward
	// progress between cuts, or the site's resume budget drains.
	SeverMinFrames, SeverMaxFrames int
	// MidFrameCutProb is the probability that a sever lands mid-frame: the
	// header and half the payload are forwarded before the cut, so the
	// receiver sees a truncated frame (the partial-write fault).
	MidFrameCutProb float64
	// DupProb is the per-frame probability of delivering an update frame
	// (types 3 and 6) twice. Non-update frames are never duplicated.
	DupProb float64
	// HoldEvery/HoldFrames, when both > 0, model delay: every HoldEvery
	// frames the proxy buffers the next HoldFrames frames and releases them
	// in one burst.
	HoldEvery, HoldFrames int
}

// Proxy is a frame-aware fault-injecting TCP proxy. Create with New, point
// the sites at Addr, and retarget a restarted coordinator with SetTarget —
// the proxy is the stable rendezvous address that survives a coordinator
// restart.
type Proxy struct {
	cfg    Config
	ln     net.Listener
	closed atomic.Bool

	// Fault telemetry, so tests can assert the faults actually fired.
	severs  atomic.Int64
	dups    atomic.Int64
	accepts atomic.Int64

	mu     sync.Mutex
	target string
	seq    map[uint32]uint64 // per-site connection counter
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// New starts a proxy on 127.0.0.1:0 forwarding to target.
func New(cfg Config, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:    cfg,
		ln:     ln,
		target: target,
		seq:    make(map[uint32]uint64),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address (give this to the sites).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Severed returns how many connections the proxy has cut so far.
func (p *Proxy) Severed() int64 { return p.severs.Load() }

// Duplicated returns how many update frames were delivered twice so far.
func (p *Proxy) Duplicated() int64 { return p.dups.Load() }

// Connections returns how many client connections the proxy has admitted.
func (p *Proxy) Connections() int64 { return p.accepts.Load() }

// SetTarget atomically changes the forward address for *future* connections
// — existing connections keep their backend. Used when a killed coordinator
// restarts on a new port.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// Close stops the proxy and closes every live connection, then waits for
// the forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(client)
	}
}

// track registers a connection for Close; returns false if already closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// plan is one connection's precomputed fault schedule.
type plan struct {
	rng        *bn.RNG
	severAfter int  // sever after this many frames (0 = never)
	midCut     bool // sever lands mid-frame
}

// newPlan derives the deterministic fault plan for the seq'th connection of
// site id.
func (p *Proxy) newPlan(site uint32, seq uint64) *plan {
	rng := bn.NewRNG(p.cfg.Seed ^ uint64(site)*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9)
	pl := &plan{rng: rng}
	if p.cfg.SeverMaxFrames > 0 {
		span := p.cfg.SeverMaxFrames - p.cfg.SeverMinFrames + 1
		pl.severAfter = p.cfg.SeverMinFrames + rng.Intn(span)
		pl.midCut = rng.Float64() < p.cfg.MidFrameCutProb
	}
	return pl
}

// readFrame reads one full frame (header + payload) from r.
func readFrame(r io.Reader) (hdr [5]byte, payload []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return hdr, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return hdr, nil, fmt.Errorf("chaos: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if got, err := io.ReadFull(r, payload); err != nil {
		// Surface what did arrive: a mid-frame cut leaves a readable header
		// and a truncated payload, and callers may want to see the stub.
		return hdr, payload[:got], err
	}
	return hdr, payload, nil
}

// handle proxies one client connection: the first client frame identifies
// the site (hello and resume both lead with a u32 site id), which keys the
// deterministic fault plan; then client→server frames flow through the
// fault pipeline while server→client bytes are forwarded verbatim.
func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	if !p.track(client) {
		client.Close()
		return
	}
	defer p.untrack(client)
	defer client.Close()

	p.accepts.Add(1)
	hdr, payload, err := readFrame(client)
	if err != nil {
		return
	}
	site := uint32(0)
	if len(payload) >= 4 {
		site = binary.LittleEndian.Uint32(payload[:4])
	}
	p.mu.Lock()
	target := p.target
	seq := p.seq[site]
	p.seq[site] = seq + 1
	p.mu.Unlock()
	pl := p.newPlan(site, seq)

	server, err := net.Dial("tcp", target)
	if err != nil {
		return // the site's dial retry handles a briefly-absent coordinator
	}
	if !p.track(server) {
		server.Close()
		return
	}
	defer p.untrack(server)
	defer server.Close()

	// Server→client: transparent. Closing either side unblocks the other.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(client, server)
		client.Close()
	}()

	frames := 0
	var held []byte // buffered burst for the hold fault
	holding := 0
	forward := func(b []byte) error {
		if holding > 0 {
			held = append(held, b...)
			holding--
			if holding == 0 && len(held) > 0 {
				_, err := server.Write(held)
				held = held[:0]
				return err
			}
			return nil
		}
		_, err := server.Write(b)
		return err
	}

	// The handshake frame passes through un-faulted (frame 1); severing it
	// forever would starve the run no matter the budget.
	frame := make([]byte, 0, 5+len(payload))
	frame = append(frame, hdr[:]...)
	frame = append(frame, payload...)
	if _, err := server.Write(frame); err != nil {
		return
	}
	frames++

	for {
		hdr, payload, err := readFrame(client)
		if err != nil {
			// Flush anything held so a clean client close is not lossy.
			if len(held) > 0 {
				server.Write(held)
			}
			return
		}
		frames++
		if pl.severAfter > 0 && frames >= pl.severAfter {
			p.severs.Add(1)
			if pl.midCut && len(payload) > 1 {
				cut := append(append([]byte(nil), hdr[:]...), payload[:len(payload)/2]...)
				server.Write(cut)
			}
			return // defers close both halves: the sever
		}
		frame = frame[:0]
		frame = append(frame, hdr[:]...)
		frame = append(frame, payload...)
		t := hdr[0]
		if t != frameUpdates && t != frameUpdates2 {
			// Control frames (done, resume) release any held burst and pass
			// straight through: holding a done frame with no traffic behind
			// it would wedge the run forever, and the harness has no timers
			// to unwedge it.
			if len(held) > 0 {
				if _, err := server.Write(held); err != nil {
					return
				}
				held = held[:0]
			}
			holding = 0
			if _, err := server.Write(frame); err != nil {
				return
			}
			continue
		}
		if p.cfg.HoldEvery > 0 && p.cfg.HoldFrames > 0 && holding == 0 && frames%p.cfg.HoldEvery == 0 {
			holding = p.cfg.HoldFrames
		}
		if err := forward(frame); err != nil {
			return
		}
		if p.cfg.DupProb > 0 && pl.rng.Float64() < p.cfg.DupProb {
			p.dups.Add(1)
			if err := forward(frame); err != nil {
				return
			}
		}
	}
}
