package chaos

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
)

// frameBackend accepts connections and records every decoded frame type it
// receives, reporting them per connection over a channel when the
// connection ends.
type frameBackend struct {
	ln    net.Listener
	got   chan []byte // frame types, one slice per finished connection
	bytes chan int    // raw payload bytes received on the last frame (partial detection)
}

func newFrameBackend(t *testing.T) *frameBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &frameBackend{ln: ln, got: make(chan []byte, 16), bytes: make(chan int, 16)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				var types []byte
				tail := 0
				for {
					hdr, payload, err := readFrame(c)
					if err != nil {
						// Count trailing partial bytes, if any (a mid-frame
						// cut leaves a readable header + short payload).
						if n := len(payload); n > 0 {
							tail = n
						}
						break
					}
					types = append(types, hdr[0])
				}
				c.Close()
				b.got <- types
				b.bytes <- tail
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return b
}

func writeFrame(t *testing.T, w io.Writer, typ byte, payload []byte) {
	t.Helper()
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// hello builds a hello-shaped first frame carrying the site id, which keys
// the proxy's deterministic per-connection fault plan.
func hello(site uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], site)
	return b[:]
}

// sendThrough opens one proxied connection, sends a hello then n update
// frames, closes, and returns the backend's view of the connection.
func sendThrough(t *testing.T, p *Proxy, site uint32, n int, b *frameBackend) []byte {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(t, c, 1, hello(site))
	for i := 0; i < n; i++ {
		writeFrame(t, c, frameUpdates, []byte{byte(i), 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	}
	c.Close()
	return <-b.got
}

func TestTransparentForwarding(t *testing.T) {
	b := newFrameBackend(t)
	p, err := New(Config{}, b.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	types := sendThrough(t, p, 0, 10, b)
	<-b.bytes
	if len(types) != 11 {
		t.Fatalf("backend saw %d frames, want 11", len(types))
	}
	if types[0] != 1 {
		t.Fatalf("first frame type %d, want hello", types[0])
	}
}

func TestSeverAtFrameCount(t *testing.T) {
	b := newFrameBackend(t)
	p, err := New(Config{Seed: 7, SeverMinFrames: 5, SeverMaxFrames: 5}, b.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	types := sendThrough(t, p, 0, 50, b)
	<-b.bytes
	// The sever fires when the connection's frame counter reaches 5: the
	// hello plus the first three updates get through, the fifth frame dies.
	if len(types) != 4 {
		t.Fatalf("backend saw %d frames, want 4 (sever after frame 5)", len(types))
	}
}

func TestDuplicateUpdateFramesOnly(t *testing.T) {
	b := newFrameBackend(t)
	p, err := New(Config{Seed: 7, DupProb: 1}, b.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	types := sendThrough(t, p, 0, 10, b)
	<-b.bytes
	// Every update doubled, the hello untouched.
	if len(types) != 21 {
		t.Fatalf("backend saw %d frames, want 21 (hello + 10 doubled updates)", len(types))
	}
	if types[0] != 1 || types[1] != frameUpdates || types[2] != frameUpdates {
		t.Fatalf("unexpected leading frame types %v", types[:3])
	}
}

func TestHoldReleasesBurstLossless(t *testing.T) {
	b := newFrameBackend(t)
	p, err := New(Config{Seed: 7, HoldEvery: 4, HoldFrames: 3}, b.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	types := sendThrough(t, p, 0, 20, b)
	<-b.bytes
	if len(types) != 21 {
		t.Fatalf("backend saw %d frames, want 21 (hold delays, never drops)", len(types))
	}
}

func TestFaultPlanDeterministicPerSeed(t *testing.T) {
	for _, site := range []uint32{0, 3} {
		var lens [2]int
		for run := 0; run < 2; run++ {
			b := newFrameBackend(t)
			p, err := New(Config{Seed: 42, SeverMinFrames: 3, SeverMaxFrames: 30, MidFrameCutProb: 0.5}, b.ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			types := sendThrough(t, p, site, 40, b)
			<-b.bytes
			lens[run] = len(types)
			p.Close()
		}
		if lens[0] != lens[1] {
			t.Fatalf("site %d: fault plan not deterministic: %d vs %d frames delivered", site, lens[0], lens[1])
		}
	}
}

func TestMidFrameCutDeliversPartialFrame(t *testing.T) {
	b := newFrameBackend(t)
	p, err := New(Config{Seed: 1, SeverMinFrames: 5, SeverMaxFrames: 5, MidFrameCutProb: 1}, b.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	types := sendThrough(t, p, 0, 50, b)
	tail := <-b.bytes
	if len(types) != 4 {
		t.Fatalf("backend saw %d whole frames, want 4", len(types))
	}
	if tail == 0 {
		t.Fatalf("mid-frame cut delivered no partial payload; want a truncated frame")
	}
}
