package cluster

import (
	"fmt"
	"net"
	"slices"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

// Site is one stream-receiving processor of the monitoring system. It
// connects to the coordinator, receives its StartConfig, generates its share
// of the training stream locally, and runs the site half of the counter
// protocol.
type Site struct {
	id   uint32
	addr string
}

// NewSite prepares a site with the given id targeting the coordinator's
// address.
func NewSite(id uint32, addr string) *Site { return &Site{id: id, addr: addr} }

// Run connects, processes the configured stream, and returns the
// coordinator's closing Stats.
func (s *Site) Run() (Stats, error) {
	raw, err := net.Dial("tcp", s.addr)
	if err != nil {
		return Stats{}, fmt.Errorf("cluster: site %d dial: %w", s.id, err)
	}
	defer raw.Close()
	c := newConn(raw)

	if err := c.writeFrame(frameHello, encodeHello(s.id)); err != nil {
		return Stats{}, err
	}
	if err := c.flush(); err != nil {
		return Stats{}, err
	}
	t, payload, err := c.readFrame()
	if err != nil {
		return Stats{}, fmt.Errorf("cluster: site %d waiting for start: %w", s.id, err)
	}
	if t != frameStart {
		return Stats{}, fmt.Errorf("cluster: site %d got frame %d, want start", s.id, t)
	}
	cfg, err := decodeStart(payload)
	if err != nil {
		return Stats{}, err
	}
	if err := s.process(c, cfg); err != nil {
		return Stats{}, err
	}
	// Closing stats from the coordinator.
	for {
		t, payload, err := c.readFrame()
		if err != nil {
			return Stats{}, fmt.Errorf("cluster: site %d waiting for stats: %w", s.id, err)
		}
		if t == frameStats {
			return decodeStats(payload)
		}
	}
}

func (s *Site) process(c *conn, cfg StartConfig) error {
	netw, err := netgen.ByName(cfg.NetName)
	if err != nil {
		return err
	}
	opt := netgen.DefaultCPTOptions()
	opt.Seed = cfg.CPTSeed
	cpds, err := netgen.GenCPTs(netw, opt)
	if err != nil {
		return err
	}
	model, err := bn.NewModel(netw, cpds)
	if err != nil {
		return err
	}
	layout, err := NewLayout(netw, core.Strategy(cfg.Strategy), cfg.Eps)
	if err != nil {
		return err
	}

	k := int(cfg.Sites)
	counts := newSiteCounters(layout, k)
	rng := bn.NewRNG(cfg.StreamSeed ^ (uint64(s.id) * 0x9e3779b97f4a7c15))
	// The site's share of the stream is the same per-site sub-stream the
	// in-process parallel engine uses — one shared constructor guards the
	// cluster-vs-in-process equivalence.
	training := stream.NewSiteTraining(model, int(s.id), cfg.StreamSeed)

	if cfg.BatchEvents > 0 {
		return s.processBatched(c, cfg, netw, layout, counts, rng, training)
	}

	ups := make([]Update, 0, 2*netw.Len())
	buf := make([]byte, 0, 24*netw.Len())
	latency := time.Duration(cfg.LatencyMicros) * time.Microsecond
	// Without artificial latency, frames ride the 64KB connection buffer;
	// flush on a fixed event cadence so the coordinator's continuous view
	// stays fresh even on low-rate counters.
	const flushEvery = 1024

	for e := uint64(0); e < cfg.Events; e++ {
		_, x := training.Next()
		ups = ups[:0]
		for i := 0; i < netw.Len(); i++ {
			pidx := netw.ParentIndex(i, x)
			for _, id := range [2]uint32{layout.PairID(i, x[i], pidx), layout.ParID(i, pidx)} {
				if n, report := counts.inc(id, rng); report {
					ups = append(ups, Update{Counter: id, LocalCount: n})
				}
			}
		}
		if len(ups) > 0 {
			buf = encodeUpdates(buf, ups)
			if err := c.writeFrame(frameUpdates, buf); err != nil {
				return err
			}
			if latency > 0 {
				if err := c.flush(); err != nil {
					return err
				}
				time.Sleep(latency)
			}
		}
		// Cadence check runs even for update-less events (the paper's no
		// update, no message optimization), so a frame buffered during a
		// long quiet stretch still reaches the coordinator promptly.
		if latency == 0 && (e+1)%flushEvery == 0 {
			if err := c.flush(); err != nil {
				return err
			}
		}
	}
	if err := c.writeFrame(frameDone, encodeDone(s.id, int64(cfg.Events))); err != nil {
		return err
	}
	return c.flush()
}

// processBatched is the protocol-version-2 stream loop: report decisions are
// made per increment exactly as in the per-event path (same counters, same
// RNG draw order), but instead of shipping a frame per triggering event the
// decided reports coalesce into a sparse delta batch — a map from counter id
// to its latest decided local count; counts are monotone, so the latest
// subsumes the window's earlier decisions — that is flushed as one
// varint-compressed frameUpdates2 frame every cfg.BatchEvents events. A
// report is therefore delayed by at most one window, a staleness of the same
// kind as the trailing gap the report probability already models.
func (s *Site) processBatched(c *conn, cfg StartConfig, netw *bn.Network, layout *Layout, counts *siteCounters, rng *bn.RNG, training *stream.Training) error {
	window := uint64(cfg.BatchEvents)
	latency := time.Duration(cfg.LatencyMicros) * time.Microsecond
	batch := make(map[uint32]int64, 2*netw.Len())
	ups := make([]Update, 0, 2*netw.Len())
	buf := make([]byte, 0, 24*netw.Len())

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		ups = ups[:0]
		for id, n := range batch {
			ups = append(ups, Update{Counter: id, LocalCount: n})
		}
		clear(batch)
		slices.SortFunc(ups, func(a, b Update) int { return int(a.Counter) - int(b.Counter) })
		buf = encodeUpdates2(buf, ups)
		if err := c.writeFrame(frameUpdates2, buf); err != nil {
			return err
		}
		// A window frame is rare by construction: push it out immediately so
		// the coordinator's live view stays at most one window stale.
		if err := c.flush(); err != nil {
			return err
		}
		if latency > 0 {
			time.Sleep(latency)
		}
		return nil
	}

	for e := uint64(0); e < cfg.Events; e++ {
		_, x := training.Next()
		for i := 0; i < netw.Len(); i++ {
			pidx := netw.ParentIndex(i, x)
			for _, id := range [2]uint32{layout.PairID(i, x[i], pidx), layout.ParID(i, pidx)} {
				if n, report := counts.inc(id, rng); report {
					batch[id] = n
				}
			}
		}
		if (e+1)%window == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := c.writeFrame(frameDone, encodeDone(s.id, int64(cfg.Events))); err != nil {
		return err
	}
	return c.flush()
}
