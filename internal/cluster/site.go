package cluster

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

// ErrSiteCrashed is returned by Site.Run when the CrashAfterEvents chaos
// hook fires: the site stops dead at a deterministic stream position without
// sending its Done marker — the tests' stand-in for kill -9 of a site
// process. A fresh Site for the same id restarted against the coordinator
// rejoins with a hello and replays its stream from event zero; per-site
// determinism makes the replayed report decisions identical, so the run's
// final estimates are unchanged.
var ErrSiteCrashed = errors.New("cluster: site crashed (chaos hook)")

// Site is one stream-receiving processor of the monitoring system. It
// connects to the coordinator, receives its StartConfig, generates its share
// of the training stream locally, and runs the site half of the counter
// protocol.
//
// The connection is supervised: a transient dial failure retries with
// exponential backoff and deterministic jitter, and a connection lost
// mid-run reconnects with a protocol-v3 resume handshake — the site keeps
// its stream position and counter state across reconnects, replays its
// latest decided per-counter local counts in one frameUpdates2 frame (safe:
// counts are monotone and the coordinator's fold is max-merge, so the
// replay is idempotent), and continues the stream where it stopped.
type Site struct {
	id   uint32
	addr string

	// MaxResumes bounds *consecutive* reconnect attempts that make no stream
	// progress; 0 selects the default (32). A resume that advances the
	// stream position resets the budget, so a long run under repeated
	// connection faults survives any number of cuts as long as each
	// connection gets some work done — only a genuine livelock (the
	// coordinator gone for good, or cuts faster than progress) drains the
	// budget, and Run then returns the last connection error.
	MaxResumes int
	// DialAttempts bounds consecutive failed dials per connection attempt; 0
	// selects the default (8).
	DialAttempts int
	// RetryBase and RetryCap shape the exponential backoff between dial
	// attempts (and between resume attempts): the nth retry waits
	// RetryBase·2ⁿ plus up to 50% deterministic jitter, capped at RetryCap.
	// Zero selects the defaults (20ms, 1s).
	RetryBase, RetryCap time.Duration
	// CrashAfterEvents, when nonzero, makes Run return ErrSiteCrashed as
	// soon as the site's stream position reaches this many events, without
	// sending Done — a deterministic chaos hook (stream positions do not
	// depend on timing, so the crash point is exactly reproducible).
	CrashAfterEvents uint64
}

// NewSite prepares a site with the given id targeting the coordinator's
// address.
func NewSite(id uint32, addr string) *Site { return &Site{id: id, addr: addr} }

// siteRun is the state a site keeps across reconnects: the decoded run
// configuration, the regenerated model and layout, the approximate-counter
// state, the stream position, and — the crux of crash safety — lastReported,
// the latest *decided* report per counter. Replaying lastReported on resume
// restores the coordinator's row for this site to exactly the value an
// uninterrupted run would have reached, because the final matrix cell only
// ever holds the latest decided report (monotone counts, max-merge fold).
type siteRun struct {
	cfg      StartConfig
	netw     *bn.Network
	layout   *Layout
	counts   *siteCounters
	rng      *bn.RNG
	training *stream.Training
	// lastReported[id] is the latest local count this site decided to
	// report for counter id (0 = never reported).
	lastReported []int64
	// next is the index of the next stream event to process.
	next uint64
	// doneSent records that the coordinator accepted this site's Done
	// marker (learned from a resume ack's resumeSiteDone flag).
	doneSent bool
	// batch is the pending protocol-v2 coalescing window (nil in v1 mode).
	batch map[uint32]int64
	// structLayout/structCounts hold the structure-learning overlay's
	// cumulative pairwise co-occurrence counts (protocol v4; nil/empty with
	// learning off). Counts are monotone and shipped whole, so a replayed
	// frame max-merges to a no-op on the coordinator.
	structLayout *StructLayout
	structCounts []int64
	// drift is the post-drift generating stream (nil without drift); events
	// at positions ≥ cfg.DriftAtEvent are drawn from it instead of training.
	drift *stream.Training
	// scratch buffers reused across frames.
	ups []Update
	buf []byte
}

// newSiteRun regenerates the deterministic run state from a StartConfig.
func newSiteRun(id uint32, cfg StartConfig) (*siteRun, error) {
	netw, err := netgen.ByName(cfg.NetName)
	if err != nil {
		return nil, err
	}
	opt := netgen.DefaultCPTOptions()
	opt.Seed = cfg.CPTSeed
	cpds, err := netgen.GenCPTs(netw, opt)
	if err != nil {
		return nil, err
	}
	model, err := bn.NewModel(netw, cpds)
	if err != nil {
		return nil, err
	}
	layout, err := NewLayout(netw, core.Strategy(cfg.Strategy), cfg.Eps)
	if err != nil {
		return nil, err
	}
	st := &siteRun{
		cfg:    cfg,
		netw:   netw,
		layout: layout,
		counts: newSiteCounters(layout, int(cfg.Sites)),
		rng:    bn.NewRNG(cfg.StreamSeed ^ (uint64(id) * 0x9e3779b97f4a7c15)),
		// The site's share of the stream is the same per-site sub-stream the
		// in-process parallel engine uses — one shared constructor guards the
		// cluster-vs-in-process equivalence.
		training:     stream.NewSiteTraining(model, int(id), cfg.StreamSeed),
		lastReported: make([]int64, layout.NumCounters()),
		ups:          make([]Update, 0, 2*netw.Len()),
		buf:          make([]byte, 0, 24*netw.Len()),
	}
	if cfg.BatchEvents > 0 {
		st.batch = make(map[uint32]int64, 2*netw.Len())
	}
	if cfg.StructBatchEvents > 0 {
		if st.structLayout, err = NewStructLayout(netw); err != nil {
			return nil, err
		}
		st.structCounts = make([]int64, st.structLayout.Cells())
	}
	if cfg.DriftNetName != "" {
		driftNet, err := netgen.ByName(cfg.DriftNetName)
		if err != nil {
			return nil, err
		}
		if err := sameVariables(netw, driftNet); err != nil {
			return nil, fmt.Errorf("cluster: drift network %q incompatible with %q: %w",
				cfg.DriftNetName, cfg.NetName, err)
		}
		opt := netgen.DefaultCPTOptions()
		opt.Seed = cfg.DriftCPTSeed
		driftCPDs, err := netgen.GenCPTs(driftNet, opt)
		if err != nil {
			return nil, err
		}
		driftModel, err := bn.NewModel(driftNet, driftCPDs)
		if err != nil {
			return nil, err
		}
		// A fixed seed derivation keeps the drift stream deterministic across
		// restarts: both halves of the stream are pure functions of the
		// StartConfig and the absolute event position.
		st.drift = stream.NewSiteTraining(driftModel, int(id), cfg.StreamSeed^0xd21f7a3c5e9b11)
	}
	return st, nil
}

// nextEvent draws the site's next stream event: from the base generating
// model before the drift point, from the drift model at and after it. Both
// sub-streams advance only when consumed, and the switch is a pure function
// of the absolute position st.next, so a restart's replay from event zero
// regenerates the identical stream.
func (st *siteRun) nextEvent() []int {
	if st.drift != nil && st.next >= st.cfg.DriftAtEvent {
		_, x := st.drift.Next()
		return x
	}
	_, x := st.training.Next()
	return x
}

func (s *Site) maxResumes() int {
	if s.MaxResumes > 0 {
		return s.MaxResumes
	}
	return 32
}

func (s *Site) dialAttempts() int {
	if s.DialAttempts > 0 {
		return s.DialAttempts
	}
	return 8
}

// backoff returns the wait before retry attempt n (0-based): exponential
// with deterministic jitter from jrng, capped.
func (s *Site) backoff(n int, jrng *bn.RNG) time.Duration {
	base, cap := s.RetryBase, s.RetryCap
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	d := base << uint(min(n, 20))
	if d > cap || d <= 0 {
		d = cap
	}
	// Up to 50% jitter, drawn from a seeded generator so two sites that fail
	// together do not thunder back together — and so tests stay reproducible.
	return d + time.Duration(jrng.Float64()*0.5*float64(d))
}

// dialRetry dials the coordinator with bounded exponential backoff; a
// coordinator that is briefly down (restarting from a checkpoint, say) just
// costs a few retries instead of failing the site.
func (s *Site) dialRetry(jrng *bn.RNG) (net.Conn, error) {
	var lastErr error
	for n := 0; n < s.dialAttempts(); n++ {
		if n > 0 {
			time.Sleep(s.backoff(n-1, jrng))
		}
		raw, err := net.Dial("tcp", s.addr)
		if err == nil {
			return raw, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: site %d dial: %w", s.id, lastErr)
}

// Run connects, processes the configured stream, and returns the
// coordinator's closing Stats. Run supervises its connection: dial failures
// retry with backoff, and a connection lost mid-run resumes (see the Site
// doc comment) until MaxResumes is exhausted.
func (s *Site) Run() (Stats, error) {
	jrng := bn.NewRNG(0xc1a05c0de ^ (uint64(s.id) * 0x9e3779b97f4a7c15))
	var st *siteRun
	stalled := 0 // consecutive resumes without stream progress
	for {
		raw, err := s.dialRetry(jrng)
		if err != nil {
			return Stats{}, err
		}
		var before uint64
		if st != nil {
			before = st.next
		}
		stats, terminal, err := s.runConn(raw, &st)
		raw.Close()
		if terminal {
			return stats, err
		}
		if st != nil && st.next > before {
			stalled = 0 // the connection got work done; a fresh fault budget
		} else {
			stalled++
		}
		if stalled > s.maxResumes() {
			return Stats{}, fmt.Errorf("cluster: site %d out of resume attempts: %w", s.id, err)
		}
		time.Sleep(s.backoff(stalled, jrng))
	}
}

// runConn drives one connection: handshake (hello on the first connection,
// resume afterwards), the stream loop, and the wait for closing stats. A
// terminal return ends Run (success, a protocol violation, or the chaos
// crash hook); a non-terminal one means the connection died and the site
// should reconnect and resume.
func (s *Site) runConn(raw net.Conn, pst **siteRun) (Stats, bool, error) {
	c := newConn(raw)
	st := *pst

	if st == nil {
		// First connection: introduce ourselves, receive the run config.
		if err := c.writeFrame(frameHello, encodeHello(s.id)); err != nil {
			return Stats{}, false, err
		}
		if err := c.flush(); err != nil {
			return Stats{}, false, err
		}
		t, payload, err := c.readFrame()
		if err != nil {
			return Stats{}, false, fmt.Errorf("cluster: site %d waiting for start: %w", s.id, err)
		}
		if t != frameStart {
			return Stats{}, true, fmt.Errorf("cluster: site %d got frame %d, want start", s.id, t)
		}
		cfg, err := decodeStart(payload)
		if err != nil {
			return Stats{}, true, err
		}
		if st, err = newSiteRun(s.id, cfg); err != nil {
			return Stats{}, true, err
		}
		*pst = st
	} else {
		// Reconnect: resume with our stream position, then replay the
		// decided counts so the coordinator's row catches up to our state
		// regardless of what the dead connection actually delivered (or what
		// a restored-from-checkpoint coordinator remembers).
		if err := c.writeFrame(frameResume, encodeResume(resumeReq{Site: s.id, Events: st.next})); err != nil {
			return Stats{}, false, err
		}
		if err := c.flush(); err != nil {
			return Stats{}, false, err
		}
		t, payload, err := c.readFrame()
		if err != nil {
			return Stats{}, false, fmt.Errorf("cluster: site %d waiting for resume ack: %w", s.id, err)
		}
		if t != frameResumeAck {
			return Stats{}, true, fmt.Errorf("cluster: site %d got frame %d, want resume ack", s.id, t)
		}
		ack, err := decodeResumeAck(payload)
		if err != nil {
			return Stats{}, true, err
		}
		if ack.Flags&resumeRunComplete != 0 {
			// The run finished while we were away; the closing stats follow
			// on this connection.
			stats, err := s.awaitStats(c)
			return stats, err == nil, err
		}
		if ack.Flags&resumeSiteDone != 0 {
			st.doneSent = true
		}
		if !st.doneSent {
			if err := s.replay(c, st); err != nil {
				return Stats{}, false, err
			}
		}
	}

	if !st.doneSent && st.next < st.cfg.Events {
		var err error
		if st.cfg.BatchEvents > 0 {
			err = s.processBatched(c, st)
		} else {
			err = s.process(c, st)
		}
		if err != nil {
			terminal := errors.Is(err, ErrSiteCrashed)
			return Stats{}, terminal, err
		}
	}
	if !st.doneSent {
		// The Done marker carries the site's full event count; the
		// coordinator deduplicates, so re-sending after a resume is safe.
		if err := c.writeFrame(frameDone, encodeDone(s.id, int64(st.cfg.Events))); err != nil {
			return Stats{}, false, err
		}
		if err := c.flush(); err != nil {
			return Stats{}, false, err
		}
	}
	stats, err := s.awaitStats(c)
	if err != nil {
		return Stats{}, false, err // stats lost in transit: resume and re-ask
	}
	return stats, true, nil
}

// replay ships the site's latest decided report for every counter it ever
// reported, as one coalesced frameUpdates2 frame. Idempotent by
// construction: every replayed count is ≤ the count an uninterrupted run
// would have delivered by now, and the coordinator keeps the max.
func (s *Site) replay(c *conn, st *siteRun) error {
	st.ups = st.ups[:0]
	for id, n := range st.lastReported {
		if n != 0 {
			st.ups = append(st.ups, Update{Counter: uint32(id), LocalCount: n})
		}
	}
	if st.batch != nil {
		// The pending window is subsumed by lastReported (both record the
		// latest decision); drop it so it is not re-flushed at the next
		// window boundary.
		clear(st.batch)
	}
	if len(st.ups) > 0 {
		st.buf = encodeUpdates2(st.buf, st.ups)
		if err := c.writeFrame(frameUpdates2, st.buf); err != nil {
			return err
		}
	}
	// Re-ship the cumulative structure statistics too: a coordinator
	// restored from a checkpoint restarts with an empty MI window, and the
	// replayed cumulative counts (max-merged, so a no-op when nothing was
	// lost) put the per-site statistics back.
	if err := s.shipStructStats(c, st); err != nil {
		return err
	}
	return c.flush()
}

// shipStructStats sends the site's full cumulative pairwise co-occurrence
// vector and stream position as one frameStructStats frame (a no-op with
// structure learning off or before the first event). Cumulative counts make
// the frame self-contained: the coordinator max-merges it, so duplicates
// and replays are absorbed.
func (s *Site) shipStructStats(c *conn, st *siteRun) error {
	if st.structCounts == nil || st.next == 0 {
		return nil
	}
	st.ups = st.ups[:0]
	for id, n := range st.structCounts {
		if n != 0 {
			st.ups = append(st.ups, Update{Counter: uint32(id), LocalCount: n})
		}
	}
	st.buf = encodeStructStats(st.buf, st.next, st.ups)
	if err := c.writeFrame(frameStructStats, st.buf); err != nil {
		return err
	}
	return c.flush()
}

// awaitStats reads frames until the coordinator's closing stats arrive.
func (s *Site) awaitStats(c *conn) (Stats, error) {
	for {
		t, payload, err := c.readFrame()
		if err != nil {
			return Stats{}, fmt.Errorf("cluster: site %d waiting for stats: %w", s.id, err)
		}
		if t == frameStats {
			return decodeStats(payload)
		}
	}
}

// crashed reports whether the chaos hook fires at stream position next.
func (s *Site) crashed(next uint64) bool {
	return s.CrashAfterEvents > 0 && next >= s.CrashAfterEvents
}

// process is the protocol-version-1 stream loop: one frameUpdates frame per
// event that triggered a report, resuming from st.next.
func (s *Site) process(c *conn, st *siteRun) error {
	cfg, netw, layout := st.cfg, st.netw, st.layout
	latency := time.Duration(cfg.LatencyMicros) * time.Microsecond
	// Without artificial latency, frames ride the 64KB connection buffer;
	// flush on a fixed event cadence so the coordinator's continuous view
	// stays fresh even on low-rate counters.
	const flushEvery = 1024

	for st.next < cfg.Events {
		if s.crashed(st.next) {
			return ErrSiteCrashed
		}
		e := st.next
		x := st.nextEvent()
		if st.structCounts != nil {
			st.structLayout.Accumulate(st.structCounts, x)
		}
		st.ups = st.ups[:0]
		for i := 0; i < netw.Len(); i++ {
			pidx := netw.ParentIndex(i, x)
			for _, id := range [2]uint32{layout.PairID(i, x[i], pidx), layout.ParID(i, pidx)} {
				if n, report := st.counts.inc(id, st.rng); report {
					st.lastReported[id] = n
					st.ups = append(st.ups, Update{Counter: id, LocalCount: n})
				}
			}
		}
		// The event is consumed the moment the sample is drawn and the
		// decisions recorded; advance before any fallible write so a broken
		// connection can never replay a consumed sample (the decisions it
		// carried are in lastReported and covered by resume replay).
		st.next = e + 1
		if len(st.ups) > 0 {
			st.buf = encodeUpdates(st.buf, st.ups)
			if err := c.writeFrame(frameUpdates, st.buf); err != nil {
				return err
			}
			if latency > 0 {
				if err := c.flush(); err != nil {
					return err
				}
				time.Sleep(latency)
			}
		}
		if st.structCounts != nil && (e+1)%uint64(cfg.StructBatchEvents) == 0 {
			if err := s.shipStructStats(c, st); err != nil {
				return err
			}
		}
		// Cadence check runs even for update-less events (the paper's no
		// update, no message optimization), so a frame buffered during a
		// long quiet stretch still reaches the coordinator promptly.
		if latency == 0 && (e+1)%flushEvery == 0 {
			if err := c.flush(); err != nil {
				return err
			}
		}
	}
	// A final ship covers the tail shorter than one struct batch window.
	if err := s.shipStructStats(c, st); err != nil {
		return err
	}
	return c.flush()
}

// processBatched is the protocol-version-2 stream loop: report decisions are
// made per increment exactly as in the per-event path (same counters, same
// RNG draw order), but instead of shipping a frame per triggering event the
// decided reports coalesce into a sparse delta batch — a map from counter id
// to its latest decided local count; counts are monotone, so the latest
// subsumes the window's earlier decisions — that is flushed as one
// varint-compressed frameUpdates2 frame every cfg.BatchEvents events. A
// report is therefore delayed by at most one window, a staleness of the same
// kind as the trailing gap the report probability already models. Resumes
// from st.next; window boundaries are absolute stream positions, so a
// reconnect does not shift the frame schedule.
func (s *Site) processBatched(c *conn, st *siteRun) error {
	cfg, netw, layout := st.cfg, st.netw, st.layout
	window := uint64(cfg.BatchEvents)
	latency := time.Duration(cfg.LatencyMicros) * time.Microsecond

	flush := func() error {
		if len(st.batch) == 0 {
			return nil
		}
		st.ups = st.ups[:0]
		for id, n := range st.batch {
			st.ups = append(st.ups, Update{Counter: id, LocalCount: n})
		}
		clear(st.batch)
		slices.SortFunc(st.ups, func(a, b Update) int { return int(a.Counter) - int(b.Counter) })
		st.buf = encodeUpdates2(st.buf, st.ups)
		if err := c.writeFrame(frameUpdates2, st.buf); err != nil {
			return err
		}
		// A window frame is rare by construction: push it out immediately so
		// the coordinator's live view stays at most one window stale.
		if err := c.flush(); err != nil {
			return err
		}
		if latency > 0 {
			time.Sleep(latency)
		}
		return nil
	}

	for st.next < cfg.Events {
		if s.crashed(st.next) {
			return ErrSiteCrashed
		}
		e := st.next
		x := st.nextEvent()
		if st.structCounts != nil {
			st.structLayout.Accumulate(st.structCounts, x)
		}
		for i := 0; i < netw.Len(); i++ {
			pidx := netw.ParentIndex(i, x)
			for _, id := range [2]uint32{layout.PairID(i, x[i], pidx), layout.ParID(i, pidx)} {
				if n, report := st.counts.inc(id, st.rng); report {
					st.lastReported[id] = n
					st.batch[id] = n
				}
			}
		}
		// Consumed: advance before the fallible flush (see process).
		st.next = e + 1
		if (e+1)%window == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
		if st.structCounts != nil && (e+1)%uint64(cfg.StructBatchEvents) == 0 {
			if err := s.shipStructStats(c, st); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// A final ship covers the tail shorter than one struct batch window.
	return s.shipStructStats(c, st)
}
