package cluster

import (
	"math"

	"distbayes/internal/bn"
	"distbayes/internal/core"
)

// Layout assigns a dense global id to every distributed counter of a
// network: for each variable, first its J_i·K_i pair counters (in CPT order,
// pidx·J_i + value), then its K_i parent counters. Sites and the
// coordinator compute the same layout independently from the regenerated
// network, so counter ids never travel in full.
type Layout struct {
	net     *bn.Network
	pairOff []uint32
	parOff  []uint32
	total   uint32
	// eps[id] is the counter's error parameter under the chosen allocation.
	eps []float64
	// sections are the contiguous equal-eps id ranges (per variable: its
	// pair block, then its parent block) in ascending id order, covering
	// [0, total) exactly.
	sections []Section
}

// Section is one contiguous counter-id range sharing a single error
// parameter. Bulk walks over the whole counter space — the coordinator's
// snapshot rebuild — iterate sections so the per-id eps lookup hoists out
// of the inner loop (the coordinator-side sibling of
// counter.Bank.EstimateRange).
type Section struct {
	Lo, Hi uint32
	Eps    float64
}

// NewLayout computes the layout and per-counter error parameters for the
// given strategy and budget.
func NewLayout(net *bn.Network, strategy core.Strategy, eps float64) (*Layout, error) {
	alloc, err := core.Allocate(net, strategy, eps)
	if err != nil {
		return nil, err
	}
	l := &Layout{
		net:     net,
		pairOff: make([]uint32, net.Len()),
		parOff:  make([]uint32, net.Len()),
	}
	off := uint32(0)
	for i := 0; i < net.Len(); i++ {
		l.pairOff[i] = off
		off += uint32(net.Card(i) * net.ParentCard(i))
		l.parOff[i] = off
		off += uint32(net.ParentCard(i))
	}
	l.total = off
	l.eps = make([]float64, off)
	l.sections = make([]Section, 0, 2*net.Len())
	for i := 0; i < net.Len(); i++ {
		for c := 0; c < net.Card(i)*net.ParentCard(i); c++ {
			l.eps[l.pairOff[i]+uint32(c)] = alloc.EpsA[i]
		}
		for c := 0; c < net.ParentCard(i); c++ {
			l.eps[l.parOff[i]+uint32(c)] = alloc.EpsB[i]
		}
		l.sections = append(l.sections,
			Section{Lo: l.pairOff[i], Hi: l.parOff[i], Eps: alloc.EpsA[i]},
			Section{Lo: l.parOff[i], Hi: l.parOff[i] + uint32(net.ParentCard(i)), Eps: alloc.EpsB[i]})
	}
	return l, nil
}

// Sections returns the contiguous equal-eps ranges covering
// [0, NumCounters()) in ascending id order. Read-only.
func (l *Layout) Sections() []Section { return l.sections }

// NumCounters returns the total number of counters.
func (l *Layout) NumCounters() uint32 { return l.total }

// StripeRange returns the contiguous counter-id range [lo, hi) owned by
// stripe index of count under striped coordinator federation. The ranges
// partition [0, NumCounters()) exactly: lo = total·index/count rounded down,
// so every id belongs to exactly one stripe and adjacent stripes differ in
// size by at most one id. Both sides of a striped run compute the range from
// the same regenerated layout, so stripe bounds never travel on the wire.
func (l *Layout) StripeRange(index, count uint32) (lo, hi uint32) {
	if count <= 1 {
		return 0, l.total
	}
	lo = uint32(uint64(l.total) * uint64(index) / uint64(count))
	hi = uint32(uint64(l.total) * uint64(index+1) / uint64(count))
	return lo, hi
}

// PairID returns the id of A_i(value, pidx).
func (l *Layout) PairID(i, value, pidx int) uint32 {
	return l.pairOff[i] + uint32(pidx*l.net.Card(i)+value)
}

// ParID returns the id of A_i(pidx).
func (l *Layout) ParID(i, pidx int) uint32 {
	return l.parOff[i] + uint32(pidx)
}

// Eps returns the error parameter of a counter.
func (l *Layout) Eps(id uint32) float64 { return l.eps[id] }

// reportProbLocal is the coordinator-free report probability: a site whose
// local count is n estimates the global count as k·n (uniform routing) and
// reports with p = min(1, √k/(ε'·k·n)). Exact counters (ε' = 0, the
// ExactMLE allocation) always report.
func reportProbLocal(k int, eps float64, localCount int64) float64 {
	return reportProbSqrtK(k, math.Sqrt(float64(k)), eps, localCount)
}

// reportProbSqrtK is reportProbLocal with the √k hoisted out, for the
// per-increment site path and the per-cell coordinator reads (same float
// operations, so hoisting does not change any report decision).
func reportProbSqrtK(k int, sqrtK, eps float64, localCount int64) float64 {
	if eps <= 0 {
		return 1
	}
	global := float64(k) * float64(localCount)
	if global <= 0 {
		return 1
	}
	p := sqrtK / (eps * global)
	if p > 1 {
		return 1
	}
	return p
}

// adjustment is the coordinator's trailing-gap correction for a site whose
// last reported local count is r: the expected number of unreported local
// increments is (1-p)/p at the report probability in force at count r.
func adjustment(k int, eps float64, r int64) float64 {
	return adjustmentSqrtK(k, math.Sqrt(float64(k)), eps, r)
}

// adjustmentSqrtK is adjustment with the √k hoisted out.
func adjustmentSqrtK(k int, sqrtK, eps float64, r int64) float64 {
	if r <= 0 {
		return 0
	}
	p := reportProbSqrtK(k, sqrtK, eps, r)
	return (1 - p) / p
}

// siteCounters is the flat site-side counter state of one stream processor:
// every local count in a single dense slice indexed by layout counter id,
// with the report-probability constants (√k, per-id ε') hoisted out of the
// per-increment path — the site-side mirror of the coordinator's flat
// counter banks.
type siteCounters struct {
	layout *Layout
	k      int
	sqrtK  float64
	counts []int64
}

func newSiteCounters(layout *Layout, k int) *siteCounters {
	return &siteCounters{
		layout: layout,
		k:      k,
		sqrtK:  math.Sqrt(float64(k)),
		counts: make([]int64, layout.NumCounters()),
	}
}

// inc records one local increment for the counter and decides whether the
// site reports it: always when the report probability is 1 (exact phase or
// exact counters), otherwise by a coin flip from rng — drawn only in the
// sampling regime, matching the historical draw order exactly.
func (s *siteCounters) inc(id uint32, rng *bn.RNG) (localCount int64, report bool) {
	s.counts[id]++
	n := s.counts[id]
	p := reportProbSqrtK(s.k, s.sqrtK, s.layout.Eps(id), n)
	if p >= 1 || rng.Float64() < p {
		return n, true
	}
	return n, false
}
