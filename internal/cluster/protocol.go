// Package cluster is the live implementation of the distributed monitoring
// system over real TCP connections (the paper runs the same architecture on
// an AWS EC2 cluster; here the sites and coordinator talk over loopback or
// any reachable network, see DESIGN.md §4).
//
// Architecture: one coordinator process listens; k site processes connect.
// Each site generates its share of the training stream locally (the stream
// is horizontally partitioned), runs the site-side half of the approximate
// counters, and sends counter updates. The coordinator maintains the
// tracked model and answers queries *at any time* — the paper's query
// model — not just after the stream ends.
//
// The coordinator is sharded the same way the in-process core.Tracker is:
// one reader goroutine per site connection batch-decodes frames and folds
// them into a reported-count matrix guarded by lock stripes (counter id c
// belongs to stripe c mod Config.Shards), each stripe carrying a version
// counter. The live query paths (Coordinator.QueryProb, EstimatedModel)
// are served from an immutable estimate snapshot revalidated against the
// stripe versions — repeated queries against a quiescent coordinator share
// one snapshot with no lock traffic, and a query racing ingestion rebuilds
// exactly the stripes that moved. With Shards ≤ 1 and batching off the
// coordinator reproduces the historical serial implementation bit for bit
// (pinned by TestSequentialClusterBitCompat's PR 3 HEAD goldens).
//
// The wire protocol is versioned by frame type. A version-1 site ships one
// fixed-width frameUpdates frame per event that triggered a report; a
// version-2 site (StartConfig.BatchEvents > 0) coalesces a batching window
// of report decisions into a local delta batch and ships one
// varint-compressed frameUpdates2 frame per window. Report decisions are
// made per increment by the same seeded site RNGs either way and counts
// are monotone, so batching leaves every final estimate bit-identical
// while sending a small fraction of the frames
// (TestBatchedSitesBitIdenticalFewerFrames); a report is delayed by at
// most one window, staleness of the same kind as the trailing gap the
// report probability already models. The coordinator decodes both formats
// and every decoder length-validates a frame against the layout before
// allocating (updatesPayloadCap, fuzzed by FuzzDecodeFrame).
//
// Two deliberate deviations from the in-process simulation
// (internal/counter) are documented here:
//
//  1. Round advancement is coordinator-free: a site estimates the global
//     count of a counter as k times its own local count (events are routed
//     uniformly, the paper's setup) and derives the report probability
//     p = min(1, √k/(ε'·k·n_local)) from it. This removes the
//     synchronization round-trips without changing the asymptotic message
//     cost; the trade-off is imprecision under skewed routing, measured by
//     TestSkewedRoutingImprecision: on ALARM with ε = 0.1, k = 8 and 40K
//     events, the worst relative error over well-populated counters was
//     ≈0.003 (0.03·ε) under even routing and ≈0.011 (0.11·ε) with 90% of
//     the stream routed to one hot site — roughly a 3× degradation, still
//     an order of magnitude inside the ε budget.
//  2. The paper's transmission optimization is applied: all counter updates
//     triggered by one event are merged into a single frame, and an event
//     that triggers no update sends nothing. Version-2 batching extends
//     the same idea across events within a window.
//
// # Fault tolerance: reconnect, resume, checkpoint
//
// The cluster survives the loss of any process. Protocol version 3 adds a
// resume handshake: instead of frameHello, a site that already holds run
// state opens its connection with frameResume (site id + events processed)
// and the coordinator acks with its run epoch, the site's recorded event
// count and completion flags. On resume the site replays its latest decided
// count for every counter as one frameUpdates2 frame before continuing the
// stream. The handshake is append-only over versions 1 and 2: old frames
// still decode, and a version-1 site can still join a batching-off
// coordinator with plain frameHello.
//
// Crash-safety rests on three invariants, asserted bit-exactly by the chaos
// suite (chaos_test.go) rather than only within the (ε, δ) envelope:
//
//  1. Site-local counts are monotone and the coordinator folds reports with
//     an idempotent max-merge — replayed, duplicated or stale frames can
//     never move a matrix cell past, or back from, its true value.
//  2. Site streams are deterministic (seeded generator, seeded report RNG),
//     and an event is marked consumed before any fallible network write —
//     so a restarted or resumed site re-derives exactly the counts it lost,
//     and a connection error can never re-draw a consumed sample.
//  3. Checkpoints are a consistent lower bound of the run: the DBCLUS01
//     file (checkpoint.go) is cadenced on received frames (deterministic,
//     not wall clock), written atomically (temp file + rename), and the
//     restored matrix is raised to the exact uninterrupted state by resume
//     replays. A coordinator killed at any frame therefore converges after
//     restore, and the estimates match the uninterrupted run bit for bit
//     (TestChaosCoordinatorKillRestartConverges, and
//     TestCheckpointGoldenBitCompat against the PR 3 HEAD goldens).
//
// Under site churn — every site killed twice mid-stream and restarted, the
// `churn` experiment — the maximum estimate divergence from the
// uninterrupted run is exactly 0 on every strategy, to set against the
// skewed-routing imprecision above: process failure costs retransmitted
// frames, never accuracy. Connection supervision is retry-with-backoff on
// the site side (Site.MaxResumes bounds consecutive no-progress resumes)
// and a reconnect grace window on the coordinator side
// (Config.ReconnectGrace): a run only fails once a site stays gone past the
// grace or stops making progress entirely.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types. The wire protocol is versioned by frame type: a version-1
// site sends fixed-width frameUpdates frames, a version-2 site coalesces a
// batching window into one varint-compressed frameUpdates2 frame. The
// coordinator decodes both, so old sites interoperate with a new
// coordinator; the StartConfig encoding likewise accepts the version-1
// length (see decodeStart).
const (
	// frameHello introduces a site: payload = site id (u32).
	frameHello byte = 1
	// frameStart carries the run configuration (coordinator → site).
	frameStart byte = 2
	// frameUpdates carries merged counter updates for one event
	// (site → coordinator): repeated (counterID u32, localCount i64).
	frameUpdates byte = 3
	// frameDone signals a site has exhausted its stream: payload = site id,
	// events processed (i64).
	frameDone byte = 4
	// frameStats is the coordinator's closing reply: payload = total frames,
	// total updates, total events (i64 each).
	frameStats byte = 5
	// frameUpdates2 carries a coalesced batching window (protocol version 2,
	// site → coordinator): uvarint entry count, then per entry the uvarint
	// counter-id delta (ids strictly ascending; the first delta is the id
	// itself) and the uvarint local count. Within a window only the latest
	// local count per counter survives — counts are monotone, so coalescing
	// loses nothing the trailing-gap adjustment does not already model.
	frameUpdates2 byte = 6
	// frameResume re-introduces a site whose connection dropped mid-run
	// (protocol version 3, site → coordinator): payload = site id (u32),
	// events processed so far (u64), flags (u8, reserved zero). Unlike
	// frameHello, a resume keeps the site's in-memory state: after the ack
	// the site replays its latest decided per-counter local counts in one
	// frameUpdates2 frame — safe because counts are monotone and the
	// coordinator's max-merge fold is idempotent — then continues its stream
	// from where it stopped.
	frameResume byte = 7
	// frameResumeAck answers a resume (coordinator → site): payload = run
	// epoch (u64, bumped every checkpoint restore), the coordinator's
	// recorded event count for the site (u64, nonzero only once the site's
	// Done was accepted), and flags (u8: resumeRunComplete, resumeSiteDone).
	// When resumeRunComplete is set the coordinator follows the ack with the
	// closing frameStats on the same connection, so a site that crashed
	// after the run finished still collects its stats.
	frameResumeAck byte = 8
	// frameStructStats carries a site's cumulative pairwise-MI sufficient
	// statistics for online structure learning (protocol version 4,
	// site → coordinator): uvarint site event count, then the frameUpdates2
	// entry encoding over StructLayout cell ids — uvarint entry count,
	// per-entry uvarint cell-id delta (strictly ascending) and uvarint
	// cumulative co-occurrence count. Counts are cumulative and monotone, so
	// the coordinator's max-merge fold absorbs replays and duplicates
	// exactly like counter updates; the frame is append-only over versions
	// 1-3 (a coordinator not running structure learning never requests it
	// and old coordinators never see it).
	frameStructStats byte = 9
	// frameRelayHello introduces an aggregation-tree relay to its parent
	// (protocol version 5, relay → coordinator or relay → relay): payload =
	// relay id (u32, diagnostic only). The parent replies with a frameStart
	// carrying the run's base configuration (Site and Events zero), from
	// which the relay derives the counter layout it folds over.
	frameRelayHello byte = 10
	// frameRelayJoin wraps one downstream site's control traffic traveling
	// up through a relay (relay → parent): payload = site id (u32), a join
	// kind byte (relayJoinHello, relayJoinResume, relayJoinReattach,
	// relayJoinDone, relayJoinDetach) and the kind's inner payload (empty,
	// a frameResume payload, or a frameDone payload). The parent handles
	// the wrapped frame exactly as it would on a direct site connection and
	// answers, when the kind warrants a reply, with frameRelayCtl.
	frameRelayJoin byte = 11
	// frameRelayCtl wraps coordinator → site control traffic traveling down
	// through a relay (parent → relay): payload = site id (u32), the inner
	// frame type (frameStart, frameResumeAck or frameStats) and the inner
	// frame's payload verbatim. The relay unwraps it and writes the inner
	// frame on the named site's downstream connection.
	frameRelayCtl byte = 12
	// frameRelayUpdates carries a relay's folded counter state upstream
	// (relay → parent): uvarint group count, then per group a uvarint site
	// id, a uvarint byte length, and that site's folded counter vector as a
	// frameUpdates2 payload. The relay folds its children's monotone
	// per-site vectors with the same idempotent max-merge the coordinator
	// applies, so folding mid-tier and coalescing many sites into one frame
	// cannot change any final estimate — it only divides the parent's
	// frame rate by the relay's branching factor.
	frameRelayUpdates byte = 13
	// frameRelayStruct is frameRelayUpdates for structure-learning
	// statistics: uvarint group count, then per group a uvarint site id, a
	// uvarint byte length, and that site's cumulative statistics as a
	// frameStructStats payload.
	frameRelayStruct byte = 14
)

// frameRelayJoin kinds.
const (
	// relayJoinHello: a site joined the relay with frameHello; inner payload
	// empty (the outer site id carries the identity). Reply: a wrapped
	// frameStart.
	relayJoinHello byte = 0
	// relayJoinResume: a site reconnected with frameResume; inner payload =
	// the frameResume payload. Reply: a wrapped frameResumeAck (plus a
	// wrapped frameStats when the run is already complete).
	relayJoinResume byte = 1
	// relayJoinReattach: the relay's upstream connection was re-established
	// and this already-admitted site is still attached downstream; inner
	// payload empty, no reply. Cancels the site's reconnect-grace timer.
	relayJoinReattach byte = 2
	// relayJoinDone: the site's stream is exhausted; inner payload = the
	// frameDone payload. The relay flushes its folded state upstream before
	// forwarding, so the coordinator's matrix reflects every report the
	// site decided before its Done is counted. No reply (the closing stats
	// are broadcast later).
	relayJoinDone byte = 3
	// relayJoinDetach: the site's downstream connection died; inner payload
	// empty, no reply. Arms the site's reconnect-grace timer at the
	// coordinator, exactly as a direct disconnect would.
	relayJoinDetach byte = 4
)

// frameResumeAck flag bits.
const (
	// resumeRunComplete: the whole run already finished; stats follow.
	resumeRunComplete byte = 1 << 0
	// resumeSiteDone: the coordinator has already accepted this site's Done
	// marker (the site need not re-stream, only wait for stats).
	resumeSiteDone byte = 1 << 1
)

// maxFrame bounds a frame payload; large networks send at most 2n update
// entries of 12 bytes per event.
const maxFrame = 1 << 22

// maxControlFrame bounds the control frames (hello, start, done, stats),
// none of which come close to 4 KB; connections start at this limit and the
// coordinator widens it to the layout-derived update bound after the
// handshake (see updatesPayloadCap).
const maxControlFrame = 1 << 12

// updatesPayloadCap is the largest well-formed update payload for a layout
// of n counters, used to validate a frame header against the layout before
// the payload is allocated (the frame-IO mirror of LoadState's StateLen
// check). A version-1 frame merges the distinct counters one event touched
// (≤ n entries of 12 bytes); a version-2 frame coalesces a window to at
// most n entries of ≤ 15 varint bytes plus the count header.
func updatesPayloadCap(numCounters uint32) uint32 {
	cap := uint64(binary.MaxVarintLen32) + uint64(numCounters)*(binary.MaxVarintLen32+binary.MaxVarintLen64)
	if cap > maxFrame {
		return maxFrame
	}
	if cap < maxControlFrame {
		return maxControlFrame // keep room for the done frame
	}
	return uint32(cap)
}

// structPayloadCap is the largest well-formed frameStructStats payload for a
// structure layout of numCells pair cells — the struct-stats mirror of
// updatesPayloadCap, used to widen a connection's read limit when structure
// learning is on.
func structPayloadCap(numCells uint32) uint32 {
	cap := uint64(binary.MaxVarintLen64) + uint64(binary.MaxVarintLen32) +
		uint64(numCells)*(binary.MaxVarintLen32+binary.MaxVarintLen64)
	if cap > maxFrame {
		return maxFrame
	}
	if cap < maxControlFrame {
		return maxControlFrame
	}
	return uint32(cap)
}

// Update is one counter update entry inside a frameUpdates frame.
type Update struct {
	// Counter is the global counter id (see Layout).
	Counter uint32
	// LocalCount is the site's current local count for the counter.
	LocalCount int64
}

// StartConfig is the run configuration shipped to every site.
type StartConfig struct {
	// NetName is a netgen registry name; both sides regenerate the network
	// deterministically instead of shipping the structure.
	NetName string
	// CPTSeed seeds ground-truth parameter generation.
	CPTSeed uint64
	// Strategy is the core.Strategy ordinal.
	Strategy uint8
	// Eps, Delta are the tracker budget.
	Eps, Delta float64
	// Sites is k.
	Sites uint32
	// Site is the receiver's site id in [0, k).
	Site uint32
	// Events is the number of events this site must generate.
	Events uint64
	// StreamSeed seeds this site's event stream.
	StreamSeed uint64
	// LatencyMicros is an artificial per-frame delay emulating WAN RTT.
	LatencyMicros uint32
	// BatchEvents is the site-side delta-batching cadence (protocol version
	// 2): the site coalesces report decisions into a local delta buffer and
	// ships one frameUpdates2 frame every BatchEvents events. 0 selects the
	// version-1 behavior — one frameUpdates frame per triggering event.
	BatchEvents uint32
	// StructBatchEvents is the online structure-learning cadence (protocol
	// version 4): the site accumulates pairwise co-occurrence counts over
	// all variable pairs and ships its cumulative statistics as one
	// frameStructStats frame every StructBatchEvents events. 0 disables
	// structure learning (no struct frames, no per-event pair accounting).
	StructBatchEvents uint32
	// DriftAtEvent, when DriftNetName is nonempty, is the absolute stream
	// position at which this site's generating model switches from the base
	// network to the drift network — the mid-stream structure-change
	// scenario. Absolute positions keep the switch deterministic across
	// reconnects and restarts.
	DriftAtEvent uint64
	// DriftCPTSeed seeds the drift model's ground-truth parameters.
	DriftCPTSeed uint64
	// DriftNetName names the post-drift generating network (netgen registry
	// name, regenerated deterministically on both sides like NetName). It
	// must describe the same variables (names and cardinalities) as NetName;
	// only the structure and parameters may differ. Empty = no drift.
	DriftNetName string
	// StripeIndex, StripeCount describe striped coordinator federation
	// (protocol version 5): the flat counter-id space is split into
	// StripeCount contiguous ranges (Layout.StripeRange) and the coordinator
	// sending this config owns stripe StripeIndex — it folds and estimates
	// only ids in its range and a site drops updates outside it before
	// framing. StripeCount = 0 (the default) means unstriped: the
	// coordinator owns the whole id space and the v5 tail is not emitted.
	StripeIndex, StripeCount uint32
}

// Stats is the coordinator's closing summary sent to each site and returned
// to the caller.
type Stats struct {
	// Frames is the number of network frames the coordinator received.
	Frames int64
	// Updates is the number of counter-update entries received (the paper's
	// per-counter message metric).
	Updates int64
	// Events is the total number of events processed across sites.
	Events int64
}

// conn wraps a net.Conn (or any ReadWriter) with buffered, length-prefixed
// frame IO. Frames: type byte, u32 payload length, payload. The read side
// enforces a payload limit that starts at the control-frame bound and is
// widened by the owner once the expected frame sizes are known (the
// coordinator raises it to the layout-derived update cap after the
// handshake), so a corrupt or hostile length header is rejected before any
// payload is allocated.
type conn struct {
	r *bufio.Reader
	w *bufio.Writer
	// maxPayload bounds accepted frame payloads on the read side.
	maxPayload uint32
}

func newConn(rw io.ReadWriter) *conn {
	return &conn{
		r:          bufio.NewReaderSize(rw, 1<<16),
		w:          bufio.NewWriterSize(rw, 1<<16),
		maxPayload: maxControlFrame,
	}
}

// setReadLimit installs the read-side payload bound (clamped to maxFrame).
func (c *conn) setReadLimit(n uint32) {
	if n > maxFrame {
		n = maxFrame
	}
	c.maxPayload = n
}

func (c *conn) writeFrame(t byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = t
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return nil
}

func (c *conn) flush() error { return c.w.Flush() }

func (c *conn) readFrame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > c.maxPayload {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, c.maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeStart serializes a StartConfig. The trailing fields are append-only
// version extensions: BatchEvents (version 2) is emitted only when batching
// is on, so a coordinator not using batching sends the version-1 length and
// old site binaries — whose decoders require that length exactly — still
// interoperate. (A batching coordinator genuinely needs version-2 sites.)
// The version-4 tail (StructBatchEvents, the drift fields) is likewise
// emitted only when structure learning or drift is configured, and always
// includes BatchEvents so the decoder's length switch stays unambiguous.
func encodeStart(cfg StartConfig) []byte {
	name := []byte(cfg.NetName)
	driftName := []byte(cfg.DriftNetName)
	buf := make([]byte, 0, 96+len(name)+len(driftName))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(uint32(len(name)))
	buf = append(buf, name...)
	put64(cfg.CPTSeed)
	buf = append(buf, cfg.Strategy)
	put64(math.Float64bits(cfg.Eps))
	put64(math.Float64bits(cfg.Delta))
	put32(cfg.Sites)
	put32(cfg.Site)
	put64(cfg.Events)
	put64(cfg.StreamSeed)
	put32(cfg.LatencyMicros)
	v5 := cfg.StripeCount != 0
	v4 := v5 || cfg.StructBatchEvents != 0 || cfg.DriftNetName != "" || cfg.DriftAtEvent != 0 || cfg.DriftCPTSeed != 0
	if cfg.BatchEvents != 0 || v4 {
		put32(cfg.BatchEvents)
	}
	if v4 {
		put32(cfg.StructBatchEvents)
		put64(cfg.DriftAtEvent)
		put64(cfg.DriftCPTSeed)
		put32(uint32(len(driftName)))
		buf = append(buf, driftName...)
	}
	if v5 {
		put32(cfg.StripeIndex)
		put32(cfg.StripeCount)
	}
	return buf
}

// decodeStart parses a StartConfig payload. Version-1 frames (without the
// trailing BatchEvents field) are still accepted and decode with
// BatchEvents = 0, so an old coordinator can drive a new site; version-2
// frames decode with the structure-learning and drift fields zero; the
// version-4 tail is length-validated exactly (fixed fields plus the drift
// name it declares).
func decodeStart(b []byte) (StartConfig, error) {
	var cfg StartConfig
	if len(b) < 4 {
		return cfg, fmt.Errorf("cluster: short start frame")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < uint64(n) {
		return cfg, fmt.Errorf("cluster: start frame name truncated")
	}
	cfg.NetName = string(b[:n])
	b = b[n:]
	const restV1 = 8 + 1 + 8 + 8 + 4 + 4 + 8 + 8 + 4
	const restV2 = restV1 + 4
	const restV4 = restV2 + 4 + 8 + 8 + 4 // + drift name bytes
	v2, v4 := false, false
	switch {
	case len(b) == restV1:
	case len(b) == restV2:
		v2 = true
	case len(b) >= restV4:
		v2, v4 = true, true
	default:
		return cfg, fmt.Errorf("cluster: start frame length %d, want %d, %d or >= %d", len(b), restV1, restV2, restV4)
	}
	cfg.CPTSeed = binary.LittleEndian.Uint64(b)
	b = b[8:]
	cfg.Strategy = b[0]
	b = b[1:]
	cfg.Eps = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	cfg.Delta = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	cfg.Sites = binary.LittleEndian.Uint32(b)
	b = b[4:]
	cfg.Site = binary.LittleEndian.Uint32(b)
	b = b[4:]
	cfg.Events = binary.LittleEndian.Uint64(b)
	b = b[8:]
	cfg.StreamSeed = binary.LittleEndian.Uint64(b)
	b = b[8:]
	cfg.LatencyMicros = binary.LittleEndian.Uint32(b)
	b = b[4:]
	if v2 {
		cfg.BatchEvents = binary.LittleEndian.Uint32(b)
		b = b[4:]
	}
	if v4 {
		cfg.StructBatchEvents = binary.LittleEndian.Uint32(b)
		b = b[4:]
		cfg.DriftAtEvent = binary.LittleEndian.Uint64(b)
		b = b[8:]
		cfg.DriftCPTSeed = binary.LittleEndian.Uint64(b)
		b = b[8:]
		dn := binary.LittleEndian.Uint32(b)
		b = b[4:]
		// The version-5 stripe tail (StripeIndex, StripeCount) follows the
		// drift name and is emitted only when striping is configured, so the
		// length switch stays exact: drift-name bytes alone is version 4,
		// drift-name bytes + 8 is version 5.
		switch uint64(len(b)) {
		case uint64(dn):
		case uint64(dn) + 8:
			cfg.DriftNetName = string(b[:dn])
			b = b[dn:]
			cfg.StripeIndex = binary.LittleEndian.Uint32(b)
			cfg.StripeCount = binary.LittleEndian.Uint32(b[4:])
			return cfg, nil
		default:
			return cfg, fmt.Errorf("cluster: start frame drift name declares %d bytes, has %d", dn, len(b))
		}
		cfg.DriftNetName = string(b)
	}
	return cfg, nil
}

// encodeUpdates serializes merged counter updates into dst (reused).
func encodeUpdates(dst []byte, ups []Update) []byte {
	dst = dst[:0]
	var tmp [12]byte
	for _, u := range ups {
		binary.LittleEndian.PutUint32(tmp[:4], u.Counter)
		binary.LittleEndian.PutUint64(tmp[4:], uint64(u.LocalCount))
		dst = append(dst, tmp[:]...)
	}
	return dst
}

// decodeUpdates parses a frameUpdates payload into dst (reused).
func decodeUpdates(dst []Update, b []byte) ([]Update, error) {
	if len(b)%12 != 0 {
		return nil, fmt.Errorf("cluster: updates frame length %d not a multiple of 12", len(b))
	}
	dst = dst[:0]
	for len(b) > 0 {
		dst = append(dst, Update{
			Counter:    binary.LittleEndian.Uint32(b[:4]),
			LocalCount: int64(binary.LittleEndian.Uint64(b[4:12])),
		})
		b = b[12:]
	}
	return dst, nil
}

// encodeUpdates2 serializes a coalesced batching window into dst (reused).
// ups must be sorted by strictly ascending counter id and every LocalCount
// must be non-negative — the site-side delta batch guarantees both. Ids are
// delta-encoded and everything is uvarint, so a window frame costs a few
// bytes per touched counter instead of 12.
func encodeUpdates2(dst []byte, ups []Update) []byte {
	dst = dst[:0]
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(ups)))]...)
	prev := uint32(0)
	for _, u := range ups {
		delta := u.Counter - prev // for the first entry prev is 0: delta is the id itself
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(delta))]...)
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(u.LocalCount))]...)
		prev = u.Counter
	}
	return dst
}

// decodeUpdates2 parses a frameUpdates2 payload into dst (reused),
// validating before any allocation that the declared entry count fits both
// the layout (maxCounters — a coalesced window cannot hold more entries than
// there are counters) and the payload length (every entry is at least two
// bytes). Ids must be strictly ascending and within the layout; counts must
// be non-negative.
func decodeUpdates2(dst []Update, b []byte, maxCounters uint32) ([]Update, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, fmt.Errorf("cluster: updates2 frame missing entry count")
	}
	b = b[used:]
	if n > uint64(maxCounters) {
		return nil, fmt.Errorf("cluster: updates2 frame declares %d entries, layout has %d counters", n, maxCounters)
	}
	if n*2 > uint64(len(b)) { // every entry is ≥ 2 varint bytes; pre-allocation sanity bound
		return nil, fmt.Errorf("cluster: updates2 frame declares %d entries in %d bytes", n, len(b))
	}
	if cap(dst) < int(n) {
		dst = make([]Update, 0, n)
	} else {
		dst = dst[:0]
	}
	id := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("cluster: updates2 frame truncated at entry %d", i)
		}
		b = b[used:]
		cnt, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("cluster: updates2 frame truncated at entry %d count", i)
		}
		b = b[used:]
		if i > 0 && delta == 0 {
			return nil, fmt.Errorf("cluster: updates2 frame ids not strictly ascending at entry %d", i)
		}
		// Bound the delta before adding: id < maxCounters and delta ≤
		// maxCounters cannot wrap uint64, so the range check below is
		// sound. An unbounded delta could wrap the accumulator back into
		// range and smuggle a non-ascending id past both checks.
		if delta > uint64(maxCounters) {
			return nil, fmt.Errorf("cluster: updates2 frame id delta %d out of range at entry %d", delta, i)
		}
		id += delta
		if id >= uint64(maxCounters) {
			return nil, fmt.Errorf("cluster: updates2 frame counter %d out of range [0,%d)", id, maxCounters)
		}
		if cnt > math.MaxInt64 {
			return nil, fmt.Errorf("cluster: updates2 frame count %d overflows", cnt)
		}
		dst = append(dst, Update{Counter: uint32(id), LocalCount: int64(cnt)})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: updates2 frame has %d trailing bytes", len(b))
	}
	return dst, nil
}

// encodeStructStats serializes a site's cumulative structure statistics into
// dst (reused): uvarint siteEvents (the site's stream position), then the
// frameUpdates2 entry encoding over StructLayout cell ids. ups must be
// sorted by strictly ascending cell id with non-negative counts — the
// site-side accumulation guarantees both.
func encodeStructStats(dst []byte, siteEvents uint64, ups []Update) []byte {
	dst = dst[:0]
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], siteEvents)]...)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(ups)))]...)
	prev := uint32(0)
	for _, u := range ups {
		delta := u.Counter - prev // for the first entry prev is 0: delta is the id itself
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(delta))]...)
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(u.LocalCount))]...)
		prev = u.Counter
	}
	return dst
}

// decodeStructStats parses a frameStructStats payload into dst (reused),
// returning the site's event count and its cumulative cell counts. The
// entry section shares decodeUpdates2's validation: the declared entry
// count is length-checked against maxCells and the payload before any
// allocation, ids must be strictly ascending within the structure layout,
// and trailing bytes are rejected.
func decodeStructStats(dst []Update, b []byte, maxCells uint32) (uint64, []Update, error) {
	siteEvents, used := binary.Uvarint(b)
	if used <= 0 {
		return 0, nil, fmt.Errorf("cluster: struct-stats frame missing event count")
	}
	ups, err := decodeUpdates2(dst, b[used:], maxCells)
	if err != nil {
		return 0, nil, err
	}
	return siteEvents, ups, nil
}

func encodeDone(site uint32, events int64) []byte {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[:4], site)
	binary.LittleEndian.PutUint64(b[4:], uint64(events))
	return b[:]
}

func decodeDone(b []byte) (uint32, int64, error) {
	if len(b) != 12 {
		return 0, 0, fmt.Errorf("cluster: done frame length %d, want 12", len(b))
	}
	return binary.LittleEndian.Uint32(b[:4]), int64(binary.LittleEndian.Uint64(b[4:])), nil
}

func encodeStats(s Stats) []byte {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(s.Frames))
	binary.LittleEndian.PutUint64(b[8:16], uint64(s.Updates))
	binary.LittleEndian.PutUint64(b[16:], uint64(s.Events))
	return b[:]
}

func decodeStats(b []byte) (Stats, error) {
	if len(b) != 24 {
		return Stats{}, fmt.Errorf("cluster: stats frame length %d, want 24", len(b))
	}
	return Stats{
		Frames:  int64(binary.LittleEndian.Uint64(b[:8])),
		Updates: int64(binary.LittleEndian.Uint64(b[8:16])),
		Events:  int64(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

// resumeReq is a decoded frameResume payload.
type resumeReq struct {
	// Site is the resuming site's id.
	Site uint32
	// Events is the number of stream events the site has processed so far.
	Events uint64
	// Flags is reserved (zero); a future extension can use it without a new
	// frame type because the decoder ignores unknown bits.
	Flags byte
}

func encodeResume(r resumeReq) []byte {
	var b [13]byte
	binary.LittleEndian.PutUint32(b[:4], r.Site)
	binary.LittleEndian.PutUint64(b[4:12], r.Events)
	b[12] = r.Flags
	return b[:]
}

func decodeResume(b []byte) (resumeReq, error) {
	if len(b) != 13 {
		return resumeReq{}, fmt.Errorf("cluster: resume frame length %d, want 13", len(b))
	}
	return resumeReq{
		Site:   binary.LittleEndian.Uint32(b[:4]),
		Events: binary.LittleEndian.Uint64(b[4:12]),
		Flags:  b[12],
	}, nil
}

// resumeAck is a decoded frameResumeAck payload.
type resumeAck struct {
	// Epoch is the coordinator's run epoch: 0 for the original process,
	// bumped by every checkpoint restore, so a resuming site can tell a
	// surviving coordinator from a restored one.
	Epoch uint64
	// SiteEvents is the event count the coordinator has recorded for the
	// site (nonzero only once its Done marker was accepted).
	SiteEvents uint64
	// Flags carries resumeRunComplete and resumeSiteDone.
	Flags byte
}

func encodeResumeAck(a resumeAck) []byte {
	var b [17]byte
	binary.LittleEndian.PutUint64(b[:8], a.Epoch)
	binary.LittleEndian.PutUint64(b[8:16], a.SiteEvents)
	b[16] = a.Flags
	return b[:]
}

func decodeResumeAck(b []byte) (resumeAck, error) {
	if len(b) != 17 {
		return resumeAck{}, fmt.Errorf("cluster: resume-ack frame length %d, want 17", len(b))
	}
	return resumeAck{
		Epoch:      binary.LittleEndian.Uint64(b[:8]),
		SiteEvents: binary.LittleEndian.Uint64(b[8:16]),
		Flags:      b[16],
	}, nil
}

func encodeHello(site uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], site)
	return b[:]
}

func decodeHello(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("cluster: hello frame length %d, want 4", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// encodeRelayWrapped serializes the shared shape of frameRelayJoin and
// frameRelayCtl: site id (u32), a kind byte (join kind going up, inner frame
// type going down) and the inner payload verbatim.
func encodeRelayWrapped(site uint32, kind byte, inner []byte) []byte {
	b := make([]byte, 5+len(inner))
	binary.LittleEndian.PutUint32(b[:4], site)
	b[4] = kind
	copy(b[5:], inner)
	return b
}

// decodeRelayWrapped parses a frameRelayJoin or frameRelayCtl payload. The
// returned inner slice aliases b.
func decodeRelayWrapped(b []byte) (site uint32, kind byte, inner []byte, err error) {
	if len(b) < 5 {
		return 0, 0, nil, fmt.Errorf("cluster: relay wrapped frame length %d, want >= 5", len(b))
	}
	return binary.LittleEndian.Uint32(b[:4]), b[4], b[5:], nil
}

// relayGroup is one site's folded payload inside a frameRelayUpdates or
// frameRelayStruct frame.
type relayGroup struct {
	// Site is the downstream site the payload belongs to. Relays fold but
	// never mix sites: the trailing-gap adjustment the coordinator applies is
	// nonlinear per site, so summing child counts across sites would change
	// estimates — per-site vectors travel intact through every tier.
	Site uint32
	// Payload is the site's folded state as a frameUpdates2 or
	// frameStructStats payload.
	Payload []byte
}

// encodeRelayGroups serializes grouped per-site payloads into dst (reused):
// uvarint group count, then per group uvarint site id, uvarint payload
// length, payload bytes.
func encodeRelayGroups(dst []byte, groups []relayGroup) []byte {
	dst = dst[:0]
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(groups)))]...)
	for _, g := range groups {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(g.Site))]...)
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(g.Payload)))]...)
		dst = append(dst, g.Payload...)
	}
	return dst
}

// decodeRelayGroups parses a frameRelayUpdates or frameRelayStruct payload
// into dst (reused), validating before any allocation that the declared
// group count fits the site count (a relay ships at most one group per
// downstream site) and that every declared payload length fits both the
// remaining bytes and the inner payload cap. Group payloads alias b; the
// inner payloads are validated by their own decoders when folded.
func decodeRelayGroups(dst []relayGroup, b []byte, maxSites, innerCap uint32) ([]relayGroup, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, fmt.Errorf("cluster: relay frame missing group count")
	}
	b = b[used:]
	if n > uint64(maxSites) {
		return nil, fmt.Errorf("cluster: relay frame declares %d groups, run has %d sites", n, maxSites)
	}
	if n*2 > uint64(len(b)) { // every group is ≥ 2 varint bytes; pre-allocation sanity bound
		return nil, fmt.Errorf("cluster: relay frame declares %d groups in %d bytes", n, len(b))
	}
	if cap(dst) < int(n) {
		dst = make([]relayGroup, 0, n)
	} else {
		dst = dst[:0]
	}
	for i := uint64(0); i < n; i++ {
		site, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("cluster: relay frame truncated at group %d", i)
		}
		b = b[used:]
		if site >= uint64(maxSites) {
			return nil, fmt.Errorf("cluster: relay frame site %d out of range [0,%d)", site, maxSites)
		}
		plen, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("cluster: relay frame truncated at group %d length", i)
		}
		b = b[used:]
		if plen > uint64(innerCap) {
			return nil, fmt.Errorf("cluster: relay frame group %d payload %d exceeds cap %d", i, plen, innerCap)
		}
		if plen > uint64(len(b)) {
			return nil, fmt.Errorf("cluster: relay frame group %d payload declares %d bytes, has %d", i, plen, len(b))
		}
		dst = append(dst, relayGroup{Site: uint32(site), Payload: b[:plen]})
		b = b[plen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: relay frame has %d trailing bytes", len(b))
	}
	return dst, nil
}

// relayPayloadCap is the largest well-formed grouped relay payload for a run
// of numSites sites whose inner payloads are bounded by innerCap — the
// grouped mirror of updatesPayloadCap, used to widen a relay-carrying
// connection's read limit.
func relayPayloadCap(numSites, innerCap uint32) uint32 {
	cap := uint64(binary.MaxVarintLen32) +
		uint64(numSites)*(2*binary.MaxVarintLen32+uint64(innerCap))
	if cap > maxFrame {
		return maxFrame
	}
	if cap < maxControlFrame {
		return maxControlFrame
	}
	return uint32(cap)
}
