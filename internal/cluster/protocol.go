// Package cluster is the live implementation of the distributed monitoring
// system over real TCP connections (the paper runs the same architecture on
// an AWS EC2 cluster; here the sites and coordinator talk over loopback or
// any reachable network, see DESIGN.md §4).
//
// Architecture: one coordinator process listens; k site processes connect.
// Each site generates its share of the training stream locally (the stream
// is horizontally partitioned), runs the site-side half of the approximate
// counters, and sends counter updates. The coordinator maintains the
// tracked model and answers queries.
//
// Two deliberate deviations from the in-process simulation
// (internal/counter) are documented here:
//
//  1. Round advancement is coordinator-free: a site estimates the global
//     count of a counter as k times its own local count (events are routed
//     uniformly, the paper's setup) and derives the report probability
//     p = min(1, √k/(ε'·k·n_local)) from it. This removes the
//     synchronization round-trips without changing the asymptotic message
//     cost; the trade-off is documented imprecision under skewed routing.
//  2. The paper's transmission optimization is applied: all counter updates
//     triggered by one event are merged into a single frame, and an event
//     that triggers no update sends nothing.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types.
const (
	// frameHello introduces a site: payload = site id (u32).
	frameHello byte = 1
	// frameStart carries the run configuration (coordinator → site).
	frameStart byte = 2
	// frameUpdates carries merged counter updates for one event
	// (site → coordinator): repeated (counterID u32, localCount i64).
	frameUpdates byte = 3
	// frameDone signals a site has exhausted its stream: payload = site id,
	// events processed (i64).
	frameDone byte = 4
	// frameStats is the coordinator's closing reply: payload = total frames,
	// total updates, total events (i64 each).
	frameStats byte = 5
)

// maxFrame bounds a frame payload; large networks send at most 2n update
// entries of 12 bytes per event.
const maxFrame = 1 << 22

// Update is one counter update entry inside a frameUpdates frame.
type Update struct {
	// Counter is the global counter id (see Layout).
	Counter uint32
	// LocalCount is the site's current local count for the counter.
	LocalCount int64
}

// StartConfig is the run configuration shipped to every site.
type StartConfig struct {
	// NetName is a netgen registry name; both sides regenerate the network
	// deterministically instead of shipping the structure.
	NetName string
	// CPTSeed seeds ground-truth parameter generation.
	CPTSeed uint64
	// Strategy is the core.Strategy ordinal.
	Strategy uint8
	// Eps, Delta are the tracker budget.
	Eps, Delta float64
	// Sites is k.
	Sites uint32
	// Site is the receiver's site id in [0, k).
	Site uint32
	// Events is the number of events this site must generate.
	Events uint64
	// StreamSeed seeds this site's event stream.
	StreamSeed uint64
	// LatencyMicros is an artificial per-frame delay emulating WAN RTT.
	LatencyMicros uint32
}

// Stats is the coordinator's closing summary sent to each site and returned
// to the caller.
type Stats struct {
	// Frames is the number of network frames the coordinator received.
	Frames int64
	// Updates is the number of counter-update entries received (the paper's
	// per-counter message metric).
	Updates int64
	// Events is the total number of events processed across sites.
	Events int64
}

// conn wraps a net.Conn (or any ReadWriter) with buffered, length-prefixed
// frame IO. Frames: type byte, u32 payload length, payload.
type conn struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newConn(rw io.ReadWriter) *conn {
	return &conn{r: bufio.NewReaderSize(rw, 1<<16), w: bufio.NewWriterSize(rw, 1<<16)}
}

func (c *conn) writeFrame(t byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = t
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return nil
}

func (c *conn) flush() error { return c.w.Flush() }

func (c *conn) readFrame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeStart serializes a StartConfig.
func encodeStart(cfg StartConfig) []byte {
	name := []byte(cfg.NetName)
	buf := make([]byte, 0, 64+len(name))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(uint32(len(name)))
	buf = append(buf, name...)
	put64(cfg.CPTSeed)
	buf = append(buf, cfg.Strategy)
	put64(math.Float64bits(cfg.Eps))
	put64(math.Float64bits(cfg.Delta))
	put32(cfg.Sites)
	put32(cfg.Site)
	put64(cfg.Events)
	put64(cfg.StreamSeed)
	put32(cfg.LatencyMicros)
	return buf
}

// decodeStart parses a StartConfig payload.
func decodeStart(b []byte) (StartConfig, error) {
	var cfg StartConfig
	if len(b) < 4 {
		return cfg, fmt.Errorf("cluster: short start frame")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return cfg, fmt.Errorf("cluster: start frame name truncated")
	}
	cfg.NetName = string(b[:n])
	b = b[n:]
	const rest = 8 + 1 + 8 + 8 + 4 + 4 + 8 + 8 + 4
	if len(b) != rest {
		return cfg, fmt.Errorf("cluster: start frame length %d, want %d", len(b), rest)
	}
	cfg.CPTSeed = binary.LittleEndian.Uint64(b)
	b = b[8:]
	cfg.Strategy = b[0]
	b = b[1:]
	cfg.Eps = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	cfg.Delta = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	cfg.Sites = binary.LittleEndian.Uint32(b)
	b = b[4:]
	cfg.Site = binary.LittleEndian.Uint32(b)
	b = b[4:]
	cfg.Events = binary.LittleEndian.Uint64(b)
	b = b[8:]
	cfg.StreamSeed = binary.LittleEndian.Uint64(b)
	b = b[8:]
	cfg.LatencyMicros = binary.LittleEndian.Uint32(b)
	return cfg, nil
}

// encodeUpdates serializes merged counter updates into dst (reused).
func encodeUpdates(dst []byte, ups []Update) []byte {
	dst = dst[:0]
	var tmp [12]byte
	for _, u := range ups {
		binary.LittleEndian.PutUint32(tmp[:4], u.Counter)
		binary.LittleEndian.PutUint64(tmp[4:], uint64(u.LocalCount))
		dst = append(dst, tmp[:]...)
	}
	return dst
}

// decodeUpdates parses a frameUpdates payload into dst (reused).
func decodeUpdates(dst []Update, b []byte) ([]Update, error) {
	if len(b)%12 != 0 {
		return nil, fmt.Errorf("cluster: updates frame length %d not a multiple of 12", len(b))
	}
	dst = dst[:0]
	for len(b) > 0 {
		dst = append(dst, Update{
			Counter:    binary.LittleEndian.Uint32(b[:4]),
			LocalCount: int64(binary.LittleEndian.Uint64(b[4:12])),
		})
		b = b[12:]
	}
	return dst, nil
}

func encodeDone(site uint32, events int64) []byte {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[:4], site)
	binary.LittleEndian.PutUint64(b[4:], uint64(events))
	return b[:]
}

func decodeDone(b []byte) (uint32, int64, error) {
	if len(b) != 12 {
		return 0, 0, fmt.Errorf("cluster: done frame length %d, want 12", len(b))
	}
	return binary.LittleEndian.Uint32(b[:4]), int64(binary.LittleEndian.Uint64(b[4:])), nil
}

func encodeStats(s Stats) []byte {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(s.Frames))
	binary.LittleEndian.PutUint64(b[8:16], uint64(s.Updates))
	binary.LittleEndian.PutUint64(b[16:], uint64(s.Events))
	return b[:]
}

func decodeStats(b []byte) (Stats, error) {
	if len(b) != 24 {
		return Stats{}, fmt.Errorf("cluster: stats frame length %d, want 24", len(b))
	}
	return Stats{
		Frames:  int64(binary.LittleEndian.Uint64(b[:8])),
		Updates: int64(binary.LittleEndian.Uint64(b[8:16])),
		Events:  int64(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

func encodeHello(site uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], site)
	return b[:]
}

func decodeHello(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("cluster: hello frame length %d, want 4", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}
