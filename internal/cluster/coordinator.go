package cluster

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
)

// Config parameterizes a cluster run.
type Config struct {
	// NetName is the netgen registry name of the network to learn.
	NetName string
	// CPTSeed seeds the shared ground-truth parameters.
	CPTSeed uint64
	// Strategy selects the tracking algorithm.
	Strategy core.Strategy
	// Eps, Delta are the approximation budget.
	Eps, Delta float64
	// Sites is k.
	Sites int
	// Events is the total stream length, split across sites (evenly unless
	// HotSiteShare routes a skewed share to site 0).
	Events int
	// StreamSeed seeds the per-site event streams.
	StreamSeed uint64
	// LatencyMicros adds an artificial per-frame delay at sites, emulating
	// WAN round-trips on a loopback deployment.
	LatencyMicros uint32
	// Shards is the number of lock stripes guarding the coordinator's
	// reported-count matrix, mirroring core.Config.Shards: counter id c
	// belongs to stripe c mod Shards, each stripe carries a version counter,
	// and the live query paths (QueryProb, EstimatedModel) revalidate a
	// cached estimate snapshot against the stripe versions, rebuilding only
	// the stripes that moved. 0 and 1 both mean a single stripe — the
	// sequential mode that, with batching off, reproduces the historical
	// coordinator bit for bit.
	Shards int
	// SiteBatchEvents switches the sites to protocol version 2: each site
	// coalesces its report decisions into a local delta batch and ships one
	// varint-compressed frameUpdates2 frame every SiteBatchEvents events
	// instead of one frame per triggering event. 0 keeps the version-1
	// one-frame-per-event behavior. Batching delays a report by at most one
	// window, which the (ε, δ) envelope absorbs exactly like the
	// trailing-gap the report probability already models; see the package
	// comment for the measured effect.
	SiteBatchEvents int
	// HotSiteShare, when positive, routes that fraction of the stream to
	// site 0 and splits the rest evenly — the skewed-routing regime of
	// deviation #1 (sites estimate global counts as k·local, which a hot
	// site breaks). 0 routes evenly. See the package comment for the
	// measured imprecision under skew.
	HotSiteShare float64
	// LiveQueryMicros, when positive, makes RunLocal drive a mid-run query
	// mix against the coordinator: one QueryProb on a random assignment
	// every LiveQueryMicros microseconds (every eighth one an
	// EstimatedModel), for as long as the sites stream. The answers come
	// from the live snapshot path — the paper's query-at-any-time model.
	LiveQueryMicros uint32
	// ReconnectGrace bounds how long a mid-run site may stay disconnected
	// before the coordinator fails the run: a dropped connection starts a
	// grace timer, a reconnect (protocol-v3 resume or a fresh hello from a
	// restarted site process) cancels it. 0 selects the default
	// (DefaultReconnectGrace). Connection loss within the grace window is
	// invisible to the run result — the site replays its decided counts on
	// resume and the max-merge fold makes the replay idempotent.
	ReconnectGrace time.Duration
	// CheckpointPath, when set together with CheckpointEveryFrames, makes
	// the coordinator write a crash-consistent checkpoint of its run state
	// (reported-count matrix, stats, site membership — the DBCLUS01 format,
	// see WriteCheckpoint) to this file every CheckpointEveryFrames frames,
	// atomically via rename. A restarted coordinator restores it with
	// RestoreCheckpointFile and the sites re-resume against the restored
	// state.
	CheckpointPath string
	// CheckpointEveryFrames is the checkpoint cadence in received frames
	// (deterministic, unlike wall clock). 0 disables periodic checkpoints.
	CheckpointEveryFrames int64
	// StructBatchEvents, when positive, turns on online distributed
	// structure learning: every site additionally accumulates cumulative
	// pairwise co-occurrence counts over all variable pairs and ships them
	// as one frameStructStats frame every StructBatchEvents events (an
	// append-only protocol-v4 extension; coordinators and sites that predate
	// it interoperate with it off). The coordinator windows the aggregated
	// statistics, re-runs Chow–Liu on the windowed MI matrix at every
	// window-block rotation, and hot-swaps the published learned structure
	// when the tree changes (see AcquireLearnedSnapshot). 0 keeps structure
	// learning off — the default, and the only mode the bit-compat goldens
	// cover, since learning adds frames to the stream.
	StructBatchEvents int
	// StructWindowEvents is the sliding-window width (in events) for the
	// structure-learning MI statistics; stale co-occurrence mass ages out a
	// block at a time, which is what lets the learned tree track drift.
	// 0 defaults to a quarter of Events.
	StructWindowEvents int64
	// StructWindowBlocks is the window's block granularity (≥ 2); 0
	// defaults to 6.
	StructWindowBlocks int
	// DriftNetName, when set, makes every site switch its generating model
	// mid-stream: events before the site's drift point are drawn from
	// NetName's model, events after from DriftNetName's model (seeded by
	// DriftCPTSeed). The drift network must have the same variable names and
	// cardinalities as NetName — only structure and parameters change. The
	// switch point is a pure function of a site's absolute stream position,
	// so crash/resume replay reproduces the same stream.
	DriftNetName string
	// DriftAfter is the fraction of each site's stream after which the
	// drift model takes over; 0 defaults to 0.5 when DriftNetName is set.
	DriftAfter float64
	// DriftCPTSeed seeds the drift model's ground-truth parameters.
	DriftCPTSeed uint64
	// StripeIndex, StripeCount configure striped coordinator federation:
	// when StripeCount > 0 this coordinator owns only the contiguous
	// counter-id range Layout.StripeRange(StripeIndex, StripeCount) — it
	// folds, stores and estimates owned ids exclusively (the reported matrix
	// shrinks to the owned range) and rejects updates outside it. Sites of a
	// striped run (FederatedSite) route each window's updates to the owning
	// coordinator; queries scatter-gather across the stripes via Federation.
	// StripeCount = 0 (the default) means unstriped: the coordinator owns
	// the whole id space and behaves exactly as before.
	StripeIndex, StripeCount int
}

// DefaultReconnectGrace is the reconnect window applied when
// Config.ReconnectGrace is zero.
const DefaultReconnectGrace = 5 * time.Second

// ErrCoordinatorClosed is returned by Serve when Close is called before the
// run completes — the abrupt-stop path a chaos test's coordinator kill takes.
var ErrCoordinatorClosed = errors.New("cluster: coordinator closed")

func (c Config) validate() error {
	if c.NetName == "" {
		return fmt.Errorf("cluster: empty network name")
	}
	if c.Sites < 1 {
		return fmt.Errorf("cluster: sites = %d, want >= 1", c.Sites)
	}
	if c.Events < 1 {
		return fmt.Errorf("cluster: events = %d, want >= 1", c.Events)
	}
	if c.Strategy != core.ExactMLE && !(c.Eps > 0 && c.Eps < 1) {
		return fmt.Errorf("cluster: eps = %v, want 0 < eps < 1", c.Eps)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: shards = %d, want >= 0", c.Shards)
	}
	if c.SiteBatchEvents < 0 {
		return fmt.Errorf("cluster: site batch cadence = %d, want >= 0", c.SiteBatchEvents)
	}
	if c.HotSiteShare < 0 || c.HotSiteShare >= 1 {
		return fmt.Errorf("cluster: hot-site share = %v, want [0, 1)", c.HotSiteShare)
	}
	if c.ReconnectGrace < 0 {
		return fmt.Errorf("cluster: reconnect grace = %v, want >= 0", c.ReconnectGrace)
	}
	if c.CheckpointEveryFrames < 0 {
		return fmt.Errorf("cluster: checkpoint cadence = %d, want >= 0", c.CheckpointEveryFrames)
	}
	if c.CheckpointEveryFrames > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("cluster: checkpoint cadence set without a checkpoint path")
	}
	if c.StructBatchEvents < 0 {
		return fmt.Errorf("cluster: struct batch cadence = %d, want >= 0", c.StructBatchEvents)
	}
	if c.StructWindowEvents < 0 {
		return fmt.Errorf("cluster: struct window = %d events, want >= 0", c.StructWindowEvents)
	}
	if c.StructWindowBlocks < 0 {
		return fmt.Errorf("cluster: struct window blocks = %d, want >= 0", c.StructWindowBlocks)
	}
	if c.DriftAfter < 0 || c.DriftAfter >= 1 {
		return fmt.Errorf("cluster: drift-after fraction = %v, want [0, 1)", c.DriftAfter)
	}
	if c.DriftNetName == "" && (c.DriftAfter != 0 || c.DriftCPTSeed != 0) {
		return fmt.Errorf("cluster: drift parameters set without a drift network name")
	}
	if c.StripeCount < 0 || c.StripeIndex < 0 {
		return fmt.Errorf("cluster: stripe %d/%d, want non-negative", c.StripeIndex, c.StripeCount)
	}
	if c.StripeCount == 0 && c.StripeIndex != 0 {
		return fmt.Errorf("cluster: stripe index %d set without a stripe count", c.StripeIndex)
	}
	if c.StripeCount > 0 {
		if c.StripeIndex >= c.StripeCount {
			return fmt.Errorf("cluster: stripe index %d out of range [0, %d)", c.StripeIndex, c.StripeCount)
		}
		if c.StructBatchEvents > 0 {
			// The structure-learning statistics live in their own cell-id
			// space and feed a single Chow-Liu fold; splitting them across
			// stripes has no owner for the learned tree.
			return fmt.Errorf("cluster: structure learning and striped federation are mutually exclusive")
		}
	}
	return nil
}

// structWindow returns the effective structure-learning window parameters.
func (c Config) structWindow() (events int64, blocks int) {
	events, blocks = c.StructWindowEvents, c.StructWindowBlocks
	if blocks == 0 {
		blocks = 6
	}
	if events == 0 {
		events = int64(c.Events) / 4
	}
	if events < int64(blocks) {
		events = int64(blocks)
	}
	return events, blocks
}

// grace returns the effective reconnect window.
func (c Config) grace() time.Duration {
	if c.ReconnectGrace > 0 {
		return c.ReconnectGrace
	}
	return DefaultReconnectGrace
}

// eventsFor returns the number of stream events site id generates. With
// HotSiteShare = 0 the stream splits as evenly as possible; otherwise site 0
// takes ⌈share·Events⌉ and the rest splits evenly across the other sites.
func (c Config) eventsFor(id uint32) int {
	k := c.Sites
	if c.HotSiteShare > 0 && k > 1 {
		hot := int(math.Ceil(c.HotSiteShare * float64(c.Events)))
		if hot > c.Events {
			hot = c.Events
		}
		if id == 0 {
			return hot
		}
		rest := c.Events - hot
		per, rem := rest/(k-1), rest%(k-1)
		ev := per
		if int(id-1) < rem {
			ev++
		}
		return ev
	}
	per, rem := c.Events/k, c.Events%k
	ev := per
	if int(id) < rem {
		ev++
	}
	return ev
}

// Result summarizes a completed cluster run.
type Result struct {
	Stats Stats
	// Runtime is the wall-clock time from the first to the last frame
	// received by the coordinator (the paper's runtime metric).
	Runtime time.Duration
	// Throughput is events per second over Runtime.
	Throughput float64
	// LiveQueries is the number of mid-run queries RunLocal's query mix
	// issued against the coordinator while the sites streamed (0 unless
	// Config.LiveQueryMicros is set).
	LiveQueries int64
}

// coStripe is one lock stripe of the coordinator's reported-count matrix:
// counter id c belongs to stripe c mod len(stripes). version counts
// mutations (bumped under mu once per applied frame batch) and is read with
// atomic loads by the snapshot validator.
type coStripe struct {
	mu      sync.Mutex
	version atomic.Uint64
}

// estSnapshot is one immutable materialization of every counter's estimate,
// validated against the stripe versions exactly like core.Tracker's model
// snapshots: a query reuses the cached snapshot while every stripe version
// still matches and rebuilds only the stripes that moved.
type estSnapshot struct {
	// versions[s] is stripes[s].version at the time stripe s's estimates
	// were computed (or inherited from the previous snapshot).
	versions []uint64
	// est[c] is counter c's estimate: Σ_sites reported + trailing-gap
	// adjustment.
	est []float64
	// model caches the normalized bn.Model built from est (EstimatedModel),
	// populated lazily at most once per snapshot.
	model atomic.Pointer[bn.Model]
	// version is the sum of the per-stripe versions — monotone
	// non-decreasing across snapshots (every accepted update bumps one
	// stripe version) — and builtAt is when the estimates were computed.
	// Surfaced by the serving layer (Snapshot.Version/BuiltAt).
	version uint64
	builtAt time.Time
}

// siteSlot is the coordinator's supervision record for one site id: the
// current connection (nil while the site is disconnected), a generation
// counter so a stale reader or grace timer can tell it has been superseded
// by a reconnect, and the site's completion state. Guarded by Coordinator.mu
// except where noted.
type siteSlot struct {
	// raw/c is the live direct connection, nil/nil while disconnected or
	// routed through a relay.
	raw net.Conn
	c   *conn
	// via is the relay connection the site is routed through (nil for a
	// direct connection): control replies travel down it wrapped in
	// frameRelayCtl and its death detaches every site it carried.
	via *relayLink
	// gen is bumped on every (re)connect; readers and grace timers capture
	// it and stand down when the slot has moved on.
	gen uint64
	// done records that the site's Done marker was accepted (exactly once —
	// a replayed Done after a resume is deduplicated here).
	done bool
	// events is the site's reported event count, recorded at Done.
	events int64
	// wmu serializes writers to the current connection (handshake replies
	// and the closing stats frame can race a reconnect).
	wmu sync.Mutex
}

// Coordinator is the query-answering hub of the monitoring system. Unlike
// the historical implementation, which materialized estimates once after
// Serve returned, queries are valid at any time — during a live run they are
// served from a version-validated snapshot of the striped reported-count
// matrix, the paper's query-at-any-time model.
//
// The connection layer is supervised and elastic: sites may connect at any
// time after Serve starts (a late join simply starts streaming later), a
// dropped connection does not fail the run — the site has Config.grace() to
// reconnect with a protocol-v3 resume (or a fresh hello after a process
// restart), replaying its decided counts into the idempotent max-merge fold
// — and a coordinator killed mid-run restarts from its last periodic
// checkpoint (RestoreCheckpointFile) with the sites re-resuming against the
// restored state.
type Coordinator struct {
	cfg    Config
	net    *bn.Network
	layout *Layout
	ln     net.Listener
	sqrtK  float64

	// ownLo, ownHi bound the counter-id range this coordinator owns:
	// [0, NumCounters()) unstriped, Layout.StripeRange(StripeIndex,
	// StripeCount) under striped federation. Reported rows are compact —
	// indexed by id − ownLo — so a stripe's matrix memory scales with its
	// share of the id space, not the whole layout.
	ownLo, ownHi uint32

	// stripes guard reported by counter id (id mod len(stripes)).
	stripes []coStripe
	// reported[site][counter-ownLo] is the site's last reported local count
	// for an owned counter. Writes take the counter's stripe lock; per-site
	// rows mean two sites never write the same cell, but queries read across
	// all sites.
	reported [][]int64

	// snap is the last published estimate snapshot (nil until the first
	// query); rebuildMu serializes rebuilds so concurrent queries do not
	// duplicate the stripe walks.
	snap      atomic.Pointer[estSnapshot]
	rebuildMu sync.Mutex

	frames  atomic.Int64
	updates atomic.Int64
	events  atomic.Int64
	firstNs atomic.Int64
	lastNs  atomic.Int64

	// epoch is the run epoch: 0 for a fresh coordinator, bumped by every
	// checkpoint restore. Sites learn it from the resume ack.
	epoch uint64

	// mu guards slots and doneCount.
	mu        sync.Mutex
	slots     []siteSlot
	doneCount int

	// finishCh closes exactly once when the run ends; finishErr (written
	// before the close) is nil on success, ErrCoordinatorClosed on an
	// abrupt Close, or the first fatal protocol/supervision error.
	finishOnce sync.Once
	finishCh   chan struct{}
	finishErr  error

	serveOnce sync.Once
	closeOnce sync.Once
	closed    atomic.Bool

	// CrashAfterFrames, when set before Serve, makes the coordinator Close
	// itself the moment its frame counter reaches the given value — the
	// chaos tests' deterministic coordinator kill, the counterpart of
	// Site.CrashAfterEvents (frame counts do not depend on timing, so the
	// kill point reproduces exactly). Zero disables the hook.
	CrashAfterFrames int64

	// ckptEvery/ckptCh drive the periodic checkpoint writer; ckptErr keeps
	// the last asynchronous write failure (checkpointing is best-effort and
	// must not fail the run).
	ckptEvery int64
	ckptCh    chan struct{}
	ckptErr   atomic.Pointer[error]

	// structs is the structure-learning overlay (nil unless
	// Config.StructBatchEvents > 0); see structure.go. It is deliberately
	// excluded from checkpoints — a restored coordinator relearns from the
	// sites' cumulative resume replays.
	structs *structEngine
	// drift is the resolved drift network (nil unless Config.DriftNetName is
	// set), validated at construction to share NetName's variable shape.
	drift *bn.Network
}

// NewCoordinator validates cfg, regenerates the shared network, and starts
// listening on addr (use "127.0.0.1:0" for tests). Call Addr for the bound
// address and Serve to run the protocol.
func NewCoordinator(cfg Config, addr string) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	netw, err := netgen.ByName(cfg.NetName)
	if err != nil {
		return nil, err
	}
	layout, err := NewLayout(netw, cfg.Strategy, cfg.Eps)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	nStripes := cfg.Shards
	if nStripes <= 1 {
		nStripes = 1
	}
	if n := int(layout.NumCounters()); nStripes > n && n > 0 {
		nStripes = n // more stripes than counters buys nothing
	}
	co := &Coordinator{
		cfg:       cfg,
		net:       netw,
		layout:    layout,
		ln:        ln,
		sqrtK:     math.Sqrt(float64(cfg.Sites)),
		stripes:   make([]coStripe, nStripes),
		slots:     make([]siteSlot, cfg.Sites),
		finishCh:  make(chan struct{}),
		ckptEvery: cfg.CheckpointEveryFrames,
		ckptCh:    make(chan struct{}, 1),
	}
	co.ownLo, co.ownHi = layout.StripeRange(uint32(cfg.StripeIndex), uint32(cfg.StripeCount))
	co.reported = make([][]int64, cfg.Sites)
	for i := range co.reported {
		co.reported[i] = make([]int64, co.ownHi-co.ownLo)
	}
	if cfg.StructBatchEvents > 0 {
		winEvents, winBlocks := cfg.structWindow()
		co.structs, err = newStructEngine(netw, cfg.Sites, winEvents, winBlocks)
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	if cfg.DriftNetName != "" {
		drift, err := netgen.ByName(cfg.DriftNetName)
		if err != nil {
			ln.Close()
			return nil, err
		}
		if err := sameVariables(netw, drift); err != nil {
			ln.Close()
			return nil, fmt.Errorf("cluster: drift network %q incompatible with %q: %w",
				cfg.DriftNetName, cfg.NetName, err)
		}
		co.drift = drift
	}
	return co, nil
}

// sameVariables checks that two networks describe the same variables (names
// and cardinalities, in order); structure and parameters may differ.
func sameVariables(a, b *bn.Network) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("variable count %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		va, vb := a.Var(i), b.Var(i)
		if va.Name != vb.Name || va.Card != vb.Card {
			return fmt.Errorf("variable %d is %s(card %d) vs %s(card %d)",
				i, va.Name, va.Card, vb.Name, vb.Card)
		}
	}
	return nil
}

// Addr returns the listening address.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close releases the listener and every site connection. Safe to call at any
// time, from any goroutine, and more than once: called after Serve returned
// it is a plain resource release; called while Serve is running it is an
// abrupt stop — Serve returns ErrCoordinatorClosed without distributing
// stats, the chaos tests' stand-in for kill -9 (no final checkpoint is
// written; only the periodic cadence ones survive, as with a real crash).
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() {
		co.closed.Store(true)
		co.ln.Close()
		co.mu.Lock()
		for i := range co.slots {
			if co.slots[i].raw != nil {
				co.slots[i].raw.Close()
			}
		}
		co.mu.Unlock()
		co.finish(ErrCoordinatorClosed)
	})
	return nil
}

// finish ends the run exactly once.
func (co *Coordinator) finish(err error) {
	co.finishOnce.Do(func() {
		co.finishErr = err
		close(co.finishCh)
	})
}

// finished reports whether the run has ended and with which error.
func (co *Coordinator) finished() (bool, error) {
	select {
	case <-co.finishCh:
		return true, co.finishErr
	default:
		return false, nil
	}
}

// Err reports whether the coordinator can still answer queries: nil while
// the run is live and after it completed cleanly, the terminal error after
// Close or a fatal protocol failure. Serving layers poll it to tell a
// finished-but-queryable coordinator from a dead one.
func (co *Coordinator) Err() error {
	if over, err := co.finished(); over {
		return err
	}
	return nil
}

// Serve runs the training protocol to completion: it supervises site
// connections (accepting joins, resumes and rejoins at any time), folds
// their reports into the striped matrix, and once every site's Done marker
// has arrived distributes closing stats and returns the run result. Queries
// may be issued concurrently with Serve at any time.
//
// Serve does not fail on connection loss: a disconnected site has
// Config.grace() to come back (resume or restart) before the run is failed.
// Fatal errors remain fatal: a malformed handshake, an out-of-range site id,
// a listener failure, or Close. Serve may be called once per Coordinator;
// a coordinator restored from a checkpoint resumes the run where the
// checkpoint left it (sites already recorded done stay done).
func (co *Coordinator) Serve() (Result, error) {
	co.serveOnce.Do(func() {
		go co.acceptLoop()
		if co.ckptEvery > 0 {
			go co.checkpointLoop()
		}
	})
	// A coordinator restored from a post-run checkpoint has nothing left to
	// serve; complete immediately (stragglers fetch stats via acceptLoop).
	co.mu.Lock()
	if co.doneCount == len(co.slots) {
		co.mu.Unlock()
		co.finish(nil)
	} else {
		co.mu.Unlock()
	}

	<-co.finishCh
	if co.finishErr != nil {
		return Result{}, co.finishErr
	}

	stats := co.LiveStats()
	payload := encodeStats(stats.Stats)
	co.mu.Lock()
	type out struct {
		c    *conn
		wmu  *sync.Mutex
		site uint32
		via  bool
	}
	var outs []out
	for i := range co.slots {
		switch {
		case co.slots[i].c != nil:
			outs = append(outs, out{co.slots[i].c, &co.slots[i].wmu, uint32(i), false})
		case co.slots[i].via != nil:
			// Relay-routed site: the stats travel down wrapped in a ctl
			// frame; the relay unwraps and delivers them.
			l := co.slots[i].via
			outs = append(outs, out{l.c, &l.wmu, uint32(i), true})
		}
	}
	co.mu.Unlock()
	for _, o := range outs {
		// Best effort: a site that lost its connection right at the end
		// re-resumes and collects stats from the acceptLoop instead.
		o.wmu.Lock()
		var err error
		if o.via {
			err = o.c.writeFrame(frameRelayCtl, encodeRelayWrapped(o.site, frameStats, payload))
		} else {
			err = o.c.writeFrame(frameStats, payload)
		}
		if err == nil {
			o.c.flush()
		}
		o.wmu.Unlock()
	}

	runtime := time.Duration(co.lastNs.Load() - co.firstNs.Load())
	if runtime < 0 {
		runtime = 0
	}
	res := Result{Stats: stats.Stats, Runtime: runtime}
	if runtime > 0 {
		res.Throughput = float64(stats.Events) / runtime.Seconds()
	}
	return res, nil
}

// acceptLoop admits connections until the listener closes: site joins
// (hello), process-restart rejoins (hello for an already-seen id) and
// connection-level resumes (protocol v3). It outlives Serve so a site that
// missed the closing stats can still reconnect and collect them.
func (co *Coordinator) acceptLoop() {
	for {
		raw, err := co.ln.Accept()
		if err != nil {
			if !co.closed.Load() {
				co.finish(fmt.Errorf("cluster: accept: %w", err))
			}
			return
		}
		go co.handleConn(raw)
	}
}

// handleConn performs the handshake on one accepted connection and, for a
// live run, hands it to a reader goroutine.
func (co *Coordinator) handleConn(raw net.Conn) {
	c := newConn(raw)
	t, payload, err := c.readFrame()
	if err != nil {
		// The dialer vanished (or a fault cut the handshake frame): not a
		// protocol violation, just a dead connection.
		raw.Close()
		return
	}
	var id uint32
	var resume resumeReq
	switch t {
	case frameHello:
		id, err = decodeHello(payload)
	case frameResume:
		resume, err = decodeResume(payload)
		id = resume.Site
	case frameRelayHello:
		relayID, err := decodeHello(payload)
		if err != nil {
			raw.Close()
			co.finish(err)
			return
		}
		co.serveRelay(raw, c, relayID)
		return
	default:
		raw.Close()
		co.finish(fmt.Errorf("cluster: first frame %d, want hello or resume", t))
		return
	}
	if err != nil {
		raw.Close()
		co.finish(err)
		return
	}
	if id >= uint32(co.cfg.Sites) {
		raw.Close()
		co.finish(fmt.Errorf("cluster: site id %d out of range", id))
		return
	}
	if over, ferr := co.finished(); over {
		if ferr == nil && t == frameResume {
			// Run already complete: answer the resume with the closing stats
			// so a site that crashed at the finish line still gets them.
			c.writeFrame(frameResumeAck, encodeResumeAck(resumeAck{
				Epoch:      co.epoch,
				SiteEvents: uint64(co.siteEvents(id)),
				Flags:      resumeRunComplete | resumeSiteDone,
			}))
			c.writeFrame(frameStats, encodeStats(co.LiveStats().Stats))
			c.flush()
		}
		raw.Close()
		return
	}

	// Attach the connection: a lingering previous connection for the id is
	// superseded (latest wins — its reader stands down via the generation).
	co.mu.Lock()
	slot := &co.slots[id]
	if slot.raw != nil {
		slot.raw.Close()
	}
	slot.raw, slot.c = raw, c
	slot.via = nil
	slot.gen++
	gen := slot.gen
	done, events := slot.done, slot.events
	co.mu.Unlock()

	// The handshake is done: widen the read limit from the control-frame
	// bound to the largest update frame the layout admits (or the largest
	// struct-stats frame, when structure learning is on and those are
	// bigger).
	c.setReadLimit(co.innerFrameCap())

	var reply error
	slot.wmu.Lock()
	switch t {
	case frameHello:
		// Fresh join or a restarted site process rejoining from scratch: it
		// gets the same deterministic StartConfig and replays its stream
		// from event 0. Its reported row is deliberately kept — counts are
		// monotone and the replayed reports max-merge idempotently.
		reply = c.writeFrame(frameStart, encodeStart(co.startConfigFor(id)))
	case frameResume:
		ack := resumeAck{Epoch: co.epoch, SiteEvents: uint64(events)}
		if done {
			ack.Flags |= resumeSiteDone
		}
		reply = c.writeFrame(frameResumeAck, encodeResumeAck(ack))
	}
	if reply == nil {
		reply = c.flush()
	}
	slot.wmu.Unlock()
	if reply != nil {
		co.detach(id, gen)
		return
	}
	go func() {
		err := co.serveSite(c, id)
		if err == nil {
			// Done accepted: the connection stays attached, idle, so the
			// closing stats can reach the site.
			return
		}
		co.detach(id, gen)
	}()
}

// startConfigFor builds the deterministic StartConfig for one site id —
// shared by the direct handshake and the relay-forwarded join path.
func (co *Coordinator) startConfigFor(id uint32) StartConfig {
	start := StartConfig{
		NetName:       co.cfg.NetName,
		CPTSeed:       co.cfg.CPTSeed,
		Strategy:      uint8(co.cfg.Strategy),
		Eps:           co.cfg.Eps,
		Delta:         co.cfg.Delta,
		Sites:         uint32(co.cfg.Sites),
		Site:          id,
		Events:        uint64(co.cfg.eventsFor(id)),
		StreamSeed:    co.cfg.StreamSeed,
		LatencyMicros: co.cfg.LatencyMicros,
		BatchEvents:   uint32(co.cfg.SiteBatchEvents),
	}
	start.StructBatchEvents = uint32(co.cfg.StructBatchEvents)
	if co.drift != nil {
		frac := co.cfg.DriftAfter
		if frac == 0 {
			frac = 0.5
		}
		start.DriftNetName = co.cfg.DriftNetName
		start.DriftCPTSeed = co.cfg.DriftCPTSeed
		start.DriftAtEvent = uint64(frac * float64(co.cfg.eventsFor(id)))
	}
	if co.cfg.StripeCount > 0 {
		start.StripeIndex = uint32(co.cfg.StripeIndex)
		start.StripeCount = uint32(co.cfg.StripeCount)
	}
	return start
}

// innerFrameCap is the largest site-level frame payload the layout admits —
// the read limit for a direct site connection, and the per-group inner bound
// for relay connections.
func (co *Coordinator) innerFrameCap() uint32 {
	limit := updatesPayloadCap(co.layout.NumCounters())
	if co.structs != nil {
		if sl := structPayloadCap(co.structs.layout.Cells()); sl > limit {
			limit = sl
		}
	}
	return limit
}

// detach marks a site disconnected (if gen still identifies the current
// connection) and arms the reconnect-grace timer.
func (co *Coordinator) detach(id uint32, gen uint64) {
	co.mu.Lock()
	slot := &co.slots[id]
	if slot.gen != gen {
		co.mu.Unlock()
		return // a newer connection has already taken over
	}
	if slot.raw != nil {
		slot.raw.Close()
	}
	slot.raw, slot.c, slot.via = nil, nil, nil
	done := slot.done
	co.mu.Unlock()
	co.armGrace(id, gen, done)
}

// armGrace starts the reconnect-grace timer for a site that just lost its
// connection (direct or relay-routed): the run fails unless the site is back
// — reconnected directly, or re-forwarded by a relay — before it fires.
func (co *Coordinator) armGrace(id uint32, gen uint64, done bool) {
	if done {
		return // nothing more expected from this site
	}
	if over, _ := co.finished(); over {
		return
	}
	grace := co.cfg.grace()
	time.AfterFunc(grace, func() {
		co.mu.Lock()
		slot := &co.slots[id]
		expired := slot.gen == gen && slot.raw == nil && slot.via == nil && !slot.done
		co.mu.Unlock()
		if expired {
			co.finish(fmt.Errorf("cluster: site %d disconnected and did not reconnect within %v", id, grace))
		}
	})
}

// siteEvents returns the recorded event count for a site (0 until Done).
func (co *Coordinator) siteEvents(id uint32) int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.slots[id].events
}

// serveSite consumes one site connection's frames until its Done marker,
// decoding both the version-1 per-event format and the version-2 coalesced
// format (a protocol-v3 resume replay arrives as an ordinary frameUpdates2).
// A nil return means Done; any error means the connection is dead or spoke
// garbage — the caller detaches it and the site is expected to come back.
func (co *Coordinator) serveSite(c *conn, site uint32) error {
	var ups []Update
	buckets := make([][]Update, len(co.stripes)) // per-stripe scratch, reused across frames
	for {
		t, payload, err := c.readFrame()
		if err != nil {
			return fmt.Errorf("cluster: site %d stream: %w", site, err)
		}
		co.noteFrame()
		switch t {
		case frameUpdates:
			ups, err = decodeUpdates(ups, payload)
			if err != nil {
				return err
			}
			if err := co.applyUpdates(site, ups, buckets); err != nil {
				return err
			}
			co.updates.Add(int64(len(ups)))
		case frameUpdates2:
			ups, err = decodeUpdates2(ups, payload, co.layout.NumCounters())
			if err != nil {
				return err
			}
			if err := co.applyUpdates(site, ups, buckets); err != nil {
				return err
			}
			co.updates.Add(int64(len(ups)))
		case frameStructStats:
			if co.structs == nil {
				return fmt.Errorf("cluster: site %d sent struct stats but structure learning is off", site)
			}
			var siteEvents uint64
			siteEvents, ups, err = decodeStructStats(ups, payload, co.structs.layout.Cells())
			if err != nil {
				return err
			}
			co.structs.apply(site, siteEvents, ups)
		case frameDone:
			_, events, err := decodeDone(payload)
			if err != nil {
				return err
			}
			co.handleDone(site, events)
			return nil
		default:
			return fmt.Errorf("cluster: site %d unexpected frame %d", site, t)
		}
	}
}

// noteFrame records one received frame: the run clock, the frame counter,
// the chaos crash hook and the checkpoint cadence. Shared by the per-site
// readers and the relay readers — a relay frame carrying a whole tier's
// folded windows counts once, which is exactly the root-load reduction the
// aggregation tree buys.
func (co *Coordinator) noteFrame() {
	now := time.Now().UnixNano()
	co.firstNs.CompareAndSwap(0, now)
	co.lastNs.Store(now)
	n := co.frames.Add(1)
	if co.CrashAfterFrames > 0 && n == co.CrashAfterFrames {
		// Synchronous: the kill must win the race against a finishing
		// run, or a seeded kill point near the end becomes flaky.
		co.Close()
	}
	if co.ckptEvery > 0 && n%co.ckptEvery == 0 {
		select {
		case co.ckptCh <- struct{}{}:
		default: // a checkpoint is already pending; cadence resumes next tick
		}
	}
}

// handleDone records a site's Done marker exactly once (replays and
// relay-forwarded duplicates deduplicate here) and finishes the run when
// every site has reported.
func (co *Coordinator) handleDone(site uint32, events int64) {
	co.mu.Lock()
	slot := &co.slots[site]
	allDone := false
	if !slot.done {
		slot.done = true
		slot.events = events
		co.events.Add(events)
		co.doneCount++
		allDone = co.doneCount == len(co.slots)
	}
	co.mu.Unlock()
	if allDone {
		co.finish(nil)
	}
}

// applyUpdates folds one decoded frame into the reported matrix: one pass
// buckets the frame's updates by stripe (buckets is the caller's reusable
// per-stripe scratch), then each touched stripe is locked once, applied in
// ascending stripe order, and has its version bumped. Reports are monotone
// local counts; the maximum is kept to stay robust to reordering within a
// stream — the same property that makes resume replays and duplicated
// frames idempotent.
func (co *Coordinator) applyUpdates(site uint32, ups []Update, buckets [][]Update) error {
	lo, hi := co.ownLo, co.ownHi
	for _, u := range ups {
		if u.Counter < lo || u.Counter >= hi {
			return fmt.Errorf("cluster: site %d counter %d outside owned range [%d,%d)", site, u.Counter, lo, hi)
		}
	}
	row := co.reported[site]
	nStripes := uint32(len(co.stripes))
	if nStripes == 1 {
		st := &co.stripes[0]
		st.mu.Lock()
		for _, u := range ups {
			if u.LocalCount > row[u.Counter-lo] {
				row[u.Counter-lo] = u.LocalCount
			}
		}
		st.version.Add(1)
		st.mu.Unlock()
		return nil
	}
	for _, u := range ups {
		s := u.Counter % nStripes
		buckets[s] = append(buckets[s], u)
	}
	for s := range buckets {
		b := buckets[s]
		if len(b) == 0 {
			continue
		}
		st := &co.stripes[s]
		st.mu.Lock()
		for _, u := range b {
			if u.LocalCount > row[u.Counter-lo] {
				row[u.Counter-lo] = u.LocalCount
			}
		}
		st.version.Add(1)
		st.mu.Unlock()
		buckets[s] = b[:0]
	}
	return nil
}

// stripeOf returns the stripe guarding counter id.
func (co *Coordinator) stripeOf(id uint32) *coStripe {
	return &co.stripes[id%uint32(len(co.stripes))]
}

// estimateLocked computes counter id's estimate from the reported matrix:
// the sum over sites of the last reported local count plus the trailing-gap
// adjustment (see layout.go). Callers hold id's stripe lock and guarantee id
// is owned.
func (co *Coordinator) estimateLocked(id uint32) float64 {
	eps := co.layout.Eps(id)
	est := 0.0
	for site := 0; site < co.cfg.Sites; site++ {
		r := co.reported[site][id-co.ownLo]
		est += float64(r) + adjustmentSqrtK(co.cfg.Sites, co.sqrtK, eps, r)
	}
	return est
}

// Estimate returns the coordinator's current estimate of a counter's global
// count, read live under the counter's stripe lock. Valid at any time —
// during a run it reflects the reports received so far. On a striped
// coordinator only owned ids have state; an unowned id estimates 0 (query
// through Federation to scatter-gather across the stripes).
func (co *Coordinator) Estimate(id uint32) float64 {
	if id < co.ownLo || id >= co.ownHi {
		return 0
	}
	st := co.stripeOf(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	return co.estimateLocked(id)
}

// snapFresh reports whether snap matches every stripe's live version.
func (co *Coordinator) snapFresh(snap *estSnapshot) bool {
	for s := range co.stripes {
		if snap.versions[s] != co.stripes[s].version.Load() {
			return false
		}
	}
	return true
}

// snapshot returns a current estimate snapshot, rebuilding only the stripes
// whose version moved since the cached one was built. Mirrors
// core.Tracker's snapshot machinery: repeated queries against a quiescent
// coordinator share one snapshot with no lock traffic, and a query racing
// ingestion rebuilds exactly the dirty stripes. Like the tracker, a
// snapshot taken while frames are in flight may interleave stripes from
// slightly different stream positions — the same consistency the per-cell
// Estimate path has.
func (co *Coordinator) snapshot() *estSnapshot {
	if s := co.snap.Load(); s != nil && co.snapFresh(s) {
		return s
	}
	co.rebuildMu.Lock()
	defer co.rebuildMu.Unlock()
	old := co.snap.Load()
	if old != nil && co.snapFresh(old) {
		return old
	}
	total := co.layout.NumCounters()
	ns := &estSnapshot{
		versions: make([]uint64, len(co.stripes)),
		est:      make([]float64, total),
	}
	if old != nil {
		copy(ns.est, old.est) // start from the previous estimates; dirty stripes overwrite
	}
	nStripes := uint32(len(co.stripes))
	k, sqrtK := co.cfg.Sites, co.sqrtK
	ownLo, ownHi := co.ownLo, co.ownHi
	for s := range co.stripes {
		st := &co.stripes[s]
		if old != nil {
			if v := st.version.Load(); v == old.versions[s] {
				ns.versions[s] = v // inherited via the bulk copy above
				continue
			}
		}
		st.mu.Lock()
		// Site-major walk: one pass per site row keeps the reads contiguous
		// within a row instead of striding across every site's row once per
		// counter. Accumulation order (site 0..k-1 from zero) matches
		// estimateLocked's, so both paths stay bit-identical.
		if nStripes == 1 {
			// The single stripe owns every owned id: walk the layout's
			// equal-eps sections, clipped to the owned range, so the per-id
			// eps load and the strided index arithmetic drop out of the
			// inner loop — the coordinator-side sibling of
			// counter.Bank.EstimateRange. Same float operations on the same
			// ascending ids as the strided walk below, so the two paths are
			// bit-identical; unstriped, the clip is the identity and the
			// walk matches the historical full-space one exactly.
			est := ns.est
			for id := ownLo; id < ownHi; id++ {
				est[id] = 0
			}
			for site := 0; site < k; site++ {
				row := co.reported[site]
				for _, sec := range co.layout.Sections() {
					lo, hi := sec.Lo, sec.Hi
					if lo < ownLo {
						lo = ownLo
					}
					if hi > ownHi {
						hi = ownHi
					}
					eps := sec.Eps
					for id := lo; id < hi; id++ {
						r := row[id-ownLo]
						est[id] += float64(r) + adjustmentSqrtK(k, sqrtK, eps, r)
					}
				}
			}
		} else {
			// First owned id congruent to s mod nStripes.
			start := uint32(s)
			if start < ownLo {
				start += (ownLo - start + nStripes - 1) / nStripes * nStripes
			}
			for id := start; id < ownHi; id += nStripes {
				ns.est[id] = 0
			}
			for site := 0; site < k; site++ {
				row := co.reported[site]
				for id := start; id < ownHi; id += nStripes {
					r := row[id-ownLo]
					ns.est[id] += float64(r) + adjustmentSqrtK(k, sqrtK, co.layout.Eps(id), r)
				}
			}
		}
		ns.versions[s] = st.version.Load() // under mu: stable
		st.mu.Unlock()
	}
	for _, v := range ns.versions {
		ns.version += v
	}
	ns.builtAt = time.Now()
	co.snap.Store(ns)
	return ns
}

// QueryProb answers a joint-probability query from the tracked counters
// (Algorithm 3 over the cluster state), served from the version-validated
// estimate snapshot. Valid at any time: during a live run the answer
// reflects the reports received so far — the paper's query-at-any-time
// model — and after Serve returns it is the final estimate.
func (co *Coordinator) QueryProb(x []int) float64 {
	est := co.snapshot().est
	p := 1.0
	for i := 0; i < co.net.Len(); i++ {
		pidx := co.net.ParentIndex(i, x)
		den := est[co.layout.ParID(i, pidx)]
		if den <= 0 {
			return 0
		}
		p *= est[co.layout.PairID(i, x[i], pidx)] / den
	}
	return p
}

// EstimatedModel materializes the tracked parameters into a normalized
// bn.Model, built from the same estimate snapshot QueryProb reads and
// cached per snapshot (repeated calls between reports are free). Rows whose
// parent configuration has no mass become uniform. Valid at any time, like
// QueryProb.
func (co *Coordinator) EstimatedModel() (*bn.Model, error) {
	return co.modelFor(co.snapshot())
}

// modelFor returns snap's cached normalized model, building and publishing
// it on first use — shared by EstimatedModel and the serving layer's
// Snapshot.Model.
func (co *Coordinator) modelFor(snap *estSnapshot) (*bn.Model, error) {
	if m := snap.model.Load(); m != nil {
		return m, nil
	}
	est := snap.est
	m, err := bn.NewNormalizedModel(co.net, func(i int, tbl []float64) {
		j, k := co.net.Card(i), co.net.ParentCard(i)
		for pidx := 0; pidx < k; pidx++ {
			den := est[co.layout.ParID(i, pidx)]
			for v := 0; v < j; v++ {
				if den > 0 {
					tbl[pidx*j+v] = est[co.layout.PairID(i, v, pidx)] / den
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	snap.model.Store(m)
	return m, nil
}

// RunStats is LiveStats' full point-in-time view of a run: the protocol
// counters plus — when the structure-learning overlay is on — its fold
// counters (struct frames folded, Chow-Liu relearns, hot swaps, current
// structure epoch).
type RunStats struct {
	Stats
	// Struct holds the structure-learning counters; zero value when
	// Config.StructBatchEvents is 0.
	Struct StructStats
}

// LiveStats returns a point-in-time snapshot of the run counters — frames,
// update entries and completed events seen so far, plus the
// structure-learning counters when the overlay is on. Safe to call while
// Serve is running; Events counts only sites that already sent their Done
// marker.
func (co *Coordinator) LiveStats() RunStats {
	rs := RunStats{Stats: Stats{
		Frames:  co.frames.Load(),
		Updates: co.updates.Load(),
		Events:  co.events.Load(),
	}}
	if co.structs != nil {
		rs.Struct = co.StructLearnStats()
	}
	return rs
}

// Network returns the shared network structure.
func (co *Coordinator) Network() *bn.Network { return co.net }

// StructLearning reports whether the structure-learning overlay is on for
// this run (Config.StructBatchEvents > 0).
func (co *Coordinator) StructLearning() bool { return co.structs != nil }

// relayLink is one relay's upstream connection as the coordinator (or a
// mid-tier relay acting as parent) sees it: a single TCP connection carrying
// many sites' traffic. Control replies for those sites travel down it
// wrapped in frameRelayCtl frames.
type relayLink struct {
	raw net.Conn
	c   *conn
	// wmu serializes writers: ctl replies from the relay reader race the
	// closing stats broadcast.
	wmu sync.Mutex
}

// serveRelay drives one relay connection: it answers the relay's hello with
// the base run configuration, admits the wrapped per-site joins the relay
// forwards, folds the relay's grouped per-site update frames — one frame
// for a whole tier of sites, which is the point of the aggregation tree:
// the root's frame rate divides by the relay's branching factor — and
// routes control replies back down wrapped in frameRelayCtl. Runs on the
// accepted connection's goroutine until the connection dies; a dead relay
// link detaches every site it carried (grace timers arm exactly as for a
// direct disconnect — the relay reconnecting, or its sites re-resuming
// through a restarted relay, heals the run).
func (co *Coordinator) serveRelay(raw net.Conn, c *conn, relayID uint32) {
	link := &relayLink{raw: raw, c: c}

	// The relay derives its fold layout from the same deterministic base
	// config a site would get; Site and Events are meaningless for a relay
	// and zeroed.
	base := co.startConfigFor(0)
	base.Site, base.Events = 0, 0
	link.wmu.Lock()
	err := c.writeFrame(frameStart, encodeStart(base))
	if err == nil {
		err = c.flush()
	}
	link.wmu.Unlock()
	if err != nil {
		raw.Close()
		return
	}

	innerCap := co.innerFrameCap()
	c.setReadLimit(relayPayloadCap(uint32(co.cfg.Sites), innerCap))

	// Any error — connection death or garbage — detaches the relay's sites;
	// like a direct site connection, the peer is expected to come back.
	_ = co.relayLoop(link, innerCap, relayID)
	co.detachRelay(link)
	raw.Close()
}

// relayLoop consumes one relay connection's frames until it dies.
func (co *Coordinator) relayLoop(link *relayLink, innerCap uint32, relayID uint32) error {
	var ups []Update
	var groups []relayGroup
	buckets := make([][]Update, len(co.stripes))
	for {
		t, payload, err := link.c.readFrame()
		if err != nil {
			return fmt.Errorf("cluster: relay %d stream: %w", relayID, err)
		}
		co.noteFrame()
		switch t {
		case frameRelayJoin:
			site, kind, inner, err := decodeRelayWrapped(payload)
			if err != nil {
				return err
			}
			if site >= uint32(co.cfg.Sites) {
				return fmt.Errorf("cluster: relay %d forwarded site id %d out of range", relayID, site)
			}
			if err := co.handleRelayJoin(link, site, kind, inner); err != nil {
				return err
			}
		case frameRelayUpdates:
			groups, err = decodeRelayGroups(groups, payload, uint32(co.cfg.Sites), innerCap)
			if err != nil {
				return err
			}
			for _, g := range groups {
				ups, err = decodeUpdates2(ups, g.Payload, co.layout.NumCounters())
				if err != nil {
					return err
				}
				if err := co.applyUpdates(g.Site, ups, buckets); err != nil {
					return err
				}
				co.updates.Add(int64(len(ups)))
			}
		case frameRelayStruct:
			if co.structs == nil {
				return fmt.Errorf("cluster: relay %d sent struct stats but structure learning is off", relayID)
			}
			groups, err = decodeRelayGroups(groups, payload, uint32(co.cfg.Sites), innerCap)
			if err != nil {
				return err
			}
			for _, g := range groups {
				var siteEvents uint64
				siteEvents, ups, err = decodeStructStats(ups, g.Payload, co.structs.layout.Cells())
				if err != nil {
					return err
				}
				co.structs.apply(g.Site, siteEvents, ups)
			}
		default:
			return fmt.Errorf("cluster: relay %d unexpected frame %d", relayID, t)
		}
	}
}

// handleRelayJoin processes one wrapped site join forwarded by a relay —
// the relay-routed mirror of the direct handshake in handleConn.
func (co *Coordinator) handleRelayJoin(link *relayLink, site uint32, kind byte, inner []byte) error {
	writeCtl := func(innerType byte, payload []byte) error {
		link.wmu.Lock()
		defer link.wmu.Unlock()
		if err := link.c.writeFrame(frameRelayCtl, encodeRelayWrapped(site, innerType, payload)); err != nil {
			return err
		}
		return link.c.flush()
	}
	switch kind {
	case relayJoinHello:
		if over, _ := co.finished(); over {
			// Nothing left to start; a site that still wants the closing
			// stats resumes instead.
			return nil
		}
		co.attachVia(site, link)
		return writeCtl(frameStart, encodeStart(co.startConfigFor(site)))
	case relayJoinResume:
		if _, err := decodeResume(inner); err != nil {
			return err
		}
		if over, ferr := co.finished(); over {
			if ferr != nil {
				return nil
			}
			// Run already complete: ack with the closing stats, as on a
			// direct post-run resume.
			if err := writeCtl(frameResumeAck, encodeResumeAck(resumeAck{
				Epoch:      co.epoch,
				SiteEvents: uint64(co.siteEvents(site)),
				Flags:      resumeRunComplete | resumeSiteDone,
			})); err != nil {
				return err
			}
			return writeCtl(frameStats, encodeStats(co.LiveStats().Stats))
		}
		done, events := co.attachVia(site, link)
		ack := resumeAck{Epoch: co.epoch, SiteEvents: uint64(events)}
		if done {
			ack.Flags |= resumeSiteDone
		}
		return writeCtl(frameResumeAck, encodeResumeAck(ack))
	case relayJoinReattach:
		// The relay's upstream connection was re-established with this site
		// still attached below it; no reply — re-routing the slot cancels
		// the grace timer.
		if over, _ := co.finished(); over {
			return nil
		}
		co.attachVia(site, link)
		return nil
	case relayJoinDone:
		_, events, err := decodeDone(inner)
		if err != nil {
			return err
		}
		co.handleDone(site, events)
		return nil
	case relayJoinDetach:
		co.detachViaSite(link, site)
		return nil
	default:
		return fmt.Errorf("cluster: relay join kind %d for site %d", kind, site)
	}
}

// attachVia routes a site slot through a relay link, superseding any direct
// connection, and returns the slot's completion state.
func (co *Coordinator) attachVia(site uint32, link *relayLink) (done bool, events int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	slot := &co.slots[site]
	if slot.raw != nil {
		slot.raw.Close()
	}
	slot.raw, slot.c = nil, nil
	slot.via = link
	slot.gen++
	return slot.done, slot.events
}

// detachViaSite marks one relay-routed site disconnected (the relay reported
// its downstream connection died) and arms its grace timer.
func (co *Coordinator) detachViaSite(link *relayLink, site uint32) {
	co.mu.Lock()
	slot := &co.slots[site]
	if slot.via != link {
		co.mu.Unlock()
		return // superseded by a direct reconnect or another relay
	}
	slot.via = nil
	gen, done := slot.gen, slot.done
	co.mu.Unlock()
	co.armGrace(site, gen, done)
}

// detachRelay marks every site routed through a dead relay link
// disconnected and arms their grace timers: the relay must reconnect (or
// its sites re-resume through a restarted one) within the grace.
func (co *Coordinator) detachRelay(link *relayLink) {
	type lost struct {
		id   uint32
		gen  uint64
		done bool
	}
	var ps []lost
	co.mu.Lock()
	for i := range co.slots {
		slot := &co.slots[i]
		if slot.via == link {
			slot.via = nil
			ps = append(ps, lost{uint32(i), slot.gen, slot.done})
		}
	}
	co.mu.Unlock()
	for _, p := range ps {
		co.armGrace(p.id, p.gen, p.done)
	}
}
