package cluster

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
)

// Config parameterizes a cluster run.
type Config struct {
	// NetName is the netgen registry name of the network to learn.
	NetName string
	// CPTSeed seeds the shared ground-truth parameters.
	CPTSeed uint64
	// Strategy selects the tracking algorithm.
	Strategy core.Strategy
	// Eps, Delta are the approximation budget.
	Eps, Delta float64
	// Sites is k.
	Sites int
	// Events is the total stream length, split across sites (evenly unless
	// HotSiteShare routes a skewed share to site 0).
	Events int
	// StreamSeed seeds the per-site event streams.
	StreamSeed uint64
	// LatencyMicros adds an artificial per-frame delay at sites, emulating
	// WAN round-trips on a loopback deployment.
	LatencyMicros uint32
	// Shards is the number of lock stripes guarding the coordinator's
	// reported-count matrix, mirroring core.Config.Shards: counter id c
	// belongs to stripe c mod Shards, each stripe carries a version counter,
	// and the live query paths (QueryProb, EstimatedModel) revalidate a
	// cached estimate snapshot against the stripe versions, rebuilding only
	// the stripes that moved. 0 and 1 both mean a single stripe — the
	// sequential mode that, with batching off, reproduces the historical
	// coordinator bit for bit.
	Shards int
	// SiteBatchEvents switches the sites to protocol version 2: each site
	// coalesces its report decisions into a local delta batch and ships one
	// varint-compressed frameUpdates2 frame every SiteBatchEvents events
	// instead of one frame per triggering event. 0 keeps the version-1
	// one-frame-per-event behavior. Batching delays a report by at most one
	// window, which the (ε, δ) envelope absorbs exactly like the
	// trailing-gap the report probability already models; see the package
	// comment for the measured effect.
	SiteBatchEvents int
	// HotSiteShare, when positive, routes that fraction of the stream to
	// site 0 and splits the rest evenly — the skewed-routing regime of
	// deviation #1 (sites estimate global counts as k·local, which a hot
	// site breaks). 0 routes evenly. See the package comment for the
	// measured imprecision under skew.
	HotSiteShare float64
	// LiveQueryMicros, when positive, makes RunLocal drive a mid-run query
	// mix against the coordinator: one QueryProb on a random assignment
	// every LiveQueryMicros microseconds (every eighth one an
	// EstimatedModel), for as long as the sites stream. The answers come
	// from the live snapshot path — the paper's query-at-any-time model.
	LiveQueryMicros uint32
}

func (c Config) validate() error {
	if c.NetName == "" {
		return fmt.Errorf("cluster: empty network name")
	}
	if c.Sites < 1 {
		return fmt.Errorf("cluster: sites = %d, want >= 1", c.Sites)
	}
	if c.Events < 1 {
		return fmt.Errorf("cluster: events = %d, want >= 1", c.Events)
	}
	if c.Strategy != core.ExactMLE && !(c.Eps > 0 && c.Eps < 1) {
		return fmt.Errorf("cluster: eps = %v, want 0 < eps < 1", c.Eps)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: shards = %d, want >= 0", c.Shards)
	}
	if c.SiteBatchEvents < 0 {
		return fmt.Errorf("cluster: site batch cadence = %d, want >= 0", c.SiteBatchEvents)
	}
	if c.HotSiteShare < 0 || c.HotSiteShare >= 1 {
		return fmt.Errorf("cluster: hot-site share = %v, want [0, 1)", c.HotSiteShare)
	}
	return nil
}

// eventsFor returns the number of stream events site id generates. With
// HotSiteShare = 0 the stream splits as evenly as possible; otherwise site 0
// takes ⌈share·Events⌉ and the rest splits evenly across the other sites.
func (c Config) eventsFor(id uint32) int {
	k := c.Sites
	if c.HotSiteShare > 0 && k > 1 {
		hot := int(math.Ceil(c.HotSiteShare * float64(c.Events)))
		if hot > c.Events {
			hot = c.Events
		}
		if id == 0 {
			return hot
		}
		rest := c.Events - hot
		per, rem := rest/(k-1), rest%(k-1)
		ev := per
		if int(id-1) < rem {
			ev++
		}
		return ev
	}
	per, rem := c.Events/k, c.Events%k
	ev := per
	if int(id) < rem {
		ev++
	}
	return ev
}

// Result summarizes a completed cluster run.
type Result struct {
	Stats Stats
	// Runtime is the wall-clock time from the first to the last frame
	// received by the coordinator (the paper's runtime metric).
	Runtime time.Duration
	// Throughput is events per second over Runtime.
	Throughput float64
	// LiveQueries is the number of mid-run queries RunLocal's query mix
	// issued against the coordinator while the sites streamed (0 unless
	// Config.LiveQueryMicros is set).
	LiveQueries int64
}

// coStripe is one lock stripe of the coordinator's reported-count matrix:
// counter id c belongs to stripe c mod len(stripes). version counts
// mutations (bumped under mu once per applied frame batch) and is read with
// atomic loads by the snapshot validator.
type coStripe struct {
	mu      sync.Mutex
	version atomic.Uint64
}

// estSnapshot is one immutable materialization of every counter's estimate,
// validated against the stripe versions exactly like core.Tracker's model
// snapshots: a query reuses the cached snapshot while every stripe version
// still matches and rebuilds only the stripes that moved.
type estSnapshot struct {
	// versions[s] is stripes[s].version at the time stripe s's estimates
	// were computed (or inherited from the previous snapshot).
	versions []uint64
	// est[c] is counter c's estimate: Σ_sites reported + trailing-gap
	// adjustment.
	est []float64
	// model caches the normalized bn.Model built from est (EstimatedModel),
	// populated lazily at most once per snapshot.
	model atomic.Pointer[bn.Model]
}

// Coordinator is the query-answering hub of the monitoring system. Unlike
// the historical implementation, which materialized estimates once after
// Serve returned, queries are valid at any time — during a live run they are
// served from a version-validated snapshot of the striped reported-count
// matrix, the paper's query-at-any-time model.
type Coordinator struct {
	cfg    Config
	net    *bn.Network
	layout *Layout
	ln     net.Listener
	sqrtK  float64

	// stripes guard reported by counter id (id mod len(stripes)).
	stripes []coStripe
	// reported[site][counter] is the site's last reported local count.
	// Writes take the counter's stripe lock; per-site rows mean two sites
	// never write the same cell, but queries read across all sites.
	reported [][]int64

	// snap is the last published estimate snapshot (nil until the first
	// query); rebuildMu serializes rebuilds so concurrent queries do not
	// duplicate the stripe walks.
	snap      atomic.Pointer[estSnapshot]
	rebuildMu sync.Mutex

	frames  atomic.Int64
	updates atomic.Int64
	events  atomic.Int64
	firstNs atomic.Int64
	lastNs  atomic.Int64
}

// NewCoordinator validates cfg, regenerates the shared network, and starts
// listening on addr (use "127.0.0.1:0" for tests). Call Addr for the bound
// address and Serve to run the protocol.
func NewCoordinator(cfg Config, addr string) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	netw, err := netgen.ByName(cfg.NetName)
	if err != nil {
		return nil, err
	}
	layout, err := NewLayout(netw, cfg.Strategy, cfg.Eps)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	nStripes := cfg.Shards
	if nStripes <= 1 {
		nStripes = 1
	}
	if n := int(layout.NumCounters()); nStripes > n && n > 0 {
		nStripes = n // more stripes than counters buys nothing
	}
	co := &Coordinator{
		cfg:     cfg,
		net:     netw,
		layout:  layout,
		ln:      ln,
		sqrtK:   math.Sqrt(float64(cfg.Sites)),
		stripes: make([]coStripe, nStripes),
	}
	co.reported = make([][]int64, cfg.Sites)
	for i := range co.reported {
		co.reported[i] = make([]int64, layout.NumCounters())
	}
	return co, nil
}

// Addr returns the listening address.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close releases the listener.
func (co *Coordinator) Close() error { return co.ln.Close() }

// Serve accepts the configured number of sites, runs the training protocol
// to completion, distributes closing stats, and returns the run result.
// Queries may be issued concurrently with Serve at any time.
func (co *Coordinator) Serve() (Result, error) {
	type siteConn struct {
		raw net.Conn
		c   *conn
		id  uint32
	}
	conns := make([]siteConn, 0, co.cfg.Sites)
	defer func() {
		for _, sc := range conns {
			sc.raw.Close()
		}
	}()

	for len(conns) < co.cfg.Sites {
		raw, err := co.ln.Accept()
		if err != nil {
			return Result{}, fmt.Errorf("cluster: accept: %w", err)
		}
		c := newConn(raw)
		t, payload, err := c.readFrame()
		if err != nil {
			raw.Close()
			return Result{}, fmt.Errorf("cluster: hello: %w", err)
		}
		if t != frameHello {
			raw.Close()
			return Result{}, fmt.Errorf("cluster: first frame %d, want hello", t)
		}
		id, err := decodeHello(payload)
		if err != nil {
			raw.Close()
			return Result{}, err
		}
		if id >= uint32(co.cfg.Sites) {
			raw.Close()
			return Result{}, fmt.Errorf("cluster: site id %d out of range", id)
		}
		// The handshake is done: widen the read limit from the control-frame
		// bound to the largest update frame the layout admits.
		c.setReadLimit(updatesPayloadCap(co.layout.NumCounters()))
		conns = append(conns, siteConn{raw: raw, c: c, id: id})
	}

	// Distribute start configs (events split per Config.eventsFor).
	for _, sc := range conns {
		start := StartConfig{
			NetName:       co.cfg.NetName,
			CPTSeed:       co.cfg.CPTSeed,
			Strategy:      uint8(co.cfg.Strategy),
			Eps:           co.cfg.Eps,
			Delta:         co.cfg.Delta,
			Sites:         uint32(co.cfg.Sites),
			Site:          sc.id,
			Events:        uint64(co.cfg.eventsFor(sc.id)),
			StreamSeed:    co.cfg.StreamSeed,
			LatencyMicros: co.cfg.LatencyMicros,
			BatchEvents:   uint32(co.cfg.SiteBatchEvents),
		}
		if err := sc.c.writeFrame(frameStart, encodeStart(start)); err != nil {
			return Result{}, err
		}
		if err := sc.c.flush(); err != nil {
			return Result{}, err
		}
	}

	// One reader goroutine per connection: frames are batch-decoded and
	// folded into the striped reported matrix, so k sites ingest in parallel
	// while queries run against the same stripes.
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	for i, sc := range conns {
		wg.Add(1)
		go func(i int, sc siteConn) {
			defer wg.Done()
			errs[i] = co.serveSite(sc.c, sc.id)
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	stats := Stats{
		Frames:  co.frames.Load(),
		Updates: co.updates.Load(),
		Events:  co.events.Load(),
	}
	for _, sc := range conns {
		if err := sc.c.writeFrame(frameStats, encodeStats(stats)); err != nil {
			return Result{}, err
		}
		if err := sc.c.flush(); err != nil {
			return Result{}, err
		}
	}

	runtime := time.Duration(co.lastNs.Load() - co.firstNs.Load())
	if runtime < 0 {
		runtime = 0
	}
	res := Result{Stats: stats, Runtime: runtime}
	if runtime > 0 {
		res.Throughput = float64(stats.Events) / runtime.Seconds()
	}
	return res, nil
}

// serveSite consumes one site's frames until its Done marker, decoding both
// the version-1 per-event format and the version-2 coalesced format.
func (co *Coordinator) serveSite(c *conn, site uint32) error {
	var ups []Update
	buckets := make([][]Update, len(co.stripes)) // per-stripe scratch, reused across frames
	for {
		t, payload, err := c.readFrame()
		if err != nil {
			return fmt.Errorf("cluster: site %d stream: %w", site, err)
		}
		now := time.Now().UnixNano()
		co.firstNs.CompareAndSwap(0, now)
		co.lastNs.Store(now)
		co.frames.Add(1)
		switch t {
		case frameUpdates:
			ups, err = decodeUpdates(ups, payload)
			if err != nil {
				return err
			}
			if err := co.applyUpdates(site, ups, buckets); err != nil {
				return err
			}
			co.updates.Add(int64(len(ups)))
		case frameUpdates2:
			ups, err = decodeUpdates2(ups, payload, co.layout.NumCounters())
			if err != nil {
				return err
			}
			if err := co.applyUpdates(site, ups, buckets); err != nil {
				return err
			}
			co.updates.Add(int64(len(ups)))
		case frameDone:
			_, events, err := decodeDone(payload)
			if err != nil {
				return err
			}
			co.events.Add(events)
			return nil
		default:
			return fmt.Errorf("cluster: site %d unexpected frame %d", site, t)
		}
	}
}

// applyUpdates folds one decoded frame into the reported matrix: one pass
// buckets the frame's updates by stripe (buckets is the caller's reusable
// per-stripe scratch), then each touched stripe is locked once, applied in
// ascending stripe order, and has its version bumped. Reports are monotone
// local counts; the maximum is kept to stay robust to reordering within a
// stream.
func (co *Coordinator) applyUpdates(site uint32, ups []Update, buckets [][]Update) error {
	total := co.layout.NumCounters()
	for _, u := range ups {
		if u.Counter >= total {
			return fmt.Errorf("cluster: site %d counter %d out of range", site, u.Counter)
		}
	}
	row := co.reported[site]
	nStripes := uint32(len(co.stripes))
	if nStripes == 1 {
		st := &co.stripes[0]
		st.mu.Lock()
		for _, u := range ups {
			if u.LocalCount > row[u.Counter] {
				row[u.Counter] = u.LocalCount
			}
		}
		st.version.Add(1)
		st.mu.Unlock()
		return nil
	}
	for _, u := range ups {
		s := u.Counter % nStripes
		buckets[s] = append(buckets[s], u)
	}
	for s := range buckets {
		b := buckets[s]
		if len(b) == 0 {
			continue
		}
		st := &co.stripes[s]
		st.mu.Lock()
		for _, u := range b {
			if u.LocalCount > row[u.Counter] {
				row[u.Counter] = u.LocalCount
			}
		}
		st.version.Add(1)
		st.mu.Unlock()
		buckets[s] = b[:0]
	}
	return nil
}

// stripeOf returns the stripe guarding counter id.
func (co *Coordinator) stripeOf(id uint32) *coStripe {
	return &co.stripes[id%uint32(len(co.stripes))]
}

// estimateLocked computes counter id's estimate from the reported matrix:
// the sum over sites of the last reported local count plus the trailing-gap
// adjustment (see layout.go). Callers hold id's stripe lock.
func (co *Coordinator) estimateLocked(id uint32) float64 {
	eps := co.layout.Eps(id)
	est := 0.0
	for site := 0; site < co.cfg.Sites; site++ {
		r := co.reported[site][id]
		est += float64(r) + adjustmentSqrtK(co.cfg.Sites, co.sqrtK, eps, r)
	}
	return est
}

// Estimate returns the coordinator's current estimate of a counter's global
// count, read live under the counter's stripe lock. Valid at any time —
// during a run it reflects the reports received so far.
func (co *Coordinator) Estimate(id uint32) float64 {
	st := co.stripeOf(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	return co.estimateLocked(id)
}

// snapFresh reports whether snap matches every stripe's live version.
func (co *Coordinator) snapFresh(snap *estSnapshot) bool {
	for s := range co.stripes {
		if snap.versions[s] != co.stripes[s].version.Load() {
			return false
		}
	}
	return true
}

// snapshot returns a current estimate snapshot, rebuilding only the stripes
// whose version moved since the cached one was built. Mirrors
// core.Tracker's snapshot machinery: repeated queries against a quiescent
// coordinator share one snapshot with no lock traffic, and a query racing
// ingestion rebuilds exactly the dirty stripes. Like the tracker, a
// snapshot taken while frames are in flight may interleave stripes from
// slightly different stream positions — the same consistency the per-cell
// Estimate path has.
func (co *Coordinator) snapshot() *estSnapshot {
	if s := co.snap.Load(); s != nil && co.snapFresh(s) {
		return s
	}
	co.rebuildMu.Lock()
	defer co.rebuildMu.Unlock()
	old := co.snap.Load()
	if old != nil && co.snapFresh(old) {
		return old
	}
	total := co.layout.NumCounters()
	ns := &estSnapshot{
		versions: make([]uint64, len(co.stripes)),
		est:      make([]float64, total),
	}
	if old != nil {
		copy(ns.est, old.est) // start from the previous estimates; dirty stripes overwrite
	}
	nStripes := uint32(len(co.stripes))
	for s := range co.stripes {
		st := &co.stripes[s]
		if old != nil {
			if v := st.version.Load(); v == old.versions[s] {
				ns.versions[s] = v // inherited via the bulk copy above
				continue
			}
		}
		st.mu.Lock()
		// Site-major walk: one pass per site row keeps the reads contiguous
		// within a row instead of striding across every site's row once per
		// counter. Accumulation order (site 0..k-1 from zero) matches
		// estimateLocked's, so both paths stay bit-identical.
		for id := uint32(s); id < total; id += nStripes {
			ns.est[id] = 0
		}
		for site := 0; site < co.cfg.Sites; site++ {
			row := co.reported[site]
			for id := uint32(s); id < total; id += nStripes {
				r := row[id]
				ns.est[id] += float64(r) + adjustmentSqrtK(co.cfg.Sites, co.sqrtK, co.layout.Eps(id), r)
			}
		}
		ns.versions[s] = st.version.Load() // under mu: stable
		st.mu.Unlock()
	}
	co.snap.Store(ns)
	return ns
}

// QueryProb answers a joint-probability query from the tracked counters
// (Algorithm 3 over the cluster state), served from the version-validated
// estimate snapshot. Valid at any time: during a live run the answer
// reflects the reports received so far — the paper's query-at-any-time
// model — and after Serve returns it is the final estimate.
func (co *Coordinator) QueryProb(x []int) float64 {
	est := co.snapshot().est
	p := 1.0
	for i := 0; i < co.net.Len(); i++ {
		pidx := co.net.ParentIndex(i, x)
		den := est[co.layout.ParID(i, pidx)]
		if den <= 0 {
			return 0
		}
		p *= est[co.layout.PairID(i, x[i], pidx)] / den
	}
	return p
}

// EstimatedModel materializes the tracked parameters into a normalized
// bn.Model, built from the same estimate snapshot QueryProb reads and
// cached per snapshot (repeated calls between reports are free). Rows whose
// parent configuration has no mass become uniform. Valid at any time, like
// QueryProb.
func (co *Coordinator) EstimatedModel() (*bn.Model, error) {
	snap := co.snapshot()
	if m := snap.model.Load(); m != nil {
		return m, nil
	}
	est := snap.est
	m, err := bn.NewNormalizedModel(co.net, func(i int, tbl []float64) {
		j, k := co.net.Card(i), co.net.ParentCard(i)
		for pidx := 0; pidx < k; pidx++ {
			den := est[co.layout.ParID(i, pidx)]
			for v := 0; v < j; v++ {
				if den > 0 {
					tbl[pidx*j+v] = est[co.layout.PairID(i, v, pidx)] / den
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	snap.model.Store(m)
	return m, nil
}

// LiveStats returns a point-in-time snapshot of the protocol counters —
// frames, update entries and completed events seen so far. Safe to call
// while Serve is running; Events counts only sites that already sent their
// Done marker.
func (co *Coordinator) LiveStats() Stats {
	return Stats{
		Frames:  co.frames.Load(),
		Updates: co.updates.Load(),
		Events:  co.events.Load(),
	}
}

// Network returns the shared network structure.
func (co *Coordinator) Network() *bn.Network { return co.net }
