package cluster

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
)

// Config parameterizes a cluster run.
type Config struct {
	// NetName is the netgen registry name of the network to learn.
	NetName string
	// CPTSeed seeds the shared ground-truth parameters.
	CPTSeed uint64
	// Strategy selects the tracking algorithm.
	Strategy core.Strategy
	// Eps, Delta are the approximation budget.
	Eps, Delta float64
	// Sites is k.
	Sites int
	// Events is the total stream length, split evenly across sites.
	Events int
	// StreamSeed seeds the per-site event streams.
	StreamSeed uint64
	// LatencyMicros adds an artificial per-frame delay at sites, emulating
	// WAN round-trips on a loopback deployment.
	LatencyMicros uint32
}

func (c Config) validate() error {
	if c.NetName == "" {
		return fmt.Errorf("cluster: empty network name")
	}
	if c.Sites < 1 {
		return fmt.Errorf("cluster: sites = %d, want >= 1", c.Sites)
	}
	if c.Events < 1 {
		return fmt.Errorf("cluster: events = %d, want >= 1", c.Events)
	}
	if c.Strategy != core.ExactMLE && !(c.Eps > 0 && c.Eps < 1) {
		return fmt.Errorf("cluster: eps = %v, want 0 < eps < 1", c.Eps)
	}
	return nil
}

// Result summarizes a completed cluster run.
type Result struct {
	Stats Stats
	// Runtime is the wall-clock time from the first to the last frame
	// received by the coordinator (the paper's runtime metric).
	Runtime time.Duration
	// Throughput is events per second over Runtime.
	Throughput float64
}

// Coordinator is the query-answering hub of the monitoring system.
type Coordinator struct {
	cfg    Config
	net    *bn.Network
	layout *Layout
	ln     net.Listener

	// reported[site][counter] is the site's last reported local count.
	reported [][]int64
	// est caches the post-Serve estimate of every counter (see estimates).
	estOnce sync.Once
	est     []float64

	frames  atomic.Int64
	updates atomic.Int64
	events  atomic.Int64
	firstNs atomic.Int64
	lastNs  atomic.Int64
}

// NewCoordinator validates cfg, regenerates the shared network, and starts
// listening on addr (use "127.0.0.1:0" for tests). Call Addr for the bound
// address and Serve to run the protocol.
func NewCoordinator(cfg Config, addr string) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	netw, err := netgen.ByName(cfg.NetName)
	if err != nil {
		return nil, err
	}
	layout, err := NewLayout(netw, cfg.Strategy, cfg.Eps)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{cfg: cfg, net: netw, layout: layout, ln: ln}
	co.reported = make([][]int64, cfg.Sites)
	for i := range co.reported {
		co.reported[i] = make([]int64, layout.NumCounters())
	}
	return co, nil
}

// Addr returns the listening address.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close releases the listener.
func (co *Coordinator) Close() error { return co.ln.Close() }

// Serve accepts the configured number of sites, runs the training protocol
// to completion, distributes closing stats, and returns the run result.
func (co *Coordinator) Serve() (Result, error) {
	type siteConn struct {
		raw net.Conn
		c   *conn
		id  uint32
	}
	conns := make([]siteConn, 0, co.cfg.Sites)
	defer func() {
		for _, sc := range conns {
			sc.raw.Close()
		}
	}()

	for len(conns) < co.cfg.Sites {
		raw, err := co.ln.Accept()
		if err != nil {
			return Result{}, fmt.Errorf("cluster: accept: %w", err)
		}
		c := newConn(raw)
		t, payload, err := c.readFrame()
		if err != nil {
			raw.Close()
			return Result{}, fmt.Errorf("cluster: hello: %w", err)
		}
		if t != frameHello {
			raw.Close()
			return Result{}, fmt.Errorf("cluster: first frame %d, want hello", t)
		}
		id, err := decodeHello(payload)
		if err != nil {
			raw.Close()
			return Result{}, err
		}
		if id >= uint32(co.cfg.Sites) {
			raw.Close()
			return Result{}, fmt.Errorf("cluster: site id %d out of range", id)
		}
		conns = append(conns, siteConn{raw: raw, c: c, id: id})
	}

	// Distribute start configs: events split as evenly as possible.
	per := co.cfg.Events / co.cfg.Sites
	rem := co.cfg.Events % co.cfg.Sites
	for _, sc := range conns {
		ev := per
		if int(sc.id) < rem {
			ev++
		}
		start := StartConfig{
			NetName:       co.cfg.NetName,
			CPTSeed:       co.cfg.CPTSeed,
			Strategy:      uint8(co.cfg.Strategy),
			Eps:           co.cfg.Eps,
			Delta:         co.cfg.Delta,
			Sites:         uint32(co.cfg.Sites),
			Site:          sc.id,
			Events:        uint64(ev),
			StreamSeed:    co.cfg.StreamSeed,
			LatencyMicros: co.cfg.LatencyMicros,
		}
		if err := sc.c.writeFrame(frameStart, encodeStart(start)); err != nil {
			return Result{}, err
		}
		if err := sc.c.flush(); err != nil {
			return Result{}, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	for i, sc := range conns {
		wg.Add(1)
		go func(i int, sc siteConn) {
			defer wg.Done()
			errs[i] = co.serveSite(sc.c, sc.id)
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	stats := Stats{
		Frames:  co.frames.Load(),
		Updates: co.updates.Load(),
		Events:  co.events.Load(),
	}
	for _, sc := range conns {
		if err := sc.c.writeFrame(frameStats, encodeStats(stats)); err != nil {
			return Result{}, err
		}
		if err := sc.c.flush(); err != nil {
			return Result{}, err
		}
	}

	runtime := time.Duration(co.lastNs.Load() - co.firstNs.Load())
	if runtime < 0 {
		runtime = 0
	}
	res := Result{Stats: stats, Runtime: runtime}
	if runtime > 0 {
		res.Throughput = float64(stats.Events) / runtime.Seconds()
	}
	return res, nil
}

// serveSite consumes one site's frames until its Done marker.
func (co *Coordinator) serveSite(c *conn, site uint32) error {
	row := co.reported[site]
	var ups []Update
	for {
		t, payload, err := c.readFrame()
		if err != nil {
			return fmt.Errorf("cluster: site %d stream: %w", site, err)
		}
		now := time.Now().UnixNano()
		co.firstNs.CompareAndSwap(0, now)
		co.lastNs.Store(now)
		co.frames.Add(1)
		switch t {
		case frameUpdates:
			ups, err = decodeUpdates(ups, payload)
			if err != nil {
				return err
			}
			for _, u := range ups {
				if u.Counter >= co.layout.NumCounters() {
					return fmt.Errorf("cluster: site %d counter %d out of range", site, u.Counter)
				}
				// Reports are monotone local counts; keep the maximum to be
				// robust to reordering within the stream.
				if u.LocalCount > row[u.Counter] {
					row[u.Counter] = u.LocalCount
				}
			}
			co.updates.Add(int64(len(ups)))
		case frameDone:
			_, events, err := decodeDone(payload)
			if err != nil {
				return err
			}
			co.events.Add(events)
			return nil
		default:
			return fmt.Errorf("cluster: site %d unexpected frame %d", site, t)
		}
	}
}

// Estimate returns the coordinator's estimate of a counter's global count:
// the sum over sites of the last reported local count plus the trailing-gap
// adjustment (see layout.go). Only valid after Serve returns.
func (co *Coordinator) Estimate(id uint32) float64 {
	eps := co.layout.Eps(id)
	sqrtK := math.Sqrt(float64(co.cfg.Sites))
	est := 0.0
	for site := 0; site < co.cfg.Sites; site++ {
		r := co.reported[site][id]
		est += float64(r) + adjustmentSqrtK(co.cfg.Sites, sqrtK, eps, r)
	}
	return est
}

// estimates materializes every counter's estimate in one site-major pass
// over the flat reported rows — each site's row is walked sequentially
// (cache-friendly against the [site][counter] layout) instead of striding
// across all site rows once per counter as the per-cell Estimate does.
// Computed once on first use and cached: query entry points are only valid
// after Serve returns, when the reported state is quiescent.
func (co *Coordinator) estimates() []float64 {
	co.estOnce.Do(func() {
		k := co.cfg.Sites
		sqrtK := math.Sqrt(float64(k))
		est := make([]float64, co.layout.NumCounters())
		for site := 0; site < k; site++ {
			for c, r := range co.reported[site] {
				est[c] += float64(r) + adjustmentSqrtK(k, sqrtK, co.layout.Eps(uint32(c)), r)
			}
		}
		co.est = est
	})
	return co.est
}

// QueryProb answers a joint-probability query from the tracked counters
// (Algorithm 3 over the cluster state), served from the batch-materialized
// estimate vector — after the one-time site-major pass, each query is pure
// array lookups. Only valid after Serve returns.
func (co *Coordinator) QueryProb(x []int) float64 {
	est := co.estimates()
	p := 1.0
	for i := 0; i < co.net.Len(); i++ {
		pidx := co.net.ParentIndex(i, x)
		den := est[co.layout.ParID(i, pidx)]
		if den <= 0 {
			return 0
		}
		p *= est[co.layout.PairID(i, x[i], pidx)] / den
	}
	return p
}

// Network returns the shared network structure.
func (co *Coordinator) Network() *bn.Network { return co.net }
