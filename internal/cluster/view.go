package cluster

import (
	"time"

	"distbayes/internal/bn"
)

// Snapshot is an exported read handle on one immutable estimate snapshot —
// the coordinator's version-validated snapshot surfaced for the serving
// layer (internal/serve), mirroring core.Tracker's Snapshot. Valid at any
// time: mid-run it reflects the reports received so far (the paper's
// query-at-any-time model), after Serve returns it is the final estimate.
type Snapshot struct {
	co *Coordinator
	s  *estSnapshot
}

// AcquireSnapshot returns the current estimate snapshot, rebuilding only
// the stripes whose version moved since the cached one was built (a
// sequential-coordinator rebuild walks the layout's equal-eps sections in
// one bulk pass). Estimate snapshots are garbage-collected, so Release is
// a no-op — it exists to satisfy the serving layer's Snapshot contract.
func (co *Coordinator) AcquireSnapshot() *Snapshot {
	return &Snapshot{co: co, s: co.snapshot()}
}

// Factor returns the tracked estimate of P[X_i = v | parent config pidx]:
// the pair estimate over the parent estimate, or 0 when the parent
// configuration has no mass — exactly the factor the coordinator's own
// QueryProb multiplies.
func (s *Snapshot) Factor(i, v, pidx int) float64 {
	den := s.s.est[s.co.layout.ParID(i, pidx)]
	if den <= 0 {
		return 0
	}
	return s.s.est[s.co.layout.PairID(i, v, pidx)] / den
}

// Version identifies the reported-count state the snapshot was built from;
// monotone non-decreasing across acquisitions from one coordinator.
func (s *Snapshot) Version() uint64 { return s.s.version }

// BuiltAt is when the snapshot's estimates were computed.
func (s *Snapshot) BuiltAt() time.Time { return s.s.builtAt }

// Model returns the snapshot's estimates normalized into a bn.Model, built
// at most once per snapshot (the same cache EstimatedModel uses); immutable.
func (s *Snapshot) Model() (*bn.Model, error) {
	return s.co.modelFor(s.s)
}

// Network returns the tracked base network — fixed for the run; the
// learned-structure view is LearnedSnapshot, not this.
func (s *Snapshot) Network() *bn.Network { return s.co.net }

// StructureEpoch is always 0: the flat coordinator snapshot tracks the
// configured base structure, which never changes.
func (s *Snapshot) StructureEpoch() uint64 { return 0 }

// Release is a no-op: estimate snapshots carry no pooled resources.
func (s *Snapshot) Release() {}
