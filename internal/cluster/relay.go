package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
)

// ErrRelayClosed is returned by Relay.Run when Close is called.
var ErrRelayClosed = errors.New("cluster: relay closed")

// RelayConfig parameterizes one aggregation-tree relay.
type RelayConfig struct {
	// ID identifies the relay in diagnostics (it lives in its own namespace,
	// never colliding with site ids).
	ID uint32
	// Parent is the upstream address: the coordinator, or another relay for
	// deeper trees.
	Parent string
	// FlushInterval bounds how long folded state may wait before it ships
	// upstream — the staleness a site's report gains per tier, of the same
	// kind as the batching-window delay the (ε, δ) envelope already absorbs.
	// The relay flushes earlier whenever every active downstream child has
	// delivered a frame since the last flush (one full round), so under
	// steady streaming the upstream frame rate is the downstream rate
	// divided by the branching factor, and the interval only pays for
	// stragglers. 0 selects the default (2ms).
	FlushInterval time.Duration
	// DialAttempts bounds consecutive failed upstream dials; 0 selects the
	// default (8).
	DialAttempts int
	// RetryBase and RetryCap shape the upstream redial backoff, as on Site.
	// Zero selects the defaults (20ms, 1s).
	RetryBase, RetryCap time.Duration
}

// relayDown is one downstream connection: a site, or a child relay carrying
// many sites.
type relayDown struct {
	raw net.Conn
	c   *conn
	// isRelay marks a child-relay connection: control frames going down are
	// wrapped in frameRelayCtl instead of written raw.
	isRelay bool
	// wmu serializes writers (ctl deliveries race each other).
	wmu sync.Mutex
}

// relaySiteState is the relay's folded view of one downstream site. The fold
// is the coordinator's idempotent max-merge over the site's monotone counts,
// applied mid-tier: the folded vector always equals the site's latest
// decided report per counter, so fold-then-forward cannot change any final
// estimate. Per-site vectors are never mixed across sites — the coordinator's
// trailing-gap adjustment is nonlinear per site, so summing children would
// change estimates; coalescing happens at the frame level (many sites, one
// grouped frame), not the counter level.
type relaySiteState struct {
	// known marks a site id the relay has seen traffic for.
	known bool
	// counts[id] is the folded latest reported local count (lazily sized to
	// the layout on first contact).
	counts []int64
	// dirty[id] marks counts mutated since the last upstream flush; dirtyAny
	// short-circuits clean sites.
	dirty    []bool
	dirtyAny bool
	// Structure-learning overlay fold (sized lazily; unused when off).
	structCounts []int64
	structDirty  []bool
	structAny    bool
	structEvents uint64
	// down is the current downstream connection carrying this site (nil
	// while disconnected). Many sites may share one child-relay connection.
	down *relayDown
	// pending is the site's last join (hello/resume) still awaiting the
	// parent's ctl reply; re-forwarded if the upstream connection is
	// replaced first, so a join can never be lost in a reconnect window.
	pendingKind  byte
	pendingInner []byte
	hasPending   bool
	// done/doneEvents record a forwarded Done marker, re-forwarded on every
	// upstream reconnect (the coordinator deduplicates).
	done       bool
	doneEvents int64
}

// Relay is a mid-tier node of the aggregation tree (the sensor-network
// collaborative-training architecture): downstream it speaks the
// coordinator's side of the site protocol — sites (and deeper relays) dial
// it exactly as they would the coordinator, handshake unchanged — and
// upstream it is a single connection to its parent carrying the whole
// subtree's traffic.
//
// Per-site frameUpdates/frameUpdates2/frameStructStats frames fold locally
// into per-site cumulative vectors and ship upstream coalesced: one grouped
// frameRelayUpdates frame per flush round carries every dirty site, so the
// parent's frame rate divides by the relay's branching factor while every
// final estimate stays bit-identical (monotone counts, idempotent max-merge
// — the same invariants that make resume replays exact).
//
// The relay is disposable: it holds no state a site cannot regenerate. A
// severed upstream link reconnects and replays the full folded vectors plus
// the membership markers (joins still pending, reattaches, Done markers); a
// killed and restarted relay comes back empty and is repopulated by its
// sites' own resume replays. Both paths land in the coordinator's max-merge,
// so chaos on a relay link costs retransmitted frames, never accuracy.
type Relay struct {
	cfg RelayConfig
	ln  net.Listener

	// Immutable after Run's first upstream handshake.
	base        StartConfig
	layout      *Layout
	structCells uint32
	innerCap    uint32

	// mu guards sites and active.
	mu    sync.Mutex
	sites []relaySiteState
	// active counts attached, not-done downstream sites — the flush round
	// size.
	active int

	// upMu serializes upstream writers; up is nil between a connection loss
	// and the reconnect.
	upMu  sync.Mutex
	up    *conn
	upRaw net.Conn
	upBuf []byte

	// framesSinceFlush counts downstream data frames folded since the last
	// upstream flush; a flush round is ready once it reaches active.
	framesSinceFlush atomic.Int64
	flushReq         chan struct{}

	// DownFrames / UpFrames count data frames folded from below and shipped
	// above — the branching-factor reduction, surfaced for tests and the
	// federation benchmark.
	DownFrames atomic.Int64
	UpFrames   atomic.Int64

	closed    atomic.Bool
	closeOnce sync.Once
	done      chan struct{}
}

// NewRelay validates cfg and starts listening on addr (use "127.0.0.1:0" in
// tests). Call Addr for the bound address — sites dial it exactly as they
// would the coordinator — and Run to connect upstream and serve.
func NewRelay(cfg RelayConfig, addr string) (*Relay, error) {
	if cfg.Parent == "" {
		return nil, fmt.Errorf("cluster: relay needs a parent address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Relay{
		cfg:      cfg,
		ln:       ln,
		flushReq: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the listening address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close stops the relay: the listener, the upstream connection and every
// downstream connection are closed. Safe to call at any time and more than
// once. Sites that were routed through the relay reconnect elsewhere (or to
// a restarted relay on the same address) and resume.
func (r *Relay) Close() error {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		close(r.done)
		r.ln.Close()
		r.upMu.Lock()
		if r.upRaw != nil {
			r.upRaw.Close()
		}
		r.upMu.Unlock()
		r.mu.Lock()
		for i := range r.sites {
			if d := r.sites[i].down; d != nil {
				d.raw.Close()
			}
		}
		r.mu.Unlock()
	})
	return nil
}

func (r *Relay) flushInterval() time.Duration {
	if r.cfg.FlushInterval > 0 {
		return r.cfg.FlushInterval
	}
	return 2 * time.Millisecond
}

func (r *Relay) dialAttempts() int {
	if r.cfg.DialAttempts > 0 {
		return r.cfg.DialAttempts
	}
	return 8
}

func (r *Relay) backoff(n int, jrng *bn.RNG) time.Duration {
	base, cap := r.cfg.RetryBase, r.cfg.RetryCap
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	d := base << uint(min(n, 20))
	if d > cap || d <= 0 {
		d = cap
	}
	return d + time.Duration(jrng.Float64()*0.5*float64(d))
}

// Run connects upstream, learns the run's base configuration, and serves the
// subtree until Close. The upstream connection is supervised: a severed link
// redials with backoff and replays the relay's full folded state (safe —
// max-merge absorbs the replay), so a transient parent outage is invisible
// to the subtree.
func (r *Relay) Run() error {
	jrng := bn.NewRNG(0x9e1a7bad ^ (uint64(r.cfg.ID) * 0x9e3779b97f4a7c15))
	if err := r.connectUp(jrng, true); err != nil {
		return err
	}
	go r.acceptLoop()
	go r.flushLoop()
	return r.upReadLoop(jrng)
}

// connectUp dials the parent, introduces the relay, and decodes the base run
// configuration. On the first connection it derives the fold layout; later
// reconnects verify the run still matches.
func (r *Relay) connectUp(jrng *bn.RNG, first bool) error {
	var lastErr error
	for n := 0; n < r.dialAttempts(); n++ {
		if n > 0 {
			time.Sleep(r.backoff(n-1, jrng))
		}
		if r.closed.Load() {
			return ErrRelayClosed
		}
		raw, err := net.Dial("tcp", r.cfg.Parent)
		if err != nil {
			lastErr = err
			continue
		}
		c := newConn(raw)
		if err := c.writeFrame(frameRelayHello, encodeHello(r.cfg.ID)); err == nil {
			err = c.flush()
		} else {
			raw.Close()
			lastErr = err
			continue
		}
		t, payload, err := c.readFrame()
		if err != nil {
			raw.Close()
			lastErr = err
			continue
		}
		if t != frameStart {
			raw.Close()
			return fmt.Errorf("cluster: relay %d got frame %d, want start", r.cfg.ID, t)
		}
		base, err := decodeStart(payload)
		if err != nil {
			raw.Close()
			return err
		}
		if first {
			if err := r.initFromBase(base); err != nil {
				raw.Close()
				return err
			}
		} else if base.NetName != r.base.NetName || base.Sites != r.base.Sites {
			raw.Close()
			return fmt.Errorf("cluster: relay %d reconnected to a different run (%s/%d sites, was %s/%d)",
				r.cfg.ID, base.NetName, base.Sites, r.base.NetName, r.base.Sites)
		}
		// Ctl frames wrap small control payloads only; the grouped data
		// frames travel up, never down.
		c.setReadLimit(maxControlFrame + 16)
		r.upMu.Lock()
		if r.upRaw != nil {
			r.upRaw.Close()
		}
		r.upRaw, r.up = raw, c
		r.upMu.Unlock()
		if r.closed.Load() {
			raw.Close()
			return ErrRelayClosed
		}
		return nil
	}
	return fmt.Errorf("cluster: relay %d dial parent: %w", r.cfg.ID, lastErr)
}

// initFromBase derives the fold layout from the base run configuration —
// the same deterministic regeneration a site performs.
func (r *Relay) initFromBase(base StartConfig) error {
	netw, err := netgen.ByName(base.NetName)
	if err != nil {
		return err
	}
	layout, err := NewLayout(netw, core.Strategy(base.Strategy), base.Eps)
	if err != nil {
		return err
	}
	r.base = base
	r.layout = layout
	r.innerCap = updatesPayloadCap(layout.NumCounters())
	if base.StructBatchEvents > 0 {
		sl, err := NewStructLayout(netw)
		if err != nil {
			return err
		}
		r.structCells = sl.Cells()
		if sc := structPayloadCap(r.structCells); sc > r.innerCap {
			r.innerCap = sc
		}
	}
	r.sites = make([]relaySiteState, base.Sites)
	return nil
}

// upReadLoop owns the upstream read side: it routes ctl frames down to the
// named site and reconnects (with full replay) when the link dies.
func (r *Relay) upReadLoop(jrng *bn.RNG) error {
	for {
		r.upMu.Lock()
		c := r.up
		r.upMu.Unlock()
		if c == nil {
			return ErrRelayClosed
		}
		t, payload, err := c.readFrame()
		if err != nil {
			if r.closed.Load() {
				return nil
			}
			if err := r.connectUp(jrng, false); err != nil {
				if r.closed.Load() {
					return nil
				}
				return err
			}
			r.replayUp()
			continue
		}
		switch t {
		case frameRelayCtl:
			site, innerType, inner, err := decodeRelayWrapped(payload)
			if err != nil || site >= uint32(len(r.sites)) {
				continue // garbage ctl: drop; the peer validates its own state
			}
			r.deliver(site, innerType, inner)
		default:
			// Unknown downstream control traffic: ignore (append-only
			// protocol discipline — a newer parent may know more frames).
		}
	}
}

// deliver routes one unwrapped control frame to the site's downstream
// connection, re-wrapping it when the next hop is a child relay.
func (r *Relay) deliver(site uint32, innerType byte, inner []byte) {
	r.mu.Lock()
	s := &r.sites[site]
	if innerType == frameStart || innerType == frameResumeAck {
		s.hasPending = false
		s.pendingInner = nil
	}
	d := s.down
	r.mu.Unlock()
	if d == nil {
		return
	}
	d.wmu.Lock()
	var err error
	if d.isRelay {
		err = d.c.writeFrame(frameRelayCtl, encodeRelayWrapped(site, innerType, inner))
	} else {
		err = d.c.writeFrame(innerType, inner)
	}
	if err == nil {
		d.c.flush()
	}
	d.wmu.Unlock()
}

// forwardJoin ships one wrapped join upstream. Write errors are dropped: the
// upstream reader notices the dead link and the reconnect replay re-forwards
// every join that still matters (pending ones, reattaches, Done markers).
func (r *Relay) forwardJoin(site uint32, kind byte, inner []byte) {
	payload := encodeRelayWrapped(site, kind, inner)
	r.upMu.Lock()
	if r.up != nil {
		if err := r.up.writeFrame(frameRelayJoin, payload); err == nil {
			r.up.flush()
		}
	}
	r.upMu.Unlock()
}

// replayUp re-establishes the subtree's state on a fresh upstream
// connection, in the order the coordinator relies on: membership first
// (pending joins re-forwarded verbatim, already-admitted sites reattached),
// then the full folded vectors, then the Done markers — so a Done can never
// overtake the final counts it summarizes.
func (r *Relay) replayUp() {
	type j struct {
		site  uint32
		kind  byte
		inner []byte
	}
	var joins, dones []j
	r.mu.Lock()
	for i := range r.sites {
		s := &r.sites[i]
		if !s.known {
			continue
		}
		switch {
		case s.hasPending:
			joins = append(joins, j{uint32(i), s.pendingKind, s.pendingInner})
		case s.down != nil || s.done:
			joins = append(joins, j{uint32(i), relayJoinReattach, nil})
		}
		// Full replay: every nonzero folded count is dirty again. Counts
		// are monotone and the fold is max-merge, so over-shipping is free.
		for id, n := range s.counts {
			if n != 0 {
				s.dirty[id] = true
				s.dirtyAny = true
			}
		}
		for id, n := range s.structCounts {
			if n != 0 {
				s.structDirty[id] = true
				s.structAny = true
			}
		}
		if s.done {
			dones = append(dones, j{uint32(i), relayJoinDone, encodeDone(uint32(i), s.doneEvents)})
		}
	}
	r.mu.Unlock()
	for _, x := range joins {
		r.forwardJoin(x.site, x.kind, x.inner)
	}
	r.flushUp()
	for _, x := range dones {
		r.forwardJoin(x.site, x.kind, x.inner)
	}
}

// acceptLoop admits downstream connections until the listener closes.
func (r *Relay) acceptLoop() {
	for {
		raw, err := r.ln.Accept()
		if err != nil {
			return
		}
		go r.handleDown(raw)
	}
}

// handleDown performs the downstream handshake: sites open with hello or
// resume (forwarded upstream as wrapped joins; the parent's reply routes
// back through deliver), child relays open with relayHello (answered
// locally from the cached base config).
func (r *Relay) handleDown(raw net.Conn) {
	c := newConn(raw)
	t, payload, err := c.readFrame()
	if err != nil {
		raw.Close()
		return
	}
	d := &relayDown{raw: raw, c: c}
	switch t {
	case frameHello, frameResume:
		var site uint32
		if t == frameHello {
			site, err = decodeHello(payload)
		} else {
			var req resumeReq
			req, err = decodeResume(payload)
			site = req.Site
		}
		if err != nil || site >= uint32(len(r.sites)) {
			raw.Close()
			return
		}
		kind := relayJoinHello
		var inner []byte
		if t == frameResume {
			kind = relayJoinResume
			inner = append([]byte(nil), payload...)
		}
		r.attachDown(site, d, kind, inner)
		c.setReadLimit(r.innerCap)
		r.forwardJoin(site, kind, inner)
		if err := r.siteLoop(d, site); err != nil {
			r.detachDown(site, d)
		}
		// A nil return is Done: the connection stays attached, idle, so the
		// closing stats can route down to the site.
	case frameRelayHello:
		// Child relay: it needs the base config we already hold.
		d.isRelay = true
		base := r.base
		base.Site, base.Events = 0, 0
		d.wmu.Lock()
		err := c.writeFrame(frameStart, encodeStart(base))
		if err == nil {
			err = c.flush()
		}
		d.wmu.Unlock()
		if err != nil {
			raw.Close()
			return
		}
		c.setReadLimit(relayPayloadCap(uint32(len(r.sites)), r.innerCap))
		r.childRelayLoop(d)
		// The child link died: every site it carried is detached and the
		// detach forwarded up.
		r.mu.Lock()
		var lostSites []uint32
		for i := range r.sites {
			if r.sites[i].down == d {
				r.sites[i].down = nil
				if !r.sites[i].done {
					lostSites = append(lostSites, uint32(i))
				}
				r.siteDetachedLocked(&r.sites[i])
			}
		}
		r.mu.Unlock()
		raw.Close()
		for _, site := range lostSites {
			r.forwardJoin(site, relayJoinDetach, nil)
		}
	default:
		raw.Close()
	}
}

// attachDown records a site's downstream connection and its pending join.
func (r *Relay) attachDown(site uint32, d *relayDown, kind byte, inner []byte) {
	r.mu.Lock()
	s := &r.sites[site]
	r.ensureSiteLocked(s)
	if s.down != nil && s.down != d && !s.down.isRelay {
		s.down.raw.Close() // superseded; latest wins, as at the coordinator
	}
	if s.down == nil && !s.done {
		r.active++
	}
	s.down = d
	s.hasPending = true
	s.pendingKind = kind
	s.pendingInner = inner
	r.mu.Unlock()
}

// ensureSiteLocked lazily sizes a site's fold vectors. Caller holds r.mu.
func (r *Relay) ensureSiteLocked(s *relaySiteState) {
	s.known = true
	if s.counts == nil {
		s.counts = make([]int64, r.layout.NumCounters())
		s.dirty = make([]bool, r.layout.NumCounters())
	}
	if r.structCells > 0 && s.structCounts == nil {
		s.structCounts = make([]int64, r.structCells)
		s.structDirty = make([]bool, r.structCells)
	}
}

// siteDetachedLocked updates the round accounting when a site's downstream
// connection is lost. Caller holds r.mu.
func (r *Relay) siteDetachedLocked(s *relaySiteState) {
	if !s.done {
		r.active--
	}
}

// detachDown clears a site's downstream connection (if d is still current)
// and forwards the detach so the coordinator arms the site's grace timer.
func (r *Relay) detachDown(site uint32, d *relayDown) {
	r.mu.Lock()
	s := &r.sites[site]
	if s.down != d {
		r.mu.Unlock()
		return
	}
	s.down = nil
	r.siteDetachedLocked(s)
	done := s.done
	r.mu.Unlock()
	d.raw.Close()
	if !done && !r.closed.Load() {
		r.forwardJoin(site, relayJoinDetach, nil)
	}
}

// siteLoop consumes one site connection's data frames, folding them locally.
// A nil return is the site's Done (flushed and forwarded, connection kept);
// an error detaches the connection.
func (r *Relay) siteLoop(d *relayDown, site uint32) error {
	var ups []Update
	for {
		t, payload, err := d.c.readFrame()
		if err != nil {
			return err
		}
		switch t {
		case frameUpdates:
			ups, err = decodeUpdates(ups, payload)
			if err != nil {
				return err
			}
			if err := r.fold(site, ups); err != nil {
				return err
			}
		case frameUpdates2:
			ups, err = decodeUpdates2(ups, payload, r.layout.NumCounters())
			if err != nil {
				return err
			}
			if err := r.fold(site, ups); err != nil {
				return err
			}
		case frameStructStats:
			if r.structCells == 0 {
				return fmt.Errorf("cluster: relay %d: site %d sent struct stats but structure learning is off", r.cfg.ID, site)
			}
			var siteEvents uint64
			siteEvents, ups, err = decodeStructStats(ups, payload, r.structCells)
			if err != nil {
				return err
			}
			r.foldStruct(site, siteEvents, ups)
		case frameDone:
			_, events, err := decodeDone(payload)
			if err != nil {
				return err
			}
			r.siteDone(site, events, payload)
			return nil
		default:
			return fmt.Errorf("cluster: relay %d: site %d unexpected frame %d", r.cfg.ID, site, t)
		}
	}
}

// childRelayLoop consumes a child relay's frames: wrapped joins (bookkept
// locally, forwarded up) and grouped data frames (unwrapped and folded per
// site — the fold composes across tiers because max-merge is associative).
func (r *Relay) childRelayLoop(d *relayDown) {
	var ups []Update
	var groups []relayGroup
	for {
		t, payload, err := d.c.readFrame()
		if err != nil {
			return
		}
		switch t {
		case frameRelayJoin:
			site, kind, inner, err := decodeRelayWrapped(payload)
			if err != nil || site >= uint32(len(r.sites)) {
				return
			}
			r.childJoin(d, site, kind, inner)
		case frameRelayUpdates:
			groups, err = decodeRelayGroups(groups, payload, uint32(len(r.sites)), r.innerCap)
			if err != nil {
				return
			}
			for _, g := range groups {
				ups, err = decodeUpdates2(ups, g.Payload, r.layout.NumCounters())
				if err != nil {
					return
				}
				if r.fold(g.Site, ups) != nil {
					return
				}
			}
		case frameRelayStruct:
			groups, err = decodeRelayGroups(groups, payload, uint32(len(r.sites)), r.innerCap)
			if err != nil || r.structCells == 0 {
				return
			}
			for _, g := range groups {
				var siteEvents uint64
				siteEvents, ups, err = decodeStructStats(ups, g.Payload, r.structCells)
				if err != nil {
					return
				}
				r.foldStruct(g.Site, siteEvents, ups)
			}
		default:
			return
		}
	}
}

// childJoin bookkeeps one join forwarded by a child relay and passes it up.
func (r *Relay) childJoin(d *relayDown, site uint32, kind byte, inner []byte) {
	switch kind {
	case relayJoinHello, relayJoinResume, relayJoinReattach:
		r.attachDown(site, d, kind, append([]byte(nil), inner...))
		if kind == relayJoinReattach {
			// Reattaches expect no reply; nothing is pending.
			r.mu.Lock()
			r.sites[site].hasPending = false
			r.sites[site].pendingInner = nil
			r.mu.Unlock()
		}
		r.forwardJoin(site, kind, inner)
	case relayJoinDone:
		if _, events, err := decodeDone(inner); err == nil {
			r.siteDone(site, events, inner)
		}
	case relayJoinDetach:
		r.mu.Lock()
		s := &r.sites[site]
		cur := s.down == d
		if cur {
			s.down = nil
			r.siteDetachedLocked(s)
		}
		r.mu.Unlock()
		if cur {
			r.forwardJoin(site, relayJoinDetach, nil)
		}
	}
}

// siteDone records a site's Done, flushes the folded state so the final
// counts precede the marker on the upstream connection (frames on one
// connection are processed in order), then forwards the Done join.
func (r *Relay) siteDone(site uint32, events int64, donePayload []byte) {
	r.mu.Lock()
	s := &r.sites[site]
	r.ensureSiteLocked(s)
	if !s.done {
		s.done = true
		s.doneEvents = events
		if s.down != nil {
			r.active--
		}
	}
	r.mu.Unlock()
	r.flushUp()
	r.forwardJoin(site, relayJoinDone, donePayload)
}

// fold max-merges one decoded per-site update batch into the site's folded
// vector and signals the flusher.
func (r *Relay) fold(site uint32, ups []Update) error {
	total := r.layout.NumCounters()
	r.mu.Lock()
	s := &r.sites[site]
	r.ensureSiteLocked(s)
	for _, u := range ups {
		if u.Counter >= total {
			r.mu.Unlock()
			return fmt.Errorf("cluster: relay %d: site %d counter %d out of range", r.cfg.ID, site, u.Counter)
		}
		if u.LocalCount > s.counts[u.Counter] {
			s.counts[u.Counter] = u.LocalCount
			s.dirty[u.Counter] = true
			s.dirtyAny = true
		}
	}
	r.mu.Unlock()
	r.noteDownFrame()
	return nil
}

// foldStruct max-merges one struct-stats frame into the site's cumulative
// cell vector.
func (r *Relay) foldStruct(site uint32, siteEvents uint64, ups []Update) {
	r.mu.Lock()
	s := &r.sites[site]
	r.ensureSiteLocked(s)
	if siteEvents > s.structEvents {
		s.structEvents = siteEvents
		s.structAny = true
	}
	for _, u := range ups {
		if u.Counter < uint32(len(s.structCounts)) && u.LocalCount > s.structCounts[u.Counter] {
			s.structCounts[u.Counter] = u.LocalCount
			s.structDirty[u.Counter] = true
			s.structAny = true
		}
	}
	r.mu.Unlock()
	r.noteDownFrame()
}

func (r *Relay) noteDownFrame() {
	r.DownFrames.Add(1)
	r.framesSinceFlush.Add(1)
	select {
	case r.flushReq <- struct{}{}:
	default:
	}
}

// flushLoop ships folded state upstream: immediately once a full round of
// active children has reported since the last flush, or after FlushInterval
// for stragglers — so steady streaming coalesces at the branching factor and
// a quiet tail still drains promptly.
func (r *Relay) flushLoop() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	for {
		select {
		case <-r.done:
			return
		case <-r.flushReq:
			r.mu.Lock()
			ready := r.active > 0 && r.framesSinceFlush.Load() >= int64(r.active)
			r.mu.Unlock()
			if ready {
				r.flushUp()
				if armed {
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
					armed = false
				}
			} else if !armed {
				timer.Reset(r.flushInterval())
				armed = true
			}
		case <-timer.C:
			armed = false
			r.flushUp()
		}
	}
}

// flushUp ships every dirty per-site folded vector upstream as one grouped
// frame (plus one grouped struct frame when the overlay is on). Dirty flags
// clear optimistically before the write: if the write fails the upstream
// link is dead, and the reconnect replay re-marks every nonzero count dirty
// — nothing is lost, at the cost of re-shipping (free under max-merge).
func (r *Relay) flushUp() {
	r.framesSinceFlush.Store(0)
	var groups, sgroups []relayGroup
	var ups []Update
	r.mu.Lock()
	for i := range r.sites {
		s := &r.sites[i]
		if s.dirtyAny {
			ups = ups[:0]
			for id, d := range s.dirty {
				if d {
					ups = append(ups, Update{Counter: uint32(id), LocalCount: s.counts[id]})
					s.dirty[id] = false
				}
			}
			s.dirtyAny = false
			if len(ups) > 0 {
				groups = append(groups, relayGroup{Site: uint32(i), Payload: encodeUpdates2(nil, ups)})
			}
		}
		if s.structAny {
			ups = ups[:0]
			for id, d := range s.structDirty {
				if d {
					ups = append(ups, Update{Counter: uint32(id), LocalCount: s.structCounts[id]})
					s.structDirty[id] = false
				}
			}
			s.structAny = false
			sgroups = append(sgroups, relayGroup{Site: uint32(i), Payload: encodeStructStats(nil, s.structEvents, ups)})
		}
	}
	r.mu.Unlock()
	if len(groups) == 0 && len(sgroups) == 0 {
		return
	}
	r.upMu.Lock()
	defer r.upMu.Unlock()
	if r.up == nil {
		return // reconnecting; the replay will re-ship
	}
	ok := true
	if len(groups) > 0 {
		r.upBuf = encodeRelayGroups(r.upBuf, groups)
		if err := r.up.writeFrame(frameRelayUpdates, r.upBuf); err != nil {
			ok = false
		} else {
			r.UpFrames.Add(1)
		}
	}
	if ok && len(sgroups) > 0 {
		r.upBuf = encodeRelayGroups(r.upBuf, sgroups)
		if err := r.up.writeFrame(frameRelayStruct, r.upBuf); err != nil {
			ok = false
		} else {
			r.UpFrames.Add(1)
		}
	}
	if ok {
		r.up.flush()
	}
}
