package cluster

import (
	"testing"

	"distbayes/internal/bn"
	"distbayes/internal/core"
	"distbayes/internal/netgen"
	"distbayes/internal/stream"
)

// TestFederationBitIdenticalToFlat is the striping half of the tentpole
// acceptance: a K-stripe federation produces bit-identical estimates to a
// flat run of the same Config. Striping partitions counters across owners
// but never splits a counter's per-site reports, and the federated site
// regenerates the identical stream and report decisions, so every merged
// estimate equals the flat coordinator's.
func TestFederationBitIdenticalToFlat(t *testing.T) {
	for _, batch := range []int{0, 250} {
		cfg := Config{
			NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
			Eps: 0.1, Delta: 0.25, Sites: 5, Events: 15000, StreamSeed: 41,
			SiteBatchEvents: batch,
		}
		flatRes, flatCo, err := RunLocal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fedRes, fed, err := RunLocalFederation(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		total := flatCo.layout.NumCounters()
		for id := uint32(0); id < total; id++ {
			if f, g := flatCo.Estimate(id), fed.Estimate(id); f != g {
				t.Fatalf("batch %d counter %d: flat %v, federated %v", batch, id, f, g)
			}
		}
		if fedRes.Stats.Events != flatRes.Stats.Events {
			t.Errorf("batch %d events: federated %d, flat %d", batch, fedRes.Stats.Events, flatRes.Stats.Events)
		}
		// Every decided report lands on exactly one stripe, so the summed
		// update count matches the flat run exactly.
		if fedRes.Stats.Updates != flatRes.Stats.Updates {
			t.Errorf("batch %d updates: federated %d, flat %d", batch, fedRes.Stats.Updates, flatRes.Stats.Updates)
		}

		// The scatter-gather query plane answers like the flat coordinator.
		rng := bn.NewRNG(99)
		var x []int
		for i := 0; i < 50; i++ {
			x = stream.RandomAssignment(flatCo.Network(), rng, x)
			if f, g := flatCo.QueryProb(x), fed.QueryProb(x); f != g {
				t.Fatalf("batch %d QueryProb(%v): flat %v, federated %v", batch, x, f, g)
			}
		}
		fm, err := flatCo.EstimatedModel()
		if err != nil {
			t.Fatal(err)
		}
		gm, err := fed.EstimatedModel()
		if err != nil {
			t.Fatal(err)
		}
		x = stream.RandomAssignment(flatCo.Network(), rng, x)
		if f, g := fm.JointProb(x), gm.JointProb(x); f != g {
			t.Errorf("batch %d model joint prob: flat %v, federated %v", batch, f, g)
		}
	}
}

// TestFederationSnapshotSurface exercises the FedSnapshot handle the serving
// layer consumes: factors match the merged estimates, versions are monotone,
// and the structure epoch is pinned at 0.
func TestFederationSnapshotSurface(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 3, Events: 3000, StreamSeed: 43,
	}
	_, fed, err := RunLocalFederation(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := fed.AcquireSnapshot()
	defer snap.Release()
	netw := fed.Network()
	for i := 0; i < netw.Len(); i++ {
		for pidx := 0; pidx < netw.ParentCard(i); pidx++ {
			var sum float64
			for v := 0; v < netw.Card(i); v++ {
				f := snap.Factor(i, v, pidx)
				if f < 0 || f > 1.0000001 {
					t.Fatalf("factor(%d,%d,%d) = %v out of range", i, v, pidx, f)
				}
				sum += f
			}
			if sum > 0 && (sum < 0.999 || sum > 1.001) {
				t.Fatalf("factors of var %d pidx %d sum to %v", i, pidx, sum)
			}
		}
	}
	if snap.StructureEpoch() != 0 {
		t.Errorf("structure epoch = %d, want 0", snap.StructureEpoch())
	}
	if _, err := snap.Model(); err != nil {
		t.Fatal(err)
	}
	again := fed.AcquireSnapshot()
	defer again.Release()
	if again.Version() < snap.Version() {
		t.Errorf("version went backwards: %d < %d", again.Version(), snap.Version())
	}
}

// TestStripedConfigValidation pins the striping config contract: bad stripe
// specs and the striping/structure-learning exclusion are rejected.
func TestStripedConfigValidation(t *testing.T) {
	base := Config{
		NetName: "alarm", CPTSeed: 1, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 2, Events: 100, StreamSeed: 1,
	}
	bad := []func(*Config){
		func(c *Config) { c.StripeIndex = 1 },                          // index without count
		func(c *Config) { c.StripeIndex, c.StripeCount = 2, 2 },        // index out of range
		func(c *Config) { c.StripeIndex, c.StripeCount = -1, 2 },       // negative
		func(c *Config) { c.StripeCount, c.StructBatchEvents = 2, 64 }, // striping + learning
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewCoordinator(cfg, "127.0.0.1:0"); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	co, err := NewCoordinator(base, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co.Close()
}

// TestStripedCheckpointRestore runs one stripe coordinator, checkpoints it
// mid-state, and restores into a fresh coordinator — the PR 6 crash-safety
// story extended to striped owners (rows are compact but checkpoints store
// absolute counter ids, so they are self-describing).
func TestStripedCheckpointRestore(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 4, Events: 12000, StreamSeed: 47,
		SiteBatchEvents: 200,
		StripeIndex:     1, StripeCount: 3,
	}
	_, fed, err := RunLocalFederation(Config{
		NetName: cfg.NetName, CPTSeed: cfg.CPTSeed, Strategy: cfg.Strategy,
		Eps: cfg.Eps, Delta: cfg.Delta, Sites: cfg.Sites, Events: cfg.Events,
		StreamSeed: cfg.StreamSeed, SiteBatchEvents: cfg.SiteBatchEvents,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := fed.parts[1]

	path := t.TempDir() + "/stripe.ckpt"
	if err := src.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	lo, hi := src.ownLo, src.ownHi
	for id := lo; id < hi; id++ {
		if a, b := src.Estimate(id), restored.Estimate(id); a != b {
			t.Fatalf("counter %d: original %v, restored %v", id, a, b)
		}
	}

	// A checkpoint from one stripe must not restore into another (the
	// fingerprint binds the owned range).
	other := cfg
	other.StripeIndex = 0
	wrong, err := NewCoordinator(other, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if err := wrong.RestoreCheckpointFile(path); err == nil {
		t.Error("stripe-1 checkpoint restored into stripe-0 coordinator")
	}
}

// TestLayoutSectionsPartition is the satellite property test for
// Layout.Sections: over several networks and strategies, the sections must
// cover [0, NumCounters()) exactly — contiguous, ascending, no gaps or
// overlaps — and each section's eps must equal Layout.Eps for every id in
// it. StripeRange must partition the same space for any stripe count.
func TestLayoutSectionsPartition(t *testing.T) {
	for _, name := range []string{"alarm", "hepar2", "tree:16:3:7"} {
		netw, err := netgen.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []core.Strategy{core.ExactMLE, core.Baseline, core.Uniform, core.NonUniform} {
			layout, err := NewLayout(netw, strat, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			next := uint32(0)
			for si, sec := range layout.Sections() {
				if sec.Lo != next {
					t.Fatalf("%s/%v section %d starts at %d, want %d (gap or overlap)", name, strat, si, sec.Lo, next)
				}
				if sec.Hi < sec.Lo {
					t.Fatalf("%s/%v section %d inverted: [%d,%d)", name, strat, si, sec.Lo, sec.Hi)
				}
				for id := sec.Lo; id < sec.Hi; id++ {
					if layout.Eps(id) != sec.Eps {
						t.Fatalf("%s/%v id %d: section eps %v, layout eps %v", name, strat, id, sec.Eps, layout.Eps(id))
					}
				}
				next = sec.Hi
			}
			if next != layout.NumCounters() {
				t.Fatalf("%s/%v sections end at %d, want %d", name, strat, next, layout.NumCounters())
			}

			for _, count := range []uint32{1, 2, 3, 5, 7, layout.NumCounters(), layout.NumCounters() + 3} {
				prev := uint32(0)
				for idx := uint32(0); idx < count; idx++ {
					lo, hi := layout.StripeRange(idx, count)
					if lo != prev {
						t.Fatalf("%s stripe %d/%d starts at %d, want %d", name, idx, count, lo, prev)
					}
					if hi < lo {
						t.Fatalf("%s stripe %d/%d inverted: [%d,%d)", name, idx, count, lo, hi)
					}
					prev = hi
				}
				if prev != layout.NumCounters() {
					t.Fatalf("%s stripes of %d end at %d, want %d", name, count, prev, layout.NumCounters())
				}
			}
		}
	}
}
