package cluster

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzMaxCounters is the layout size the updates2 decoder is fuzzed
// against: small enough that out-of-range ids are easy for the fuzzer to
// construct, large enough that multi-byte varint deltas occur.
const fuzzMaxCounters = 1000

// FuzzDecodeFrame feeds arbitrary bytes to every frame-payload decoder of
// the wire protocol. The first input byte selects the decoder (mod the
// decoder count), the rest is the payload: whatever the bytes — truncated,
// bit-flipped, adversarial lengths or counts — every decoder must return an
// error or a well-formed result, never panic and never allocate beyond what
// the validated entry counts admit (the frame-IO mirror of FuzzLoadState).
// For updates2 a successful decode is additionally re-encoded and
// re-decoded, pinning the codec round trip on fuzzer-discovered inputs.
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzFrameSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		payload := data[1:]
		switch data[0] % 6 {
		case 0:
			_, _ = decodeStart(payload)
		case 1:
			_, _ = decodeUpdates(nil, payload)
		case 2:
			ups, err := decodeUpdates2(nil, payload, fuzzMaxCounters)
			if err != nil {
				return
			}
			for i, u := range ups {
				if u.Counter >= fuzzMaxCounters || u.LocalCount < 0 {
					t.Fatalf("decodeUpdates2 accepted invalid entry %d: %+v", i, u)
				}
				if i > 0 && ups[i-1].Counter >= u.Counter {
					t.Fatalf("decodeUpdates2 accepted non-ascending ids at %d", i)
				}
			}
			again, err := decodeUpdates2(nil, encodeUpdates2(nil, ups), fuzzMaxCounters)
			if err != nil {
				t.Fatalf("re-decode of re-encoded updates2 failed: %v", err)
			}
			if len(again) != len(ups) {
				t.Fatalf("round trip changed entry count: %d != %d", len(again), len(ups))
			}
			for i := range ups {
				if again[i] != ups[i] {
					t.Fatalf("round trip changed entry %d: %+v != %+v", i, again[i], ups[i])
				}
			}
		case 3:
			_, _, _ = decodeDone(payload)
		case 4:
			_, _ = decodeStats(payload)
		case 5:
			_, _ = decodeHello(payload)
		}
	})
}

// fuzzFrameSeeds builds one valid payload per decoder (prefixed with its
// selector byte) plus truncated and bit-flipped mutants, so the fuzzer
// starts deep inside each format instead of at the first length check.
func fuzzFrameSeeds() [][]byte {
	start := encodeStart(StartConfig{
		NetName: "alarm", CPTSeed: 42, Strategy: 3, Eps: 0.1, Delta: 0.25,
		Sites: 7, Site: 3, Events: 123456, StreamSeed: 99, LatencyMicros: 250,
		BatchEvents: 128,
	})
	v1 := encodeUpdates(nil, []Update{{Counter: 1, LocalCount: 5}, {Counter: 900, LocalCount: 31}})
	v2 := encodeUpdates2(nil, []Update{
		{Counter: 0, LocalCount: 1}, {Counter: 7, LocalCount: 300}, {Counter: 900, LocalCount: 1 << 40},
	})
	done := encodeDone(9, 777)
	stats := encodeStats(Stats{Frames: 1, Updates: 2, Events: 3})
	hello := encodeHello(12)

	var seeds [][]byte
	add := func(sel byte, payload []byte) {
		full := append([]byte{sel}, payload...)
		seeds = append(seeds, full)
		if len(payload) > 2 {
			seeds = append(seeds, append([]byte{sel}, payload[:len(payload)/2]...))
			flipped := append([]byte{sel}, payload...)
			flipped[1+len(payload)/3] ^= 0x40
			seeds = append(seeds, flipped)
		}
	}
	add(0, start)
	add(0, start[:len(start)-4]) // version-1 start frame
	add(1, v1)
	add(2, v2)
	add(3, done)
	add(4, stats)
	add(5, hello)
	// Adversarial updates2 headers: huge declared count, max-varint count.
	seeds = append(seeds, []byte{2, 0xff, 0xff, 0xff, 0xff, 0x0f, 1, 1})
	seeds = append(seeds, append([]byte{2}, maxUvarint()...))
	return seeds
}

func maxUvarint() []byte {
	b := make([]byte, 0, 10)
	v := uint64(math.MaxUint64)
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// FuzzDecodeStructFrame feeds arbitrary bytes to the frameStructStats
// decoder: whatever the payload, it must return an error or a well-formed
// result (ascending in-range cell ids, non-negative counts) and never panic.
// Successful decodes are re-encoded and re-decoded, pinning the struct-stats
// codec round trip on fuzzer-discovered inputs.
func FuzzDecodeStructFrame(f *testing.F) {
	for _, seed := range fuzzStructFrameSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, ups, err := decodeStructStats(nil, data, fuzzMaxCounters)
		if err != nil {
			return
		}
		for i, u := range ups {
			if u.Counter >= fuzzMaxCounters || u.LocalCount < 0 {
				t.Fatalf("decodeStructStats accepted invalid entry %d: %+v", i, u)
			}
			if i > 0 && ups[i-1].Counter >= u.Counter {
				t.Fatalf("decodeStructStats accepted non-ascending ids at %d", i)
			}
		}
		events2, again, err := decodeStructStats(nil, encodeStructStats(nil, events, ups), fuzzMaxCounters)
		if err != nil {
			t.Fatalf("re-decode of re-encoded struct stats failed: %v", err)
		}
		if events2 != events || len(again) != len(ups) {
			t.Fatalf("round trip changed header: events %d != %d, entries %d != %d",
				events2, events, len(again), len(ups))
		}
		for i := range ups {
			if again[i] != ups[i] {
				t.Fatalf("round trip changed entry %d: %+v != %+v", i, again[i], ups[i])
			}
		}
	})
}

// fuzzStructFrameSeeds builds valid struct-stats payloads plus truncated and
// bit-flipped mutants and adversarial headers.
func fuzzStructFrameSeeds() [][]byte {
	var seeds [][]byte
	add := func(payload []byte) {
		seeds = append(seeds, payload)
		if len(payload) > 2 {
			seeds = append(seeds, payload[:len(payload)/2])
			flipped := append([]byte(nil), payload...)
			flipped[len(payload)/3] ^= 0x40
			seeds = append(seeds, flipped)
		}
	}
	add(encodeStructStats(nil, 0, nil))
	add(encodeStructStats(nil, 1, []Update{{Counter: 0, LocalCount: 1}}))
	add(encodeStructStats(nil, 123456, []Update{
		{Counter: 3, LocalCount: 7}, {Counter: 4, LocalCount: 300}, {Counter: 900, LocalCount: 1 << 40},
	}))
	// Max-varint event count, huge declared entry count.
	seeds = append(seeds, append(maxUvarint(), 1, 1, 1))
	seeds = append(seeds, []byte{7, 0xff, 0xff, 0xff, 0xff, 0x0f, 1, 1})
	return seeds
}

// TestWriteFuzzDecodeStructFrameCorpus regenerates the committed seed corpus
// for FuzzDecodeStructFrame when DISTBAYES_WRITE_FUZZ_CORPUS is set;
// normally it only verifies the corpus directory exists.
func TestWriteFuzzDecodeStructFrameCorpus(t *testing.T) {
	writeFuzzCorpus(t, filepath.Join("testdata", "fuzz", "FuzzDecodeStructFrame"), fuzzStructFrameSeeds())
}

// TestWriteFuzzDecodeFrameCorpus regenerates the committed seed corpus under
// testdata/fuzz when DISTBAYES_WRITE_FUZZ_CORPUS is set; normally it only
// verifies the corpus directory exists.
func TestWriteFuzzDecodeFrameCorpus(t *testing.T) {
	writeFuzzCorpus(t, filepath.Join("testdata", "fuzz", "FuzzDecodeFrame"), fuzzFrameSeeds())
}

// writeFuzzCorpus writes seeds to dir in the go-fuzz corpus format when
// DISTBAYES_WRITE_FUZZ_CORPUS is set, and otherwise just verifies the
// committed corpus exists.
func writeFuzzCorpus(t *testing.T, dir string, seeds [][]byte) {
	t.Helper()
	if os.Getenv("DISTBAYES_WRITE_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing: %v (regenerate with DISTBAYES_WRITE_FUZZ_CORPUS=1)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		payload := []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n")
		if err := os.WriteFile(filepath.Join(dir, "seed"+strconv.Itoa(i)), payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
