package cluster

import (
	"testing"
	"time"

	"distbayes/internal/core"
)

// allEstimates reads every counter's final estimate from the coordinator.
func allEstimates(co *Coordinator) []float64 {
	total := co.layout.NumCounters()
	out := make([]float64, total)
	for id := uint32(0); id < total; id++ {
		out[id] = co.Estimate(id)
	}
	return out
}

// TestTreeBitIdenticalToFlat is the tentpole acceptance check: a depth-2
// relay tree produces bit-identical final estimates to a flat run of the
// same Config (the relays fold per-site monotone counts with the same
// idempotent max-merge the coordinator uses, so fold-then-forward cannot
// change any estimate), while the root coordinator sees at least 3x fewer
// frames at branching 4.
func TestTreeBitIdenticalToFlat(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 8, Events: 48000, StreamSeed: 7,
		SiteBatchEvents: 200,
	}
	flatRes, flatCo, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := allEstimates(flatCo)

	// A generous flush interval makes the round-trigger (one frame from
	// every active child) the dominant flush cause, so the reduction factor
	// is robustly ~branching even on a loaded test machine.
	treeRes, treeCo, relays, err := RunLocalTree(cfg, 4, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tree := allEstimates(treeCo)

	for id := range flat {
		if flat[id] != tree[id] {
			t.Fatalf("counter %d: flat %v, tree %v — relay fold changed an estimate", id, flat[id], tree[id])
		}
	}
	if treeRes.Stats.Events != flatRes.Stats.Events {
		t.Errorf("events: tree %d, flat %d", treeRes.Stats.Events, flatRes.Stats.Events)
	}
	// Updates may legitimately shrink through the tree (a flush that
	// coalesces two windows ships one entry for a twice-updated counter),
	// never grow — the fold re-ships only changed counters.
	if treeRes.Stats.Updates > flatRes.Stats.Updates {
		t.Errorf("updates: tree %d > flat %d (fold must not invent reports)",
			treeRes.Stats.Updates, flatRes.Stats.Updates)
	}
	if 3*treeRes.Stats.Frames > flatRes.Stats.Frames {
		t.Errorf("root frames %d, flat %d: want >= 3x reduction at branching 4",
			treeRes.Stats.Frames, flatRes.Stats.Frames)
	}
	var down int64
	for _, r := range relays {
		down += r.DownFrames.Load()
	}
	if down == 0 {
		t.Error("relays folded no downstream frames")
	}
}

// TestTreePerEventProtocol runs the tree under protocol v1 (one frame per
// triggering event — the worst case for root frame load) and checks both the
// bit-identical estimates and that the fold absorbs the much higher
// downstream frame rate.
func TestTreePerEventProtocol(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 6, Events: 6000, StreamSeed: 11,
	}
	_, flatCo, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := allEstimates(flatCo)
	treeRes, treeCo, _, err := RunLocalTree(cfg, 3, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tree := allEstimates(treeCo)
	for id := range flat {
		if flat[id] != tree[id] {
			t.Fatalf("counter %d: flat %v, tree %v", id, flat[id], tree[id])
		}
	}
	if treeRes.Stats.Events != int64(cfg.Events) {
		t.Errorf("events = %d, want %d", treeRes.Stats.Events, cfg.Events)
	}
}

// TestTreeDepth3 chains a relay through a mid-tier relay (sites → leaf relay
// → mid relay → coordinator), exercising the child-relay path: grouped
// frames re-folded mid-tier and control frames re-wrapped downstream. The
// max-merge fold is associative, so estimates stay bit-identical at any
// depth.
func TestTreeDepth3(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 4, Events: 8000, StreamSeed: 13,
		SiteBatchEvents: 200,
	}
	_, flatCo, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := allEstimates(flatCo)

	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	mid, err := NewRelay(RelayConfig{ID: 0, Parent: co.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	go mid.Run()
	leaf, err := NewRelay(RelayConfig{ID: 1, Parent: mid.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	go leaf.Run()

	type out struct {
		stats Stats
		err   error
	}
	outs := make(chan out, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		go func(i int) {
			st, err := NewSite(uint32(i), leaf.Addr()).Run()
			outs <- out{st, err}
		}(i)
	}
	res, err := co.Serve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Sites; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.stats != res.Stats {
			t.Fatalf("site stats %+v != coordinator %+v", o.stats, res.Stats)
		}
	}
	got := allEstimates(co)
	for id := range flat {
		if flat[id] != got[id] {
			t.Fatalf("counter %d: flat %v, depth-3 %v", id, flat[id], got[id])
		}
	}
}

// TestRelayUpstreamSevered cuts the relay's upstream link repeatedly while
// the sites stream — the chaos case the ISSUE calls out. The relay
// reconnects and replays its full folded vectors (plus membership and Done
// markers), the coordinator's max-merge absorbs the re-shipped state, and
// the final estimates stay bit-identical to a flat run.
func TestRelayUpstreamSevered(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 4, Events: 40000, StreamSeed: 29,
		SiteBatchEvents: 100,
		// Site-side latency slows the stream enough that the severed window
		// reliably lands mid-run.
		LatencyMicros: 50,
	}
	_, flatCo, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := allEstimates(flatCo)

	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	relay, err := NewRelay(RelayConfig{ID: 0, Parent: co.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	go relay.Run()

	// The severing goroutine: cut the live upstream connection a few times
	// while frames flow.
	sever := make(chan struct{})
	go func() {
		defer close(sever)
		for cut := 0; cut < 3; cut++ {
			time.Sleep(30 * time.Millisecond)
			relay.upMu.Lock()
			if relay.upRaw != nil {
				relay.upRaw.Close()
			}
			relay.upMu.Unlock()
		}
	}()

	type out struct {
		stats Stats
		err   error
	}
	outs := make(chan out, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		go func(i int) {
			st, err := NewSite(uint32(i), relay.Addr()).Run()
			outs <- out{st, err}
		}(i)
	}
	res, err := co.Serve()
	if err != nil {
		t.Fatal(err)
	}
	<-sever
	for i := 0; i < cfg.Sites; i++ {
		if o := <-outs; o.err != nil {
			t.Fatal(o.err)
		}
	}
	if res.Stats.Events != int64(cfg.Events) {
		t.Fatalf("events = %d, want %d", res.Stats.Events, cfg.Events)
	}
	got := allEstimates(co)
	for id := range flat {
		if flat[id] != got[id] {
			t.Fatalf("counter %d: flat %v, severed-relay %v", id, flat[id], got[id])
		}
	}
}

// TestRelayRestart kills the relay process mid-run and starts a fresh one on
// the same address: the relay holds no state a site cannot regenerate, so
// the sites' own resume replays (through the new relay) heal everything and
// the final estimates stay bit-identical to a flat run.
func TestRelayRestart(t *testing.T) {
	cfg := Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: core.NonUniform,
		Eps: 0.1, Delta: 0.25, Sites: 3, Events: 30000, StreamSeed: 31,
		SiteBatchEvents: 100,
		LatencyMicros:   50,
	}
	_, flatCo, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := allEstimates(flatCo)

	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	relay, err := NewRelay(RelayConfig{ID: 0, Parent: co.Addr()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go relay.Run()
	relayAddr := relay.Addr()

	type out struct {
		stats Stats
		err   error
	}
	outs := make(chan out, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		go func(i int) {
			st, err := NewSite(uint32(i), relayAddr).Run()
			outs <- out{st, err}
		}(i)
	}

	// Kill the relay mid-run and restart it on the same address (retrying
	// the bind while the kernel releases the port). The disconnected sites
	// back off, redial, and resume through the fresh relay.
	restarted := make(chan error, 1)
	go func() {
		time.Sleep(40 * time.Millisecond)
		relay.Close()
		var r2 *Relay
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			if r2, err = NewRelay(RelayConfig{ID: 0, Parent: co.Addr()}, relayAddr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			restarted <- err
			return
		}
		go r2.Run()
		restarted <- nil
	}()

	res, err := co.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-restarted; err != nil {
		t.Fatalf("relay restart: %v", err)
	}
	for i := 0; i < cfg.Sites; i++ {
		if o := <-outs; o.err != nil {
			t.Fatal(o.err)
		}
	}
	if res.Stats.Events != int64(cfg.Events) {
		t.Fatalf("events = %d, want %d", res.Stats.Events, cfg.Events)
	}
	got := allEstimates(co)
	for id := range flat {
		if flat[id] != got[id] {
			t.Fatalf("counter %d: flat %v, restarted-relay %v", id, flat[id], got[id])
		}
	}
}

// TestRelayWrappedCodecRoundTrips pins the relay wire additions: the
// wrapped control codec and the grouped multi-site data codec.
func TestRelayWrappedCodecRoundTrips(t *testing.T) {
	site, kind, inner, err := decodeRelayWrapped(encodeRelayWrapped(7, relayJoinResume, []byte{1, 2, 3}))
	if err != nil || site != 7 || kind != relayJoinResume || len(inner) != 3 {
		t.Fatalf("wrapped round trip: %d %d %v %v", site, kind, inner, err)
	}
	if _, _, _, err := decodeRelayWrapped([]byte{1, 2, 3}); err == nil {
		t.Error("short wrapped frame accepted")
	}

	groups := []relayGroup{
		{Site: 0, Payload: encodeUpdates2(nil, []Update{{Counter: 1, LocalCount: 5}})},
		{Site: 3, Payload: encodeUpdates2(nil, []Update{{Counter: 0, LocalCount: 2}, {Counter: 9, LocalCount: 1 << 33}})},
	}
	dec, err := decodeRelayGroups(nil, encodeRelayGroups(nil, groups), 8, updatesPayloadCap(fuzzMaxCounters))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(groups) {
		t.Fatalf("group count %d, want %d", len(dec), len(groups))
	}
	for i := range groups {
		if dec[i].Site != groups[i].Site {
			t.Errorf("group %d site %d, want %d", i, dec[i].Site, groups[i].Site)
		}
		if string(dec[i].Payload) != string(groups[i].Payload) {
			t.Errorf("group %d payload changed", i)
		}
	}
	// Site id out of the declared range must be rejected.
	bad := encodeRelayGroups(nil, []relayGroup{{Site: 8, Payload: []byte{0}}})
	if _, err := decodeRelayGroups(nil, bad, 8, 64); err == nil {
		t.Error("out-of-range group site accepted")
	}
}
