package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/chowliu"
	"distbayes/internal/decay"
)

// This file closes the structure-learning loop over the distributed stream
// (ROADMAP item "distributed structure learning + drift"). Sites accumulate
// windowless cumulative pair co-occurrence counts for every variable pair
// and ship them as frameStructStats frames on a batching cadence; the
// coordinator max-merges them per site (idempotent, like counter reports),
// folds the resulting deltas into a decay.WindowVec so stale statistics age
// out, and re-runs Chow–Liu on the windowed MI matrix at every window-block
// rotation. When the learned tree's undirected edge set changes, the
// coordinator hot-swaps the published structure: a new structState with a
// bumped structure epoch, its parent-pair parameters seeded directly from
// the same windowed pair statistics (for a tree, the windowed pair joint
// counts ARE the CPT sufficient statistics). The flat base-DAG parameter
// tracking is untouched — structure learning is a coordinator-local overlay,
// so Shards ≤ 1 + batching + structure learning off stays bit-identical to
// the sequential goldens, and the chaos invariants hold unchanged.
//
// Checkpoints (DBCLUS01) deliberately exclude the structure engine: a
// restored coordinator restarts with an empty MI window and relearns from
// the sites' cumulative resume replays, which restore the per-site
// statistics exactly (counts are monotone and cumulative).

// StructLayout assigns a flat cell id to every (variable pair, value pair)
// co-occurrence cell: all unordered pairs i < j over the network's
// variables, each pair owning Card(i)·Card(j) contiguous cells in value
// row-major order. It is the structure-learning counterpart of Layout and
// is derived deterministically from the network on both sides, so only
// cell ids travel on the wire.
type StructLayout struct {
	net     *bn.Network
	pairs   [][2]int // (i, j) with i < j, lexicographic
	pairIdx [][]int  // pairIdx[i][j-i-1] = pair index of (i, j)
	pairOff []uint32 // first cell id of each pair
	cells   uint32
}

// NewStructLayout builds the pair-cell layout for net (which needs at least
// two variables to have any pairs).
func NewStructLayout(net *bn.Network) (*StructLayout, error) {
	n := net.Len()
	if n < 2 {
		return nil, fmt.Errorf("cluster: structure learning needs >= 2 variables, net has %d", n)
	}
	l := &StructLayout{net: net, pairIdx: make([][]int, n)}
	for i := 0; i < n; i++ {
		l.pairIdx[i] = make([]int, n-i-1)
		for j := i + 1; j < n; j++ {
			l.pairIdx[i][j-i-1] = len(l.pairs)
			l.pairs = append(l.pairs, [2]int{i, j})
			l.pairOff = append(l.pairOff, l.cells)
			cells := uint64(l.cells) + uint64(net.Card(i))*uint64(net.Card(j))
			if cells > 1<<28 {
				return nil, fmt.Errorf("cluster: structure layout of %d+ cells too large", cells)
			}
			l.cells = uint32(cells)
		}
	}
	return l, nil
}

// Cells returns the total number of co-occurrence cells.
func (l *StructLayout) Cells() uint32 { return l.cells }

// NumPairs returns the number of variable pairs.
func (l *StructLayout) NumPairs() int { return len(l.pairs) }

// PairAt returns the p-th pair (i, j) with i < j.
func (l *StructLayout) PairAt(p int) (int, int) { return l.pairs[p][0], l.pairs[p][1] }

// PairIndex returns the pair index of (i, j); callers pass i < j.
func (l *StructLayout) PairIndex(i, j int) int { return l.pairIdx[i][j-i-1] }

// CellID returns the cell id of the co-occurrence (X_i = vi, X_j = vj);
// callers pass i < j.
func (l *StructLayout) CellID(i, vi, j, vj int) uint32 {
	return l.pairOff[l.PairIndex(i, j)] + uint32(vi*l.net.Card(j)+vj)
}

// JointAt returns pair p's joint count table as a sub-slice of a full cell
// vector: entry vi*Card(j)+vj is the (vi, vj) co-occurrence count.
func (l *StructLayout) JointAt(counts []int64, p int) []int64 {
	lo := l.pairOff[p]
	hi := uint32(len(counts))
	if p+1 < len(l.pairs) {
		hi = l.pairOff[p+1]
	}
	return counts[lo:hi]
}

// Accumulate folds one complete observation into counts: every pair's
// co-occurrence cell gains one.
func (l *StructLayout) Accumulate(counts []int64, x []int) {
	n := l.net.Len()
	p := 0
	for i := 0; i < n; i++ {
		rowBase := x[i]
		for j := i + 1; j < n; j++ {
			counts[l.pairOff[p]+uint32(rowBase*l.net.Card(j)+x[j])]++
			p++
		}
	}
}

// ErrStructLearningOff is returned by AcquireLearnedSnapshot when the run
// was configured without structure learning.
var ErrStructLearningOff = errors.New("cluster: structure learning not enabled")

// ErrNoLearnedStructure is returned by AcquireLearnedSnapshot before the
// first window-block rotation has produced a learned tree. The serving
// layer treats it as a refresh failure: a server over a learned source
// reports unavailable (clean 503s) until the first structure lands, then
// serves normally — the documented cold-start behavior.
var ErrNoLearnedStructure = errors.New("cluster: no learned structure yet")

// structState is one immutable published structure: the learned tree, its
// windowed-MLE parameters, and the epoch/version pair the serving contract
// rides on. Hot swaps publish a fresh structState; readers holding an old
// one keep a consistent view.
type structState struct {
	// epoch counts structure changes: 1 for the first learned tree, bumped
	// every time the learned undirected edge set differs from the previous
	// one. Surfaced on every snapshot so serving clients can observe swaps.
	epoch uint64
	// version is the struct-statistics version the state was built from —
	// monotone across relearns (parameter refreshes bump it even when the
	// tree is unchanged), which keeps the per-client version-monotone
	// serving contract intact across hot swaps.
	version uint64
	builtAt time.Time
	// net is the learned tree (base variable names and cardinalities,
	// learned single-parent structure, rooted at variable 0).
	net    *bn.Network
	parent []int
	// factors[i][pidx*Card(i)+v] estimates P[X_i = v | parent config pidx],
	// seeded from the windowed pair statistics; rows with an unobserved
	// parent configuration are uniform (chowliu.LearnModel's convention).
	factors [][]float64
	// windowTotal is the in-window event mass the state was learned from.
	windowTotal int64

	modelOnce sync.Once
	model     *bn.Model
	modelErr  error
}

// LearnedSnapshot is a read handle on one published learned structure,
// implementing the serving layer's Snapshot contract (including Network and
// StructureEpoch — the structure genuinely changes across snapshots here,
// unlike the flat parameter snapshots).
type LearnedSnapshot struct{ s *structState }

// Factor returns the learned estimate of P[X_i = v | parent config pidx]
// under this snapshot's tree.
func (s *LearnedSnapshot) Factor(i, v, pidx int) float64 {
	return s.s.factors[i][pidx*s.s.net.Card(i)+v]
}

// Version identifies the struct-statistics state the snapshot was learned
// from; monotone non-decreasing across acquisitions, including across
// structure swaps.
func (s *LearnedSnapshot) Version() uint64 { return s.s.version }

// BuiltAt is when the structure was learned.
func (s *LearnedSnapshot) BuiltAt() time.Time { return s.s.builtAt }

// Network returns the learned tree.
func (s *LearnedSnapshot) Network() *bn.Network { return s.s.net }

// StructureEpoch counts structure changes; it bumps exactly when the
// learned undirected edge set changes (a hot swap).
func (s *LearnedSnapshot) StructureEpoch() uint64 { return s.s.epoch }

// WindowEvents is the in-window event mass the structure was learned from.
func (s *LearnedSnapshot) WindowEvents() int64 { return s.s.windowTotal }

// Model normalizes the learned factors into a bn.Model, built at most once
// per snapshot; immutable.
func (s *LearnedSnapshot) Model() (*bn.Model, error) {
	st := s.s
	st.modelOnce.Do(func() {
		st.model, st.modelErr = bn.NewNormalizedModel(st.net, func(i int, tbl []float64) {
			copy(tbl, st.factors[i])
		})
	})
	return st.model, st.modelErr
}

// Release is a no-op: learned snapshots are garbage-collected.
func (s *LearnedSnapshot) Release() {}

// StructStats summarizes the structure-learning overlay's communication and
// learning activity — the numbers the drift experiment quotes against the
// flat fixed-structure run.
type StructStats struct {
	// Frames and Entries count received frameStructStats frames and their
	// cell entries (Frames is also included in Stats.Frames).
	Frames, Entries int64
	// Relearns counts Chow–Liu re-runs; Swaps counts the subset that
	// changed the undirected edge set after the first learned tree.
	Relearns, Swaps int64
	// Epoch is the current structure epoch (0 before the first learn).
	Epoch uint64
}

// structEngine is the coordinator's structure-learning overlay: per-site
// cumulative pair statistics, the sliding MI window, and the published
// learned structure. All mutation happens under mu on the site reader
// goroutines; the published state is an atomic pointer so query paths never
// block on ingestion.
type structEngine struct {
	layout *StructLayout
	net    *bn.Network

	mu         sync.Mutex
	perSite    [][]int64 // cumulative cell counts per site (max-merged)
	siteEvents []uint64  // per-site stream positions (max-merged)
	// windows holds one sliding window per site, advanced by that site's
	// own stream clock. Sites drain their streams at arbitrary relative
	// paces (a fast site can ship its whole stream before a slow one
	// starts), so a single window over frame-arrival order would mix stream
	// epochs; per-site windows keyed to per-site positions make the
	// windowed statistics independent of cross-site scheduling — each
	// site's contribution is exactly its own last windowEvents/k events.
	windows  []*decay.WindowVec
	agg      []int64 // scratch: sum of the per-site windows, reused
	version  uint64  // bumped per applied struct frame
	frames   int64
	entries  int64
	relearns int64
	swaps    int64
	mi       [][]float64 // scratch MI matrix, reused across relearns

	state atomic.Pointer[structState]
}

// newStructEngine builds the overlay for a coordinator. windowEvents is the
// global window target; each site's window covers windowEvents/sites of its
// own stream (clamped to the block minimum), so the aggregate approximates
// the last windowEvents of the union stream under balanced routing and
// stays phase-aligned per site under any scheduling.
func newStructEngine(netw *bn.Network, sites int, windowEvents int64, blocks int) (*structEngine, error) {
	layout, err := NewStructLayout(netw)
	if err != nil {
		return nil, err
	}
	perSiteWindow := windowEvents / int64(sites)
	if perSiteWindow < int64(blocks) {
		perSiteWindow = int64(blocks)
	}
	e := &structEngine{
		layout:     layout,
		net:        netw,
		perSite:    make([][]int64, sites),
		siteEvents: make([]uint64, sites),
		windows:    make([]*decay.WindowVec, sites),
		agg:        make([]int64, layout.Cells()),
		mi:         make([][]float64, netw.Len()),
	}
	for i := range e.perSite {
		e.perSite[i] = make([]int64, layout.Cells())
		if e.windows[i], err = decay.NewWindowVec(int(layout.Cells()), perSiteWindow, blocks); err != nil {
			return nil, err
		}
	}
	for i := range e.mi {
		e.mi[i] = make([]float64, netw.Len())
	}
	return e, nil
}

// apply folds one decoded frameStructStats frame: max-merge the site's
// cumulative cell counts (deltas land in the site window's live block),
// advance that window's clock by the site's stream progress, and relearn on
// every block rotation. Replayed or duplicated frames contribute zero
// deltas and zero clock advance — idempotent, like counter updates.
func (e *structEngine) apply(site uint32, siteEvents uint64, ups []Update) {
	e.mu.Lock()
	defer e.mu.Unlock()
	row, win := e.perSite[site], e.windows[site]
	for _, u := range ups {
		if u.LocalCount > row[u.Counter] {
			win.Add(int(u.Counter), u.LocalCount-row[u.Counter])
			row[u.Counter] = u.LocalCount
		}
	}
	e.frames++
	e.entries += int64(len(ups))
	e.version++
	if siteEvents > e.siteEvents[site] {
		delta := int64(siteEvents - e.siteEvents[site])
		e.siteEvents[site] = siteEvents
		if win.Advance(delta) > 0 {
			e.relearnLocked()
		}
	}
}

// relearnLocked aggregates the per-site windows, re-runs Chow–Liu on the
// windowed MI matrix, and publishes a new structState; the epoch bumps only
// when the undirected edge set changed. Callers hold e.mu.
func (e *structEngine) relearnLocked() {
	win := e.agg
	clear(win)
	for _, w := range e.windows {
		for c, v := range w.Windowed() {
			win[c] += v
		}
	}
	n := e.net.Len()
	for p := 0; p < e.layout.NumPairs(); p++ {
		i, j := e.layout.PairAt(p)
		v := chowliu.MIFromCounts(e.layout.JointAt(win, p), e.net.Card(i), e.net.Card(j))
		e.mi[i][j], e.mi[j][i] = v, v
	}
	parent := chowliu.TreeFromMI(e.mi)
	e.relearns++

	old := e.state.Load()
	changed := old == nil || !sameUndirected(parent, old.parent, n)
	epoch := uint64(1)
	if old != nil {
		epoch = old.epoch
		if changed {
			epoch++
			e.swaps++
		}
	}

	netw := old.netOrNil()
	if changed || netw == nil {
		vars := make([]bn.Variable, n)
		for i := 0; i < n; i++ {
			base := e.net.Var(i)
			vars[i] = bn.Variable{Name: base.Name, Card: base.Card}
			if parent[i] >= 0 {
				vars[i].Parents = []int{parent[i]}
			}
		}
		var err error
		if netw, err = bn.NewNetwork(vars); err != nil {
			// A spanning tree over validated variables cannot be cyclic;
			// treat a construction failure as "keep the previous structure".
			return
		}
	} else {
		parent = old.parent // identical edge set: keep the old orientation too
	}

	factors, total := e.seedFactorsLocked(win, netw)
	ns := &structState{
		epoch:       epoch,
		version:     e.version,
		builtAt:     time.Now(),
		net:         netw,
		parent:      parent,
		factors:     factors,
		windowTotal: total,
	}
	e.state.Store(ns)
}

// netOrNil tolerates a nil receiver so the first relearn reads naturally.
func (s *structState) netOrNil() *bn.Network {
	if s == nil {
		return nil
	}
	return s.net
}

// seedFactorsLocked materializes the learned tree's CPD estimates straight
// from the windowed pair statistics: for a tree, a variable's pair joint
// counts with its parent are exactly the CPT sufficient statistics, and
// marginals come from summing any pair's table (every event increments
// every pair, and a site's frame lands atomically, so the tables are
// mutually consistent). Unobserved parent configurations fall back to the
// uniform row, chowliu.LearnModel's convention. Callers hold e.mu.
func (e *structEngine) seedFactorsLocked(win []int64, learned *bn.Network) ([][]float64, int64) {
	n := e.net.Len()
	marg := make([][]int64, n)
	for i := 0; i < n; i++ {
		ci := e.net.Card(i)
		marg[i] = make([]int64, ci)
		if i+1 < n {
			joint := e.layout.JointAt(win, e.layout.PairIndex(i, i+1))
			cj := e.net.Card(i + 1)
			for vi := 0; vi < ci; vi++ {
				for vj := 0; vj < cj; vj++ {
					marg[i][vi] += joint[vi*cj+vj]
				}
			}
		} else {
			joint := e.layout.JointAt(win, e.layout.PairIndex(i-1, i))
			cp := e.net.Card(i - 1)
			for vp := 0; vp < cp; vp++ {
				for vi := 0; vi < ci; vi++ {
					marg[i][vi] += joint[vp*ci+vi]
				}
			}
		}
	}
	var total int64
	for _, c := range marg[0] {
		total += c
	}

	factors := make([][]float64, n)
	for i := 0; i < n; i++ {
		ci := learned.Card(i)
		ps := learned.Parents(i)
		if len(ps) == 0 {
			row := make([]float64, ci)
			for v := 0; v < ci; v++ {
				if total > 0 {
					row[v] = float64(marg[i][v]) / float64(total)
				} else {
					row[v] = 1 / float64(ci)
				}
			}
			factors[i] = row
			continue
		}
		p := ps[0]
		cp := learned.Card(p)
		tbl := make([]float64, cp*ci)
		lo, hi := i, p
		if lo > hi {
			lo, hi = hi, lo
		}
		joint := e.layout.JointAt(win, e.layout.PairIndex(lo, hi))
		cHi := e.net.Card(hi)
		for pv := 0; pv < cp; pv++ {
			den := marg[p][pv]
			for v := 0; v < ci; v++ {
				var c int64
				if i < p { // joint rows indexed by X_i
					c = joint[v*cHi+pv]
				} else { // joint rows indexed by X_p
					c = joint[pv*cHi+v]
				}
				if den > 0 {
					tbl[pv*ci+v] = float64(c) / float64(den)
				} else {
					tbl[pv*ci+v] = 1 / float64(ci)
				}
			}
		}
		factors[i] = tbl
	}
	return factors, total
}

// sameUndirected reports whether two parent vectors describe the same
// undirected edge set.
func sameUndirected(a, b []int, n int) bool {
	type edge [2]int
	canon := func(parent []int) map[edge]bool {
		m := make(map[edge]bool, n)
		for i, p := range parent {
			if p < 0 {
				continue
			}
			lo, hi := i, p
			if lo > hi {
				lo, hi = hi, lo
			}
			m[edge{lo, hi}] = true
		}
		return m
	}
	ea, eb := canon(a), canon(b)
	if len(ea) != len(eb) {
		return false
	}
	for e := range ea {
		if !eb[e] {
			return false
		}
	}
	return true
}

// stats returns the overlay's communication/learning tallies.
func (e *structEngine) stats() StructStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := StructStats{
		Frames:   e.frames,
		Entries:  e.entries,
		Relearns: e.relearns,
		Swaps:    e.swaps,
	}
	if st := e.state.Load(); st != nil {
		s.Epoch = st.epoch
	}
	return s
}

// AcquireLearnedSnapshot returns the current learned-structure snapshot.
// It fails with ErrStructLearningOff when the run has no structure-learning
// overlay and ErrNoLearnedStructure before the first learned tree — both
// treated by the serving layer as refresh failures (degraded/unavailable),
// so a server over a learned source comes up cleanly mid-run.
func (co *Coordinator) AcquireLearnedSnapshot() (*LearnedSnapshot, error) {
	if co.structs == nil {
		return nil, ErrStructLearningOff
	}
	st := co.structs.state.Load()
	if st == nil {
		return nil, ErrNoLearnedStructure
	}
	return &LearnedSnapshot{s: st}, nil
}

// LearnedStructure returns the current learned tree and its structure
// epoch; ok is false before the first learn (or with learning off).
func (co *Coordinator) LearnedStructure() (netw *bn.Network, epoch uint64, ok bool) {
	if co.structs == nil {
		return nil, 0, false
	}
	st := co.structs.state.Load()
	if st == nil {
		return nil, 0, false
	}
	return st.net, st.epoch, true
}

// StructLearnStats returns the structure-learning overlay's tallies (zero
// values when learning is off).
func (co *Coordinator) StructLearnStats() StructStats {
	if co.structs == nil {
		return StructStats{}
	}
	return co.structs.stats()
}
