package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/stream"
)

// RunLocal executes a full cluster run on loopback TCP: it starts a
// coordinator on an ephemeral port, launches cfg.Sites site goroutines (each
// with its own TCP connection), and returns the run result together with the
// coordinator (still usable for queries). Sites generate the same per-site
// sub-streams as the in-process parallel engine (stream.NewSiteTrainings
// with seed StreamSeed+id), so a cluster run and a sharded in-process run
// over the same StreamSeed ingest identical events.
//
// With Config.LiveQueryMicros set, RunLocal also drives a mid-run query mix:
// a dedicated goroutine issues QueryProb on random assignments (every eighth
// probe an EstimatedModel) against the coordinator for as long as the sites
// stream — exercising the live snapshot-query path, the paper's
// query-at-any-time model. The number of queries issued is returned in
// Result.LiveQueries.
//
// This is the harness behind the Figure 7/8 experiments and the cluster
// example; cmd/bncluster runs the same roles as separate processes.
func RunLocal(cfg Config) (Result, *Coordinator, error) {
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		return Result{}, nil, err
	}
	defer co.Close()

	type siteOut struct {
		stats Stats
		err   error
	}
	outs := make([]siteOut, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := NewSite(uint32(i), co.Addr()).Run()
			outs[i] = siteOut{stats: st, err: err}
		}(i)
	}

	// The mid-run query mix: hammer the live query paths until Serve is
	// done. Queries race ingestion by design — that is the scenario the
	// striped snapshot machinery exists for.
	var queries atomic.Int64
	var qwg sync.WaitGroup
	stop := make(chan struct{})
	if cfg.LiveQueryMicros > 0 {
		interval := time.Duration(cfg.LiveQueryMicros) * time.Microsecond
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			queries.Store(LiveQueryMix(co, cfg.StreamSeed^0x11fe, interval, stop))
		}()
	}

	res, serveErr := co.Serve()
	close(stop)
	qwg.Wait()
	wg.Wait()
	if serveErr != nil {
		return Result{}, nil, serveErr
	}
	for i, o := range outs {
		if o.err != nil {
			return Result{}, nil, fmt.Errorf("cluster: site %d: %w", i, o.err)
		}
		if o.stats != res.Stats {
			return Result{}, nil, fmt.Errorf("cluster: site %d saw stats %+v, coordinator %+v", i, o.stats, res.Stats)
		}
	}
	res.LiveQueries = queries.Load()
	return res, co, nil
}

// ChurnConfig parameterizes RunLocalChurn's deterministic site churn.
type ChurnConfig struct {
	// Seed derives every site's crash schedule.
	Seed uint64
	// CrashesPerSite is how many times each site process is killed and
	// restarted over its stream (crash points are seeded ascending stream
	// positions, so the schedule is reproducible and timing-independent).
	CrashesPerSite int
}

// RunLocalChurn is RunLocal under site churn: each site goroutine is killed
// (via the Site.CrashAfterEvents chaos hook — the site stops dead at a
// deterministic stream position without sending Done) and restarted as a
// fresh process-equivalent Site at CrashesPerSite seeded points of its
// stream. A restarted site rejoins with a plain hello and replays its stream
// from event zero; per-site determinism reproduces the identical report
// decisions and the coordinator's max-merge fold absorbs the duplicates, so
// the final estimates are bit-identical to an uninterrupted RunLocal of the
// same Config (asserted by the chaos suite).
func RunLocalChurn(cfg Config, churn ChurnConfig) (Result, *Coordinator, error) {
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		return Result{}, nil, err
	}
	defer co.Close()

	type siteOut struct {
		stats Stats
		err   error
	}
	outs := make([]siteOut, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := bn.NewRNG(churn.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
			ev := uint64(cfg.eventsFor(uint32(i)))
			// Ascending crash points: each incarnation must outlive the
			// previous crash position or the schedule would livelock.
			points := make([]uint64, 0, churn.CrashesPerSite)
			for ev > 0 && len(points) < churn.CrashesPerSite {
				p := 1 + uint64(rng.Intn(int(ev)))
				if len(points) == 0 || p > points[len(points)-1] {
					points = append(points, p)
				} else {
					break // tail of the schedule collapsed; fewer crashes, still valid
				}
			}
			for _, p := range points {
				s := NewSite(uint32(i), co.Addr())
				s.CrashAfterEvents = p
				if _, err := s.Run(); !errors.Is(err, ErrSiteCrashed) {
					outs[i] = siteOut{err: fmt.Errorf("cluster: churn site %d: crash hook returned %v, want ErrSiteCrashed", i, err)}
					return
				}
			}
			st, err := NewSite(uint32(i), co.Addr()).Run()
			outs[i] = siteOut{stats: st, err: err}
		}(i)
	}

	res, serveErr := co.Serve()
	wg.Wait()
	if serveErr != nil {
		return Result{}, nil, serveErr
	}
	for i, o := range outs {
		if o.err != nil {
			return Result{}, nil, fmt.Errorf("cluster: site %d: %w", i, o.err)
		}
		if o.stats != res.Stats {
			return Result{}, nil, fmt.Errorf("cluster: site %d saw stats %+v, coordinator %+v", i, o.stats, res.Stats)
		}
	}
	return res, co, nil
}

// RunLocalTree is RunLocal with a depth-2 aggregation tree between the sites
// and the coordinator: ⌈Sites/branching⌉ relays each front a contiguous chunk
// of up to branching sites, fold their frames locally, and ship coalesced
// grouped frames upstream — so the coordinator's frame rate divides by the
// branching factor while the folded per-site vectors (monotone counts,
// idempotent max-merge) keep every final estimate bit-identical to a flat
// RunLocal of the same Config. flush is the relays' FlushInterval (0 selects
// the default); the returned relays are already closed.
func RunLocalTree(cfg Config, branching int, flush time.Duration) (Result, *Coordinator, []*Relay, error) {
	if branching < 1 {
		return Result{}, nil, nil, fmt.Errorf("cluster: tree branching = %d, want >= 1", branching)
	}
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		return Result{}, nil, nil, err
	}
	defer co.Close()

	nRelays := (cfg.Sites + branching - 1) / branching
	relays := make([]*Relay, nRelays)
	var rwg sync.WaitGroup
	for i := range relays {
		r, err := NewRelay(RelayConfig{ID: uint32(i), Parent: co.Addr(), FlushInterval: flush}, "127.0.0.1:0")
		if err != nil {
			for _, r := range relays[:i] {
				r.Close()
			}
			return Result{}, nil, nil, err
		}
		relays[i] = r
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			r.Run()
		}()
	}
	defer func() {
		for _, r := range relays {
			r.Close()
		}
		rwg.Wait()
	}()

	type siteOut struct {
		stats Stats
		err   error
	}
	outs := make([]siteOut, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := NewSite(uint32(i), relays[i/branching].Addr()).Run()
			outs[i] = siteOut{stats: st, err: err}
		}(i)
	}

	res, serveErr := co.Serve()
	wg.Wait()
	if serveErr != nil {
		return Result{}, nil, nil, serveErr
	}
	for i, o := range outs {
		if o.err != nil {
			return Result{}, nil, nil, fmt.Errorf("cluster: site %d: %w", i, o.err)
		}
		if o.stats != res.Stats {
			return Result{}, nil, nil, fmt.Errorf("cluster: site %d saw stats %+v, coordinator %+v", i, o.stats, res.Stats)
		}
	}
	return res, co, relays, nil
}

// LiveQueryMix drives the standard mid-run query workload against a live
// coordinator until stop closes, returning the number of queries issued: a
// QueryProb on a fresh random assignment every interval, with every eighth
// probe an EstimatedModel materialization. The answers come from the
// version-validated snapshot path and deliberately race ingestion — the
// paper's query-at-any-time model. RunLocal runs this when
// Config.LiveQueryMicros is set; cmd/bncluster's coordinator role uses it
// to serve queries while remote sites stream.
func LiveQueryMix(co *Coordinator, seed uint64, interval time.Duration, stop <-chan struct{}) int64 {
	rng := bn.NewRNG(seed)
	var x []int
	var n int64
	for i := 0; ; i++ {
		select {
		case <-stop:
			return n
		default:
		}
		x = stream.RandomAssignment(co.Network(), rng, x)
		if i%8 == 7 {
			_, _ = co.EstimatedModel()
		} else {
			_ = co.QueryProb(x)
		}
		n++
		time.Sleep(interval)
	}
}
