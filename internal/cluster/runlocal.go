package cluster

import (
	"fmt"
	"sync"
)

// RunLocal executes a full cluster run on loopback TCP: it starts a
// coordinator on an ephemeral port, launches cfg.Sites site goroutines (each
// with its own TCP connection), and returns the run result together with the
// coordinator (still usable for queries). Sites generate the same per-site
// sub-streams as the in-process parallel engine (stream.NewSiteTrainings
// with seed StreamSeed+id), so a cluster run and a sharded in-process run
// over the same StreamSeed ingest identical events. This is the harness
// behind the Figure 7/8 experiments and the cluster example; cmd/bncluster
// runs the same roles as separate processes.
func RunLocal(cfg Config) (Result, *Coordinator, error) {
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		return Result{}, nil, err
	}
	defer co.Close()

	type siteOut struct {
		stats Stats
		err   error
	}
	outs := make([]siteOut, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := NewSite(uint32(i), co.Addr()).Run()
			outs[i] = siteOut{stats: st, err: err}
		}(i)
	}

	res, serveErr := co.Serve()
	wg.Wait()
	if serveErr != nil {
		return Result{}, nil, serveErr
	}
	for i, o := range outs {
		if o.err != nil {
			return Result{}, nil, fmt.Errorf("cluster: site %d: %w", i, o.err)
		}
		if o.stats != res.Stats {
			return Result{}, nil, fmt.Errorf("cluster: site %d saw stats %+v, coordinator %+v", i, o.stats, res.Stats)
		}
	}
	return res, co, nil
}
