package cluster

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"distbayes/internal/bn"
	"distbayes/internal/cluster/chaos"
	"distbayes/internal/core"
)

// The chaos suite: kill-and-restart sites and the coordinator at seeded
// points of a fig7-scale run and check the result against an uninterrupted
// run. The assertions are stronger than the (ε, δ) envelope the issue asks
// for — per-site determinism (seeded streams, seeded report RNGs), monotone
// counts and the coordinator's idempotent max-merge make the final estimates
// *bit-identical* under every fault the harness injects, so the tests pin
// exact fingerprint equality (which subsumes the envelope, and keeps exact
// counters exact). All fault schedules are frame- or event-indexed, never
// timer-based, so every failure reproduces from its seed.

// chaosConfig is the fig7-scale run the chaos tests perturb; -short shrinks
// it to a CI-friendly deterministic configuration.
func chaosConfig(t *testing.T, strategy core.Strategy) Config {
	events := 20000
	if testing.Short() {
		events = 6000
	}
	return Config{
		NetName: "alarm", CPTSeed: 0xC0DE, Strategy: strategy, Eps: 0.1, Delta: 0.25,
		Sites: 4, Events: events, StreamSeed: 1789,
	}
}

// baselineFingerprint runs cfg uninterrupted and returns its estimate
// fingerprint and stats.
func baselineFingerprint(t *testing.T, cfg Config) (uint64, Stats) {
	t.Helper()
	res, co, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return estFingerprint(co), res.Stats
}

// runThroughProxy drives a full run with every site connected through a
// chaos proxy, with generous site retry budgets (the faults are the point).
// configure, when non-nil, tweaks each site before it runs.
func runThroughProxy(t *testing.T, cfg Config, pcfg chaos.Config, configure func(*Site)) (Result, *Coordinator, *chaos.Proxy) {
	t.Helper()
	co, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	p, err := chaos.New(pcfg, co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	errs := make([]error, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSite(uint32(i), p.Addr())
			s.RetryBase = 2 * time.Millisecond
			s.RetryCap = 50 * time.Millisecond
			if configure != nil {
				configure(s)
			}
			_, errs[i] = s.Run()
		}(i)
	}
	res, err := co.Serve()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
	}
	return res, co, p
}

// TestChaosSeveredConnectionsBitIdentical: every site connection is severed
// repeatedly at seeded frame counts — sometimes mid-frame, so the
// coordinator sees truncated payloads — and sites resume with the v3
// handshake and replay. The final estimates must equal the uninterrupted
// run's bit for bit, for an approximate strategy and for ExactMLE (exact
// counters stay exact).
func TestChaosSeveredConnectionsBitIdentical(t *testing.T) {
	for _, strategy := range []core.Strategy{core.Uniform, core.ExactMLE} {
		t.Run(strategy.String(), func(t *testing.T) {
			cfg := chaosConfig(t, strategy)
			want, base := baselineFingerprint(t, cfg)
			res, co, p := runThroughProxy(t, cfg, chaos.Config{
				Seed:            0xBAD5EED,
				SeverMinFrames:  60,
				SeverMaxFrames:  500,
				MidFrameCutProb: 0.4,
			}, nil)
			if p.Severed() == 0 {
				t.Error("proxy severed no connections; the chaos run degenerated to a clean one")
			}
			t.Logf("severed %d connections over %d admissions", p.Severed(), p.Connections())
			if got := estFingerprint(co); got != want {
				t.Errorf("estimate fingerprint %#016x != uninterrupted %#016x", got, want)
			}
			if res.Stats.Events != base.Events {
				t.Errorf("events = %d, want %d", res.Stats.Events, base.Events)
			}
		})
	}
}

// TestChaosDuplicatesAndDelayBitIdentical: update frames are duplicated and
// delivered in held-back bursts on top of severing. Duplicates and delayed
// replays are exactly what the max-merge fold absorbs; the estimates must
// still be bit-identical (the frame *count* legitimately differs, so only
// events and estimates are pinned).
func TestChaosDuplicatesAndDelayBitIdentical(t *testing.T) {
	cfg := chaosConfig(t, core.Uniform)
	cfg.SiteBatchEvents = 64 // exercise the v2 framing under faults too
	cfg.Shards = 4
	want, base := baselineFingerprint(t, cfg)
	// Batched sites send ~events/window frames in total, so the sever window
	// must sit well inside that (a batched connection is only ~25 frames
	// long at the -short scale).
	res, co, p := runThroughProxy(t, cfg, chaos.Config{
		Seed:            0xD00D,
		SeverMinFrames:  5,
		SeverMaxFrames:  18,
		MidFrameCutProb: 0.25,
		DupProb:         0.2,
		HoldEvery:       7,
		HoldFrames:      3,
	}, nil)
	if p.Severed() == 0 || p.Duplicated() == 0 {
		t.Errorf("faults did not fire (severed %d, duplicated %d)", p.Severed(), p.Duplicated())
	}
	t.Logf("severed %d, duplicated %d over %d admissions", p.Severed(), p.Duplicated(), p.Connections())
	if got := estFingerprint(co); got != want {
		t.Errorf("estimate fingerprint %#016x != uninterrupted %#016x", got, want)
	}
	if res.Stats.Events != base.Events {
		t.Errorf("events = %d, want %d", res.Stats.Events, base.Events)
	}
}

// TestChaosSiteKillRestartBitIdentical kills every site process at seeded
// stream positions (no Done, no goodbye — the CrashAfterEvents hook) and
// restarts it from scratch; the rejoin replays the deterministic stream, the
// fold dedups, and the estimates must match the uninterrupted run bit for
// bit.
func TestChaosSiteKillRestartBitIdentical(t *testing.T) {
	for _, strategy := range []core.Strategy{core.Uniform, core.ExactMLE} {
		t.Run(strategy.String(), func(t *testing.T) {
			cfg := chaosConfig(t, strategy)
			want, base := baselineFingerprint(t, cfg)
			res, co, err := RunLocalChurn(cfg, ChurnConfig{Seed: 0xFEE1DEAD, CrashesPerSite: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got := estFingerprint(co); got != want {
				t.Errorf("estimate fingerprint %#016x != uninterrupted %#016x", got, want)
			}
			if res.Stats.Events != base.Events {
				t.Errorf("events = %d, want %d", res.Stats.Events, base.Events)
			}
		})
	}
}

// TestChaosCoordinatorKillRestartConverges kills the coordinator mid-run (an
// abrupt Close: connections die, no stats, exactly what kill -9 leaves
// behind), restarts a fresh one from the last periodic checkpoint, retargets
// the proxy — the sites' stable rendezvous — and lets the sites re-resume
// against the restored state. The run must complete with every event
// accounted for and estimates bit-identical to an uninterrupted run: the
// checkpoint is a lower bound on every site's decided reports and the resume
// replay + continued stream raise each matrix cell to exactly its
// uninterrupted final value.
func TestChaosCoordinatorKillRestartConverges(t *testing.T) {
	cfg := chaosConfig(t, core.Uniform)
	want, base := baselineFingerprint(t, cfg)

	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "coord.ckpt")
	cfg.CheckpointEveryFrames = 300

	co1, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Kill the coordinator at a seeded frame count (deterministic — frame
	// counters do not depend on timing; the assertions below hold for any
	// kill point, which is the invariant under test). The point sits past
	// several checkpoint cadences and well before the run can finish.
	rng := bn.NewRNG(0x5EEDC0DE)
	co1.CrashAfterFrames = int64(cfg.Events/4 + rng.Intn(cfg.Events/4))
	p, err := chaos.New(chaos.Config{}, co1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	stats := make([]Stats, cfg.Sites)
	errs := make([]error, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSite(uint32(i), p.Addr())
			s.RetryBase = 2 * time.Millisecond
			s.RetryCap = 50 * time.Millisecond
			s.MaxResumes = 200 // the coordinator is gone for a stretch; keep knocking
			stats[i], errs[i] = s.Run()
		}(i)
	}

	serve1 := make(chan error, 1)
	go func() {
		_, err := co1.Serve()
		serve1 <- err
	}()

	if err := <-serve1; err != ErrCoordinatorClosed {
		t.Fatalf("killed Serve returned %v, want ErrCoordinatorClosed", err)
	}
	// A cadence checkpoint must exist by now (the kill point is past many
	// cadences); the write is asynchronous, so allow it a moment to land.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(cfg.CheckpointPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint file appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}

	co2, err := NewCoordinator(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co2.Close() })
	if err := co2.RestoreCheckpointFile(cfg.CheckpointPath); err != nil {
		t.Fatal(err)
	}
	p.SetTarget(co2.Addr())

	serve2 := make(chan Result, 1)
	go func() {
		res, err := co2.Serve()
		if err != nil {
			t.Error(err)
		}
		serve2 <- res
	}()
	wg.Wait()
	res := <-serve2

	for i, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
		if stats[i] != res.Stats {
			t.Errorf("site %d saw stats %+v, coordinator %+v", i, stats[i], res.Stats)
		}
	}
	if res.Stats.Events != base.Events {
		t.Errorf("events = %d, want %d (every event accounted for across the restart)", res.Stats.Events, base.Events)
	}
	if got := estFingerprint(co2); got != want {
		t.Errorf("estimate fingerprint %#016x != uninterrupted %#016x", got, want)
	}
	if err := co2.LastCheckpointError(); err != nil {
		t.Errorf("periodic checkpointing failed: %v", err)
	}
}

// TestChaosCoordinatorRestartAfterCompletion: a coordinator restored from a
// checkpoint written after the run completed must serve immediately and
// still answer a straggler site's resume with the closing stats.
func TestChaosCoordinatorRestartAfterCompletion(t *testing.T) {
	cfg := chaosConfig(t, core.Uniform)
	cfg.Events = 2000
	dir := t.TempDir()
	cfg.CheckpointPath = filepath.Join(dir, "coord.ckpt")
	cfg.CheckpointEveryFrames = 100

	res1, co1, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := estFingerprint(co1)
	// RunLocal closes the coordinator on return; the final checkpoint write
	// races that close, so wait for the checkpoint loop's last write by
	// polling for a restorable complete-run checkpoint.
	deadline := time.Now().Add(10 * time.Second)
	var co2 *Coordinator
	for {
		co2, err = NewCoordinator(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// Only a complete-run checkpoint restores every site's Done marker;
		// a mid-run one would make Serve wait for sites that never come.
		if err := co2.RestoreCheckpointFile(cfg.CheckpointPath); err == nil &&
			co2.LiveStats().Events == res1.Stats.Events {
			if res, err := co2.Serve(); err == nil && res.Stats.Events == res1.Stats.Events {
				break
			}
		}
		co2.Close()
		co2 = nil
		if time.Now().After(deadline) {
			t.Fatal("no complete-run checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer co2.Close()
	if got := estFingerprint(co2); got != want {
		t.Errorf("restored estimate fingerprint %#016x != original %#016x", got, want)
	}
}
