package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"distbayes/internal/core"
)

// fuzzMaxSites bounds the checkpoint membership table under fuzzing, small
// enough that the fuzzer trivially constructs out-of-range site counts.
const fuzzMaxSites = 8

// FuzzDecodeResumeFrame feeds arbitrary bytes to the protocol-v3 decoders
// introduced with reconnect-and-resume: the resume request, the resume ack,
// and the DBCLUS01 checkpoint reader. The first input byte selects the
// decoder, the rest is the payload. Every decoder must reject garbage with
// an error — never panic, and never allocate beyond what its validated
// lengths admit (the checkpoint reader length-checks the site count and
// every row record before allocating, the same discipline FuzzDecodeFrame
// pins for the wire frames). Successful resume/ack decodes are re-encoded
// and compared, pinning the round trip on fuzzer-discovered inputs.
func FuzzDecodeResumeFrame(f *testing.F) {
	for _, seed := range fuzzResumeSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		payload := data[1:]
		switch data[0] % 3 {
		case 0:
			req, err := decodeResume(payload)
			if err != nil {
				return
			}
			if !bytes.Equal(encodeResume(req), payload) {
				t.Fatalf("resume round trip diverged for %+v", req)
			}
		case 1:
			ack, err := decodeResumeAck(payload)
			if err != nil {
				return
			}
			if !bytes.Equal(encodeResumeAck(ack), payload) {
				t.Fatalf("resume ack round trip diverged for %+v", ack)
			}
		case 2:
			st, err := readCheckpoint(bytes.NewReader(payload), fuzzMaxSites, fuzzMaxCounters)
			if err != nil {
				return
			}
			if len(st.Sites) == 0 || len(st.Sites) > fuzzMaxSites {
				t.Fatalf("readCheckpoint accepted %d sites", len(st.Sites))
			}
			for s := range st.Sites {
				row := st.Sites[s].Row
				for i, u := range row {
					if u.Counter >= fuzzMaxCounters || u.LocalCount < 0 {
						t.Fatalf("readCheckpoint accepted invalid row entry %d/%d: %+v", s, i, u)
					}
					if i > 0 && row[i-1].Counter >= u.Counter {
						t.Fatalf("readCheckpoint accepted non-ascending ids at %d/%d", s, i)
					}
				}
			}
		}
	})
}

// fuzzResumeSeeds builds one valid payload per v3 decoder (selector byte
// first) plus truncated and bit-flipped mutants, so fuzzing starts deep
// inside each format.
func fuzzResumeSeeds() [][]byte {
	resume := encodeResume(resumeReq{Site: 3, Events: 123456, Flags: 0})
	ack := encodeResumeAck(resumeAck{Epoch: 2, SiteEvents: 4000, Flags: resumeRunComplete | resumeSiteDone})

	var ckpt bytes.Buffer
	cw, err := core.NewCkptWriter(&ckpt, checkpointMagic)
	if err != nil {
		panic(err)
	}
	row := encodeUpdates2(nil, []Update{
		{Counter: 0, LocalCount: 1}, {Counter: 7, LocalCount: 300}, {Counter: 900, LocalCount: 1 << 40},
	})
	for _, v := range []uint64{0xfeedface, 1, 5003, 296000, 2} {
		if err := cw.PutU64(v); err != nil {
			panic(err)
		}
	}
	for _, site := range []struct {
		done, events uint64
		row          []byte
	}{{1, 2000, row}, {0, 0, encodeUpdates2(nil, nil)}} {
		if err := cw.PutU64(site.done); err != nil {
			panic(err)
		}
		if err := cw.PutU64(site.events); err != nil {
			panic(err)
		}
		if err := cw.PutRecord(site.row); err != nil {
			panic(err)
		}
	}
	if err := cw.Flush(); err != nil {
		panic(err)
	}

	var seeds [][]byte
	add := func(sel byte, payload []byte) {
		seeds = append(seeds, append([]byte{sel}, payload...))
		if len(payload) > 2 {
			seeds = append(seeds, append([]byte{sel}, payload[:len(payload)/2]...))
			flipped := append([]byte{sel}, payload...)
			flipped[1+len(payload)/3] ^= 0x40
			seeds = append(seeds, flipped)
		}
	}
	add(0, resume)
	add(1, ack)
	add(2, ckpt.Bytes())
	// Adversarial checkpoint headers: magic only, and a declared site count
	// far past any membership table.
	seeds = append(seeds, append([]byte{2}, []byte(checkpointMagic)...))
	huge := append([]byte{2}, ckpt.Bytes()[:8+4*8]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	seeds = append(seeds, huge)
	return seeds
}

// TestWriteFuzzDecodeResumeFrameCorpus regenerates the committed seed corpus
// under testdata/fuzz when DISTBAYES_WRITE_FUZZ_CORPUS is set; normally it
// only verifies the corpus directory exists.
func TestWriteFuzzDecodeResumeFrameCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeResumeFrame")
	if os.Getenv("DISTBAYES_WRITE_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing: %v (regenerate with DISTBAYES_WRITE_FUZZ_CORPUS=1)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzResumeSeeds() {
		payload := []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n")
		if err := os.WriteFile(filepath.Join(dir, "seed"+strconv.Itoa(i)), payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
