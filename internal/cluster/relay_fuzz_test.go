package cluster

import (
	"path/filepath"
	"testing"
)

// fuzzRelaySites bounds the per-group site ids the grouped-frame decoder is
// fuzzed against, mirroring fuzzMaxCounters for the inner payloads.
const fuzzRelaySites = 16

// FuzzRelayGroups feeds arbitrary bytes through the relay's frame re-encode
// path: decode a grouped frameRelayUpdates payload, fold each group's inner
// updates2 batch into per-site max-merge vectors (exactly the relay's fold),
// re-encode the folded state as one grouped frame the way flushUp does, and
// decode it again. Whatever the input — truncated groups, adversarial
// counts, out-of-range sites or ids — the decoders must error or produce
// well-formed groups, never panic, and the fold → re-encode → decode round
// trip must reproduce the folded per-site state exactly (the invariant that
// makes a relay tier invisible to final estimates).
func FuzzRelayGroups(f *testing.F) {
	for _, seed := range fuzzRelayGroupSeeds() {
		f.Add(seed)
	}
	innerCap := updatesPayloadCap(fuzzMaxCounters)
	f.Fuzz(func(t *testing.T, data []byte) {
		groups, err := decodeRelayGroups(nil, data, fuzzRelaySites, innerCap)
		if err != nil {
			return
		}
		// Fold: the relay's per-site max-merge over monotone counts.
		folded := map[uint32]map[uint32]int64{}
		for _, g := range groups {
			if g.Site >= fuzzRelaySites {
				t.Fatalf("decodeRelayGroups accepted out-of-range site %d", g.Site)
			}
			ups, err := decodeUpdates2(nil, g.Payload, fuzzMaxCounters)
			if err != nil {
				continue // garbage inner payload: the relay drops the conn
			}
			m := folded[g.Site]
			if m == nil {
				m = map[uint32]int64{}
				folded[g.Site] = m
			}
			for _, u := range ups {
				if u.LocalCount > m[u.Counter] {
					m[u.Counter] = u.LocalCount
				}
			}
		}
		// Re-encode the folded state the way flushUp does: per site, the
		// dirty counters ascending, grouped into one frame.
		var out []relayGroup
		var ups []Update
		for site := uint32(0); site < fuzzRelaySites; site++ {
			m := folded[site]
			if len(m) == 0 {
				continue
			}
			ups = ups[:0]
			for id := uint32(0); id < fuzzMaxCounters; id++ {
				if n, ok := m[id]; ok {
					ups = append(ups, Update{Counter: id, LocalCount: n})
				}
			}
			out = append(out, relayGroup{Site: site, Payload: encodeUpdates2(nil, ups)})
		}
		if len(out) == 0 {
			return
		}
		again, err := decodeRelayGroups(nil, encodeRelayGroups(nil, out), fuzzRelaySites, innerCap)
		if err != nil {
			t.Fatalf("re-decode of re-encoded groups failed: %v", err)
		}
		if len(again) != len(out) {
			t.Fatalf("round trip changed group count: %d != %d", len(again), len(out))
		}
		for i, g := range again {
			if g.Site != out[i].Site {
				t.Fatalf("round trip changed group %d site: %d != %d", i, g.Site, out[i].Site)
			}
			ups, err := decodeUpdates2(nil, g.Payload, fuzzMaxCounters)
			if err != nil {
				t.Fatalf("round-tripped group %d payload invalid: %v", i, err)
			}
			m := folded[g.Site]
			if len(ups) != len(m) {
				t.Fatalf("group %d entry count %d, folded %d", i, len(ups), len(m))
			}
			for _, u := range ups {
				if m[u.Counter] != u.LocalCount {
					t.Fatalf("group %d counter %d: round trip %d, folded %d",
						i, u.Counter, u.LocalCount, m[u.Counter])
				}
			}
		}
	})
}

// fuzzRelayGroupSeeds builds valid grouped payloads (including duplicate
// sites, which the fold must merge) plus truncated and bit-flipped mutants
// and adversarial headers.
func fuzzRelayGroupSeeds() [][]byte {
	one := encodeRelayGroups(nil, []relayGroup{
		{Site: 0, Payload: encodeUpdates2(nil, []Update{{Counter: 1, LocalCount: 5}})},
	})
	multi := encodeRelayGroups(nil, []relayGroup{
		{Site: 2, Payload: encodeUpdates2(nil, []Update{{Counter: 0, LocalCount: 1}, {Counter: 900, LocalCount: 1 << 40}})},
		{Site: 7, Payload: encodeUpdates2(nil, []Update{{Counter: 3, LocalCount: 7}})},
	})
	dup := encodeRelayGroups(nil, []relayGroup{
		{Site: 4, Payload: encodeUpdates2(nil, []Update{{Counter: 10, LocalCount: 3}})},
		{Site: 4, Payload: encodeUpdates2(nil, []Update{{Counter: 10, LocalCount: 9}, {Counter: 11, LocalCount: 1}})},
	})
	empty := encodeRelayGroups(nil, nil)

	var seeds [][]byte
	add := func(payload []byte) {
		seeds = append(seeds, payload)
		if len(payload) > 2 {
			seeds = append(seeds, payload[:len(payload)/2])
			flipped := append([]byte(nil), payload...)
			flipped[len(payload)/3] ^= 0x40
			seeds = append(seeds, flipped)
		}
	}
	add(one)
	add(multi)
	add(dup)
	add(empty)
	// Adversarial headers: huge declared group count, max-varint count,
	// group length larger than the remaining payload.
	seeds = append(seeds, []byte{0xff, 0xff, 0xff, 0xff, 0x0f, 1, 1})
	seeds = append(seeds, append(maxUvarint(), 1, 1))
	seeds = append(seeds, []byte{1, 0, 0x7f, 1, 2, 3})
	return seeds
}

// TestWriteFuzzRelayGroupsCorpus regenerates the committed seed corpus for
// FuzzRelayGroups when DISTBAYES_WRITE_FUZZ_CORPUS is set; normally it only
// verifies the corpus directory exists.
func TestWriteFuzzRelayGroupsCorpus(t *testing.T) {
	writeFuzzCorpus(t, filepath.Join("testdata", "fuzz", "FuzzRelayGroups"), fuzzRelayGroupSeeds())
}
