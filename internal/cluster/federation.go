package cluster

import (
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"distbayes/internal/bn"
)

// Striped coordinator federation: the flat counter-id space is partitioned
// into K contiguous stripes (Layout.StripeRange), each owned by its own
// coordinator process. Sites run ONE stream and route each decided report to
// the stripe's owner, so ingest load divides across the federation; queries
// scatter-gather the per-stripe estimate snapshots and merge them — exact,
// because the estimate of a counter depends only on that counter's per-site
// reports, which live wholly inside one stripe. Estimates are therefore
// bit-identical to a flat run of the same Config (asserted by the federation
// tests): striping moves counters between machines, never across sites.

// FederatedSite is a site of a striped run: it connects to every stripe
// coordinator, verifies they describe the same run, generates its share of
// the stream ONCE (the same deterministic siteRun a flat Site regenerates —
// same counters, same RNG draw order, so every report decision is identical
// to the flat run's), and routes each decided report to the coordinator
// owning its counter id.
//
// FederatedSite does not resume: a lost stripe connection fails the site.
// Fault tolerance in the federation PR lives on the aggregation-tree tier
// (relays reconnect and replay; sites behind them resume as before) — a
// striped site would additionally need per-stripe resume cursors, which is
// future work.
type FederatedSite struct {
	id uint32
	// addrs[i] is stripe i's coordinator address.
	addrs []string

	// DialAttempts, RetryBase, RetryCap shape the per-stripe dial retry
	// exactly as on Site; zero selects the same defaults.
	DialAttempts        int
	RetryBase, RetryCap time.Duration
}

// NewFederatedSite prepares a federated site with the given id; addrs[i]
// must be the coordinator owning stripe i of len(addrs).
func NewFederatedSite(id uint32, addrs []string) *FederatedSite {
	return &FederatedSite{id: id, addrs: addrs}
}

func (s *FederatedSite) dialRetry(addr string, jrng *bn.RNG) (net.Conn, error) {
	helper := Site{id: s.id, addr: addr, DialAttempts: s.DialAttempts, RetryBase: s.RetryBase, RetryCap: s.RetryCap}
	return helper.dialRetry(jrng)
}

// Run connects to every stripe coordinator, processes the configured stream
// once, and returns each stripe's closing Stats (index = stripe). All
// stripes report the same Events (every site's Done carries its full event
// count to every stripe); Frames and Updates are per-stripe.
func (s *FederatedSite) Run() ([]Stats, error) {
	k := len(s.addrs)
	if k < 1 {
		return nil, fmt.Errorf("cluster: federated site %d has no stripe addresses", s.id)
	}
	jrng := bn.NewRNG(0xfede5a1e ^ (uint64(s.id) * 0x9e3779b97f4a7c15))
	conns := make([]*conn, k)
	raws := make([]net.Conn, k)
	defer func() {
		for _, raw := range raws {
			if raw != nil {
				raw.Close()
			}
		}
	}()

	// Handshake with every stripe; the StartConfigs must agree on everything
	// but the stripe index (one run, K owners).
	var base StartConfig
	for i, addr := range s.addrs {
		raw, err := s.dialRetry(addr, jrng)
		if err != nil {
			return nil, err
		}
		raws[i] = raw
		c := newConn(raw)
		if err := c.writeFrame(frameHello, encodeHello(s.id)); err != nil {
			return nil, err
		}
		if err := c.flush(); err != nil {
			return nil, err
		}
		t, payload, err := c.readFrame()
		if err != nil {
			return nil, fmt.Errorf("cluster: federated site %d waiting for start from stripe %d: %w", s.id, i, err)
		}
		if t != frameStart {
			return nil, fmt.Errorf("cluster: federated site %d got frame %d from stripe %d, want start", s.id, t, i)
		}
		cfg, err := decodeStart(payload)
		if err != nil {
			return nil, err
		}
		if int(cfg.StripeCount) != k || int(cfg.StripeIndex) != i {
			return nil, fmt.Errorf("cluster: federated site %d: stripe %d announced stripe %d/%d, want %d/%d",
				s.id, i, cfg.StripeIndex, cfg.StripeCount, i, k)
		}
		norm := cfg
		norm.StripeIndex = 0
		if i == 0 {
			base = norm
		} else if norm != base {
			return nil, fmt.Errorf("cluster: federated site %d: stripe %d describes a different run than stripe 0", s.id, i)
		}
		conns[i] = c
	}

	// One stream, regenerated exactly as a flat Site would (the stripe
	// fields do not enter the regeneration), so every report decision —
	// counter value and RNG draw order — matches the flat run bit for bit.
	st, err := newSiteRun(s.id, base)
	if err != nil {
		return nil, err
	}
	// Owned-range bounds, ascending; los[i] is stripe i's first id and
	// stripe i owns [los[i], los[i+1]).
	los := make([]uint32, k+1)
	for i := 0; i < k; i++ {
		los[i], los[i+1] = st.layout.StripeRange(uint32(i), uint32(k))
	}

	// ship routes one ascending decided-report batch: split into contiguous
	// per-stripe runs (ids ascending makes each stripe's share one slice)
	// and frame each non-empty run to its owner.
	ship := func(frameType byte, ups []Update) error {
		stripe := 0
		for lo := 0; lo < len(ups); {
			for ups[lo].Counter >= los[stripe+1] {
				stripe++
			}
			hi := lo
			for hi < len(ups) && ups[hi].Counter < los[stripe+1] {
				hi++
			}
			if frameType == frameUpdates2 {
				st.buf = encodeUpdates2(st.buf, ups[lo:hi])
			} else {
				st.buf = encodeUpdates(st.buf, ups[lo:hi])
			}
			if err := conns[stripe].writeFrame(frameType, st.buf); err != nil {
				return err
			}
			lo = hi
		}
		return nil
	}

	cfg, netw, layout := st.cfg, st.netw, st.layout
	window := uint64(cfg.BatchEvents)
	const flushEvery = 1024
	flushAll := func() error {
		for _, c := range conns {
			if err := c.flush(); err != nil {
				return err
			}
		}
		return nil
	}
	flushBatch := func() error {
		if len(st.batch) == 0 {
			return nil
		}
		st.ups = st.ups[:0]
		for id, n := range st.batch {
			st.ups = append(st.ups, Update{Counter: id, LocalCount: n})
		}
		clear(st.batch)
		slices.SortFunc(st.ups, func(a, b Update) int { return int(a.Counter) - int(b.Counter) })
		if err := ship(frameUpdates2, st.ups); err != nil {
			return err
		}
		return flushAll()
	}

	for st.next < cfg.Events {
		e := st.next
		x := st.nextEvent()
		st.ups = st.ups[:0]
		for i := 0; i < netw.Len(); i++ {
			pidx := netw.ParentIndex(i, x)
			for _, id := range [2]uint32{layout.PairID(i, x[i], pidx), layout.ParID(i, pidx)} {
				if n, report := st.counts.inc(id, st.rng); report {
					st.lastReported[id] = n
					if st.batch != nil {
						st.batch[id] = n
					} else {
						st.ups = append(st.ups, Update{Counter: id, LocalCount: n})
					}
				}
			}
		}
		// Consumed before any fallible write, as in Site.process.
		st.next = e + 1
		if st.batch == nil {
			if len(st.ups) > 0 {
				// Per-event ups are ascending by construction (variable
				// blocks ascend; within one, pair ids precede parent ids).
				if err := ship(frameUpdates, st.ups); err != nil {
					return nil, err
				}
			}
			if (e+1)%flushEvery == 0 {
				if err := flushAll(); err != nil {
					return nil, err
				}
			}
		} else if (e+1)%window == 0 {
			if err := flushBatch(); err != nil {
				return nil, err
			}
		}
	}
	if st.batch != nil {
		if err := flushBatch(); err != nil {
			return nil, err
		}
	}

	// Done carries the site's full event count to EVERY stripe — each owner
	// supervises the whole membership, so each one's closing Events is the
	// run total.
	for _, c := range conns {
		if err := c.writeFrame(frameDone, encodeDone(s.id, int64(cfg.Events))); err != nil {
			return nil, err
		}
		if err := c.flush(); err != nil {
			return nil, err
		}
	}
	out := make([]Stats, k)
	helper := Site{id: s.id}
	for i, c := range conns {
		if out[i], err = helper.awaitStats(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Federation is the scatter-gather query plane over a striped run: one
// handle per stripe coordinator, merged into the same query surface a single
// coordinator offers (Estimate, QueryProb, EstimatedModel, AcquireSnapshot).
// The merge is exact — stripe s's snapshot is authoritative for exactly the
// ids in its owned range, and ranges partition the id space — so a federated
// query equals the flat coordinator's answer on the same reports.
type Federation struct {
	parts  []*Coordinator
	net    *bn.Network
	layout *Layout

	rebuildMu sync.Mutex
	snap      atomic.Pointer[fedSnapshot]
}

// fedSnapshot is one immutable merge of the per-stripe estimate snapshots.
type fedSnapshot struct {
	// versions[i] is part i's snapshot version at merge time.
	versions []uint64
	est      []float64
	model    atomic.Pointer[bn.Model]
	// version is the sum of the per-part versions — monotone non-decreasing,
	// like a single coordinator's snapshot version.
	version uint64
	builtAt time.Time
}

// NewFederation builds the query plane over the stripe coordinators;
// parts[i] must be configured as stripe i of len(parts) over the same run.
func NewFederation(parts []*Coordinator) (*Federation, error) {
	if len(parts) < 1 {
		return nil, fmt.Errorf("cluster: federation needs at least one coordinator")
	}
	for i, co := range parts {
		if co.cfg.StripeCount != len(parts) || co.cfg.StripeIndex != i {
			return nil, fmt.Errorf("cluster: federation part %d is stripe %d/%d, want %d/%d",
				i, co.cfg.StripeIndex, co.cfg.StripeCount, i, len(parts))
		}
		if co.cfg.NetName != parts[0].cfg.NetName || co.layout.NumCounters() != parts[0].layout.NumCounters() {
			return nil, fmt.Errorf("cluster: federation part %d tracks a different run than part 0", i)
		}
	}
	return &Federation{parts: parts, net: parts[0].net, layout: parts[0].layout}, nil
}

// Network returns the shared network structure.
func (f *Federation) Network() *bn.Network { return f.net }

// Err returns the first stripe coordinator failure, or nil while every
// stripe can still answer — the health probe the serving layer's federated
// source uses to flip into degraded mode when any stripe dies.
func (f *Federation) Err() error {
	for i, co := range f.parts {
		if err := co.Err(); err != nil {
			return fmt.Errorf("stripe %d: %w", i, err)
		}
	}
	return nil
}

// Estimate returns the federation's current estimate of a counter's global
// count, read live from the owning stripe.
func (f *Federation) Estimate(id uint32) float64 {
	total := f.layout.NumCounters()
	if id >= total {
		return 0
	}
	k := uint32(len(f.parts))
	// Invert StripeRange: candidate stripe from the uniform split, corrected
	// for the floor rounding (off by at most one).
	s := uint32(uint64(id) * uint64(k) / uint64(total))
	for {
		lo, hi := f.layout.StripeRange(s, k)
		if id < lo {
			s--
		} else if id >= hi {
			s++
		} else {
			return f.parts[s].Estimate(id)
		}
	}
}

// snapshot returns a current merged snapshot, re-merging only when some
// stripe's snapshot version moved. The per-part acquisitions reuse each
// coordinator's own version-validated snapshot, so a federation query
// against quiescent stripes costs K version comparisons.
func (f *Federation) snapshot() *fedSnapshot {
	parts := make([]*estSnapshot, len(f.parts))
	fresh := true
	old := f.snap.Load()
	for i, co := range f.parts {
		parts[i] = co.snapshot()
		if old == nil || old.versions[i] != parts[i].version {
			fresh = false
		}
	}
	if fresh {
		return old
	}
	f.rebuildMu.Lock()
	defer f.rebuildMu.Unlock()
	ns := &fedSnapshot{
		versions: make([]uint64, len(parts)),
		est:      make([]float64, f.layout.NumCounters()),
	}
	for i, ps := range parts {
		lo, hi := f.layout.StripeRange(uint32(i), uint32(len(parts)))
		copy(ns.est[lo:hi], ps.est[lo:hi])
		ns.versions[i] = ps.version
		ns.version += ps.version
	}
	ns.builtAt = time.Now()
	f.snap.Store(ns)
	return ns
}

// QueryProb answers a joint-probability query from the merged estimates —
// the same Algorithm-3 product a single coordinator computes.
func (f *Federation) QueryProb(x []int) float64 {
	est := f.snapshot().est
	p := 1.0
	for i := 0; i < f.net.Len(); i++ {
		pidx := f.net.ParentIndex(i, x)
		den := est[f.layout.ParID(i, pidx)]
		if den <= 0 {
			return 0
		}
		p *= est[f.layout.PairID(i, x[i], pidx)] / den
	}
	return p
}

// EstimatedModel materializes the merged estimates into a normalized
// bn.Model, cached per merged snapshot.
func (f *Federation) EstimatedModel() (*bn.Model, error) {
	return f.modelFor(f.snapshot())
}

func (f *Federation) modelFor(snap *fedSnapshot) (*bn.Model, error) {
	if m := snap.model.Load(); m != nil {
		return m, nil
	}
	est := snap.est
	m, err := bn.NewNormalizedModel(f.net, func(i int, tbl []float64) {
		j, k := f.net.Card(i), f.net.ParentCard(i)
		for pidx := 0; pidx < k; pidx++ {
			den := est[f.layout.ParID(i, pidx)]
			for v := 0; v < j; v++ {
				if den > 0 {
					tbl[pidx*j+v] = est[f.layout.PairID(i, v, pidx)] / den
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	snap.model.Store(m)
	return m, nil
}

// FedSnapshot is an exported read handle on one merged federation snapshot,
// offering the same surface as a single coordinator's Snapshot so the
// serving layer fronts a federation unchanged.
type FedSnapshot struct {
	f *Federation
	s *fedSnapshot
}

// AcquireSnapshot returns the current merged snapshot.
func (f *Federation) AcquireSnapshot() *FedSnapshot {
	return &FedSnapshot{f: f, s: f.snapshot()}
}

// Factor returns the merged estimate of P[X_i = v | parent config pidx].
func (s *FedSnapshot) Factor(i, v, pidx int) float64 {
	den := s.s.est[s.f.layout.ParID(i, pidx)]
	if den <= 0 {
		return 0
	}
	return s.s.est[s.f.layout.PairID(i, v, pidx)] / den
}

// Version is the sum of the per-stripe snapshot versions; monotone
// non-decreasing across acquisitions.
func (s *FedSnapshot) Version() uint64 { return s.s.version }

// BuiltAt is when the merge was computed.
func (s *FedSnapshot) BuiltAt() time.Time { return s.s.builtAt }

// Model returns the merged estimates normalized into a bn.Model, built at
// most once per merged snapshot; immutable.
func (s *FedSnapshot) Model() (*bn.Model, error) { return s.f.modelFor(s.s) }

// Network returns the tracked base network.
func (s *FedSnapshot) Network() *bn.Network { return s.f.net }

// StructureEpoch is always 0: striped federation tracks the configured base
// structure (striping and structure learning are mutually exclusive).
func (s *FedSnapshot) StructureEpoch() uint64 { return 0 }

// Release is a no-op: merged snapshots carry no pooled resources.
func (s *FedSnapshot) Release() {}

// RunLocalFederation executes a striped run on loopback TCP: K stripe
// coordinators (cfg with StripeIndex = 0..K-1, StripeCount = K), cfg.Sites
// federated site goroutines each routing its one stream across the stripes,
// and a Federation query plane over the coordinators (usable during and
// after the run). The aggregate Result reports Events from stripe 0 (every
// stripe supervises the full membership, so each one's Events is already the
// run total — summing would multiply by K) and sums Frames and Updates
// across stripes (each frame and update lands on exactly one stripe).
func RunLocalFederation(cfg Config, stripes int) (Result, *Federation, error) {
	if stripes < 1 {
		return Result{}, nil, fmt.Errorf("cluster: federation stripes = %d, want >= 1", stripes)
	}
	parts := make([]*Coordinator, stripes)
	addrs := make([]string, stripes)
	for i := range parts {
		pcfg := cfg
		pcfg.StripeIndex, pcfg.StripeCount = i, stripes
		co, err := NewCoordinator(pcfg, "127.0.0.1:0")
		if err != nil {
			for _, p := range parts[:i] {
				p.Close()
			}
			return Result{}, nil, err
		}
		parts[i] = co
		addrs[i] = co.Addr()
	}
	defer func() {
		for _, p := range parts {
			p.Close()
		}
	}()
	fed, err := NewFederation(parts)
	if err != nil {
		return Result{}, nil, err
	}

	type siteOut struct {
		stats []Stats
		err   error
	}
	outs := make([]siteOut, cfg.Sites)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := NewFederatedSite(uint32(i), addrs).Run()
			outs[i] = siteOut{stats: st, err: err}
		}(i)
	}

	results := make([]Result, stripes)
	errs := make([]error, stripes)
	var swg sync.WaitGroup
	for i, co := range parts {
		swg.Add(1)
		go func(i int, co *Coordinator) {
			defer swg.Done()
			results[i], errs[i] = co.Serve()
		}(i, co)
	}
	swg.Wait()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Result{}, nil, fmt.Errorf("cluster: stripe %d: %w", i, err)
		}
	}
	for i, o := range outs {
		if o.err != nil {
			return Result{}, nil, fmt.Errorf("cluster: federated site %d: %w", i, o.err)
		}
		for s := range parts {
			if o.stats[s] != results[s].Stats {
				return Result{}, nil, fmt.Errorf("cluster: site %d saw stripe %d stats %+v, coordinator %+v",
					i, s, o.stats[s], results[s].Stats)
			}
		}
	}

	agg := Result{Stats: Stats{Events: results[0].Stats.Events}}
	for _, r := range results {
		agg.Stats.Frames += r.Stats.Frames
		agg.Stats.Updates += r.Stats.Updates
		if r.Runtime > agg.Runtime {
			agg.Runtime = r.Runtime
		}
	}
	if agg.Runtime > 0 {
		agg.Throughput = float64(agg.Stats.Events) / agg.Runtime.Seconds()
	}
	return agg, fed, nil
}
