package cluster

import (
	"testing"
	"testing/quick"

	"distbayes/internal/core"
	"distbayes/internal/netgen"
)

// TestStartConfigV4RoundTrip pins the version-4 StartConfig tail: the
// structure-learning cadence and the drift scenario fields survive the wire,
// including an empty drift name alongside a nonzero struct cadence.
func TestStartConfigV4RoundTrip(t *testing.T) {
	cfgs := []StartConfig{
		{
			NetName: "alarm", CPTSeed: 42, Strategy: 3, Eps: 0.1, Delta: 0.25,
			Sites: 7, Site: 3, Events: 123456, StreamSeed: 99, LatencyMicros: 250,
			BatchEvents: 128, StructBatchEvents: 256,
			DriftAtEvent: 61728, DriftCPTSeed: 0xD21F, DriftNetName: "tree:12:3:58",
		},
		// Struct learning without drift.
		{NetName: "alarm", Sites: 2, Events: 10, StructBatchEvents: 64},
		// Drift without struct learning (the flat comparison run).
		{NetName: "tree:4:2:1", Sites: 1, Events: 10, DriftAtEvent: 5,
			DriftCPTSeed: 9, DriftNetName: "tree:4:2:2"},
	}
	for _, cfg := range cfgs {
		got, err := decodeStart(encodeStart(cfg))
		if err != nil {
			t.Fatalf("decode %+v: %v", cfg, err)
		}
		if got != cfg {
			t.Errorf("v4 start round trip: %+v != %+v", got, cfg)
		}
	}
}

// TestStartConfigV4QuickRoundTrip drives the v4 codec with arbitrary field
// values (StartConfig stays ==-comparable, so quick.Check pins every field).
func TestStartConfigV4QuickRoundTrip(t *testing.T) {
	f := func(structBatch uint32, driftAt, driftSeed uint64, driftName string) bool {
		cfg := StartConfig{
			NetName: "hepar2", CPTSeed: 1, Strategy: 2, Eps: 0.25, Delta: 0.1,
			Sites: 4, Site: 2, Events: 777, StreamSeed: 5, BatchEvents: 32,
			StructBatchEvents: structBatch, DriftAtEvent: driftAt,
			DriftCPTSeed: driftSeed, DriftNetName: driftName,
		}
		got, err := decodeStart(encodeStart(cfg))
		return err == nil && got == cfg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStartConfigV4AppendOnly pins backward compatibility: a config with all
// structure-learning and drift fields zero must encode to the exact bytes a
// pre-v4 encoder produced, so old sites keep decoding new coordinators'
// hellos whenever the new features are off.
func TestStartConfigV4AppendOnly(t *testing.T) {
	cfg := StartConfig{
		NetName: "alarm", CPTSeed: 42, Strategy: 3, Eps: 0.1, Delta: 0.25,
		Sites: 7, Site: 3, Events: 123456, StreamSeed: 99, LatencyMicros: 250,
		BatchEvents: 128,
	}
	const restV2 = 8 + 1 + 8 + 8 + 4 + 4 + 8 + 8 + 4 + 4
	if got, want := len(encodeStart(cfg)), 4+len(cfg.NetName)+restV2; got != want {
		t.Errorf("struct-off config encodes %d bytes, want v2 length %d", got, want)
	}
	v4 := cfg
	v4.StructBatchEvents = 1
	if got := len(encodeStart(v4)); got <= 4+len(cfg.NetName)+restV2 {
		t.Errorf("struct-on config encodes %d bytes, want v4 tail appended", got)
	}
}

// TestStructStatsRoundTrip pins the frameStructStats codec: uvarint site
// position plus the delta-encoded cumulative cell counts.
func TestStructStatsRoundTrip(t *testing.T) {
	cases := []struct {
		events uint64
		ups    []Update
	}{
		{0, nil},
		{1, []Update{{Counter: 0, LocalCount: 1}}},
		{999, []Update{{Counter: 3, LocalCount: 7}, {Counter: 4, LocalCount: 1}, {Counter: 900, LocalCount: 1 << 40}}},
	}
	for _, c := range cases {
		events, ups, err := decodeStructStats(nil, encodeStructStats(nil, c.events, c.ups), 1000)
		if err != nil {
			t.Fatalf("decode events=%d: %v", c.events, err)
		}
		if events != c.events || len(ups) != len(c.ups) {
			t.Fatalf("round trip events=%d entries=%d, want %d/%d", events, len(ups), c.events, len(c.ups))
		}
		for i := range ups {
			if ups[i] != c.ups[i] {
				t.Errorf("entry %d: %+v != %+v", i, ups[i], c.ups[i])
			}
		}
	}
}

func TestStructStatsRejectsMalformed(t *testing.T) {
	good := encodeStructStats(nil, 7, []Update{{Counter: 2, LocalCount: 5}, {Counter: 9, LocalCount: 1}})
	if _, _, err := decodeStructStats(nil, nil, 1000); err == nil {
		t.Error("empty payload accepted")
	}
	if _, _, err := decodeStructStats(nil, good[:len(good)-1], 1000); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, _, err := decodeStructStats(nil, append(good[:len(good):len(good)], 0), 1000); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Cell id 9 is out of range for a 5-cell layout.
	if _, _, err := decodeStructStats(nil, good, 5); err == nil {
		t.Error("out-of-range cell id accepted")
	}
}

// TestStructLayout pins the pairwise cell layout: every (pair, value, value)
// combination maps to a distinct cell, the cells exactly tile the count
// vector, and Accumulate bumps one cell per pair per event.
func TestStructLayout(t *testing.T) {
	netw, err := netgen.ByName("tree:5:3:1")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewStructLayout(netw)
	if err != nil {
		t.Fatal(err)
	}
	n := netw.Len()
	if want := n * (n - 1) / 2; l.NumPairs() != want {
		t.Fatalf("NumPairs = %d, want %d", l.NumPairs(), want)
	}
	seen := make(map[uint32]bool)
	for p := 0; p < l.NumPairs(); p++ {
		i, j := l.PairAt(p)
		if i >= j || l.PairIndex(i, j) != p {
			t.Fatalf("pair %d: PairAt/PairIndex disagree (%d,%d)", p, i, j)
		}
		for vi := 0; vi < netw.Card(i); vi++ {
			for vj := 0; vj < netw.Card(j); vj++ {
				id := l.CellID(i, vi, j, vj)
				if id >= l.Cells() || seen[id] {
					t.Fatalf("cell id %d invalid or duplicated", id)
				}
				seen[id] = true
			}
		}
	}
	if len(seen) != int(l.Cells()) {
		t.Fatalf("layout covered %d cells, want %d", len(seen), l.Cells())
	}

	counts := make([]int64, l.Cells())
	x := []int{1, 0, 2, 2, 1}
	l.Accumulate(counts, x)
	l.Accumulate(counts, x)
	var total int64
	for _, c := range counts {
		total += c
	}
	if want := int64(2 * l.NumPairs()); total != want {
		t.Fatalf("Accumulate added %d counts, want %d", total, want)
	}
	for p := 0; p < l.NumPairs(); p++ {
		i, j := l.PairAt(p)
		joint := l.JointAt(counts, p)
		if got := joint[x[i]*netw.Card(j)+x[j]]; got != 2 {
			t.Fatalf("pair (%d,%d): joint cell = %d, want 2", i, j, got)
		}
	}
}

// TestStructOverlayLeavesFlatEstimatesIdentical runs the same stream with
// structure learning off and on: the overlay must not perturb the flat
// counter protocol — every coordinator estimate stays bit-identical — while
// the struct-on run additionally produces a learned structure.
func TestStructOverlayLeavesFlatEstimatesIdentical(t *testing.T) {
	cfg := Config{
		NetName: "tree:8:3:5", CPTSeed: 0xC0DE, Strategy: core.ExactMLE,
		Sites: 3, Events: 3000, StreamSeed: 11,
	}
	_, off, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	onCfg := cfg
	onCfg.StructBatchEvents = 128
	_, on, err := RunLocal(onCfg)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(off.Network(), core.ExactMLE, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < layout.NumCounters(); id++ {
		if a, b := off.Estimate(id), on.Estimate(id); a != b {
			t.Fatalf("counter %d: struct-off %v != struct-on %v", id, a, b)
		}
	}
	if _, _, ok := off.LearnedStructure(); ok {
		t.Error("struct-off run reports a learned structure")
	}
	if _, err := off.AcquireLearnedSnapshot(); err == nil {
		t.Error("struct-off AcquireLearnedSnapshot succeeded")
	}
	netw, epoch, ok := on.LearnedStructure()
	if !ok || netw == nil || epoch == 0 {
		t.Fatalf("struct-on run has no learned structure (ok=%v epoch=%d)", ok, epoch)
	}
	snap, err := on.AcquireLearnedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.StructureEpoch() != epoch {
		t.Errorf("snapshot epoch %d != %d", snap.StructureEpoch(), epoch)
	}
	if _, err := snap.Model(); err != nil {
		t.Errorf("learned snapshot model: %v", err)
	}
}
