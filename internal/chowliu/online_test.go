package chowliu

import (
	"math"
	"testing"

	"distbayes/internal/bn"
)

// TestPairwiseMIEmptySamples pins the divide-by-zero fix: an empty sample
// slice must yield the all-zero MI matrix, not NaNs from 0/0 marginals.
func TestPairwiseMIEmptySamples(t *testing.T) {
	for _, samples := range [][][]int{nil, {}} {
		mi := PairwiseMI(samples, []int{2, 3, 4})
		if len(mi) != 3 {
			t.Fatalf("matrix has %d rows, want 3", len(mi))
		}
		for i, row := range mi {
			if len(row) != 3 {
				t.Fatalf("row %d has %d entries, want 3", i, len(row))
			}
			for j, v := range row {
				if v != 0 || math.IsNaN(v) {
					t.Errorf("mi[%d][%d] = %v, want 0", i, j, v)
				}
			}
		}
	}
}

// TestLearnIndependentSamplesConnectedTree is the property test behind
// Learn's doc contract: pairwise-independent samples drive every MI weight
// toward zero, yet the result must still be a single connected tree rooted
// at variable 0 — never a forest — and a valid bn.Network.
func TestLearnIndependentSamplesConnectedTree(t *testing.T) {
	cards := []int{2, 3, 2, 4, 2, 3}
	n := len(cards)
	for seed := uint64(1); seed <= 5; seed++ {
		rng := bn.NewRNG(seed)
		samples := make([][]int, 500)
		for s := range samples {
			x := make([]int, n)
			for i := range x {
				x[i] = rng.Intn(cards[i])
			}
			samples[s] = x
		}
		net, err := Learn(samples, cards)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(net.Parents(0)) != 0 {
			t.Fatalf("seed %d: root has parents %v", seed, net.Parents(0))
		}
		for i := 1; i < n; i++ {
			if len(net.Parents(i)) != 1 {
				t.Fatalf("seed %d: variable %d has %d parents, want 1", seed, i, len(net.Parents(i)))
			}
		}
		// n-1 single-parent edges with a unique root is connected iff every
		// variable reaches the root by following parents without a cycle.
		for i := 0; i < n; i++ {
			at, steps := i, 0
			for len(net.Parents(at)) > 0 {
				at = net.Parents(at)[0]
				if steps++; steps > n {
					t.Fatalf("seed %d: parent chain from %d cycles", seed, i)
				}
			}
			if at != 0 {
				t.Fatalf("seed %d: variable %d roots at %d, want 0", seed, i, at)
			}
		}
	}
}

// TestMIFromCountsMatchesPairwiseMI pins the online path against the batch
// path: MI computed from a pair's joint count table must equal PairwiseMI
// on the same sample, and TreeFromMI on that matrix must produce the same
// undirected tree as Learn.
func TestMIFromCountsMatchesPairwiseMI(t *testing.T) {
	m := strongChainModel(t, 6)
	samples := SampleFromModel(m, 5000, 11)
	cards := []int{2, 2, 2, 2, 2, 2}
	n := len(cards)

	want := PairwiseMI(samples, cards)
	got := make([][]float64, n)
	for i := range got {
		got[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			joint := make([]int64, cards[i]*cards[j])
			for _, s := range samples {
				joint[s[i]*cards[j]+s[j]]++
			}
			v := MIFromCounts(joint, cards[i], cards[j])
			got[i][j], got[j][i] = v, v
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(got[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("mi[%d][%d]: counts path %v, sample path %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if MIFromCounts(make([]int64, 4), 2, 2) != 0 {
		t.Error("zero count table has nonzero MI")
	}

	learned, err := Learn(samples, cards)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := UndirectedEdges(learned)
	parent := TreeFromMI(got)
	if parent[0] != -1 {
		t.Fatalf("TreeFromMI root = %d, want -1 at 0", parent[0])
	}
	for i := 1; i < n; i++ {
		a, b := parent[i], i
		if a > b {
			a, b = b, a
		}
		if !wantEdges[[2]int{a, b}] {
			t.Fatalf("TreeFromMI edge (%d,%d) not in Learn's tree %v", a, b, wantEdges)
		}
	}
}
