// Package chowliu learns a tree-structured Bayesian network from a sample of
// complete observations using the Chow–Liu algorithm: pairwise empirical
// mutual information defines edge weights, a maximum-weight spanning tree is
// extracted, and the tree is oriented away from a root.
//
// The paper treats structure selection as orthogonal and suggests learning it
// "offline based on a suitable sample of the data" (Section III); this
// package provides that route. It also realizes the degree-one (tree)
// networks of Section V and the McGregor–Vu reference of Section II.
package chowliu

import (
	"fmt"
	"math"

	"distbayes/internal/bn"
)

// Learn estimates a Chow–Liu tree from samples. Each sample is a complete
// assignment; cards[i] is the domain size of variable i. The returned
// network is always a single connected tree rooted at variable 0: pairwise
// independence in the sample only drives an edge's mutual information to
// zero, and Prim's algorithm still attaches every variable through its
// best (possibly zero-weight) edge, so no forest can result.
func Learn(samples [][]int, cards []int) (*bn.Network, error) {
	n := len(cards)
	if n < 1 {
		return nil, fmt.Errorf("chowliu: no variables")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("chowliu: no samples")
	}
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("chowliu: variable %d cardinality %d", i, c)
		}
	}
	for si, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("chowliu: sample %d has %d values, want %d", si, len(s), n)
		}
		for i, v := range s {
			if v < 0 || v >= cards[i] {
				return nil, fmt.Errorf("chowliu: sample %d value %d out of range for variable %d", si, v, i)
			}
		}
	}

	mi := PairwiseMI(samples, cards)
	parent := maxSpanningTree(n, mi)

	vars := make([]bn.Variable, n)
	for i := range vars {
		vars[i] = bn.Variable{Name: fmt.Sprintf("cl_%d", i), Card: cards[i]}
		if parent[i] >= 0 {
			vars[i].Parents = []int{parent[i]}
		}
	}
	return bn.NewNetwork(vars)
}

// LearnModel learns the Chow–Liu structure and fits its CPTs by maximum
// likelihood on the same sample with Laplace smoothing alpha.
func LearnModel(samples [][]int, cards []int, alpha float64) (*bn.Model, error) {
	net, err := Learn(samples, cards)
	if err != nil {
		return nil, err
	}
	cpds := make([]*bn.CPT, net.Len())
	for i := 0; i < net.Len(); i++ {
		j, k := net.Card(i), net.ParentCard(i)
		counts := make([]float64, j*k)
		for ci := range counts {
			counts[ci] = alpha
		}
		for _, s := range samples {
			counts[net.ParentIndex(i, s)*j+s[i]]++
		}
		for pidx := 0; pidx < k; pidx++ {
			row := counts[pidx*j : (pidx+1)*j]
			sum := 0.0
			for _, c := range row {
				sum += c
			}
			if sum == 0 {
				for v := range row {
					row[v] = 1 / float64(j)
				}
				continue
			}
			for v := range row {
				row[v] /= sum
			}
		}
		cpds[i], err = bn.NewCPT(j, k, counts)
		if err != nil {
			return nil, err
		}
	}
	return bn.NewModel(net, cpds)
}

// PairwiseMI computes the empirical mutual information of every variable
// pair; the result is symmetric with zero diagonal. An empty sample slice
// yields the all-zero matrix (no evidence of dependence), not NaNs.
func PairwiseMI(samples [][]int, cards []int) [][]float64 {
	n := len(cards)
	if len(samples) == 0 {
		mi := make([][]float64, n)
		for i := range mi {
			mi[i] = make([]float64, n)
		}
		return mi
	}
	m := float64(len(samples))

	// Marginal counts.
	marg := make([][]float64, n)
	for i := range marg {
		marg[i] = make([]float64, cards[i])
	}
	for _, s := range samples {
		for i, v := range s {
			marg[i][v]++
		}
	}

	mi := make([][]float64, n)
	for i := range mi {
		mi[i] = make([]float64, n)
	}
	joint := make([]float64, 0, 64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ji, jj := cards[i], cards[j]
			joint = joint[:0]
			for c := 0; c < ji*jj; c++ {
				joint = append(joint, 0)
			}
			for _, s := range samples {
				joint[s[i]*jj+s[j]]++
			}
			v := 0.0
			for vi := 0; vi < ji; vi++ {
				for vj := 0; vj < jj; vj++ {
					c := joint[vi*jj+vj]
					if c == 0 {
						continue
					}
					pxy := c / m
					v += pxy * math.Log(pxy*m*m/(marg[i][vi]*marg[j][vj]))
				}
			}
			if v < 0 { // numerical noise
				v = 0
			}
			mi[i][j], mi[j][i] = v, v
		}
	}
	return mi
}

// maxSpanningTree runs Prim's algorithm on the dense MI matrix, returning
// parent[i] (-1 for the root, variable 0).
func maxSpanningTree(n int, w [][]float64) []int {
	parent := make([]int, n)
	best := make([]float64, n)
	from := make([]int, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
		best[i] = math.Inf(-1)
		from[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = w[0][j]
		from[j] = 0
	}
	for added := 1; added < n; added++ {
		pick, pickW := -1, math.Inf(-1)
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] > pickW {
				pick, pickW = j, best[j]
			}
		}
		inTree[pick] = true
		parent[pick] = from[pick]
		for j := 0; j < n; j++ {
			if !inTree[j] && w[pick][j] > best[j] {
				best[j] = w[pick][j]
				from[j] = pick
			}
		}
	}
	return parent
}

// SampleFromModel draws count complete observations from a ground-truth
// model — a convenience for the offline-structure workflow.
func SampleFromModel(m *bn.Model, count int, seed uint64) [][]int {
	s := m.NewSampler(seed)
	out := make([][]int, count)
	for i := range out {
		out[i] = append([]int(nil), s.Sample(nil)...)
	}
	return out
}

// UndirectedEdges returns the canonical (min,max) edge set of a network —
// used to compare a learned tree against the generating structure, where
// edge direction is not identifiable from data alone.
func UndirectedEdges(net *bn.Network) map[[2]int]bool {
	edges := map[[2]int]bool{}
	for i := 0; i < net.Len(); i++ {
		for _, p := range net.Parents(i) {
			a, b := p, i
			if a > b {
				a, b = b, a
			}
			edges[[2]int{a, b}] = true
		}
	}
	return edges
}
