package chowliu

import (
	"math"
	"testing"

	"distbayes/internal/bn"
	"distbayes/internal/netgen"
)

// strongChainModel builds a chain X0 -> X1 -> ... -> X{n-1} of binary
// variables with strong dependence (95% copy), so the Chow-Liu tree should
// recover exactly the chain's undirected edges.
func strongChainModel(t *testing.T, n int) *bn.Model {
	t.Helper()
	vars := make([]bn.Variable, n)
	for i := range vars {
		vars[i] = bn.Variable{Name: "c", Card: 2}
		if i > 0 {
			vars[i].Parents = []int{i - 1}
		}
	}
	nw := bn.MustNetwork(vars)
	cpds := make([]*bn.CPT, n)
	var err error
	cpds[0], err = bn.NewCPT(2, 1, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		cpds[i], err = bn.NewCPT(2, 2, []float64{0.95, 0.05, 0.05, 0.95})
		if err != nil {
			t.Fatal(err)
		}
	}
	return bn.MustModel(nw, cpds)
}

func TestLearnValidation(t *testing.T) {
	if _, err := Learn(nil, []int{2}); err == nil {
		t.Error("no samples accepted")
	}
	if _, err := Learn([][]int{{0}}, nil); err == nil {
		t.Error("no variables accepted")
	}
	if _, err := Learn([][]int{{0, 1}}, []int{2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Learn([][]int{{5}}, []int{2}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := Learn([][]int{{0}}, []int{0}); err == nil {
		t.Error("zero cardinality accepted")
	}
}

func TestLearnRecoversChain(t *testing.T) {
	m := strongChainModel(t, 8)
	samples := SampleFromModel(m, 20000, 3)
	cards := make([]int, 8)
	for i := range cards {
		cards[i] = 2
	}
	learned, err := Learn(samples, cards)
	if err != nil {
		t.Fatal(err)
	}
	want := UndirectedEdges(m.Network())
	got := UndirectedEdges(learned)
	if len(got) != len(want) {
		t.Fatalf("learned %d edges, want %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing edge %v", e)
		}
	}
	// Tree shape invariants.
	if learned.NumEdges() != 7 {
		t.Errorf("edges = %d, want n-1", learned.NumEdges())
	}
	if learned.MaxInDegree() > 1 {
		t.Errorf("max in-degree = %d, want <= 1", learned.MaxInDegree())
	}
}

func TestLearnRecoversRandomTree(t *testing.T) {
	// A random tree with strong CPDs over 3-valued variables.
	net, err := netgen.Tree(12, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	cpds := make([]*bn.CPT, net.Len())
	rng := bn.NewRNG(4)
	for i := range cpds {
		j, k := net.Card(i), net.ParentCard(i)
		tbl := make([]float64, j*k)
		for pidx := 0; pidx < k; pidx++ {
			row := tbl[pidx*j : (pidx+1)*j]
			// Strongly peaked at (pidx+offset) mod j to make edges learnable.
			peak := (pidx + 1) % j
			for v := range row {
				if v == peak {
					row[v] = 0.85
				} else {
					row[v] = 0.15 / float64(j-1)
				}
			}
			_ = rng
		}
		var err error
		cpds[i], err = bn.NewCPT(j, k, tbl)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := bn.MustModel(net, cpds)
	samples := SampleFromModel(m, 30000, 11)
	cards := make([]int, net.Len())
	for i := range cards {
		cards[i] = net.Card(i)
	}
	learned, err := Learn(samples, cards)
	if err != nil {
		t.Fatal(err)
	}
	want := UndirectedEdges(net)
	got := UndirectedEdges(learned)
	match := 0
	for e := range want {
		if got[e] {
			match++
		}
	}
	if match < len(want)-1 {
		t.Errorf("recovered %d/%d edges", match, len(want))
	}
}

func TestPairwiseMIProperties(t *testing.T) {
	m := strongChainModel(t, 4)
	samples := SampleFromModel(m, 10000, 5)
	mi := PairwiseMI(samples, []int{2, 2, 2, 2})
	for i := 0; i < 4; i++ {
		if mi[i][i] != 0 {
			t.Errorf("diagonal MI[%d][%d] = %v", i, i, mi[i][i])
		}
		for j := 0; j < 4; j++ {
			if mi[i][j] != mi[j][i] {
				t.Errorf("MI not symmetric at (%d,%d)", i, j)
			}
			if mi[i][j] < 0 {
				t.Errorf("negative MI %v", mi[i][j])
			}
		}
	}
	// Adjacent pairs carry more information than distant ones on a chain.
	if !(mi[0][1] > mi[0][3]) {
		t.Errorf("MI(0,1)=%v should exceed MI(0,3)=%v", mi[0][1], mi[0][3])
	}
}

func TestLearnModelFitsCPTs(t *testing.T) {
	m := strongChainModel(t, 5)
	samples := SampleFromModel(m, 40000, 7)
	cards := []int{2, 2, 2, 2, 2}
	learned, err := LearnModel(samples, cards, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The learned model should assign comparable likelihood to fresh data.
	fresh := SampleFromModel(m, 2000, 99)
	llTrue, llLearned := 0.0, 0.0
	for _, s := range fresh {
		llTrue += m.LogJointProb(s)
		llLearned += learned.LogJointProb(s)
	}
	if math.IsInf(llLearned, -1) || math.IsNaN(llLearned) {
		t.Fatalf("learned log-likelihood invalid: %v", llLearned)
	}
	// Within 2% of the true model's average log-likelihood.
	if diff := (llTrue - llLearned) / math.Abs(llTrue); diff > 0.02 {
		t.Errorf("learned model LL gap %v", diff)
	}
}

func TestLearnSingleVariable(t *testing.T) {
	learned, err := Learn([][]int{{0}, {1}, {0}}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if learned.Len() != 1 || learned.NumEdges() != 0 {
		t.Errorf("single-variable tree: %d nodes %d edges", learned.Len(), learned.NumEdges())
	}
}
