package chowliu

import "math"

// MIFromCounts computes the empirical mutual information of one variable
// pair from its joint count table: joint[vi*cj+vj] is the number of
// co-occurrences of (X_i = vi, X_j = vj), with ci and cj the two domain
// sizes. Marginals and the sample total are derived from the table itself,
// so a caller maintaining windowed pair statistics (the online distributed
// structure-learning path in internal/cluster) needs to ship nothing else.
// A zero table yields MI 0.
func MIFromCounts(joint []int64, ci, cj int) float64 {
	var total int64
	for _, c := range joint {
		total += c
	}
	if total == 0 {
		return 0
	}
	mi := make([]int64, ci)
	mj := make([]int64, cj)
	for vi := 0; vi < ci; vi++ {
		for vj := 0; vj < cj; vj++ {
			c := joint[vi*cj+vj]
			mi[vi] += c
			mj[vj] += c
		}
	}
	m := float64(total)
	v := 0.0
	for vi := 0; vi < ci; vi++ {
		for vj := 0; vj < cj; vj++ {
			c := float64(joint[vi*cj+vj])
			if c == 0 {
				continue
			}
			v += (c / m) * math.Log(c*m/(float64(mi[vi])*float64(mj[vj])))
		}
	}
	if v < 0 { // numerical noise
		v = 0
	}
	return v
}

// TreeFromMI extracts the maximum-weight spanning tree of a symmetric MI
// matrix, returning parent[i] with -1 at the root (variable 0) — the
// structure half of Learn, exported for callers that compute MI from
// their own sufficient statistics rather than a sample slice. The result
// is always a single connected tree (see Learn).
func TreeFromMI(mi [][]float64) []int {
	return maxSpanningTree(len(mi), mi)
}
