package bn

import (
	"fmt"
	"math"
)

// This file provides sampling-based approximate inference for queries on
// networks whose treewidth puts exact variable elimination (infer.go) out of
// reach — e.g. conditional queries on the LINK- and MUNIN-scale networks of
// the evaluation.

// LikelihoodWeighting estimates P[query | evidence] by importance sampling:
// evidence variables are clamped and weighted by their CPD likelihood,
// everything else is forward-sampled. samples must be positive; query and
// evidence must be disjoint with values in range. The estimator is unbiased
// in the weighted-average sense; accuracy degrades when the evidence is
// improbable (use GibbsMarginal there).
func (m *Model) LikelihoodWeighting(query, evidence map[int]int, samples int, seed uint64) (float64, error) {
	if err := m.checkQuery(query, evidence); err != nil {
		return 0, err
	}
	if samples < 1 {
		return 0, fmt.Errorf("bn: samples = %d, want >= 1", samples)
	}
	rng := NewRNG(seed)
	n := m.net.Len()
	x := make([]int, n)
	var wMatch, wTotal float64
	for s := 0; s < samples; s++ {
		w := 1.0
		for _, i := range m.net.order {
			pidx := m.net.ParentIndex(i, x)
			if ev, ok := evidence[i]; ok {
				x[i] = ev
				w *= m.cpds[i].P(ev, pidx)
				continue
			}
			x[i] = sampleRow(m.cpds[i].Row(pidx), rng)
		}
		wTotal += w
		match := true
		for v, val := range query {
			if x[v] != val {
				match = false
				break
			}
		}
		if match {
			wMatch += w
		}
	}
	if wTotal == 0 {
		return 0, fmt.Errorf("bn: all samples had zero weight (impossible evidence?)")
	}
	return wMatch / wTotal, nil
}

// GibbsMarginal estimates P[query | evidence] with Gibbs sampling: all
// non-evidence variables are resampled in turn from their Markov-blanket
// conditionals. burnIn sweeps are discarded, then iters sweeps are averaged.
// The chain is ergodic whenever the model is strictly positive (the netgen
// CPT floor guarantees this).
func (m *Model) GibbsMarginal(query, evidence map[int]int, iters, burnIn int, seed uint64) (float64, error) {
	if err := m.checkQuery(query, evidence); err != nil {
		return 0, err
	}
	if iters < 1 || burnIn < 0 {
		return 0, fmt.Errorf("bn: iters = %d burnIn = %d", iters, burnIn)
	}
	rng := NewRNG(seed)
	n := m.net.Len()

	// Initial state: forward sample with evidence clamped.
	x := make([]int, n)
	for _, i := range m.net.order {
		if ev, ok := evidence[i]; ok {
			x[i] = ev
			continue
		}
		x[i] = sampleRow(m.cpds[i].Row(m.net.ParentIndex(i, x)), rng)
	}
	var free []int
	for i := 0; i < n; i++ {
		if _, ok := evidence[i]; !ok {
			free = append(free, i)
		}
	}

	sweep := func() {
		for _, i := range free {
			post := m.PosteriorVar(i, x)
			x[i] = sampleDist(post, rng)
		}
	}
	for s := 0; s < burnIn; s++ {
		sweep()
	}
	hits := 0
	for s := 0; s < iters; s++ {
		sweep()
		match := true
		for v, val := range query {
			if x[v] != val {
				match = false
				break
			}
		}
		if match {
			hits++
		}
	}
	return float64(hits) / float64(iters), nil
}

func (m *Model) checkQuery(query, evidence map[int]int) error {
	if len(query) == 0 {
		return fmt.Errorf("bn: empty query")
	}
	n := m.net.Len()
	check := func(v, val int) error {
		if v < 0 || v >= n {
			return fmt.Errorf("bn: variable %d out of range", v)
		}
		if val < 0 || val >= m.net.Card(v) {
			return fmt.Errorf("bn: value %d out of range for variable %d", val, v)
		}
		return nil
	}
	for v, val := range query {
		if err := check(v, val); err != nil {
			return err
		}
		if _, dup := evidence[v]; dup {
			return fmt.Errorf("bn: variable %d in both query and evidence", v)
		}
	}
	for v, val := range evidence {
		if err := check(v, val); err != nil {
			return err
		}
	}
	return nil
}

// sampleRow draws an index from a normalized probability row.
func sampleRow(row []float64, rng *RNG) int {
	u := rng.Float64()
	acc := 0.0
	for j, p := range row {
		acc += p
		if u < acc {
			return j
		}
	}
	return len(row) - 1
}

// sampleDist draws an index from an arbitrary normalized distribution slice.
func sampleDist(dist []float64, rng *RNG) int { return sampleRow(dist, rng) }

// entropyRate is a small diagnostic: the average log-loss of the model on
// its own samples (an estimate of the joint entropy in nats), used by tests
// and examples to sanity-check learned models.
func (m *Model) entropyRate(samples int, seed uint64) float64 {
	s := m.NewSampler(seed)
	x := make([]int, m.net.Len())
	total := 0.0
	for i := 0; i < samples; i++ {
		s.Sample(x)
		total -= m.LogJointProb(x)
	}
	return total / float64(samples)
}

// EntropyEstimate exposes entropyRate: a Monte-Carlo estimate of the joint
// entropy H(P) in nats from the model's own samples.
func (m *Model) EntropyEstimate(samples int, seed uint64) (float64, error) {
	if samples < 1 {
		return 0, fmt.Errorf("bn: samples = %d, want >= 1", samples)
	}
	return m.entropyRate(samples, seed), nil
}

// KLDivergenceEstimate estimates D(P‖Q) in nats by sampling from P and
// scoring both models — the standard measure of how far a learned model Q is
// from the ground truth P. The networks must share shape. Returns math.Inf(1)
// if Q assigns zero probability to a sampled assignment.
func KLDivergenceEstimate(p, q *Model, samples int, seed uint64) (float64, error) {
	if samples < 1 {
		return 0, fmt.Errorf("bn: samples = %d, want >= 1", samples)
	}
	if p.net.Len() != q.net.Len() {
		return 0, fmt.Errorf("bn: model shapes differ: %d vs %d variables", p.net.Len(), q.net.Len())
	}
	for i := 0; i < p.net.Len(); i++ {
		if p.net.Card(i) != q.net.Card(i) {
			return 0, fmt.Errorf("bn: variable %d cardinality differs", i)
		}
	}
	s := p.NewSampler(seed)
	x := make([]int, p.net.Len())
	total := 0.0
	for i := 0; i < samples; i++ {
		s.Sample(x)
		lq := q.LogJointProb(x)
		if math.IsInf(lq, -1) {
			return math.Inf(1), nil
		}
		total += p.LogJointProb(x) - lq
	}
	return total / float64(samples), nil
}
