package bn

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). The repository uses it instead of
// math/rand so that streams, network generators and counters are reproducible
// from explicit seeds and cheap to advance on the per-counter hot path.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("bn: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Gamma draws from a Gamma(shape, 1) distribution using the Marsaglia–Tsang
// method; used to sample Dirichlet-distributed CPT rows.
func (r *RNG) Gamma(shape float64) float64 {
	if shape < 1 {
		// Boosting: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := r.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills dst with a draw from a symmetric Dirichlet(alpha)
// distribution of dimension len(dst); rows sum to exactly 1.
func (r *RNG) Dirichlet(alpha float64, dst []float64) {
	sum := 0.0
	for i := range dst {
		g := r.Gamma(alpha)
		dst[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (all zero, possible for tiny alpha): uniform.
		for i := range dst {
			dst[i] = 1 / float64(len(dst))
		}
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// normal draws a standard normal variate (polar Box–Muller, one value).
func (r *RNG) normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// State exposes the generator's internal state for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured with State, making the generator
// resume the exact same sequence.
func (r *RNG) SetState(s [4]uint64) { r.s = s }
