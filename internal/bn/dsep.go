package bn

import "fmt"

// DSeparated reports whether every variable in xs is d-separated from every
// variable in ys given the conditioning set zs — the graphical criterion for
// conditional independence in a Bayesian network. It uses the standard
// reachability formulation (Koller & Friedman, Algorithm 3.1): a ball
// bouncing along edges is blocked at a non-collider in Z and at a collider
// whose descendants avoid Z.
//
// The sets must be disjoint; variables out of range are rejected.
func (nw *Network) DSeparated(xs, ys, zs []int) (bool, error) {
	n := nw.Len()
	seen := map[int]int{} // 1=x, 2=y, 3=z
	mark := func(vals []int, tag int) error {
		for _, v := range vals {
			if v < 0 || v >= n {
				return fmt.Errorf("bn: variable %d out of range", v)
			}
			if prev, ok := seen[v]; ok && prev != tag {
				return fmt.Errorf("bn: variable %d appears in multiple sets", v)
			}
			seen[v] = tag
		}
		return nil
	}
	if err := mark(xs, 1); err != nil {
		return false, err
	}
	if err := mark(ys, 2); err != nil {
		return false, err
	}
	if err := mark(zs, 3); err != nil {
		return false, err
	}
	if len(xs) == 0 || len(ys) == 0 {
		return false, fmt.Errorf("bn: d-separation needs non-empty X and Y")
	}

	inZ := make([]bool, n)
	for _, z := range zs {
		inZ[z] = true
	}
	// ancestorsOfZ: nodes with a descendant in Z (including Z itself) —
	// colliders are open iff they are in this set.
	ancZ := make([]bool, n)
	var up func(int)
	up = func(v int) {
		if ancZ[v] {
			return
		}
		ancZ[v] = true
		for _, p := range nw.Parents(v) {
			up(p)
		}
	}
	for _, z := range zs {
		up(z)
	}

	// Ball bouncing: states are (node, direction) with direction "up" (the
	// ball arrived from a child, i.e. is travelling toward parents) or
	// "down" (arrived from a parent).
	type state struct {
		node int
		up   bool
	}
	visited := map[state]bool{}
	var queue []state
	for _, x := range xs {
		queue = append(queue, state{x, true}, state{x, false})
	}
	targetY := make([]bool, n)
	for _, y := range ys {
		targetY[y] = true
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if visited[s] {
			continue
		}
		visited[s] = true
		if targetY[s.node] {
			return false, nil // active path reached Y
		}
		if s.up {
			// Travelling toward parents: allowed only when the node is not
			// observed; continue up to parents and down to children.
			if !inZ[s.node] {
				for _, p := range nw.Parents(s.node) {
					queue = append(queue, state{p, true})
				}
				for _, c := range nw.Children(s.node) {
					queue = append(queue, state{c, false})
				}
			}
		} else {
			// Arrived from a parent.
			if !inZ[s.node] {
				// Chain: keep going down.
				for _, c := range nw.Children(s.node) {
					queue = append(queue, state{c, false})
				}
			}
			// Collider: v-structure opens iff some descendant is observed.
			if ancZ[s.node] {
				for _, p := range nw.Parents(s.node) {
					queue = append(queue, state{p, true})
				}
			}
		}
	}
	return true, nil
}
