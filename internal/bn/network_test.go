package bn

import (
	"math"
	"testing"
	"testing/quick"
)

// chain3 builds A -> B -> C with the given cardinalities.
func chain3(t *testing.T, ca, cb, cc int) *Network {
	t.Helper()
	nw, err := NewNetwork([]Variable{
		{Name: "A", Card: ca},
		{Name: "B", Card: cb, Parents: []int{0}},
		{Name: "C", Card: cc, Parents: []int{1}},
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return nw
}

func TestNewNetworkValidation(t *testing.T) {
	cases := []struct {
		name string
		vars []Variable
	}{
		{"empty", nil},
		{"zero card", []Variable{{Name: "A", Card: 0}}},
		{"negative card", []Variable{{Name: "A", Card: -2}}},
		{"parent out of range", []Variable{{Name: "A", Card: 2, Parents: []int{5}}}},
		{"negative parent", []Variable{{Name: "A", Card: 2, Parents: []int{-1}}}},
		{"self parent", []Variable{{Name: "A", Card: 2, Parents: []int{0}}}},
		{"duplicate parent", []Variable{
			{Name: "A", Card: 2},
			{Name: "B", Card: 2, Parents: []int{0, 0}},
		}},
		{"two cycle", []Variable{
			{Name: "A", Card: 2, Parents: []int{1}},
			{Name: "B", Card: 2, Parents: []int{0}},
		}},
		{"three cycle", []Variable{
			{Name: "A", Card: 2, Parents: []int{2}},
			{Name: "B", Card: 2, Parents: []int{0}},
			{Name: "C", Card: 2, Parents: []int{1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewNetwork(tc.vars); err == nil {
				t.Fatalf("NewNetwork(%v) succeeded, want error", tc.vars)
			}
		})
	}
}

func TestNetworkDerivedQuantities(t *testing.T) {
	// Collider: A -> C <- B, plus leaf D with parent C.
	nw, err := NewNetwork([]Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 3},
		{Name: "C", Card: 4, Parents: []int{0, 1}},
		{Name: "D", Card: 5, Parents: []int{2}},
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if got := nw.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := nw.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	// params: A:(2-1)*1 + B:(3-1)*1 + C:(4-1)*6 + D:(5-1)*4 = 1+2+18+16 = 37
	if got := nw.NumParams(); got != 37 {
		t.Errorf("NumParams = %d, want 37", got)
	}
	// cells: 2 + 3 + 24 + 20 = 49
	if got := nw.NumCells(); got != 49 {
		t.Errorf("NumCells = %d, want 49", got)
	}
	if got := nw.ParentCard(2); got != 6 {
		t.Errorf("ParentCard(C) = %d, want 6", got)
	}
	if got := nw.ParentCard(0); got != 1 {
		t.Errorf("ParentCard(A) = %d, want 1", got)
	}
	if got := nw.MaxInDegree(); got != 2 {
		t.Errorf("MaxInDegree = %d, want 2", got)
	}
	if got := nw.MaxCard(); got != 5 {
		t.Errorf("MaxCard = %d, want 5", got)
	}
	if ch := nw.Children(2); len(ch) != 1 || ch[0] != 3 {
		t.Errorf("Children(C) = %v, want [3]", ch)
	}
}

func TestTopoOrderProperty(t *testing.T) {
	nw := MustNetwork([]Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: []int{0}},
		{Name: "C", Card: 2, Parents: []int{0, 1}},
		{Name: "D", Card: 2, Parents: []int{2}},
		{Name: "E", Card: 2, Parents: []int{0, 3}},
	})
	pos := make(map[int]int)
	for at, v := range nw.TopoOrder() {
		pos[v] = at
	}
	if len(pos) != nw.Len() {
		t.Fatalf("topo order has %d entries, want %d", len(pos), nw.Len())
	}
	for i := 0; i < nw.Len(); i++ {
		for _, p := range nw.Parents(i) {
			if pos[p] >= pos[i] {
				t.Errorf("parent %d at position %d not before child %d at %d", p, pos[p], i, pos[i])
			}
		}
	}
}

func TestParentIndexRoundTrip(t *testing.T) {
	nw := MustNetwork([]Variable{
		{Name: "A", Card: 3},
		{Name: "B", Card: 4},
		{Name: "C", Card: 2, Parents: []int{0, 1}},
	})
	seen := make(map[int]bool)
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			x := []int{a, b, 0}
			idx := nw.ParentIndex(2, x)
			if idx < 0 || idx >= nw.ParentCard(2) {
				t.Fatalf("ParentIndex(%v) = %d out of range", x, idx)
			}
			if seen[idx] {
				t.Fatalf("ParentIndex collision at %v -> %d", x, idx)
			}
			seen[idx] = true
			vals := nw.ParentValues(2, idx)
			if vals[0] != a || vals[1] != b {
				t.Errorf("ParentValues(%d) = %v, want [%d %d]", idx, vals, a, b)
			}
			if got := nw.ParentIndexOf(2, vals); got != idx {
				t.Errorf("ParentIndexOf(%v) = %d, want %d", vals, got, idx)
			}
		}
	}
	if len(seen) != 12 {
		t.Errorf("saw %d distinct parent indices, want 12", len(seen))
	}
}

// TestParentIndexBijectionQuick property-tests the index <-> values bijection
// on randomly shaped families.
func TestParentIndexBijectionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		np := 1 + rng.Intn(4)
		vars := make([]Variable, np+1)
		for i := 0; i < np; i++ {
			vars[i] = Variable{Name: "P", Card: 1 + rng.Intn(5)}
		}
		parents := make([]int, np)
		for i := range parents {
			parents[i] = i
		}
		vars[np] = Variable{Name: "X", Card: 2, Parents: parents}
		nw, err := NewNetwork(vars)
		if err != nil {
			return false
		}
		for trial := 0; trial < 16; trial++ {
			idx := rng.Intn(nw.ParentCard(np))
			vals := nw.ParentValues(np, idx)
			for p, v := range vals {
				if v < 0 || v >= nw.Card(parents[p]) {
					return false
				}
			}
			if nw.ParentIndexOf(np, vals) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidAssignment(t *testing.T) {
	nw := chain3(t, 2, 3, 4)
	cases := []struct {
		x    []int
		want bool
	}{
		{[]int{0, 0, 0}, true},
		{[]int{1, 2, 3}, true},
		{[]int{2, 0, 0}, false},
		{[]int{0, 3, 0}, false},
		{[]int{0, 0, -1}, false},
		{[]int{0, 0}, false},
		{[]int{0, 0, 0, 0}, false},
	}
	for _, tc := range cases {
		if got := nw.ValidAssignment(tc.x); got != tc.want {
			t.Errorf("ValidAssignment(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestAncestralClosure(t *testing.T) {
	// A -> B -> D, C -> D, E isolated.
	nw := MustNetwork([]Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: []int{0}},
		{Name: "C", Card: 2},
		{Name: "D", Card: 2, Parents: []int{1, 2}},
		{Name: "E", Card: 2},
	})
	got := nw.AncestralClosure([]int{3})
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("closure(D) = %v, want vars %v", got, want)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("closure(D) contains unexpected %d", v)
		}
	}
	// Closure must be ancestrally closed and in topological order.
	pos := map[int]int{}
	for at, v := range got {
		pos[v] = at
	}
	for _, v := range got {
		for _, p := range nw.Parents(v) {
			at, ok := pos[p]
			if !ok {
				t.Errorf("closure missing parent %d of %d", p, v)
			} else if at >= pos[v] {
				t.Errorf("closure not topo-ordered: parent %d after child %d", p, v)
			}
		}
	}
	if single := nw.AncestralClosure([]int{4}); len(single) != 1 || single[0] != 4 {
		t.Errorf("closure(E) = %v, want [4]", single)
	}
}

func TestNetworkImmutableFromCaller(t *testing.T) {
	parents := []int{0}
	vars := []Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: parents},
	}
	nw := MustNetwork(vars)
	parents[0] = 99 // mutate the caller's slice; network must be unaffected
	if got := nw.Parents(1)[0]; got != 0 {
		t.Errorf("network parent mutated through caller slice: got %d", got)
	}
}

func TestNumParamsMatchesManualSum(t *testing.T) {
	nw := chain3(t, 2, 3, 4)
	want := (2-1)*1 + (3-1)*2 + (4-1)*3
	if got := nw.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestMustNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNetwork on invalid input did not panic")
		}
	}()
	MustNetwork([]Variable{{Name: "A", Card: 0}})
}

func TestErrCycleIdentity(t *testing.T) {
	_, err := NewNetwork([]Variable{
		{Name: "A", Card: 2, Parents: []int{1}},
		{Name: "B", Card: 2, Parents: []int{0}},
	})
	if err != ErrCycle {
		t.Errorf("cycle error = %v, want ErrCycle", err)
	}
}

func TestBigParentCardNoOverflowSmallCase(t *testing.T) {
	// 10 binary parents -> K = 1024.
	vars := make([]Variable, 11)
	parents := make([]int, 10)
	for i := 0; i < 10; i++ {
		vars[i] = Variable{Name: "P", Card: 2}
		parents[i] = i
	}
	vars[10] = Variable{Name: "X", Card: 2, Parents: parents}
	nw := MustNetwork(vars)
	if got := nw.ParentCard(10); got != 1024 {
		t.Errorf("ParentCard = %d, want 1024", got)
	}
	x := make([]int, 11)
	for i := range parents {
		x[i] = 1
	}
	if got := nw.ParentIndex(10, x); got != 1023 {
		t.Errorf("ParentIndex(all ones) = %d, want 1023", got)
	}
}

func TestCPTValidation(t *testing.T) {
	if _, err := NewCPT(2, 1, []float64{0.5, 0.6}); err == nil {
		t.Error("unnormalized row accepted")
	}
	if _, err := NewCPT(2, 1, []float64{-0.1, 1.1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewCPT(2, 1, []float64{math.NaN(), 1}); err == nil {
		t.Error("NaN probability accepted")
	}
	if _, err := NewCPT(2, 2, []float64{1, 0}); err == nil {
		t.Error("short table accepted")
	}
	if _, err := NewCPT(0, 1, nil); err == nil {
		t.Error("zero cardinality accepted")
	}
	c, err := NewCPT(2, 2, []float64{0.25, 0.75, 1, 0})
	if err != nil {
		t.Fatalf("valid CPT rejected: %v", err)
	}
	if got := c.P(1, 0); got != 0.75 {
		t.Errorf("P(1|0) = %v, want 0.75", got)
	}
	if got := c.P(0, 1); got != 1 {
		t.Errorf("P(0|1) = %v, want 1", got)
	}
	if got := c.MinProb(); got != 0 {
		t.Errorf("MinProb = %v, want 0", got)
	}
}
