// Package bn implements the Bayesian-network substrate used throughout the
// repository: directed acyclic graphs over categorical random variables,
// stride-indexed conditional probability tables (CPTs), joint probability
// evaluation, forward sampling, and Markov-blanket scoring.
//
// The notation follows the paper: a network has n variables X_1..X_n; J_i is
// the cardinality of dom(X_i) and K_i the cardinality of dom(par(X_i)). A
// parent configuration is addressed by a single integer in [0, K_i) computed
// with mixed-radix strides over the parents in declaration order.
package bn

import (
	"errors"
	"fmt"
)

// Variable describes one categorical node of a Bayesian network.
type Variable struct {
	// Name is a human-readable identifier, unique within a network.
	Name string
	// Card is the domain size J_i; values are 0..Card-1.
	Card int
	// Parents lists the indices of the parent variables, in the order used
	// to index parent configurations.
	Parents []int
}

// Network is the structure (DAG + cardinalities) of a Bayesian network,
// without parameters. It is immutable after construction by NewNetwork.
type Network struct {
	vars []Variable

	// order is a topological order of variable indices (parents first).
	order []int

	// parentCard[i] is K_i, the number of parent configurations of X_i.
	parentCard []int

	// strides[i][p] is the multiplier of parent p's value when computing the
	// parent-configuration index of X_i.
	strides [][]int

	// children[i] lists the variables that have i as a parent.
	children [][]int
}

// ErrCycle is returned by NewNetwork when the parent relation has a cycle.
var ErrCycle = errors.New("bn: parent graph contains a cycle")

// NewNetwork validates vars and computes the derived structure. It returns an
// error if a cardinality is < 1, a parent index is out of range or repeated,
// a variable lists itself as a parent, or the graph is cyclic.
func NewNetwork(vars []Variable) (*Network, error) {
	n := len(vars)
	if n == 0 {
		return nil, errors.New("bn: network needs at least one variable")
	}
	for i, v := range vars {
		if v.Card < 1 {
			return nil, fmt.Errorf("bn: variable %d (%s) has cardinality %d < 1", i, v.Name, v.Card)
		}
		seen := make(map[int]bool, len(v.Parents))
		for _, p := range v.Parents {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("bn: variable %d (%s) has parent index %d out of range [0,%d)", i, v.Name, p, n)
			}
			if p == i {
				return nil, fmt.Errorf("bn: variable %d (%s) lists itself as a parent", i, v.Name)
			}
			if seen[p] {
				return nil, fmt.Errorf("bn: variable %d (%s) lists parent %d twice", i, v.Name, p)
			}
			seen[p] = true
		}
	}

	nw := &Network{
		vars:       append([]Variable(nil), vars...),
		parentCard: make([]int, n),
		strides:    make([][]int, n),
		children:   make([][]int, n),
	}
	// Deep-copy parent slices so callers cannot mutate the network.
	for i := range nw.vars {
		nw.vars[i].Parents = append([]int(nil), vars[i].Parents...)
	}

	for i, v := range nw.vars {
		k := 1
		st := make([]int, len(v.Parents))
		for p := len(v.Parents) - 1; p >= 0; p-- {
			st[p] = k
			k *= nw.vars[v.Parents[p]].Card
		}
		nw.parentCard[i] = k
		nw.strides[i] = st
		for _, p := range v.Parents {
			nw.children[p] = append(nw.children[p], i)
		}
	}

	order, err := topoOrder(nw)
	if err != nil {
		return nil, err
	}
	nw.order = order
	return nw, nil
}

// MustNetwork is NewNetwork that panics on error; intended for generators and
// tests where the structure is known to be valid.
func MustNetwork(vars []Variable) *Network {
	nw, err := NewNetwork(vars)
	if err != nil {
		panic(err)
	}
	return nw
}

func topoOrder(nw *Network) ([]int, error) {
	n := nw.Len()
	indeg := make([]int, n)
	for i := range nw.vars {
		indeg[i] = len(nw.vars[i].Parents)
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, c := range nw.children[u] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Len returns n, the number of variables.
func (nw *Network) Len() int { return len(nw.vars) }

// Var returns the i-th variable.
func (nw *Network) Var(i int) Variable { return nw.vars[i] }

// Card returns J_i, the domain size of variable i.
func (nw *Network) Card(i int) int { return nw.vars[i].Card }

// Parents returns the parent indices of variable i. The returned slice must
// not be modified.
func (nw *Network) Parents(i int) []int { return nw.vars[i].Parents }

// Children returns the child indices of variable i. The returned slice must
// not be modified.
func (nw *Network) Children(i int) []int { return nw.children[i] }

// ParentCard returns K_i, the number of parent configurations of variable i
// (1 for a root).
func (nw *Network) ParentCard(i int) int { return nw.parentCard[i] }

// TopoOrder returns a topological order of variable indices (parents before
// children). The returned slice must not be modified.
func (nw *Network) TopoOrder() []int { return nw.order }

// NumEdges returns the number of directed edges (conditional dependencies).
func (nw *Network) NumEdges() int {
	e := 0
	for i := range nw.vars {
		e += len(nw.vars[i].Parents)
	}
	return e
}

// NumParams returns the number of free parameters Σ_i (J_i - 1)·K_i, the
// convention used by the bnlearn repository figures quoted in Table I.
func (nw *Network) NumParams() int {
	p := 0
	for i := range nw.vars {
		p += (nw.vars[i].Card - 1) * nw.parentCard[i]
	}
	return p
}

// NumCells returns the total number of CPT cells Σ_i J_i·K_i, which is the
// number of pair counters A_i(x_i, x_i^par) a tracker maintains.
func (nw *Network) NumCells() int {
	c := 0
	for i := range nw.vars {
		c += nw.vars[i].Card * nw.parentCard[i]
	}
	return c
}

// MaxInDegree returns d, the maximum number of parents of any variable.
func (nw *Network) MaxInDegree() int {
	d := 0
	for i := range nw.vars {
		if len(nw.vars[i].Parents) > d {
			d = len(nw.vars[i].Parents)
		}
	}
	return d
}

// MaxCard returns J, the maximum domain cardinality of any variable.
func (nw *Network) MaxCard() int {
	j := 0
	for i := range nw.vars {
		if nw.vars[i].Card > j {
			j = nw.vars[i].Card
		}
	}
	return j
}

// ParentIndex computes the parent-configuration index of variable i under the
// full assignment x (one value per network variable). For a root it is 0.
func (nw *Network) ParentIndex(i int, x []int) int {
	idx := 0
	ps := nw.vars[i].Parents
	st := nw.strides[i]
	for p, parent := range ps {
		idx += x[parent] * st[p]
	}
	return idx
}

// ParentIndexOf computes the parent-configuration index from the parent
// values themselves (vals[p] is the value of Parents(i)[p]).
func (nw *Network) ParentIndexOf(i int, vals []int) int {
	idx := 0
	st := nw.strides[i]
	for p, v := range vals {
		idx += v * st[p]
	}
	return idx
}

// ParentValues inverts ParentIndexOf: it decodes a parent-configuration
// index into one value per parent of variable i.
func (nw *Network) ParentValues(i, idx int) []int {
	ps := nw.vars[i].Parents
	vals := make([]int, len(ps))
	st := nw.strides[i]
	for p := range ps {
		vals[p] = idx / st[p]
		idx %= st[p]
	}
	return vals
}

// ValidAssignment reports whether x is a full assignment with every value in
// range.
func (nw *Network) ValidAssignment(x []int) bool {
	if len(x) != nw.Len() {
		return false
	}
	for i, v := range x {
		if v < 0 || v >= nw.vars[i].Card {
			return false
		}
	}
	return true
}

// AncestralClosure returns the smallest ancestrally closed set containing the
// given roots (every member's parents are members), as a sorted-by-topo-order
// slice of variable indices. Marginal probabilities of assignments to such
// sets factorize exactly over member CPDs, which is what makes them usable as
// test events on large networks.
func (nw *Network) AncestralClosure(roots []int) []int {
	in := make(map[int]bool)
	var visit func(int)
	visit = func(v int) {
		if in[v] {
			return
		}
		in[v] = true
		for _, p := range nw.vars[v].Parents {
			visit(p)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	out := make([]int, 0, len(in))
	for _, v := range nw.order {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}
