package bn

import (
	"fmt"
	"sort"
)

// This file implements exact inference by variable elimination, so that a
// learned model (ground truth or a Tracker snapshot via EstimatedModel) can
// answer arbitrary marginal and conditional queries — the "inferences and
// predictions" the paper's introduction motivates. Complexity is exponential
// in the treewidth of the elimination order (min-degree heuristic); intended
// for the moderate-size networks of the evaluation, not for LINK/MUNIN-scale
// joint queries.

// factor is a function over a set of variables, stored mixed-radix with the
// last variable varying fastest.
type factor struct {
	vars  []int // ascending variable indices
	cards []int
	vals  []float64
}

func newFactor(vars []int, cards []int) *factor {
	size := 1
	for _, c := range cards {
		size *= c
	}
	return &factor{vars: vars, cards: cards, vals: make([]float64, size)}
}

// index computes the flat index for the given per-variable values (aligned
// with f.vars).
func (f *factor) index(vals []int) int {
	idx := 0
	for i, v := range vals {
		idx = idx*f.cards[i] + v
	}
	return idx
}

// multiply returns the product factor over the union of the variables.
func multiply(a, b *factor) *factor {
	uv := unionSorted(a.vars, b.vars)
	cards := make([]int, len(uv))
	posA := make([]int, len(uv))
	posB := make([]int, len(uv))
	for i, v := range uv {
		posA[i], posB[i] = -1, -1
		if j := indexOf(a.vars, v); j >= 0 {
			cards[i] = a.cards[j]
			posA[i] = j
		}
		if j := indexOf(b.vars, v); j >= 0 {
			cards[i] = b.cards[j]
			posB[i] = j
		}
	}
	out := newFactor(uv, cards)
	assign := make([]int, len(uv))
	va := make([]int, len(a.vars))
	vb := make([]int, len(b.vars))
	for i := range out.vals {
		decode(i, cards, assign)
		for j, p := range posA {
			if p >= 0 {
				va[p] = assign[j]
			}
		}
		for j, p := range posB {
			if p >= 0 {
				vb[p] = assign[j]
			}
		}
		out.vals[i] = a.vals[a.index(va)] * b.vals[b.index(vb)]
	}
	return out
}

// sumOut marginalizes a variable away.
func (f *factor) sumOut(v int) *factor {
	j := indexOf(f.vars, v)
	if j < 0 {
		return f
	}
	rv := append(append([]int(nil), f.vars[:j]...), f.vars[j+1:]...)
	rc := append(append([]int(nil), f.cards[:j]...), f.cards[j+1:]...)
	out := newFactor(rv, rc)
	assign := make([]int, len(f.vars))
	for i, val := range f.vals {
		decode(i, f.cards, assign)
		reduced := append(append([]int(nil), assign[:j]...), assign[j+1:]...)
		out.vals[out.index(reduced)] += val
	}
	return out
}

// restrict fixes a variable to a value, dropping it from the scope.
func (f *factor) restrict(v, val int) *factor {
	j := indexOf(f.vars, v)
	if j < 0 {
		return f
	}
	rv := append(append([]int(nil), f.vars[:j]...), f.vars[j+1:]...)
	rc := append(append([]int(nil), f.cards[:j]...), f.cards[j+1:]...)
	out := newFactor(rv, rc)
	assign := make([]int, len(f.vars))
	for i, value := range f.vals {
		decode(i, f.cards, assign)
		if assign[j] != val {
			continue
		}
		reduced := append(append([]int(nil), assign[:j]...), assign[j+1:]...)
		out.vals[out.index(reduced)] = value
	}
	return out
}

func decode(idx int, cards []int, dst []int) {
	for i := len(cards) - 1; i >= 0; i-- {
		dst[i] = idx % cards[i]
		idx /= cards[i]
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// MarginalProb returns P[assign], the probability that every variable in
// assign takes its given value, marginalizing over all other variables by
// variable elimination (min-degree order). assign must be non-empty with
// values in range.
func (m *Model) MarginalProb(assign map[int]int) (float64, error) {
	if len(assign) == 0 {
		return 0, fmt.Errorf("bn: empty marginal query")
	}
	n := m.net.Len()
	for v, val := range assign {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("bn: query variable %d out of range", v)
		}
		if val < 0 || val >= m.net.Card(v) {
			return 0, fmt.Errorf("bn: value %d out of range for variable %d", val, v)
		}
	}

	// Build one factor per CPD, with query variables restricted immediately.
	factors := make([]*factor, 0, n)
	for i := 0; i < n; i++ {
		f := m.cpdFactor(i)
		for v, val := range assign {
			f = f.restrict(v, val)
		}
		factors = append(factors, f)
	}

	// Eliminate all remaining variables, smallest resulting scope first.
	remaining := map[int]bool{}
	for i := 0; i < n; i++ {
		if _, fixed := assign[i]; !fixed {
			remaining[i] = true
		}
	}
	for len(remaining) > 0 {
		v := pickMinDegree(factors, remaining)
		factors = eliminate(factors, v)
		delete(remaining, v)
	}

	// All scopes are now empty; the answer is the product of the scalars.
	p := 1.0
	for _, f := range factors {
		if len(f.vars) != 0 {
			return 0, fmt.Errorf("bn: internal: non-scalar factor after elimination")
		}
		p *= f.vals[0]
	}
	return p, nil
}

// ConditionalProb returns P[query | evidence] = P[query ∪ evidence] /
// P[evidence]. The variable sets must be disjoint. It returns 0 when the
// evidence itself has probability 0.
func (m *Model) ConditionalProb(query, evidence map[int]int) (float64, error) {
	if len(query) == 0 {
		return 0, fmt.Errorf("bn: empty conditional query")
	}
	joint := make(map[int]int, len(query)+len(evidence))
	for v, val := range evidence {
		joint[v] = val
	}
	for v, val := range query {
		if _, dup := joint[v]; dup {
			return 0, fmt.Errorf("bn: variable %d in both query and evidence", v)
		}
		joint[v] = val
	}
	num, err := m.MarginalProb(joint)
	if err != nil {
		return 0, err
	}
	if len(evidence) == 0 {
		return num, nil
	}
	den, err := m.MarginalProb(evidence)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// cpdFactor converts variable i's CPD into a factor over {parents..., i}.
func (m *Model) cpdFactor(i int) *factor {
	scope := append(append([]int(nil), m.net.Parents(i)...), i)
	sort.Ints(scope)
	cards := make([]int, len(scope))
	for j, v := range scope {
		cards[j] = m.net.Card(v)
	}
	f := newFactor(scope, cards)
	assign := make([]int, len(scope))
	full := make([]int, m.net.Len())
	for idx := range f.vals {
		decode(idx, cards, assign)
		for j, v := range scope {
			full[v] = assign[j]
		}
		f.vals[idx] = m.cpds[i].P(full[i], m.net.ParentIndex(i, full))
	}
	return f
}

// pickMinDegree chooses the remaining variable whose elimination produces
// the smallest combined scope.
func pickMinDegree(factors []*factor, remaining map[int]bool) int {
	best, bestSize := -1, 1<<62
	for v := range remaining {
		scope := map[int]bool{}
		for _, f := range factors {
			if indexOf(f.vars, v) >= 0 {
				for _, u := range f.vars {
					scope[u] = true
				}
			}
		}
		if len(scope) < bestSize || (len(scope) == bestSize && v < best) {
			best, bestSize = v, len(scope)
		}
	}
	return best
}

// eliminate multiplies all factors containing v and sums v out.
func eliminate(factors []*factor, v int) []*factor {
	var keep []*factor
	var prod *factor
	for _, f := range factors {
		if indexOf(f.vars, v) < 0 {
			keep = append(keep, f)
			continue
		}
		if prod == nil {
			prod = f
		} else {
			prod = multiply(prod, f)
		}
	}
	if prod != nil {
		keep = append(keep, prod.sumOut(v))
	}
	return keep
}
