package bn

import "math"

// PredictVar returns argmax_y P[X_t = y | x_{-t}] under the model, where the
// evidence is the full assignment x with position t ignored. Because all
// other variables are observed, the posterior over X_t is proportional to the
// product of the factors that mention X_t: its own CPD and the CPDs of its
// children (its Markov blanket), so the scan is O((1+#children)·J_t) rather
// than a full joint evaluation.
//
// The scratch value x[t] is restored before returning. Ties break toward the
// smaller value, matching core.Tracker.Classify.
func (m *Model) PredictVar(t int, x []int) int {
	saved := x[t]
	defer func() { x[t] = saved }()

	best, bestScore := 0, math.Inf(-1)
	for y := 0; y < m.net.Card(t); y++ {
		x[t] = y
		score := math.Log(m.cpds[t].P(y, m.net.ParentIndex(t, x)))
		for _, c := range m.net.Children(t) {
			score += math.Log(m.cpds[c].P(x[c], m.net.ParentIndex(c, x)))
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return best
}

// PosteriorVar returns the normalized posterior distribution P[X_t | x_{-t}]
// as a fresh slice of length Card(t). If every candidate value has zero
// probability the uniform distribution is returned.
func (m *Model) PosteriorVar(t int, x []int) []float64 {
	saved := x[t]
	defer func() { x[t] = saved }()

	post := make([]float64, m.net.Card(t))
	sum := 0.0
	for y := range post {
		x[t] = y
		p := m.cpds[t].P(y, m.net.ParentIndex(t, x))
		for _, c := range m.net.Children(t) {
			p *= m.cpds[c].P(x[c], m.net.ParentIndex(c, x))
		}
		post[y] = p
		sum += p
	}
	if sum == 0 {
		for y := range post {
			post[y] = 1 / float64(len(post))
		}
		return post
	}
	for y := range post {
		post[y] /= sum
	}
	return post
}
