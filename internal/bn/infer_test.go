package bn

import (
	"math"
	"testing"
	"testing/quick"
)

// randomModel builds a random n-variable model for inference testing.
func randomModel(rng *RNG, n int) *Model {
	vars := make([]Variable, n)
	for i := range vars {
		vars[i] = Variable{Name: "V", Card: 2 + rng.Intn(2)}
		for p := 0; p < i; p++ {
			if rng.Bernoulli(0.4) {
				vars[i].Parents = append(vars[i].Parents, p)
			}
		}
	}
	nw := MustNetwork(vars)
	cpds := make([]*CPT, n)
	for i := range cpds {
		tbl := make([]float64, nw.Card(i)*nw.ParentCard(i))
		for k := 0; k < nw.ParentCard(i); k++ {
			rng.Dirichlet(1.0, tbl[k*nw.Card(i):(k+1)*nw.Card(i)])
		}
		cpds[i], _ = NewCPT(nw.Card(i), nw.ParentCard(i), tbl)
	}
	return MustModel(nw, cpds)
}

// bruteMarginal enumerates all assignments consistent with assign.
func bruteMarginal(m *Model, assign map[int]int) float64 {
	n := m.Network().Len()
	x := make([]int, n)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == n {
			return m.JointProb(x)
		}
		if v, ok := assign[i]; ok {
			x[i] = v
			return rec(i + 1)
		}
		sum := 0.0
		for v := 0; v < m.Network().Card(i); v++ {
			x[i] = v
			sum += rec(i + 1)
		}
		return sum
	}
	return rec(0)
}

func TestMarginalProbAgainstEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := randomModel(rng, 2+rng.Intn(5))
		n := m.Network().Len()
		for trial := 0; trial < 5; trial++ {
			assign := map[int]int{}
			for i := 0; i < n; i++ {
				if rng.Bernoulli(0.5) {
					assign[i] = rng.Intn(m.Network().Card(i))
				}
			}
			if len(assign) == 0 {
				assign[0] = 0
			}
			got, err := m.MarginalProb(assign)
			if err != nil {
				return false
			}
			want := bruteMarginal(m, assign)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMarginalProbValidation(t *testing.T) {
	m := coinChain(t)
	if _, err := m.MarginalProb(nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := m.MarginalProb(map[int]int{5: 0}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := m.MarginalProb(map[int]int{0: 9}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestMarginalMatchesSingleVariableCPD(t *testing.T) {
	m := coinChain(t) // A -> B with known tables
	pa, err := m.MarginalProb(map[int]int{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa-0.3) > 1e-12 {
		t.Errorf("P[A=1] = %v, want 0.3", pa)
	}
	// P[B=1] = 0.7*0.2 + 0.3*0.9 = 0.41.
	pb, err := m.MarginalProb(map[int]int{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pb-0.41) > 1e-12 {
		t.Errorf("P[B=1] = %v, want 0.41", pb)
	}
}

func TestConditionalProb(t *testing.T) {
	m := coinChain(t)
	// P[A=1 | B=1] = 0.3*0.9 / 0.41.
	got, err := m.ConditionalProb(map[int]int{0: 1}, map[int]int{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 * 0.9 / 0.41
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P[A=1|B=1] = %v, want %v", got, want)
	}
	// Consistency with PosteriorVar.
	post := m.PosteriorVar(0, []int{0, 1})
	if math.Abs(got-post[1]) > 1e-12 {
		t.Errorf("VE (%v) and blanket posterior (%v) disagree", got, post[1])
	}
	// Validation.
	if _, err := m.ConditionalProb(nil, nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := m.ConditionalProb(map[int]int{0: 1}, map[int]int{0: 0}); err == nil {
		t.Error("overlapping query/evidence accepted")
	}
	// No evidence = marginal.
	p, err := m.ConditionalProb(map[int]int{0: 0}, nil)
	if err != nil || math.Abs(p-0.7) > 1e-12 {
		t.Errorf("unconditional query = %v, %v", p, err)
	}
}

func TestMarginalConsistentWithSubsetProb(t *testing.T) {
	rng := NewRNG(77)
	m := randomModel(rng, 7)
	net := m.Network()
	for trial := 0; trial < 30; trial++ {
		v := rng.Intn(net.Len())
		set := net.AncestralClosure([]int{v})
		x := make([]int, net.Len())
		for i := range x {
			x[i] = rng.Intn(net.Card(i))
		}
		assign := map[int]int{}
		for _, i := range set {
			assign[i] = x[i]
		}
		want := m.SubsetProb(set, x)
		got, err := m.MarginalProb(assign)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("VE %v != closed-form subset prob %v", got, want)
		}
	}
}

func TestMarginalSumsToOne(t *testing.T) {
	rng := NewRNG(5)
	m := randomModel(rng, 6)
	// Σ_v P[X_2 = v] must be 1.
	sum := 0.0
	for v := 0; v < m.Network().Card(2); v++ {
		p, err := m.MarginalProb(map[int]int{2: v})
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("marginal sums to %v", sum)
	}
}

func TestFactorOps(t *testing.T) {
	// f(a) over card-2, g(a,b) over card-2x3.
	f := newFactor([]int{0}, []int{2})
	f.vals = []float64{0.25, 0.75}
	g := newFactor([]int{0, 1}, []int{2, 3})
	for i := range g.vals {
		g.vals[i] = float64(i)
	}
	prod := multiply(f, g)
	if len(prod.vars) != 2 || prod.vars[0] != 0 || prod.vars[1] != 1 {
		t.Fatalf("product scope %v", prod.vars)
	}
	if got := prod.vals[prod.index([]int{1, 2})]; got != 0.75*5 {
		t.Errorf("product value = %v, want %v", got, 0.75*5)
	}
	summed := prod.sumOut(1)
	if len(summed.vars) != 1 {
		t.Fatalf("sumOut scope %v", summed.vars)
	}
	if got := summed.vals[1]; math.Abs(got-0.75*(3+4+5)) > 1e-12 {
		t.Errorf("sumOut value = %v", got)
	}
	restr := prod.restrict(0, 1)
	if got := restr.vals[restr.index([]int{2})]; got != 0.75*5 {
		t.Errorf("restrict value = %v", got)
	}
}
