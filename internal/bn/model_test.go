package bn

import (
	"math"
	"testing"
	"testing/quick"
)

// coinChain builds the 2-variable model A -> B with
// P[A=1]=0.3, P[B=1|A=0]=0.2, P[B=1|A=1]=0.9.
func coinChain(t *testing.T) *Model {
	t.Helper()
	nw := MustNetwork([]Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: []int{0}},
	})
	cptA, err := NewCPT(2, 1, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	cptB, err := NewCPT(2, 2, []float64{0.8, 0.2, 0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(nw, []*CPT{cptA, cptB})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	nw := MustNetwork([]Variable{{Name: "A", Card: 2}})
	cpt2, _ := NewCPT(2, 1, []float64{0.5, 0.5})
	cpt3, _ := NewCPT(3, 1, []float64{0.2, 0.3, 0.5})

	if _, err := NewModel(nw, nil); err == nil {
		t.Error("missing CPTs accepted")
	}
	if _, err := NewModel(nw, []*CPT{nil}); err == nil {
		t.Error("nil CPT accepted")
	}
	if _, err := NewModel(nw, []*CPT{cpt3}); err == nil {
		t.Error("mis-shaped CPT accepted")
	}
	if _, err := NewModel(nw, []*CPT{cpt2}); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestJointProbFactorization(t *testing.T) {
	m := coinChain(t)
	cases := []struct {
		x    []int
		want float64
	}{
		{[]int{0, 0}, 0.7 * 0.8},
		{[]int{0, 1}, 0.7 * 0.2},
		{[]int{1, 0}, 0.3 * 0.1},
		{[]int{1, 1}, 0.3 * 0.9},
	}
	total := 0.0
	for _, tc := range cases {
		got := m.JointProb(tc.x)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("JointProb(%v) = %v, want %v", tc.x, got, tc.want)
		}
		if lg := m.LogJointProb(tc.x); math.Abs(lg-math.Log(tc.want)) > 1e-12 {
			t.Errorf("LogJointProb(%v) = %v, want %v", tc.x, lg, math.Log(tc.want))
		}
		total += got
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("joint distribution sums to %v, want 1", total)
	}
}

func TestJointSumsToOneQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		// Random 4-node DAG where node i may take parents among 0..i-1.
		vars := make([]Variable, 4)
		for i := range vars {
			vars[i] = Variable{Name: "V", Card: 1 + rng.Intn(3)}
			for p := 0; p < i; p++ {
				if rng.Bernoulli(0.5) {
					vars[i].Parents = append(vars[i].Parents, p)
				}
			}
		}
		nw, err := NewNetwork(vars)
		if err != nil {
			return false
		}
		cpds := make([]*CPT, 4)
		for i := range cpds {
			tbl := make([]float64, nw.Card(i)*nw.ParentCard(i))
			for k := 0; k < nw.ParentCard(i); k++ {
				rng.Dirichlet(1.0, tbl[k*nw.Card(i):(k+1)*nw.Card(i)])
			}
			cpds[i], err = NewCPT(nw.Card(i), nw.ParentCard(i), tbl)
			if err != nil {
				return false
			}
		}
		m, err := NewModel(nw, cpds)
		if err != nil {
			return false
		}
		// Enumerate all assignments; the joint must sum to 1.
		sum := 0.0
		x := make([]int, 4)
		var rec func(int)
		rec = func(i int) {
			if i == 4 {
				sum += m.JointProb(x)
				return
			}
			for v := 0; v < nw.Card(i); v++ {
				x[i] = v
				rec(i + 1)
			}
		}
		rec(0)
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	m := coinChain(t)
	s := m.NewSampler(42)
	const nSamples = 200000
	counts := map[[2]int]int{}
	x := make([]int, 2)
	for i := 0; i < nSamples; i++ {
		s.Sample(x)
		counts[[2]int{x[0], x[1]}]++
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			want := m.JointProb([]int{a, b})
			got := float64(counts[[2]int{a, b}]) / nSamples
			// 3-sigma-ish bound for a binomial proportion at n=200k.
			tol := 3.5 * math.Sqrt(want*(1-want)/nSamples)
			if math.Abs(got-want) > tol {
				t.Errorf("empirical P[%d,%d] = %v, want %v +/- %v", a, b, got, want, tol)
			}
		}
	}
}

func TestSamplerDeterministicForSeed(t *testing.T) {
	m := coinChain(t)
	s1 := m.NewSampler(7)
	s2 := m.NewSampler(7)
	for i := 0; i < 100; i++ {
		a := s1.Sample(nil)
		b := s2.Sample(nil)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("sample %d diverged: %v vs %v", i, a, b)
		}
	}
}

func TestSubsetProb(t *testing.T) {
	// A -> B, C independent; closure({B}) = {A,B}.
	nw := MustNetwork([]Variable{
		{Name: "A", Card: 2},
		{Name: "B", Card: 2, Parents: []int{0}},
		{Name: "C", Card: 2},
	})
	cptA, _ := NewCPT(2, 1, []float64{0.6, 0.4})
	cptB, _ := NewCPT(2, 2, []float64{0.9, 0.1, 0.2, 0.8})
	cptC, _ := NewCPT(2, 1, []float64{0.5, 0.5})
	m := MustModel(nw, []*CPT{cptA, cptB, cptC})

	set := nw.AncestralClosure([]int{1})
	x := []int{1, 0, 0} // A=1, B=0; C ignored
	want := 0.4 * 0.2
	if got := m.SubsetProb(set, x); math.Abs(got-want) > 1e-12 {
		t.Errorf("SubsetProb = %v, want %v", got, want)
	}
	// Marginalization check: sum over C of full joint equals SubsetProb.
	sum := m.JointProb([]int{1, 0, 0}) + m.JointProb([]int{1, 0, 1})
	if math.Abs(sum-want) > 1e-12 {
		t.Errorf("marginal by enumeration = %v, want %v", sum, want)
	}
}

func TestPredictVarAgainstEnumeration(t *testing.T) {
	rng := NewRNG(11)
	// Random 5-node model; compare blanket prediction against brute force
	// over the target variable with everything else fixed.
	vars := make([]Variable, 5)
	for i := range vars {
		vars[i] = Variable{Name: "V", Card: 2 + rng.Intn(2)}
		for p := 0; p < i; p++ {
			if rng.Bernoulli(0.4) {
				vars[i].Parents = append(vars[i].Parents, p)
			}
		}
	}
	nw := MustNetwork(vars)
	cpds := make([]*CPT, 5)
	for i := range cpds {
		tbl := make([]float64, nw.Card(i)*nw.ParentCard(i))
		for k := 0; k < nw.ParentCard(i); k++ {
			rng.Dirichlet(1.0, tbl[k*nw.Card(i):(k+1)*nw.Card(i)])
		}
		var err error
		cpds[i], err = NewCPT(nw.Card(i), nw.ParentCard(i), tbl)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := MustModel(nw, cpds)

	x := make([]int, 5)
	for trial := 0; trial < 200; trial++ {
		for i := range x {
			x[i] = rng.Intn(nw.Card(i))
		}
		for tgt := 0; tgt < 5; tgt++ {
			pred := m.PredictVar(tgt, x)
			// Brute force joint argmax.
			bestY, bestP := -1, -1.0
			saved := x[tgt]
			for y := 0; y < nw.Card(tgt); y++ {
				x[tgt] = y
				if p := m.JointProb(x); p > bestP {
					bestY, bestP = y, p
				}
			}
			x[tgt] = saved
			if pred != bestY {
				t.Fatalf("trial %d target %d: PredictVar = %d, brute force = %d", trial, tgt, pred, bestY)
			}
		}
	}
}

func TestPredictVarRestoresEvidence(t *testing.T) {
	m := coinChain(t)
	x := []int{1, 0}
	m.PredictVar(0, x)
	if x[0] != 1 || x[1] != 0 {
		t.Errorf("evidence mutated: %v", x)
	}
}

func TestPosteriorVarNormalized(t *testing.T) {
	m := coinChain(t)
	x := []int{0, 1}
	post := m.PosteriorVar(0, x)
	sum := 0.0
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("posterior sums to %v", sum)
	}
	// P(A | B=1) ∝ {0.7*0.2, 0.3*0.9}
	w0, w1 := 0.7*0.2, 0.3*0.9
	if math.Abs(post[0]-w0/(w0+w1)) > 1e-12 {
		t.Errorf("post[0] = %v, want %v", post[0], w0/(w0+w1))
	}
}

func TestMinParameter(t *testing.T) {
	m := coinChain(t)
	if got := m.MinParameter(); got != 0.1 {
		t.Errorf("MinParameter = %v, want 0.1", got)
	}
}

func TestRNGDirichletAndGamma(t *testing.T) {
	rng := NewRNG(5)
	// Gamma(shape) has mean shape; check a loose empirical mean.
	for _, shape := range []float64{0.5, 1, 3} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			g := rng.Gamma(shape)
			if g < 0 {
				t.Fatalf("Gamma(%v) returned negative %v", shape, g)
			}
			sum += g
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.12*shape+0.05 {
			t.Errorf("Gamma(%v) empirical mean %v", shape, mean)
		}
	}
	row := make([]float64, 6)
	for trial := 0; trial < 100; trial++ {
		rng.Dirichlet(0.5, row)
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				t.Fatalf("Dirichlet produced negative weight %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("Dirichlet row sums to %v", sum)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	rng := NewRNG(123)
	const n = 120000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		buckets[int(f*10)]++
	}
	for b, c := range buckets {
		if math.Abs(float64(c)-n/10) > 0.05*n/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", b, c, n/10)
		}
	}
	if rng.Intn(1) != 0 {
		t.Error("Intn(1) != 0")
	}
	perm := rng.Perm(8)
	seen := map[int]bool{}
	for _, v := range perm {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Perm(8) not a permutation: %v", perm)
	}
}
