package bn

import (
	"fmt"
	"math"
)

// CPT holds the conditional probability table of one variable: a row per
// parent configuration, J_i probabilities per row, stored flat as
// table[pidx*card + value].
type CPT struct {
	card  int
	kcard int
	table []float64
}

// NewCPT builds a CPT for a variable of cardinality card with kcard parent
// configurations from a flat table of length card*kcard. Each row must sum to
// 1 within a small tolerance.
func NewCPT(card, kcard int, table []float64) (*CPT, error) {
	if card < 1 || kcard < 1 {
		return nil, fmt.Errorf("bn: invalid CPT shape %dx%d", kcard, card)
	}
	if len(table) != card*kcard {
		return nil, fmt.Errorf("bn: CPT table length %d, want %d", len(table), card*kcard)
	}
	for k := 0; k < kcard; k++ {
		sum := 0.0
		for j := 0; j < card; j++ {
			p := table[k*card+j]
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return nil, fmt.Errorf("bn: CPT row %d has invalid probability %v", k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("bn: CPT row %d sums to %v, want 1", k, sum)
		}
	}
	return &CPT{card: card, kcard: kcard, table: append([]float64(nil), table...)}, nil
}

// Card returns the variable cardinality (row width).
func (c *CPT) Card() int { return c.card }

// ParentCard returns the number of parent configurations (rows).
func (c *CPT) ParentCard() int { return c.kcard }

// P returns P[X = value | parent config pidx].
func (c *CPT) P(value, pidx int) float64 { return c.table[pidx*c.card+value] }

// Row returns the probability row for parent configuration pidx. The returned
// slice must not be modified.
func (c *CPT) Row(pidx int) []float64 { return c.table[pidx*c.card : (pidx+1)*c.card] }

// MinProb returns the smallest entry of the table (the λ of Lemma 3).
func (c *CPT) MinProb() float64 {
	m := math.Inf(1)
	for _, p := range c.table {
		if p < m {
			m = p
		}
	}
	return m
}

// Model is a Bayesian network with parameters: the ground truth used to
// generate training data and to score learned approximations.
type Model struct {
	net  *Network
	cpds []*CPT
}

// NewModel pairs a network with one CPT per variable, validating shapes.
func NewModel(net *Network, cpds []*CPT) (*Model, error) {
	if len(cpds) != net.Len() {
		return nil, fmt.Errorf("bn: %d CPTs for %d variables", len(cpds), net.Len())
	}
	for i, c := range cpds {
		if c == nil {
			return nil, fmt.Errorf("bn: nil CPT for variable %d", i)
		}
		if c.card != net.Card(i) || c.kcard != net.ParentCard(i) {
			return nil, fmt.Errorf("bn: CPT %d shape %dx%d, want %dx%d",
				i, c.kcard, c.card, net.ParentCard(i), net.Card(i))
		}
	}
	return &Model{net: net, cpds: cpds}, nil
}

// NewNormalizedModel builds a Model from raw per-variable weights: fill
// populates variable i's flat parent-major table (tbl[pidx*card + v], length
// card·kcard) with raw weights — tracked counts, estimates or ratios — and
// the constructor clamps negatives to zero and normalizes each parent
// column, substituting a uniform column when one has no mass. It is the one
// estimate-to-model conversion shared by the in-process tracker and the
// cluster coordinator, so the two serving paths cannot drift apart.
func NewNormalizedModel(net *Network, fill func(i int, tbl []float64)) (*Model, error) {
	cpds := make([]*CPT, net.Len())
	for i := 0; i < net.Len(); i++ {
		j, k := net.Card(i), net.ParentCard(i)
		tbl := make([]float64, j*k)
		fill(i, tbl)
		for pidx := 0; pidx < k; pidx++ {
			sum := 0.0
			for v := 0; v < j; v++ {
				if tbl[pidx*j+v] < 0 {
					tbl[pidx*j+v] = 0
				}
				sum += tbl[pidx*j+v]
			}
			if sum <= 0 {
				for v := 0; v < j; v++ {
					tbl[pidx*j+v] = 1 / float64(j)
				}
			} else {
				for v := 0; v < j; v++ {
					tbl[pidx*j+v] /= sum
				}
			}
		}
		var err error
		cpds[i], err = NewCPT(j, k, tbl)
		if err != nil {
			return nil, fmt.Errorf("bn: normalized CPD %d: %w", i, err)
		}
	}
	return NewModel(net, cpds)
}

// MustModel is NewModel that panics on error.
func MustModel(net *Network, cpds []*CPT) *Model {
	m, err := NewModel(net, cpds)
	if err != nil {
		panic(err)
	}
	return m
}

// Network returns the underlying structure.
func (m *Model) Network() *Network { return m.net }

// CPD returns the CPT of variable i.
func (m *Model) CPD(i int) *CPT { return m.cpds[i] }

// JointProb returns P[X = x] = Π_i P[x_i | x_i^par] (equation 1).
func (m *Model) JointProb(x []int) float64 {
	p := 1.0
	for i := 0; i < m.net.Len(); i++ {
		p *= m.cpds[i].P(x[i], m.net.ParentIndex(i, x))
	}
	return p
}

// LogJointProb returns ln P[X = x]; it is -Inf if any factor is zero.
func (m *Model) LogJointProb(x []int) float64 {
	lp := 0.0
	for i := 0; i < m.net.Len(); i++ {
		lp += math.Log(m.cpds[i].P(x[i], m.net.ParentIndex(i, x)))
	}
	return lp
}

// SubsetProb returns the marginal probability of the assignment x restricted
// to the ancestrally closed set of variables `set` (as produced by
// Network.AncestralClosure). For such sets the marginal factorizes exactly:
// P[set] = Π_{i∈set} P[x_i | x_i^par]. x must still be a full-length slice;
// only positions in set (and their parents, which set contains) are read.
func (m *Model) SubsetProb(set []int, x []int) float64 {
	p := 1.0
	for _, i := range set {
		p *= m.cpds[i].P(x[i], m.net.ParentIndex(i, x))
	}
	return p
}

// Sampler draws full assignments from the model by forward sampling in
// topological order. It is not safe for concurrent use.
type Sampler struct {
	m   *Model
	rng *RNG
}

// NewSampler creates a sampler with the given seed.
func (m *Model) NewSampler(seed uint64) *Sampler {
	return &Sampler{m: m, rng: NewRNG(seed)}
}

// Sample fills dst (length n) with one assignment drawn from the model and
// returns it; if dst is nil a new slice is allocated.
func (s *Sampler) Sample(dst []int) []int {
	n := s.m.net.Len()
	if dst == nil {
		dst = make([]int, n)
	}
	for _, i := range s.m.net.order {
		pidx := s.m.net.ParentIndex(i, dst)
		row := s.m.cpds[i].Row(pidx)
		u := s.rng.Float64()
		acc := 0.0
		v := len(row) - 1 // fall through to the last value on rounding
		for j, pj := range row {
			acc += pj
			if u < acc {
				v = j
				break
			}
		}
		dst[i] = v
	}
	return dst
}

// MinParameter returns the smallest CPT entry across the model (λ).
func (m *Model) MinParameter() float64 {
	min := math.Inf(1)
	for _, c := range m.cpds {
		if v := c.MinProb(); v < min {
			min = v
		}
	}
	return min
}
