package bn

import (
	"math"
	"testing"
)

// inferenceFixture returns a positive random 6-variable model and a
// query/evidence pair with non-trivial probability.
func inferenceFixture(t *testing.T, seed uint64) (*Model, map[int]int, map[int]int, float64) {
	t.Helper()
	rng := NewRNG(seed)
	m := positiveRandomModel(rng, 6)
	query := map[int]int{2: 1}
	evidence := map[int]int{5: 0}
	want, err := m.ConditionalProb(query, evidence)
	if err != nil {
		t.Fatal(err)
	}
	return m, query, evidence, want
}

// positiveRandomModel builds a random model whose CPT entries are bounded
// away from zero (Gibbs ergodicity).
func positiveRandomModel(rng *RNG, n int) *Model {
	vars := make([]Variable, n)
	for i := range vars {
		vars[i] = Variable{Name: "V", Card: 2 + rng.Intn(2)}
		for p := 0; p < i; p++ {
			if rng.Bernoulli(0.4) {
				vars[i].Parents = append(vars[i].Parents, p)
			}
		}
	}
	nw := MustNetwork(vars)
	cpds := make([]*CPT, n)
	for i := range cpds {
		j := nw.Card(i)
		tbl := make([]float64, j*nw.ParentCard(i))
		for k := 0; k < nw.ParentCard(i); k++ {
			row := tbl[k*j : (k+1)*j]
			rng.Dirichlet(1.0, row)
			for v := range row {
				row[v] = 0.85*row[v] + 0.15/float64(j)
			}
		}
		cpds[i], _ = NewCPT(j, nw.ParentCard(i), tbl)
	}
	return MustModel(nw, cpds)
}

func TestLikelihoodWeightingMatchesVE(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		m, query, evidence, want := inferenceFixture(t, seed)
		got, err := m.LikelihoodWeighting(query, evidence, 60000, seed*7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.02 {
			t.Errorf("seed %d: LW = %v, VE = %v", seed, got, want)
		}
	}
}

func TestGibbsMatchesVE(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		m, query, evidence, want := inferenceFixture(t, seed)
		got, err := m.GibbsMarginal(query, evidence, 40000, 2000, seed*13)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.03 {
			t.Errorf("seed %d: Gibbs = %v, VE = %v", seed, got, want)
		}
	}
}

func TestApproxInferValidation(t *testing.T) {
	m := coinChain(t)
	if _, err := m.LikelihoodWeighting(nil, nil, 100, 1); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := m.LikelihoodWeighting(map[int]int{0: 0}, nil, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := m.LikelihoodWeighting(map[int]int{0: 0}, map[int]int{0: 1}, 10, 1); err == nil {
		t.Error("overlapping query/evidence accepted")
	}
	if _, err := m.GibbsMarginal(map[int]int{9: 0}, nil, 10, 1, 1); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := m.GibbsMarginal(map[int]int{0: 0}, nil, 0, 0, 1); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestLikelihoodWeightingNoEvidence(t *testing.T) {
	m := coinChain(t)
	// P[B=1] = 0.41 with no evidence.
	got, err := m.LikelihoodWeighting(map[int]int{1: 1}, nil, 80000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.41) > 0.01 {
		t.Errorf("LW unconditional = %v, want 0.41", got)
	}
}

func TestEntropyEstimate(t *testing.T) {
	// Fair coin: entropy ln 2.
	nw := MustNetwork([]Variable{{Name: "X", Card: 2}})
	cpt, _ := NewCPT(2, 1, []float64{0.5, 0.5})
	m := MustModel(nw, []*CPT{cpt})
	h, err := m.EntropyEstimate(50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-math.Ln2) > 0.01 {
		t.Errorf("entropy = %v, want ln2 = %v", h, math.Ln2)
	}
	if _, err := m.EntropyEstimate(0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestKLDivergenceEstimate(t *testing.T) {
	nw := MustNetwork([]Variable{{Name: "X", Card: 2}})
	cptP, _ := NewCPT(2, 1, []float64{0.5, 0.5})
	cptQ, _ := NewCPT(2, 1, []float64{0.25, 0.75})
	p := MustModel(nw, []*CPT{cptP})
	q := MustModel(nw, []*CPT{cptQ})

	// D(P||P) = 0.
	if d, err := KLDivergenceEstimate(p, p, 10000, 1); err != nil || math.Abs(d) > 1e-9 {
		t.Errorf("D(P||P) = %v, %v", d, err)
	}
	// D(P||Q) = 0.5 ln(0.5/0.25) + 0.5 ln(0.5/0.75).
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3)
	d, err := KLDivergenceEstimate(p, q, 200000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-want) > 0.01 {
		t.Errorf("D(P||Q) = %v, want %v", d, want)
	}
	// Zero-probability q -> +Inf.
	cptZ, _ := NewCPT(2, 1, []float64{1, 0})
	z := MustModel(nw, []*CPT{cptZ})
	if d, err := KLDivergenceEstimate(p, z, 1000, 3); err != nil || !math.IsInf(d, 1) {
		t.Errorf("D(P||Z) = %v, %v, want +Inf", d, err)
	}
	// Shape mismatch.
	nw2 := MustNetwork([]Variable{{Name: "X", Card: 3}})
	cpt3, _ := NewCPT(3, 1, []float64{0.3, 0.3, 0.4})
	m3 := MustModel(nw2, []*CPT{cpt3})
	if _, err := KLDivergenceEstimate(p, m3, 100, 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}
